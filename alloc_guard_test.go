package ccprof

// Allocation regression guards for the replay fast path. The sweep
// optimizations (pooled graphs, samplers, trackers, and attribution state;
// SoA block delivery; fused sample+classify) only stay effective if per-task
// allocation stays bounded — a single accidental per-reference or per-sample
// allocation shows up here as an order-of-magnitude jump long before it is
// visible in wall-clock noise.

import (
	"testing"

	"repro/internal/advisor"
	"repro/internal/workloads"
)

// TestRecommendPadAllocBudget pins the steady-state allocation cost of one
// advisor sweep task: a full RecommendPad over quick-scale ADI with four
// candidate pads, simulation-only, on one worker. The budget is ~2x the
// measured steady state (so pool warm-up jitter and small legitimate changes
// pass) but far below the cost of re-building per-task state from scratch,
// which is the regression this test exists to catch.
func TestRecommendPadAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is not meaningful under -short race/cover runs")
	}
	cs := workloads.NewADI(256, 1)
	opts := advisor.Options{
		Pads:    []uint64{0, 32, 64, 128},
		Workers: 1, // serial: AllocsPerRun pins GOMAXPROCS to 1 anyway
	}
	// Warm the pools: the first sweep constructs every pooled object.
	if _, err := advisor.RecommendPad(cs.PadBuilder, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := advisor.RecommendPad(cs.PadBuilder, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state measured at ~185 allocs per sweep (4 candidate kernels
	// built + profiled + analyzed, reports retained). The pre-optimization
	// code sat at well over 1000 for this task.
	const budget = 500
	if allocs > budget {
		t.Fatalf("RecommendPad sweep allocated %.0f objects/run, budget %d", allocs, budget)
	}
	t.Logf("RecommendPad sweep: %.0f allocs/run (budget %d)", allocs, budget)
}
