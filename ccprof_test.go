package ccprof

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/pmu"
	"repro/internal/trace"
)

func TestFacadeEndToEnd(t *testing.T) {
	cs, err := Workload("tinydnn")
	if err != nil {
		t.Fatal(err)
	}
	an, err := ProfileAndAnalyze(cs.Original,
		ProfileOptions{Period: pmu.Uniform(cs.ProfilePeriod), Seed: 1, NoTime: true},
		AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Conflict {
		t.Errorf("tinydnn should be flagged (cf=%.2f)", an.CF)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, an); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CCProf report", "CONFLICT MISSES DETECTED",
		cs.TargetLoop, "W", "code-centric", "data-centric"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 7 {
		t.Errorf("expected 7 case studies, got %v", names)
	}
	if _, err := Workload("nope"); err == nil {
		t.Error("unknown workload should error")
	}
	if suite := RodiniaSuite(); len(suite) != 18 {
		t.Errorf("Rodinia suite has %d kernels, want 18", len(suite))
	}
}

func TestFacadeMachines(t *testing.T) {
	b, s := Broadwell(), Skylake()
	if b.Threads != 28 || s.Threads != 8 {
		t.Errorf("thread counts: %d/%d", b.Threads, s.Threads)
	}
	if L1Default().Sets != 64 {
		t.Errorf("L1 sets = %d", L1Default().Sets)
	}
	if DefaultPeriod != 1212 || RCDThreshold != 8 {
		t.Error("paper constants drifted")
	}
}

func TestFacadeCustomProgram(t *testing.T) {
	// The examples/custom-workload flow, condensed: a page-strided table
	// must be flagged, a dense one must not.
	build := func(name string, stride uint64) *Program {
		b := NewBinaryBuilder(name)
		b.Func("main")
		b.Loop("h.c", 1)
		ld := b.Load("h.c", 2)
		b.EndLoop()
		bin := b.Finish()
		ar := NewArena()
		tbl := ar.Alloc("tbl", 256*stride, 4096)
		return NewProgram(name, bin, ar, func(tid, threads int, sink Sink) {
			if tid != 0 {
				return
			}
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 200_000; i++ {
				sink.Ref(Ref{IP: ld, Addr: tbl.Start + uint64(rng.Intn(256))*stride})
			}
		})
	}
	for _, c := range []struct {
		stride uint64
		want   bool
	}{{4096, true}, {64, false}} {
		p := build("hist", c.stride)
		an, err := ProfileAndAnalyze(p,
			ProfileOptions{Period: pmu.Uniform(171), Seed: 1, NoTime: true},
			AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if an.Conflict != c.want {
			t.Errorf("stride %d: conflict=%v, want %v (cf=%.2f)", c.stride, an.Conflict, c.want, an.CF)
		}
	}
}

func TestFacadeSimulate(t *testing.T) {
	cs, err := Workload("symmetrization")
	if err != nil {
		t.Fatal(err)
	}
	before := Simulate(cs.Original, Skylake(), 2)
	after := Simulate(cs.Optimized, Skylake(), 2)
	if before.Accesses() == 0 {
		t.Fatal("no accesses simulated")
	}
	if sp := cache.Speedup(before, after); sp <= 1 {
		t.Errorf("padding speedup = %.2f, want > 1", sp)
	}
	// Thread count clamps to the machine.
	sys := Simulate(cs.Original, Skylake(), 99)
	if sys.Cores != Skylake().Threads {
		t.Errorf("cores = %d, want clamp to %d", sys.Cores, Skylake().Threads)
	}
}

func TestFacadeModels(t *testing.T) {
	m := DefaultModel()
	if !m.Predict(0.9) || m.Predict(0.05) {
		t.Error("default model verdicts wrong")
	}
	om := DefaultOverheadModel()
	if om.Profiling(1000, 10) <= 1 {
		t.Error("overhead model broken")
	}
}

func TestFacadeTypesInterop(t *testing.T) {
	// Aliases must interoperate with internal values without conversion.
	var s Sink = trace.Discard
	s.Ref(Ref{})
}
