// Package ccprof is a pure-Go reproduction of CCProf, the lightweight
// cache-conflict profiler of Roy, Song, Krishnamoorthy and Liu,
// "Lightweight Detection of Cache Conflicts" (CGO 2018).
//
// CCProf detects conflict misses in set-associative caches by sampling
// L1-miss addresses, attributing each sampled miss to its cache set, and
// computing the Re-Conflict Distance (RCD) — the distance in miss events
// between consecutive misses on the same set. A large fraction of misses at
// short RCD marks a loop as conflict-ridden; a simple logistic regression
// turns that fraction (the contribution factor) into a binary verdict, and
// code-/data-centric attribution names the loops and data structures to
// pad.
//
// This package is the public facade. A typical session:
//
//	cs, _ := ccprof.Workload("adi")                     // a paper case study
//	prof, _ := ccprof.ProfileProgram(cs.Original, ccprof.ProfileOptions{})
//	an, _ := ccprof.Analyze(prof, cs.Original.Binary, cs.Original.Arena, ccprof.AnalyzeOptions{})
//	ccprof.WriteReport(os.Stdout, an)
//
// Real hardware is replaced by simulation substrates (see DESIGN.md): a
// simulated PEBS sampler over a cycle-faithful L1 model, a trace-driven
// multi-level cache simulator for ground truth, and synthetic binaries from
// which the analyzer recovers loop nests via interval analysis.
package ccprof

import (
	"io"

	"repro/internal/advisor"
	"repro/internal/alloc"
	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/pmu"
	"repro/internal/staticconf"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Re-exported core types. These are aliases, so values flow freely between
// the facade and the internal packages.
type (
	// Program is a runnable kernel: binary + allocation arena + run
	// function.
	Program = workloads.Program
	// CaseStudy pairs the original and optimized variants of a paper
	// case study.
	CaseStudy = workloads.CaseStudy
	// Profile is the output of the online sampling phase.
	Profile = core.Profile
	// ProfileOptions configures online profiling.
	ProfileOptions = core.ProfileOptions
	// Analysis is the offline analyzer's report.
	Analysis = core.Analysis
	// AnalyzeOptions configures offline analysis.
	AnalyzeOptions = core.AnalyzeOptions
	// LoopReport is one loop's row in the analysis.
	LoopReport = core.LoopReport
	// DataReport is one data structure's row in the analysis.
	DataReport = core.DataReport
	// OverheadModel converts sample counts into runtime-overhead factors.
	OverheadModel = core.OverheadModel
	// Machine describes an evaluation platform's cache hierarchy.
	Machine = mem.Machine
	// Geometry describes one cache level.
	Geometry = mem.Geometry
	// Sample is one PEBS-style address sample.
	Sample = pmu.Sample
	// Ref is one memory reference of a workload trace.
	Ref = trace.Ref
	// Sink consumes a reference stream.
	Sink = trace.Sink
	// Binary is a synthetic executable.
	Binary = objfile.Binary
	// BinaryBuilder assembles synthetic executables for custom kernels.
	BinaryBuilder = objfile.Builder
	// Arena is the simulated heap for data-centric attribution.
	Arena = alloc.Arena
	// Logistic is the conflict classifier model.
	Logistic = classify.Logistic
	// AccessSpec declares a loop's affine accesses for static conflict
	// analysis (no execution needed).
	AccessSpec = staticconf.Spec
	// Access is one affine access stream within an AccessSpec.
	Access = staticconf.Access
	// AccessDim is one loop dimension of an Access (stride and trip).
	AccessDim = staticconf.Dim
	// StaticOptions configures the static analyzer.
	StaticOptions = staticconf.Options
	// StaticReport is the static analyzer's verdict for one spec.
	StaticReport = staticconf.Report
	// AnalyticOptions configures the closed-form analytic conflict model.
	AnalyticOptions = analytic.Options
	// AnalyticReport is the analytic model's verdict for one spec.
	AnalyticReport = analytic.Report
	// TierPolicy selects the static pruning tiers of the advisor cascade.
	TierPolicy = advisor.TierPolicy
	// StreamAnalyzer consumes PMU samples online and produces the same
	// Analysis as the buffered pipeline in O(contexts x sets) memory.
	StreamAnalyzer = core.StreamAnalyzer
	// TraceProfileOptions configures sharded profiling of a recorded
	// framed trace (ProfileTrace).
	TraceProfileOptions = core.TraceProfileOptions
	// TraceWriter encodes a reference stream into the framed binary trace
	// format (CCTB): independently decodable, seekable frames.
	TraceWriter = trace.TraceWriter
	// TraceReader decodes a framed binary trace block by block.
	TraceReader = trace.TraceReader
	// StreamPos is a frame-aligned resume point inside a framed trace.
	StreamPos = trace.StreamPos
)

// ProfileProgram runs the workload under the simulated PMU (the online
// phase). The zero options profile a sequential run at the recommended
// mean sampling period of 1212.
func ProfileProgram(p *Program, opts ProfileOptions) (*Profile, error) {
	return core.ProfileProgram(p, opts)
}

// Analyze runs the offline phase: loop recovery, RCD approximation,
// conflict classification, and code-/data-centric attribution.
func Analyze(prof *Profile, bin *Binary, arena *Arena, opts AnalyzeOptions) (*Analysis, error) {
	return core.Analyze(prof, bin, arena, opts)
}

// ProfileAndAnalyze chains both phases with the given options.
func ProfileAndAnalyze(p *Program, popts ProfileOptions, aopts AnalyzeOptions) (*Analysis, error) {
	prof, err := core.ProfileProgram(p, popts)
	if err != nil {
		return nil, err
	}
	return core.Analyze(prof, p.Binary, p.Arena, aopts)
}

// ProfileStream fuses both phases into one streaming pass: every sample is
// consumed by the online analyzer the moment the simulated PMU raises it,
// nothing is buffered, and memory stays O(contexts x sets) regardless of
// how long the workload runs. The Analysis is byte-identical to the
// two-phase ProfileProgram+Analyze pipeline for the same options and seed.
// The returned Profile carries the usual counters but no sample buffers
// (SampleCount still reports the online-consumed total).
func ProfileStream(p *Program, popts ProfileOptions, aopts AnalyzeOptions) (*Profile, *Analysis, error) {
	return core.ProfileStream(p, popts, aopts)
}

// NewStreamAnalyzer builds a standalone online analyzer for callers that
// drive their own samplers: wire HandlerFor(tid) into a pmu sampler per
// thread, then Finish to obtain the Analysis. ProfileStream is the packaged
// version of this pattern.
func NewStreamAnalyzer(bin *Binary, arena *Arena, g Geometry, threads, burst int, opts AnalyzeOptions) (*StreamAnalyzer, error) {
	if g.Sets == 0 {
		g = mem.L1Default()
	}
	return core.NewStreamAnalyzer(bin, arena, g, threads, burst, opts)
}

// ProfileTrace profiles a recorded framed trace (see NewTraceWriter)
// instead of a live workload, sharded over frame-aligned segments that run
// in parallel on the sweep executor and — with a parsim checkpoint — resume
// after interruption without re-profiling completed segments. open must
// return a fresh reader of the trace on each call.
func ProfileTrace(name string, open func() (io.ReadSeeker, error), opts TraceProfileOptions) (*Profile, error) {
	return core.ProfileTrace(name, open, opts)
}

// NewTraceWriter starts a framed binary trace (format CCTB) on w with the
// given references-per-frame (0 selects trace.DefaultBlock). Frames are
// independently decodable, so the trace supports O(1) seeking to any frame
// boundary and checkpointed resume. Close flushes the final partial frame.
func NewTraceWriter(w io.Writer, refsPerFrame int) *TraceWriter {
	return trace.NewTraceWriter(w, refsPerFrame)
}

// NewTraceReader opens a framed binary trace for block-by-block iteration;
// see TraceReader.Next, Replay, and ScanIndex.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewTraceReader(r) }

// ResumeTraceReader reopens a framed trace at a position previously
// captured with TraceReader.Pos — the primitive behind checkpointed trace
// profiling.
func ResumeTraceReader(rs io.ReadSeeker, pos StreamPos) (*TraceReader, error) {
	return trace.ResumeTraceReader(rs, pos)
}

// Workload builds a named paper case study at its default scale; see
// WorkloadNames for the registry.
func Workload(name string) (*CaseStudy, error) { return workloads.Get(name) }

// WorkloadNames lists the registered case studies.
func WorkloadNames() []string { return workloads.Names() }

// RodiniaSuite returns the 18 Rodinia-style kernels of the Figure 7 sweep.
func RodiniaSuite() []*Program { return workloads.RodiniaSuite() }

// NewProgram assembles a custom Program; see examples/custom-workload.
func NewProgram(name string, bin *Binary, ar *Arena,
	run func(tid, threads int, sink Sink)) *Program {
	return workloads.NewProgram(name, bin, ar, run)
}

// NewBinaryBuilder starts a synthetic binary for a custom kernel.
func NewBinaryBuilder(name string) *BinaryBuilder { return objfile.NewBuilder(name) }

// NewArena returns an empty simulated heap.
func NewArena() *Arena { return alloc.NewArena() }

// Broadwell and Skylake return the paper's two evaluation machines.
func Broadwell() Machine { return mem.Broadwell() }

// Skylake returns the paper's Skylake configuration.
func Skylake() Machine { return mem.Skylake() }

// L1Default returns the 32KiB 8-way, 64-set L1 geometry used throughout
// the paper's evaluation.
func L1Default() Geometry { return mem.L1Default() }

// DefaultModel returns the built-in conflict classifier.
func DefaultModel() Logistic { return core.DefaultModel() }

// DefaultOverheadModel returns the calibrated overhead model.
func DefaultOverheadModel() OverheadModel { return core.DefaultOverheadModel() }

// DefaultPeriod is the recommended mean sampling period (paper §5.3).
const DefaultPeriod = pmu.DefaultPeriod

// RCDThreshold is the default short-RCD threshold T.
const RCDThreshold = 8

// WriteReport renders an analysis as text: the program verdict, the
// per-loop table (code-centric attribution) and the per-data-structure
// table (data-centric attribution). ccprofd job artifacts use the same
// renderer (core.WriteReport), so CLI and service reports are
// byte-identical for the same analysis.
func WriteReport(w io.Writer, an *Analysis) error {
	return core.WriteReport(w, an)
}

// Simulate runs a program through a full multi-level cache simulation on
// the given machine with the given thread count (capped at the machine's
// thread count) and returns the populated system — the ground-truth path
// used by the Table 3 experiments.
func Simulate(p *Program, m Machine, threads int) *cache.System {
	if threads < 1 || threads > m.Threads {
		threads = m.Threads
	}
	sys := cache.NewSystem(m, threads)
	streams := trace.NewThreadedRecorder(threads)
	for tid := 0; tid < threads; tid++ {
		p.RunThread(tid, threads, streams.Thread(tid))
	}
	// Interleave per-thread streams into the shared hierarchy in
	// fixed-size chunks, approximating concurrent execution.
	const chunk = 64
	pos := make([]int, threads)
	for {
		progressed := false
		for t := 0; t < threads; t++ {
			s := streams.Streams[t]
			end := pos[t] + chunk
			if end > len(s) {
				end = len(s)
			}
			for ; pos[t] < end; pos[t]++ {
				sys.Access(t, s[pos[t]].Addr)
				progressed = true
			}
		}
		if !progressed {
			return sys
		}
	}
}

// RecommendPad searches candidate row pads for a rebuildable kernel and
// returns the cheapest pad removing the conflict signature — the
// mechanical version of the paper's §6 optimization step. Candidates are
// evaluated in parallel on the sweep executor (see SetParallelism); the
// recommendation is byte-identical at any worker count. See
// internal/advisor for options and examples/advisor for a walkthrough.
func RecommendPad(build func(pad uint64) *Program, opts advisor.Options) (advisor.Result, error) {
	return advisor.RecommendPad(build, opts)
}

// SetParallelism sets the process-wide worker count of the deterministic
// sweep executor that runs the advisor's pad candidates and the
// sweep-style experiments (cmd/ccprof and cmd/experiments expose it as
// -j). n <= 0 restores the GOMAXPROCS default. Worker count never changes
// results: every sweep reassembles its tasks in canonical order and every
// task derives its RNG seed from the root seed and a stable task key.
func SetParallelism(n int) { parsim.SetDefaultWorkers(n) }

// Parallelism returns the resolved sweep-executor worker count.
func Parallelism() int { return parsim.DefaultWorkers() }

// DeriveSeed derives a deterministic per-task RNG seed from a root seed
// and a stable task key (seed = root ⊕ FNV-1a(key)) — the scheme that
// keeps parallel sweeps reproducible. Custom sweeps over ccprof APIs
// should seed their tasks the same way.
func DeriveSeed(root int64, key string) int64 { return parsim.DeriveSeed(root, key) }

// Metrics returns the process-wide observability registry that the
// profiler, the simulators, and the sweep executor report into: counters
// (refs streamed, hits/misses per level, samples raised/dropped), gauges,
// log2 histograms (per-set miss distributions), and phase timers (profile,
// analyze, simulate, report). Snapshot it after a run — or serve it live
// with ServeMetrics — to see where a profiling session spent its work.
func Metrics() *obs.Registry { return obs.Default }

// ServeMetrics exposes the registry over HTTP on addr: /metrics (snapshot
// JSON), /debug/vars (expvar), and /debug/pprof. It returns the bound
// address (useful with ":0") and a shutdown function. cmd/ccprof and
// cmd/experiments expose it as -metrics-addr.
func ServeMetrics(addr string) (string, func() error, error) { return obs.Default.Serve(addr) }

// ProfileL2 runs the physically-indexed L2 profiling extension (the
// paper's footnote-1 future work): L2-miss address sampling, translated
// through a simulated page table, analyzed over physical set indices.
func ProfileL2(p *Program, opts core.L2ProfileOptions) (*core.L2Analysis, error) {
	return core.ProfileL2(p, opts)
}

// AnalyzeStatic predicts a kernel's cache-set conflicts from its affine
// access spec alone — per-access set footprints, window demand, and a
// conflict verdict — without running or simulating the kernel. The zero
// geometry selects L1Default; see internal/staticconf for the model.
func AnalyzeStatic(spec *AccessSpec, g Geometry, opts StaticOptions) (*StaticReport, error) {
	if g.Sets == 0 {
		g = mem.L1Default()
	}
	return staticconf.Analyze(spec, g, opts)
}

// AnalyzeAnalytic classifies a kernel's affine access spec with the
// closed-form tier-0 conflict model: predicted footprint, per-set
// demand, reuse profile, contribution factor, and verdict, all from
// pure arithmetic — no reference replayed, no window enumerated. It is
// the cheapest tier of the advisor cascade; see internal/analytic for
// the lattice model. The zero geometry selects L1Default.
func AnalyzeAnalytic(spec *AccessSpec, g Geometry, opts AnalyticOptions) (*AnalyticReport, error) {
	if g.Sets == 0 {
		g = mem.L1Default()
	}
	return analytic.Analyze(spec, g, opts)
}

// Cascade returns the full three-tier advisor policy — the analytic
// model, then the enumerating static analyzer, then exact simulation of
// the surviving candidates — for Options.Tiers of RecommendPad.
func Cascade() TierPolicy { return advisor.Cascade() }

// MinimalPad returns the smallest row pad the static analyzer declares
// conflict-free, scanning pads in Quantum steps — the closed-form
// companion to RecommendPad, which the advisor's StaticFirst mode uses to
// prune its simulation sweep.
func MinimalPad(build func(pad uint64) *AccessSpec, g Geometry, opts staticconf.PadOptions) (*staticconf.PadResult, error) {
	if g.Sets == 0 {
		g = mem.L1Default()
	}
	return staticconf.MinimalPad(build, g, opts)
}
