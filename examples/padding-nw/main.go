// The full CCProf workflow on Rodinia Needleman-Wunsch (§6.1): detect the
// inter-array conflict between input_itemsets and reference, apply the
// paper's padding (288 and 32 bytes per row), verify the short-RCD
// contribution collapses, and estimate the speedup on the full cache
// hierarchy.
//
// Run with: go run ./examples/padding-nw
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cache"
	"repro/internal/pmu"
)

func main() {
	cs, err := ccprof.Workload("nw")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: profile the original program and find the guilty loops.
	analyze := func(p *ccprof.Program) *ccprof.Analysis {
		an, err := ccprof.ProfileAndAnalyze(p,
			ccprof.ProfileOptions{Period: pmu.Uniform(cs.ProfilePeriod), Seed: 1, NoTime: true},
			ccprof.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return an
	}
	orig := analyze(cs.Original)

	fmt.Printf("=== %s: original ===\n", cs.Name)
	fmt.Printf("program verdict: conflict=%v (cf %.1f%%)\n\n", orig.Conflict, 100*orig.CF)
	fmt.Println("loops with conflict misses (code-centric attribution):")
	for _, l := range orig.Loops {
		if l.Conflict {
			fmt.Printf("  %-18s %5.1f%% of L1 misses, %d sets, cf %.1f%%\n",
				l.Loop, 100*l.Contribution, l.SetsUsed, 100*l.CF)
		}
	}
	fmt.Println("\nresponsible data structures (data-centric attribution):")
	for _, d := range orig.Data {
		if d.ShortRCD > d.Samples/4 {
			fmt.Printf("  %-18s %5.1f%% of samples, %d short-RCD\n",
				d.Name, 100*d.Contribution, d.ShortRCD)
		}
	}

	// Step 2: the optimized build pads the two matrices as the paper
	// prescribes; re-profile to verify.
	opt := analyze(cs.Optimized)
	fmt.Printf("\n=== %s: after padding (+288B/+32B per row) ===\n", cs.Name)
	fmt.Printf("program verdict: conflict=%v (cf %.1f%% -> %.1f%%)\n",
		opt.Conflict, 100*orig.CF, 100*opt.CF)

	// Step 3: estimate the end-to-end effect on the Skylake hierarchy.
	threads := 8
	before := ccprof.Simulate(cs.Original, ccprof.Skylake(), threads)
	after := ccprof.Simulate(cs.Optimized, ccprof.Skylake(), threads)
	fmt.Printf("\n=== simulated on %s, %d threads ===\n", ccprof.Skylake().Name, threads)
	fmt.Printf("L1 miss reduction:  %6.1f%%\n", cache.Reduction(before, after, cache.LevelL1))
	fmt.Printf("L2 miss reduction:  %6.1f%%\n", cache.Reduction(before, after, cache.LevelL2))
	fmt.Printf("LLC miss reduction: %6.1f%%\n", cache.Reduction(before, after, cache.LevelLLC))
	fmt.Printf("estimated speedup:  %6.2fx\n", cache.Speedup(before, after))
}
