// The padding advisor: automate the optimization step the paper performs
// by hand. CCProf flags the Tiny-DNN weight matrix; the advisor then
// searches candidate row pads, scoring each on a latency-weighted cache
// simulation, and recommends the smallest pad that removes the conflict.
//
// Run with: go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/advisor"
	"repro/internal/pmu"
	"repro/internal/workloads"
)

func main() {
	// Step 1: CCProf flags the fully-connected layer's weight matrix.
	cs, err := ccprof.Workload("tinydnn")
	if err != nil {
		log.Fatal(err)
	}
	an, err := ccprof.ProfileAndAnalyze(cs.Original,
		ccprof.ProfileOptions{Period: pmu.Uniform(cs.ProfilePeriod), Seed: 1, NoTime: true},
		ccprof.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CCProf verdict on %s: conflict=%v (cf %.1f%%)\n", cs.Name, an.Conflict, 100*an.CF)
	if len(an.Data) > 0 {
		fmt.Printf("dominant data structure: %s (%d short-RCD samples)\n\n",
			an.Data[0].Name, an.Data[0].ShortRCD)
	}

	// Step 2: let the advisor search pad sizes for W. The build function
	// reconstructs the kernel at an arbitrary pad; the paper picked 64
	// bytes by hand.
	res, err := ccprof.RecommendPad(func(pad uint64) *ccprof.Program {
		return workloads.TinyDNNAt(256, 1024, 1, pad)
	}, advisor.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pad search (scored on a latency-weighted L1+L2 simulation):")
	fmt.Printf("  %6s  %10s  %10s  %12s  %8s\n", "pad", "L1 misses", "L2 misses", "cycles", "cf")
	for _, c := range res.Candidates {
		marker := " "
		if c.Pad == res.Best.Pad {
			marker = "*"
		}
		fmt.Printf("%s %6d  %10d  %10d  %12d  %7.1f%%\n",
			marker, c.Pad, c.Misses, c.L2Misses, c.Cycles, 100*c.CF)
	}
	fmt.Printf("\nrecommended pad: %d bytes per W row (%.1f%% cycle reduction vs unpadded)\n",
		res.Best.Pad, 100*res.Improvement())
}
