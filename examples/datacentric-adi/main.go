// Data-centric attribution on PolyBench ADI (§6.2): map sampled conflict
// misses back to the allocations they fall in, identify the victim matrix,
// and show the per-set miss concentration that padding disperses.
//
// Run with: go run ./examples/datacentric-adi
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/rcd"
	"repro/internal/trace"
)

func main() {
	cs, err := ccprof.Workload("adi")
	if err != nil {
		log.Fatal(err)
	}

	// Sampled view (what CCProf sees in production).
	an, err := ccprof.ProfileAndAnalyze(cs.Original,
		ccprof.ProfileOptions{Period: pmu.Uniform(cs.ProfilePeriod), Seed: 1, NoTime: true},
		ccprof.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== sampled data-centric attribution (ADI, original) ===")
	for _, d := range an.Data {
		fmt.Printf("  %-4s %6d samples (%5.1f%%), %6d with short RCD\n",
			d.Name, d.Samples, 100*d.Contribution, d.ShortRCD)
	}
	fmt.Println("\nAll three matrices share the power-of-two row layout, so the")
	fmt.Println("column sweep conflicts on each of them; the paper pads u (and")
	fmt.Println("we pad all rows) by 32 bytes.")

	// Ground-truth view: exact simulation. Over the whole run the victim
	// set rotates with the column index, so the *global* set histogram
	// looks balanced — exactly the temporal blindness (§3.2, Figure 4)
	// that motivates RCD. A short window exposes the concentration.
	fmt.Println("\n=== exact simulation (ground truth) ===")
	geom := mem.L1Default()
	window := func(p *ccprof.Program) (setsInWindow int, cf float64, uShare float64) {
		l1 := cache.New(geom, cache.LRU, nil)
		tr := rcd.New(geom.Sets)
		win := rcd.New(geom.Sets)
		var misses, uMisses uint64
		p.Run(trace.SinkFunc(func(r trace.Ref) {
			if l1.Access(r.Addr).Hit {
				return
			}
			misses++
			tr.Observe(geom.Set(r.Addr))
			// A 2000-miss window in the middle of the first
			// timestep's column sweep.
			if misses > 400_000 && misses <= 402_000 {
				win.Observe(geom.Set(r.Addr))
			}
			if blk, ok := p.Arena.Find(r.Addr); ok && blk.Name == "u" {
				uMisses++
			}
		}))
		return win.SetsUsed(), tr.ContributionFactor(rcd.DefaultThreshold),
			float64(uMisses) / float64(misses)
	}

	setsO, cfO, uShare := window(cs.Original)
	fmt.Printf("original: matrix u takes %.1f%% of L1 misses;\n", 100*uShare)
	fmt.Printf("  a 2000-miss window during the column sweep touches %d/64 sets\n", setsO)
	fmt.Printf("  exact cf(T=%d) = %.1f%%\n", rcd.DefaultThreshold, 100*cfO)

	setsP, cfP, _ := window(cs.Optimized)
	fmt.Printf("padded:   the same window touches %d/64 sets, exact cf = %.1f%%\n", setsP, 100*cfP)
	fmt.Println("\nNote the exact cf stays elevated after padding: the padded column")
	fmt.Println("sweep still misses in short bursts per set (streaming), which full-")
	fmt.Println("sequence RCD counts as short distances. The *sampled* view above —")
	fmt.Println("what CCProf actually measures — discriminates correctly, because at")
	fmt.Println("the sampling period only persistent set concentration survives.")
}
