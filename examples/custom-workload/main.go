// Bring your own kernel: build a synthetic binary and allocation arena for
// a custom loop nest, wrap it as a Program, and run the full CCProf
// pipeline on it — the workflow §A.6 of the paper's artifact describes for
// "evaluating a new application".
//
// The kernel here is a classic histogram with a power-of-two-strided bin
// layout: bins padded to 4096 bytes apart all live in cache set 0, so
// random increments conflict; the fixed layout packs them densely.
//
// Run with: go run ./examples/custom-workload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/pmu"
	"repro/internal/trace"
)

// buildHistogram constructs the custom workload. binStride is the distance
// in bytes between consecutive bins.
func buildHistogram(name string, bins int, binStride uint64, updates int) *ccprof.Program {
	// 1. Describe the kernel's code: one loop over updates, with a load
	//    and a store on the touched bin. The analyzer will rediscover
	//    this loop from the binary and attribute samples to it.
	b := ccprof.NewBinaryBuilder(name)
	b.Func("histogram")
	b.Loop("hist.c", 10)
	ld := b.Load("hist.c", 11)  // bin[k] read
	st := b.Store("hist.c", 12) // bin[k] += 1
	b.EndLoop()
	bin := b.Finish()

	// 2. Describe the data: one allocation holding all bins at the given
	//    stride (a padded struct-of-counters layout).
	ar := ccprof.NewArena()
	table := ar.Alloc("bin_table", uint64(bins)*binStride, 4096)

	// 3. The run function emits one load+store per histogram update, at
	//    pseudo-random bins (seeded, so runs are reproducible).
	run := func(tid, threads int, sink ccprof.Sink) {
		if tid != 0 {
			return
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < updates; i++ {
			addr := table.Start + uint64(rng.Intn(bins))*binStride
			sink.Ref(trace.Ref{IP: ld, Addr: addr})
			sink.Ref(trace.Ref{IP: st, Addr: addr, Write: true})
		}
	}
	return ccprof.NewProgram(name, bin, ar, run)
}

func main() {
	const bins, updates = 256, 400_000

	// The "bad" layout spaces bins one page apart: every bin maps to the
	// same L1 set (4096 = 64 sets x 64B lines). The "good" layout packs
	// them at 64B (one line per bin, walking all sets).
	bad := buildHistogram("histogram-padded4k", bins, 4096, updates)
	good := buildHistogram("histogram-dense", bins, 64, updates)

	for _, p := range []*ccprof.Program{bad, good} {
		an, err := ccprof.ProfileAndAnalyze(p,
			ccprof.ProfileOptions{Period: pmu.Uniform(171), Seed: 1, NoTime: true},
			ccprof.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "clean"
		if an.Conflict {
			verdict = "CONFLICT MISSES"
		}
		fmt.Printf("%-22s cf(T=8)=%5.1f%%  verdict: %s\n", p.Name, 100*an.CF, verdict)
		for _, l := range an.Loops {
			fmt.Printf("    loop %-12s %6d samples, %2d sets used, cf %5.1f%%\n",
				l.Loop, l.Samples, l.SetsUsed, 100*l.CF)
		}
		for _, d := range an.Data {
			fmt.Printf("    data %-12s %6d samples, %6d short-RCD\n", d.Name, d.Samples, d.ShortRCD)
		}
		fmt.Println()
	}

	fmt.Println("The page-strided table concentrates every access in one cache set")
	fmt.Println("(256 lines fighting over 8 ways); the dense table spreads bins")
	fmt.Println("across all 64 sets and CCProf reports it clean.")
}
