// Quickstart: profile the symmetrization kernel from §2.1 of the paper,
// detect its conflict misses, and confirm that the 64-byte row pad removes
// them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/pmu"
)

func main() {
	cs, err := ccprof.Workload("symmetrization")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %s\n\n", cs.Name, cs.Desc)

	for _, prog := range []*ccprof.Program{cs.Original, cs.Optimized} {
		// Online phase: run under the simulated PMU, sampling L1-miss
		// addresses at the period this case study needs.
		prof, err := ccprof.ProfileProgram(prog, ccprof.ProfileOptions{
			Period: pmu.Uniform(cs.ProfilePeriod),
			Seed:   1,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Offline phase: recover loops from the binary, approximate RCD
		// distributions, classify, attribute.
		an, err := ccprof.Analyze(prof, prog.Binary, prog.Arena, ccprof.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := ccprof.WriteReport(os.Stdout, an); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("The original variant concentrates L1 misses on a few cache sets")
	fmt.Println("(short re-conflict distances); after padding each row by one cache")
	fmt.Println("line, misses spread across all 64 sets and the verdict flips.")
}
