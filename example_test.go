package ccprof_test

import (
	"fmt"

	"repro"
	"repro/internal/pmu"
)

// Example demonstrates the core CCProf workflow: profile a workload with
// sampled L1-miss addresses, analyze, and read the verdict.
func Example() {
	cs, err := ccprof.Workload("tinydnn")
	if err != nil {
		panic(err)
	}
	analyze := func(p *ccprof.Program) *ccprof.Analysis {
		an, err := ccprof.ProfileAndAnalyze(p,
			ccprof.ProfileOptions{Period: pmu.Uniform(cs.ProfilePeriod), Seed: 1, NoTime: true},
			ccprof.AnalyzeOptions{})
		if err != nil {
			panic(err)
		}
		return an
	}
	orig := analyze(cs.Original)
	opt := analyze(cs.Optimized)
	fmt.Printf("original conflict: %v\n", orig.Conflict)
	fmt.Printf("padded conflict:   %v\n", opt.Conflict)
	fmt.Printf("top data structure: %s\n", orig.Data[0].Name)
	// Output:
	// original conflict: true
	// padded conflict:   false
	// top data structure: W
}

// ExampleNewProgram shows how a user kernel plugs into the profiler: build
// a synthetic binary, describe the data, emit one Ref per access.
func ExampleNewProgram() {
	b := ccprof.NewBinaryBuilder("demo")
	b.Func("main")
	b.Loop("demo.c", 1)
	ld := b.Load("demo.c", 2)
	b.EndLoop()
	bin := b.Finish()

	ar := ccprof.NewArena()
	table := ar.Alloc("table", 64*4096, 4096)

	p := ccprof.NewProgram("demo", bin, ar, func(tid, threads int, sink ccprof.Sink) {
		if tid != 0 {
			return
		}
		for i := 0; i < 100_000; i++ {
			// Page-strided accesses: every address lands in one L1 set.
			sink.Ref(ccprof.Ref{IP: ld, Addr: table.Start + uint64(i%64)*4096})
		}
	})

	an, err := ccprof.ProfileAndAnalyze(p,
		ccprof.ProfileOptions{Period: pmu.Uniform(171), Seed: 1, NoTime: true},
		ccprof.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("loop %s conflict: %v\n", an.Loops[0].Loop, an.Loops[0].Conflict)
	fmt.Printf("sets used: %d\n", an.Loops[0].SetsUsed)
	// Output:
	// loop demo.c:1 conflict: true
	// sets used: 1
}
