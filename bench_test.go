package ccprof

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus the ablations
// from DESIGN.md and micro-benchmarks of the profiling substrates. Each
// experiment benchmark prints its reproduced table/figure once (on the
// first iteration) and reports domain-specific metrics via b.ReportMetric.
//
// Experiment benches run at Quick scale by default so `go test -bench=.`
// finishes promptly; set CCPROF_BENCH_FULL=1 to regenerate the full-scale
// numbers recorded in EXPERIMENTS.md (cmd/experiments does the same).

import (
	"fmt"
	"os"
	"runtime/debug"
	"testing"

	"repro/internal/advisor"
	"repro/internal/analytic"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/staticconf"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func benchScale() experiments.Scale {
	if os.Getenv("CCPROF_BENCH_FULL") != "" {
		return experiments.Full
	}
	return experiments.Quick
}

// printOnce renders an experiment's report to stdout on the first
// iteration only.
func printOnce(b *testing.B, i int, render func() error) {
	if i != 0 {
		return
	}
	b.StopTimer()
	if err := render(); err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
}

// BenchmarkFig2Symmetrization regenerates Figure 2: L2 miss reduction from
// 64-byte row padding of the symmetrization kernel.
func BenchmarkFig2Symmetrization(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Fig2(os.Stdout, scale); return err })
		b.ReportMetric(res.L2ReductionPct, "L2red%")
	}
}

// BenchmarkFig7RodiniaCDF regenerates Figure 7: RCD CDFs of the 18
// Rodinia-style kernels; the reported metrics are NW's short-RCD
// contribution factor versus the maximum among the clean kernels.
func BenchmarkFig7RodiniaCDF(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Fig7(os.Stdout, scale); return err })
		var nw, maxClean float64
		for _, r := range rows {
			if r.App == "nw" {
				nw = r.CF
			} else if r.CF > maxClean {
				maxClean = r.CF
			}
		}
		b.ReportMetric(100*nw, "nw-cf%")
		b.ReportMetric(100*maxClean, "maxclean-cf%")
	}
}

// BenchmarkFig8AccuracyOverhead regenerates Figure 8: classifier F1 and
// mean overhead across the sampling-period sweep. Reported metrics are the
// F1 scores at the paper's two anchor periods (171 and 1212).
func BenchmarkFig8AccuracyOverhead(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8(nil, scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Fig8(os.Stdout, scale, nil); return err })
		for _, p := range pts {
			switch p.Period {
			case 171:
				b.ReportMetric(p.F1, "F1@171")
			case 1212:
				b.ReportMetric(p.F1, "F1@1212")
				b.ReportMetric(p.Overhead, "overhead@1212")
			}
		}
	}
}

// BenchmarkFig9BeforeAfter regenerates Figure 9: short-RCD contribution
// before vs after each case study's optimization; the metric is the mean
// relative reduction.
func BenchmarkFig9BeforeAfter(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Fig9(os.Stdout, scale); return err })
		var sum float64
		for _, r := range rows {
			if r.CFOrig > 0 {
				sum += 1 - r.CFOpt/r.CFOrig
			}
		}
		b.ReportMetric(100*sum/float64(len(rows)), "meanCFred%")
	}
}

// BenchmarkTable2Overhead regenerates Table 2: per-app loop contributions
// and profiling-vs-simulation overheads; the metrics are the medians the
// paper headlines (simulation 264x, CCProf 1.37x).
func BenchmarkTable2Overhead(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Table2(os.Stdout, scale); return err })
		sims := make([]float64, 0, len(rows))
		profs := make([]float64, 0, len(rows))
		for _, r := range rows {
			sims = append(sims, r.SimOverheadLoop)
			profs = append(profs, r.CCProfOverhead)
		}
		b.ReportMetric(median(sims), "sim-median-x")
		b.ReportMetric(median(profs), "ccprof-median-x")
	}
}

// BenchmarkTable3Speedup regenerates Table 3: hierarchy-simulated speedups
// and miss reductions for every case study on both machines.
func BenchmarkTable3Speedup(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Table3(os.Stdout, scale); return err })
		var best, sum float64
		for _, r := range rows {
			sum += r.Speedup
			if r.Speedup > best {
				best = r.Speedup
			}
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-speedup-x")
		b.ReportMetric(best, "best-speedup-x")
	}
}

// BenchmarkTable4NWLoops regenerates Table 4: per-loop set utilization of
// Needleman-Wunsch; metrics are the sets used by the hottest and coldest
// attributed loops.
func BenchmarkTable4NWLoops(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Table4(os.Stdout, scale); return err })
		if len(rows) > 0 {
			b.ReportMetric(float64(rows[0].SetsUsed), "top-loop-sets")
			b.ReportMetric(float64(rows[len(rows)-1].SetsUsed), "bottom-loop-sets")
		}
	}
}

// Ablation benches (design choices from DESIGN.md).

// BenchmarkAblationThreshold sweeps the short-RCD threshold T and reports
// the separation margin at the paper's T=8.
func BenchmarkAblationThreshold(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationThreshold(nil, scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.AblationThreshold(os.Stdout, scale, nil); return err })
		for _, r := range rows {
			if r.T == 8 {
				b.ReportMetric(100*r.Margin, "margin@T8%")
			}
		}
	}
}

// BenchmarkAblationPeriodDist compares period-randomization strategies.
func BenchmarkAblationPeriodDist(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPeriodDist(nil, scale, 0); err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.AblationPeriodDist(os.Stdout, scale, 0); return err })
	}
}

// BenchmarkAblationReplacement compares L1 replacement policies.
func BenchmarkAblationReplacement(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationReplacement(nil, scale); err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.AblationReplacement(os.Stdout, scale); return err })
	}
}

// BenchmarkSpecgenExtraction regenerates the extracted-spec confusion
// matrix (static verdicts from specs the source-level extractor derives
// with no hand-written input, against exact simulation) and reports the
// extraction cost per kernel variant.
func BenchmarkSpecgenExtraction(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Specgen(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Specgen(os.Stdout, scale); return err })
		b.ReportMetric(100*res.Agreement(), "agree%")
		b.ReportMetric(float64(res.ExtractTime.Microseconds())/float64(len(res.Rows)), "µs/extract")
	}
}

// Micro-benchmarks of the substrates (throughput per reference).

// BenchmarkSamplerThroughput measures the simulated-PMU cost per reference
// — the in-harness analogue of CCProf's online overhead.
func BenchmarkSamplerThroughput(b *testing.B) {
	s := pmu.NewSampler(pmu.Config{Geom: mem.L1Default(), Period: pmu.Uniform(pmu.DefaultPeriod), Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Ref(trace.Ref{IP: 1, Addr: uint64(i) * 64})
	}
}

// BenchmarkWorkloadEmission measures raw trace-generation speed (the
// "application running natively" baseline of the overhead comparison).
func BenchmarkWorkloadEmission(b *testing.B) {
	cs := workloads.NewADI(256, 1)
	var n int64
	for i := 0; i < b.N; i++ {
		var c trace.Counter
		cs.Original.Run(&c)
		n += int64(c.Total())
	}
	b.ReportMetric(float64(n)/float64(b.N), "refs/op")
}

// BenchmarkExactSimulation measures the trace-driven simulator's cost per
// reference (the Dinero-path the paper compares against).
func BenchmarkExactSimulation(b *testing.B) {
	cs := workloads.NewADI(256, 1)
	rec := cs.Original.Record()
	sys := Simulate(cs.Original, Skylake(), 1)
	_ = sys
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1 := Simulate(cs.Original, Skylake(), 1)
		_ = l1
	}
	b.ReportMetric(float64(rec.Len()), "refs/op")
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// BenchmarkBaselineDetectors regenerates the detector-comparison table
// (related work, §7.1): CCProf vs DProf-style vs MST vs exact 3C.
func BenchmarkBaselineDetectors(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Baselines(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.Baselines(os.Stdout, scale); return err })
		for _, r := range rows {
			if r.Detector == "CCProf (RCD, sampled)" {
				b.ReportMetric(r.F1(), "ccprof-F1")
			}
		}
	}
}

// BenchmarkL2Extension regenerates the physically-indexed L2 study (the
// paper's footnote-1 future work, built here).
func BenchmarkL2Extension(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.L2Extension(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.L2Extension(os.Stdout, scale); return err })
		for _, r := range rows {
			if r.Variant == "original" && r.Policy == 0 {
				b.ReportMetric(100*r.CF, "orig-identity-cf%")
			}
		}
	}
}

// BenchmarkAblationBurst compares bursty vs single-event sampling (the
// paper's §5.2 "bursty sampling" approximation) at equal sample budget.
func BenchmarkAblationBurst(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBurst(nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() error { _, err := experiments.AblationBurst(os.Stdout, scale); return err })
		for _, r := range rows {
			if r.Mode[0] == 'b' {
				b.ReportMetric(r.F1, "burst-F1")
			} else {
				b.ReportMetric(r.F1, "single-F1")
			}
		}
	}
}

// Parallel-engine benchmarks: batched reference streaming and the sharded
// sweep executor (BENCH_2.json snapshots these).

// BenchmarkUnbatchedStream measures per-reference delivery into the PMU
// sampler — one interface dispatch per access, the pre-batching baseline.
func BenchmarkUnbatchedStream(b *testing.B) {
	refs := workloads.NewADI(256, 1).Original.Record().Refs
	s := pmu.NewSampler(pmu.Config{Geom: mem.L1Default(), Period: pmu.Uniform(pmu.DefaultPeriod), Seed: 1})
	s.Grow(len(refs))
	var sink trace.Sink = s // dispatch through the interface, as workloads do
	b.SetBytes(int64(len(refs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range refs {
			sink.Ref(r)
		}
		s.Samples = s.Samples[:0] // reuse the preallocated sample buffer
	}
	b.ReportMetric(float64(len(refs)), "refs/op")
}

// BenchmarkBatchedStream measures the same stream delivered in
// DefaultBatch-sized slices — one dispatch per batch, the tightened inner
// loop, zero allocations per reference.
func BenchmarkBatchedStream(b *testing.B) {
	refs := workloads.NewADI(256, 1).Original.Record().Refs
	s := pmu.NewSampler(pmu.Config{Geom: mem.L1Default(), Period: pmu.Uniform(pmu.DefaultPeriod), Seed: 1})
	s.Grow(len(refs))
	b.SetBytes(int64(len(refs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(refs); lo += trace.DefaultBatch {
			hi := lo + trace.DefaultBatch
			if hi > len(refs) {
				hi = len(refs)
			}
			s.RefBatch(refs[lo:hi])
		}
		s.Samples = s.Samples[:0]
	}
	b.ReportMetric(float64(len(refs)), "refs/op")
}

// BenchmarkBlockStream measures the same stream delivered as
// struct-of-arrays RefBlocks into the sampler's fused sample+classify pass —
// the replay fast path: contiguous 8-byte address reads, one fused
// cache+sampler loop per block, zero allocations per reference. Against
// BenchmarkBatchedStream this is the headline devirtualization+SoA speedup
// (BENCH_5.json vs BENCH_2.json).
func BenchmarkBlockStream(b *testing.B) {
	refs := workloads.NewADI(256, 1).Original.Record().Refs
	var blk trace.RefBlock
	blk.AppendRefs(refs)
	s := pmu.NewSampler(pmu.Config{Geom: mem.L1Default(), Period: pmu.Uniform(pmu.DefaultPeriod), Seed: 1})
	s.Grow(len(refs))
	b.SetBytes(int64(len(refs)))
	b.ReportAllocs()
	stream := func() {
		for lo := 0; lo < blk.Len(); lo += trace.DefaultBlock {
			hi := lo + trace.DefaultBlock
			if hi > blk.Len() {
				hi = blk.Len()
			}
			sub := trace.RefBlock{IP: blk.IP[lo:hi], Addr: blk.Addr[lo:hi], Flags: blk.Flags[lo:hi]}
			s.RefBlock(&sub)
		}
		s.Samples = s.Samples[:0]
	}
	// One untimed pass first: the sampler's first block triggers a one-shot
	// lazy growth (~16KiB) that earlier snapshots (BENCH_5.json) amortized
	// into a misleading "35 B/op at 0 allocs/op". Steady state is what the
	// fast path claims, so steady state is what gets timed.
	stream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream()
	}
	b.ReportMetric(float64(len(refs)), "refs/op")
}

// BenchmarkStreamingProfile measures the fused online pipeline — PMU
// sampling plus online RCD/CF analysis, nothing buffered — across a 100x
// trace-length sweep. The claim under test is bounded memory: the timed
// region is pure stream consumption into a live analyzer, so B/op is what
// a longer trace costs in allocations and must sit flat at zero from 1x to
// 100x; only ns/op scales. Report assembly (Finish) happens once outside
// the timer — its output legitimately sizes with the number of distinct
// RCD values observed, which is diversity, not trace length. BENCH_6.json
// snapshots this sweep.
func BenchmarkStreamingProfile(b *testing.B) {
	p := workloads.NewNW(256, 16).Original
	refs := p.Record().Refs
	if len(refs) > 65536 {
		refs = refs[:65536]
	}
	var blk trace.RefBlock
	blk.AppendRefs(refs)
	cfg := pmu.Config{Geom: mem.L1Default(), Period: pmu.Uniform(171), Seed: 42}
	s := pmu.NewSampler(cfg)
	// GC off for the sweep so sync.Pool eviction can't smear refill costs
	// into whichever op a collection lands in.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, times := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("%dx", times), func(b *testing.B) {
			sa, err := NewStreamAnalyzer(p.Binary, p.Arena, L1Default(), 1, 1, AnalyzeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			s.Reconfigure(cfg)
			s.Handler = sa.HandlerFor(0)
			for j := 0; j < times; j++ { // saturate the online state
				s.RefBlock(&blk)
			}
			b.SetBytes(int64(times * blk.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < times; j++ {
					s.RefBlock(&blk)
				}
			}
			b.StopTimer()
			s.Handler = nil
			if an := sa.Finish(p.Name); an.TotalSamples == 0 {
				b.Fatal("no samples streamed")
			}
			b.ReportMetric(float64(times*blk.Len()), "refs/op")
		})
	}
}

// BenchmarkFusedSweep is the Rodinia Figure 7 sweep on the fused block path
// with pooled per-shard state, pinned to one worker — the allocs/op and
// wall-clock successor to BenchmarkSweepSerial (BENCH_2's 8196 allocs/op
// baseline).
func BenchmarkFusedSweep(b *testing.B) {
	SetParallelism(1)
	defer SetParallelism(0)
	scale := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(nil, scale); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep runs the full Rodinia Figure 7 sweep on the sharded executor
// at the given worker count. Serial vs parallel wall-clock is the headline
// comparison of BENCH_2.json; the outputs are byte-identical (see
// internal/experiments/determinism_test.go), only the schedule differs.
func benchSweep(b *testing.B, workers int) {
	SetParallelism(workers)
	defer SetParallelism(0)
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(nil, scale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the Rodinia sweep pinned to one worker.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel is the Rodinia sweep at four workers. On a
// multicore host this is where the engine's speedup shows; on a single
// hardware thread it degrades gracefully to serial throughput.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 4) }

// analyticBenchSpecs collects the declared specs of the six case studies
// (both variants) at quick scale — the 12 rows of the analytic
// experiment's confusion matrix.
func analyticBenchSpecs() []*staticconf.Spec {
	var specs []*staticconf.Spec
	for _, cs := range []*workloads.CaseStudy{
		workloads.NewNW(512, 16),
		workloads.NewFFT(128),
		workloads.NewADI(256, 1),
		workloads.NewTinyDNN(128, 1024, 1),
		workloads.NewKripke(64, 32, 32),
		workloads.NewHimeno(16, 16, 64, 1),
	} {
		for _, prog := range []*workloads.Program{cs.Original, cs.Optimized} {
			if prog.Spec != nil {
				specs = append(specs, prog.Spec)
			}
		}
	}
	return specs
}

// BenchmarkAnalyticModel measures the closed-form tier-0 model alone: one
// complete analysis of every case-study variant per iteration. The
// ns/variant metric is the cascade's per-candidate evaluation cost — the
// number to hold against the per-candidate simulation cost reported by
// BenchmarkAdvisorTierCascade/simulation-only.
func BenchmarkAnalyticModel(b *testing.B) {
	specs := analyticBenchSpecs()
	g := mem.L1Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sp := range specs {
			if _, err := analytic.Analyze(sp, g, analytic.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(specs)), "ns/variant")
}

// BenchmarkAdvisorTierCascade compares the advisor's pad sweep with the
// static tiers off (every candidate simulated) and with the full cascade
// on, over a dense 81-candidate grid on quick-scale ADI. The ns/cand
// metric of the simulation-only run divided by BenchmarkAnalyticModel's
// ns/variant is the per-candidate evaluation speedup of tier 0.
func BenchmarkAdvisorTierCascade(b *testing.B) {
	cs := workloads.NewADI(256, 1)
	var pads []uint64
	for p := uint64(0); p <= 640; p += 8 {
		pads = append(pads, p)
	}
	run := func(b *testing.B, opts advisor.Options) {
		opts.Pads = pads
		for i := 0; i < b.N; i++ {
			res, err := advisor.RecommendPad(cs.PadBuilder, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(res.Candidates)), "sims")
			b.ReportMetric(float64(len(res.Pruned)), "pruned")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pads)), "ns/cand")
	}
	b.Run("simulation-only", func(b *testing.B) {
		run(b, advisor.Options{})
	})
	b.Run("cascade", func(b *testing.B) {
		run(b, advisor.Options{Tiers: advisor.Cascade(), Spec: cs.SpecBuilder(), StaticKeep: 2})
	})
	// analytic-eval is the apples-to-apples numerator-free comparison: the
	// exact per-candidate work tier 0 does inside the cascade (spec build +
	// closed-form analysis, no reference histogram) over the same grid.
	b.Run("analytic-eval", func(b *testing.B) {
		build := cs.SpecBuilder()
		g := mem.L1Default()
		for i := 0; i < b.N; i++ {
			for _, p := range pads {
				sp := build(p)
				if _, err := analytic.Analyze(sp, g, analytic.Options{SkipTouches: true}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pads)), "ns/cand")
	})
}
