package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of diffing against them:
//
//	go test ./cmd/cctrace -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/cctrace -run TestGolden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from %s.\nIf the change is intentional, re-golden with -update.\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, want)
	}
}

// TestGolden pins cctrace's JSONL ingestion end to end: the perf-script
// style sample decodes to a fixed reference dump, its summary statistics
// are stable, and converting it to the framed binary format and decoding
// that back yields the same references (minus the skipped metadata
// records, which never enter the binary trace).
func TestGolden(t *testing.T) {
	input := filepath.Join("testdata", "perf.jsonl")

	t.Run("dump", func(t *testing.T) {
		var buf bytes.Buffer
		if err := dump(&buf, input, true, 0); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "perf.dump.golden", buf.Bytes())
	})

	t.Run("stats", func(t *testing.T) {
		var buf bytes.Buffer
		if err := printStats(&buf, input, true, 0); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "perf.stats.golden", buf.Bytes())
	})

	t.Run("framed-roundtrip", func(t *testing.T) {
		out := filepath.Join(t.TempDir(), "perf.cctb")
		var conv bytes.Buffer // report embeds the temp path; not goldened
		if err := convert(&conv, input, out, "framed", true, 4, 0); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := dump(&buf, out, false, 0); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "perf.framed.dump.golden", buf.Bytes())
	})

	t.Run("head", func(t *testing.T) {
		var buf bytes.Buffer
		if err := dump(&buf, input, true, 3); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "perf.head3.dump.golden", buf.Bytes())
	})
}

// TestConvertRejectsUnknownFormat keeps the format switch honest.
func TestConvertRejectsUnknownFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x")
	err := convert(new(bytes.Buffer), filepath.Join("testdata", "perf.jsonl"), out, "sideways", true, 0, 0)
	if err == nil {
		t.Fatal("unknown format accepted")
	}
}
