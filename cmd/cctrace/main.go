// Command cctrace inspects and converts CCProf reference traces.
//
// Usage:
//
//	cctrace -stats FILE                     # summarize a trace (any binary format)
//	cctrace -dump FILE                      # print decoded references as text
//	cctrace -in FILE -out FILE              # convert; -format picks flat|compressed|framed
//	cctrace -jsonl -in S.jsonl -out S.cct   # ingest perf-script style JSONL
//	cctrace -head N -stats FILE             # only the first N references
//
// The framed format (-format framed) is the streaming profiler's native
// input: frames are independently decodable, so ccprof's trace mode can
// shard the file at frame boundaries and resume a partially consumed trace
// from a checkpoint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mem"
	"repro/internal/trace"
)

func main() {
	var (
		statsIn  = flag.String("stats", "", "print summary statistics of this trace")
		dumpIn   = flag.String("dump", "", "print this trace's decoded references as text")
		in       = flag.String("in", "", "convert: input trace")
		out      = flag.String("out", "", "convert: output trace")
		format   = flag.String("format", "flat", "convert: output format: flat, compressed, or framed")
		compress = flag.Bool("compress", false, "convert: shorthand for -format compressed")
		frame    = flag.Int("frame", 0, "framed output: references per frame (0 = the default block size)")
		jsonl    = flag.Bool("jsonl", false, "input is perf-script style JSONL, one record per line")
		head     = flag.Uint64("head", 0, "process only the first N references (0 = all)")
	)
	flag.Parse()

	if *compress {
		*format = "compressed"
	}
	switch {
	case *statsIn != "":
		if err := printStats(os.Stdout, *statsIn, *jsonl, *head); err != nil {
			fatal(err)
		}
	case *dumpIn != "":
		if err := dump(os.Stdout, *dumpIn, *jsonl, *head); err != nil {
			fatal(err)
		}
	case *in != "" && *out != "":
		if err := convert(os.Stdout, *in, *out, *format, *jsonl, *frame, *head); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// readTrace feeds path's references into sink, decoding JSONL when asked and
// sniffing the binary format otherwise. It returns the reference count and,
// for JSONL, the number of records skipped for lacking an address.
func readTrace(path string, jsonl bool, head uint64, sink trace.Sink) (n int, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if head > 0 {
		sink = &trace.Limit{N: head, Next: sink}
	}
	if jsonl {
		return trace.ReadJSONL(f, sink)
	}
	n, err = trace.ReadAny(f, sink)
	return n, 0, err
}

func printStats(w io.Writer, path string, jsonl bool, head uint64) error {
	geom := mem.L1Default()
	var count trace.Counter
	ips := map[uint64]uint64{}
	sets := make([]uint64, geom.Sets)
	var minAddr, maxAddr uint64 = ^uint64(0), 0

	n, skipped, err := readTrace(path, jsonl, head, trace.SinkFunc(func(r trace.Ref) {
		count.Ref(r)
		ips[r.IP]++
		sets[geom.Set(r.Addr)]++
		if r.Addr < minAddr {
			minAddr = r.Addr
		}
		if r.Addr > maxAddr {
			maxAddr = r.Addr
		}
	}))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "references: %d (%d reads, %d writes)\n", n, count.Reads, count.Writes)
	if skipped > 0 {
		fmt.Fprintf(w, "skipped: %d records without an address\n", skipped)
	}
	if count.Total() == 0 {
		return nil
	}
	fmt.Fprintf(w, "distinct IPs: %d\n", len(ips))
	fmt.Fprintf(w, "address range: [%#x, %#x] (%d bytes)\n", minAddr, maxAddr, maxAddr-minAddr+1)
	var used int
	var maxSet uint64
	for _, c := range sets {
		if c > 0 {
			used++
		}
		if c > maxSet {
			maxSet = c
		}
	}
	fmt.Fprintf(w, "L1 sets touched (64-set view): %d/64, busiest share %.1f%%\n",
		used, 100*float64(maxSet)/float64(count.Total()))
	return nil
}

// dump prints one line per decoded reference in a fixed, diff-friendly
// layout — the format the golden tests pin.
func dump(w io.Writer, path string, jsonl bool, head uint64) error {
	i := 0
	n, skipped, err := readTrace(path, jsonl, head, trace.SinkFunc(func(r trace.Ref) {
		op := "read"
		if r.Write {
			op = "write"
		}
		fmt.Fprintf(w, "%8d  ip=%#012x  addr=%#012x  %s\n", i, r.IP, r.Addr, op)
		i++
	}))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "references: %d\n", n)
	if skipped > 0 {
		fmt.Fprintf(w, "skipped: %d records without an address\n", skipped)
	}
	return nil
}

func convert(w io.Writer, inPath, outPath, format string, jsonl bool, frame int, head uint64) error {
	fout, err := os.Create(outPath)
	if err != nil {
		return err
	}
	var sink interface {
		trace.Sink
		Close() error
	}
	switch format {
	case "flat":
		sink = trace.NewWriter(fout)
	case "compressed":
		sink = trace.NewCompressedWriter(fout)
	case "framed":
		sink = trace.NewTraceWriter(fout, frame)
	default:
		fout.Close()
		return fmt.Errorf("unknown output format %q (want flat, compressed, or framed)", format)
	}
	n, skipped, err := readTrace(inPath, jsonl, head, sink)
	if err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if err := fout.Close(); err != nil {
		return err
	}
	st, err := os.Stat(outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "converted %d references -> %s (%d bytes, %s)\n", n, outPath, st.Size(), format)
	if skipped > 0 {
		fmt.Fprintf(w, "skipped: %d records without an address\n", skipped)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cctrace:", err)
	os.Exit(1)
}
