// Command cctrace inspects and converts CCProf reference traces.
//
// Usage:
//
//	cctrace -stats FILE              # summarize a trace (either format)
//	cctrace -in FILE -out FILE       # convert; -compress picks the format
//	cctrace -head N -stats FILE      # only the first N references
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mem"
	"repro/internal/trace"
)

func main() {
	var (
		statsIn  = flag.String("stats", "", "print summary statistics of this trace")
		in       = flag.String("in", "", "convert: input trace")
		out      = flag.String("out", "", "convert: output trace")
		compress = flag.Bool("compress", false, "convert: write the compressed format")
		head     = flag.Uint64("head", 0, "process only the first N references (0 = all)")
	)
	flag.Parse()

	switch {
	case *statsIn != "":
		if err := printStats(*statsIn, *head); err != nil {
			fatal(err)
		}
	case *in != "" && *out != "":
		if err := convert(*in, *out, *compress, *head); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printStats(path string, head uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	geom := mem.L1Default()
	var count trace.Counter
	ips := map[uint64]uint64{}
	sets := make([]uint64, geom.Sets)
	var minAddr, maxAddr uint64 = ^uint64(0), 0

	var sink trace.Sink = trace.SinkFunc(func(r trace.Ref) {
		count.Ref(r)
		ips[r.IP]++
		sets[geom.Set(r.Addr)]++
		if r.Addr < minAddr {
			minAddr = r.Addr
		}
		if r.Addr > maxAddr {
			maxAddr = r.Addr
		}
	})
	if head > 0 {
		sink = &trace.Limit{N: head, Next: sink}
	}
	n, err := trace.ReadAny(f, sink)
	if err != nil {
		return err
	}
	fmt.Printf("references: %d (%d reads, %d writes)\n", n, count.Reads, count.Writes)
	if count.Total() == 0 {
		return nil
	}
	fmt.Printf("distinct IPs: %d\n", len(ips))
	fmt.Printf("address range: [%#x, %#x] (%d bytes)\n", minAddr, maxAddr, maxAddr-minAddr+1)
	var used int
	var maxSet uint64
	for _, c := range sets {
		if c > 0 {
			used++
		}
		if c > maxSet {
			maxSet = c
		}
	}
	fmt.Printf("L1 sets touched (64-set view): %d/64, busiest share %.1f%%\n",
		used, 100*float64(maxSet)/float64(count.Total()))
	return nil
}

func convert(inPath, outPath string, compress bool, head uint64) error {
	fin, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer fin.Close()
	fout, err := os.Create(outPath)
	if err != nil {
		return err
	}
	var w interface {
		trace.Sink
		Close() error
	}
	if compress {
		w = trace.NewCompressedWriter(fout)
	} else {
		w = trace.NewWriter(fout)
	}
	var sink trace.Sink = w
	if head > 0 {
		sink = &trace.Limit{N: head, Next: w}
	}
	n, err := trace.ReadAny(fin, sink)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := fout.Close(); err != nil {
		return err
	}
	st, err := os.Stat(outPath)
	if err != nil {
		return err
	}
	fmt.Printf("converted %d references -> %s (%d bytes)\n", n, outPath, st.Size())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cctrace:", err)
	os.Exit(1)
}
