// Command experiments regenerates the paper's tables and figures — the Go
// equivalent of the artifact's reproduce_result.sh.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -run fig8       # one experiment
//	experiments -quick          # shrunken workloads, seconds instead of minutes
//	experiments -out DIR        # write one artifact file per experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/parsim"
)

func main() {
	var (
		run   = flag.String("run", "", "run only this experiment (see -list)")
		list  = flag.Bool("list", false, "list experiments and exit")
		quick = flag.Bool("quick", false, "use shrunken workloads")
		out   = flag.String("out", "", "write per-experiment artifact files to this directory")
		jobs  = flag.Int("j", 0, "sweep-executor workers (0 = GOMAXPROCS; results are identical at any value)")
	)
	flag.Parse()
	parsim.SetDefaultWorkers(*jobs)

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	reg := experiments.Registry()
	names := experiments.Names()
	if *run != "" {
		if _, ok := reg[*run]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (available: %v)\n", *run, names)
			os.Exit(2)
		}
		names = []string{*run}
	}

	for _, name := range names {
		var w io.Writer = os.Stdout
		var f *os.File
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			var err error
			f, err = os.Create(filepath.Join(*out, name+".txt"))
			if err != nil {
				fatal(err)
			}
			w = f
			fmt.Printf("running %s -> %s\n", name, f.Name())
		} else {
			fmt.Printf("================ %s ================\n", name)
		}
		if err := reg[name](w, scale); err != nil {
			fatal(err)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		} else {
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
