// Command experiments regenerates the paper's tables and figures — the Go
// equivalent of the artifact's reproduce_result.sh.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -run fig8       # one experiment
//	experiments -quick          # shrunken workloads, seconds instead of minutes
//	experiments -out DIR        # write one artifact file per experiment
//	                            # (plus one <name>.obs.json snapshot each)
//	experiments -obs            # print per-experiment obs snapshots to stderr
//	experiments -metrics-addr :8080   # live /metrics, /debug/vars, /debug/pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parsim"
)

func main() {
	var (
		run         = flag.String("run", "", "run only this experiment (see -list)")
		list        = flag.Bool("list", false, "list experiments and exit")
		quick       = flag.Bool("quick", false, "use shrunken workloads")
		out         = flag.String("out", "", "write per-experiment artifact files to this directory")
		jobs        = flag.Int("j", 0, "sweep-executor workers (0 = GOMAXPROCS; results are identical at any value)")
		checkpoint  = flag.String("checkpoint", "", "checkpoint sweep shards to JSONL files in this directory (experiments that support it)")
		resume      = flag.Bool("resume", false, "with -checkpoint: skip shards already persisted by a previous run")
		obsOut      = flag.Bool("obs", false, "print each experiment's obs snapshot JSON to stderr")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	)
	flag.Parse()
	if *jobs < 0 {
		usageError(fmt.Sprintf("invalid -j %d: worker count cannot be negative", *jobs))
	}
	if *resume && *checkpoint == "" {
		usageError("-resume requires -checkpoint DIR")
	}
	parsim.SetDefaultWorkers(*jobs)
	if *checkpoint != "" {
		// Fail before any experiment runs if the directory is unusable.
		if err := os.MkdirAll(*checkpoint, 0o755); err != nil {
			fatal(fmt.Errorf("checkpoint directory: %w", err))
		}
		experiments.SetCheckpoint(*checkpoint, *resume)
	}
	if *out != "" {
		// Validate the artifact directory up front too: a sweep that runs
		// for minutes must not discover an unwritable -out at its first
		// write.
		if err := probeDir(*out); err != nil {
			fatal(fmt.Errorf("output directory: %w", err))
		}
	}

	if *metricsAddr != "" {
		addr, shutdown, err := obs.Default.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "experiments: metrics on http://%s/metrics (pprof on /debug/pprof)\n", addr)
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	reg := experiments.Registry()
	names := experiments.Names()
	if *run != "" {
		if _, ok := reg[*run]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (available: %v)\n", *run, names)
			os.Exit(2)
		}
		names = []string{*run}
	}

	for _, name := range names {
		// Each experiment gets a fresh registry so its obs snapshot
		// describes that experiment alone, not the whole batch.
		obs.Default.Reset()
		var w io.Writer = os.Stdout
		var f *os.File
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			var err error
			f, err = os.Create(filepath.Join(*out, name+".txt"))
			if err != nil {
				fatal(err)
			}
			w = f
			fmt.Printf("running %s -> %s\n", name, f.Name())
		} else {
			fmt.Printf("================ %s ================\n", name)
		}
		if err := reg[name](w, scale); err != nil {
			fatal(err)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		} else {
			fmt.Println()
		}
		if *out != "" {
			if err := writeObsSnapshot(filepath.Join(*out, name+".obs.json")); err != nil {
				fatal(err)
			}
		}
		if *obsOut {
			fmt.Fprintf(os.Stderr, "--- obs snapshot: %s ---\n", name)
			if err := obs.Default.Snapshot().WriteJSON(os.Stderr); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
}

// writeObsSnapshot saves the current registry snapshot next to the
// experiment's artifact file.
func writeObsSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if _, err := io.WriteString(f, "\n"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// probeDir verifies dir exists (creating it if needed) and is writable by
// creating and removing a probe file.
func probeDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "experiments:", msg)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
