// Command ccsim is a Dinero-style trace-driven cache simulator: it replays
// a serialized CCProf trace (or a built-in workload) through a configurable
// set-associative cache and reports hit/miss statistics, per-set miss
// distribution, miss classification, and exact RCD metrics — the
// ground-truth path the paper validates CCProf against.
//
// Usage:
//
//	ccsim -trace FILE [-line 64 -sets 64 -ways 8]
//	ccsim -workload adi [-variant optimized] [-dump FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/rcd"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		traceIn  = flag.String("trace", "", "replay this serialized trace file")
		workload = flag.String("workload", "", "or: run this built-in workload")
		variant  = flag.String("variant", "original", "workload variant: original or optimized")
		dump     = flag.String("dump", "", "also serialize the reference trace to this file")
		compress = flag.Bool("compress", false, "use the compressed trace format for -dump")
		lineSize = flag.Int("line", 64, "cache line size (bytes)")
		sets     = flag.Int("sets", 64, "number of cache sets")
		ways     = flag.Int("ways", 8, "associativity")
		top      = flag.Int("top", 8, "victim sets to display")
	)
	flag.Parse()

	geom, err := mem.NewGeometry(*lineSize, *sets, *ways)
	if err != nil {
		fatal(err)
	}

	cl := cache.NewClassifier(geom)
	tr := rcd.NewCP(geom.Sets)
	var count trace.Counter
	var sink trace.Sink = trace.SinkFunc(func(r trace.Ref) {
		count.Ref(r)
		if cl.Access(r.Addr) != cache.Hit {
			tr.Observe(geom.Set(r.Addr))
		}
	})

	var dumpFile *os.File
	if *dump != "" {
		dumpFile, err = os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		var tw interface {
			trace.Sink
			Close() error
		}
		if *compress {
			tw = trace.NewCompressedWriter(dumpFile)
		} else {
			tw = trace.NewWriter(dumpFile)
		}
		defer func() {
			if err := tw.Close(); err != nil {
				fatal(err)
			}
			if err := dumpFile.Close(); err != nil {
				fatal(err)
			}
		}()
		sink = trace.Tee(sink, tw)
	}

	switch {
	case *traceIn != "":
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if _, err := trace.ReadAny(f, sink); err != nil {
			fatal(err)
		}
	case *workload != "":
		cs, err := ccprof.Workload(*workload)
		if err != nil {
			fatal(err)
		}
		p := cs.Original
		if *variant == "optimized" {
			p = cs.Optimized
		}
		p.Run(sink)
	default:
		fmt.Fprintln(os.Stderr, "ccsim: need -trace FILE or -workload NAME")
		flag.Usage()
		os.Exit(2)
	}
	tr.Flush()

	c := cl.Cache
	fmt.Printf("cache: %v\n", geom)
	fmt.Printf("refs: %d (%d reads, %d writes)\n", count.Total(), count.Reads, count.Writes)
	fmt.Printf("accesses: %d  hits: %d  misses: %d  miss ratio: %.4f\n",
		c.Accesses(), c.Hits, c.Misses, c.MissRatio())
	fmt.Printf("miss classes: cold=%d capacity=%d conflict=%d (conflict share %.1f%%)\n",
		cl.Counts[cache.Cold], cl.Counts[cache.Capacity], cl.Counts[cache.Conflict],
		100*cl.ConflictRatio())
	fmt.Printf("sets used: %d/%d  imbalance (max/mean): %.2f\n",
		c.SetsUsed(), geom.Sets, tr.RCD().Imbalance())
	fmt.Printf("exact RCD cf(T=%d): %s  mean conflict period: %.1f\n",
		rcd.DefaultThreshold, report.Pct(tr.RCD().ContributionFactor(rcd.DefaultThreshold)), tr.MeanPeriod())

	// Victim sets by miss count.
	type sv struct {
		set    int
		misses uint64
	}
	var victims []sv
	for s, m := range c.SetMisses {
		victims = append(victims, sv{s, m})
	}
	for i := 0; i < len(victims); i++ {
		for j := i + 1; j < len(victims); j++ {
			if victims[j].misses > victims[i].misses {
				victims[i], victims[j] = victims[j], victims[i]
			}
		}
	}
	if *top > len(victims) {
		*top = len(victims)
	}
	t := report.NewTable("\nhottest cache sets", "set", "misses", "share")
	for _, v := range victims[:*top] {
		share := 0.0
		if c.Misses > 0 {
			share = float64(v.misses) / float64(c.Misses)
		}
		t.Row(v.set, v.misses, report.Pct(share))
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsim:", err)
	os.Exit(1)
}
