// Command ccprofd runs the ccprof pipeline as a crash-safe HTTP job
// service: profiling, advisor and experiment jobs are accepted on a
// bounded queue, executed on the parsim pool with per-job derived seeds,
// journaled durably, and stored content-addressed. SIGTERM drains
// gracefully; a restart on the same -data directory resumes every
// accepted-but-unfinished job and reproduces its artifact byte-for-byte.
//
// Usage:
//
//	ccprofd -data DIR [-addr HOST:PORT] [-queue N] [-workers N]
//	        [-retries N] [-deadline D] [-drain D] [-seed N] [-j N]
//	        [-metrics-addr HOST:PORT]
//
// Exit codes follow the repo convention: 2 for usage errors (caught
// before any work), 1 for runtime failures, 0 for a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ccprofd"
	"repro/internal/obs"
	"repro/internal/parsim"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8347", "HTTP listen address for the job API")
		dataDir     = flag.String("data", "", "data directory for the journal, artifact store and checkpoints (required)")
		queueCap    = flag.Int("queue", 64, "admission queue bound; a full queue rejects jobs with 429")
		workers     = flag.Int("workers", 1, "jobs executed concurrently")
		retries     = flag.Int("retries", 1, "re-attempts per failed job (contains panics and transient faults)")
		deadline    = flag.Duration("deadline", 0, "default per-job attempt deadline (0 = none)")
		drain       = flag.Duration("drain", 10*time.Second, "how long SIGTERM waits for in-flight jobs before cancelling them")
		seed        = flag.Int64("seed", 1, "root seed; per-job seeds derive from it and the job ID")
		jobs        = flag.Int("j", 0, "parsim sweep workers inside advisor jobs (0 = GOMAXPROCS)")
		metricsAddr = flag.String("metrics-addr", "", "serve a second obs-only listener on this address")
	)
	flag.Usage = func() {
		fmt.Fprint(os.Stderr, "usage: ccprofd -data DIR [flags]\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// Usage errors are caught before any listener or file is touched.
	if flag.NArg() != 0 {
		usageError(fmt.Sprintf("unexpected arguments %v", flag.Args()))
	}
	if *dataDir == "" {
		usageError("-data is required")
	}
	if *queueCap <= 0 {
		usageError(fmt.Sprintf("invalid -queue %d: the admission bound must be positive", *queueCap))
	}
	if *workers <= 0 {
		usageError(fmt.Sprintf("invalid -workers %d: need at least one job worker", *workers))
	}
	if *retries < 0 {
		usageError(fmt.Sprintf("invalid -retries %d: cannot be negative", *retries))
	}
	if *jobs < 0 {
		usageError(fmt.Sprintf("invalid -j %d: worker count cannot be negative", *jobs))
	}
	if *deadline < 0 || *drain <= 0 {
		usageError("invalid -deadline/-drain: deadlines cannot be negative and the drain window must be positive")
	}

	parsim.SetDefaultWorkers(*jobs)

	d, err := ccprofd.New(ccprofd.Options{
		DataDir:      *dataDir,
		QueueCap:     *queueCap,
		Workers:      *workers,
		Retries:      *retries,
		Deadline:     *deadline,
		DrainTimeout: *drain,
		Seed:         *seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		maddr, mshutdown, err := obs.Default.ServeNotify(*metricsAddr, func(err error) {
			fmt.Fprintf(os.Stderr, "ccprofd: metrics listener died: %v\n", err)
		})
		if err != nil {
			fatal(err)
		}
		defer mshutdown()
		fmt.Fprintf(os.Stderr, "ccprofd: metrics on http://%s/metrics\n", maddr)
	}

	d.Start()
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		err := srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		serveErr <- err
	}()
	fmt.Fprintf(os.Stderr, "ccprofd: serving on http://%s (data %s)\n", ln.Addr(), *dataDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "ccprofd: signal received, draining")
		// Stop admitting first (Drain flips readyz and POST /jobs to
		// refusal), then let in-flight jobs finish, then close the
		// listener. Queued jobs stay journaled for the next start.
		d.Drain()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(shutCtx)
		cancel()
		if left := d.Unfinished(); left > 0 {
			fmt.Fprintf(os.Stderr, "ccprofd: drained; %d job(s) journaled for resume\n", left)
		} else {
			fmt.Fprintln(os.Stderr, "ccprofd: drained; no jobs pending")
		}
	}
}

// usageError reports a flag/argument problem and exits 2.
func usageError(msg string) {
	fmt.Fprintf(os.Stderr, "ccprofd: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

// fatal reports a runtime error and exits 1.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ccprofd: %v\n", err)
	os.Exit(1)
}
