// Command conflint lints Go packages for conflict-prone cache access
// patterns. It drives the internal/conflint analysis framework: every
// niladic kernel constructor is interpreted into an affine access spec,
// priced by the closed-form analytic model, and checked by a set of
// modular analyzers (power-of-two camping strides, set-camping row
// sizes, aliased bases, static conflict verdicts, cross-thread false
// sharing, and verified pad fixes).
//
// Usage:
//
//	conflint [-fail] [-json|-sarif] [-baseline FILE] [-fix [-diff]]
//	         [-cache DIR] [-j N] [-v] [packages]
//
// Packages are directories; the Go-style wildcard dir/... lints every
// package below dir (skipping testdata, vendor, and hidden
// directories). With no arguments, ./... is linted. Packages without
// lintable kernels are silently skipped, so running conflint over a
// whole module is cheap.
//
// Output modes are mutually exclusive: the default human format, -json
// (one machine-readable document whose findings carry fingerprints, so
// it doubles as a baseline), or -sarif (SARIF 2.1.0 with rule
// metadata, fingerprints, and machine-applicable fixes). Findings are
// sorted by (file, byte offset, rule) and every mode is byte-identical
// across runs and -j settings.
//
// -fix applies the suggested fixes (currently verified pad edits)
// atomically through gofmt; with -diff the tree is untouched and a
// unified diff of what would change is printed instead. -baseline FILE
// compares the run against a previous -json document and exits 1 only
// on findings absent from it, matching by fingerprint (with a legacy
// positional fallback for pre-fingerprint baselines). -cache DIR
// reuses per-directory results keyed on file content hashes.
//
// Source lines can opt out with //ccprof:ignore [rule,...] [reason]
// directives (next-line scope, or whole-kernel from a constructor's doc
// comment); directives that match nothing are themselves reported.
//
// Exit status: 0 clean, 1 findings (with -fail or -baseline) or a
// runtime failure, 2 usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/conflint"
)

// version tags the SARIF tool descriptor; bump alongside rule changes.
const version = "2.0.0"

func main() {
	os.Exit(run())
}

func usageError(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "conflint: "+format+"\n", args...)
	flag.Usage()
	return 2
}

func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
	return 1
}

func run() int {
	fail := flag.Bool("fail", false, "exit with status 1 when findings are reported")
	jsonOut := flag.Bool("json", false, "emit one machine-readable document instead of the human format")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 document instead of the human format")
	baseline := flag.String("baseline", "", "compare against this -json document; exit 1 only on findings absent from it")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source tree (gofmt'ed, atomic per file)")
	diff := flag.Bool("diff", false, "with -fix: print a unified diff of the fixes instead of writing them")
	cacheDir := flag.String("cache", "", "reuse per-directory results from this cache directory")
	jobs := flag.Int("j", 1, "lint up to N directories concurrently (output is identical at any N)")
	verbose := flag.Bool("v", false, "also list linted kernels and skipped functions")
	flag.Parse()

	// Validate the flag combination up front: conflicting modes are a
	// usage error (exit 2), not a partially-honored run.
	switch {
	case *jsonOut && *sarifOut:
		return usageError("-json and -sarif are mutually exclusive")
	case *fix && (*jsonOut || *sarifOut):
		return usageError("-fix does not combine with -json or -sarif; run the report first, then fix")
	case *fix && *baseline != "":
		return usageError("-fix does not combine with -baseline")
	case *diff && !*fix:
		return usageError("-diff requires -fix")
	case *jobs < 1:
		return usageError("-j must be at least 1")
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := conflint.Expand(args)
	if err != nil {
		return usageError("%v", err)
	}

	res, err := conflint.Run(dirs, conflint.Config{CacheDir: *cacheDir, Jobs: *jobs})
	if err != nil {
		return fatal(err)
	}

	switch {
	case *jsonOut:
		doc := conflint.JSONReport{Kernels: res.Kernels, Findings: res.Diags}
		if doc.Findings == nil {
			doc.Findings = []conflint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return fatal(err)
		}
	case *sarifOut:
		if err := conflint.WriteSARIF(os.Stdout, res, version); err != nil {
			return fatal(err)
		}
	default:
		for _, d := range res.Diags {
			fmt.Printf("%s: %s\n", d.Dir, d)
		}
		if *verbose {
			for _, dr := range res.Dirs {
				for _, k := range dr.Kernels {
					fmt.Printf("%s: linted %s (%s): %d findings\n", dr.Dir, k.Label, k.Kernel, k.Findings)
				}
				for fn, why := range dr.Skipped {
					fmt.Fprintf(os.Stderr, "conflint: %s: skipped %s: %s\n", dr.Dir, fn, why)
				}
				if dr.LoadErr != "" {
					fmt.Fprintf(os.Stderr, "conflint: skipping %s: %s\n", dr.Dir, dr.LoadErr)
				}
			}
		}
		fmt.Printf("conflint: %d kernels linted, %d findings\n", res.Kernels, len(res.Diags))
	}

	if *fix {
		outcome, err := conflint.ApplyFixes(res, *diff)
		if err != nil {
			return fatal(err)
		}
		if *diff {
			text, err := outcome.Diff()
			if err != nil {
				return fatal(err)
			}
			fmt.Print(text)
			fmt.Printf("conflint: %d fixes in %d files (dry run, tree untouched)\n", outcome.Edits, len(outcome.Files))
		} else {
			fmt.Printf("conflint: applied %d fixes in %d files\n", outcome.Edits, len(outcome.Files))
		}
	}

	if *baseline != "" {
		fresh, err := conflint.NewFindings(res.Diags, *baseline)
		if err != nil {
			return fatal(err)
		}
		for _, f := range fresh {
			fmt.Fprintf(os.Stderr, "conflint: new finding not in baseline: %s: %s: %s [%s]\n",
				f.Dir, f.Kernel, f.Rule, f.Severity)
		}
		if len(fresh) > 0 {
			return 1
		}
		return 0
	}
	if *fail && len(res.Diags) > 0 {
		return 1
	}
	return 0
}
