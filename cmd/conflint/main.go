// Command conflint lints Go packages for conflict-prone cache access
// patterns: it interprets every niladic kernel constructor with the
// spec-extraction machinery, derives each kernel's affine access spec,
// and reports power-of-two camping strides, set-camping row sizes,
// aliased bases marching in lockstep, and outright conflict verdicts
// from the static analyzer.
//
// Usage:
//
//	conflint [-fail] [-v] [packages]
//
// Packages are directories; the Go-style wildcard dir/... lints every
// package below dir (skipping testdata, vendor, and hidden directories).
// With no arguments, ./... is linted. Packages without lintable kernels
// are silently skipped, so running conflint over a whole module is cheap.
// With -fail, the exit status is 1 when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/specgen"
)

func main() {
	fail := flag.Bool("fail", false, "exit with status 1 when findings are reported")
	verbose := flag.Bool("v", false, "also list linted kernels and skipped functions")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		os.Exit(2)
	}

	g := mem.L1Default()
	kernels, findings := 0, 0
	for _, dir := range dirs {
		rep, err := specgen.LintDir(dir, g)
		if err != nil {
			// Not a parsable Go package (or empty): nothing to lint.
			if *verbose {
				fmt.Fprintf(os.Stderr, "conflint: skipping %s: %v\n", dir, err)
			}
			continue
		}
		kernels += len(rep.Kernels)
		findings += len(rep.Findings)
		for _, f := range rep.Findings {
			fmt.Printf("%s: %s\n", dir, f)
		}
		if *verbose {
			for _, k := range rep.Kernels {
				fmt.Printf("%s: linted %s (%s): %d findings\n", dir, k.Ctor, k.Kernel, k.Findings)
			}
		}
	}
	fmt.Printf("conflint: %d kernels linted, %d findings\n", kernels, findings)
	if *fail && findings > 0 {
		os.Exit(1)
	}
}

// expand resolves the package arguments to a sorted list of directories,
// handling the dir/... wildcard the way the go tool does.
func expand(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "...")
		if !recursive {
			add(filepath.Clean(arg))
			continue
		}
		if root == "" {
			root = "."
		}
		root = filepath.Clean(root)
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
