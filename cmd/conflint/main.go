// Command conflint lints Go packages for conflict-prone cache access
// patterns: it interprets every niladic kernel constructor with the
// spec-extraction machinery, derives each kernel's affine access spec,
// and reports power-of-two camping strides, set-camping row sizes,
// aliased bases marching in lockstep, and outright conflict verdicts
// from the static analyzer.
//
// Usage:
//
//	conflint [-fail] [-json] [-baseline FILE] [-v] [packages]
//
// Packages are directories; the Go-style wildcard dir/... lints every
// package below dir (skipping testdata, vendor, and hidden directories).
// With no arguments, ./... is linted. Packages without lintable kernels
// are silently skipped, so running conflint over a whole module is cheap.
// With -fail, the exit status is 1 when any finding is reported.
//
// Every finding carries the closed-form analytic model's predicted
// contribution factor for its kernel and the derived severity band
// (high ≥ 70%, medium ≥ 25%, low below). -json replaces the human
// format with one machine-readable document: the findings with
// file/line split out of the loop location, plus the lint totals.
// -baseline FILE compares the run against a previous -json document
// and exits 1 only when a finding not present in the baseline appears —
// the ratchet mode CI uses over packages with known, intentional
// pathologies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/specgen"
)

// jsonFinding is one finding in the -json document, with the loop
// location split into file and line for machine consumers.
type jsonFinding struct {
	Dir         string  `json:"dir"`
	Ctor        string  `json:"ctor"`
	Kernel      string  `json:"kernel"`
	Array       string  `json:"array,omitempty"`
	Loop        string  `json:"loop,omitempty"`
	File        string  `json:"file,omitempty"`
	Line        int     `json:"line,omitempty"`
	Kind        string  `json:"kind"`
	Detail      string  `json:"detail"`
	Severity    string  `json:"severity"`
	PredictedCF float64 `json:"predicted_cf"`
}

// key identifies a finding across runs for the baseline ratchet:
// location and kind, not the detail text (which carries counts that
// drift with workload scale).
func (f jsonFinding) key() string {
	return strings.Join([]string{f.Dir, f.Ctor, f.Kernel, f.Array, f.Loop, f.Kind}, "|")
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Kernels  int           `json:"kernels"`
	Findings []jsonFinding `json:"findings"`
}

func main() {
	fail := flag.Bool("fail", false, "exit with status 1 when findings are reported")
	jsonOut := flag.Bool("json", false, "emit machine-readable findings instead of the human format")
	baseline := flag.String("baseline", "", "compare against this -json document; exit 1 only on findings absent from it")
	verbose := flag.Bool("v", false, "also list linted kernels and skipped functions")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		os.Exit(2)
	}

	g := mem.L1Default()
	out := jsonReport{Findings: []jsonFinding{}}
	for _, dir := range dirs {
		rep, err := specgen.LintDir(dir, g)
		if err != nil {
			// Not a parsable Go package (or empty): nothing to lint.
			if *verbose {
				fmt.Fprintf(os.Stderr, "conflint: skipping %s: %v\n", dir, err)
			}
			continue
		}
		out.Kernels += len(rep.Kernels)
		for _, f := range rep.Findings {
			out.Findings = append(out.Findings, toJSON(dir, f))
			if !*jsonOut {
				fmt.Printf("%s: %s\n", dir, f)
			}
		}
		if *verbose && !*jsonOut {
			for _, k := range rep.Kernels {
				fmt.Printf("%s: linted %s (%s): %d findings\n", dir, k.Ctor, k.Kernel, k.Findings)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("conflint: %d kernels linted, %d findings\n", out.Kernels, len(out.Findings))
	}

	if *baseline != "" {
		fresh, err := newFindings(out.Findings, *baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range fresh {
			fmt.Fprintf(os.Stderr, "conflint: new finding not in baseline: %s: %s: %s [%s]\n",
				f.Dir, f.Kernel, f.Kind, f.Severity)
		}
		if len(fresh) > 0 {
			os.Exit(1)
		}
		return
	}
	if *fail && len(out.Findings) > 0 {
		os.Exit(1)
	}
}

// toJSON converts a lint finding, splitting the "file.c:line" loop
// location of per-access findings.
func toJSON(dir string, f specgen.Finding) jsonFinding {
	j := jsonFinding{
		Dir: dir, Ctor: f.Ctor, Kernel: f.Kernel, Array: f.Array, Loop: f.Loop,
		Kind: f.Kind, Detail: f.Detail, Severity: f.Severity, PredictedCF: f.PredictedCF,
	}
	if file, line, ok := strings.Cut(f.Loop, ":"); ok {
		if n, err := strconv.Atoi(line); err == nil {
			j.File, j.Line = file, n
		}
	}
	return j
}

// newFindings returns the findings whose key is absent from the
// baseline -json document at path.
func newFindings(findings []jsonFinding, path string) ([]jsonFinding, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base jsonReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	known := make(map[string]bool, len(base.Findings))
	for _, f := range base.Findings {
		known[f.key()] = true
	}
	var fresh []jsonFinding
	for _, f := range findings {
		if !known[f.key()] {
			fresh = append(fresh, f)
		}
	}
	return fresh, nil
}

// expand resolves the package arguments to a sorted list of directories,
// handling the dir/... wildcard the way the go tool does.
func expand(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "...")
		if !recursive {
			add(filepath.Clean(arg))
			continue
		}
		if root == "" {
			root = "."
		}
		root = filepath.Clean(root)
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
