// Command ccprof profiles a built-in workload with the simulated PMU and
// prints the conflict-miss report — the CLI equivalent of the paper's
// ccProf_run_and_analyze.sh workflow.
//
// Usage:
//
//	ccprof -list
//	ccprof [-period N] [-threshold T] [-variant original|optimized]
//	       [-profile-out FILE] <workload>
//	ccprof -analyze FILE <workload>     # offline analysis of a saved profile
//
// Examples:
//
//	ccprof adi                    # profile PolyBench ADI, report conflicts
//	ccprof -variant optimized adi # confirm padding removed the conflicts
//	ccprof -period 31 himeno      # short conflict periods need fast sampling
//	ccprof -static adi            # static affine verdict next to the dynamic one
//	ccprof -stream -threads 8 nw  # fused online pipeline, bounded memory, same report
//	ccprof -analytic adi          # closed-form tier-0 verdict, no replay at all
//	ccprof -advise -j 8 nw        # parallel pad sweep; output identical at any -j
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/faultinj"
	"repro/internal/pmu"
	"repro/internal/report"
	"repro/internal/vmem"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available workloads and exit")
		period      = flag.Uint64("period", 0, "mean sampling period (0 = the workload's recommended period)")
		threshold   = flag.Int("threshold", ccprof.RCDThreshold, "short-RCD threshold T")
		variant     = flag.String("variant", "original", "workload variant: original or optimized")
		threads     = flag.Int("threads", 1, "threads to profile")
		stream      = flag.Bool("stream", false, "fused streaming mode: analyze samples online, buffer nothing (bounded memory)")
		seed        = flag.Int64("seed", 1, "sampling RNG seed")
		profileOut  = flag.String("profile-out", "", "also write the raw profile to this file")
		analyzeIn   = flag.String("analyze", "", "skip profiling; analyze this saved profile file")
		jsonOut     = flag.Bool("json", false, "emit the analysis as JSON instead of text")
		compare     = flag.Bool("compare", false, "profile both variants and compare verdicts")
		static      = flag.Bool("static", false, "also print the static affine conflict analysis (no execution)")
		analyticF   = flag.Bool("analytic", false, "also print the closed-form analytic conflict model (no execution, no enumeration)")
		l2          = flag.Bool("l2", false, "physically-indexed L2 profiling (the footnote-1 extension)")
		pagePolicy  = flag.String("page-policy", "identity", "L2 mode: identity, sequential, or random frame allocation")
		advise      = flag.Bool("advise", false, "run the pad advisor sweep for the workload and exit")
		jobs        = flag.Int("j", 0, "sweep-executor workers for -advise and library sweeps (0 = GOMAXPROCS; results are identical at any value)")
		faultDrop   = flag.Float64("fault-drop", 0, "inject deterministic sample drops at this rate in [0,1] (robustness testing)")
		faultSeed   = flag.Int64("fault-seed", 23, "root seed of the injected fault plan")
		obsOut      = flag.Bool("obs", false, "print the run's obs snapshot JSON to stderr on exit")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccprof [flags] <workload>\nworkloads: %v\nflags:\n", ccprof.WorkloadNames())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *metricsAddr != "" {
		addr, shutdown, err := ccprof.ServeMetrics(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "ccprof: metrics on http://%s/metrics (pprof on /debug/pprof)\n", addr)
	}
	if *obsOut {
		defer func() {
			fmt.Fprintln(os.Stderr, "--- obs snapshot ---")
			if err := ccprof.Metrics().Snapshot().WriteJSON(os.Stderr); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr)
		}()
	}

	if *list {
		for _, n := range ccprof.WorkloadNames() {
			cs, err := ccprof.Workload(n)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-16s %s\n", n, cs.Desc)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *jobs < 0 {
		usageError(fmt.Sprintf("invalid -j %d: worker count cannot be negative", *jobs))
	}
	var faults *faultinj.Plan
	if *faultDrop != 0 {
		faults = &faultinj.Plan{Seed: *faultSeed, DropRate: *faultDrop}
		if err := faults.Validate(); err != nil {
			usageError(err.Error())
		}
	}

	ccprof.SetParallelism(*jobs)

	cs, err := ccprof.Workload(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *advise {
		if err := advisePad(cs); err != nil {
			fatal(err)
		}
		return
	}

	if *static || *analyticF {
		progs := []*ccprof.Program{cs.Original}
		if *compare {
			progs = append(progs, cs.Optimized)
		} else if *variant == "optimized" {
			progs[0] = cs.Optimized
		}
		for _, p := range progs {
			if *analyticF {
				if err := printAnalytic(p); err != nil {
					fatal(err)
				}
			}
			if *static {
				if err := printStatic(p); err != nil {
					fatal(err)
				}
			}
		}
	}

	if *compare {
		if err := compareVariants(cs, *period, *threshold, *seed, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	prog := cs.Original
	if *l2 {
		if *variant == "optimized" {
			prog = cs.Optimized
		}
		if err := profileL2(prog, cs, *period, *seed, *pagePolicy, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *variant == "optimized" {
		prog = cs.Optimized
	} else if *variant != "original" {
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}

	var prof *ccprof.Profile
	var an *ccprof.Analysis
	if *stream {
		if *analyzeIn != "" {
			usageError("-stream profiles live; it cannot analyze a saved profile (-analyze)")
		}
		if *profileOut != "" {
			usageError("-stream buffers no samples, so there is no profile to save (-profile-out)")
		}
		p := *period
		if p == 0 {
			p = cs.ProfilePeriod
		}
		prof, an, err = ccprof.ProfileStream(prog, ccprof.ProfileOptions{
			Period:  pmu.Uniform(p),
			Seed:    *seed,
			Threads: *threads,
			Faults:  faults,
		}, ccprof.AnalyzeOptions{Threshold: *threshold})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("streamed %s: %d refs, %d L1-miss events, %d samples analyzed online (mean period %.0f), nothing buffered\n",
			prog.Name, prof.Refs, prof.Events, prof.SampleCount(), prof.PeriodMean)
		if prof.Degraded() {
			note := report.DegradedNote{
				SamplesDropped: prof.FaultDropped + prof.FaultTruncated,
				SamplesAltered: prof.FaultCorrupted,
			}
			if err := note.Write(os.Stdout); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
	} else if *analyzeIn != "" {
		f, err := os.Open(*analyzeIn)
		if err != nil {
			fatal(err)
		}
		prof, err = core.ReadProfile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		p := *period
		if p == 0 {
			p = cs.ProfilePeriod
		}
		prof, err = ccprof.ProfileProgram(prog, ccprof.ProfileOptions{
			Period:  pmu.Uniform(p),
			Seed:    *seed,
			Threads: *threads,
			Faults:  faults,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("profiled %s: %d refs, %d L1-miss events, %d samples (mean period %.0f), measured overhead %.2fx\n",
			prog.Name, prof.Refs, prof.Events, prof.SampleCount(), prof.PeriodMean, prof.MeasuredOverhead())
		if prof.Degraded() {
			note := report.DegradedNote{
				SamplesDropped: prof.FaultDropped + prof.FaultTruncated,
				SamplesAltered: prof.FaultCorrupted,
			}
			if err := note.Write(os.Stdout); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
	}

	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			fatal(err)
		}
		if _, err := prof.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote profile to %s\n\n", *profileOut)
	}

	if an == nil {
		an, err = ccprof.Analyze(prof, prog.Binary, prog.Arena, ccprof.AnalyzeOptions{Threshold: *threshold})
		if err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, an); err != nil {
			fatal(err)
		}
		return
	}
	if err := ccprof.WriteReport(os.Stdout, an); err != nil {
		fatal(err)
	}
}

// advisePad runs the advisor's tiered pad sweep for a case study: the
// analytic and static tiers rule candidates out first, the survivors are
// built and simulated on the parallel sweep executor (-j), and the
// cheapest pad that removes the conflict signature is recommended.
func advisePad(cs *ccprof.CaseStudy) error {
	if cs.PadBuilder == nil {
		return fmt.Errorf("%s has no pad builder (its fix is not a row pad)", cs.Name)
	}
	res, err := ccprof.RecommendPad(cs.PadBuilder, advisor.Options{
		Tiers: ccprof.Cascade(),
		Spec:  cs.SpecBuilder(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("pad sweep for %s (%d workers)\n\n", cs.Name, ccprof.Parallelism())
	fmt.Printf("%-8s  %-10s  %-10s  %-12s  %-6s\n", "pad", "L1 misses", "L2 misses", "cycles", "cf")
	for _, c := range res.Candidates {
		marker := ""
		if c.Pad == res.Best.Pad {
			marker = "  <- recommended"
		}
		fmt.Printf("%-8d  %-10d  %-10d  %-12d  %-6.1f%s\n",
			c.Pad, c.Misses, c.L2Misses, c.Cycles, 100*c.CF, marker)
	}
	if len(res.Pruned) > 0 {
		fmt.Printf("\nstatically pruned (no simulation): %v\n", res.Pruned)
		if len(res.PrunedAnalytic) > 0 {
			fmt.Printf("  by the analytic tier: %v\n", res.PrunedAnalytic)
		}
		if len(res.PrunedStatic) > 0 {
			fmt.Printf("  by the static tier:   %v\n", res.PrunedStatic)
		}
	}
	fmt.Printf("\nrecommended pad: %d bytes (%.1f%% cycle reduction over pad 0)\n",
		res.Best.Pad, 100*res.Improvement())
	return nil
}

// compareVariants profiles both builds of a case study and reports the
// before/after verdicts, cf values, and per-loop movement — the Figure 9
// view for one application.
func compareVariants(cs *ccprof.CaseStudy, period uint64, threshold int, seed int64, jsonOut bool) error {
	if period == 0 {
		period = cs.ProfilePeriod
	}
	analyze := func(p *ccprof.Program) (*ccprof.Analysis, error) {
		return ccprof.ProfileAndAnalyze(p,
			ccprof.ProfileOptions{Period: pmu.Uniform(period), Seed: seed, NoTime: true},
			ccprof.AnalyzeOptions{Threshold: threshold})
	}
	orig, err := analyze(cs.Original)
	if err != nil {
		return err
	}
	opt, err := analyze(cs.Optimized)
	if err != nil {
		return err
	}
	if jsonOut {
		return writeJSON(os.Stdout, map[string]*ccprof.Analysis{
			"original": orig, "optimized": opt,
		})
	}
	fmt.Printf("%s — original vs optimized (mean period %d)\n\n", cs.Name, period)
	fmt.Printf("%-10s  %-8s  %-8s  %s\n", "variant", "samples", "cf", "verdict")
	for _, v := range []struct {
		name string
		an   *ccprof.Analysis
	}{{"original", orig}, {"optimized", opt}} {
		verdict := "clean"
		if v.an.Conflict {
			verdict = "CONFLICT"
		}
		fmt.Printf("%-10s  %-8d  %-8.1f  %s\n", v.name, v.an.TotalSamples, 100*v.an.CF, verdict)
	}
	if orig.CF > 0 {
		fmt.Printf("\nshort-RCD contribution reduced by %.1f%%\n", 100*(1-opt.CF/orig.CF))
	}
	return nil
}

// profileL2 runs the physically-indexed L2 extension and prints its report.
func profileL2(prog *ccprof.Program, cs *ccprof.CaseStudy, period uint64, seed int64, policy string, jsonOut bool) error {
	var pol vmem.Policy
	switch policy {
	case "identity":
		pol = vmem.Identity
	case "sequential":
		pol = vmem.Sequential
	case "random":
		pol = vmem.Random
	default:
		return fmt.Errorf("unknown page policy %q", policy)
	}
	if period == 0 {
		period = cs.ProfilePeriod
	}
	an, err := ccprof.ProfileL2(prog, core.L2ProfileOptions{
		Period: pmu.Uniform(period),
		Seed:   seed,
		Policy: pol,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return writeJSON(os.Stdout, an)
	}
	verdict := "no significant L2 conflict misses"
	if an.Conflict() {
		verdict = "L2 CONFLICT MISSES DETECTED"
	}
	fmt.Printf("L2 profile of %s (page policy %s)\n", an.Workload, an.Policy)
	fmt.Printf("  samples: %d of %d L2-miss events\n", an.Samples, an.Events)
	fmt.Printf("  physical sets used: %d   cf(T=%d): %.1f%%   verdict: %s\n",
		an.SetsUsed, an.Threshold, 100*an.CF, verdict)
	if top := an.TopData(); len(top) > 0 {
		fmt.Printf("  top data structures: ")
		for i, name := range top {
			if i > 2 {
				break
			}
			if i > 0 {
				fmt.Printf(", ")
			}
			fmt.Printf("%s (%d)", name, an.Data[name])
		}
		fmt.Println()
	}
	return nil
}

// printStatic runs the static affine analyzer on the workload's declared
// access spec and prints its report ahead of the dynamic one, so the two
// verdicts can be compared side by side.
func printStatic(prog *ccprof.Program) error {
	if prog.Spec == nil {
		fmt.Printf("static analysis: %s declares no access spec (data-dependent kernel)\n\n", prog.Name)
		return nil
	}
	rep, err := ccprof.AnalyzeStatic(prog.Spec, ccprof.L1Default(), ccprof.StaticOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("static analysis of %s (no execution):\n", prog.Name)
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// printAnalytic runs the closed-form tier-0 conflict model on the
// workload's declared access spec and prints its report: predicted set
// demand, contribution factor, and verdict from pure arithmetic.
func printAnalytic(prog *ccprof.Program) error {
	if prog.Spec == nil {
		fmt.Printf("analytic model: %s declares no access spec (data-dependent kernel)\n\n", prog.Name)
		return nil
	}
	rep, err := ccprof.AnalyzeAnalytic(prog.Spec, ccprof.L1Default(), ccprof.AnalyticOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("analytic model of %s (no execution, no enumeration):\n", prog.Name)
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "ccprof:", msg)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccprof:", err)
	os.Exit(1)
}
