package vmem

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestIdentityTranslation(t *testing.T) {
	s := NewSpace(Identity, nil)
	f := func(addr uint64) bool { return s.Translate(addr) == addr }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetPreserved(t *testing.T) {
	for _, p := range []Policy{Identity, Sequential, Random} {
		s := NewSpace(p, stats.NewRand(1))
		f := func(addr uint64) bool {
			return s.Translate(addr)&(PageSize-1) == addr&(PageSize-1)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

func TestTranslationStable(t *testing.T) {
	for _, p := range []Policy{Sequential, Random} {
		s := NewSpace(p, stats.NewRand(2))
		a := s.Translate(0x1234_5678)
		for i := 0; i < 5; i++ {
			if got := s.Translate(0x1234_5678); got != a {
				t.Fatalf("%v: translation changed: %#x -> %#x", p, a, got)
			}
		}
		// Same page, different offset: same frame.
		b := s.Translate(0x1234_5000)
		if b>>12 != a>>12 {
			t.Errorf("%v: same-page addresses got different frames", p)
		}
	}
}

func TestSequentialFramesDense(t *testing.T) {
	s := NewSpace(Sequential, nil)
	want := uint64(0)
	for vpn := uint64(100); vpn < 110; vpn++ {
		got := s.Translate(vpn*PageSize) >> 12
		if got != want {
			t.Fatalf("frame for page %d = %d, want %d", vpn, got, want)
		}
		want++
	}
	if s.Pages() != 10 {
		t.Errorf("Pages = %d, want 10", s.Pages())
	}
}

func TestRandomFramesUnique(t *testing.T) {
	s := NewSpace(Random, stats.NewRand(3))
	seen := map[uint64]bool{}
	for vpn := uint64(0); vpn < 2000; vpn++ {
		f := s.Translate(vpn*PageSize) >> 12
		if seen[f] {
			t.Fatalf("frame %d handed out twice", f)
		}
		seen[f] = true
	}
}

func TestSequentialScramblesPageColours(t *testing.T) {
	// Two virtual pages that would conflict under identity mapping (same
	// page colour for a 512-set L2: colour = frame % 8) can receive any
	// colours under sequential allocation depending on touch order.
	s := NewSpace(Sequential, nil)
	// Touch page 8 first, then page 0: both have identity colour 0, but
	// sequential assigns frames 0 and 1 — different colours.
	p8 := s.Translate(8 * PageSize)
	p0 := s.Translate(0)
	if p8>>12 == p0>>12 {
		t.Fatal("distinct pages share a frame")
	}
	if (p8>>12)%8 == (p0>>12)%8 {
		t.Error("sequential first-touch should have recoloured these pages")
	}
}

func TestPolicyString(t *testing.T) {
	if Identity.String() != "identity" || Sequential.String() != "sequential" || Random.String() != "random" {
		t.Error("policy names wrong")
	}
	if Policy(7).String() == "" {
		t.Error("unknown policy should print something")
	}
}
