// Package vmem models virtual-to-physical address translation.
//
// CCProf analyzes the L1, which is virtually indexed (VIPT), so the set
// index can be read straight off the sampled virtual address. Footnote 1 of
// the paper notes that profiling L2 or LLC conflicts — both physically
// indexed — additionally requires the virtual-to-physical mapping, and
// leaves it out of scope. This package supplies that missing substrate: a
// page table populated on first touch under a configurable frame-allocation
// policy, so the L2-conflict extension (see pmu.L2Sampler and the
// physically-indexed analyses) can translate sampled addresses the way the
// kernel's pagemap interface would.
//
// Frame policies matter because physical-set conflicts depend on frame
// colouring: identity mapping preserves virtual conflict structure exactly,
// sequential allocation preserves it within a page but reshuffles page
// colours, and random allocation models a fragmented heap.
package vmem

import (
	"fmt"
	"math/rand"
)

// PageSize is the translation granularity (4 KiB, the x86 base page).
const PageSize = 4096

const pageShift = 12

// Policy selects how physical frames are assigned to freshly touched
// virtual pages.
type Policy uint8

// Frame-allocation policies.
const (
	// Identity maps every virtual page to the equal-numbered frame.
	// Physical conflict structure equals virtual conflict structure.
	Identity Policy = iota
	// Sequential hands out frames in first-touch order, like a fresh
	// kernel with an empty free list.
	Sequential
	// Random draws frames uniformly, modelling a long-running system
	// with a fragmented free list.
	Random
)

func (p Policy) String() string {
	switch p {
	case Identity:
		return "identity"
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Space is one address space: a lazily populated page table.
type Space struct {
	policy Policy
	rng    *rand.Rand
	table  map[uint64]uint64 // virtual page number -> frame number
	next   uint64            // next frame for Sequential
	frames map[uint64]bool   // frames already handed out (Random)
}

// NewSpace returns an empty address space. rng is required for the Random
// policy (a deterministic default is installed when nil).
func NewSpace(p Policy, rng *rand.Rand) *Space {
	if p == Random && rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Space{
		policy: p,
		rng:    rng,
		table:  make(map[uint64]uint64),
		frames: make(map[uint64]bool),
	}
}

// randFrameSpan bounds the frame numbers drawn by the Random policy; 1M
// frames = 4 GiB of simulated physical memory.
const randFrameSpan = 1 << 20

// Translate returns the physical address of a virtual address, installing
// a mapping on first touch.
func (s *Space) Translate(vaddr uint64) uint64 {
	vpn := vaddr >> pageShift
	frame, ok := s.table[vpn]
	if !ok {
		frame = s.allocFrame(vpn)
		s.table[vpn] = frame
	}
	return frame<<pageShift | vaddr&(PageSize-1)
}

func (s *Space) allocFrame(vpn uint64) uint64 {
	switch s.policy {
	case Identity:
		return vpn
	case Sequential:
		f := s.next
		s.next++
		return f
	default: // Random
		for {
			f := uint64(s.rng.Int63n(randFrameSpan))
			if !s.frames[f] {
				s.frames[f] = true
				return f
			}
		}
	}
}

// Pages returns the number of mapped pages.
func (s *Space) Pages() int { return len(s.table) }

// Policy returns the space's frame-allocation policy.
func (s *Space) Policy() Policy { return s.policy }
