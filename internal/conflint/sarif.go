package conflint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output. Only the slice of the schema conflint populates
// is modeled; field order is fixed by the struct definitions so two
// runs over one tree emit byte-identical documents.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifText         `json:"message"`
	Locations           []sarifLocation   `json:"locations,omitempty"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
	Fixes               []sarifFix        `json:"fixes,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifFix struct {
	Description     sarifText             `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifact      `json:"artifactLocation"`
	Replacements     []sarifReplacement `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifDeleted `json:"deletedRegion"`
	InsertedContent sarifText    `json:"insertedContent"`
}

type sarifDeleted struct {
	CharOffset int `json:"charOffset"`
	CharLength int `json:"charLength"`
}

// fingerprintKey is the partialFingerprints slot name; versioned so a
// future fingerprint scheme does not collide with archived results.
const fingerprintKey = "conflintFingerprint/v1"

// sarifLevel maps the severity bands onto SARIF's three levels.
func sarifLevel(severity string) string {
	switch severity {
	case "high":
		return "error"
	case "medium":
		return "warning"
	default:
		return "note"
	}
}

// ruleCatalog is every rule the tool can emit, in a fixed order, for
// the SARIF rules table.
func ruleCatalog(analyzers []*Analyzer) []sarifRule {
	var rules []sarifRule
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               RuleUnusedSuppression,
		ShortDescription: sarifText{Text: "a ccprof:ignore directive matched no finding, or did not parse"},
	})
	return rules
}

// WriteSARIF renders the run as a SARIF 2.1.0 document. The result
// order follows the run's deterministic diagnostic sort, and struct
// marshalling fixes the field order, so the document is byte-identical
// across runs and -j settings.
func WriteSARIF(w io.Writer, res *Result, version string) error {
	rules := ruleCatalog(Analyzers())
	ruleIdx := map[string]int{}
	for i, r := range rules {
		ruleIdx[r.ID] = i
	}

	results := []sarifResult{}
	for _, d := range res.Diags {
		msg := d.Detail
		if d.Array != "" {
			msg = fmt.Sprintf("%s: %s", d.Array, d.Detail)
		}
		r := sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ruleIdx[d.Rule],
			Level:     sarifLevel(d.Severity),
			Message:   sarifText{Text: fmt.Sprintf("%s [%s]: %s", d.Ctor, d.Dir, msg)},
		}
		if d.Fingerprint != "" {
			r.PartialFingerprints = map[string]string{fingerprintKey: d.Fingerprint}
		}
		if d.Pos.File != "" {
			r.Locations = []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.Pos.File)},
				Region:           &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}}
		}
		for _, fix := range d.Fixes {
			byFile := map[string][]sarifReplacement{}
			var order []string
			for _, e := range fix.Edits {
				uri := filepath.ToSlash(e.File)
				if _, ok := byFile[uri]; !ok {
					order = append(order, uri)
				}
				byFile[uri] = append(byFile[uri], sarifReplacement{
					DeletedRegion:   sarifDeleted{CharOffset: e.Start, CharLength: e.End - e.Start},
					InsertedContent: sarifText{Text: e.NewText},
				})
			}
			sf := sarifFix{Description: sarifText{Text: fix.Message}}
			for _, uri := range order {
				sf.ArtifactChanges = append(sf.ArtifactChanges, sarifArtifactChange{
					ArtifactLocation: sarifArtifact{URI: uri},
					Replacements:     byFile[uri],
				})
			}
			r.Fixes = append(r.Fixes, sf)
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "conflint",
				Version:        version,
				InformationURI: "https://github.com/ccprof/repro",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
