package conflint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analytic"
	"repro/internal/specgen"
	"repro/internal/staticconf"
)

// PadFix derives a concrete row-pad edit for kernels the static
// analyzer predicts to conflict, verifies the edit against the analytic
// model by re-extracting the patched source through a specgen overlay,
// and attaches the edit as a suggested fix. A padfix diagnostic is only
// emitted when the re-scored spec analyzes clean AND its predicted
// contribution factor drops below the medium-severity threshold — an
// unverified pad is worse than no suggestion.
var PadFix = &Analyzer{
	Name: RulePadFix,
	Doc:  "a verified row-pad edit clears the predicted conflict; carries the edit as a suggested fix",
	Run:  runPadFix,
}

// padCFThreshold is the predicted-CF bar a patched layout must clear:
// the medium-severity band edge, matching the analyzers' verdict rule.
const padCFThreshold = 0.25

// allocSite is one arena allocation call in the package source whose
// row-pad argument is an editable integer literal.
type allocSite struct {
	array  string
	fun    string // NewMatrix2D or NewMatrix3D
	call   *ast.CallExpr
	padLit *ast.BasicLit // the rowPad argument
	elem   uint64        // element size when literal, else 0
}

// allocSitesFor finds the allocation calls for one array of one kernel.
// Calls inside the kernel's own constructor win (two constructors may
// reuse an array name, as the lint fixtures do); otherwise a unique
// package-wide match is accepted, covering constructors that allocate
// through a helper. Ambiguous names yield nil.
func allocSitesFor(p *Pass, k *Kernel, array string) []allocSite {
	if k.Decl != nil {
		if sites := allocCalls(k.Decl.Body, array); len(sites) > 0 {
			return sites
		}
	}
	var all []allocSite
	for _, f := range p.Pkg.Files() {
		all = append(all, allocCalls(f, array)...)
	}
	if len(all) == 1 {
		return all
	}
	return nil
}

// allocCalls walks one AST subtree for alloc.NewMatrix2D/NewMatrix3D
// calls whose name argument is the given string literal and whose
// row-pad argument is an integer literal.
func allocCalls(root ast.Node, array string) []allocSite {
	if root == nil {
		return nil
	}
	var out []allocSite
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		var padIdx, elemIdx int
		switch name {
		case "NewMatrix2D": // (arena, name, rows, cols, elem, rowPad)
			padIdx, elemIdx = 5, 4
		case "NewMatrix3D": // (arena, name, ni, nj, nk, elem, rowPad, planePad)
			padIdx, elemIdx = 6, 5
		default:
			return true
		}
		if len(call.Args) <= padIdx {
			return true
		}
		lit, ok := call.Args[1].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if s, err := strconv.Unquote(lit.Value); err != nil || s != array {
			return true
		}
		pad, ok := call.Args[padIdx].(*ast.BasicLit)
		if !ok || pad.Kind != token.INT {
			return true
		}
		site := allocSite{array: array, fun: name, call: call, padLit: pad}
		if el, ok := call.Args[elemIdx].(*ast.BasicLit); ok && el.Kind == token.INT {
			if v, err := strconv.ParseUint(el.Value, 0, 64); err == nil {
				site.elem = v
			}
		}
		out = append(out, site)
		return true
	})
	return out
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

func runPadFix(p *Pass) error {
	for _, k := range p.Kernels {
		conflicted := (k.Static != nil && k.Static.Conflict) || k.PredCF >= padCFThreshold
		if !conflicted || k.Ex.Spec == nil {
			continue
		}
		// Editable pad sites for every array the spec touches; kernels
		// whose layout is not expressed as literal pads are skipped.
		var sites []allocSite
		seen := map[string]bool{}
		for _, a := range k.Ex.Spec.Accesses {
			if seen[a.Array] {
				continue
			}
			seen[a.Array] = true
			sites = append(sites, allocSitesFor(p, k, a.Array)...)
		}
		if len(sites) == 0 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].padLit.Pos() < sites[j].padLit.Pos() })

		pad, after, ok := searchPad(p, k, sites)
		if !ok {
			continue
		}
		var arrays []string
		var edits []TextEdit
		for _, s := range sites {
			arrays = append(arrays, s.array)
			pos := p.Position(s.padLit.Pos())
			edits = append(edits, TextEdit{
				File:    pos.File,
				Start:   pos.Offset,
				End:     pos.Offset + len(s.padLit.Value),
				NewText: strconv.FormatUint(pad, 10),
			})
		}
		label := strings.Join(arrays, ", ")
		p.Report(Diagnostic{
			Ctor: k.Label, Kernel: k.Ex.Kernel, Array: label,
			Rule: RulePadFix,
			Detail: fmt.Sprintf("padding rows of %s by %d bytes drops the predicted CF from %.2f to %.2f",
				label, pad, k.PredCF, after),
			Severity: SeverityOf(k.PredCF), PredictedCF: k.PredCF,
			Pos: p.Position(sites[0].padLit.Pos()),
			Fixes: []SuggestedFix{{
				Message: fmt.Sprintf("set the row pad of %s to %d bytes", label, pad),
				Edits:   edits,
			}},
		}, k.Ex.Spec.Accesses...)
	}
	return nil
}

// searchPad tries candidate pads smallest-disruption-first and returns
// the first one whose overlay re-extraction analyzes clean under both
// the static analyzer and the analytic model.
func searchPad(p *Pass, k *Kernel, sites []allocSite) (pad uint64, afterCF float64, ok bool) {
	for _, cand := range padCandidates(p, sites) {
		cf, clean := rescore(p, k, sites, cand)
		if clean && cf < padCFThreshold {
			return cand, cf, true
		}
	}
	return 0, 0, false
}

// padCandidates orders the pads to try: one line first (the classic
// fix, and the one that breaks every power-of-two row), then sub-line
// element-aligned pads (cheapest in memory), then a few line multiples.
// The list is capped so a hopeless kernel costs at most a dozen
// re-extractions.
func padCandidates(p *Pass, sites []allocSite) []uint64 {
	line := uint64(p.Geom.LineSize)
	quantum := uint64(8)
	for _, s := range sites {
		if s.elem != 0 && (s.elem < quantum || quantum == 8) {
			quantum = s.elem
		}
	}
	var out []uint64
	seen := map[uint64]bool{}
	add := func(v uint64) {
		if v > 0 && !seen[v] && len(out) < 12 {
			seen[v] = true
			out = append(out, v)
		}
	}
	add(line)
	add(2 * line)
	for v := quantum; v < line; v += quantum {
		add(v)
	}
	add(3 * line)
	add(4 * line)
	return out
}

// rescore applies the candidate pad to every site as an in-memory
// overlay, re-extracts the same kernel variant from the patched source,
// and scores it with both tiers. Failures (unparsable overlay, spec
// gone non-affine) report not-clean.
func rescore(p *Pass, k *Kernel, sites []allocSite, pad uint64) (cf float64, clean bool) {
	overlay, err := buildOverlay(p, sites, pad)
	if err != nil {
		return 0, false
	}
	pkg, err := specgen.LoadOverlay(p.Dir, overlay)
	if err != nil {
		return 0, false
	}
	ex, err := pkg.ExtractKernel(p.Geom, k.Ctor, k.Variant)
	if err != nil || ex.Spec == nil {
		return 0, false
	}
	sr, err := staticconf.Analyze(ex.Spec, p.Geom, staticconf.Options{})
	if err != nil || sr.Conflict {
		return 0, false
	}
	ar, err := analytic.Analyze(ex.Spec, p.Geom, analytic.Options{})
	if err != nil {
		return 0, false
	}
	return ar.PredictedCF, true
}

// buildOverlay renders the candidate pad into the source files owning
// the pad literals, without touching the tree.
func buildOverlay(p *Pass, sites []allocSite, pad uint64) (map[string][]byte, error) {
	text := strconv.FormatUint(pad, 10)
	byFile := map[string][]allocSite{}
	for _, s := range sites {
		pos := p.Pkg.Fset().Position(s.padLit.Pos())
		byFile[pos.Filename] = append(byFile[pos.Filename], s)
	}
	overlay := map[string][]byte{}
	for file, fsites := range byFile {
		src, err := readFile(file)
		if err != nil {
			return nil, err
		}
		sort.Slice(fsites, func(i, j int) bool { return fsites[i].padLit.Pos() > fsites[j].padLit.Pos() })
		for _, s := range fsites {
			off := p.Pkg.Fset().Position(s.padLit.Pos()).Offset
			end := off + len(s.padLit.Value)
			if off < 0 || end > len(src) || string(src[off:end]) != s.padLit.Value {
				return nil, fmt.Errorf("conflint: pad literal moved under %s", file)
			}
			src = append(src[:off:off], append([]byte(text), src[end:]...)...)
		}
		overlay[base(file)] = src
	}
	return overlay, nil
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
