package conflint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment. The directive must
// start the comment with no interior space, like //go:build:
//
//	//ccprof:ignore                    suppress every rule
//	//ccprof:ignore pow2-stride        suppress one rule
//	//ccprof:ignore pow2-stride,padfix intentional layout, see BENCH_2
//
// Everything after the rule list is a free-form reason. A directive on
// its own line suppresses findings anchored on that line or the next;
// a directive in a constructor's doc comment suppresses every finding
// of the kernels that constructor builds.
const directivePrefix = "//ccprof:ignore"

// directive is one parsed suppression.
type directive struct {
	pos    Position
	rules  []string // nil = all rules
	reason string
	ctor   string // non-empty: suppresses the whole constructor
	bad    string // non-empty: malformed, reported as unused-suppression
	used   bool
}

// ParseIgnoreDirective parses the text of one comment line. ok reports
// whether the comment is a ccprof:ignore directive at all; err is
// non-nil when it is one but malformed (empty rule token, or a token
// that cannot be a rule name). rules is nil for a bare directive, which
// suppresses every rule.
func ParseIgnoreDirective(text string) (rules []string, reason string, ok bool, err error) {
	if !strings.HasPrefix(text, directivePrefix) {
		return nil, "", false, nil
	}
	rest := text[len(directivePrefix):]
	if rest == "" {
		return nil, "", true, nil
	}
	if rest[0] != ' ' && rest[0] != '\t' {
		// "//ccprof:ignorexyz" is some other comment, not a directive.
		return nil, "", false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", true, nil
	}
	list := fields[0]
	for _, r := range strings.Split(list, ",") {
		if !validRuleToken(r) {
			return nil, "", true, fmt.Errorf("conflint: bad rule %q in directive %q", r, text)
		}
		rules = append(rules, r)
	}
	return rules, strings.Join(fields[1:], " "), true, nil
}

// validRuleToken bounds what a rule name can look like; the directive
// parser is fuzzed against this grammar.
func validRuleToken(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	if s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// collectDirectives parses every comment of the package for
// suppressions, tagging those inside a function's doc comment with the
// function name (constructor-scope suppression).
func collectDirectives(p *Pass) []*directive {
	var out []*directive
	for _, f := range p.Pkg.Files() {
		docOf := map[*ast.CommentGroup]string{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docOf[fd.Doc] = fd.Name.Name
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, reason, ok, err := ParseIgnoreDirective(c.Text)
				if !ok && err == nil {
					continue
				}
				d := &directive{pos: p.Position(c.Pos()), rules: rules, reason: reason, ctor: docOf[cg]}
				if err != nil {
					d.bad = err.Error()
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.File != out[j].pos.File {
			return out[i].pos.File < out[j].pos.File
		}
		return out[i].pos.Offset < out[j].pos.Offset
	})
	return out
}

func (d *directive) matchesRule(rule string) bool {
	if rule == RuleUnusedSuppression {
		return false // the bookkeeping rule cannot be suppressed
	}
	if d.rules == nil {
		return true
	}
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

// suppresses reports whether the directive covers the diagnostic:
// constructor scope matches the kernel's constructor; line scope
// matches findings anchored on the directive's line or the line below.
func (d *directive) suppresses(diag Diagnostic) bool {
	if d.bad != "" || !d.matchesRule(diag.Rule) {
		return false
	}
	if d.ctor != "" {
		return d.ctor == ctorBase(diag.Ctor)
	}
	return d.pos.File == diag.Pos.File &&
		(diag.Pos.Line == d.pos.Line || diag.Pos.Line == d.pos.Line+1)
}

// applySuppressions filters the pass's diagnostics through the
// package's directives and appends an unused-suppression diagnostic for
// every directive that matched nothing (or did not parse) — stale
// suppressions hide future regressions and must be cleaned up.
func applySuppressions(p *Pass) []Diagnostic {
	dirs := collectDirectives(p)
	if len(dirs) == 0 {
		return p.diags
	}
	var kept []Diagnostic
	for _, diag := range p.diags {
		suppressed := false
		for _, d := range dirs {
			if d.suppresses(diag) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	for _, d := range dirs {
		if d.used {
			continue
		}
		detail := fmt.Sprintf("directive %q matched no finding; delete it", directiveText(d))
		if d.bad != "" {
			detail = fmt.Sprintf("malformed directive: %s", d.bad)
		}
		ruleList := strings.Join(d.rules, ",")
		kept = append(kept, Diagnostic{
			Dir:         p.Dir,
			Ctor:        d.ctor,
			Rule:        RuleUnusedSuppression,
			Detail:      detail,
			Severity:    "low",
			Fingerprint: fingerprint(RuleUnusedSuppression, d.ctor, base(d.pos.File)+"|"+ruleList, nil),
			Pos:         d.pos,
		})
		p.c.findings.Inc()
	}
	return kept
}

func directiveText(d *directive) string {
	s := directivePrefix
	if len(d.rules) > 0 {
		s += " " + strings.Join(d.rules, ",")
	}
	if d.reason != "" {
		s += " " + d.reason
	}
	return s
}
