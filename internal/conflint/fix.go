package conflint

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FixOutcome reports what ApplyFixes did (or, in dry-run, would do).
type FixOutcome struct {
	// Files maps each edited path to its patched, formatted content.
	Files map[string][]byte
	// Edits is the number of distinct text edits applied.
	Edits int
}

// ApplyFixes gathers every suggested fix in the result, applies them to
// the owning files, and runs the output through go/format. With
// dryRun, the tree is left untouched and the patched contents are only
// returned (for -diff). Writes are atomic per file (temp + rename).
//
// Identical edits from different diagnostics collapse; edits that
// overlap without being identical are an error — the tool refuses to
// guess which layout the user wants.
func ApplyFixes(res *Result, dryRun bool) (*FixOutcome, error) {
	byFile := map[string][]TextEdit{}
	for _, d := range res.Diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				byFile[e.File] = append(byFile[e.File], e)
			}
		}
	}
	out := &FixOutcome{Files: map[string][]byte{}}
	var files []string
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := dedupeEdits(byFile[file])
		if err := checkOverlap(file, edits); err != nil {
			return nil, err
		}
		src, err := readFile(file)
		if err != nil {
			return nil, err
		}
		patched, err := applyEdits(file, src, edits)
		if err != nil {
			return nil, err
		}
		formatted, err := format.Source(patched)
		if err != nil {
			return nil, fmt.Errorf("conflint: fix for %s does not format: %w", file, err)
		}
		out.Files[file] = formatted
		out.Edits += len(edits)
	}
	if dryRun {
		return out, nil
	}
	for _, file := range files {
		if err := writeFileAtomic(file, out.Files[file]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// dedupeEdits collapses byte-identical edits (the same pad literal can
// be targeted by several diagnostics) and returns the rest sorted by
// start offset.
func dedupeEdits(edits []TextEdit) []TextEdit {
	seen := map[TextEdit]bool{}
	var out []TextEdit
	for _, e := range edits {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

func checkOverlap(file string, edits []TextEdit) error {
	for i := 1; i < len(edits); i++ {
		if edits[i].Start < edits[i-1].End {
			return fmt.Errorf("conflint: conflicting fixes for %s at byte %d; apply one and re-run", file, edits[i].Start)
		}
	}
	return nil
}

// applyEdits splices the edits into src back-to-front so earlier
// offsets stay valid.
func applyEdits(file string, src []byte, edits []TextEdit) ([]byte, error) {
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		if e.Start < 0 || e.End > len(src) || e.Start > e.End {
			return nil, fmt.Errorf("conflint: fix for %s is out of range (%d..%d of %d bytes)", file, e.Start, e.End, len(src))
		}
		src = append(src[:e.Start:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
	}
	return src, nil
}

func writeFileAtomic(file string, data []byte) error {
	dir := filepath.Dir(file)
	tmp, err := os.CreateTemp(dir, filepath.Base(file)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	info, err := os.Stat(file)
	if err == nil {
		os.Chmod(tmp.Name(), info.Mode())
	}
	if err := os.Rename(tmp.Name(), file); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Diff renders a unified diff of the dry-run outcome against the tree,
// three lines of context per hunk, files in sorted order.
func (o *FixOutcome) Diff() (string, error) {
	var files []string
	for f := range o.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	var sb strings.Builder
	for _, file := range files {
		orig, err := readFile(file)
		if err != nil {
			return "", err
		}
		d := unifiedDiff(file, splitLines(string(orig)), splitLines(string(o.Files[file])))
		sb.WriteString(d)
	}
	return sb.String(), nil
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.SplitAfter(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// unifiedDiff is a minimal LCS-based unified diff, enough for human
// review of pad edits; it is not a patch(1)-grade implementation.
func unifiedDiff(file string, a, b []string) string {
	ops := diffOps(a, b)
	if len(ops) == 0 {
		return ""
	}
	const ctx = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", file, file)
	i := 0
	for i < len(ops) {
		if ops[i].kind == ' ' {
			i++
			continue
		}
		// Expand a hunk around this change, merging changes whose
		// context windows touch.
		start := i
		end := i
		for j := i + 1; j < len(ops); j++ {
			if ops[j].kind != ' ' {
				gap := 0
				for k := end + 1; k < j; k++ {
					gap++
				}
				if gap > 2*ctx {
					break
				}
				end = j
			}
		}
		lo := start
		for lo > 0 && start-lo < ctx && ops[lo-1].kind == ' ' {
			lo--
		}
		hi := end
		for hi < len(ops)-1 && hi-end < ctx && ops[hi+1].kind == ' ' {
			hi++
		}
		aStart, bStart := ops[lo].aLine, ops[lo].bLine
		var aCount, bCount int
		for _, op := range ops[lo : hi+1] {
			if op.kind != '+' {
				aCount++
			}
			if op.kind != '-' {
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aCount, bStart+1, bCount)
		for _, op := range ops[lo : hi+1] {
			sb.WriteByte(byte(op.kind))
			sb.WriteString(op.text)
			if !strings.HasSuffix(op.text, "\n") {
				sb.WriteString("\n\\ No newline at end of file\n")
			}
		}
		i = hi + 1
	}
	return sb.String()
}

type diffOp struct {
	kind         rune // ' ', '-', '+'
	text         string
	aLine, bLine int
}

// diffOps computes an LCS edit script over line slices. The inputs are
// whole source files (a few hundred lines), so the quadratic table is
// fine.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	changed := false
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i], i, j})
			changed = true
			i++
		default:
			ops = append(ops, diffOp{'+', b[j], i, j})
			changed = true
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i], i, j})
		changed = true
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j], i, j})
		changed = true
	}
	if !changed {
		return nil
	}
	return ops
}
