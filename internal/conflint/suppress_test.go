package conflint

import (
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestParseIgnoreDirective(t *testing.T) {
	tests := []struct {
		text   string
		rules  []string
		reason string
		ok     bool
		bad    bool
	}{
		{"// a normal comment", nil, "", false, false},
		{"//ccprof:ignored", nil, "", false, false},
		{"//ccprof:ignore", nil, "", true, false},
		{"//ccprof:ignore ", nil, "", true, false},
		{"//ccprof:ignore padfix", []string{"padfix"}, "", true, false},
		{"//ccprof:ignore padfix benchmarked regression", []string{"padfix"}, "benchmarked regression", true, false},
		{"//ccprof:ignore pow2-stride,padfix see notes", []string{"pow2-stride", "padfix"}, "see notes", true, false},
		{"//ccprof:ignore\tpadfix", []string{"padfix"}, "", true, false},
		{"//ccprof:ignore Padfix", nil, "", true, true},
		{"//ccprof:ignore pad_fix", nil, "", true, true},
		{"//ccprof:ignore padfix,", nil, "", true, true},
		{"//ccprof:ignore ,padfix", nil, "", true, true},
		{"//ccprof:ignore 9lives", nil, "", true, true},
	}
	for _, tc := range tests {
		rules, reason, ok, err := ParseIgnoreDirective(tc.text)
		if ok != tc.ok {
			t.Errorf("%q: ok = %v, want %v", tc.text, ok, tc.ok)
			continue
		}
		if (err != nil) != tc.bad {
			t.Errorf("%q: err = %v, want bad=%v", tc.text, err, tc.bad)
			continue
		}
		if tc.bad || !tc.ok {
			continue
		}
		if !reflect.DeepEqual(rules, tc.rules) || reason != tc.reason {
			t.Errorf("%q: got (%v, %q), want (%v, %q)", tc.text, rules, reason, tc.rules, tc.reason)
		}
	}
}

// TestSuppressionScopes runs the suppression fixture and pins all four
// behaviors at once: constructor-doc scope silences a whole kernel,
// line scope silences one rule at one anchor, and both stale and
// malformed directives come back as unused-suppression findings.
func TestSuppressionScopes(t *testing.T) {
	res := mustRun(t, []string{suppressDir}, Config{})

	if got := rulesOf(res, "Quiet"); len(got) != 0 {
		t.Errorf("Quiet findings survived a constructor-scope directive: %v", got)
	}
	loud := rulesOf(res, "Loud")
	if !loud[RuleStaticConflict] || !loud[RulePow2Stride] {
		t.Errorf("Loud lost unsuppressed findings: %v", loud)
	}
	if loud[RulePadFix] {
		t.Error("Loud padfix survived its line-scope directive")
	}

	var unused []Diagnostic
	for _, d := range res.Diags {
		if d.Rule == RuleUnusedSuppression {
			unused = append(unused, d)
		}
	}
	if len(unused) != 2 {
		t.Fatalf("unused-suppression findings = %d, want 2 (stale + malformed): %v", len(unused), unused)
	}
	var sawStale, sawMalformed bool
	for _, d := range unused {
		if strings.Contains(d.Detail, "matched no finding") {
			sawStale = true
		}
		if strings.Contains(d.Detail, "malformed directive") {
			sawMalformed = true
		}
	}
	if !sawStale || !sawMalformed {
		t.Errorf("unused-suppression details missing a case: %v", unused)
	}
}

// FuzzIgnoreDirective hardens the directive parser: any input must
// parse without panicking, and every accepted rule list must re-parse
// to itself (the grammar is closed under its own rendering).
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//ccprof:ignore")
	f.Add("//ccprof:ignore padfix")
	f.Add("//ccprof:ignore pow2-stride,padfix see notes")
	f.Add("//ccprof:ignore ,,,")
	f.Add("//ccprof:ignore\t\tx")
	f.Add("//ccprof:ignoreX")
	f.Add("// unrelated")
	f.Fuzz(func(t *testing.T, text string) {
		rules, reason, ok, err := ParseIgnoreDirective(text)
		if !ok {
			if err != nil {
				t.Fatalf("not-a-directive returned an error: %v", err)
			}
			if rules != nil || reason != "" {
				t.Fatalf("not-a-directive returned content: %v %q", rules, reason)
			}
			return
		}
		if err != nil {
			return // malformed directive: recognized, rejected, no payload expected
		}
		for _, r := range rules {
			if !validRuleToken(r) {
				t.Fatalf("accepted invalid rule %q from %q", r, text)
			}
		}
		if !utf8.ValidString(text) {
			return // reason round-trips only for valid UTF-8 input
		}
		// Accepted directives re-render into a directive that parses to
		// the same rule list.
		rendered := directiveText(&directive{rules: rules, reason: reason})
		rules2, _, ok2, err2 := ParseIgnoreDirective(rendered)
		if !ok2 || err2 != nil {
			t.Fatalf("rendering %q -> %q does not re-parse (ok=%v err=%v)", text, rendered, ok2, err2)
		}
		if !reflect.DeepEqual(rules, rules2) {
			t.Fatalf("rules round-trip %v -> %v via %q", rules, rules2, rendered)
		}
	})
}
