package conflint

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/staticconf"
)

// StaticConflict reports kernels whose extracted spec the static
// analyzer predicts to conflict — the authoritative whole-kernel signal.
var StaticConflict = &Analyzer{
	Name: RuleStaticConflict,
	Doc:  "static analyzer predicts a cache-set conflict for the kernel's affine access spec",
	Run: func(p *Pass) error {
		for _, k := range p.Kernels {
			if k.Static == nil || !k.Static.Conflict {
				continue
			}
			var accs []staticconf.Access
			if k.Ex.Spec != nil {
				accs = k.Ex.Spec.Accesses
			}
			p.Report(Diagnostic{
				Ctor: k.Label, Kernel: k.Ex.Kernel,
				Rule: RuleStaticConflict, Detail: k.Static.Reason,
				Severity: SeverityOf(k.PredCF), PredictedCF: k.PredCF,
				Pos: p.CtorPos(k),
			}, accs...)
		}
		return nil
	},
}

// Pow2Stride reports per-dimension camping on power-of-two strides.
var Pow2Stride = &Analyzer{
	Name: RulePow2Stride,
	Doc:  "a loop dimension walks a power-of-two stride that revisits few sets far beyond associativity",
	Run:  func(p *Pass) error { runCamping(p, true); return nil },
}

// SetCamping reports per-dimension camping on non-power-of-two strides
// (row sizes whose gcd with the set span is still large).
var SetCamping = &Analyzer{
	Name: RuleSetCamping,
	Doc:  "a loop dimension's stride shares a large gcd with the set span, so its walk camps on few sets",
	Run:  func(p *Pass) error { runCamping(p, false); return nil },
}

// runCamping walks every dimension of every access and reports strides
// whose walk revisits few sets many more times than associativity
// covers, split by power-of-two-ness into the two rules.
func runCamping(p *Pass, pow2 bool) {
	for _, k := range p.Kernels {
		if k.Ex.Spec == nil {
			continue
		}
		seen := map[string]bool{}
		for _, a := range k.Ex.Spec.Accesses {
			for _, d := range a.Dims {
				distinct, lines := campingSets(a.Base, d, p.Geom)
				if distinct == 0 {
					continue
				}
				if distinct > p.Geom.Sets/4 || lines/distinct <= p.Geom.Ways {
					continue
				}
				if (d.Stride&(d.Stride-1) == 0) != pow2 {
					continue
				}
				rule := RuleSetCamping
				if pow2 {
					rule = RulePow2Stride
				}
				key := a.Array + "|" + a.Loop
				if seen[key] {
					continue
				}
				seen[key] = true
				p.Report(Diagnostic{
					Ctor: k.Label, Kernel: k.Ex.Kernel, Array: a.Array, Loop: a.Loop,
					Rule: rule,
					Detail: fmt.Sprintf(
						"stride %d walks %d lines over only %d/%d sets (%d lines per set, %d ways)",
						d.Stride, lines, distinct, p.Geom.Sets, lines/distinct, p.Geom.Ways),
					Severity: SeverityOf(k.PredCF), PredictedCF: k.PredCF,
					Pos: arrayPos(p, k, a.Array),
				}, a)
			}
		}
	}
}

// AliasingBases reports distinct arrays in one loop whose bases map to
// the same set and whose identical dims include a span-multiple stride:
// the lockstep walk lands every iteration's lines on one set.
var AliasingBases = &Analyzer{
	Name: RuleAliasingBases,
	Doc:  "distinct arrays share a base set and march in lockstep on a set-span-multiple stride",
	Run: func(p *Pass) error {
		span := int64(p.Geom.Sets * p.Geom.LineSize)
		for _, k := range p.Kernels {
			if k.Ex.Spec == nil {
				continue
			}
			seen := map[string]bool{}
			accs := k.Ex.Spec.Accesses
			for i, a := range accs {
				for _, b := range accs[i+1:] {
					if a.Array == b.Array || a.Loop != b.Loop {
						continue
					}
					if setOf(a.Base, p.Geom) != setOf(b.Base, p.Geom) || !sameDims(a.Dims, b.Dims) {
						continue
					}
					if !hasSpanMultipleDim(a.Dims, span) {
						continue
					}
					pair := a.Array + ", " + b.Array
					key := pair + "|" + a.Loop
					if seen[key] {
						continue
					}
					seen[key] = true
					p.Report(Diagnostic{
						Ctor: k.Label, Kernel: k.Ex.Kernel, Array: pair, Loop: a.Loop,
						Rule: RuleAliasingBases,
						Detail: fmt.Sprintf(
							"bases %#x and %#x share set %d and march in lockstep on a set-span stride",
							a.Base, b.Base, setOf(a.Base, p.Geom)),
						Severity: SeverityOf(k.PredCF), PredictedCF: k.PredCF,
						Pos: arrayPos(p, k, a.Array),
					}, a, b)
				}
			}
		}
		return nil
	},
}

// arrayPos anchors a per-access finding at the allocation call of its
// array inside the kernel's constructor (falling back to the package and
// then to the constructor name), so SARIF consumers land on the layout
// decision rather than the loop that suffers from it.
func arrayPos(p *Pass, k *Kernel, array string) Position {
	if sites := allocSitesFor(p, k, array); len(sites) == 1 {
		return p.Position(sites[0].call.Pos())
	}
	return p.CtorPos(k)
}

// campingSets walks one dimension (capped at one full set-pattern
// period) and reports how many distinct sets and lines it touches.
// Dimensions that cannot camp (sub-line strides, trips the associativity
// covers) report 0.
func campingSets(base uint64, d staticconf.Dim, g mem.Geometry) (distinct, lines int) {
	if d.Stride < int64(g.LineSize) || d.Trip < 2*g.Ways {
		return 0, 0
	}
	steps := d.Trip
	if steps > 4096 {
		steps = 4096 // set patterns repeat within span/gcd(stride, span) ≤ 4096 steps
	}
	sets := map[int]bool{}
	for k := 0; k < steps; k++ {
		sets[setOf(base+uint64(k)*uint64(d.Stride), g)] = true
	}
	return len(sets), steps
}

func setOf(addr uint64, g mem.Geometry) int {
	return int(addr/uint64(g.LineSize)) % g.Sets
}

func hasSpanMultipleDim(dims []staticconf.Dim, span int64) bool {
	for _, d := range dims {
		if d.Stride != 0 && d.Trip >= 2 && d.Stride%span == 0 {
			return true
		}
	}
	return false
}

func sameDims(a, b []staticconf.Dim) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
