package conflint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, doc JSONReport) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBaselineFingerprintMatch: a finding whose fingerprint is in the
// baseline is not new, even when every positional field moved — the
// robustness the fingerprint scheme exists for.
func TestBaselineFingerprintMatch(t *testing.T) {
	res := mustRun(t, []string{pathologicalDir}, Config{})
	if len(res.Diags) == 0 {
		t.Fatal("no findings to baseline")
	}

	// The run's own output as baseline: nothing is new.
	path := writeBaseline(t, JSONReport{Kernels: res.Kernels, Findings: res.Diags})
	fresh, err := NewFindings(res.Diags, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatalf("self-baseline reported %d new findings", len(fresh))
	}

	// Scramble the positions in the baseline copy; fingerprints still match.
	moved := make([]Diagnostic, len(res.Diags))
	copy(moved, res.Diags)
	for i := range moved {
		moved[i].Dir = "somewhere/else"
		moved[i].Loop = "other.c:99"
		moved[i].Pos = Position{File: "renamed.go", Line: 1, Offset: 9000}
	}
	path = writeBaseline(t, JSONReport{Findings: moved})
	fresh, err = NewFindings(res.Diags, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatalf("positional drift broke fingerprint matching: %d new", len(fresh))
	}
}

// TestBaselineLegacyFallback: entries written before fingerprints
// existed carry none and must still match through the positional key.
func TestBaselineLegacyFallback(t *testing.T) {
	res := mustRun(t, []string{pathologicalDir}, Config{})
	legacy := make([]Diagnostic, len(res.Diags))
	copy(legacy, res.Diags)
	for i := range legacy {
		legacy[i].Fingerprint = "" // pre-fingerprint baseline entry
		legacy[i].Pos = Position{}
	}
	path := writeBaseline(t, JSONReport{Findings: legacy})
	fresh, err := NewFindings(res.Diags, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatalf("legacy baseline entries not honored: %d new", len(fresh))
	}
}

// TestBaselineCatchesNewFinding: an empty baseline flags everything;
// a partial baseline flags exactly the absent findings.
func TestBaselineCatchesNewFinding(t *testing.T) {
	res := mustRun(t, []string{pathologicalDir}, Config{})
	path := writeBaseline(t, JSONReport{Findings: []Diagnostic{}})
	fresh, err := NewFindings(res.Diags, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(res.Diags) {
		t.Fatalf("empty baseline: %d new, want %d", len(fresh), len(res.Diags))
	}

	path = writeBaseline(t, JSONReport{Findings: res.Diags[1:]})
	fresh, err = NewFindings(res.Diags, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0].Fingerprint != res.Diags[0].Fingerprint {
		t.Fatalf("partial baseline: got %v", fresh)
	}
}

func TestBaselineErrors(t *testing.T) {
	if _, err := NewFindings(nil, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file not reported")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFindings(nil, path); err == nil {
		t.Error("unparsable baseline not reported")
	}
}
