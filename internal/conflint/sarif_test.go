package conflint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of diffing against them:
//
//	go test ./internal/conflint -run TestGoldenSARIF -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// TestGoldenSARIF pins the full SARIF document for the fixture suite
// byte-for-byte. Everything in it is deterministic — arena bases, spec
// shapes, fingerprints, sort order — so any diff is a behavior change
// that must be either fixed or consciously re-goldened with -update.
func TestGoldenSARIF(t *testing.T) {
	res := mustRun(t, []string{cleanDir, falseshareDir, pathologicalDir}, Config{})
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, res, "test"); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "golden", "fixtures.sarif")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/conflint -run TestGoldenSARIF -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output diverged from %s (got %d bytes, want %d).\nIf the change is intentional, re-golden with -update.\n--- got ---\n%s",
			path, buf.Len(), len(want), buf.String())
	}
}

// TestSARIFShape checks the invariants golden bytes cannot express:
// the document is valid JSON, every result's ruleIndex points at its
// ruleId, levels come from the severity map, and padfix results carry
// fixes with concrete replacements.
func TestSARIFShape(t *testing.T) {
	res := mustRun(t, []string{pathologicalDir}, Config{})
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, res, "test"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID              string            `json:"ruleId"`
				RuleIndex           int               `json:"ruleIndex"`
				Level               string            `json:"level"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
				Fixes               []struct {
					ArtifactChanges []struct {
						Replacements []struct {
							InsertedContent struct {
								Text string `json:"text"`
							} `json:"insertedContent"`
						} `json:"replacements"`
					} `json:"artifactChanges"`
				} `json:"fixes"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version %q, runs %d", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if len(run.Results) != len(res.Diags) {
		t.Fatalf("results = %d, diags = %d", len(run.Results), len(res.Diags))
	}
	levels := map[string]bool{"error": true, "warning": true, "note": true}
	sawFix := false
	for _, r := range run.Results {
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("ruleIndex %d points at %q, result says %q", r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID, r.RuleID)
		}
		if !levels[r.Level] {
			t.Errorf("bad level %q", r.Level)
		}
		if r.PartialFingerprints[fingerprintKey] == "" {
			t.Errorf("%s: missing partial fingerprint", r.RuleID)
		}
		if r.RuleID == RulePadFix {
			sawFix = true
			if len(r.Fixes) == 0 || len(r.Fixes[0].ArtifactChanges) == 0 ||
				len(r.Fixes[0].ArtifactChanges[0].Replacements) == 0 ||
				r.Fixes[0].ArtifactChanges[0].Replacements[0].InsertedContent.Text == "" {
				t.Error("padfix result carries no usable fix")
			}
		}
	}
	if !sawFix {
		t.Error("no padfix result in the pathological SARIF")
	}
}
