package conflint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/mem"
	"repro/internal/specgen"
)

// TestFixPathological is the acceptance path: apply the suggested pads
// to a copy of the pathological fixture, then prove the re-lint is
// quiet — zero static-conflict and padfix findings — and that every
// kernel's analytic CF sits below the conflict threshold.
func TestFixPathological(t *testing.T) {
	dir := copyFixture(t, pathologicalDir)
	res := mustRun(t, []string{dir}, Config{})
	outcome, err := ApplyFixes(res, false)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Edits == 0 || len(outcome.Files) == 0 {
		t.Fatal("no fixes applied to the pathological fixture")
	}

	fixed := mustRun(t, []string{dir}, Config{})
	for _, d := range fixed.Diags {
		if d.Rule == RuleStaticConflict || d.Rule == RulePadFix {
			t.Errorf("finding survived the fix: %s", d)
		}
	}

	g := mem.L1Default()
	set, err := specgen.LintLoad(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Kernels) != 3 {
		t.Fatalf("fixed fixture extracts %d kernels, want 3", len(set.Kernels))
	}
	for _, k := range set.Kernels {
		if k.Ex.Spec == nil {
			t.Fatalf("%s: no spec after fix", k.Label)
		}
		ar, err := analytic.Analyze(k.Ex.Spec, g, analytic.Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Label, err)
		}
		if ar.PredictedCF >= padCFThreshold {
			t.Errorf("%s: predicted CF %.2f still at/above %.2f after fix", k.Label, ar.PredictedCF, padCFThreshold)
		}
	}
}

// TestFixDryRunUntouched: -diff mode must not move a byte of the tree
// while still rendering the patch.
func TestFixDryRunUntouched(t *testing.T) {
	dir := copyFixture(t, pathologicalDir)
	path := filepath.Join(dir, "pathological.go")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	res := mustRun(t, []string{dir}, Config{})
	outcome, err := ApplyFixes(res, true)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := outcome.Diff()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff, "-\tm := alloc.NewMatrix2D(ar, \"m\", 512, 512, 8, 0)") ||
		!strings.Contains(diff, "+\tm := alloc.NewMatrix2D(ar, \"m\", 512, 512, 8, 64)") {
		t.Errorf("diff does not show the pad edit:\n%s", diff)
	}
	if !strings.Contains(diff, "@@ ") || !strings.Contains(diff, "--- "+path) {
		t.Errorf("diff is not unified format:\n%s", diff)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("dry run modified the tree")
	}
}

// TestFixIdempotent: re-running -fix on an already-fixed tree finds no
// padfix diagnostics, so the second apply is a no-op.
func TestFixIdempotent(t *testing.T) {
	dir := copyFixture(t, pathologicalDir)
	res := mustRun(t, []string{dir}, Config{})
	if _, err := ApplyFixes(res, false); err != nil {
		t.Fatal(err)
	}
	res2 := mustRun(t, []string{dir}, Config{})
	outcome, err := ApplyFixes(res2, false)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Edits != 0 {
		t.Errorf("second fix pass applied %d edits, want 0", outcome.Edits)
	}
}

func TestDedupeAndOverlap(t *testing.T) {
	e1 := TextEdit{File: "f.go", Start: 10, End: 12, NewText: "64"}
	e2 := TextEdit{File: "f.go", Start: 10, End: 12, NewText: "64"}
	e3 := TextEdit{File: "f.go", Start: 11, End: 13, NewText: "96"}
	deduped := dedupeEdits([]TextEdit{e1, e2})
	if len(deduped) != 1 {
		t.Fatalf("dedupe kept %d edits, want 1", len(deduped))
	}
	if err := checkOverlap("f.go", dedupeEdits([]TextEdit{e1, e3})); err == nil {
		t.Error("overlapping edits not rejected")
	}
	if err := checkOverlap("f.go", deduped); err != nil {
		t.Errorf("identical edits rejected after dedupe: %v", err)
	}
}

// TestApplyEditsBounds: an edit that fell out of sync with the file is
// an error, not a silent splice.
func TestApplyEditsBounds(t *testing.T) {
	if _, err := applyEdits("f.go", []byte("short"), []TextEdit{{Start: 2, End: 99}}); err == nil {
		t.Error("out-of-range edit accepted")
	}
	got, err := applyEdits("f.go", []byte("pad(0)"), []TextEdit{{Start: 4, End: 5, NewText: "64"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "pad(64)" {
		t.Errorf("applyEdits = %q, want %q", got, "pad(64)")
	}
}
