// Package suppress seeds the suppression-directive scopes the lint must
// honor: a constructor-scoped directive in a doc comment, a line-scoped
// directive above an allocation, and directives that match nothing (one
// stale, one malformed) which the lint must itself report. The lint's
// tests parse and interpret this package; the go tool never compiles it
// (testdata is ignored).
package suppress

import (
	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/trace"
)

// Program mirrors the workload surface the lint interprets.
type Program struct {
	Name      string
	Binary    *objfile.Binary
	Arena     *alloc.Arena
	runThread func(tid, threads int, sink trace.Sink)
}

// Quiet re-walks one column of a power-of-two matrix, the §2 pathology,
// on purpose: the layout is the fixture. Every rule is suppressed for
// the whole constructor.
//
//ccprof:ignore static-conflict,pow2-stride,padfix the layout is the point of this fixture
func Quiet() *Program {
	b := objfile.NewBuilder("quiet")
	b.Func("kernel")
	b.Loop("quiet.c", 2)
	b.Loop("quiet.c", 3)
	ld := b.Load("quiet.c", 4)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	m := alloc.NewMatrix2D(ar, "m", 512, 512, 8, 0)
	return &Program{
		Name:   "quiet",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for t := 0; t < 8; t++ {
				for i := 0; i < 512; i++ {
					sink.Ref(trace.Ref{IP: ld, Addr: m.At(i, 0)})
				}
			}
		},
	}
}

// Loud is the same pathology with only the pad suggestion silenced at
// its anchor line; the static-conflict and pow2-stride findings must
// survive.
func Loud() *Program {
	b := objfile.NewBuilder("loud")
	b.Func("kernel")
	b.Loop("loud.c", 2)
	b.Loop("loud.c", 3)
	ld := b.Load("loud.c", 4)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	//ccprof:ignore padfix benchmarked: the pad regresses the TLB
	m := alloc.NewMatrix2D(ar, "m", 512, 512, 8, 0)
	return &Program{
		Name:   "loud",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for t := 0; t < 8; t++ {
				for i := 0; i < 512; i++ {
					sink.Ref(trace.Ref{IP: ld, Addr: m.At(i, 0)})
				}
			}
		},
	}
}

// The next two directives match nothing and must be reported as
// unused-suppression findings: the first is stale, the second does not
// parse (rule names are lowercase kebab-case).
//
//ccprof:ignore aliasing-bases stale, the aliased pair was removed
//ccprof:ignore Not_A_Rule
var _ = 0
