package conflint

import (
	"fmt"

	"repro/internal/staticconf"
)

// falseShareThreads is the thread count the false-sharing check probes
// with: two sides are enough to witness any tid-parameterized layout
// collision, and keep the extra extraction cost at two interpreter runs
// per kernel.
const falseShareThreads = 2

// FalseSharing re-extracts every kernel once per thread id and reports
// cache lines that distinct runThread goroutines write at distinct
// addresses: struct fields or adjacent array slots sharing a line
// invalidate across cores on every store, even though no set conflict
// exists. Read-only sharing is fine and not reported.
var FalseSharing = &Analyzer{
	Name: RuleFalseSharing,
	Doc:  "distinct runThread goroutines write different bytes of one cache line",
	Run: func(p *Pass) error {
		for _, k := range p.Kernels {
			if k.Ex.Spec == nil {
				continue
			}
			specs := make([]*staticconf.Spec, falseShareThreads)
			for tid := 0; tid < falseShareThreads; tid++ {
				ex, err := p.Pkg.ExtractKernelTid(p.Geom, k.Ctor, k.Variant, tid, falseShareThreads)
				if err != nil || ex.Spec == nil {
					specs[tid] = nil
					continue
				}
				specs[tid] = ex.Spec
			}
			seen := map[string]bool{}
			for i := 0; i < falseShareThreads; i++ {
				for j := i + 1; j < falseShareThreads; j++ {
					if specs[i] == nil || specs[j] == nil {
						continue
					}
					reportFalseSharing(p, k, i, j, specs[i], specs[j], seen)
				}
			}
		}
		return nil
	},
}

// reportFalseSharing compares the per-thread specs of one tid pair:
// a pair of accesses where at least one side writes, the start
// addresses differ, and both land on one cache line is the classic
// false-sharing layout (per-thread counters packed into one line,
// boundary slots of a block partition).
func reportFalseSharing(p *Pass, k *Kernel, ti, tj int, a, b *staticconf.Spec, seen map[string]bool) {
	// Keep the worst pair per (arrays, line): a both-write collision
	// outranks a read/write one on the same line.
	type hit struct{ aa, ba staticconf.Access }
	best := map[string]hit{}
	var order []string
	for _, aa := range a.Accesses {
		for _, ba := range b.Accesses {
			if !aa.Write && !ba.Write {
				continue
			}
			if aa.Base == ba.Base {
				continue // same slot: true sharing, not a layout problem
			}
			if p.Geom.LineNumber(aa.Base) != p.Geom.LineNumber(ba.Base) {
				continue
			}
			pair := aa.Array
			if ba.Array != aa.Array {
				pair = aa.Array + ", " + ba.Array
			}
			key := fmt.Sprintf("%s|%d", pair, p.Geom.LineNumber(aa.Base))
			cur, ok := best[key]
			if !ok {
				order = append(order, key)
			}
			if !ok || (aa.Write && ba.Write && !(cur.aa.Write && cur.ba.Write)) {
				best[key] = hit{aa, ba}
			}
		}
	}
	for _, key := range order {
		if seen[key] {
			continue
		}
		seen[key] = true
		aa, ba := best[key].aa, best[key].ba
		pair := aa.Array
		if ba.Array != aa.Array {
			pair = aa.Array + ", " + ba.Array
		}
		sev := "medium"
		if aa.Write && ba.Write {
			sev = "high"
		}
		p.Report(Diagnostic{
			Ctor: k.Label, Kernel: k.Ex.Kernel, Array: pair, Loop: aa.Loop,
			Rule: RuleFalseSharing,
			Detail: fmt.Sprintf(
				"threads %d and %d touch line %#x at distinct addresses %#x and %#x (%s); the line ping-pongs between cores on every store",
				ti, tj, p.Geom.Line(aa.Base), aa.Base, ba.Base, writers(aa, ba)),
			Severity: sev, PredictedCF: k.PredCF,
			Pos: arrayPos(p, k, aa.Array),
		}, aa, ba)
	}
}

func writers(a, b staticconf.Access) string {
	if a.Write && b.Write {
		return "both write"
	}
	return "one writes"
}
