// Package conflint is the conflict lint's analysis driver: a
// go/analysis-shaped framework that runs modular analyzers over the
// affine access specs specgen extracts from workload packages, and
// emits position-carrying diagnostics with optional machine-applicable
// fixes.
//
// The pipeline per package directory is
//
//	parse (specgen.Load) → extract kernels (one spec per niladic
//	constructor variant) → price each kernel with the closed-form
//	analytic model → run every Analyzer over the shared Pass →
//	apply //ccprof:ignore suppressions → sort diagnostics.
//
// Each Analyzer is one rule: it reads the shared kernel extractions and
// reports Diagnostics; it never re-extracts except to verify a proposed
// fix (the padfix analyzer re-scores candidate source edits through a
// specgen overlay before suggesting them). Severity comes from the
// analytic model's predicted contribution-factor bands, so a finding's
// rank reflects how much of the miss stream the pattern would claim.
//
// Around the driver sit the production surfaces: SARIF 2.1.0 output
// (sarif.go), atomic fix application with dry-run diffs (fix.go),
// fingerprint baselines robust to unrelated edits (baseline.go), and an
// incremental cache keyed on file content hashes (cache.go).
package conflint

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"repro/internal/staticconf"
)

// Rule names, one per analyzer plus the suppression bookkeeping rule.
const (
	// RuleStaticConflict: the static analyzer predicts a cache-set
	// conflict for the extracted spec — the authoritative signal.
	RuleStaticConflict = "static-conflict"
	// RulePow2Stride: a loop dimension walks a power-of-two stride that
	// revisits a handful of sets far beyond associativity.
	RulePow2Stride = "pow2-stride"
	// RuleSetCamping: as above with a non-power-of-two stride (row sizes
	// whose gcd with the set span is still large).
	RuleSetCamping = "set-camping"
	// RuleAliasingBases: distinct arrays whose bases map to the same set
	// march in lockstep through a span-multiple stride.
	RuleAliasingBases = "aliasing-bases"
	// RuleFalseSharing: distinct runThread goroutines write different
	// bytes of one cache line.
	RuleFalseSharing = "false-sharing"
	// RulePadFix: a concrete pad edit, verified against the analytic
	// model, would clear a predicted conflict; carries the edit as a
	// suggested fix.
	RulePadFix = "padfix"
	// RuleUnusedSuppression: a //ccprof:ignore directive that matched no
	// finding (or did not parse).
	RuleUnusedSuppression = "unused-suppression"
)

// Position is a real Go source anchor: file path as parsed (relative to
// the lint's working directory when the package argument was relative),
// 1-based line and column, 0-based byte offset.
type Position struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Offset int    `json:"offset"`
}

// TextEdit replaces the byte range [Start, End) of File with NewText.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// SuggestedFix is one machine-applicable resolution of a diagnostic:
// all edits are applied together (then gofmt'ed) or not at all.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Diagnostic is one finding. File/Line carry the kernel-space
// coordinate of the offending loop (the builder's synthetic source,
// matching dynamic reports); Pos anchors the finding in the real Go
// source for SARIF consumers and fix application.
type Diagnostic struct {
	Dir    string `json:"dir"`
	Ctor   string `json:"ctor"` // constructor label, e.g. "Hotspot" or "NewADI/Original"
	Kernel string `json:"kernel"`
	Array  string `json:"array,omitempty"` // "a, b" for pair findings, "" for whole-kernel findings
	Loop   string `json:"loop,omitempty"`  // innermost loop of the offending access
	File   string `json:"file,omitempty"`  // kernel-space file split out of Loop
	Line   int    `json:"line,omitempty"`
	Rule   string `json:"kind"`
	Detail string `json:"detail"`
	// Severity buckets PredictedCF — the closed-form analytic model's
	// predicted contribution factor for the kernel — into high (≥ 0.7),
	// medium (≥ 0.25), low.
	Severity    string  `json:"severity"`
	PredictedCF float64 `json:"predicted_cf"`
	// Fingerprint identifies the finding across runs for the baseline
	// ratchet: a structural hash of (rule, enclosing symbol, access
	// shape), stable under unrelated edits and workload-scale drift.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Pos is the Go source anchor; zero when the package could not be
	// re-anchored (never, in practice).
	Pos   Position       `json:"pos"`
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

func (d Diagnostic) String() string {
	loc := d.Kernel
	if d.Loop != "" {
		loc += " " + d.Loop
	}
	if d.Array != "" {
		loc += " [" + d.Array + "]"
	}
	return fmt.Sprintf("%s: %s: %s: %s [severity %s, predicted cf %.0f%%]",
		d.Ctor, loc, d.Rule, d.Detail, d.Severity, 100*d.PredictedCF)
}

// SeverityOf buckets a predicted contribution factor into the lint's
// severity bands: a kernel whose conflict signature would dominate the
// miss stream is high, one that merely crosses the conflict threshold
// is medium, anything below is low.
func SeverityOf(cf float64) string {
	switch {
	case cf >= 0.7:
		return "high"
	case cf >= 0.25:
		return "medium"
	default:
		return "low"
	}
}

// fingerprint hashes the identity of a finding for baseline matching:
// the rule, the enclosing symbol (constructor label), the kernel, and a
// structural digest of the implicated accesses. The digest classifies
// each dimension (zero / power-of-two / other stride) rather than
// recording raw strides and trips, so workload-scale changes and
// unrelated source edits do not move the fingerprint.
func fingerprint(rule, ctorLabel, kernel string, accs []staticconf.Access) string {
	h := fnv.New64a()
	for _, s := range []string{rule, ctorLabel, kernel} {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	for _, a := range accs {
		io.WriteString(h, a.Array)
		h.Write([]byte{0})
		io.WriteString(h, strconv.FormatUint(a.Elem, 10))
		for _, d := range a.Dims {
			switch {
			case d.Stride == 0:
				h.Write([]byte{'z'})
			case d.Stride&(d.Stride-1) == 0:
				h.Write([]byte{'p'})
			default:
				h.Write([]byte{'n'})
			}
		}
		if a.Write {
			h.Write([]byte{'w'})
		}
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// legacyKey is the pre-fingerprint baseline identity (location and
// kind), accepted for one release so old baselines keep ratcheting.
func (d Diagnostic) legacyKey() string {
	return strings.Join([]string{d.Dir, d.Ctor, d.Kernel, d.Array, d.Loop, d.Rule}, "|")
}

// ctorBase strips the case-study variant suffix from a constructor
// label: "NewADI/Original" → "NewADI".
func ctorBase(label string) string {
	if i := strings.IndexByte(label, '/'); i >= 0 {
		return label[:i]
	}
	return label
}
