package conflint

import (
	"fmt"
	"go/ast"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/analytic"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/specgen"
	"repro/internal/staticconf"
)

// Analyzer is one lint rule: a named check over a Pass. Analyzers are
// stateless; all shared work (extraction, analytic pricing, static
// verdicts) lives on the Pass so every rule reads the same artifacts.
type Analyzer struct {
	Name string // rule id, e.g. "pow2-stride"
	Doc  string // one-line description for the SARIF rule catalog
	Run  func(*Pass) error
}

// Analyzers returns the default analyzer set, in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{StaticConflict, Pow2Stride, SetCamping, AliasingBases, FalseSharing, PadFix}
}

// Kernel is one extracted kernel variant shared by all analyzers, with
// the tier-0 artifacts computed once: the analytic model's predicted
// contribution factor and the static analyzer's verdict.
type Kernel struct {
	Ctor    string // constructor function name
	Variant string // "", "Original", "Optimized"
	Label   string // Ctor or "Ctor/Variant"
	Ex      *specgen.Extraction
	Decl    *ast.FuncDecl
	// PredCF is the closed-form predicted contribution factor (0 when
	// the model could not run), Static the staticconf verdict (nil when
	// the spec did not analyze).
	PredCF float64
	Static *staticconf.Report
}

// Pass is the per-directory context handed to every analyzer.
type Pass struct {
	Dir     string
	Pkg     *specgen.Package
	Geom    mem.Geometry
	Kernels []*Kernel

	diags []Diagnostic
	c     *counters
}

// Report records a diagnostic. The accesses are the spec accesses the
// finding implicates; they feed the structural fingerprint and default
// the kernel-space File/Line from the first access's loop coordinate.
func (p *Pass) Report(d Diagnostic, accs ...staticconf.Access) {
	d.Dir = p.Dir
	if d.File == "" && d.Loop != "" {
		if file, line, ok := strings.Cut(d.Loop, ":"); ok {
			if n, err := strconv.Atoi(line); err == nil {
				d.File, d.Line = file, n
			}
		}
	}
	if d.Fingerprint == "" {
		d.Fingerprint = fingerprint(d.Rule, d.Ctor, d.Kernel, accs)
	}
	p.diags = append(p.diags, d)
	p.c.findings.Inc()
}

// Position resolves a token.Pos through the package's file set.
func (p *Pass) Position(pos token.Pos) Position {
	tp := p.Pkg.Fset().Position(pos)
	return Position{File: filepath.ToSlash(tp.Filename), Line: tp.Line, Column: tp.Column, Offset: tp.Offset}
}

// CtorPos anchors a kernel at its constructor's name.
func (p *Pass) CtorPos(k *Kernel) Position {
	if k.Decl != nil {
		return p.Position(k.Decl.Name.Pos())
	}
	return Position{}
}

// Config tunes a lint run. The zero Geometry selects mem.L1Default.
type Config struct {
	Geom mem.Geometry
	// Analyzers is the rule set; nil selects Analyzers().
	Analyzers []*Analyzer
	// CacheDir enables the incremental cache when non-empty: directory
	// results are keyed on file content hashes and reused verbatim when
	// nothing in the package changed.
	CacheDir string
	// Jobs caps concurrent directory analyses; values < 2 run serially.
	// Output is byte-identical at any setting.
	Jobs int
	// Obs receives the run's counters; nil allocates a private registry.
	Obs *obs.Registry
}

// KernelSummary is the -v accounting for one linted kernel.
type KernelSummary struct {
	Label    string `json:"label"`
	Kernel   string `json:"kernel"`
	Findings int    `json:"findings"`
}

// DirResult is the outcome for one package directory — the unit the
// incremental cache stores.
type DirResult struct {
	Dir       string            `json:"dir"`
	Kernels   []KernelSummary   `json:"kernels,omitempty"`
	Diags     []Diagnostic      `json:"findings"`
	Skipped   map[string]string `json:"skipped,omitempty"`
	LoadErr   string            `json:"load_error,omitempty"` // not a lintable package
	FromCache bool              `json:"-"`
}

// Result is a full lint run.
type Result struct {
	Kernels int
	Dirs    []DirResult
	// Diags is the flattened, deterministically sorted diagnostic list
	// (file, byte offset, rule) across all directories.
	Diags []Diagnostic
}

type counters struct {
	dirs, cacheHits, cacheMisses, extracted, findings *obs.Counter
}

func newCounters(reg *obs.Registry) *counters {
	return &counters{
		dirs:        reg.Counter("conflint.dirs"),
		cacheHits:   reg.Counter("conflint.cache_hits"),
		cacheMisses: reg.Counter("conflint.cache_misses"),
		extracted:   reg.Counter("conflint.kernels_extracted"),
		findings:    reg.Counter("conflint.findings"),
	}
}

// Run lints the given package directories and returns the merged,
// sorted result. Directories that are not parsable Go packages are
// recorded with a LoadErr and otherwise skipped, so linting a whole
// module tree is cheap.
func Run(dirs []string, cfg Config) (*Result, error) {
	if cfg.Geom == (mem.Geometry{}) {
		cfg.Geom = mem.L1Default()
	}
	if cfg.Analyzers == nil {
		cfg.Analyzers = Analyzers()
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	c := newCounters(reg)

	results := make([]DirResult, len(dirs))
	errs := make([]error, len(dirs))
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(dirs) {
		jobs = len(dirs)
	}
	if jobs <= 1 {
		for i, dir := range dirs {
			results[i], errs[i] = lintDir(dir, cfg, c)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = lintDir(dirs[i], cfg, c)
				}
			}()
		}
		for i := range dirs {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Dirs: results}
	for _, dr := range results {
		res.Kernels += len(dr.Kernels)
		res.Diags = append(res.Diags, dr.Diags...)
	}
	sortDiags(res.Diags)
	return res, nil
}

// sortDiags orders diagnostics deterministically: Go file, byte
// offset, rule, then the remaining identity fields as tiebreaks.
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		switch {
		case a.Pos.File != b.Pos.File:
			return a.Pos.File < b.Pos.File
		case a.Pos.Offset != b.Pos.Offset:
			return a.Pos.Offset < b.Pos.Offset
		case a.Rule != b.Rule:
			return a.Rule < b.Rule
		case a.Ctor != b.Ctor:
			return a.Ctor < b.Ctor
		case a.Array != b.Array:
			return a.Array < b.Array
		case a.Loop != b.Loop:
			return a.Loop < b.Loop
		default:
			return a.Detail < b.Detail
		}
	})
}

// lintDir analyzes one directory, consulting the incremental cache
// first. Cache entries are keyed on the content hashes of the package's
// Go files, so any edit (including to suppression directives)
// invalidates the entry and a hit is byte-equivalent to a cold run.
func lintDir(dir string, cfg Config, c *counters) (DirResult, error) {
	c.dirs.Inc()
	key := ""
	if cfg.CacheDir != "" {
		var err error
		key, err = dirKey(dir, cfg.Geom, cfg.Analyzers)
		if err == nil {
			if dr, ok := cacheGet(cfg.CacheDir, key); ok {
				c.cacheHits.Inc()
				return dr, nil
			}
		}
		c.cacheMisses.Inc()
	}

	dr := DirResult{Dir: dir, Skipped: map[string]string{}}
	set, err := specgen.LintLoad(dir, cfg.Geom)
	if err != nil {
		// Not a parsable Go package (or empty): nothing to lint.
		dr.LoadErr = err.Error()
		dr.Skipped = nil
	} else {
		pass := &Pass{Dir: dir, Pkg: set.Pkg, Geom: cfg.Geom, c: c}
		dr.Skipped = set.Skipped
		for i := range set.Kernels {
			lk := set.Kernels[i]
			c.extracted.Inc()
			k := &Kernel{Ctor: lk.Ctor, Variant: lk.Variant, Label: lk.Label, Ex: lk.Ex, Decl: set.Pkg.FuncDecl(lk.Ctor)}
			if lk.Ex.Spec != nil {
				if ar, err := analytic.Analyze(lk.Ex.Spec, cfg.Geom, analytic.Options{}); err == nil {
					k.PredCF = ar.PredictedCF
				}
				if sr, err := staticconf.Analyze(lk.Ex.Spec, cfg.Geom, staticconf.Options{}); err == nil {
					k.Static = sr
				}
			}
			pass.Kernels = append(pass.Kernels, k)
		}
		perKernel := map[string]int{}
		for _, a := range cfg.Analyzers {
			before := len(pass.diags)
			if err := a.Run(pass); err != nil {
				return DirResult{}, fmt.Errorf("conflint: %s: %s: %w", dir, a.Name, err)
			}
			for _, d := range pass.diags[before:] {
				perKernel[d.Ctor]++
			}
		}
		dr.Diags = applySuppressions(pass)
		for _, k := range pass.Kernels {
			dr.Kernels = append(dr.Kernels, KernelSummary{Label: k.Label, Kernel: k.Ex.Kernel, Findings: perKernel[k.Label]})
		}
	}
	sortDiags(dr.Diags)
	if dr.Diags == nil {
		dr.Diags = []Diagnostic{}
	}

	if cfg.CacheDir != "" && key != "" {
		cachePut(cfg.CacheDir, key, dr)
	}
	return dr, nil
}

// Expand resolves package arguments to a sorted list of directories,
// handling the dir/... wildcard the way the go tool does (skipping
// testdata, vendor, and hidden directories). Non-recursive arguments
// are kept even when they point into testdata — that is how the lint's
// own fixtures are addressed.
func Expand(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "...")
		if !recursive {
			add(filepath.Clean(arg))
			continue
		}
		if root == "" {
			root = "."
		}
		root = filepath.Clean(root)
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// readFile is a seam for tests; production reads the real tree.
var readFile = os.ReadFile
