package conflint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/mem"
)

// cacheVersion invalidates every cached entry when the result schema or
// analyzer semantics change. Bump it whenever DirResult's JSON shape or
// any rule's behavior moves.
const cacheVersion = "conflint-cache-v1"

// dirKey derives the cache key for one package directory: the cache
// version, the geometry, the analyzer set, the directory path, and the
// content hash of every non-test Go file in it. Any source edit —
// including to a suppression comment — changes the key, so a hit is
// byte-equivalent to a cold run.
func dirKey(dir string, g mem.Geometry, analyzers []*Analyzer) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)

	h := sha256.New()
	fmt.Fprintf(h, "%s\n%+v\n", cacheVersion, g)
	for _, a := range analyzers {
		fmt.Fprintf(h, "%s\n", a.Name)
	}
	fmt.Fprintf(h, "%s\n", filepath.ToSlash(dir))
	for _, n := range names {
		src, err := readFile(filepath.Join(dir, n))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %x\n", n, sha256.Sum256(src))
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// cacheGet loads a cached DirResult. Any read or decode failure is a
// miss — the cache is advisory and rebuilt on demand.
func cacheGet(cacheDir, key string) (DirResult, bool) {
	data, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return DirResult{}, false
	}
	var dr DirResult
	if err := json.Unmarshal(data, &dr); err != nil {
		return DirResult{}, false
	}
	if dr.Diags == nil {
		dr.Diags = []Diagnostic{}
	}
	dr.FromCache = true
	return dr, true
}

// cachePut stores a DirResult atomically (temp file + rename) so a
// concurrent reader never sees a torn entry. Failures are silent: the
// cache is an optimization, not a correctness dependency.
func cachePut(cacheDir, key string, dr DirResult) {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(dr)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(cacheDir, key+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(cacheDir, key+".json")); err != nil {
		os.Remove(tmp.Name())
	}
}
