package conflint

import (
	"encoding/json"
	"fmt"
	"os"
)

// JSONReport is the top-level -json document; a saved one doubles as a
// baseline because every finding carries its fingerprint.
type JSONReport struct {
	Kernels  int          `json:"kernels"`
	Findings []Diagnostic `json:"findings"`
}

// NewFindings returns the findings absent from the baseline -json
// document at path. Matching prefers fingerprints — stable across
// unrelated edits, line drift, and workload-scale changes. Baseline
// entries written before fingerprints existed carry none; those are
// honored through the legacy positional key for one release, so an old
// baseline keeps ratcheting until it is regenerated.
func NewFindings(findings []Diagnostic, path string) ([]Diagnostic, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base JSONReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	prints := make(map[string]bool, len(base.Findings))
	legacy := make(map[string]bool, len(base.Findings))
	for _, f := range base.Findings {
		if f.Fingerprint != "" {
			prints[f.Fingerprint] = true
		} else {
			legacy[f.legacyKey()] = true
		}
	}
	var fresh []Diagnostic
	for _, f := range findings {
		if f.Fingerprint != "" && prints[f.Fingerprint] {
			continue
		}
		if legacy[f.legacyKey()] {
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, nil
}
