package conflint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/obs"
)

// copyFixture clones a fixture package into a temp dir so tests can
// edit or fix it without touching the tree.
func copyFixture(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), filepath.Base(src))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func marshalResult(t *testing.T, res *Result) string {
	t.Helper()
	js, err := json.Marshal(JSONReport{Kernels: res.Kernels, Findings: res.Diags})
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

// TestCacheHitSkipsExtraction is the incremental-cache contract: the
// warm run must not re-extract a single kernel (asserted through the
// obs counters) and must still produce byte-identical output.
func TestCacheHitSkipsExtraction(t *testing.T) {
	cacheDir := t.TempDir()
	dirs := []string{pathologicalDir}

	cold := obs.New()
	res1 := mustRun(t, dirs, Config{CacheDir: cacheDir, Obs: cold})
	if got := cold.Counter("conflint.cache_misses").Load(); got != 1 {
		t.Fatalf("cold run cache_misses = %d, want 1", got)
	}
	if got := cold.Counter("conflint.kernels_extracted").Load(); got == 0 {
		t.Fatal("cold run extracted no kernels")
	}

	warm := obs.New()
	res2 := mustRun(t, dirs, Config{CacheDir: cacheDir, Obs: warm})
	if got := warm.Counter("conflint.cache_hits").Load(); got != 1 {
		t.Fatalf("warm run cache_hits = %d, want 1", got)
	}
	if got := warm.Counter("conflint.kernels_extracted").Load(); got != 0 {
		t.Fatalf("warm run extracted %d kernels, want 0", got)
	}
	if !res2.Dirs[0].FromCache {
		t.Error("warm DirResult not marked FromCache")
	}
	if marshalResult(t, res1) != marshalResult(t, res2) {
		t.Error("cache hit output differs from cold run")
	}
}

// TestCacheInvalidation: any source edit — here a suppression comment,
// the subtlest kind — must change the key and force a re-lint.
func TestCacheInvalidation(t *testing.T) {
	dir := copyFixture(t, pathologicalDir)
	cacheDir := t.TempDir()

	mustRun(t, []string{dir}, Config{CacheDir: cacheDir})

	path := filepath.Join(dir, "pathological.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src = append(src, []byte("\n// an unrelated trailing comment\n")...)
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	mustRun(t, []string{dir}, Config{CacheDir: cacheDir, Obs: reg})
	if got := reg.Counter("conflint.cache_hits").Load(); got != 0 {
		t.Fatalf("edited package hit the cache (%d hits)", got)
	}
	if got := reg.Counter("conflint.cache_misses").Load(); got != 1 {
		t.Fatalf("cache_misses = %d, want 1", got)
	}
}

// TestDirKeyComponents pins what participates in the key: geometry and
// analyzer set changes must invalidate, path renames must too.
func TestDirKeyComponents(t *testing.T) {
	g := mem.L1Default()
	base, err := dirKey(pathologicalDir, g, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	small := g
	small.Ways = 4
	if k, _ := dirKey(pathologicalDir, small, Analyzers()); k == base {
		t.Error("geometry change did not move the key")
	}
	if k, _ := dirKey(pathologicalDir, g, Analyzers()[:2]); k == base {
		t.Error("analyzer-set change did not move the key")
	}
	if k, _ := dirKey(cleanDir, g, Analyzers()); k == base {
		t.Error("different directories share a key")
	}
}

// TestCacheCorruptEntryIsMiss: a torn or garbage cache file must fall
// back to a re-lint, never an error.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	cacheDir := t.TempDir()
	key, err := dirKey(pathologicalDir, mem.L1Default(), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	res := mustRun(t, []string{pathologicalDir}, Config{CacheDir: cacheDir, Obs: reg})
	if got := reg.Counter("conflint.cache_misses").Load(); got != 1 {
		t.Fatalf("cache_misses = %d, want 1", got)
	}
	if len(res.Diags) == 0 {
		t.Fatal("re-lint after corrupt entry produced nothing")
	}
}
