package conflint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/staticconf"
)

const (
	pathologicalDir = "../specgen/testdata/pathological"
	cleanDir        = "../specgen/testdata/clean"
	falseshareDir   = "../specgen/testdata/falseshare"
	suppressDir     = "testdata/suppress"
	workloadsDir    = "../workloads"
)

func mustRun(t *testing.T, dirs []string, cfg Config) *Result {
	t.Helper()
	res, err := Run(dirs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// rulesOf collects the rule set reported for one constructor label.
func rulesOf(res *Result, ctor string) map[string]bool {
	out := map[string]bool{}
	for _, d := range res.Diags {
		if d.Ctor == ctor {
			out[d.Rule] = true
		}
	}
	return out
}

// TestPathologicalFindings pins what the seeded pathologies trigger:
// the fixture exists so a silent lint regression fails loudly.
func TestPathologicalFindings(t *testing.T) {
	res := mustRun(t, []string{pathologicalDir}, Config{})
	if res.Kernels != 3 {
		t.Fatalf("kernels = %d, want 3", res.Kernels)
	}
	for ctor, want := range map[string][]string{
		"RepeatedColumn": {RuleStaticConflict, RulePow2Stride, RulePadFix},
		"CampingRows":    {RuleStaticConflict, RuleSetCamping, RulePadFix},
		"AliasedStreams": {RuleAliasingBases, RulePow2Stride},
	} {
		got := rulesOf(res, ctor)
		for _, rule := range want {
			if !got[rule] {
				t.Errorf("%s: missing %s finding (got %v)", ctor, rule, got)
			}
		}
	}
	for _, d := range res.Diags {
		if d.Ctor == "RepeatedColumn" && d.Severity != "high" {
			t.Errorf("RepeatedColumn %s severity = %s, want high", d.Rule, d.Severity)
		}
		if d.Fingerprint == "" {
			t.Errorf("%s/%s: empty fingerprint", d.Ctor, d.Rule)
		}
		if d.Pos.File == "" || d.Pos.Line == 0 {
			t.Errorf("%s/%s: missing source position", d.Ctor, d.Rule)
		}
		if d.Rule == RulePadFix {
			if len(d.Fixes) != 1 || len(d.Fixes[0].Edits) == 0 {
				t.Errorf("padfix for %s carries no edits", d.Ctor)
			}
			if !strings.Contains(d.Detail, "drops the predicted CF") {
				t.Errorf("padfix detail = %q, want re-scored CF", d.Detail)
			}
		}
	}
}

func TestCleanFixture(t *testing.T) {
	res := mustRun(t, []string{cleanDir}, Config{})
	if res.Kernels == 0 {
		t.Fatal("no kernels linted in the clean fixture")
	}
	if len(res.Diags) != 0 {
		t.Fatalf("clean fixture produced findings: %v", res.Diags)
	}
}

// TestFalseSharing pins the positive and negative layouts: packed
// per-thread counters on one line are flagged (both sides write, so the
// severity is high); line-padded counters are clean.
func TestFalseSharing(t *testing.T) {
	res := mustRun(t, []string{falseshareDir}, Config{})
	var hit *Diagnostic
	for i, d := range res.Diags {
		if d.Ctor == "PaddedCounters" {
			t.Errorf("PaddedCounters flagged: %s", d)
		}
		if d.Ctor == "SharedCounters" && d.Rule == RuleFalseSharing {
			hit = &res.Diags[i]
		}
	}
	if hit == nil {
		t.Fatal("SharedCounters: no false-sharing finding")
	}
	if hit.Severity != "high" {
		t.Errorf("severity = %s, want high (both threads write)", hit.Severity)
	}
	if !strings.Contains(hit.Detail, "both write") {
		t.Errorf("detail = %q, want both-write attribution", hit.Detail)
	}
}

// TestWorkloadsLint keeps the lint useful on the real corpus: the
// paper's case studies must stay lintable and keep producing findings
// on their known-pathological variants.
func TestWorkloadsLint(t *testing.T) {
	res := mustRun(t, []string{workloadsDir}, Config{})
	if res.Kernels < 10 {
		t.Fatalf("kernels = %d, want >= 10", res.Kernels)
	}
	if len(res.Diags) == 0 {
		t.Fatal("no findings over the workload corpus")
	}
}

// TestDeterministicOutput runs the same lint twice, serially and with a
// worker pool, and requires byte-identical JSON and SARIF documents —
// the contract CI and the incremental cache both lean on.
func TestDeterministicOutput(t *testing.T) {
	dirs := []string{pathologicalDir, cleanDir, falseshareDir}
	render := func(cfg Config) (string, string) {
		res := mustRun(t, dirs, cfg)
		js, err := json.Marshal(JSONReport{Kernels: res.Kernels, Findings: res.Diags})
		if err != nil {
			t.Fatal(err)
		}
		var sarif bytes.Buffer
		if err := WriteSARIF(&sarif, res, "test"); err != nil {
			t.Fatal(err)
		}
		return string(js), sarif.String()
	}
	j1, s1 := render(Config{})
	j2, s2 := render(Config{})
	j4, s4 := render(Config{Jobs: 4})
	if j1 != j2 || s1 != s2 {
		t.Error("output differs across identical runs")
	}
	if j1 != j4 || s1 != s4 {
		t.Error("output differs between -j 1 and -j 4")
	}
}

// TestFingerprintStability pins the properties the baseline ratchet
// depends on: determinism, insensitivity to scale (trip counts and
// bases move, the structure does not), sensitivity to rule, symbol, and
// stride class.
func TestFingerprintStability(t *testing.T) {
	acc := func(base uint64, stride int64, trip int) staticconf.Access {
		return staticconf.Access{
			Array: "m", Elem: 8, Base: base,
			Dims: []staticconf.Dim{{Stride: stride, Trip: trip}},
		}
	}
	a := fingerprint(RulePow2Stride, "Hotspot", "hotspot", []staticconf.Access{acc(0x100000, 4096, 512)})
	if a != fingerprint(RulePow2Stride, "Hotspot", "hotspot", []staticconf.Access{acc(0x100000, 4096, 512)}) {
		t.Error("fingerprint is not deterministic")
	}
	// Scale drift: a bigger matrix at a different base, same pow2-stride
	// shape — must match, or every workload-size bump breaks baselines.
	if a != fingerprint(RulePow2Stride, "Hotspot", "hotspot", []staticconf.Access{acc(0x200000, 8192, 1024)}) {
		t.Error("fingerprint moves with workload scale")
	}
	if fingerprint(RuleSetCamping, "Hotspot", "hotspot", []staticconf.Access{acc(0x100000, 4096, 512)}) == a {
		t.Error("fingerprint ignores the rule")
	}
	if fingerprint(RulePow2Stride, "Other", "hotspot", []staticconf.Access{acc(0x100000, 4096, 512)}) == a {
		t.Error("fingerprint ignores the constructor")
	}
	// Stride-class change (pow2 → other) is a structural change.
	if fingerprint(RulePow2Stride, "Hotspot", "hotspot", []staticconf.Access{acc(0x100000, 6144, 512)}) == a {
		t.Error("fingerprint ignores the stride class")
	}
	wr := acc(0x100000, 4096, 512)
	wr.Write = true
	if fingerprint(RulePow2Stride, "Hotspot", "hotspot", []staticconf.Access{wr}) == a {
		t.Error("fingerprint ignores the write flag")
	}
}
