package workloads

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("tinydnn", func() *CaseStudy { return NewTinyDNN(256, 1024, 4) })
}

// NewTinyDNN builds the Tiny-DNN case study (§6.4, Listing 3): the forward
// propagation of a fully-connected layer,
//
//	for i in out: for c in in: a[i] += W[c*out + i] * in[c]
//
// The weight matrix W is read down a column (fixed i, c varying), a stride
// of 4*out bytes; with out a power of two large enough, every access lands
// in one cache set, producing the short RCDs CCProf reports. The optimized
// variant pads each W row by 64 bytes. batches repeats the layer, modelling
// several training iterations.
func NewTinyDNN(in, out, batches int) *CaseStudy {
	return &CaseStudy{
		Name:          "Tiny_DNN",
		Desc:          fmt.Sprintf("fully-connected forward layer %d->%d, %d batches", in, out, batches),
		Original:      tinyDNNProgram(in, out, batches, 0),
		Optimized:     tinyDNNProgram(in, out, batches, 64),
		TargetLoop:    "fully_connected_layer.h:2",
		ProfilePeriod: 171,
		Parallel:      true,
		PadBuilder:    func(pad uint64) *Program { return tinyDNNProgram(in, out, batches, pad) },
	}
}

// TinyDNNAt builds the forward-layer kernel with an arbitrary W row pad,
// for pad-search tooling (see examples/advisor).
func TinyDNNAt(in, out, batches int, pad uint64) *Program {
	return tinyDNNProgram(in, out, batches, pad)
}

func tinyDNNProgram(in, out, batches int, pad uint64) *Program {
	name := "tinydnn"
	if pad > 0 {
		name = fmt.Sprintf("tinydnn-pad%d", pad)
	}
	const src = "fully_connected_layer.h"

	b := objfile.NewBuilder(name)
	b.Func("forward_propagation")
	b.Loop(src, 0) // batch loop
	b.Loop(src, 1) // for i (output neurons)
	b.Loop(src, 2) // for c (input neurons) — Listing 3's loop
	ldW := b.Load(src, 2)
	ldIn := b.Load(src, 2)
	b.EndLoop()
	stA := b.Store(src, 3) // a[i] written once per neuron
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	w := alloc.NewMatrix2D(ar, "W", in, out, 4, pad)
	inVec := alloc.NewVector(ar, "in", in, 4)
	aVec := alloc.NewVector(ar, "a", out, 4)

	// Static access spec: W is read down a column (stride = one row),
	// Listing 3's pathology; the input vector is cache-resident reuse.
	rs := int64(w.RowStride())
	sp := spec(name,
		acc("W", "fully_connected_layer.h:2", w.At(0, 0), 4, 1,
			dim(0, batches), dim(4, out), dim(rs, in)),
		acc("in", "fully_connected_layer.h:2", inVec.At(0), 4, 1,
			dim(0, batches), dim(0, out), dim(4, in)),
		acc("a", "fully_connected_layer.h:3", aVec.At(0), 4, 1,
			dim(0, batches), dim(4, out)),
	)

	// Real layer values: weights and activations as float32, like
	// tiny-dnn's vec_t.
	vals := lazy(func() *dnnVals {
		v := &dnnVals{
			w:  make([]float32, in*out),
			in: make([]float32, in),
			a:  make([]float32, out),
		}
		rng := stats.NewRand(777)
		for i := range v.w {
			v.w[i] = float32(rng.Float64()) - 0.5
		}
		for i := range v.in {
			v.in[i] = float32(rng.Float64())
		}
		return v
	})

	p := &Program{
		Name:   name,
		Binary: bin,
		Arena:  ar,
		Spec:   sp,
		runThread: func(tid, threads int, sink trace.Sink) {
			compute := threads == 1
			var wVals, inVals, aVals []float32
			if compute {
				v := vals()
				wVals, inVals, aVals = v.w, v.in, v.a
			}
			lo, hi := span(out, tid, threads)
			for batch := 0; batch < batches; batch++ {
				for i := lo; i < hi; i++ {
					var acc float32
					for c := 0; c < in; c++ {
						sink.Ref(trace.Ref{IP: ldW, Addr: w.At(c, i)})
						sink.Ref(trace.Ref{IP: ldIn, Addr: inVec.At(c)})
						if compute {
							acc += wVals[c*out+i] * inVals[c]
						}
					}
					sink.Ref(trace.Ref{IP: stA, Addr: aVec.At(i), Write: true})
					if compute {
						aVals[i] = acc
					}
				}
			}
		},
	}
	p.Check = func() float64 {
		var sum float64
		for _, v := range vals().a {
			sum += float64(v)
		}
		return sum
	}
	return p
}

type dnnVals struct{ w, in, a []float32 }

// TinyDNNReference computes the layer's activations naively for
// verification: a[i] = sum_c W[c][i] * in[c] with the same seeded values.
func TinyDNNReference(in, out int) []float32 {
	wVals := make([]float32, in*out)
	inVals := make([]float32, in)
	rng := stats.NewRand(777)
	for i := range wVals {
		wVals[i] = float32(rng.Float64()) - 0.5
	}
	for i := range inVals {
		inVals[i] = float32(rng.Float64())
	}
	a := make([]float32, out)
	for i := 0; i < out; i++ {
		for c := 0; c < in; c++ {
			a[i] += wVals[c*out+i] * inVals[c]
		}
	}
	return a
}
