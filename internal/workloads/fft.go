package workloads

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("fft", func() *CaseStudy { return NewFFT(256) })
}

// NewFFT builds the MKL-FFT case study (§6.3): a 2D complex DFT of
// power-of-two size, computed as in-place radix-2 FFTs over all rows and
// then all columns. Rows of n 16-byte complex elements span exactly n/4
// cache lines; for power-of-two n every row starts at the same set, so the
// column pass — whose butterflies stride by whole rows — concentrates on a
// few sets. This is the classical "2-power DFT" conflict the paper cites.
// The optimized variant pads each row by 8 complex elements (128 bytes),
// the paper's fix.
//
// The kernel computes the transform for real (decimation-in-time
// butterflies over a seeded input; Check returns the output energy, which
// Parseval's theorem pins to n^2 times the input energy). MKL is closed
// source, so CCProf attributes these samples to anonymous code blocks; the
// synthetic binary mirrors that by attributing the kernel to the
// pseudo-source "libmkl(anon)".
func NewFFT(n int) *CaseStudy {
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("workloads: FFT size %d is not a power of two", n))
	}
	return &CaseStudy{
		Name:          "MKL FFT",
		Desc:          fmt.Sprintf("2D complex DFT, %dx%d, radix-2 row+column passes", n, n),
		Original:      fftProgram(n, 0),
		Optimized:     fftProgram(n, 128),
		TargetLoop:    "libmkl(anon):30",
		ProfilePeriod: 171,
		Parallel:      true,
		PadBuilder:    func(pad uint64) *Program { return fftProgram(n, pad) },
	}
}

func fftProgram(n int, pad uint64) *Program {
	name := "fft"
	if pad > 0 {
		name = fmt.Sprintf("fft-pad%d", pad)
	}
	const src = "libmkl(anon)"

	b := objfile.NewBuilder(name)
	b.Func("mkl_dft_2d")
	// Row pass.
	b.Loop(src, 10) // for each row
	b.Loop(src, 11) // for each stage
	b.Loop(src, 12) // for each butterfly
	rowLdA := b.Load(src, 13)
	rowLdB := b.Load(src, 13)
	rowStA := b.Store(src, 14)
	rowStB := b.Store(src, 14)
	b.EndLoop()
	b.EndLoop()
	b.EndLoop()
	// Column pass — the anonymous loop consuming 50% of L1 misses.
	b.Loop(src, 28) // for each column
	b.Loop(src, 29) // for each stage
	b.Loop(src, 30) // for each butterfly
	colLdA := b.Load(src, 31)
	colLdB := b.Load(src, 31)
	colStA := b.Store(src, 32)
	colStB := b.Store(src, 32)
	b.EndLoop()
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	data := alloc.NewMatrix2D(ar, "dft_data", n, n, 16, pad)

	// Static access spec. Each in-place FFT revisits its n elements once
	// per stage (the zero-stride stage dim); the reuse window is one
	// whole transform. The column pass walks rows by the full row
	// stride — the 2-power DFT pathology.
	rs := int64(data.RowStride())
	stages := log2i(n)
	sp := spec(name,
		acc("dft_data", "libmkl(anon):12", data.At(0, 0), 16, 2,
			dim(rs, n), dim(0, stages), dim(16, n)),
		acc("dft_data", "libmkl(anon):30", data.At(0, 0), 16, 2,
			dim(16, n), dim(0, stages), dim(rs, n)),
	)

	// Element storage and the seeded input signal.
	signal := lazy(func() *fftVals {
		v := &fftVals{vals: make([]complex128, n*n)}
		rng := stats.NewRand(909)
		for i := range v.vals {
			v.vals[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			re, im := real(v.vals[i]), imag(v.vals[i])
			v.inputEnergy += re*re + im*im
		}
		return v
	})

	// traced performs one in-place forward FFT over the n elements
	// addressed by at/idx, emitting the memory traffic of each butterfly.
	traced := func(sink trace.Sink, compute bool, at func(int) uint64, idx func(int) int,
		ldA, ldB, stA, stB uint64) {
		var vals []complex128
		if compute {
			vals = signal().vals
		}
		for half := 1; half < n; half <<= 1 {
			step := half << 1
			for base := 0; base < n; base += step {
				for off := 0; off < half; off++ {
					i, j := base+off, base+off+half
					sink.Ref(trace.Ref{IP: ldA, Addr: at(i)})
					sink.Ref(trace.Ref{IP: ldB, Addr: at(j)})
					sink.Ref(trace.Ref{IP: stA, Addr: at(i), Write: true})
					sink.Ref(trace.Ref{IP: stB, Addr: at(j), Write: true})
					if compute {
						ii, jj := idx(i), idx(j)
						w := twiddle(off, half)
						a, bb := vals[ii], vals[jj]
						t := w * bb
						vals[ii] = a + t
						vals[jj] = a - t
					}
				}
			}
		}
	}

	p := &Program{
		Name:   name,
		Binary: bin,
		Arena:  ar,
		Spec:   sp,
		runThread: func(tid, threads int, sink trace.Sink) {
			compute := threads == 1
			lo, hi := span(n, tid, threads)
			for r := lo; r < hi; r++ {
				traced(sink, compute,
					func(k int) uint64 { return data.At(r, k) },
					func(k int) int { return r*n + k },
					rowLdA, rowLdB, rowStA, rowStB)
			}
			for c := lo; c < hi; c++ {
				traced(sink, compute,
					func(k int) uint64 { return data.At(k, c) },
					func(k int) int { return k*n + c },
					colLdA, colLdB, colStA, colStB)
			}
		},
	}
	p.Check = func() float64 {
		// Parseval: after the 2D forward transform the energy is
		// n^2 x input energy; Check returns the measured/expected ratio
		// (1.0 for a correct transform).
		s := signal()
		var e float64
		for _, v := range s.vals {
			re, im := real(v), imag(v)
			e += re*re + im*im
		}
		return e / (float64(n) * float64(n) * s.inputEnergy)
	}
	return p
}

type fftVals struct {
	vals        []complex128
	inputEnergy float64
}

// twiddle returns the DIT butterfly factor exp(-i*pi*off/half).
func twiddle(off, half int) complex128 {
	return cmplx.Exp(complex(0, -math.Pi*float64(off)/float64(half)))
}

// FFTForward performs an in-place radix-2 decimation-in-time pass over x
// (len must be a power of two). Fed natural-order input it computes the
// DFT of the bit-reversed input; FFTInverse exactly undoes it.
func FFTForward(x []complex128) {
	n := len(x)
	for half := 1; half < n; half <<= 1 {
		step := half << 1
		for base := 0; base < n; base += step {
			for off := 0; off < half; off++ {
				i, j := base+off, base+off+half
				w := twiddle(off, half)
				a, b := x[i], x[j]
				t := w * b
				x[i] = a + t
				x[j] = a - t
			}
		}
	}
}

// FFTInverse exactly inverts FFTForward: the same stages in reverse order
// with conjugated twiddles and a half scale per stage.
func FFTInverse(x []complex128) {
	n := len(x)
	for half := n / 2; half >= 1; half >>= 1 {
		step := half << 1
		for base := 0; base < n; base += step {
			for off := 0; off < half; off++ {
				i, j := base+off, base+off+half
				w := cmplx.Conj(twiddle(off, half))
				a, b := x[i], x[j]
				x[i] = (a + b) / 2
				x[j] = w * (a - b) / 2
			}
		}
	}
}

// BitReverse returns i bit-reversed within log2(n) bits, the permutation
// relating FFTForward's output order to the natural DFT.
func BitReverse(i, n int) int {
	r := 0
	for n > 1 {
		r = r<<1 | i&1
		i >>= 1
		n >>= 1
	}
	return r
}
