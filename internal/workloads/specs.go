package workloads

import "repro/internal/staticconf"

// Spec-construction helpers. Every workload declares the affine access
// specification of its dominant references alongside the trace generator,
// so the static analyzer sees exactly the layout the generator walks
// (bases and strides come from the same alloc matrices).

// dim is one loop dimension: byte stride per iteration, trip count.
func dim(stride int64, trip int) staticconf.Dim {
	return staticconf.Dim{Stride: stride, Trip: trip}
}

// acc assembles one access; window is the number of innermost dims
// forming the reuse window.
func acc(array, loop string, base, elem uint64, window int, dims ...staticconf.Dim) staticconf.Access {
	return staticconf.Access{
		Array: array, Loop: loop, Base: base, Elem: elem,
		Dims: dims, Window: window,
	}
}

// accApprox is acc with the Approx marker set: the access is a deliberate
// rectangular stand-in for data-dependent or non-rectangular traffic, so
// spec-extraction cross-checks compare it by volume only.
func accApprox(array, loop string, base, elem uint64, window int, dims ...staticconf.Dim) staticconf.Access {
	a := acc(array, loop, base, elem, window, dims...)
	a.Approx = true
	return a
}

// spec assembles a kernel spec.
func spec(kernel string, accesses ...staticconf.Access) *staticconf.Spec {
	return &staticconf.Spec{Kernel: kernel, Accesses: accesses}
}

// log2i returns ⌈log2 n⌉ for n ≥ 1, the stage count of a radix-2 FFT.
func log2i(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	if k == 0 {
		k = 1
	}
	return k
}
