package workloads

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/staticconf"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("kripke", func() *CaseStudy { return NewKripke(128, 64, 32) })
}

// NewKripke builds the Kripke case study (§6.5, Listing 4): the particle
// edit kernel of LLNL's Sn transport mini-app, reducing the angular flux
//
//	part += w[d] * psi(g,d,z) * vol[z]
//
// psi is laid out group-major ((g,d,z) with z innermost), but the original
// kernel iterates z { d { g } }: the innermost g increment strides by
// directions*zones*8 bytes — with power-of-two extents, the same cache set
// every time. The optimized variant is the paper's fix: loop interchange to
// g { d { z } }, making psi access fully sequential (no padding needed).
func NewKripke(zones, directions, groups int) *CaseStudy {
	return &CaseStudy{
		Name: "Kripke",
		Desc: fmt.Sprintf("Sn particle edit kernel, %d zones x %d directions x %d groups",
			zones, directions, groups),
		Original:      kripkeProgram(zones, directions, groups, false, 0),
		Optimized:     kripkeProgram(zones, directions, groups, true, 0),
		TargetLoop:    "kernel.cpp:5",
		ProfilePeriod: 171,
		Parallel:      true,
		// The paper's fix is the interchange, but padding psi's z-rows
		// breaks the same power-of-two alignment; that is the knob the
		// advisor's mechanical search can turn.
		PadBuilder: func(pad uint64) *Program {
			return kripkeProgram(zones, directions, groups, false, pad)
		},
	}
}

func kripkeProgram(zones, directions, groups int, interchanged bool, rowPad uint64) *Program {
	name := "kripke"
	if interchanged {
		name = "kripke-interchanged"
	} else if rowPad > 0 {
		name = fmt.Sprintf("kripke-pad%d", rowPad)
	}
	const src = "kernel.cpp"

	b := objfile.NewBuilder(name)
	b.Func("particleEdit")
	var ldVol, ldW, ldPsi uint64
	if !interchanged {
		b.Loop(src, 1) // for z
		ldVol = b.Load(src, 2)
		b.Loop(src, 3) // for d
		ldW = b.Load(src, 4)
		b.Loop(src, 5) // for g — the conflicting loop
		ldPsi = b.Load(src, 6)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
	} else {
		b.Loop(src, 1) // for g
		b.Loop(src, 3) // for d
		ldW = b.Load(src, 4)
		b.Loop(src, 5) // for z
		ldPsi = b.Load(src, 6)
		ldVol = b.Load(src, 6)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
	}
	bin := b.Finish()

	ar := alloc.NewArena()
	// psi(g,d,z): g-major 3D layout, z innermost.
	psi := alloc.NewMatrix3D(ar, "psi", groups, directions, zones, 8, rowPad, 0)
	vol := alloc.NewVector(ar, "volume", zones, 8)
	w := alloc.NewVector(ar, "dirs.w", directions, 16) // direction struct, w field

	// Static access spec. The original order z{d{g}} makes psi's inner
	// stride a whole (g,d) plane — with power-of-two extents, the same
	// set every iteration. The interchange makes psi streaming.
	rowS, planeS := int64(psi.RowStride()), int64(psi.PlaneStride())
	var sp *staticconf.Spec
	if !interchanged {
		sp = spec(name,
			acc("psi", "kernel.cpp:5", psi.At(0, 0, 0), 8, 1,
				dim(8, zones), dim(rowS, directions), dim(planeS, groups)),
			acc("volume", "kernel.cpp:1", vol.At(0), 8, 1, dim(8, zones)),
			acc("dirs.w", "kernel.cpp:3", w.At(0), 8, 1, dim(0, zones), dim(16, directions)),
		)
	} else {
		sp = spec(name,
			acc("psi", "kernel.cpp:5", psi.At(0, 0, 0), 8, 1,
				dim(planeS, groups), dim(rowS, directions), dim(8, zones)),
			acc("volume", "kernel.cpp:5", vol.At(0), 8, 1,
				dim(0, groups), dim(0, directions), dim(8, zones)),
			acc("dirs.w", "kernel.cpp:3", w.At(0), 8, 1, dim(0, groups), dim(16, directions)),
		)
	}

	// Real particle-edit values: the kernel computes the total particle
	// count, part = sum w[d] * psi[g][d][z] * vol[z]. Loop interchange
	// must not change the result (up to FP reassociation).
	vals := lazy(func() *kripkeVals {
		v := &kripkeVals{}
		v.psi, v.vol, v.w = kripkeValues(zones, directions, groups)
		return v
	})
	var part float64

	p := &Program{
		Name:   name,
		Binary: bin,
		Arena:  ar,
		Spec:   sp,
		runThread: func(tid, threads int, sink trace.Sink) {
			compute := threads == 1
			var psiVals, volVals, wVals []float64
			if compute {
				v := vals()
				psiVals, volVals, wVals = v.psi, v.vol, v.w
				part = 0
			}
			at := func(g, d, z int) float64 {
				return psiVals[(g*directions+d)*zones+z]
			}
			if !interchanged {
				lo, hi := span(zones, tid, threads)
				for z := lo; z < hi; z++ {
					sink.Ref(trace.Ref{IP: ldVol, Addr: vol.At(z)})
					for d := 0; d < directions; d++ {
						sink.Ref(trace.Ref{IP: ldW, Addr: w.At(d)})
						for g := 0; g < groups; g++ {
							sink.Ref(trace.Ref{IP: ldPsi, Addr: psi.At(g, d, z)})
							if compute {
								part += wVals[d] * at(g, d, z) * volVals[z]
							}
						}
					}
				}
				return
			}
			lo, hi := span(groups, tid, threads)
			for g := lo; g < hi; g++ {
				for d := 0; d < directions; d++ {
					sink.Ref(trace.Ref{IP: ldW, Addr: w.At(d)})
					for z := 0; z < zones; z++ {
						sink.Ref(trace.Ref{IP: ldPsi, Addr: psi.At(g, d, z)})
						sink.Ref(trace.Ref{IP: ldVol, Addr: vol.At(z)})
						if compute {
							part += wVals[d] * at(g, d, z) * volVals[z]
						}
					}
				}
			}
		},
	}
	p.Check = func() float64 { return part }
	return p
}

type kripkeVals struct{ psi, vol, w []float64 }

// kripkeValues generates the deterministic inputs shared by both loop
// orders and the reference sum.
func kripkeValues(zones, directions, groups int) (psi, vol, w []float64) {
	rng := stats.NewRand(4242)
	psi = make([]float64, groups*directions*zones)
	for i := range psi {
		psi[i] = rng.Float64()
	}
	vol = make([]float64, zones)
	for i := range vol {
		vol[i] = 0.5 + rng.Float64()
	}
	w = make([]float64, directions)
	for i := range w {
		w[i] = rng.Float64() / float64(directions)
	}
	return
}

// KripkeReference computes the particle total naively for verification.
func KripkeReference(zones, directions, groups int) float64 {
	psi, vol, w := kripkeValues(zones, directions, groups)
	var part float64
	for g := 0; g < groups; g++ {
		for d := 0; d < directions; d++ {
			for z := 0; z < zones; z++ {
				part += w[d] * psi[(g*directions+d)*zones+z] * vol[z]
			}
		}
	}
	return part
}
