package workloads

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("nw", func() *CaseStudy { return NewNW(1024, 16) })
}

// nwIPs collects the sample-relevant instruction addresses of the NW
// binary, keyed by the needle.cpp line numbers Table 4 reports.
type nwIPs struct {
	init289                        uint64 // matrix init / penalty scan
	copyIn128, copyRef138          uint64 // top-left tile copies
	comp147, wb159                 uint64 // top-left compute + writeback
	copyIn189, copyRef199          uint64 // bottom-right tile copies (Listing 1)
	comp208, wb220                 uint64 // bottom-right compute + writeback
	trace273, trace320             uint64 // traceback reads
	inLocalLd, refLocalLd, localSt uint64 // local-tile traffic
}

// NewNW builds the Rodinia Needleman-Wunsch case study (§6.1): tiled
// dynamic programming for DNA sequence alignment over two (n+1) x (n+1)
// int matrices, input_itemsets and reference. Tiles are copied into small
// local arrays, computed, and written back; the tile copies read tileSize+1
// consecutive rows whose starting sets coincide for runs of rows (the row
// stride is 4*(n+1) bytes), so both arrays hammer the same few sets — the
// inter-array conflict the paper diagnoses. The optimized variant applies
// the paper's padding: 288 bytes per input_itemsets row, 32 per reference
// row.
func NewNW(n, tileSize int) *CaseStudy {
	return &CaseStudy{
		Name:          "NW",
		Desc:          fmt.Sprintf("Rodinia Needleman-Wunsch, %dx%d ints, %d-wide tiles", n+1, n+1, tileSize),
		Original:      nwProgram(n, tileSize, 0, 0),
		Optimized:     nwProgram(n, tileSize, 288, 32),
		TargetLoop:    "needle.cpp:189",
		ProfilePeriod: 171,
		Parallel:      true,
		PadBuilder:    func(pad uint64) *Program { return nwProgram(n, tileSize, pad, pad) },
	}
}

func nwProgram(n, tileSize int, padInput, padRef uint64) *Program {
	name := "nw"
	if padInput > 0 || padRef > 0 {
		name = fmt.Sprintf("nw-pad%d-%d", padInput, padRef)
	}
	rows := n + 1

	b := objfile.NewBuilder(name)
	var ip nwIPs
	b.Func("runTest")

	// Initialization scan (needle.cpp:289 bucket): touches the whole
	// input matrix row-major once.
	b.Loop("needle.cpp", 288)
	b.Loop("needle.cpp", 289)
	ip.init289 = b.Store("needle.cpp", 290)
	b.EndLoop()
	b.EndLoop()

	emitPhase := func(lCopyIn, lCopyRef, lComp, lWB int) (in, ref, comp, wb, lin, lref, lst uint64) {
		// Tile copy: input_itemsets -> local (Listing 1 shape).
		b.Loop("needle.cpp", lCopyIn)
		in = b.Load("needle.cpp", lCopyIn+1)
		lst = b.Store("needle.cpp", lCopyIn+1)
		b.EndLoop()
		// Tile copy: reference -> local.
		b.Loop("needle.cpp", lCopyRef)
		ref = b.Load("needle.cpp", lCopyRef+1)
		b.EndLoop()
		// Compute on locals.
		b.Loop("needle.cpp", lComp)
		lin = b.Load("needle.cpp", lComp+1)
		lref = b.Load("needle.cpp", lComp+1)
		comp = b.Store("needle.cpp", lComp+2)
		b.EndLoop()
		// Write back.
		b.Loop("needle.cpp", lWB)
		wb = b.Store("needle.cpp", lWB+1)
		b.EndLoop()
		return
	}

	// Top-left wavefront phase (lines 128-159).
	b.Loop("needle.cpp", 126)
	var lin1, lref1, lst1 uint64
	ip.copyIn128, ip.copyRef138, ip.comp147, ip.wb159, lin1, lref1, lst1 = emitPhase(128, 138, 147, 159)
	b.EndLoop()

	// Bottom-right wavefront phase (lines 189-220).
	b.Loop("needle.cpp", 187)
	ip.copyIn189, ip.copyRef199, ip.comp208, ip.wb220, ip.inLocalLd, ip.refLocalLd, ip.localSt = emitPhase(189, 199, 208, 220)
	b.EndLoop()

	// Traceback (lines 273 and 320 buckets).
	b.Loop("needle.cpp", 273)
	ip.trace273 = b.Load("needle.cpp", 274)
	b.EndLoop()
	b.Loop("needle.cpp", 320)
	ip.trace320 = b.Load("needle.cpp", 321)
	b.EndLoop()

	bin := b.Finish()

	ar := alloc.NewArena()
	input := alloc.NewMatrix2D(ar, "input_itemsets", rows, rows, 4, padInput)
	ref := alloc.NewMatrix2D(ar, "reference", rows, rows, 4, padRef)
	inLocal := alloc.NewMatrix2D(ar, "input_itemsets_l", tileSize+1, tileSize+1, 4, 0)
	refLocal := alloc.NewMatrix2D(ar, "reference_l", tileSize, tileSize, 4, 0)

	nTiles := n / tileSize

	// Static access spec. The dominant traffic is the tile copies: each
	// tile reads tileSize+1 consecutive rows of both big matrices into
	// the locals. The reuse window is one tile (the inner two dims); the
	// outer two dims enumerate the nTiles x nTiles tile grid, which the
	// wavefront phases visit exactly once in total.
	rsIn, rsRef := int64(input.RowStride()), int64(ref.RowStride())
	rsL := int64(inLocal.RowStride())
	ts := tileSize
	sp := spec(name,
		acc("input_itemsets", "needle.cpp:289", input.At(0, 0), 4, 1,
			dim(rsIn, rows), dim(4, rows)),
		acc("input_itemsets", "needle.cpp:189", input.At(0, 0), 4, 2,
			dim(int64(ts)*rsIn, nTiles), dim(int64(ts)*4, nTiles), dim(rsIn, ts+1), dim(4, ts+1)),
		acc("input_itemsets_l", "needle.cpp:190", inLocal.At(0, 0), 4, 2,
			dim(0, nTiles*nTiles), dim(rsL, ts+1), dim(4, ts+1)),
		acc("reference", "needle.cpp:199", ref.At(1, 1), 4, 2,
			dim(int64(ts)*rsRef, nTiles), dim(int64(ts)*4, nTiles), dim(rsRef, ts), dim(4, ts)),
		acc("reference_l", "needle.cpp:200", refLocal.At(0, 0), 4, 2,
			dim(0, nTiles*nTiles), dim(int64(ts)*4, ts), dim(4, ts)),
		acc("input_itemsets", "needle.cpp:220", input.At(1, 1), 4, 2,
			dim(int64(ts)*rsIn, nTiles), dim(int64(ts)*4, nTiles), dim(rsIn, ts), dim(4, ts)),
	)

	// Real DP values: the kernel computes the actual alignment-score
	// matrix with the same seeded similarity scores the naive reference
	// (NWReference) uses. Element (i, j) of the address layout above
	// corresponds to inputVals[i*rows+j].
	vals := lazy(func() *nwVals {
		return &nwVals{
			ref:      nwSimilarity(n),
			input:    make([]int32, rows*rows),
			inLocal:  make([]int32, (tileSize+1)*(tileSize+1)),
			refLocal: make([]int32, tileSize*tileSize),
		}
	})

	// processTile emits the traffic of one (bx, by) tile in one phase and
	// (when compute is set) performs the tile's DP for real.
	processTile := func(sink trace.Sink, compute bool, bx, by int, inIP, refIP, compIP, wbIP, linIP, lrefIP, lstIP uint64) {
		var refVals, inputVals, inLocalVals, refLocalVals []int32
		if compute {
			v := vals()
			refVals, inputVals = v.ref, v.input
			inLocalVals, refLocalVals = v.inLocal, v.refLocal
		}
		r0, c0 := bx*tileSize, by*tileSize
		lw := tileSize + 1
		// Copy input tile (with halo row/column).
		for i := 0; i <= tileSize; i++ {
			for j := 0; j <= tileSize; j++ {
				sink.Ref(trace.Ref{IP: inIP, Addr: input.At(r0+i, c0+j)})
				sink.Ref(trace.Ref{IP: lstIP, Addr: inLocal.At(i, j), Write: true})
				if compute {
					inLocalVals[i*lw+j] = inputVals[(r0+i)*rows+(c0+j)]
				}
			}
		}
		// Copy reference tile.
		for i := 0; i < tileSize; i++ {
			for j := 0; j < tileSize; j++ {
				sink.Ref(trace.Ref{IP: refIP, Addr: ref.At(r0+i+1, c0+j+1)})
				sink.Ref(trace.Ref{IP: lstIP, Addr: refLocal.At(i, j), Write: true})
				if compute {
					refLocalVals[i*tileSize+j] = refVals[(r0+i+1)*rows+(c0+j+1)]
				}
			}
		}
		// Compute on locals (reads three DP neighbours + reference).
		for i := 1; i <= tileSize; i++ {
			for j := 1; j <= tileSize; j++ {
				sink.Ref(trace.Ref{IP: linIP, Addr: inLocal.At(i-1, j-1)})
				sink.Ref(trace.Ref{IP: linIP, Addr: inLocal.At(i-1, j)})
				sink.Ref(trace.Ref{IP: linIP, Addr: inLocal.At(i, j-1)})
				sink.Ref(trace.Ref{IP: lrefIP, Addr: refLocal.At(i-1, j-1)})
				sink.Ref(trace.Ref{IP: compIP, Addr: inLocal.At(i, j), Write: true})
				if compute {
					inLocalVals[i*lw+j] = nwCell(
						inLocalVals[(i-1)*lw+(j-1)],
						inLocalVals[(i-1)*lw+j],
						inLocalVals[i*lw+(j-1)],
						refLocalVals[(i-1)*tileSize+(j-1)])
				}
			}
		}
		// Write the tile back.
		for i := 1; i <= tileSize; i++ {
			for j := 1; j <= tileSize; j++ {
				sink.Ref(trace.Ref{IP: wbIP, Addr: input.At(r0+i, c0+j), Write: true})
				if compute {
					inputVals[(r0+i)*rows+(c0+j)] = inLocalVals[i*lw+j]
				}
			}
		}
	}

	p := &Program{
		Name:   name,
		Binary: bin,
		Arena:  ar,
		Spec:   sp,
		runThread: func(tid, threads int, sink trace.Sink) {
			compute := threads == 1
			var inputVals []int32
			if compute {
				inputVals = vals().input
			}
			// Initialization scan, partitioned by rows: zero the matrix
			// and lay down the gap penalties on the boundary.
			lo, hi := span(rows, tid, threads)
			for i := lo; i < hi; i++ {
				for j := 0; j < rows; j++ {
					sink.Ref(trace.Ref{IP: ip.init289, Addr: input.At(i, j), Write: true})
					if compute {
						switch {
						case i == 0:
							inputVals[i*rows+j] = int32(-j) * nwPenalty
						case j == 0:
							inputVals[i*rows+j] = int32(-i) * nwPenalty
						default:
							inputVals[i*rows+j] = 0
						}
					}
				}
			}
			// Top-left wavefronts: diagonals of tiles, tiles on a
			// diagonal partitioned across threads.
			for d := 0; d < nTiles; d++ {
				tlo, thi := span(d+1, tid, threads)
				for k := tlo; k < thi; k++ {
					processTile(sink, compute, d-k, k,
						ip.copyIn128, ip.copyRef138, ip.comp147, ip.wb159,
						lin1, lref1, lst1)
				}
			}
			// Bottom-right wavefronts.
			for d := nTiles - 2; d >= 0; d-- {
				tlo, thi := span(d+1, tid, threads)
				for k := tlo; k < thi; k++ {
					processTile(sink, compute, nTiles-1-(d-k), nTiles-1-k,
						ip.copyIn189, ip.copyRef199, ip.comp208, ip.wb220,
						ip.inLocalLd, ip.refLocalLd, ip.localSt)
				}
			}
			// Traceback on thread 0: walk the anti-diagonal.
			if tid == 0 {
				for i, j := n, n; i > 0 && j > 0; i, j = i-1, j-1 {
					sink.Ref(trace.Ref{IP: ip.trace273, Addr: input.At(i, j)})
					sink.Ref(trace.Ref{IP: ip.trace320, Addr: input.At(i-1, j-1)})
				}
			}
		},
	}
	p.Check = func() float64 { return float64(vals().input[n*rows+n]) }
	return p
}

type nwVals struct{ ref, input, inLocal, refLocal []int32 }

// nwPenalty is the linear gap penalty (Rodinia's default is 10).
const nwPenalty = 10

// nwCell is the Needleman-Wunsch recurrence.
func nwCell(diag, up, left, sim int32) int32 {
	v := diag + sim
	if w := up - nwPenalty; w > v {
		v = w
	}
	if w := left - nwPenalty; w > v {
		v = w
	}
	return v
}

// nwSimilarity generates the deterministic similarity matrix (Rodinia
// derives it from random sequences through BLOSUM62; values in [-4, 10]).
func nwSimilarity(n int) []int32 {
	rows := n + 1
	rng := stats.NewRand(2024)
	sim := make([]int32, rows*rows)
	for i := 1; i < rows; i++ {
		for j := 1; j < rows; j++ {
			sim[i*rows+j] = int32(rng.Intn(15)) - 4
		}
	}
	return sim
}

// NWReference computes the alignment score with a naive, untiled DP over
// the same similarity matrix — the ground truth for the tiled kernel.
func NWReference(n int) int32 {
	rows := n + 1
	sim := nwSimilarity(n)
	m := make([]int32, rows*rows)
	for i := 1; i < rows; i++ {
		m[i*rows] = int32(-i) * nwPenalty
	}
	for j := 1; j < rows; j++ {
		m[j] = int32(-j) * nwPenalty
	}
	for i := 1; i < rows; i++ {
		for j := 1; j < rows; j++ {
			m[i*rows+j] = nwCell(m[(i-1)*rows+(j-1)], m[(i-1)*rows+j], m[i*rows+(j-1)], sim[i*rows+j])
		}
	}
	return m[n*rows+n]
}
