package workloads

import (
	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/staticconf"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RodiniaSuite returns the 18 Rodinia-style kernels of the Figure 7 sweep:
// Needleman-Wunsch (the one the paper finds conflict-ridden, at reduced
// scale) plus 17 kernels that mimic the dominant loop and data layout of
// the other Rodinia benchmarks. Those 17 are conflict-free by construction
// — streaming sweeps, stencils with few live rows, or non-power-of-two
// strides — matching the paper's finding that only NW shows a significant
// short-RCD contribution.
func RodiniaSuite() []*Program {
	return []*Program{
		nwProgram(512, 16, 0, 0),
		Backprop(),
		BFS(),
		BTree(),
		CFD(),
		Heartwall(),
		Hotspot(),
		Hotspot3D(),
		Kmeans(),
		LavaMD(),
		Leukocyte(),
		LUD(),
		Myocyte(),
		NN(),
		ParticleFilter(),
		Pathfinder(),
		SRAD(),
		Streamcluster(),
	}
}

// simpleKernel removes the boilerplate shared by the Rodinia kernels: it
// builds a binary with the requested nested loops, allocates via setup, and
// wires the emit closure as the (sequential) run function. The builder also
// hands back the kernel's static access spec (nil to abstain — e.g. when
// the access pattern is too data-dependent to approximate affinely).
func simpleKernel(name, file string, build func(b *objfile.Builder, ar *alloc.Arena) (func(sink trace.Sink), *staticconf.Spec)) *Program {
	b := objfile.NewBuilder(name)
	b.Func("main")
	ar := alloc.NewArena()
	run, sp := build(b, ar)
	return &Program{
		Name:   name,
		Binary: b.Finish(),
		Arena:  ar,
		Spec:   sp,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid == 0 {
				run(sink)
			}
		},
	}
}

// Backprop mimics Rodinia backprop's layer-forward loop: a column walk of a
// weight matrix whose 17-wide rows (the benchmark's hidden size + 1) stride
// by a non-power-of-two amount, spreading accesses over all sets.
func Backprop() *Program {
	const in, hid = 4096, 17
	return simpleKernel("backprop", "backprop.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("backprop.c", 1) // for j (hidden)
		b.Loop("backprop.c", 2) // for k (input)
		ldW := b.Load("backprop.c", 3)
		ldIn := b.Load("backprop.c", 3)
		b.EndLoop()
		stH := b.Store("backprop.c", 5)
		b.EndLoop()
		w := alloc.NewMatrix2D(ar, "w", in+1, hid, 4, 0)
		input := alloc.NewVector(ar, "input_units", in+1, 4)
		hidden := alloc.NewVector(ar, "hidden_units", hid, 4)
		rs := int64(w.RowStride())
		sp := spec("backprop",
			acc("w", "backprop.c:2", w.At(0, 0), 4, 1, dim(4, hid), dim(rs, in+1)),
			acc("input_units", "backprop.c:2", input.At(0), 4, 1, dim(0, hid), dim(4, in+1)),
			acc("hidden_units", "backprop.c:1", hidden.At(0), 4, 1, dim(4, hid)),
		)
		return func(sink trace.Sink) {
			for j := 0; j < hid; j++ {
				for k := 0; k <= in; k++ {
					sink.Ref(trace.Ref{IP: ldW, Addr: w.At(k, j)})
					sink.Ref(trace.Ref{IP: ldIn, Addr: input.At(k)})
				}
				sink.Ref(trace.Ref{IP: stH, Addr: hidden.At(j), Write: true})
			}
		}, sp
	})
}

// BFS mimics Rodinia bfs: frontier expansion over a CSR graph with
// pseudo-random neighbour targets. The spec approximates the random
// gathers as streams over the target arrays.
func BFS() *Program {
	const nodes, degree = 16384, 6
	return simpleKernel("bfs", "bfs.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("bfs.c", 1) // over frontier nodes
		ldNode := b.Load("bfs.c", 2)
		b.Loop("bfs.c", 3) // over edges
		ldEdge := b.Load("bfs.c", 4)
		ldVisited := b.Load("bfs.c", 5)
		stCost := b.Store("bfs.c", 6)
		b.EndLoop()
		b.EndLoop()
		graph := alloc.NewVector(ar, "h_graph_nodes", nodes, 8)
		edges := alloc.NewVector(ar, "h_graph_edges", nodes*degree, 4)
		visited := alloc.NewVector(ar, "h_graph_visited", nodes, 1)
		cost := alloc.NewVector(ar, "h_cost", nodes, 4)
		sp := spec("bfs",
			acc("h_graph_nodes", "bfs.c:1", graph.At(0), 8, 1, dim(8, nodes)),
			acc("h_graph_edges", "bfs.c:3", edges.At(0), 4, 1, dim(4, nodes*degree)),
			accApprox("h_graph_visited", "bfs.c:3", visited.At(0), 1, 1, dim(1, nodes)),
			accApprox("h_cost", "bfs.c:3", cost.At(0), 4, 1, dim(4, nodes)),
		)
		rng := stats.NewRand(101)
		return func(sink trace.Sink) {
			for v := 0; v < nodes; v++ {
				sink.Ref(trace.Ref{IP: ldNode, Addr: graph.At(v)})
				for e := 0; e < degree; e++ {
					sink.Ref(trace.Ref{IP: ldEdge, Addr: edges.At(v*degree + e)})
					n := rng.Intn(nodes)
					sink.Ref(trace.Ref{IP: ldVisited, Addr: visited.At(n)})
					sink.Ref(trace.Ref{IP: stCost, Addr: cost.At(n), Write: true})
				}
			}
		}, sp
	})
}

// BTree mimics Rodinia b+tree: repeated root-to-leaf descents through
// order-16 nodes laid out level by level. The spec approximates the random
// descents as a stream over the node pool with a per-node key scan.
func BTree() *Program {
	const levels, fanout, queries = 5, 16, 4000
	return simpleKernel("b+tree", "btree.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("btree.c", 1) // per query
		b.Loop("btree.c", 2) // per level
		b.Loop("btree.c", 3) // key scan within node
		ldKey := b.Load("btree.c", 4)
		b.EndLoop()
		ldChild := b.Load("btree.c", 6)
		b.EndLoop()
		b.EndLoop()
		nodes := 0
		per := 1
		for l := 0; l < levels; l++ {
			nodes += per
			per *= fanout
		}
		const nodeBytes = 16*8 + 17*8 // keys + child pointers
		tree := alloc.NewVector(ar, "knodes", nodes, nodeBytes)
		sp := spec("b+tree",
			accApprox("knodes", "btree.c:3", tree.At(0), 8, 1,
				dim(nodeBytes, queries*levels), dim(8, fanout/2)),
		)
		rng := stats.NewRand(102)
		return func(sink trace.Sink) {
			for q := 0; q < queries; q++ {
				node, base, width := 0, 0, 1
				for l := 0; l < levels; l++ {
					addr := tree.At(base + node)
					for k := 0; k < fanout/2; k++ { // binary-ish scan
						sink.Ref(trace.Ref{IP: ldKey, Addr: addr + uint64(k*8)})
					}
					sink.Ref(trace.Ref{IP: ldChild, Addr: addr + 16*8})
					base += width
					width *= fanout
					node = node*fanout + rng.Intn(fanout)
				}
			}
		}, sp
	})
}

// CFD mimics Rodinia cfd (euler3d): per-cell flux computation reading five
// flow variables of the cell and of four neighbours through an indirection
// table. The spec approximates the neighbour gather as a row stream.
func CFD() *Program {
	const cells, vars = 8192, 5
	return simpleKernel("cfd", "euler3d.cpp", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("euler3d.cpp", 1) // per cell
		b.Loop("euler3d.cpp", 2) // per neighbour
		ldNb := b.Load("euler3d.cpp", 3)
		b.Loop("euler3d.cpp", 4) // per variable
		ldVar := b.Load("euler3d.cpp", 5)
		b.EndLoop()
		b.EndLoop()
		stFlux := b.Store("euler3d.cpp", 8)
		b.EndLoop()
		neighbors := alloc.NewVector(ar, "elements_surrounding_elements", cells*4, 4)
		variables := alloc.NewMatrix2D(ar, "variables", cells, vars, 8, 0)
		fluxes := alloc.NewMatrix2D(ar, "fluxes", cells, vars, 8, 0)
		rsV := int64(variables.RowStride())
		sp := spec("cfd",
			acc("elements_surrounding_elements", "euler3d.cpp:2", neighbors.At(0), 4, 1, dim(4, cells*4)),
			accApprox("variables", "euler3d.cpp:4", variables.At(0, 0), 8, 1,
				dim(rsV, cells), dim(0, 4), dim(8, vars)),
			acc("fluxes", "euler3d.cpp:1", fluxes.At(0, 0), 8, 1, dim(int64(fluxes.RowStride()), cells)),
		)
		rng := stats.NewRand(103)
		return func(sink trace.Sink) {
			for c := 0; c < cells; c++ {
				for nb := 0; nb < 4; nb++ {
					sink.Ref(trace.Ref{IP: ldNb, Addr: neighbors.At(c*4 + nb)})
					other := rng.Intn(cells)
					for v := 0; v < vars; v++ {
						sink.Ref(trace.Ref{IP: ldVar, Addr: variables.At(other, v)})
					}
				}
				sink.Ref(trace.Ref{IP: stFlux, Addr: fluxes.At(c, 0), Write: true})
			}
		}, sp
	})
}

// Heartwall mimics Rodinia heartwall: template correlation of a 41x41
// window slid over image rows (both strides non-power-of-two).
func Heartwall() *Program {
	const imgW, imgH, tpl, steps = 609, 590, 41, 300
	return simpleKernel("heartwall", "heartwall.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("heartwall.c", 1) // per tracking point
		b.Loop("heartwall.c", 2) // template row
		b.Loop("heartwall.c", 3) // template col
		ldImg := b.Load("heartwall.c", 4)
		ldTpl := b.Load("heartwall.c", 4)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
		img := alloc.NewMatrix2D(ar, "frame", imgH, imgW, 4, 0)
		tplM := alloc.NewMatrix2D(ar, "template", tpl, tpl, 4, 0)
		rsI := int64(img.RowStride())
		rsT := int64(tplM.RowStride())
		sp := spec("heartwall",
			accApprox("frame", "heartwall.c:3", img.At(0, 0), 4, 2,
				dim(0, steps), dim(rsI, tpl), dim(4, tpl)),
			acc("template", "heartwall.c:3", tplM.At(0, 0), 4, 3,
				dim(0, steps), dim(rsT, tpl), dim(4, tpl)),
		)
		rng := stats.NewRand(104)
		return func(sink trace.Sink) {
			for s := 0; s < steps; s++ {
				r0, c0 := rng.Intn(imgH-tpl), rng.Intn(imgW-tpl)
				for i := 0; i < tpl; i++ {
					for j := 0; j < tpl; j++ {
						sink.Ref(trace.Ref{IP: ldImg, Addr: img.At(r0+i, c0+j)})
						sink.Ref(trace.Ref{IP: ldTpl, Addr: tplM.At(i, j)})
					}
				}
			}
		}, sp
	})
}

// Hotspot mimics Rodinia hotspot: a 5-point 2D stencil over temperature
// and power grids — row-major streaming with only three live rows.
func Hotspot() *Program {
	const n = 512
	return simpleKernel("hotspot", "hotspot.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("hotspot.c", 1) // for r
		b.Loop("hotspot.c", 2) // for c
		ldT := b.Load("hotspot.c", 3)
		ldP := b.Load("hotspot.c", 4)
		stR := b.Store("hotspot.c", 5)
		b.EndLoop()
		b.EndLoop()
		temp := alloc.NewMatrix2D(ar, "temp", n, n, 4, 0)
		power := alloc.NewMatrix2D(ar, "power", n, n, 4, 0)
		result := alloc.NewMatrix2D(ar, "result", n, n, 4, 0)
		rs := int64(temp.RowStride())
		inner := n - 2
		stencil := func(base uint64) staticconf.Access {
			return acc("temp", "hotspot.c:2", base, 4, 1, dim(rs, inner), dim(4, inner))
		}
		sp := spec("hotspot",
			stencil(temp.At(1, 1)), stencil(temp.At(0, 1)), stencil(temp.At(2, 1)),
			stencil(temp.At(1, 0)), stencil(temp.At(1, 2)),
			acc("power", "hotspot.c:2", power.At(1, 1), 4, 1, dim(rs, inner), dim(4, inner)),
			acc("result", "hotspot.c:2", result.At(1, 1), 4, 1, dim(rs, inner), dim(4, inner)),
		)
		return func(sink trace.Sink) {
			for r := 1; r < n-1; r++ {
				for c := 1; c < n-1; c++ {
					for _, addr := range []uint64{
						temp.At(r, c), temp.At(r-1, c), temp.At(r+1, c),
						temp.At(r, c-1), temp.At(r, c+1),
					} {
						sink.Ref(trace.Ref{IP: ldT, Addr: addr})
					}
					sink.Ref(trace.Ref{IP: ldP, Addr: power.At(r, c)})
					sink.Ref(trace.Ref{IP: stR, Addr: result.At(r, c), Write: true})
				}
			}
		}, sp
	})
}

// Hotspot3D mimics Rodinia hotspot3D: a 7-point stencil over a shallow 3D
// grid (few live planes, streaming k).
func Hotspot3D() *Program {
	const nx, ny, nz = 128, 128, 8
	return simpleKernel("hotspot3D", "3D.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("3D.c", 1)
		b.Loop("3D.c", 2)
		b.Loop("3D.c", 3)
		ldT := b.Load("3D.c", 4)
		stR := b.Store("3D.c", 5)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
		tIn := alloc.NewMatrix3D(ar, "tIn", nz, ny, nx, 4, 0, 0)
		tOut := alloc.NewMatrix3D(ar, "tOut", nz, ny, nx, 4, 0, 0)
		rs := int64(tIn.RowStride())
		ps := int64(tIn.PlaneStride())
		ix, iy, iz := nx-2, ny-2, nz-2
		point := func(array string, base uint64) staticconf.Access {
			return acc(array, "3D.c:3", base, 4, 1, dim(ps, iz), dim(rs, iy), dim(4, ix))
		}
		sp := spec("hotspot3D",
			point("tIn", tIn.At(1, 1, 1)),
			point("tIn", tIn.At(0, 1, 1)), point("tIn", tIn.At(2, 1, 1)),
			point("tIn", tIn.At(1, 0, 1)), point("tIn", tIn.At(1, 2, 1)),
			point("tIn", tIn.At(1, 1, 0)), point("tIn", tIn.At(1, 1, 2)),
			point("tOut", tOut.At(1, 1, 1)),
		)
		return func(sink trace.Sink) {
			for z := 1; z < nz-1; z++ {
				for y := 1; y < ny-1; y++ {
					for x := 1; x < nx-1; x++ {
						for _, addr := range []uint64{
							tIn.At(z, y, x), tIn.At(z-1, y, x), tIn.At(z+1, y, x),
							tIn.At(z, y-1, x), tIn.At(z, y+1, x),
							tIn.At(z, y, x-1), tIn.At(z, y, x+1),
						} {
							sink.Ref(trace.Ref{IP: ldT, Addr: addr})
						}
						sink.Ref(trace.Ref{IP: stR, Addr: tOut.At(z, y, x), Write: true})
					}
				}
			}
		}, sp
	})
}

// Kmeans mimics Rodinia kmeans: distance of every point (34 features) to
// every centroid — pure streaming with a cache-resident centroid block.
func Kmeans() *Program {
	const points, features, clusters = 4096, 34, 5
	return simpleKernel("kmeans", "kmeans.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("kmeans.c", 1) // per point
		b.Loop("kmeans.c", 2) // per cluster
		b.Loop("kmeans.c", 3) // per feature
		ldF := b.Load("kmeans.c", 4)
		ldC := b.Load("kmeans.c", 4)
		b.EndLoop()
		b.EndLoop()
		stM := b.Store("kmeans.c", 7)
		b.EndLoop()
		feats := alloc.NewMatrix2D(ar, "feature", points, features, 4, 0)
		cents := alloc.NewMatrix2D(ar, "clusters", clusters, features, 4, 0)
		membership := alloc.NewVector(ar, "membership", points, 4)
		rsF := int64(feats.RowStride())
		rsC := int64(cents.RowStride())
		sp := spec("kmeans",
			acc("feature", "kmeans.c:3", feats.At(0, 0), 4, 2,
				dim(rsF, points), dim(0, clusters), dim(4, features)),
			acc("clusters", "kmeans.c:3", cents.At(0, 0), 4, 3,
				dim(0, points), dim(rsC, clusters), dim(4, features)),
			acc("membership", "kmeans.c:1", membership.At(0), 4, 1, dim(4, points)),
		)
		return func(sink trace.Sink) {
			for p := 0; p < points; p++ {
				for c := 0; c < clusters; c++ {
					for f := 0; f < features; f++ {
						sink.Ref(trace.Ref{IP: ldF, Addr: feats.At(p, f)})
						sink.Ref(trace.Ref{IP: ldC, Addr: cents.At(c, f)})
					}
				}
				sink.Ref(trace.Ref{IP: stM, Addr: membership.At(p), Write: true})
			}
		}, sp
	})
}

// LavaMD mimics Rodinia lavaMD: particle interactions between a box and
// its neighbour boxes, each box holding 100 particles (sequential arrays).
// The spec approximates the random neighbour box as a resident block.
func LavaMD() *Program {
	const boxes, perBox, neighbors = 64, 100, 8
	return simpleKernel("lavaMD", "lavaMD.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("lavaMD.c", 1) // per box
		b.Loop("lavaMD.c", 2) // per neighbour box
		b.Loop("lavaMD.c", 3) // per home particle
		ldHome := b.Load("lavaMD.c", 4)
		b.Loop("lavaMD.c", 5) // per remote particle
		ldRemote := b.Load("lavaMD.c", 6)
		b.EndLoop()
		stF := b.Store("lavaMD.c", 8)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
		pos := alloc.NewVector(ar, "rv", boxes*perBox, 16)
		frc := alloc.NewVector(ar, "fv", boxes*perBox, 16)
		const boxBytes = int64(16 * perBox)
		sp := spec("lavaMD",
			acc("rv", "lavaMD.c:3", pos.At(0), 16, 1,
				dim(boxBytes, boxes), dim(0, neighbors), dim(64, perBox/4)),
			accApprox("rv", "lavaMD.c:5", pos.At(0), 16, 2,
				dim(boxBytes, boxes), dim(0, neighbors), dim(0, perBox/4), dim(128, perBox/8+1)),
			acc("fv", "lavaMD.c:3", frc.At(0), 16, 1,
				dim(boxBytes, boxes), dim(0, neighbors), dim(64, perBox/4)),
		)
		rng := stats.NewRand(105)
		return func(sink trace.Sink) {
			for box := 0; box < boxes; box++ {
				for nb := 0; nb < neighbors; nb++ {
					remote := rng.Intn(boxes)
					for hp := 0; hp < perBox; hp += 4 {
						sink.Ref(trace.Ref{IP: ldHome, Addr: pos.At(box*perBox + hp)})
						for rp := 0; rp < perBox; rp += 8 {
							sink.Ref(trace.Ref{IP: ldRemote, Addr: pos.At(remote*perBox + rp)})
						}
						sink.Ref(trace.Ref{IP: stF, Addr: frc.At(box*perBox + hp), Write: true})
					}
				}
			}
		}, sp
	})
}

// Leukocyte mimics Rodinia leukocyte: gradient inverse coefficient
// variance over small windows of a video frame.
func Leukocyte() *Program {
	const imgW, imgH, win, cells = 640, 480, 12, 120
	return simpleKernel("leukocyte", "find_ellipse.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("find_ellipse.c", 1) // per cell candidate
		b.Loop("find_ellipse.c", 2) // window row
		b.Loop("find_ellipse.c", 3) // window col
		ldI := b.Load("find_ellipse.c", 4)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
		img := alloc.NewMatrix2D(ar, "grad", imgH, imgW, 4, 0)
		rs := int64(img.RowStride())
		sp := spec("leukocyte",
			accApprox("grad", "find_ellipse.c:3", img.At(0, 0), 4, 3,
				dim(0, cells), dim(0, 10), dim(rs, win), dim(4, win)),
		)
		rng := stats.NewRand(106)
		return func(sink trace.Sink) {
			for c := 0; c < cells; c++ {
				r0, c0 := rng.Intn(imgH-win), rng.Intn(imgW-win)
				for rep := 0; rep < 10; rep++ {
					for i := 0; i < win; i++ {
						for j := 0; j < win; j++ {
							sink.Ref(trace.Ref{IP: ldI, Addr: img.At(r0+i, c0+j)})
						}
					}
				}
			}
		}, sp
	})
}

// LUD mimics Rodinia lud: in-place LU decomposition. The matrix dimension
// is deliberately not a power of two (250), so the column eliminations
// stride across sets instead of colliding.
func LUD() *Program {
	const n = 250
	return simpleKernel("lud", "lud.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("lud.c", 1) // for k
		b.Loop("lud.c", 2) // for i > k
		ldPivot := b.Load("lud.c", 3)
		b.Loop("lud.c", 4) // for j > k
		ldRow := b.Load("lud.c", 5)
		stRow := b.Store("lud.c", 5)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
		m := alloc.NewMatrix2D(ar, "m", n, n, 4, 0)
		rs := int64(m.RowStride())
		const kIters, jIters = 50, 83 // k += 5, j += 3 sampling
		sp := spec("lud",
			accApprox("m", "lud.c:2", m.At(1, 0), 4, 1,
				dim(5*4, kIters), dim(rs, n-1)),
			accApprox("m", "lud.c:4", m.At(0, 1), 4, 2,
				dim(5*rs, kIters), dim(0, n-1), dim(3*4, jIters)),
			accApprox("m", "lud.c:4", m.At(1, 1), 4, 1,
				dim(0, kIters), dim(rs, n-1), dim(3*4, jIters)),
		)
		return func(sink trace.Sink) {
			for k := 0; k < n-1; k += 5 { // sample pivots to bound the trace
				for i := k + 1; i < n; i++ {
					sink.Ref(trace.Ref{IP: ldPivot, Addr: m.At(i, k)})
					for j := k + 1; j < n; j += 3 {
						sink.Ref(trace.Ref{IP: ldRow, Addr: m.At(k, j)})
						sink.Ref(trace.Ref{IP: stRow, Addr: m.At(i, j), Write: true})
					}
				}
			}
		}, sp
	})
}

// Myocyte mimics Rodinia myocyte: an ODE solver over ~100 state variables
// — a tiny, cache-resident working set.
func Myocyte() *Program {
	const states, steps = 106, 3000
	return simpleKernel("myocyte", "myocyte.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("myocyte.c", 1) // per timestep
		b.Loop("myocyte.c", 2) // per state
		ldY := b.Load("myocyte.c", 3)
		stD := b.Store("myocyte.c", 4)
		b.EndLoop()
		b.EndLoop()
		y := alloc.NewVector(ar, "y", states, 8)
		dy := alloc.NewVector(ar, "dy", states, 8)
		sp := spec("myocyte",
			acc("y", "myocyte.c:2", y.At(0), 8, 2, dim(0, steps), dim(8, states)),
			acc("dy", "myocyte.c:2", dy.At(0), 8, 2, dim(0, steps), dim(8, states)),
		)
		return func(sink trace.Sink) {
			for t := 0; t < steps; t++ {
				for s := 0; s < states; s++ {
					sink.Ref(trace.Ref{IP: ldY, Addr: y.At(s)})
					sink.Ref(trace.Ref{IP: stD, Addr: dy.At(s), Write: true})
				}
			}
		}, sp
	})
}

// NN mimics Rodinia nn: scanning a flat array of location records for the
// nearest neighbours — pure streaming.
func NN() *Program {
	const records = 65536
	return simpleKernel("nn", "nn.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("nn.c", 1)
		ldLat := b.Load("nn.c", 2)
		ldLng := b.Load("nn.c", 2)
		b.EndLoop()
		recs := alloc.NewVector(ar, "locations", records, 8)
		sp := spec("nn",
			acc("locations", "nn.c:1", recs.At(0), 8, 1, dim(8, records)),
		)
		return func(sink trace.Sink) {
			for r := 0; r < records; r++ {
				sink.Ref(trace.Ref{IP: ldLat, Addr: recs.At(r)})
				sink.Ref(trace.Ref{IP: ldLng, Addr: recs.At(r) + 4})
			}
		}, sp
	})
}

// ParticleFilter mimics Rodinia particlefilter: sequential passes over
// particle arrays plus a resampling gather (approximated as a stream).
func ParticleFilter() *Program {
	const particles, frames = 8192, 8
	return simpleKernel("particlefilter", "ex_particle.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("ex_particle.c", 1) // per frame
		b.Loop("ex_particle.c", 2) // weight update pass
		ldX := b.Load("ex_particle.c", 3)
		stW := b.Store("ex_particle.c", 4)
		b.EndLoop()
		b.Loop("ex_particle.c", 6) // resample gather
		ldU := b.Load("ex_particle.c", 7)
		stX := b.Store("ex_particle.c", 8)
		b.EndLoop()
		b.EndLoop()
		xs := alloc.NewVector(ar, "arrayX", particles, 8)
		ws := alloc.NewVector(ar, "weights", particles, 8)
		sp := spec("particlefilter",
			acc("arrayX", "ex_particle.c:2", xs.At(0), 8, 1, dim(0, frames), dim(8, particles)),
			acc("weights", "ex_particle.c:2", ws.At(0), 8, 1, dim(0, frames), dim(8, particles)),
			accApprox("arrayX", "ex_particle.c:6", xs.At(0), 8, 1, dim(0, frames), dim(8, particles)),
		)
		rng := stats.NewRand(107)
		return func(sink trace.Sink) {
			for f := 0; f < frames; f++ {
				for p := 0; p < particles; p++ {
					sink.Ref(trace.Ref{IP: ldX, Addr: xs.At(p)})
					sink.Ref(trace.Ref{IP: stW, Addr: ws.At(p), Write: true})
				}
				for p := 0; p < particles; p++ {
					sink.Ref(trace.Ref{IP: ldU, Addr: xs.At(rng.Intn(particles))})
					sink.Ref(trace.Ref{IP: stX, Addr: xs.At(p), Write: true})
				}
			}
		}, sp
	})
}

// Pathfinder mimics Rodinia pathfinder: dynamic programming over grid rows
// with only two rows live.
func Pathfinder() *Program {
	const cols, rows = 100000, 8
	return simpleKernel("pathfinder", "pathfinder.cpp", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("pathfinder.cpp", 1) // per row
		b.Loop("pathfinder.cpp", 2) // per column
		ldWall := b.Load("pathfinder.cpp", 3)
		ldPrev := b.Load("pathfinder.cpp", 4)
		stDst := b.Store("pathfinder.cpp", 5)
		b.EndLoop()
		b.EndLoop()
		wall := alloc.NewMatrix2D(ar, "wall", rows, cols, 4, 0)
		src := alloc.NewVector(ar, "src", cols, 4)
		dst := alloc.NewVector(ar, "dst", cols, 4)
		rsW := int64(wall.RowStride())
		sp := spec("pathfinder",
			acc("wall", "pathfinder.cpp:2", wall.At(1, 1), 4, 1, dim(rsW, rows-1), dim(4, cols-2)),
			acc("src", "pathfinder.cpp:2", src.At(0), 4, 1, dim(0, rows-1), dim(4, cols)),
			acc("dst", "pathfinder.cpp:2", dst.At(1), 4, 1, dim(0, rows-1), dim(4, cols-2)),
		)
		return func(sink trace.Sink) {
			for r := 1; r < rows; r++ {
				for c := 1; c < cols-1; c++ {
					sink.Ref(trace.Ref{IP: ldWall, Addr: wall.At(r, c)})
					sink.Ref(trace.Ref{IP: ldPrev, Addr: src.At(c - 1)})
					sink.Ref(trace.Ref{IP: ldPrev, Addr: src.At(c)})
					sink.Ref(trace.Ref{IP: ldPrev, Addr: src.At(c + 1)})
					sink.Ref(trace.Ref{IP: stDst, Addr: dst.At(c), Write: true})
				}
			}
		}, sp
	})
}

// SRAD mimics Rodinia srad: speckle-reducing anisotropic diffusion, a
// 4-neighbour stencil over a non-power-of-two image.
func SRAD() *Program {
	const rows, cols = 458, 502
	return simpleKernel("srad", "srad.c", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("srad.c", 1)
		b.Loop("srad.c", 2)
		ldJ := b.Load("srad.c", 3)
		stC := b.Store("srad.c", 4)
		b.EndLoop()
		b.EndLoop()
		img := alloc.NewMatrix2D(ar, "J", rows, cols, 4, 0)
		coef := alloc.NewMatrix2D(ar, "c", rows, cols, 4, 0)
		rs := int64(img.RowStride())
		ir, ic := rows-2, cols-2
		point := func(array string, base uint64) staticconf.Access {
			return acc(array, "srad.c:2", base, 4, 1, dim(rs, ir), dim(4, ic))
		}
		sp := spec("srad",
			point("J", img.At(1, 1)),
			point("J", img.At(0, 1)), point("J", img.At(2, 1)),
			point("J", img.At(1, 0)), point("J", img.At(1, 2)),
			point("c", coef.At(1, 1)),
		)
		return func(sink trace.Sink) {
			for i := 1; i < rows-1; i++ {
				for j := 1; j < cols-1; j++ {
					for _, addr := range []uint64{
						img.At(i, j), img.At(i-1, j), img.At(i+1, j),
						img.At(i, j-1), img.At(i, j+1),
					} {
						sink.Ref(trace.Ref{IP: ldJ, Addr: addr})
					}
					sink.Ref(trace.Ref{IP: stC, Addr: coef.At(i, j), Write: true})
				}
			}
		}, sp
	})
}

// Streamcluster mimics Rodinia streamcluster: distances between points and
// medians in a 32-dimensional space, streaming over the point block.
func Streamcluster() *Program {
	const points, ndim, medians = 4096, 32, 16
	return simpleKernel("streamcluster", "streamcluster.cpp", func(b *objfile.Builder, ar *alloc.Arena) (func(trace.Sink), *staticconf.Spec) {
		b.Loop("streamcluster.cpp", 1) // per point
		b.Loop("streamcluster.cpp", 2) // per median
		b.Loop("streamcluster.cpp", 3) // per dimension
		ldP := b.Load("streamcluster.cpp", 4)
		ldM := b.Load("streamcluster.cpp", 4)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
		// 33 floats per point (coords + weight) keeps the stride off
		// powers of two, like the benchmark's struct layout.
		pts := alloc.NewMatrix2D(ar, "points", points, ndim+1, 4, 0)
		meds := alloc.NewMatrix2D(ar, "medians", medians, ndim+1, 4, 0)
		rsP := int64(pts.RowStride())
		rsM := int64(meds.RowStride())
		sp := spec("streamcluster",
			acc("points", "streamcluster.cpp:3", pts.At(0, 0), 4, 2,
				dim(rsP, points), dim(0, medians), dim(4, ndim)),
			acc("medians", "streamcluster.cpp:3", meds.At(0, 0), 4, 3,
				dim(0, points), dim(rsM, medians), dim(4, ndim)),
		)
		return func(sink trace.Sink) {
			for p := 0; p < points; p++ {
				for m := 0; m < medians; m++ {
					for d := 0; d < ndim; d++ {
						sink.Ref(trace.Ref{IP: ldP, Addr: pts.At(p, d)})
						sink.Ref(trace.Ref{IP: ldM, Addr: meds.At(m, d)})
					}
				}
			}
		}, sp
	})
}
