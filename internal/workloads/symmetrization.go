package workloads

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("symmetrization", func() *CaseStudy { return NewSymmetrizationReps(256, 2) })
}

// NewSymmetrization builds the §2.1 motivating kernel: symmetrization of an
// n x n double matrix, A[i][j] = (A[i][j] + A[j][i]) / 2, the computation
// pattern of quantum-chemistry codes like NWChem. The row access A[i][j]
// streams through sets while the column access A[j][i] strides by a full
// row; when the row size is a multiple of the cache size divided by
// associativity, the column walk hammers a handful of sets. The optimized
// variant appends a 64-byte pad to each row (Figure 2-c), shifting
// successive rows across sets.
func NewSymmetrization(n int) *CaseStudy { return NewSymmetrizationReps(n, 1) }

// NewSymmetrizationReps repeats the kernel reps times (NWChem-style codes
// symmetrize repeatedly, amortizing cold misses over the reuse the
// conflicts destroy).
func NewSymmetrizationReps(n, reps int) *CaseStudy {
	return &CaseStudy{
		Name:          "Symmetrization",
		Desc:          fmt.Sprintf("matrix symmetrization, %dx%d doubles, %d reps (Figure 2)", n, n, reps),
		Original:      symmetrizationProgram(n, reps, 0),
		Optimized:     symmetrizationProgram(n, reps, 64),
		TargetLoop:    "sym.c:4",
		Parallel:      true,
		ProfilePeriod: 171,
		PadBuilder:    func(pad uint64) *Program { return symmetrizationProgram(n, reps, pad) },
	}
}

func symmetrizationProgram(n, reps int, pad uint64) *Program {
	name := "symmetrization"
	if pad > 0 {
		name = fmt.Sprintf("symmetrization-pad%d", pad)
	}

	b := objfile.NewBuilder(name)
	b.Func("symmetrize")
	b.Loop("sym.c", 3)           // for i
	b.Loop("sym.c", 4)           // for j
	ldRow := b.Load("sym.c", 5)  // A[i][j]
	ldCol := b.Load("sym.c", 5)  // A[j][i]
	stRow := b.Store("sym.c", 6) // A[i][j] =
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	a := alloc.NewMatrix2D(ar, "A", n, n, 8, pad)

	// Static access spec: the row access streams, the transposed access
	// walks down a column by the full row stride (Figure 2).
	rs := int64(a.RowStride())
	sp := spec(name,
		acc("A", "sym.c:4", a.At(0, 0), 8, 1, dim(0, reps), dim(rs, n), dim(8, n)),
		acc("A", "sym.c:4", a.At(0, 0), 8, 1, dim(0, reps), dim(8, n), dim(rs, n)),
	)

	// Element storage for the real computation; the address layout above
	// decides cache behaviour, vals holds the numbers.
	vals := make([]float64, n*n)
	rng := stats.NewRand(1234)
	initVals := func() {
		for i := range vals {
			vals[i] = rng.Float64()
		}
	}
	initVals()

	p := &Program{
		Name:   name,
		Binary: bin,
		Arena:  ar,
		Spec:   sp,
		runThread: func(tid, threads int, sink trace.Sink) {
			compute := threads == 1
			lo, hi := span(n, tid, threads)
			for r := 0; r < reps; r++ {
				for i := lo; i < hi; i++ {
					for j := 0; j < n; j++ {
						sink.Ref(trace.Ref{IP: ldRow, Addr: a.At(i, j)})
						sink.Ref(trace.Ref{IP: ldCol, Addr: a.At(j, i)})
						sink.Ref(trace.Ref{IP: stRow, Addr: a.At(i, j), Write: true})
						if compute {
							vals[i*n+j] = (vals[i*n+j] + vals[j*n+i]) / 2
						}
					}
				}
			}
		},
	}
	p.Check = func() float64 {
		// Asymmetry residue: ~0 after a sequential run. (A single
		// in-place sweep already symmetrizes exactly: when (i,j) with
		// i<j is updated, (j,i) still holds its original value, and the
		// later (j,i) update uses the already-averaged A[i][j]... so we
		// report the residue rather than asserting zero; the kernel's
		// fixed point is symmetric and reps >= 2 converges.)
		var res float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := vals[i*n+j] - vals[j*n+i]
				if d < 0 {
					d = -d
				}
				res += d
			}
		}
		return res
	}
	return p
}
