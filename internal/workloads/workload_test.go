package workloads

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/objfile"
	"repro/internal/trace"
)

// checkProgram validates the structural invariants every Program must hold:
// a well-formed binary whose CFG contains loops, every emitted IP resolvable
// to an instruction and a line, and every address inside a named allocation.
func checkProgram(t *testing.T, p *Program) {
	t.Helper()
	if err := p.Binary.Validate(); err != nil {
		t.Fatalf("%s: invalid binary: %v", p.Name, err)
	}
	g, err := cfg.Build(p.Binary)
	if err != nil {
		t.Fatalf("%s: CFG: %v", p.Name, err)
	}
	forest := g.FindLoops()
	if len(forest.Loops) == 0 {
		t.Errorf("%s: no loops recovered from binary", p.Name)
	}

	var total int
	badIP, badAddr, outsideLoop := 0, 0, 0
	p.Run(trace.SinkFunc(func(r trace.Ref) {
		total++
		if total > 2_000_000 {
			return // cap validation work on big kernels
		}
		if in, ok := p.Binary.InstrAt(r.IP); !ok {
			badIP++
		} else if in.Kind != objfile.Load && in.Kind != objfile.Store {
			badIP++
		}
		if _, ok := p.Arena.Find(r.Addr); !ok {
			badAddr++
		}
		if forest.InnermostAt(r.IP) == nil {
			outsideLoop++
		}
	}))
	if total == 0 {
		t.Fatalf("%s: program emitted no references", p.Name)
	}
	if badIP > 0 {
		t.Errorf("%s: %d refs with unknown/non-memory IPs", p.Name, badIP)
	}
	if badAddr > 0 {
		t.Errorf("%s: %d refs outside any allocation", p.Name, badAddr)
	}
	if outsideLoop > 0 {
		t.Errorf("%s: %d refs not attributable to a loop", p.Name, outsideLoop)
	}
}

func TestAllCaseStudiesWellFormed(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cs, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if cs.Original == nil || cs.Optimized == nil {
				t.Fatal("case study missing a variant")
			}
			// Use small builds for the heavyweight cases.
			switch name {
			case "nw":
				cs = NewNW(128, 16)
			case "adi":
				cs = NewADI(128, 1)
			case "fft":
				cs = NewFFT(64)
			case "himeno":
				cs = NewHimeno(16, 16, 32, 1)
			case "kripke":
				cs = NewKripke(32, 16, 16)
			case "tinydnn":
				cs = NewTinyDNN(64, 256, 1)
			case "symmetrization":
				cs = NewSymmetrization(64)
			}
			checkProgram(t, cs.Original)
			checkProgram(t, cs.Optimized)
		})
	}
}

func TestRodiniaSuiteWellFormed(t *testing.T) {
	suite := RodiniaSuite()
	if len(suite) != 18 {
		t.Fatalf("Rodinia suite has %d kernels, want 18 (as in Figure 7)", len(suite))
	}
	seen := map[string]bool{}
	for _, p := range suite {
		if seen[p.Name] {
			t.Errorf("duplicate kernel name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if !seen["nw"] {
		t.Error("suite must include nw")
	}
	for _, p := range suite {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			checkProgram(t, p)
		})
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-kernel"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{"adi", "fft", "himeno", "kripke", "nw", "symmetrization", "tinydnn"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

// Parallel partitions must exactly cover the sequential stream (same
// address multiset) for the parallel case studies.
func TestThreadPartitioningCoversWork(t *testing.T) {
	cs := NewSymmetrization(64)
	p := cs.Original

	var seq trace.Counter
	p.Run(&seq)

	var par trace.Counter
	const threads = 7
	for tid := 0; tid < threads; tid++ {
		p.RunThread(tid, threads, &par)
	}
	if seq.Total() != par.Total() || seq.Writes != par.Writes {
		t.Errorf("parallel total = %d (%d writes), sequential = %d (%d writes)",
			par.Total(), par.Writes, seq.Total(), seq.Writes)
	}
}

func TestRunThreadBadTIDPanics(t *testing.T) {
	p := NewSymmetrization(16).Original
	defer func() {
		if recover() == nil {
			t.Fatal("RunThread with tid >= threads should panic")
		}
	}()
	p.RunThread(3, 2, trace.Discard)
}

func TestSpan(t *testing.T) {
	// Chunks must partition [0,n) contiguously for any n, threads.
	for _, n := range []int{0, 1, 7, 64, 100} {
		for _, th := range []int{1, 2, 3, 28} {
			prev := 0
			total := 0
			for tid := 0; tid < th; tid++ {
				lo, hi := span(n, tid, th)
				if lo != prev {
					t.Fatalf("span(%d,%d,%d): lo=%d, want %d", n, tid, th, lo, prev)
				}
				if hi < lo {
					t.Fatalf("span(%d,%d,%d): hi < lo", n, tid, th)
				}
				total += hi - lo
				prev = hi
			}
			if total != n || prev != n {
				t.Fatalf("span over n=%d threads=%d covers %d", n, th, total)
			}
		}
	}
}

func TestRecord(t *testing.T) {
	p := NewSymmetrization(8).Original
	rec := p.Record()
	if rec.Len() != 8*8*3 {
		t.Errorf("recorded %d refs, want %d", rec.Len(), 8*8*3)
	}
}

func TestOptimizedVariantsDifferInLayoutOrOrder(t *testing.T) {
	for _, name := range Names() {
		cs, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Original.Name == cs.Optimized.Name {
			t.Errorf("%s: variants share the name %q", name, cs.Original.Name)
		}
	}
}

func TestDeterministicEmission(t *testing.T) {
	// Kernels with internal RNGs must still be deterministic run-to-run
	// (fresh construction gives fresh, identically-seeded RNGs).
	run := func() []trace.Ref {
		var rec trace.Recorder
		BFS().Run(&rec)
		return rec.Refs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}
