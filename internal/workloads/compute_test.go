package workloads

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// The workloads compute their kernels for real during sequential runs;
// these tests pin the results against naive reference implementations.

func TestNWTiledMatchesReference(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		cs := NewNW(n, 16)
		cs.Original.Run(trace.Discard)
		got := int32(cs.Original.Check())
		want := NWReference(n)
		if got != want {
			t.Errorf("n=%d: tiled NW score = %d, reference = %d", n, got, want)
		}
		// The padded layout must compute the identical score (padding
		// only moves addresses, never values).
		cs.Optimized.Run(trace.Discard)
		if int32(cs.Optimized.Check()) != want {
			t.Errorf("n=%d: padded NW score = %v, want %d", n, cs.Optimized.Check(), want)
		}
	}
}

func TestKripkeInterchangeSameResult(t *testing.T) {
	cs := NewKripke(32, 16, 8)
	cs.Original.Run(trace.Discard)
	cs.Optimized.Run(trace.Discard)
	orig, opt := cs.Original.Check(), cs.Optimized.Check()
	want := KripkeReference(32, 16, 8)
	if math.Abs(orig-want) > 1e-6*math.Abs(want) {
		t.Errorf("original order: %g, reference %g", orig, want)
	}
	if math.Abs(opt-want) > 1e-6*math.Abs(want) {
		t.Errorf("interchanged order: %g, reference %g (interchange changed the result)", opt, want)
	}
}

func TestTinyDNNMatchesReference(t *testing.T) {
	cs := NewTinyDNN(64, 256, 1)
	cs.Original.Run(trace.Discard)
	ref := TinyDNNReference(64, 256)
	var want float64
	for _, v := range ref {
		want += float64(v)
	}
	got := cs.Original.Check()
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("layer checksum = %g, reference %g", got, want)
	}
	// Padding must not change the numbers.
	cs.Optimized.Run(trace.Discard)
	if math.Abs(cs.Optimized.Check()-want) > 1e-3 {
		t.Errorf("padded checksum = %g, want %g", cs.Optimized.Check(), want)
	}
}

func TestSymmetrizationConverges(t *testing.T) {
	// Each in-place sweep cuts the asymmetry residue by ~4x; after 6
	// reps the matrix is within a factor of ~4^6 of symmetric.
	cs := NewSymmetrizationReps(64, 6)
	before := cs.Original.Check() // residue of the fresh random matrix
	cs.Original.Run(trace.Discard)
	after := cs.Original.Check()
	if before <= 0 {
		t.Fatal("fresh matrix should be asymmetric")
	}
	if after > before/1000 {
		t.Errorf("residue only fell %g -> %g; expected ~4^reps convergence", before, after)
	}
}

func TestCheckNilForParallelOnlyResults(t *testing.T) {
	// Running multi-threaded skips computation; Check still callable and
	// simply reflects whatever the last sequential run (or init) left.
	cs := NewSymmetrization(32)
	for tid := 0; tid < 2; tid++ {
		cs.Original.RunThread(tid, 2, trace.Discard)
	}
	_ = cs.Original.Check() // must not panic
}

func TestFFTRoundTrip(t *testing.T) {
	rng := stats.NewRand(5)
	for _, n := range []int{2, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			orig[i] = x[i]
		}
		FFTForward(x)
		FFTInverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-12 {
				t.Fatalf("n=%d: round trip diverged at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	// FFTForward on natural-order input computes the DFT of the
	// bit-reversed input.
	const n = 8
	rng := stats.NewRand(6)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	got := make([]complex128, n)
	copy(got, x)
	FFTForward(got)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			want += x[BitReverse(j, n)] * cmplx.Exp(complex(0, ang))
		}
		if cmplx.Abs(got[k]-want) > 1e-9 {
			t.Fatalf("bin %d: got %v, want %v", k, got[k], want)
		}
	}
}

func TestFFTProgramParseval(t *testing.T) {
	for _, cs := range []*CaseStudy{NewFFT(64), NewFFT(128)} {
		for _, p := range []*Program{cs.Original, cs.Optimized} {
			p.Run(trace.Discard)
			if ratio := p.Check(); math.Abs(ratio-1) > 1e-9 {
				t.Errorf("%s: energy ratio = %g, want 1 (Parseval)", p.Name, ratio)
			}
		}
	}
}

func TestBitReverse(t *testing.T) {
	cases := [][3]int{{0, 8, 0}, {1, 8, 4}, {2, 8, 2}, {3, 8, 6}, {5, 8, 5}, {6, 8, 3}, {1, 2, 1}}
	for _, c := range cases {
		if got := BitReverse(c[0], c[1]); got != c[2] {
			t.Errorf("BitReverse(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
	// Property: involution.
	for i := 0; i < 64; i++ {
		if BitReverse(BitReverse(i, 64), 64) != i {
			t.Fatalf("bit reverse not an involution at %d", i)
		}
	}
}

func TestHimenoGosaDecays(t *testing.T) {
	// The Jacobi solver must make progress: the residual gosa after two
	// iterations is below the first iteration's.
	one := NewHimeno(16, 16, 32, 1)
	one.Original.Run(trace.Discard)
	g1 := one.Original.Check()

	two := NewHimeno(16, 16, 32, 2)
	two.Original.Run(trace.Discard)
	g2 := two.Original.Check()

	if g1 <= 0 {
		t.Fatalf("first-iteration gosa = %g, want positive", g1)
	}
	if g2 >= g1 {
		t.Errorf("gosa did not decay: %g -> %g", g1, g2)
	}
}

func TestHimenoPaddingPreservesValues(t *testing.T) {
	cs := NewHimeno(8, 8, 16, 2)
	cs.Original.Run(trace.Discard)
	cs.Optimized.Run(trace.Discard)
	if o, p := cs.Original.Check(), cs.Optimized.Check(); o != p {
		t.Errorf("padding changed gosa: %g vs %g", o, p)
	}
}

// Every case study's optimization must preserve the computed result (bit
// exact for same-order kernels, small FP tolerance for Kripke's
// reassociated reduction).
func TestOptimizationsPreserveSemantics(t *testing.T) {
	cases := []struct {
		cs  *CaseStudy
		tol float64
	}{
		{NewNW(128, 16), 0},
		{NewFFT(64), 1e-12},
		{NewTinyDNN(64, 256, 1), 0},
		{NewHimeno(8, 8, 16, 1), 0},
		{NewADI(64, 2), 0},
		{NewKripke(32, 16, 8), 1e-9},
		{NewSymmetrizationReps(64, 2), 0},
	}
	for _, c := range cases {
		c.cs.Original.Run(trace.Discard)
		o := c.cs.Original.Check()
		c.cs.Optimized.Run(trace.Discard)
		p := c.cs.Optimized.Check()
		diff := math.Abs(o - p)
		limit := c.tol * math.Max(math.Abs(o), 1)
		if diff > limit {
			t.Errorf("%s: optimized result %g differs from original %g", c.cs.Name, p, o)
		}
	}
}
