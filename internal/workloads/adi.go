package workloads

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("adi", func() *CaseStudy { return NewADI(512, 2) })
}

// NewADI builds the PolyBench/C Alternating Direction Implicit solver case
// study (§6.2, Listing 2). Each timestep performs a row sweep and a column
// sweep over n x n double matrices. With n a power of two, every row of the
// matrix starts at the same cache set, so the column sweep revisits one set
// per column — the paper measures RCD = 1 on matrix u. The optimized
// variant pads each row by 32 bytes, exactly the paper's fix.
func NewADI(n, steps int) *CaseStudy {
	return &CaseStudy{
		Name:          "ADI",
		Desc:          fmt.Sprintf("PolyBench ADI 2D solver, %dx%d doubles, %d steps", n, n, steps),
		Original:      adiProgram(n, steps, 0),
		Optimized:     adiProgram(n, steps, 32),
		TargetLoop:    "adi.c:8",
		ProfilePeriod: 171,
		Parallel:      false, // Table 3 reports ADI sequential
		PadBuilder:    func(pad uint64) *Program { return adiProgram(n, steps, pad) },
	}
}

func adiProgram(n, steps int, pad uint64) *Program {
	name := "adi"
	if pad > 0 {
		name = fmt.Sprintf("adi-pad%d", pad)
	}

	b := objfile.NewBuilder(name)
	b.Func("kernel_adi")
	b.Loop("adi.c", 2) // for t (timesteps)

	// Row sweep: X[i1][i2] updated from X[i1][i2-1] — streaming, benign.
	b.Loop("adi.c", 3) // for i1
	b.Loop("adi.c", 4) // for i2
	rowLdX := b.Load("adi.c", 5)
	rowLdXPrev := b.Load("adi.c", 5)
	rowLdA := b.Load("adi.c", 5)
	rowLdB := b.Load("adi.c", 5)
	rowSt := b.Store("adi.c", 5)
	b.EndLoop()
	b.EndLoop()

	// Column sweep (Listing 2): u[i2][i1] for fixed i1 walks down a
	// column; with power-of-two rows every access lands in one set.
	b.Loop("adi.c", 7) // for i1
	b.Loop("adi.c", 8) // for i2 — the 80%-of-L1-misses loop
	colLdX := b.Load("adi.c", 9)
	colLdXPrev := b.Load("adi.c", 9)
	colLdA := b.Load("adi.c", 9)
	colLdB := b.Load("adi.c", 9)
	colSt := b.Store("adi.c", 9)
	b.EndLoop()
	b.EndLoop()

	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	u := alloc.NewMatrix2D(ar, "u", n, n, 8, pad)
	av := alloc.NewMatrix2D(ar, "a", n, n, 8, pad)
	bv := alloc.NewMatrix2D(ar, "b", n, n, 8, pad)

	// Static access spec: per timestep, a streaming row sweep and a
	// row-strided column sweep over the three aligned matrices. The
	// column sweep's inner stride is the row stride — the §2 pathology
	// when n*8 is a multiple of the set span.
	rs := int64(u.RowStride())
	sp := spec(name,
		// Row sweep (adi.c:4): u, a, b stream row-major.
		acc("u", "adi.c:4", u.At(0, 1), 8, 1, dim(0, steps), dim(rs, n), dim(8, n-1)),
		acc("a", "adi.c:4", av.At(0, 1), 8, 1, dim(0, steps), dim(rs, n), dim(8, n-1)),
		acc("b", "adi.c:4", bv.At(0, 0), 8, 1, dim(0, steps), dim(rs, n), dim(8, n-1)),
		// Column sweep (adi.c:8): the reuse window is one column walk.
		acc("u", "adi.c:8", u.At(1, 0), 8, 1, dim(0, steps), dim(8, n), dim(rs, n-1)),
		acc("a", "adi.c:8", av.At(1, 0), 8, 1, dim(0, steps), dim(8, n), dim(rs, n-1)),
		acc("b", "adi.c:8", bv.At(0, 0), 8, 1, dim(0, steps), dim(8, n), dim(rs, n-1)),
	)

	// Real solver values: u is the unknown field, a/b the sweep
	// coefficients (|a/b| < 1 keeps the recurrences stable). Check
	// returns the field sum after the run; it must be identical for the
	// padded layout (padding moves addresses, never values).
	vals := lazy(func() *adiVals {
		v := &adiVals{}
		v.u, v.a, v.b = adiValues(n)
		return v
	})

	p := &Program{
		Name:   name,
		Binary: bin,
		Arena:  ar,
		Spec:   sp,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return // sequential case study
			}
			compute := threads == 1
			var uVals, aVals, bVals []float64
			if compute {
				v := vals()
				uVals, aVals, bVals = v.u, v.a, v.b
			}
			for t := 0; t < steps; t++ {
				// Row sweep.
				for i1 := 0; i1 < n; i1++ {
					for i2 := 1; i2 < n; i2++ {
						sink.Ref(trace.Ref{IP: rowLdX, Addr: u.At(i1, i2)})
						sink.Ref(trace.Ref{IP: rowLdXPrev, Addr: u.At(i1, i2-1)})
						sink.Ref(trace.Ref{IP: rowLdA, Addr: av.At(i1, i2)})
						sink.Ref(trace.Ref{IP: rowLdB, Addr: bv.At(i1, i2-1)})
						sink.Ref(trace.Ref{IP: rowSt, Addr: u.At(i1, i2), Write: true})
						if compute {
							uVals[i1*n+i2] -= uVals[i1*n+i2-1] * aVals[i1*n+i2] / bVals[i1*n+i2-1]
						}
					}
				}
				// Column sweep.
				for i1 := 0; i1 < n; i1++ {
					for i2 := 1; i2 < n; i2++ {
						sink.Ref(trace.Ref{IP: colLdX, Addr: u.At(i2, i1)})
						sink.Ref(trace.Ref{IP: colLdXPrev, Addr: u.At(i2-1, i1)})
						sink.Ref(trace.Ref{IP: colLdA, Addr: av.At(i2, i1)})
						sink.Ref(trace.Ref{IP: colLdB, Addr: bv.At(i2-1, i1)})
						sink.Ref(trace.Ref{IP: colSt, Addr: u.At(i2, i1), Write: true})
						if compute {
							uVals[i2*n+i1] -= uVals[(i2-1)*n+i1] * aVals[i2*n+i1] / bVals[(i2-1)*n+i1]
						}
					}
				}
			}
		},
	}
	p.Check = func() float64 {
		var sum float64
		for _, v := range vals().u {
			sum += v
		}
		return sum
	}
	return p
}

type adiVals struct{ u, a, b []float64 }

// adiValues generates the deterministic solver inputs.
func adiValues(n int) (u, a, b []float64) {
	rng := stats.NewRand(313)
	u = make([]float64, n*n)
	a = make([]float64, n*n)
	b = make([]float64, n*n)
	for i := range u {
		u[i] = rng.Float64()
		a[i] = rng.Float64() * 0.5
		b[i] = 1 + rng.Float64()
	}
	return
}
