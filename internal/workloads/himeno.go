package workloads

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/staticconf"
	"repro/internal/trace"
)

func init() {
	register("himeno", func() *CaseStudy { return NewHimeno(32, 32, 64, 2) })
}

// NewHimeno builds the Riken HimenoBMT case study (§6.6, Listing 5): the
// 19-point Jacobi kernel of the Poisson-equation fluid benchmark, sweeping
// 3D double arrays p, a[4], b[3], c[3], bnd, wrk1, wrk2 of extent
// ni x nj x nk. With power-of-two plane sizes the i±1 neighbour planes of p
// map to the same cache sets as the centre plane, and the fourteen arrays
// pile onto the same sets too; the conflicts hop between sets as k advances,
// which is why the paper needs high-frequency sampling (short conflict
// periods) to catch them. The optimized variant pads the 1st and 2nd
// dimensions, as the paper does.
func NewHimeno(ni, nj, nk, iters int) *CaseStudy {
	return &CaseStudy{
		Name: "HimenoBMT",
		Desc: fmt.Sprintf("3D Jacobi 19-point stencil, %dx%dx%d doubles, %d iterations", ni, nj, nk, iters),
		// The pads are chosen so that (a) the row stride stops being a
		// multiple of the set span and (b) each array's total size stops
		// being a multiple of it too — otherwise the fourteen arrays
		// remain mutually set-aligned and keep conflicting with each
		// other at every stencil point.
		Original:      himenoProgram(ni, nj, nk, iters, 0, 0),
		Optimized:     himenoProgram(ni, nj, nk, iters, 64, 160),
		TargetLoop:    "himenoBMT.c:6",
		ProfilePeriod: 31, // short conflict periods need high-frequency sampling (§6.6)
		Parallel:      true,
		// One knob for the mechanical search: pad rows by the candidate
		// and planes by the same amount, which breaks both alignments
		// the hand-picked (64, 160) fix targets.
		PadBuilder: func(pad uint64) *Program {
			return himenoProgram(ni, nj, nk, iters, pad, pad)
		},
	}
}

func himenoProgram(ni, nj, nk, iters int, rowPad, planePad uint64) *Program {
	name := "himeno"
	if rowPad > 0 || planePad > 0 {
		name = fmt.Sprintf("himeno-pad%d-%d", rowPad, planePad)
	}
	const src = "himenoBMT.c"

	b := objfile.NewBuilder(name)
	b.Func("jacobi")
	b.Loop(src, 3) // outer iteration loop (n)
	b.Loop(src, 4) // for i
	b.Loop(src, 5) // for j
	b.Loop(src, 6) // for k — Listing 5's loop nest
	ldA := b.Load(src, 7)
	ldP := b.Load(src, 8)
	ldB := b.Load(src, 10)
	ldC := b.Load(src, 19)
	ldWrk1 := b.Load(src, 22)
	ldBnd := b.Load(src, 23)
	stWrk2 := b.Store(src, 25)
	b.EndLoop()
	b.EndLoop()
	b.EndLoop()
	// Copy-back sweep: p = wrk2.
	b.Loop(src, 30)
	ldWrk2 := b.Load(src, 31)
	stP := b.Store(src, 31)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	mat := func(label string) *alloc.Matrix3D {
		return alloc.NewMatrix3D(ar, label, ni, nj, nk, 8, rowPad, planePad)
	}
	p := mat("p")
	var a [4]*alloc.Matrix3D
	for i := range a {
		a[i] = mat("a")
	}
	var bm [3]*alloc.Matrix3D
	for i := range bm {
		bm[i] = mat("b")
	}
	var cm [3]*alloc.Matrix3D
	for i := range cm {
		cm[i] = mat("c")
	}
	bnd := mat("bnd")
	wrk1 := mat("wrk1")
	wrk2 := mat("wrk2")

	// Static access spec: one access per array at the stencil centre,
	// plus p's plane and row neighbours (the k±1 neighbours share the
	// centre's lines). The reuse window is one k-row; all fourteen
	// unpadded arrays are mutually set-aligned because their sizes are
	// multiples of the set span.
	rowS, planeS := int64(p.RowStride()), int64(p.PlaneStride())
	inner := func(base uint64) staticconf.Access {
		return acc("", "himenoBMT.c:6", base, 8, 1,
			dim(0, iters), dim(planeS, ni-2), dim(rowS, nj-2), dim(8, nk-2))
	}
	named := func(label string, base uint64) staticconf.Access {
		a := inner(base)
		a.Array = label
		return a
	}
	sp := spec(name,
		named("p", p.At(1, 1, 1)),
		named("p", p.At(2, 1, 1)),
		named("p", p.At(0, 1, 1)),
		named("p", p.At(1, 2, 1)),
		named("p", p.At(1, 0, 1)),
		named("a", a[0].At(1, 1, 1)),
		named("a", a[1].At(1, 1, 1)),
		named("a", a[2].At(1, 1, 1)),
		named("a", a[3].At(1, 1, 1)),
		named("b", bm[0].At(1, 1, 1)),
		named("b", bm[1].At(1, 1, 1)),
		named("b", bm[2].At(1, 1, 1)),
		named("c", cm[0].At(1, 1, 1)),
		named("c", cm[1].At(1, 1, 1)),
		named("c", cm[2].At(1, 1, 1)),
		named("bnd", bnd.At(1, 1, 1)),
		named("wrk1", wrk1.At(1, 1, 1)),
		named("wrk2", wrk2.At(1, 1, 1)),
	)

	// Real Jacobi values (HimenoBMT's classic initialization): pressure
	// p = (i/(ni-1))^2, coefficients a = {1,1,1,1/6}, b = c = 0, bnd = 1.
	// The kernel computes gosa (the squared-residual sum) per iteration,
	// which must decay as the solver converges.
	lazyVals := lazy(func() *himenoValues { return newHimenoValues(ni, nj, nk) })
	var gosa float64

	p2 := &Program{
		Name:   name,
		Binary: bin,
		Arena:  ar,
		Spec:   sp,
		runThread: func(tid, threads int, sink trace.Sink) {
			compute := threads == 1
			var vals *himenoValues
			if compute {
				vals = lazyVals()
			}
			lo, hi := span(ni-2, tid, threads)
			lo, hi = lo+1, hi+1
			ld := func(ip uint64, addr uint64) { sink.Ref(trace.Ref{IP: ip, Addr: addr}) }
			for n := 0; n < iters; n++ {
				if compute {
					gosa = 0
				}
				for i := lo; i < hi; i++ {
					for j := 1; j < nj-1; j++ {
						for k := 1; k < nk-1; k++ {
							// s0 = a0*p(i+1,j,k) + a1*p(i,j+1,k) + a2*p(i,j,k+1)
							ld(ldA, a[0].At(i, j, k))
							ld(ldP, p.At(i+1, j, k))
							ld(ldA, a[1].At(i, j, k))
							ld(ldP, p.At(i, j+1, k))
							ld(ldA, a[2].At(i, j, k))
							ld(ldP, p.At(i, j, k+1))
							// + b0*(p(i+1,j+1,k) - p(i+1,j-1,k) - p(i-1,j+1,k) + p(i-1,j-1,k))
							ld(ldB, bm[0].At(i, j, k))
							ld(ldP, p.At(i+1, j+1, k))
							ld(ldP, p.At(i+1, j-1, k))
							ld(ldP, p.At(i-1, j+1, k))
							ld(ldP, p.At(i-1, j-1, k))
							// + b1*(p(i,j+1,k+1) - p(i,j-1,k+1) - p(i,j+1,k-1) + p(i,j-1,k-1))
							ld(ldB, bm[1].At(i, j, k))
							ld(ldP, p.At(i, j+1, k+1))
							ld(ldP, p.At(i, j-1, k+1))
							ld(ldP, p.At(i, j+1, k-1))
							ld(ldP, p.At(i, j-1, k-1))
							// + b2*(p(i+1,j,k+1) - p(i-1,j,k+1) - p(i+1,j,k-1) + p(i-1,j,k-1))
							ld(ldB, bm[2].At(i, j, k))
							ld(ldP, p.At(i+1, j, k+1))
							ld(ldP, p.At(i-1, j, k+1))
							ld(ldP, p.At(i+1, j, k-1))
							ld(ldP, p.At(i-1, j, k-1))
							// + c0*p(i-1,j,k) + c1*p(i,j-1,k) + c2*p(i,j,k-1) + wrk1
							ld(ldC, cm[0].At(i, j, k))
							ld(ldP, p.At(i-1, j, k))
							ld(ldC, cm[1].At(i, j, k))
							ld(ldP, p.At(i, j-1, k))
							ld(ldC, cm[2].At(i, j, k))
							ld(ldP, p.At(i, j, k-1))
							ld(ldWrk1, wrk1.At(i, j, k))
							// ss = (s0*a3 - p)*bnd; wrk2 = p + omega*ss
							ld(ldA, a[3].At(i, j, k))
							ld(ldP, p.At(i, j, k))
							ld(ldBnd, bnd.At(i, j, k))
							sink.Ref(trace.Ref{IP: stWrk2, Addr: wrk2.At(i, j, k), Write: true})
							if compute {
								gosa += vals.step(i, j, k)
							}
						}
					}
				}
				// p = wrk2 copy-back.
				for i := lo; i < hi; i++ {
					for j := 1; j < nj-1; j++ {
						for k := 1; k < nk-1; k++ {
							ld(ldWrk2, wrk2.At(i, j, k))
							sink.Ref(trace.Ref{IP: stP, Addr: p.At(i, j, k), Write: true})
							if compute {
								vals.p[vals.idx(i, j, k)] = vals.wrk2[vals.idx(i, j, k)]
							}
						}
					}
				}
			}
		},
	}
	p2.Check = func() float64 { return gosa }
	return p2
}

// himenoValues carries the solver's element storage.
type himenoValues struct {
	ni, nj, nk     int
	p, wrk1, wrk2  []float64
	bnd            []float64
	a0, a1, a2, a3 []float64
	b0, b1, b2     []float64
	c0, c1, c2     []float64
}

func newHimenoValues(ni, nj, nk int) *himenoValues {
	n := ni * nj * nk
	v := &himenoValues{ni: ni, nj: nj, nk: nk}
	fill := func(val float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = val
		}
		return s
	}
	v.p = make([]float64, n)
	for i := 0; i < ni; i++ {
		pi := float64(i) * float64(i) / (float64(ni-1) * float64(ni-1))
		for j := 0; j < nj; j++ {
			for k := 0; k < nk; k++ {
				v.p[v.idx(i, j, k)] = pi
			}
		}
	}
	v.wrk1 = fill(0)
	v.wrk2 = fill(0)
	v.bnd = fill(1)
	v.a0, v.a1, v.a2, v.a3 = fill(1), fill(1), fill(1), fill(1.0/6.0)
	v.b0, v.b1, v.b2 = fill(0), fill(0), fill(0)
	v.c0, v.c1, v.c2 = fill(1), fill(1), fill(1)
	return v
}

func (v *himenoValues) idx(i, j, k int) int { return (i*v.nj+j)*v.nk + k }

// step performs the 19-point update at (i,j,k), writes wrk2, and returns
// the squared residual contribution (Listing 5's ss*ss).
func (v *himenoValues) step(i, j, k int) float64 {
	const omega = 0.8
	id := v.idx
	p := v.p
	s0 := v.a0[id(i, j, k)]*p[id(i+1, j, k)] +
		v.a1[id(i, j, k)]*p[id(i, j+1, k)] +
		v.a2[id(i, j, k)]*p[id(i, j, k+1)] +
		v.b0[id(i, j, k)]*(p[id(i+1, j+1, k)]-p[id(i+1, j-1, k)]-p[id(i-1, j+1, k)]+p[id(i-1, j-1, k)]) +
		v.b1[id(i, j, k)]*(p[id(i, j+1, k+1)]-p[id(i, j-1, k+1)]-p[id(i, j+1, k-1)]+p[id(i, j-1, k-1)]) +
		v.b2[id(i, j, k)]*(p[id(i+1, j, k+1)]-p[id(i-1, j, k+1)]-p[id(i+1, j, k-1)]+p[id(i-1, j, k-1)]) +
		v.c0[id(i, j, k)]*p[id(i-1, j, k)] +
		v.c1[id(i, j, k)]*p[id(i, j-1, k)] +
		v.c2[id(i, j, k)]*p[id(i, j, k-1)] +
		v.wrk1[id(i, j, k)]
	ss := (s0*v.a3[id(i, j, k)] - p[id(i, j, k)]) * v.bnd[id(i, j, k)]
	v.wrk2[id(i, j, k)] = p[id(i, j, k)] + omega*ss
	return ss * ss
}
