// Package workloads implements every kernel the paper evaluates, as
// address-trace generators.
//
// Each workload is a Program: a synthetic binary (so the offline analyzer
// can recover its loop nest), an allocation arena (so data-centric
// attribution can name its arrays), and a run function that walks the same
// loop nest over the same data layout as the original C code, emitting one
// trace.Ref per memory access. Cache-conflict behaviour is a function of
// the address sequence alone, so these generators reproduce the paper's
// conflict phenomena exactly, at laptop scale.
//
// The six case studies (§6) come in Original/Optimized pairs where the
// optimized variant applies the paper's fix — row padding, or loop
// interchange for Kripke. The remaining Rodinia-style kernels exist for the
// Figure 7 sweep and are conflict-free by construction, as the paper found.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/staticconf"
	"repro/internal/trace"
)

// lazy defers a workload's value-array generation to first use. Program
// construction is on the advisor's per-candidate path — SpecBuilder and
// the static tiers build a program only to read its Spec — and the value
// storage (an O(problem size) deterministic random fill) is by far the
// most expensive part of construction, so the kernels allocate it only
// when they actually run (or when Check sums the results).
func lazy[T any](gen func() T) func() T {
	var (
		once sync.Once
		v    T
	)
	return func() T {
		once.Do(func() { v = gen() })
		return v
	}
}

// Program is one runnable kernel variant.
type Program struct {
	// Name identifies the variant, e.g. "nw" or "nw-padded".
	Name string
	// Binary is the synthetic executable; the analyzer recovers loops
	// from it.
	Binary *objfile.Binary
	// Arena is the allocation log for data-centric attribution.
	Arena *alloc.Arena
	// Spec is the kernel's affine access specification for the static
	// analyzer, covering its dominant array references. Nil means the
	// kernel has no useful affine description (and the static path
	// abstains). Kernels with data-dependent accesses declare affine
	// approximations of their streaming parts.
	Spec *staticconf.Spec

	// runThread emits the references of one thread's partition of the
	// work. Sequential kernels emit everything on thread 0.
	runThread func(tid, threads int, sink trace.Sink)

	// Check, when non-nil, returns a checksum of the kernel's computed
	// output after a sequential Run. The kernels compute their real
	// results (alignment scores, transforms, stencil values) alongside
	// address emission; multi-threaded runs emit addresses only, so
	// Check is meaningful only after Run (threads == 1).
	Check func() float64
}

// NewProgram assembles a Program from its parts. run receives the thread id
// and thread count and must emit that thread's partition of the work; it is
// how user code (see examples/custom-workload) plugs its own kernels into
// the profiler.
func NewProgram(name string, bin *objfile.Binary, ar *alloc.Arena,
	run func(tid, threads int, sink trace.Sink)) *Program {
	if bin == nil || ar == nil || run == nil {
		panic("workloads: NewProgram with nil component")
	}
	return &Program{Name: name, Binary: bin, Arena: ar, runThread: run}
}

// pipePool recycles staging pipelines across RunThread calls. A pipeline
// holds only its block buffer between uses; Rebind discards any buffered
// state, so pooling is invisible to the delivered stream.
var pipePool parsim.Pool[*trace.Pipeline[trace.BlockSink]]

// Run emits the full sequential reference stream.
func (p *Program) Run(sink trace.Sink) { p.RunThread(0, 1, sink) }

// RunThread emits the reference stream of thread tid out of threads.
// Threads partition the kernel's outermost parallel dimension; a thread
// with no work emits nothing.
//
// When sink consumes struct-of-arrays blocks (trace.BlockSink), the
// references are staged through a trace.Pipeline and delivered in fixed-size
// RefBlocks — the replay fast path: one dispatch per block, and the
// consumer's fused loop classifies the whole block in one pass. Sinks that
// only consume batches (trace.BatchSink) are staged through a trace.Batcher
// as before. Plain sinks (including trace.SinkFunc adapters) receive the
// unchanged per-ref stream; on every path the delivered sequence is
// identical.
func (p *Program) RunThread(tid, threads int, sink trace.Sink) {
	if threads < 1 {
		threads = 1
	}
	if tid < 0 || tid >= threads {
		panic(fmt.Sprintf("workloads: thread %d out of range [0,%d)", tid, threads))
	}
	switch s := sink.(type) {
	case trace.BlockSink:
		pl := pipePool.Get()
		if pl == nil {
			pl = trace.NewPipeline[trace.BlockSink](s, 0)
		} else {
			pl.Rebind(s)
		}
		p.runThread(tid, threads, pl)
		pl.Flush()
		pl.ObserveInto(obs.Default)
		pipePool.Put(pl)
	case trace.BatchSink:
		b := trace.NewBatcher(s, 0)
		p.runThread(tid, threads, b)
		b.Flush()
		b.ObserveInto(obs.Default)
	default:
		p.runThread(tid, threads, sink)
	}
}

// Record runs the program sequentially into a Recorder and returns it.
func (p *Program) Record() *trace.Recorder {
	var rec trace.Recorder
	p.Run(&rec)
	return &rec
}

// CaseStudy pairs the original and optimized variants of one paper case
// study (Table 2 / Table 3 / Figure 9).
type CaseStudy struct {
	Name      string // paper name, e.g. "NW", "ADI"
	Desc      string // one-line description
	Original  *Program
	Optimized *Program
	// TargetLoop is the source location of the loop the paper analyzes,
	// as reported by code-centric attribution (e.g. "needle.cpp:189").
	TargetLoop string
	// Parallel reports whether the paper runs this case multi-threaded in
	// Table 3 (ADI is "(sequential)").
	Parallel bool
	// ProfilePeriod is the mean sampling period needed to detect this
	// case's conflicts: 171 for most, but workloads whose conflict
	// period is short (HimenoBMT, §6.6) need high-frequency sampling.
	ProfilePeriod uint64
	// PadBuilder rebuilds the kernel with the conflicting array(s)
	// padded by the given byte count, for the advisor's pad search.
	// PadBuilder(0) is layout-identical to Original.
	PadBuilder func(pad uint64) *Program
}

// SpecBuilder derives the static access spec of PadBuilder(pad) without
// constructing the trace generator's value storage; it exists for the
// closed-form pad solver. Returns nil when the case has no PadBuilder or
// its programs carry no spec.
func (cs *CaseStudy) SpecBuilder() func(pad uint64) *staticconf.Spec {
	if cs.PadBuilder == nil {
		return nil
	}
	if p := cs.PadBuilder(0); p == nil || p.Spec == nil {
		return nil
	}
	return func(pad uint64) *staticconf.Spec { return cs.PadBuilder(pad).Spec }
}

// span splits [0, n) into `threads` nearly equal chunks and returns chunk
// tid as [lo, hi). It is the partitioning every parallel kernel uses.
func span(n, tid, threads int) (lo, hi int) {
	chunk := n / threads
	rem := n % threads
	lo = tid*chunk + min(tid, rem)
	hi = lo + chunk
	if tid < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// registry of all workloads, populated by the constructors below.

// Builder constructs a fresh CaseStudy at default scale.
type Builder func() *CaseStudy

var registry = map[string]Builder{}

func register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic("workloads: duplicate registration of " + name)
	}
	registry[name] = b
}

// Get builds the named case study at default scale. It returns an error
// listing available names on a miss.
func Get(name string) (*CaseStudy, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (available: %v)", name, Names())
	}
	return b(), nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
