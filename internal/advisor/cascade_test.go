package advisor

import (
	"sort"
	"testing"

	"repro/internal/obs"
)

// denseGrid is a pad grid fine enough that pruning matters: 0..640 in
// line-eighth steps, 81 candidates.
func denseGrid() []uint64 {
	var pads []uint64
	for p := uint64(0); p <= 640; p += 8 {
		pads = append(pads, p)
	}
	return pads
}

// TestTierCascadeMatchesFullSweep is the cascade's acceptance contract:
// on every case study, the three-tier advisor (analytic → staticconf →
// simulation) returns the same recommendation as simulation-only over a
// dense candidate grid while running at least 90% fewer full
// simulations.
func TestTierCascadeMatchesFullSweep(t *testing.T) {
	pads := denseGrid()
	for _, c := range caseStudyFixes() {
		full, err := RecommendPad(c.cs.PadBuilder, Options{Pads: pads})
		if err != nil {
			t.Fatalf("%s: %v", c.cs.Name, err)
		}
		tiered, err := RecommendPad(c.cs.PadBuilder, Options{
			Pads:       pads,
			Tiers:      Cascade(),
			Spec:       c.cs.SpecBuilder(),
			StaticKeep: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.cs.Name, err)
		}
		if tiered.Best.Pad != full.Best.Pad {
			t.Errorf("%s: cascade recommended pad %d, simulation-only %d",
				c.cs.Name, tiered.Best.Pad, full.Best.Pad)
		}
		if sims, max := len(tiered.Candidates), len(full.Candidates)/10; sims > max {
			t.Errorf("%s: cascade simulated %d of %d candidates, want ≤ %d (≥90%% pruned)",
				c.cs.Name, sims, len(full.Candidates), max)
		}
		if len(tiered.Pruned)+len(tiered.Candidates) != len(full.Candidates) {
			t.Errorf("%s: pruned %d + simulated %d != %d candidates",
				c.cs.Name, len(tiered.Pruned), len(tiered.Candidates), len(full.Candidates))
		}
		t.Logf("%s: best pad %d; simulated %d/%d (analytic pruned %d, static pruned %d)",
			c.cs.Name, tiered.Best.Pad, len(tiered.Candidates), len(full.Candidates),
			len(tiered.PrunedAnalytic), len(tiered.PrunedStatic))
	}
}

// TestCascadeTierAttribution checks the bookkeeping of a tiered run:
// pruned pads are attributed to the tier that removed them, the pruned
// list is ascending and disjoint from the simulated list, and the obs
// counters advance by the same amounts.
func TestCascadeTierAttribution(t *testing.T) {
	c := caseStudyFixes()[0] // NW
	beforeAnalytic := obs.Default.Counter("advisor.pruned.analytic").Load()
	beforeStatic := obs.Default.Counter("advisor.pruned.static").Load()
	beforeSim := obs.Default.Counter("advisor.simulated").Load()
	res, err := RecommendPad(c.cs.PadBuilder, Options{
		Pads:  denseGrid(),
		Tiers: Cascade(),
		Spec:  c.cs.SpecBuilder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PrunedAnalytic) == 0 {
		t.Error("analytic tier pruned nothing on a dense grid")
	}
	if !sort.SliceIsSorted(res.Pruned, func(i, j int) bool { return res.Pruned[i] < res.Pruned[j] }) {
		t.Errorf("pruned list not ascending: %v", res.Pruned)
	}
	attributed := len(res.PrunedAnalytic) + len(res.PrunedStatic)
	if attributed > len(res.Pruned) {
		t.Errorf("attributed %d pads, but only %d pruned", attributed, len(res.Pruned))
	}
	simulated := map[uint64]bool{}
	for _, cand := range res.Candidates {
		simulated[cand.Pad] = true
	}
	for _, p := range res.Pruned {
		if simulated[p] {
			t.Errorf("pad %d both pruned and simulated", p)
		}
	}
	if got := obs.Default.Counter("advisor.pruned.analytic").Load() - beforeAnalytic; got != uint64(len(res.PrunedAnalytic)) {
		t.Errorf("advisor.pruned.analytic advanced by %d, want %d", got, len(res.PrunedAnalytic))
	}
	if got := obs.Default.Counter("advisor.pruned.static").Load() - beforeStatic; got != uint64(len(res.PrunedStatic)) {
		t.Errorf("advisor.pruned.static advanced by %d, want %d", got, len(res.PrunedStatic))
	}
	if got := obs.Default.Counter("advisor.simulated").Load() - beforeSim; got != uint64(len(res.Candidates)) {
		t.Errorf("advisor.simulated advanced by %d, want %d", got, len(res.Candidates))
	}
}

// TestAnalyticTierAloneMatchesStaticTier: with only tier 0 active the
// advisor must reach the same recommendation as the tier-1-only run —
// the two models agree on these specs, so the cascade layering must not
// change the outcome.
func TestAnalyticTierAloneMatchesStaticTier(t *testing.T) {
	for _, c := range caseStudyFixes()[:3] { // NW, FFT, ADI
		sb := c.cs.SpecBuilder()
		an, err := RecommendPad(c.cs.PadBuilder, Options{
			Tiers: TierPolicy{Analytic: true}, Spec: sb,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.cs.Name, err)
		}
		st, err := RecommendPad(c.cs.PadBuilder, Options{
			Tiers: TierPolicy{Static: true}, Spec: sb,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.cs.Name, err)
		}
		if an.Best.Pad != st.Best.Pad {
			t.Errorf("%s: analytic-only pad %d != static-only pad %d",
				c.cs.Name, an.Best.Pad, st.Best.Pad)
		}
	}
}
