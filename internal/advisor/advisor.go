// Package advisor automates the optimization step the paper performs by
// hand: once CCProf names a loop and a data structure, the developer tries
// row pads until the conflicts disappear (§6 pads 32, 64, 288 bytes, or 8
// elements, per case). The advisor searches that space mechanically: given
// a way to rebuild the kernel at any candidate pad, it scores each
// candidate on a fast exact L1 simulation and recommends the cheapest pad
// that removes the conflict signature.
package advisor

import (
	"fmt"
	"sort"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/rcd"
	"repro/internal/staticconf"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Candidate is one evaluated pad size. Candidates are scored on Cycles — a
// latency-weighted L1+L2 simulation — because padding fixes often pay off
// below L1 (ADI's fix leaves L1 misses unchanged and removes L2 misses).
type Candidate struct {
	Pad      uint64
	Misses   uint64  // exact L1 misses
	L2Misses uint64  // exact L2 misses
	Cycles   uint64  // latency-weighted cost of the simulated run
	CF       float64 // exact short-RCD contribution factor at L1
}

// Result is the advisor's recommendation.
type Result struct {
	// Best is the recommended candidate: among the candidates whose
	// exact CF is below ConflictCF (all candidates when none qualifies),
	// the smallest pad within Tolerance of the minimum cycle cost
	// (smaller pads waste less memory).
	Best Candidate
	// Baseline is the pad-0 candidate, for comparison.
	Baseline Candidate
	// Candidates lists every evaluated pad in evaluation order.
	Candidates []Candidate
	// Pruned lists every pad ruled out without simulation, ascending
	// (tiered runs only; nil otherwise).
	Pruned []uint64
	// PrunedAnalytic and PrunedStatic attribute pruned pads to the tier
	// whose verdict removed them: tier 0 is the closed-form analytic
	// model, tier 1 the enumerating static analyzer. Pads in Pruned but
	// in neither list were statically clean beyond the keep limit.
	PrunedAnalytic []uint64
	PrunedStatic   []uint64
}

// Improvement returns the cycle reduction of Best over Baseline, in [0, 1].
func (r Result) Improvement() float64 {
	if r.Baseline.Cycles == 0 {
		return 0
	}
	return 1 - float64(r.Best.Cycles)/float64(r.Baseline.Cycles)
}

// Options configures the search.
type Options struct {
	Geom mem.Geometry // zero selects mem.L1Default()
	// Pads are the candidate pad sizes; nil selects DefaultPads.
	Pads []uint64
	// Tolerance is the relative slack for "as good as the best" when
	// preferring smaller pads; 0 selects 0.02 (2%).
	Tolerance float64
	// MaxRefs caps the simulated references per candidate (0 = all).
	MaxRefs uint64
	// ConflictCF is the exact short-RCD contribution factor at or above
	// which a simulated candidate still counts as conflicted. The
	// recommendation prefers candidates below it — the advisor's job is
	// to remove the conflict signature, not merely to shave cycles (a
	// pad can score well on cycles because its extra L1 conflict misses
	// hit in L2). 0 selects 0.25; 1 or more ranks on cycles alone.
	ConflictCF float64
	// Tiers selects the static pruning tiers of the advisor cascade
	// (analytic → staticconf → full simulation). Each active tier rules
	// candidate pads out before any cache simulation runs: only pad 0,
	// pads whose spec is unavailable, and the StaticKeep smallest pads
	// every active tier declares clean are simulated. Tier 0 (analytic)
	// classifies a candidate arithmetically in microseconds; tier 1
	// (staticconf) enumerates its reuse windows; the survivors go to
	// full simulation. If no pad at all comes back clean, the cascade
	// abstains and the full candidate list is swept — the static tiers
	// narrow the search, they never block it.
	//
	// The pruning is simulation-verified: when a statically-clean pad
	// measures conflicted under simulation (the models were wrong
	// there), or no simulated candidate clears ConflictCF, the advisor
	// escalates — it pulls the next StaticKeep statically-clean pads
	// out of the pruned surplus and simulates them too, batch by batch,
	// until a batch confirms the static verdicts or the surplus runs
	// out. A miscalibrated model therefore costs extra simulations, not
	// a wrong recommendation.
	Tiers TierPolicy
	// StaticFirst is the pre-cascade spelling of Tiers.Static, kept for
	// compatibility: it enables tier 1 only.
	StaticFirst bool
	// Spec builds the kernel's static access spec at a candidate pad
	// (typically CaseStudy.SpecBuilder()). nil disables pruning even
	// when StaticFirst is set.
	Spec func(pad uint64) *staticconf.Spec
	// StaticKeep is how many statically-clean pads survive pruning;
	// 0 selects 4.
	StaticKeep int
	// Workers sets the parallelism of the candidate sweep: each pad is
	// built and simulated on its own worker with its own cache and RCD
	// instances, and results are reassembled in candidate order, so the
	// recommendation is byte-identical at any worker count. 0 selects
	// the process default (GOMAXPROCS, or the -j flag of cmd/ccprof).
	Workers int
}

// TierPolicy selects which static tiers of the advisor cascade prune
// the candidate list before full simulation. The zero value disables
// pruning; Cascade() enables the whole cascade.
type TierPolicy struct {
	// Analytic enables tier 0: the closed-form conflict model
	// (internal/analytic), which classifies a candidate layout without
	// replaying or enumerating a single reference.
	Analytic bool
	// Static enables tier 1: the enumerating static analyzer
	// (internal/staticconf), which measures per-set demand from one
	// enumerated reuse window per access.
	Static bool
}

// Cascade is the full three-tier policy: analytic, then staticconf,
// then simulation of the survivors.
func Cascade() TierPolicy { return TierPolicy{Analytic: true, Static: true} }

func (p TierPolicy) active() bool { return p.Analytic || p.Static }

// DefaultPads covers the pad sizes the paper's case studies use (32, 64,
// 128, 288) plus neighbours.
var DefaultPads = []uint64{0, 8, 16, 32, 64, 96, 128, 192, 256, 288}

// RecommendPad evaluates build(pad) for every candidate pad and returns
// the recommendation. build must return a freshly built kernel whose
// relevant rows are padded by the given byte count.
func RecommendPad(build func(pad uint64) *workloads.Program, opts Options) (Result, error) {
	if build == nil {
		return Result{}, fmt.Errorf("advisor: nil build function")
	}
	geom := opts.Geom
	if geom.Sets == 0 {
		geom = mem.L1Default()
	}
	pads := opts.Pads
	if pads == nil {
		pads = DefaultPads
	}
	if len(pads) == 0 {
		return Result{}, fmt.Errorf("advisor: no candidate pads")
	}
	tol := opts.Tolerance
	if tol == 0 {
		tol = 0.02
	}
	cfLimit := opts.ConflictCF
	if cfLimit == 0 {
		cfLimit = 0.25
	}
	keep := opts.StaticKeep
	if keep == 0 {
		keep = 4
	}

	policy := opts.Tiers
	if opts.StaticFirst {
		policy.Static = true
	}
	var res Result
	var vetted map[uint64]bool
	var surplus []uint64
	if policy.active() && opts.Spec != nil {
		pads, vetted, surplus = tierPrune(pads, policy, opts, geom, keep, &res)
		obs.Default.Counter("advisor.pruned.analytic").Add(uint64(len(res.PrunedAnalytic)))
		obs.Default.Counter("advisor.pruned.static").Add(uint64(len(res.PrunedStatic)))
	}

	// Deduplicate while preserving evaluation order, then fan the
	// candidates across the sweep executor: each pad builds and simulates
	// its kernel independently (own caches, own RCD tracker), and the
	// results come back in candidate order, so the sweep is byte-identical
	// at any worker count.
	seen := map[uint64]bool{}
	uniq := pads[:0:0]
	for _, pad := range pads {
		if !seen[pad] {
			seen[pad] = true
			uniq = append(uniq, pad)
		}
	}
	sim := func(list []uint64) ([]Candidate, error) {
		obs.Default.Counter("advisor.simulated").Add(uint64(len(list)))
		return parsim.Run(len(list), parsim.Options{Workers: opts.Workers},
			func(i int) (Candidate, error) {
				pad := list[i]
				p := build(pad)
				if p == nil {
					return Candidate{}, fmt.Errorf("advisor: build(%d) returned nil", pad)
				}
				c := evaluate(p, geom, opts.MaxRefs)
				c.Pad = pad
				return c, nil
			})
	}
	cands, err := sim(uniq)
	if err != nil {
		return Result{}, err
	}
	res.Candidates = cands

	// Simulation-verified escalation: the static tiers kept only the
	// smallest clean pads, so check their verdicts against the
	// measurement. If a vetted pad came back conflicted, or nothing
	// simulated so far clears the CF threshold, the static picture is
	// not trustworthy at this layout — promote the next batch of
	// statically-clean pads from the pruned surplus into the sweep and
	// repeat until a whole batch confirms the static verdicts. Each
	// batch must also make geometric progress — cut the best measured
	// CF by at least a quarter: when larger pads stop reducing the
	// conflict signature, padding has given all it has (ADI's residual
	// conflicts live below L1 and its CF plateaus above the threshold)
	// and further escalation would just re-run the full sweep
	// piecewise.
	const escalationGain = 0.75
	batch := cands
	minCF := batch[0].CF
	for _, c := range batch {
		if c.CF < minCF {
			minCF = c.CF
		}
	}
	for len(surplus) > 0 {
		disagree := false
		for _, c := range batch {
			if vetted[c.Pad] && c.CF >= cfLimit {
				disagree = true
				break
			}
		}
		if !disagree {
			poolOK := false
			for _, c := range res.Candidates {
				if c.CF < cfLimit {
					poolOK = true
					break
				}
			}
			if poolOK {
				break
			}
		}
		n := keep
		if n > len(surplus) {
			n = len(surplus)
		}
		next := surplus[:n]
		surplus = surplus[n:]
		promoted := make(map[uint64]bool, len(next))
		for _, pad := range next {
			promoted[pad] = true
			vetted[pad] = true
		}
		kept := res.Pruned[:0]
		for _, pad := range res.Pruned {
			if !promoted[pad] {
				kept = append(kept, pad)
			}
		}
		res.Pruned = kept
		if batch, err = sim(next); err != nil {
			return Result{}, err
		}
		res.Candidates = append(res.Candidates, batch...)
		batchMin := batch[0].CF
		for _, c := range batch {
			if c.CF < batchMin {
				batchMin = c.CF
			}
		}
		if batchMin >= escalationGain*minCF {
			break
		}
		minCF = batchMin
	}

	haveBaseline := false
	for _, c := range res.Candidates {
		if c.Pad == 0 {
			res.Baseline = c
			haveBaseline = true
			break
		}
	}
	if !haveBaseline {
		res.Baseline = res.Candidates[0]
	}

	// The recommendation: among candidates that actually remove the
	// conflict signature (exact CF below the threshold), the smallest
	// pad within tolerance of the minimum cycle cost. When no candidate
	// clears the threshold — some layouts cannot be fixed by padding at
	// all — fall back to ranking every candidate on cycles.
	pool := res.Candidates[:0:0]
	for _, c := range res.Candidates {
		if c.CF < cfLimit {
			pool = append(pool, c)
		}
	}
	if len(pool) == 0 {
		pool = res.Candidates
	}
	min := pool[0].Cycles
	for _, c := range pool {
		if c.Cycles < min {
			min = c.Cycles
		}
	}
	limit := uint64(float64(min) * (1 + tol))
	best := pool[0]
	found := false
	for _, c := range pool {
		if c.Cycles > limit {
			continue
		}
		if !found || c.Pad < best.Pad {
			best = c
			found = true
		}
	}
	res.Best = best
	return res, nil
}

// tierPrune runs the static cascade over the candidate pads, smallest
// first: each active tier analyzes the pad's spec, cheapest tier first,
// and the first conflicted verdict removes the pad (attributed to that
// tier). Pad 0, specless pads, and the keep smallest pads that every
// tier declares clean survive to simulation; clean pads beyond the
// keep limit land in the pruned surplus, from which RecommendPad
// escalates if simulation contradicts the static verdicts. If no pad
// at all comes back clean the cascade has nothing useful to say and
// the full candidate list survives untouched.
//
// It returns the pads to simulate, the set of kept pads whose survival
// rests on a static clean verdict (candidates for simulation-verified
// escalation), and the statically-clean surplus in ascending order.
func tierPrune(pads []uint64, policy TierPolicy, opts Options, geom mem.Geometry, keep int, res *Result) (out []uint64, vetted map[uint64]bool, surplus []uint64) {
	sorted := append([]uint64(nil), pads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var kept []uint64
	vetted = map[uint64]bool{}
	clean := 0
	for i, pad := range sorted {
		if i > 0 && pad == sorted[i-1] {
			continue
		}
		if pad == 0 {
			kept = append(kept, pad)
			continue
		}
		sp := opts.Spec(pad)
		if sp == nil {
			kept = append(kept, pad)
			continue
		}
		if policy.Analytic {
			done := obs.Default.StartPhase("advisor/analytic")
			r, err := analytic.Analyze(sp, geom, analytic.Options{SkipTouches: true})
			done()
			if err == nil && r.Conflict {
				res.PrunedAnalytic = append(res.PrunedAnalytic, pad)
				res.Pruned = append(res.Pruned, pad)
				continue
			}
		}
		if policy.Static {
			done := obs.Default.StartPhase("advisor/static")
			r, err := staticconf.Analyze(sp, geom, staticconf.Options{})
			done()
			if err == nil && r.Conflict {
				res.PrunedStatic = append(res.PrunedStatic, pad)
				res.Pruned = append(res.Pruned, pad)
				continue
			}
		}
		if clean < keep {
			kept = append(kept, pad)
			vetted[pad] = true
			clean++
			continue
		}
		surplus = append(surplus, pad)
		res.Pruned = append(res.Pruned, pad)
	}
	if clean == 0 {
		res.Pruned, res.PrunedAnalytic, res.PrunedStatic = nil, nil, nil
		return pads, nil, nil
	}
	return kept, vetted, surplus
}

// evalSink is the advisor's block-aware cost model: the configured L1
// backed by a 256KiB L2 (the private L2 of the evaluated machines), costed
// with the Broadwell latency table. Implementing trace.BlockSink lets the
// workload deliver references in struct-of-arrays blocks: the L1 classifies
// a whole block in one fused pass (cache.BlockMisses) and only the misses —
// a few percent of references — pay the RCD bookkeeping and the L2 probe.
type evalSink struct {
	geom    mem.Geometry
	l1, l2  *cache.Cache
	lat     mem.Latency
	tr      *rcd.Tracker
	maxRefs uint64
	n       uint64
	cycles  uint64

	miss []int32 // scratch miss-index buffer for the block path
}

func (e *evalSink) one(r trace.Ref) {
	if e.maxRefs > 0 && e.n >= e.maxRefs {
		return
	}
	e.n++
	if e.l1.AccessHit(r.Addr) {
		e.cycles += uint64(e.lat.L1Hit)
		return
	}
	e.tr.Observe(e.geom.Set(r.Addr))
	if e.l2.AccessHit(r.Addr) {
		e.cycles += uint64(e.lat.L2Hit)
		return
	}
	e.cycles += uint64(e.lat.Memory)
}

// Ref implements trace.Sink.
func (e *evalSink) Ref(r trace.Ref) { e.one(r) }

// RefBatch implements trace.BatchSink.
func (e *evalSink) RefBatch(refs []trace.Ref) {
	for i := range refs {
		e.one(refs[i])
	}
}

// RefBlock implements trace.BlockSink — the fused fast path. Outcomes are
// identical to per-reference delivery: same simulation order, same
// statistics, same cycle cost.
func (e *evalSink) RefBlock(b *trace.RefBlock) {
	addrs := b.Addr
	if e.maxRefs > 0 {
		if left := e.maxRefs - e.n; uint64(len(addrs)) > left {
			addrs = addrs[:left]
		}
	}
	e.n += uint64(len(addrs))
	e.miss = e.l1.BlockMisses(addrs, e.miss[:0])
	e.cycles += uint64(len(addrs)-len(e.miss)) * uint64(e.lat.L1Hit)
	offBits, setMask := e.geom.OffsetBits(), e.geom.SetMask()
	for _, i := range e.miss {
		addr := addrs[i]
		e.tr.Observe(int((addr >> offBits) & setMask))
		if e.l2.AccessHit(addr) {
			e.cycles += uint64(e.lat.L2Hit)
		} else {
			e.cycles += uint64(e.lat.Memory)
		}
	}
}

// evalPool recycles evaluator state (two cache models and an RCD tracker)
// across sweep candidates. Every part is rewound before use — cache.Reset
// and rcd.Reset leave state indistinguishable from freshly constructed — so
// which candidate reuses which evaluator cannot influence results.
var evalPool parsim.Pool[*evalSink]

// l2Geom is the fixed 256KiB 8-way private L2 of the cost model.
func l2Geom(geom mem.Geometry) mem.Geometry {
	return mem.MustGeometry(geom.LineSize, 512, 8)
}

func evaluate(p *workloads.Program, geom mem.Geometry, maxRefs uint64) Candidate {
	e := evalPool.Get()
	if e == nil || e.geom != geom {
		e = &evalSink{
			geom: geom,
			l1:   cache.New(geom, cache.LRU, nil),
			l2:   cache.New(l2Geom(geom), cache.LRU, nil),
			tr:   rcd.New(geom.Sets),
		}
	} else {
		e.l1.Reset()
		e.l2.Reset()
		e.tr.Reset(geom.Sets)
	}
	e.lat = mem.Broadwell().Lat
	e.maxRefs = maxRefs
	e.n, e.cycles = 0, 0
	p.Run(e)
	c := Candidate{
		Misses:   e.l1.Misses,
		L2Misses: e.l2.Misses,
		Cycles:   e.cycles,
		CF:       e.tr.ContributionFactor(rcd.DefaultThreshold),
	}
	evalPool.Put(e)
	return c
}
