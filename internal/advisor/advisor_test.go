package advisor

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/objfile"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// columnWalk builds a kernel that sweeps an n x n float64 matrix by
// columns — the canonical padding-fixable conflict when n*8 is a multiple
// of the L1 set span.
func columnWalk(n int) func(pad uint64) *workloads.Program {
	return func(pad uint64) *workloads.Program {
		b := objfile.NewBuilder("colwalk")
		b.Func("main")
		b.Loop("cw.c", 1)
		b.Loop("cw.c", 2)
		ld := b.Load("cw.c", 3)
		b.EndLoop()
		b.EndLoop()
		bin := b.Finish()
		ar := alloc.NewArena()
		m := alloc.NewMatrix2D(ar, "m", n, n, 8, pad)
		return workloads.NewProgram("colwalk", bin, ar, func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for c := 0; c < n; c++ {
				for r := 0; r < n; r++ {
					sink.Ref(trace.Ref{IP: ld, Addr: m.At(r, c)})
				}
			}
		})
	}
}

// rowWalk is the conflict-free control: the same matrix swept row-major.
func rowWalk(n int) func(pad uint64) *workloads.Program {
	return func(pad uint64) *workloads.Program {
		b := objfile.NewBuilder("rowwalk")
		b.Func("main")
		b.Loop("rw.c", 1)
		ld := b.Load("rw.c", 2)
		b.EndLoop()
		bin := b.Finish()
		ar := alloc.NewArena()
		m := alloc.NewMatrix2D(ar, "m", n, n, 8, pad)
		return workloads.NewProgram("rowwalk", bin, ar, func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for r := 0; r < n; r++ {
				for c := 0; c < n; c++ {
					sink.Ref(trace.Ref{IP: ld, Addr: m.At(r, c)})
				}
			}
		})
	}
}

func TestRecommendsPadForColumnWalk(t *testing.T) {
	// 512x512 doubles: 4KiB rows, so every row starts at L1 set 0.
	res, err := RecommendPad(columnWalk(512), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Pad == 0 {
		t.Fatalf("advisor kept pad 0 for a conflicting layout: %+v", res.Candidates)
	}
	if res.Improvement() < 0.5 {
		t.Errorf("improvement = %.2f, want > 0.5", res.Improvement())
	}
	if res.Best.CF >= res.Baseline.CF {
		t.Errorf("cf did not drop: %.2f -> %.2f", res.Baseline.CF, res.Best.CF)
	}
	// The classic fix is one line (64B) or less; anything <= 128 is sane.
	if res.Best.Pad > 128 {
		t.Errorf("recommended pad %d is wastefully large", res.Best.Pad)
	}
}

func TestKeepsZeroPadForRowWalk(t *testing.T) {
	res, err := RecommendPad(rowWalk(256), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Pad != 0 {
		t.Errorf("advisor recommended pad %d for a streaming kernel", res.Best.Pad)
	}
	if res.Improvement() > 0.05 {
		t.Errorf("claimed improvement %.2f on an already-optimal layout", res.Improvement())
	}
}

func TestMatchesPaperADIPad(t *testing.T) {
	// The paper pads ADI rows by 32 bytes; the advisor should find an
	// equally small fix for the ADI case study.
	res, err := RecommendPad(func(pad uint64) *workloads.Program {
		// Rebuild ADI's original at the candidate pad by constructing
		// the case study and selecting by pad: pad 0 = original layout.
		return adiAt(pad)
	}, Options{Pads: []uint64{0, 32, 64, 288}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Pad != 32 {
		t.Errorf("recommended pad = %d, want 32 (the paper's fix): %+v", res.Best.Pad, res.Candidates)
	}
}

// adiAt rebuilds a small ADI at an arbitrary pad via the column-walk proxy
// over three matrices (the access structure that matters for padding).
func adiAt(pad uint64) *workloads.Program {
	const n = 256
	b := objfile.NewBuilder("adi-proxy")
	b.Func("main")
	b.Loop("adi.c", 7)
	b.Loop("adi.c", 8)
	ldU := b.Load("adi.c", 9)
	ldA := b.Load("adi.c", 9)
	ldB := b.Load("adi.c", 9)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()
	ar := alloc.NewArena()
	u := alloc.NewMatrix2D(ar, "u", n, n, 8, pad)
	av := alloc.NewMatrix2D(ar, "a", n, n, 8, pad)
	bv := alloc.NewMatrix2D(ar, "b", n, n, 8, pad)
	return workloads.NewProgram("adi-proxy", bin, ar, func(tid, threads int, sink trace.Sink) {
		if tid != 0 {
			return
		}
		for i1 := 0; i1 < n; i1++ {
			for i2 := 1; i2 < n; i2++ {
				sink.Ref(trace.Ref{IP: ldU, Addr: u.At(i2, i1)})
				sink.Ref(trace.Ref{IP: ldA, Addr: av.At(i2, i1)})
				sink.Ref(trace.Ref{IP: ldB, Addr: bv.At(i2-1, i1)})
			}
		}
	})
}

func TestOptionsValidation(t *testing.T) {
	if _, err := RecommendPad(nil, Options{}); err == nil {
		t.Error("nil build should error")
	}
	if _, err := RecommendPad(rowWalk(16), Options{Pads: []uint64{}}); err == nil {
		t.Error("empty pad list should error")
	}
}

func TestMaxRefsCap(t *testing.T) {
	res, err := RecommendPad(columnWalk(256), Options{
		Pads:    []uint64{0, 64},
		MaxRefs: 10_000,
		Geom:    mem.L1Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Misses > 10_000 {
			t.Errorf("candidate simulated more than MaxRefs: %+v", c)
		}
	}
}

func TestDuplicatePadsDeduplicated(t *testing.T) {
	res, err := RecommendPad(rowWalk(16), Options{Pads: []uint64{0, 64, 64, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Errorf("candidates = %d, want 2 after dedup", len(res.Candidates))
	}
}
