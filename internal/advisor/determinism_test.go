package advisor

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/workloads"
)

// TestRecommendPadSerialParallelIdentical pins the sweep executor's core
// guarantee for the advisor: the full result — every candidate's exact
// miss counts, cycles and CF, the recommendation, and the pruning list —
// is byte-identical whether the pad candidates are evaluated serially or
// fanned across eight workers.
func TestRecommendPadSerialParallelIdentical(t *testing.T) {
	cs := workloads.NewADI(256, 1)
	run := func(workers int) []byte {
		res, err := RecommendPad(cs.PadBuilder, Options{
			Workers: workers,
			MaxRefs: 300000,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("advisor sweep differs between -j1 and -j8:\n%s\n---\n%s", serial, parallel)
	}
}
