package advisor

import (
	"testing"

	"repro/internal/workloads"
)

// caseStudyFixes pairs each paper case study (at quick scale) with its fix
// family: the pad sizes that break the conflicting alignment the way the
// paper's hand fix does (§6 pads one element row, one cache line, or a few
// lines; Kripke's real fix is a loop interchange, so any alignment-breaking
// pad is acceptable there).
func caseStudyFixes() []struct {
	cs     *workloads.CaseStudy
	family []uint64 // nil = any non-zero pad
} {
	return []struct {
		cs     *workloads.CaseStudy
		family []uint64
	}{
		{workloads.NewNW(512, 16), []uint64{16, 32, 64, 96, 128}},
		{workloads.NewFFT(128), []uint64{8, 16, 32, 64, 128}},
		{workloads.NewADI(256, 1), []uint64{8, 16, 32, 64}},
		{workloads.NewTinyDNN(128, 1024, 1), []uint64{8, 16, 32, 64}},
		{workloads.NewKripke(64, 32, 32), nil},
		{workloads.NewHimeno(16, 16, 64, 1), []uint64{8, 16, 32, 64}},
	}
}

// TestAdvisorFixesAllCaseStudies sweeps the full candidate list for every
// case study: each original layout must be improvable, and the recommended
// pad must land in the paper's fix family.
func TestAdvisorFixesAllCaseStudies(t *testing.T) {
	for _, c := range caseStudyFixes() {
		res, err := RecommendPad(c.cs.PadBuilder, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.cs.Name, err)
		}
		if res.Best.Pad == 0 {
			t.Errorf("%s: advisor kept the conflicting pad-0 layout", c.cs.Name)
			continue
		}
		if res.Improvement() <= 0 {
			t.Errorf("%s: improvement %.3f, want > 0", c.cs.Name, res.Improvement())
		}
		if res.Best.CF >= res.Baseline.CF {
			t.Errorf("%s: cf did not drop: %.3f -> %.3f",
				c.cs.Name, res.Baseline.CF, res.Best.CF)
		}
		if c.family != nil && !containsPad(c.family, res.Best.Pad) {
			t.Errorf("%s: recommended pad %d outside the paper's fix family %v",
				c.cs.Name, res.Best.Pad, c.family)
		}
	}
}

// TestStaticFirstMatchesFullSweep pins the static pruning contract on all
// six case studies: same recommendation as the full sweep, from strictly
// fewer cache simulations.
func TestStaticFirstMatchesFullSweep(t *testing.T) {
	for _, c := range caseStudyFixes() {
		full, err := RecommendPad(c.cs.PadBuilder, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.cs.Name, err)
		}
		sb := c.cs.SpecBuilder()
		if sb == nil {
			t.Fatalf("%s: case study has no spec builder", c.cs.Name)
		}
		sf, err := RecommendPad(c.cs.PadBuilder, Options{StaticFirst: true, Spec: sb})
		if err != nil {
			t.Fatalf("%s: %v", c.cs.Name, err)
		}
		if sf.Best.Pad != full.Best.Pad {
			t.Errorf("%s: StaticFirst recommended pad %d, full sweep %d",
				c.cs.Name, sf.Best.Pad, full.Best.Pad)
		}
		if len(sf.Candidates) >= len(full.Candidates) {
			t.Errorf("%s: StaticFirst simulated %d candidates, full sweep %d — pruning bought nothing",
				c.cs.Name, len(sf.Candidates), len(full.Candidates))
		}
		if len(sf.Pruned)+len(sf.Candidates) != len(full.Candidates) {
			t.Errorf("%s: pruned %d + simulated %d != %d candidates",
				c.cs.Name, len(sf.Pruned), len(sf.Candidates), len(full.Candidates))
		}
	}
}

// TestStaticFirstWithoutSpecFallsBack ensures StaticFirst without a spec
// builder degrades to the full sweep instead of failing.
func TestStaticFirstWithoutSpecFallsBack(t *testing.T) {
	res, err := RecommendPad(columnWalk(512), Options{StaticFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pruned) != 0 {
		t.Errorf("pruned %v with no spec available", res.Pruned)
	}
	if res.Best.Pad == 0 {
		t.Error("fallback sweep missed the column-walk conflict")
	}
}

func containsPad(pads []uint64, pad uint64) bool {
	for _, p := range pads {
		if p == pad {
			return true
		}
	}
	return false
}
