package specgen

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/staticconf"
)

// synthRec is one analyzable event lowered to concrete numbers, before
// window inference.
type synthRec struct {
	ip    *vIP
	block vBlock
	base  uint64
	elem  uint64
	dims  []staticconf.Dim
	write bool
}

// synthesize turns the event stream of one runThread execution into a
// staticconf.Spec plus the list of unanalyzable sites.
//
// Per event:
//   - dims follow the live loop nest outermost-first; the stride of each
//     dimension is the address expression's coefficient of its induction
//     variable (zero-stride dims model temporal multiplicity);
//   - enclosing variables absorbed by a fresh wavefront rebinding are
//     dropped (their iteration count is already covered by the fresh
//     rectangular variable);
//   - trip-1 dims are dropped (they contribute neither refs nor footprint);
//   - negative strides are reflected (base moved to the minimum address,
//     stride negated), which is exact per dimension;
//   - Elem is the innermost non-zero stride when it is ≤ one line, else
//     the 8-byte default.
//
// Window inference then extends each access's reuse window outward while
// the window footprint (exact distinct-line enumeration) fits a budget of
// half the cache divided by the number of analyzed accesses in the same
// innermost loop — the heuristic counterpart of "everything the loop body
// streams must share the cache".
func synthesize(kernel string, events []refEvent, arena *vArena, g mem.Geometry) *Extraction {
	ex := &Extraction{Kernel: kernel, Events: len(events)}
	for _, b := range arena.blocks {
		ex.Blocks = append(ex.Blocks, Block{Name: b.name, Start: b.start, Size: b.size})
	}
	seenBad := map[string]bool{}
	var recs []synthRec

	for _, ev := range events {
		if ev.ip == nil {
			continue
		}
		why := ev.why
		var rec synthRec
		if why == "" {
			r, badWhy := lowerEvent(ev, arena)
			if badWhy != "" {
				why = badWhy
			} else {
				rec = r
			}
		}
		if why != "" {
			key := fmt.Sprintf("%s:%d|%s", ev.ip.file, ev.ip.line, why)
			if !seenBad[key] {
				seenBad[key] = true
				ex.Unanalyzable = append(ex.Unanalyzable, Site{
					IP:    fmt.Sprintf("%s:%d", ev.ip.file, ev.ip.line),
					Loop:  ev.ip.loop,
					Write: ev.ip.write,
					Why:   why,
				})
			}
			continue
		}
		ex.AffineEvents++
		recs = append(recs, rec)
	}
	sort.Slice(ex.Unanalyzable, func(i, j int) bool {
		a, b := ex.Unanalyzable[i], ex.Unanalyzable[j]
		if a.IP != b.IP {
			return a.IP < b.IP
		}
		return a.Why < b.Why
	})
	if len(recs) == 0 {
		return ex
	}

	recs = dedupeExact(recs, ex)

	// Window budget: half the cache shared by the analyzable accesses of
	// the same innermost loop.
	groupCount := map[string]int{}
	for _, r := range recs {
		groupCount[r.ip.loop]++
	}
	budget := func(loop string) int64 {
		n := groupCount[loop]
		if n < 1 {
			n = 1
		}
		return int64(g.Size()/2) / int64(n)
	}

	spec := &staticconf.Spec{Kernel: kernel}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].ip.id != recs[j].ip.id {
			return recs[i].ip.id < recs[j].ip.id
		}
		return recs[i].base < recs[j].base
	})
	// Streams are chunked against one set span: a precessing stream then
	// demands at most one line per set, while an aliasing (set-camping)
	// stream still concentrates its chunk on few sets and is flagged.
	span := int64(g.Sets * g.LineSize)
	for _, r := range recs {
		chunkBudget := budget(r.ip.loop)
		if span < chunkBudget {
			chunkBudget = span
		}
		dims := chunkStream(r.dims, chunkBudget)
		spec.Accesses = append(spec.Accesses, staticconf.Access{
			Array:  r.block.name,
			Loop:   r.ip.loop,
			Base:   r.base,
			Elem:   r.elem,
			Dims:   dims,
			Window: inferWindow(dims, budget(r.ip.loop)),
			Write:  r.write,
		})
	}
	ex.Spec = spec
	return ex
}

// lowerEvent converts one affine event to concrete dims; the returned
// string is non-empty when the event is unanalyzable after all.
func lowerEvent(ev refEvent, arena *vArena) (synthRec, string) {
	live := map[*ivar]bool{}
	for _, iv := range ev.ivs {
		live[iv] = true
	}
	for _, t := range ev.addr.terms {
		if !live[t.iv] {
			// An induction variable escaped its loop (through a loop
			// exit value that kept a symbolic term). Not affine in the
			// live nest.
			return synthRec{}, "address depends on an out-of-scope loop variable"
		}
	}

	// A fresh rebinding and its source variables describe the same
	// iterations twice; keep exactly one side. When the address walks the
	// fresh variable (non-zero coefficient) the sources' zero-stride dims
	// are absorbed into it; when the address ignores the fresh variable
	// the sources keep their multiplicity dims and the fresh dim is
	// dropped instead.
	absorbed := map[*ivar]bool{}
	for _, iv := range ev.ivs {
		if iv.fresh && ev.addr.coeff(iv) != 0 {
			for _, src := range iv.sources {
				absorbed[src] = true
			}
		}
	}

	base := ev.addr.c0
	var dims []staticconf.Dim
	for _, iv := range ev.ivs {
		stride := ev.addr.coeff(iv)
		if iv.trip <= 1 {
			continue
		}
		if stride == 0 && (absorbed[iv] || (iv.fresh && len(iv.sources) > 0)) {
			continue
		}
		if stride < 0 {
			// Reflect: walk the dimension from its minimum address.
			base += stride * int64(iv.trip-1)
			stride = -stride
		}
		dims = append(dims, staticconf.Dim{Stride: stride, Trip: iv.trip})
	}
	if base < 0 {
		return synthRec{}, fmt.Sprintf("negative address %d after reflection", base)
	}
	block, ok := arena.find(uint64(base))
	if !ok {
		return synthRec{}, fmt.Sprintf("address %#x outside every arena allocation", base)
	}

	// Element size: the smallest non-zero stride is the distance between
	// consecutive references of the densest dimension — the access
	// granularity — whenever it is sub-line; otherwise fall back to 8.
	elem := uint64(8)
	minStride := int64(0)
	for _, d := range dims {
		if d.Stride != 0 && (minStride == 0 || d.Stride < minStride) {
			minStride = d.Stride
		}
	}
	if minStride > 0 && minStride <= 64 {
		elem = uint64(minStride)
	}
	return synthRec{
		ip:    ev.ip,
		block: block,
		base:  uint64(base),
		elem:  elem,
		dims:  dims,
		write: ev.write,
	}, ""
}

// dedupeExact folds events that are byte-for-byte identical (same site,
// same base, same dims) into one record, recording the multiplicity as a
// zero-stride outermost dim.
func dedupeExact(recs []synthRec, ex *Extraction) []synthRec {
	key := func(r synthRec) string {
		return fmt.Sprintf("%d|%d|%v", r.ip.id, r.base, r.dims)
	}
	counts := map[string]int{}
	order := []string{}
	first := map[string]synthRec{}
	for _, r := range recs {
		k := key(r)
		if counts[k] == 0 {
			order = append(order, k)
			first[k] = r
		}
		counts[k]++
	}
	if len(order) == len(recs) {
		return recs
	}
	out := make([]synthRec, 0, len(order))
	for _, k := range order {
		r := first[k]
		if n := counts[k]; n > 1 {
			r.dims = append([]staticconf.Dim{{Stride: 0, Trip: n}}, r.dims...)
			ex.Notes = append(ex.Notes,
				fmt.Sprintf("site %s:%d emits %d identical reference streams; folded into a multiplicity dim",
					r.ip.file, r.ip.line, n))
		}
		out = append(out, r)
	}
	return out
}

// chunkStream splits the innermost dim when even a window of that dim
// alone overflows the budget: a dimension streaming hundreds of lines
// with no reuse (a copy loop, a column halo walk) would otherwise count
// its whole walk as concurrently live and drown the per-set demand in
// uniform streaming pressure. The split is exact — c divides the trip, so
// {s, T} becomes {s·c, T/c}{s, c}, the same address sequence tiled to the
// budget — mirroring how hand specs keep one row of a stream in-window.
func chunkStream(dims []staticconf.Dim, budgetBytes int64) []staticconf.Dim {
	n := len(dims)
	if n == 0 {
		return dims
	}
	last := dims[n-1]
	if last.Stride == 0 || footprintFits([]staticconf.Dim{last}, budgetBytes) {
		return dims
	}
	best := 0
	for c := 2; c < last.Trip; c++ {
		if last.Trip%c != 0 {
			continue
		}
		if footprintFits([]staticconf.Dim{{Stride: last.Stride, Trip: c}}, budgetBytes) {
			best = c
		} else {
			break
		}
	}
	if best == 0 {
		return dims
	}
	out := append([]staticconf.Dim{}, dims[:n-1]...)
	return append(out,
		staticconf.Dim{Stride: last.Stride * int64(best), Trip: last.Trip / best},
		staticconf.Dim{Stride: last.Stride, Trip: best})
}

// inferWindow extends the reuse window outward from the innermost dim
// while the window's exact distinct-line footprint fits the budget.
func inferWindow(dims []staticconf.Dim, budgetBytes int64) int {
	if len(dims) == 0 {
		return 1
	}
	w := 1
	for cand := 2; cand <= len(dims); cand++ {
		if footprintFits(dims[len(dims)-cand:], budgetBytes) {
			w = cand
		} else {
			break
		}
	}
	// The innermost dim is always part of the window; w=1 needs no check.
	return w
}

// footprintFits enumerates the distinct lines of the dim suffix (skipping
// zero strides, which add no footprint) and reports whether they fit the
// byte budget. The enumeration exits early once the budget is exceeded and
// gives up (reporting "does not fit") past an iteration cap.
func footprintFits(dims []staticconf.Dim, budgetBytes int64) bool {
	var walk []staticconf.Dim
	for _, d := range dims {
		if d.Stride != 0 && d.Trip > 1 {
			walk = append(walk, d)
		}
	}
	if len(walk) == 0 {
		return true
	}
	maxLines := budgetBytes / 64
	if maxLines < 1 {
		return false
	}
	const iterCap = 1 << 20
	lines := map[int64]struct{}{}
	idx := make([]int, len(walk))
	iters := 0
	for {
		iters++
		if iters > iterCap {
			return false
		}
		var addr int64
		for i, d := range walk {
			addr += int64(idx[i]) * d.Stride
		}
		lines[addr>>6] = struct{}{}
		if int64(len(lines)) > maxLines {
			return false
		}
		// Odometer increment, innermost last.
		i := len(walk) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < walk[i].Trip {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return true
		}
	}
}
