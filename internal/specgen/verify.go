package specgen

import (
	"fmt"
	"strings"

	"repro/internal/staticconf"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Trace-based spec verifier: replay a program's real reference stream and
// check that a spec (hand-declared or extracted) describes it. Per arena
// block it compares
//
//   - footprint, both directions: the spec's distinct-line set must cover
//     at least CoverageMin of the lines the trace actually touches, and at
//     least SpecHitMin of the spec's lines must be touched (no phantom
//     footprint);
//   - volume: the spec's reference count must be within a factor of
//     VolumeRatioMax of the traced count (per-site vs merged accesses and
//     rectangular hulls make this a loose bound, like the drift lint's).
//
// Blocks touched by Approx accesses get volume checks only (a rectangular
// stand-in for a random window walks different lines than any one run),
// and the trace-coverage direction is skipped entirely when the spec's
// kernel had unanalyzable sites (the spec is then knowingly partial).

const (
	// CoverageMin is the minimum fraction of traced lines the spec must
	// cover in a block with complete, exact spec accesses.
	CoverageMin = 0.95
	// SpecHitMin is the minimum fraction of spec lines the trace must
	// actually touch. Rectangular hulls of triangular domains still touch
	// every row and column, so this direction is tight.
	SpecHitMin = 0.80
)

// BlockVerdict is the verification result for one arena block.
type BlockVerdict struct {
	Array       string
	OK          bool
	Why         string
	TracedLines int
	SpecLines   int
	Coverage    float64 // traced lines covered by spec (-1 when skipped)
	SpecHit     float64 // spec lines touched by trace (-1 when skipped)
	TracedRefs  int64
	SpecRefs    int64
	VolumeRatio float64 // spec refs / traced refs
}

// VerifyReport is the full trace-verification result for one program.
type VerifyReport struct {
	Kernel  string
	Partial bool // spec had unanalyzable sites; coverage direction skipped
	Blocks  []BlockVerdict
}

// Clean reports whether every verified block agreed.
func (r *VerifyReport) Clean() bool {
	for _, b := range r.Blocks {
		if !b.OK {
			return false
		}
	}
	return true
}

func (r *VerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace verify %s:\n", r.Kernel)
	for _, v := range r.Blocks {
		verdict := "ok"
		if !v.OK {
			verdict = "MISMATCH: " + v.Why
		}
		fmt.Fprintf(&b, "  %-22s %s (refs %d vs spec %d", v.Array, verdict, v.TracedRefs, v.SpecRefs)
		if v.Coverage >= 0 {
			fmt.Fprintf(&b, ", coverage %.3f", v.Coverage)
		}
		if v.SpecHit >= 0 {
			fmt.Fprintf(&b, ", spec-hit %.3f", v.SpecHit)
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// VerifyTrace replays prog's sequential reference stream and verifies spec
// against it. partial marks the spec as knowingly incomplete (extracted
// with unanalyzable sites): the trace-coverage direction is then skipped.
func VerifyTrace(prog *workloads.Program, spec *staticconf.Spec, partial bool) *VerifyReport {
	rep := &VerifyReport{Kernel: prog.Name, Partial: partial}
	if spec == nil {
		return rep
	}
	blocks := prog.Arena.Blocks()

	type tally struct {
		lines map[int64]struct{}
		refs  int64
	}
	traced := make([]tally, len(blocks))
	for i := range traced {
		traced[i].lines = map[int64]struct{}{}
	}
	find := func(addr uint64) int {
		for i, b := range blocks {
			if b.Contains(addr) {
				return i
			}
		}
		return -1
	}
	prog.Run(trace.SinkFunc(func(r trace.Ref) {
		if i := find(r.Addr); i >= 0 {
			traced[i].refs++
			traced[i].lines[int64(r.Addr)>>6] = struct{}{}
		}
	}))

	for i, blk := range blocks {
		var accs []staticconf.Access
		approx := false
		for _, a := range spec.Accesses {
			if blk.Contains(a.Base) {
				accs = append(accs, a)
				approx = approx || a.Approx
			}
		}
		if len(accs) == 0 {
			// The spec covers dominant references only; untracked setup
			// or auxiliary traffic is not a spec violation.
			continue
		}
		v := BlockVerdict{
			Array: blk.Name, Coverage: -1, SpecHit: -1,
			TracedRefs: traced[i].refs, TracedLines: len(traced[i].lines),
			SpecRefs: volume(accs),
		}
		if v.TracedRefs == 0 {
			v.Why = "spec describes a block the trace never touches"
			rep.Blocks = append(rep.Blocks, v)
			continue
		}
		v.VolumeRatio = float64(v.SpecRefs) / float64(v.TracedRefs)
		if v.VolumeRatio > VolumeRatioMax || v.VolumeRatio < 1/VolumeRatioMax {
			v.Why = fmt.Sprintf("reference volume ×%.2f off the trace", v.VolumeRatio)
			rep.Blocks = append(rep.Blocks, v)
			continue
		}

		sb := Block{Name: blk.Name, Start: blk.Start, Size: blk.Size}
		specLines, ok := lineSet(accs, sb)
		if ok && !approx {
			v.SpecLines = len(specLines)
			hit := 0
			for l := range specLines {
				if _, t := traced[i].lines[l]; t {
					hit++
				}
			}
			if len(specLines) > 0 {
				v.SpecHit = float64(hit) / float64(len(specLines))
			}
			covered := 0
			for l := range traced[i].lines {
				if _, s := specLines[l]; s {
					covered++
				}
			}
			v.Coverage = float64(covered) / float64(len(traced[i].lines))
			if !partial && v.Coverage < CoverageMin {
				v.Why = fmt.Sprintf("spec covers only %.3f of traced lines", v.Coverage)
				rep.Blocks = append(rep.Blocks, v)
				continue
			}
			if v.SpecHit >= 0 && v.SpecHit < SpecHitMin {
				v.Why = fmt.Sprintf("trace touches only %.3f of spec lines (phantom footprint)", v.SpecHit)
				rep.Blocks = append(rep.Blocks, v)
				continue
			}
		}
		v.OK = true
		rep.Blocks = append(rep.Blocks, v)
	}
	return rep
}
