package specgen

import (
	"fmt"
	"sort"

	"repro/internal/analytic"
	"repro/internal/mem"
	"repro/internal/staticconf"
)

// Finding kinds reported by the conflict lint.
const (
	// FindingStaticConflict: the static analyzer predicts a cache-set
	// conflict for the extracted spec — the authoritative signal.
	FindingStaticConflict = "static-conflict"
	// FindingPow2Stride: a loop dimension walks a power-of-two stride
	// that revisits a handful of sets far beyond associativity.
	FindingPow2Stride = "pow2-stride"
	// FindingSetCamping: as above with a non-power-of-two stride (row
	// sizes whose gcd with the set span is still large).
	FindingSetCamping = "set-camping"
	// FindingAliasingBases: distinct arrays whose bases map to the same
	// set march in lockstep through a span-multiple stride, so every
	// iteration stacks their lines on one set.
	FindingAliasingBases = "aliasing-bases"
)

// Finding is one conflict-prone pattern in one extracted kernel.
type Finding struct {
	Ctor   string // constructor the kernel came from, e.g. "Hotspot" or "NewADI/Original"
	Kernel string // kernel name the extraction reported
	Array  string // offending array ("a, b" for pair findings, "" for whole-kernel findings)
	Loop   string // innermost loop of the offending access, "" for whole-kernel findings
	Kind   string
	Detail string
	// PredictedCF is the closed-form analytic model's predicted
	// contribution factor for the whole kernel — how much of the miss
	// stream the conflict signature would claim if the pattern is real.
	PredictedCF float64
	// Severity buckets PredictedCF: high (≥ 0.7), medium (≥ 0.25),
	// low otherwise.
	Severity string
}

func (f Finding) String() string {
	loc := f.Kernel
	if f.Loop != "" {
		loc += " " + f.Loop
	}
	if f.Array != "" {
		loc += " [" + f.Array + "]"
	}
	return fmt.Sprintf("%s: %s: %s: %s [severity %s, predicted cf %.0f%%]",
		f.Ctor, loc, f.Kind, f.Detail, f.Severity, 100*f.PredictedCF)
}

// SeverityOf buckets a predicted contribution factor into the lint's
// severity bands: a kernel whose conflict signature would dominate the
// miss stream is high, one that merely crosses the conflict threshold
// is medium, anything below is low.
func SeverityOf(cf float64) string {
	switch {
	case cf >= 0.7:
		return "high"
	case cf >= 0.25:
		return "medium"
	default:
		return "low"
	}
}

// LintedKernel records one kernel the lint managed to extract and check.
type LintedKernel struct {
	Ctor     string
	Kernel   string
	Findings int
}

// LintReport is the outcome of linting one package directory.
type LintReport struct {
	Dir      string
	Kernels  []LintedKernel
	Findings []Finding
	// Skipped maps package-level functions that were not linted to the
	// reason (parameters required, not a kernel constructor, ...).
	Skipped map[string]string
}

// LintDir parses the package in dir and lints every kernel reachable from
// a niladic package-level constructor: each function is interpreted with
// the same machinery as spec extraction, and any Program or CaseStudy it
// returns has its extracted spec checked for conflict-prone patterns.
// Functions that take parameters or do not build kernels are skipped.
func LintDir(dir string, g mem.Geometry) (*LintReport, error) {
	p, err := Load(dir)
	if err != nil {
		return nil, err
	}
	rep := &LintReport{Dir: dir, Skipped: map[string]string{}}
	for _, name := range p.Funcs() {
		fd := p.funcs[name]
		if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
			rep.Skipped[name] = "takes parameters; lint covers niladic constructors"
			continue
		}
		exs, why := p.lintExtract(g, name)
		if why != "" {
			rep.Skipped[name] = why
			continue
		}
		for _, le := range exs {
			fs := lintExtraction(le.label, le.ex, g)
			rep.Kernels = append(rep.Kernels, LintedKernel{Ctor: le.label, Kernel: le.ex.Kernel, Findings: len(fs)})
			rep.Findings = append(rep.Findings, fs...)
		}
	}
	return rep, nil
}

type lintedExtraction struct {
	label string
	ex    *Extraction
}

// lintExtract interprets one niladic constructor and extracts every
// Program it yields. The interpreter is exercised on arbitrary package
// code here, so a panic is downgraded to a skip reason.
func (p *Package) lintExtract(g mem.Geometry, ctor string) (out []lintedExtraction, why string) {
	defer func() {
		if r := recover(); r != nil {
			out, why = nil, fmt.Sprintf("interpreter panic: %v", r)
		}
	}()
	in := p.newInterp()
	st, err := in.callCtor(ctor, nil)
	if err != nil {
		return nil, fmt.Sprintf("not a kernel constructor: %v", err)
	}
	if _, isProg := st.fields["runThread"].(*vClosure); isProg {
		ex, err := in.extractFromProgram(st, g, ctor)
		if err != nil {
			return nil, err.Error()
		}
		return []lintedExtraction{{ctor, ex}}, ""
	}
	for _, part := range []string{"Original", "Optimized"} {
		prog, ok := st.fields[part].(*vStruct)
		if !ok {
			continue
		}
		ex, err := in.extractFromProgram(prog, g, ctor)
		if err != nil {
			return nil, err.Error()
		}
		out = append(out, lintedExtraction{ctor + "/" + part, ex})
	}
	if len(out) == 0 {
		return nil, "returns neither a Program nor a CaseStudy"
	}
	return out, ""
}

// lintExtraction runs the pattern checks over one extracted kernel.
func lintExtraction(label string, ex *Extraction, g mem.Geometry) []Finding {
	var out []Finding
	if ex.Spec == nil {
		return nil
	}
	// Tier-0 severity estimate: the closed-form model prices every
	// finding of the kernel with its predicted contribution factor.
	var predCF float64
	if ar, err := analytic.Analyze(ex.Spec, g, analytic.Options{}); err == nil {
		predCF = ar.PredictedCF
	}
	add := func(array, loop, kind, detail string) {
		out = append(out, Finding{Ctor: label, Kernel: ex.Kernel, Array: array, Loop: loop,
			Kind: kind, Detail: detail, PredictedCF: predCF, Severity: SeverityOf(predCF)})
	}

	// Authoritative check: the static conflict analyzer on the whole spec.
	if r, err := staticconf.Analyze(ex.Spec, g, staticconf.Options{}); err == nil && r.Conflict {
		add("", "", FindingStaticConflict, r.Reason)
	}

	// Per-dimension camping: strides whose walk revisits few sets many
	// more times than associativity covers.
	span := int64(g.Sets * g.LineSize)
	seen := map[string]bool{}
	for _, a := range ex.Spec.Accesses {
		for _, d := range a.Dims {
			distinct, lines := campingSets(a.Base, d, g)
			if distinct == 0 {
				continue
			}
			if distinct > g.Sets/4 || lines/distinct <= g.Ways {
				continue
			}
			kind := FindingSetCamping
			if d.Stride&(d.Stride-1) == 0 {
				kind = FindingPow2Stride
			}
			key := fmt.Sprintf("%s|%s|%s", a.Array, a.Loop, kind)
			if seen[key] {
				continue
			}
			seen[key] = true
			add(a.Array, a.Loop, kind, fmt.Sprintf(
				"stride %d walks %d lines over only %d/%d sets (%d lines per set, %d ways)",
				d.Stride, lines, distinct, g.Sets, lines/distinct, g.Ways))
		}
	}

	// Aliasing bases: distinct arrays, same loop, bases in the same set,
	// identical dims, and a span-multiple stride — the lockstep walk
	// lands every iteration's lines on one set.
	for i, a := range ex.Spec.Accesses {
		for _, b := range ex.Spec.Accesses[i+1:] {
			if a.Array == b.Array || a.Loop != b.Loop {
				continue
			}
			if setOf(a.Base, g) != setOf(b.Base, g) || !sameDims(a.Dims, b.Dims) {
				continue
			}
			if !hasSpanMultipleDim(a.Dims, span) {
				continue
			}
			pair := a.Array + ", " + b.Array
			key := fmt.Sprintf("%s|%s|%s", pair, a.Loop, FindingAliasingBases)
			if seen[key] {
				continue
			}
			seen[key] = true
			add(pair, a.Loop, FindingAliasingBases, fmt.Sprintf(
				"bases %#x and %#x share set %d and march in lockstep on a set-span stride",
				a.Base, b.Base, setOf(a.Base, g)))
		}
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// campingSets walks one dimension (capped at one full set-pattern period)
// and reports how many distinct sets and lines it touches. Dimensions that
// cannot camp (sub-line strides, trips the associativity covers) report 0.
func campingSets(base uint64, d staticconf.Dim, g mem.Geometry) (distinct, lines int) {
	if d.Stride < int64(g.LineSize) || d.Trip < 2*g.Ways {
		return 0, 0
	}
	steps := d.Trip
	if steps > 4096 {
		steps = 4096 // set patterns repeat within span/gcd(stride, span) ≤ 4096 steps
	}
	sets := map[int]bool{}
	for k := 0; k < steps; k++ {
		sets[setOf(base+uint64(k)*uint64(d.Stride), g)] = true
	}
	return len(sets), steps
}

func setOf(addr uint64, g mem.Geometry) int {
	return int(addr/uint64(g.LineSize)) % g.Sets
}

func hasSpanMultipleDim(dims []staticconf.Dim, span int64) bool {
	for _, d := range dims {
		if d.Stride != 0 && d.Trip >= 2 && d.Stride%span == 0 {
			return true
		}
	}
	return false
}
