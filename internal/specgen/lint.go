package specgen

import (
	"fmt"

	"repro/internal/mem"
)

// LintKernel is one kernel reachable from a niladic package-level
// constructor, extracted for the conflict lint. The pattern checks
// themselves live in internal/conflint; this side only interprets the
// package and synthesizes specs.
type LintKernel struct {
	// Ctor is the constructor function name, Variant the case-study
	// field the kernel came from ("Original"/"Optimized", "" for plain
	// Program constructors). Label is "Ctor" or "Ctor/Variant", matching
	// the labels in lint reports.
	Ctor    string
	Variant string
	Label   string
	Ex      *Extraction
}

// LintSet is everything the lint extracted from one package directory:
// the parsed package (kept for position lookup and source rewrites) and
// its kernels.
type LintSet struct {
	Dir     string
	Pkg     *Package
	Kernels []LintKernel
	// Skipped maps package-level functions that were not linted to the
	// reason (parameters required, not a kernel constructor, ...).
	Skipped map[string]string
}

// LintLoad parses the package in dir and extracts every kernel reachable
// from a niladic package-level constructor: each function is interpreted
// with the same machinery as spec extraction, and any Program or
// CaseStudy it returns is synthesized into an affine spec. Functions
// that take parameters or do not build kernels are skipped.
func LintLoad(dir string, g mem.Geometry) (*LintSet, error) {
	p, err := Load(dir)
	if err != nil {
		return nil, err
	}
	set := &LintSet{Dir: dir, Pkg: p}
	set.Kernels, set.Skipped = p.LintKernels(g)
	return set, nil
}

// LintKernels interprets every niladic package-level constructor and
// returns the extracted kernels plus the skip reasons for everything
// else.
func (p *Package) LintKernels(g mem.Geometry) ([]LintKernel, map[string]string) {
	var kernels []LintKernel
	skipped := map[string]string{}
	for _, name := range p.Funcs() {
		fd := p.funcs[name]
		if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
			skipped[name] = "takes parameters; lint covers niladic constructors"
			continue
		}
		exs, why := p.lintExtract(g, name, 0, 1)
		if why != "" {
			skipped[name] = why
			continue
		}
		kernels = append(kernels, exs...)
	}
	return kernels, skipped
}

// ExtractKernel re-extracts one kernel by constructor and variant, as
// returned in LintKernel. It is the re-scoring hook for source rewrites:
// load the package with an overlay, then extract the same kernel again.
func (p *Package) ExtractKernel(g mem.Geometry, ctor, variant string) (*Extraction, error) {
	return p.ExtractKernelTid(g, ctor, variant, 0, 1)
}

// ExtractKernelTid extracts one kernel's spec as seen by thread tid of
// threads: runThread is interpreted with those concrete arguments, so a
// kernel that partitions work by tid yields the per-thread access spec.
// The false-sharing analyzer compares these across tids.
func (p *Package) ExtractKernelTid(g mem.Geometry, ctor, variant string, tid, threads int) (*Extraction, error) {
	exs, why := p.lintExtract(g, ctor, tid, threads)
	if why != "" {
		return nil, fmt.Errorf("specgen: %s: %s", ctor, why)
	}
	for _, k := range exs {
		if k.Variant == variant {
			return k.Ex, nil
		}
	}
	return nil, fmt.Errorf("specgen: %s has no variant %q", ctor, variant)
}

// lintExtract interprets one niladic constructor and extracts every
// Program it yields, running runThread as thread tid of threads. The
// interpreter is exercised on arbitrary package code here, so a panic is
// downgraded to a skip reason.
func (p *Package) lintExtract(g mem.Geometry, ctor string, tid, threads int) (out []LintKernel, why string) {
	defer func() {
		if r := recover(); r != nil {
			out, why = nil, fmt.Sprintf("interpreter panic: %v", r)
		}
	}()
	in := p.newInterp()
	st, err := in.callCtor(ctor, nil)
	if err != nil {
		return nil, fmt.Sprintf("not a kernel constructor: %v", err)
	}
	if _, isProg := st.fields["runThread"].(*vClosure); isProg {
		ex, err := in.extractFromProgramTid(st, g, ctor, tid, threads)
		if err != nil {
			return nil, err.Error()
		}
		return []LintKernel{{Ctor: ctor, Label: ctor, Ex: ex}}, ""
	}
	for _, part := range []string{"Original", "Optimized"} {
		prog, ok := st.fields[part].(*vStruct)
		if !ok {
			continue
		}
		ex, err := in.extractFromProgramTid(prog, g, ctor, tid, threads)
		if err != nil {
			return nil, err.Error()
		}
		out = append(out, LintKernel{Ctor: ctor, Variant: part, Label: ctor + "/" + part, Ex: ex})
	}
	if len(out) == 0 {
		return nil, "returns neither a Program nor a CaseStudy"
	}
	return out, ""
}
