package specgen

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/staticconf"
)

// Package is a parsed workload package, ready for extraction runs. It
// holds only syntax; every extraction builds its own environment, so runs
// are independent.
type Package struct {
	fset    *token.FileSet
	files   []*ast.File
	funcs   map[string]*ast.FuncDecl // package-level functions (no methods)
	inits   []*ast.FuncDecl
	decls   []ast.Decl // package-level const/var decls, source order
	structs map[string]*ast.StructType
	imports map[string]string // local name → import path
}

// Load parses the non-test Go files of dir into a Package.
func Load(dir string) (*Package, error) { return LoadOverlay(dir, nil) }

// LoadOverlay is Load with an in-memory overlay: for file base names
// present in overlay, the given contents are parsed instead of the
// on-disk bytes. The conflict lint's pad-fix search uses this to
// re-extract a kernel from a candidate source edit without touching the
// tree. An overlay name not present on disk is ignored.
func LoadOverlay(dir string, overlay map[string][]byte) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("specgen: %w", err)
	}
	p := &Package{
		fset:    token.NewFileSet(),
		funcs:   map[string]*ast.FuncDecl{},
		structs: map[string]*ast.StructType{},
		imports: map[string]string{},
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var src any
		if o, ok := overlay[n]; ok {
			src = o
		}
		f, err := parser.ParseFile(p.fset, filepath.Join(dir, n), src, parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("specgen: parse %s: %w", n, err)
		}
		p.files = append(p.files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			local := path[strings.LastIndex(path, "/")+1:]
			if imp.Name != nil {
				local = imp.Name.Name
			}
			p.imports[local] = path
		}
		for _, d := range f.Decls {
			switch dd := d.(type) {
			case *ast.FuncDecl:
				if dd.Recv != nil {
					continue // methods are outside the modeled surface
				}
				if dd.Name.Name == "init" {
					p.inits = append(p.inits, dd)
					continue
				}
				p.funcs[dd.Name.Name] = dd
			case *ast.GenDecl:
				switch dd.Tok {
				case token.CONST, token.VAR:
					p.decls = append(p.decls, dd)
				case token.TYPE:
					for _, s := range dd.Specs {
						ts := s.(*ast.TypeSpec)
						if st, ok := ts.Type.(*ast.StructType); ok {
							p.structs[ts.Name.Name] = st
						}
					}
				}
			}
		}
	}
	if len(p.files) == 0 {
		return nil, fmt.Errorf("specgen: no Go files in %s", dir)
	}
	return p, nil
}

func (p *Package) structType(name string) *ast.StructType { return p.structs[name] }

// Fset returns the file set positions of the parsed files resolve
// against; Files the parsed files themselves. The conflict lint uses
// both to anchor diagnostics and suggested fixes at real source
// positions.
func (p *Package) Fset() *token.FileSet { return p.fset }

// Files returns the parsed files of the package, in file-name order.
func (p *Package) Files() []*ast.File { return p.files }

// FuncDecl returns the declaration of the named package-level function,
// or nil.
func (p *Package) FuncDecl(name string) *ast.FuncDecl { return p.funcs[name] }

// Funcs returns the names of the package-level functions, sorted.
func (p *Package) Funcs() []string {
	out := make([]string, 0, len(p.funcs))
	for n := range p.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WorkloadsDir locates internal/workloads relative to the enclosing module
// root, so extraction works from any working directory inside the repo.
func WorkloadsDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "internal", "workloads"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("specgen: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// newInterp builds a fresh environment: package functions as closures,
// package consts/vars evaluated in source order, init functions run (they
// populate the workload registry).
func (p *Package) newInterp() *interp {
	in := &interp{pkg: p, fuel: defaultFuel}
	in.root = newScope(nil)
	for name, fd := range p.funcs {
		in.root.define(name, &vClosure{fn: fd.Type, body: fd.Body, env: in.root, name: name})
	}
	for _, d := range p.decls {
		in.evalPkgDecl(d.(*ast.GenDecl))
	}
	for _, fd := range p.inits {
		if err := in.execBlock(fd.Body.List, newScope(in.root)); err != nil {
			in.note("init failed: %v", err)
		}
	}
	return in
}

// evalPkgDecl evaluates one package-level const/var declaration, with
// basic iota support for const blocks.
func (in *interp) evalPkgDecl(d *ast.GenDecl) {
	var lastValues []ast.Expr
	for i, s := range d.Specs {
		vs, ok := s.(*ast.ValueSpec)
		if !ok {
			continue
		}
		values := vs.Values
		if d.Tok == token.CONST {
			if len(values) == 0 {
				values = lastValues
			} else {
				lastValues = values
			}
		}
		env := in.root
		if d.Tok == token.CONST {
			env = newScope(in.root)
			env.define("iota", vInt(int64(i)))
		}
		for j, name := range vs.Names {
			var v value
			switch {
			case j < len(values):
				ev, err := in.eval(values[j], env)
				if err != nil {
					in.note("package-level %s: %v", name.Name, err)
					ev = unknown("failed package-level initializer")
				}
				v = ev
			case vs.Type != nil:
				v = in.zeroValue(vs.Type, env)
			default:
				v = unknown("uninitialized package variable")
			}
			in.root.define(name.Name, v)
		}
	}
}

// Block is one arena allocation of the extracted program, used by the
// drift lint and the trace verifier to clip footprints to real extents.
type Block struct {
	Name  string
	Start uint64
	Size  uint64
}

// Site is one reference site the extractor could not analyze, with the
// first cause of the taint.
type Site struct {
	IP    string // "file:line" of the emitting instruction
	Loop  string // innermost enclosing builder loop, "" at top level
	Write bool
	Why   string
}

// Extraction is the result of analyzing one Program variant.
type Extraction struct {
	Kernel string
	// Spec is the synthesized affine specification; nil when no
	// reference site was analyzable.
	Spec *staticconf.Spec
	// Unanalyzable lists the reference sites whose addresses are not
	// affine in the induction variables, with reasons.
	Unanalyzable []Site
	// Blocks lists the arena allocations, in allocation order.
	Blocks []Block
	// Events and AffineEvents count raw extraction events before
	// synthesis (one event per site per enclosing concrete iteration).
	Events       int
	AffineEvents int
	Notes        []string
}

// Analyzable reports whether every reference site was affine.
func (e *Extraction) Analyzable() bool {
	return len(e.Unanalyzable) == 0 && e.Spec != nil
}

// CaseStudyExtraction pairs the extractions of a case study's variants.
type CaseStudyExtraction struct {
	Name      string
	Original  *Extraction
	Optimized *Extraction
}

// ExtractProgram runs the constructor ctor with the given concrete
// arguments and synthesizes the spec of the Program it returns.
func (p *Package) ExtractProgram(g mem.Geometry, ctor string, args ...int) (*Extraction, error) {
	in := p.newInterp()
	prog, err := in.callCtor(ctor, args)
	if err != nil {
		return nil, err
	}
	return in.extractFromProgram(prog, g, ctor)
}

// ExtractCaseStudy runs a case-study constructor and synthesizes specs for
// both variants.
func (p *Package) ExtractCaseStudy(g mem.Geometry, ctor string, args ...int) (*CaseStudyExtraction, error) {
	in := p.newInterp()
	cs, err := in.callCtor(ctor, args)
	if err != nil {
		return nil, err
	}
	name := ctor
	if s, ok := cs.fields["Name"].(vStr); ok {
		name = string(s)
	}
	out := &CaseStudyExtraction{Name: name}
	for _, part := range []struct {
		field string
		dst   **Extraction
	}{{"Original", &out.Original}, {"Optimized", &out.Optimized}} {
		prog, ok := cs.fields[part.field].(*vStruct)
		if !ok {
			return nil, fmt.Errorf("specgen: %s: case study field %s is not a Program", ctor, part.field)
		}
		ex, err := in.extractFromProgram(prog, g, ctor)
		if err != nil {
			return nil, fmt.Errorf("specgen: %s %s: %w", ctor, part.field, err)
		}
		*part.dst = ex
	}
	return out, nil
}

// ExtractPadVariant runs a case-study constructor, invokes the case's
// PadBuilder closure with the given pad, and synthesizes the spec of the
// resulting Program. It is the extracted-spec counterpart of
// CaseStudy.SpecBuilder, letting the advisor's static-first pruning run
// without any hand-written spec.
func (p *Package) ExtractPadVariant(g mem.Geometry, ctor string, pad uint64, args ...int) (*Extraction, error) {
	in := p.newInterp()
	cs, err := in.callCtor(ctor, args)
	if err != nil {
		return nil, err
	}
	pb, ok := cs.fields["PadBuilder"].(*vClosure)
	if !ok {
		return nil, fmt.Errorf("specgen: %s: case study has no tracked PadBuilder", ctor)
	}
	res, err := in.callClosure(pb, []value{vInt(int64(pad))})
	if err != nil {
		return nil, fmt.Errorf("specgen: %s: PadBuilder(%d): %w", ctor, pad, err)
	}
	prog, ok := res.(*vStruct)
	if !ok {
		return nil, fmt.Errorf("specgen: %s: PadBuilder returned %T, want a Program", ctor, res)
	}
	return in.extractFromProgram(prog, g, ctor)
}

func (in *interp) callCtor(ctor string, args []int) (*vStruct, error) {
	c, ok := in.root.lookup(ctor)
	if !ok {
		return nil, fmt.Errorf("specgen: no function %s in package", ctor)
	}
	cl, ok := c.v.(*vClosure)
	if !ok {
		return nil, fmt.Errorf("specgen: %s is not a function", ctor)
	}
	vargs := make([]value, 0, len(args))
	for _, a := range args {
		vargs = append(vargs, vInt(int64(a)))
	}
	res, err := in.callClosure(cl, vargs)
	if err != nil {
		return nil, fmt.Errorf("specgen: %s: %w", ctor, err)
	}
	st, ok := res.(*vStruct)
	if !ok {
		return nil, fmt.Errorf("specgen: %s returned %T, want a struct value", ctor, res)
	}
	return st, nil
}

func (in *interp) extractFromProgram(prog *vStruct, g mem.Geometry, ctor string) (*Extraction, error) {
	return in.extractFromProgramTid(prog, g, ctor, 0, 1)
}

// extractFromProgramTid interprets runThread as thread tid of threads —
// the per-thread view a false-sharing check compares across tids.
func (in *interp) extractFromProgramTid(prog *vStruct, g mem.Geometry, ctor string, tid, threads int) (*Extraction, error) {
	name := ctor
	if s, ok := prog.fields["Name"].(vStr); ok {
		name = string(s)
	}
	arena, ok := prog.fields["Arena"].(*vArena)
	if !ok {
		return nil, fmt.Errorf("specgen: %s: Program.Arena was not tracked", name)
	}
	rt, ok := prog.fields["runThread"].(*vClosure)
	if !ok {
		return nil, fmt.Errorf("specgen: %s: Program.runThread was not tracked", name)
	}
	in.events = nil
	notesBefore := len(in.notes)
	if _, err := in.callClosure(rt, []value{vInt(int64(tid)), vInt(int64(threads)), vSink{}}); err != nil {
		return nil, fmt.Errorf("specgen: %s: runThread: %w", name, err)
	}
	ex := synthesize(name, in.events, arena, g)
	ex.Notes = append(ex.Notes, in.notes[notesBefore:]...)
	return ex, nil
}
