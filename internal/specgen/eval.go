package specgen

import (
	"fmt"
	"go/ast"
	"go/token"
)

// refEvent is one sink.Ref reached during abstract execution: an address
// expression (nil when unanalyzable) over the induction variables that
// were live when it fired.
type refEvent struct {
	ip    *vIP
	addr  *affine
	write bool
	why   string  // non-empty when addr is nil: first cause of the taint
	ivs   []*ivar // enclosing symbolic loops, outermost first
}

// interp is one extraction run's state.
type interp struct {
	pkg     *Package
	root    *scope // package-level environment
	events  []refEvent
	notes   []string
	ivStack []*ivar
	nextIV  int
	fuel    int
	callDep int
	quiet   int // >0 while running speculative evaluations (prescan)
}

const (
	defaultFuel   = 4 << 20
	maxEvents     = 1 << 17
	maxCallDepth  = 64
	maxConcIters  = 1 << 16 // non-affine loops executed concretely
	maxUnrollIter = 64      // range-over-literal unrolling
	maxEffectTrip = 256     // affine loops run concretely for alloc effects
)

// control-flow signals, threaded through the error return.
type ctrlSignal struct {
	kind string // "return", "break", "continue"
	vals vTuple
}

func (c *ctrlSignal) Error() string { return "specgen: control " + c.kind }

func (in *interp) note(format string, args ...interface{}) {
	if in.quiet == 0 && len(in.notes) < 256 {
		in.notes = append(in.notes, fmt.Sprintf(format, args...))
	}
}

func (in *interp) burn() error {
	in.fuel--
	if in.fuel <= 0 {
		return fmt.Errorf("specgen: evaluation budget exhausted")
	}
	return nil
}

func (in *interp) snapshotIVs() []*ivar {
	return append([]*ivar(nil), in.ivStack...)
}

func (in *interp) emit(ip *vIP, addr value, write bool) {
	if len(in.events) >= maxEvents {
		return
	}
	ev := refEvent{ip: ip, write: write, ivs: in.snapshotIVs()}
	switch a := addr.(type) {
	case *affine:
		ev.addr = a
	case vUnknown:
		ev.why = a.reason
	default:
		ev.why = fmt.Sprintf("address of unexpected kind %T", addr)
	}
	in.events = append(in.events, ev)
}

// ---- statements --------------------------------------------------------

func (in *interp) execBlock(stmts []ast.Stmt, env *scope) error {
	for _, st := range stmts {
		if err := in.execStmt(st, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) execStmt(st ast.Stmt, env *scope) error {
	if err := in.burn(); err != nil {
		return err
	}
	switch s := st.(type) {
	case *ast.BlockStmt:
		return in.execBlock(s.List, newScope(env))
	case *ast.ExprStmt:
		_, err := in.eval(s.X, env)
		return err
	case *ast.AssignStmt:
		return in.execAssign(s, env)
	case *ast.IncDecStmt:
		delta := int64(1)
		if s.Tok == token.DEC {
			delta = -1
		}
		cur, err := in.eval(s.X, env)
		if err != nil {
			return err
		}
		var nv value
		if a, ok := asAffine(cur); ok {
			nv = aAdd(a, aConst(delta))
		} else {
			nv = cur // unknown stays unknown
		}
		return in.assignTo(s.X, nv, env)
	case *ast.DeclStmt:
		return in.execDecl(s.Decl, env)
	case *ast.ReturnStmt:
		var vals vTuple
		for _, r := range s.Results {
			v, err := in.eval(r, env)
			if err != nil {
				return err
			}
			if t, ok := v.(vTuple); ok && len(s.Results) == 1 {
				vals = t
			} else {
				vals = append(vals, v)
			}
		}
		return &ctrlSignal{kind: "return", vals: vals}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return &ctrlSignal{kind: "break"}
		case token.CONTINUE:
			return &ctrlSignal{kind: "continue"}
		}
		return fmt.Errorf("specgen: unsupported branch %s", s.Tok)
	case *ast.IfStmt:
		return in.execIf(s, env)
	case *ast.SwitchStmt:
		return in.execSwitch(s, env)
	case *ast.ForStmt:
		return in.execFor(s, env)
	case *ast.RangeStmt:
		return in.execRange(s, env)
	case *ast.EmptyStmt:
		return nil
	case *ast.LabeledStmt:
		return in.execStmt(s.Stmt, env)
	default:
		in.note("skipped unsupported statement %T", st)
		return nil
	}
}

func (in *interp) execDecl(d ast.Decl, env *scope) error {
	gd, ok := d.(*ast.GenDecl)
	if !ok {
		return nil
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var v value
			switch {
			case i < len(vs.Values):
				ev, err := in.eval(vs.Values[i], env)
				if err != nil {
					return err
				}
				v = ev
			case vs.Type != nil:
				v = in.zeroValue(vs.Type, env)
			default:
				v = unknown("uninitialized variable")
			}
			env.define(name.Name, v)
		}
		// `var a, b T` with a single typed zero value and no inits is
		// covered above; `x, y := f()` tuple spreading happens in
		// AssignStmt, not here.
	}
	return nil
}

// zeroValue builds the zero value of a declared type, tracking struct
// fields and fixed-size arrays so later writes land somewhere.
func (in *interp) zeroValue(t ast.Expr, env *scope) value {
	switch tt := t.(type) {
	case *ast.Ident:
		switch tt.Name {
		case "int", "int8", "int16", "int32", "int64",
			"uint", "uint8", "uint16", "uint32", "uint64", "byte", "uintptr":
			return vInt(0)
		case "bool":
			return vBool(false)
		case "string":
			return vStr("")
		case "float32", "float64", "complex64", "complex128":
			return unknown("float zero value")
		}
		if st := in.pkg.structType(tt.Name); st != nil {
			s := newStruct(tt.Name)
			for _, f := range st.Fields.List {
				for _, fn := range f.Names {
					s.fields[fn.Name] = in.zeroValue(f.Type, env)
				}
			}
			return s
		}
		return unknown("zero value of type " + tt.Name)
	case *ast.ArrayType:
		if tt.Len != nil {
			if n, err := in.eval(tt.Len, env); err == nil {
				if c, ok := asConcrete(n); ok && c >= 0 && c <= 1024 {
					elems := make([]value, c)
					for i := range elems {
						elems[i] = in.zeroValue(tt.Elt, env)
					}
					return &vSlice{length: aConst(c), elems: elems}
				}
			}
		}
		return &vSlice{length: aConst(0)}
	case *ast.StarExpr, *ast.FuncType, *ast.InterfaceType:
		return unknown("nil zero value")
	case *ast.SelectorExpr:
		return unknown("zero value of imported type")
	case *ast.MapType:
		return &vMap{entries: map[string]value{}}
	}
	return unknown("zero value")
}

func (in *interp) execAssign(s *ast.AssignStmt, env *scope) error {
	// Compound ops: x op= y.
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return fmt.Errorf("specgen: malformed compound assignment")
		}
		cur, err := in.eval(s.Lhs[0], env)
		if err != nil {
			return err
		}
		rhs, err := in.eval(s.Rhs[0], env)
		if err != nil {
			return err
		}
		op, ok := compoundOp(s.Tok)
		if !ok {
			return fmt.Errorf("specgen: unsupported assignment op %s", s.Tok)
		}
		nv := in.binop(op, cur, rhs)
		return in.assignTo(s.Lhs[0], nv, env)
	}

	// Evaluate all RHS first (Go semantics for parallel assignment).
	var vals []value
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		v, err := in.eval(s.Rhs[0], env)
		if err != nil {
			return err
		}
		t, ok := v.(vTuple)
		if !ok || len(t) != len(s.Lhs) {
			// Map index two-value form handled in eval of IndexExpr via
			// tuple; anything else degrades to unknowns.
			t = make(vTuple, len(s.Lhs))
			for i := range t {
				t[i] = unknown("tuple arity mismatch")
			}
		}
		vals = t
	} else {
		for _, r := range s.Rhs {
			v, err := in.eval(r, env)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
	}
	for i, l := range s.Lhs {
		if s.Tok == token.DEFINE {
			if id, ok := l.(*ast.Ident); ok {
				// Redefine in the current scope (covers the := with one
				// new var case closely enough for the kernels).
				env.define(id.Name, vals[i])
				continue
			}
		}
		if err := in.assignTo(l, vals[i], env); err != nil {
			return err
		}
	}
	return nil
}

func compoundOp(t token.Token) (token.Token, bool) {
	switch t {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	}
	return token.ILLEGAL, false
}

func (in *interp) assignTo(l ast.Expr, v value, env *scope) error {
	switch t := l.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return nil
		}
		if c, ok := env.lookup(t.Name); ok {
			c.v = v
			return nil
		}
		env.define(t.Name, v)
		return nil
	case *ast.SelectorExpr:
		recv, err := in.eval(t.X, env)
		if err != nil {
			return err
		}
		if st, ok := recv.(*vStruct); ok {
			st.fields[t.Sel.Name] = v
			return nil
		}
		return nil // field write on opaque value: ignore
	case *ast.IndexExpr:
		recv, err := in.eval(t.X, env)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.Index, env)
		if err != nil {
			return err
		}
		switch r := recv.(type) {
		case *vSlice:
			if c, ok := asConcrete(idx); ok && r.elems != nil && c >= 0 && int(c) < len(r.elems) {
				r.elems[c] = v
				return nil
			}
			if !r.dirty {
				r.dirty = true
				if why, bad := whyUnknown(idx); bad {
					r.why = why
				} else {
					r.why = "element stored at symbolic index"
				}
			}
			return nil
		case *vMap:
			if k, ok := idx.(vStr); ok {
				r.entries[string(k)] = v
				return nil
			}
			r.dirty = true
			return nil
		}
		return nil
	case *ast.StarExpr:
		return in.assignTo(t.X, v, env)
	case *ast.ParenExpr:
		return in.assignTo(t.X, v, env)
	}
	in.note("skipped assignment to unsupported lvalue %T", l)
	return nil
}

func (in *interp) execIf(s *ast.IfStmt, env *scope) error {
	env = newScope(env)
	if s.Init != nil {
		if err := in.execStmt(s.Init, env); err != nil {
			return err
		}
	}
	cond, err := in.eval(s.Cond, env)
	if err != nil {
		return err
	}
	b, ok := cond.(vBool)
	if !ok {
		// Data-dependent branch: execute neither side, widen what they
		// assign so stale concrete values cannot leak through.
		why, _ := whyUnknown(cond)
		in.widenAssigned(s.Body, env, "assigned under data-dependent branch: "+why)
		if s.Else != nil {
			in.widenAssigned(s.Else, env, "assigned under data-dependent branch: "+why)
		}
		if hasRefCalls(s.Body) || (s.Else != nil && hasRefCalls(s.Else)) {
			in.note("branch with memory references skipped on data-dependent condition (%s)", why)
		}
		return nil
	}
	if bool(b) {
		return in.execStmt(s.Body, env)
	}
	if s.Else != nil {
		return in.execStmt(s.Else, env)
	}
	return nil
}

func (in *interp) execSwitch(s *ast.SwitchStmt, env *scope) error {
	env = newScope(env)
	if s.Init != nil {
		if err := in.execStmt(s.Init, env); err != nil {
			return err
		}
	}
	var tag value = vBool(true)
	if s.Tag != nil {
		v, err := in.eval(s.Tag, env)
		if err != nil {
			return err
		}
		tag = v
	}
	var deflt *ast.CaseClause
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			v, err := in.eval(e, env)
			if err != nil {
				return err
			}
			eq := in.binop(token.EQL, tag, v)
			b, ok := eq.(vBool)
			if !ok {
				// Data-dependent selector: widen all clauses and bail.
				for _, c2 := range s.Body.List {
					in.widenAssigned(c2.(*ast.CaseClause), env, "assigned under data-dependent switch")
				}
				return nil
			}
			if bool(b) {
				err := in.execBlock(cc.Body, newScope(env))
				if cs, ok := err.(*ctrlSignal); ok && cs.kind == "break" {
					return nil
				}
				return err
			}
		}
	}
	if deflt != nil {
		err := in.execBlock(deflt.Body, newScope(env))
		if cs, ok := err.(*ctrlSignal); ok && cs.kind == "break" {
			return nil
		}
		return err
	}
	return nil
}

// widenAssigned taints every outer-scope variable a skipped region would
// have assigned, and dirties indexed containers, so skipping a
// data-dependent branch never leaves stale concrete state behind.
func (in *interp) widenAssigned(n ast.Node, env *scope, why string) {
	local := map[string]bool{}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
				return true
			}
			for _, l := range s.Lhs {
				in.widenTarget(l, env, local, why)
			}
		case *ast.IncDecStmt:
			in.widenTarget(s.X, env, local, why)
		}
		return true
	})
}

func (in *interp) widenTarget(l ast.Expr, env *scope, local map[string]bool, why string) {
	switch t := l.(type) {
	case *ast.Ident:
		if local[t.Name] {
			return
		}
		if c, ok := env.lookup(t.Name); ok {
			if _, already := c.v.(vUnknown); !already {
				c.v = unknown(why)
			}
		}
	case *ast.IndexExpr:
		if v, err := in.eval(t.X, env); err == nil {
			if sl, ok := v.(*vSlice); ok && !sl.dirty {
				sl.dirty, sl.why = true, why
			}
		}
	case *ast.SelectorExpr:
		if v, err := in.eval(t.X, env); err == nil {
			if st, ok := v.(*vStruct); ok {
				if id := t.Sel.Name; id != "" {
					st.fields[id] = unknown(why)
				}
			}
		}
	}
}
