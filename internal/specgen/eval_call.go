package specgen

import (
	"fmt"
	"go/ast"
)

func (in *interp) evalCall(call *ast.CallExpr, env *scope) (value, error) {
	// Type conversions: T(x) for builtin scalar types, unless shadowed.
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 1 {
		if _, shadowed := env.lookup(id.Name); !shadowed {
			if intConvs[id.Name] {
				return in.eval(call.Args[0], env)
			}
			if floatConvs[id.Name] {
				v, err := in.eval(call.Args[0], env)
				if err != nil {
					return nil, err
				}
				if why, bad := whyUnknown(v); bad {
					return unknown(why), nil
				}
				return unknown("floating-point conversion"), nil
			}
		}
	}
	callee, err := in.eval(call.Fun, env)
	if err != nil {
		return nil, err
	}
	if b, ok := callee.(vBuiltin); ok {
		return in.callBuiltin(b.name, call, env)
	}
	args := make([]value, 0, len(call.Args))
	for _, a := range call.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	switch f := callee.(type) {
	case *vClosure:
		return in.callClosure(f, args)
	case vModelFunc:
		return in.modelCall(f.path, f.name, args)
	case vBoundMethod:
		return in.modelMethod(f.recv, f.name, args)
	case vUnknown:
		return f, nil
	}
	in.note("call of unsupported callee %T", callee)
	return unknown(fmt.Sprintf("call of %T", callee)), nil
}

func (in *interp) callBuiltin(name string, call *ast.CallExpr, env *scope) (value, error) {
	switch name {
	case "make":
		if len(call.Args) < 1 {
			return unknown("make with no type"), nil
		}
		switch call.Args[0].(type) {
		case *ast.MapType:
			return &vMap{entries: map[string]value{}}, nil
		}
		if len(call.Args) < 2 {
			return unknown("make with no length"), nil
		}
		n, err := in.eval(call.Args[1], env)
		if err != nil {
			return nil, err
		}
		if a, ok := asAffine(n); ok {
			return &vSlice{length: a}, nil
		}
		why, _ := whyUnknown(n)
		return &vSlice{length: aConst(0), dirty: true, why: "slice of unanalyzable length: " + why}, nil
	case "new":
		if len(call.Args) == 1 {
			return in.zeroValue(call.Args[0], env), nil
		}
		return unknown("new"), nil
	}
	args := make([]value, 0, len(call.Args))
	for _, a := range call.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	switch name {
	case "len":
		if len(args) != 1 {
			return unknown("len"), nil
		}
		switch x := args[0].(type) {
		case *vSlice:
			return x.length, nil
		case vStr:
			return vInt(int64(len(x))), nil
		case *vMap:
			return vInt(int64(len(x.entries))), nil
		}
		why, _ := whyUnknown(args[0])
		return unknown("len of unanalyzable value: " + why), nil
	case "cap":
		return unknown("cap"), nil
	case "append":
		if len(args) == 0 {
			return unknown("append"), nil
		}
		base, ok := args[0].(*vSlice)
		if !ok {
			return unknown("append to non-slice"), nil
		}
		out := &vSlice{
			length: aAdd(base.length, aConst(int64(len(args)-1))),
			dirty:  base.dirty,
			why:    base.why,
		}
		if base.elems != nil && !base.dirty {
			out.elems = append(append([]value(nil), base.elems...), args[1:]...)
		}
		return out, nil
	case "panic":
		msg := "panic"
		if len(args) == 1 {
			if s, ok := args[0].(vStr); ok {
				msg = string(s)
			}
		}
		return nil, fmt.Errorf("specgen: workload panic reached during extraction: %s", msg)
	case "copy", "delete", "print", "println":
		return vOpaque{kind: "void"}, nil
	case "complex", "real", "imag":
		return unknown("complex arithmetic"), nil
	case "min", "max":
		if len(args) < 1 {
			return unknown(name), nil
		}
		best := args[0]
		for _, a := range args[1:] {
			ba, ok1 := asAffine(best)
			aa, ok2 := asAffine(a)
			if !ok1 || !ok2 {
				return unknown(name + " of non-affine values"), nil
			}
			d := aSub(aa, ba)
			lo, hi := rangeOf(d)
			switch {
			case name == "min" && hi <= 0, name == "max" && lo >= 0:
				best = a
			case name == "min" && lo >= 0, name == "max" && hi <= 0:
				// keep best
			default:
				return unknown(name + " undecidable over iteration domain"), nil
			}
		}
		return best, nil
	}
	return unknown("builtin " + name), nil
}

// callClosure applies a function value. Affine arguments that couple
// induction variables with mixed signs (a wavefront skew like d-k) are
// rebound to a fresh rectangular induction variable spanning the argument's
// exact value range — the extraction-side counterpart of the loop-skewing
// normalization hand specs apply to wavefront kernels.
func (in *interp) callClosure(cl *vClosure, args []value) (value, error) {
	if in.callDep >= maxCallDepth {
		return nil, fmt.Errorf("specgen: call depth limit in %s", cl.name)
	}
	in.callDep++
	defer func() { in.callDep-- }()

	fnScope := newScope(cl.env)
	pushed := 0
	defer func() {
		if pushed > 0 {
			in.ivStack = in.ivStack[:len(in.ivStack)-pushed]
		}
	}()

	var params []*ast.Ident
	variadicAt := -1
	if cl.fn.Params != nil {
		for _, f := range cl.fn.Params.List {
			isVariadic := false
			if _, ok := f.Type.(*ast.Ellipsis); ok {
				isVariadic = true
			}
			if len(f.Names) == 0 {
				// Unnamed parameter still consumes an argument slot.
				params = append(params, nil)
				if isVariadic {
					variadicAt = len(params) - 1
				}
				continue
			}
			for _, n := range f.Names {
				params = append(params, n)
				if isVariadic {
					variadicAt = len(params) - 1
				}
			}
		}
	}
	for i, p := range params {
		var v value
		switch {
		case i == variadicAt:
			rest := args[min(i, len(args)):]
			v = &vSlice{length: aConst(int64(len(rest))), elems: append([]value(nil), rest...)}
		case i < len(args):
			v = args[i]
		default:
			v = unknown("missing argument")
		}
		if a, ok := asAffine(v); ok && a.mixedSign() {
			lo, hi := rangeOf(a)
			trip := hi - lo + 1
			if trip >= 1 {
				iv := &ivar{
					id:       in.nextIV,
					name:     paramName(p) + "'",
					depth:    len(in.ivStack),
					trip:     int(trip),
					tmaxExpr: aConst(trip - 1),
					fresh:    true,
				}
				for _, t := range a.terms {
					iv.sources = append(iv.sources, t.iv)
				}
				in.nextIV++
				in.ivStack = append(in.ivStack, iv)
				pushed++
				v = aAdd(aConst(lo), aIvar(iv))
				in.note("argument %s of %s rebound to fresh rectangular variable over [%d,%d]",
					paramName(p), cl.name, lo, hi)
			}
		}
		if p != nil {
			fnScope.define(p.Name, v)
		}
	}

	// Named results default to zero-ish values for bare returns.
	var resultNames []string
	if cl.fn.Results != nil {
		for _, f := range cl.fn.Results.List {
			for _, n := range f.Names {
				fnScope.define(n.Name, in.zeroValue(f.Type, fnScope))
				resultNames = append(resultNames, n.Name)
			}
		}
	}

	err := in.execBlock(cl.body.List, fnScope)
	if cs, ok := err.(*ctrlSignal); ok && cs.kind == "return" {
		switch len(cs.vals) {
		case 0:
			if len(resultNames) > 0 {
				out := make(vTuple, 0, len(resultNames))
				for _, n := range resultNames {
					c, _ := fnScope.lookup(n)
					out = append(out, c.v)
				}
				if len(out) == 1 {
					return out[0], nil
				}
				return out, nil
			}
			return vOpaque{kind: "void"}, nil
		case 1:
			return cs.vals[0], nil
		default:
			return cs.vals, nil
		}
	}
	if err != nil {
		return nil, err
	}
	return vOpaque{kind: "void"}, nil
}

func paramName(p *ast.Ident) string {
	if p == nil {
		return "_"
	}
	return p.Name
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---- models ------------------------------------------------------------

func (in *interp) modelCall(path, name string, args []value) (value, error) {
	switch path {
	case pathAlloc:
		return in.allocCall(name, args)
	case pathObjfile:
		if name == "NewBuilder" {
			return newBuilder(), nil
		}
	case pathStats:
		if name == "NewRand" {
			return vRand{}, nil
		}
	case "fmt":
		if name == "Sprintf" {
			return sprintfModel(args), nil
		}
		return vOpaque{kind: "void"}, nil
	case pathTrace, pathStaticconf:
		// Only their types are used by the kernels; any function call is
		// outside the modeled surface.
		return unknown("call into " + path + "." + name), nil
	}
	return unknown("call into unmodeled package " + path + "." + name), nil
}

func sprintfModel(args []value) value {
	if len(args) == 0 {
		return unknown("Sprintf with no format")
	}
	format, ok := args[0].(vStr)
	if !ok {
		return unknown("Sprintf with non-constant format")
	}
	rest := make([]interface{}, 0, len(args)-1)
	for _, a := range args[1:] {
		switch x := a.(type) {
		case vStr:
			rest = append(rest, string(x))
		case vBool:
			rest = append(rest, bool(x))
		default:
			if c, ok := asConcrete(a); ok {
				rest = append(rest, c)
			} else {
				return unknown("Sprintf of non-concrete value")
			}
		}
	}
	return vStr(fmt.Sprintf(string(format), rest...))
}

func (in *interp) allocCall(name string, args []value) (value, error) {
	concrete := func(i int) (int64, bool) {
		if i >= len(args) {
			return 0, false
		}
		return asConcrete(args[i])
	}
	str := func(i int) string {
		if i < len(args) {
			if s, ok := args[i].(vStr); ok {
				return string(s)
			}
		}
		return "?"
	}
	arena := func(i int) *vArena {
		if i < len(args) {
			if a, ok := args[i].(*vArena); ok {
				return a
			}
		}
		return nil
	}
	switch name {
	case "NewArena":
		return newArena(), nil
	case "NewArenaAt":
		if base, ok := concrete(0); ok {
			return &vArena{next: uint64(base)}, nil
		}
		return unknown("arena at non-concrete base"), nil
	case "NewMatrix2D":
		ar := arena(0)
		rows, ok1 := concrete(2)
		cols, ok2 := concrete(3)
		elem, ok3 := concrete(4)
		rowPad, ok4 := concrete(5)
		if ar == nil || !ok1 || !ok2 || !ok3 || !ok4 {
			in.note("NewMatrix2D(%s) with non-concrete shape", str(1))
			return unknown("matrix with non-concrete shape"), nil
		}
		if rows <= 0 || cols <= 0 || elem == 0 {
			return nil, fmt.Errorf("specgen: invalid matrix %s: %dx%d elem=%d", str(1), rows, cols, elem)
		}
		m := &vMatrix2D{rows: rows, cols: cols, elem: elem, rowPad: rowPad}
		b, err := ar.alloc(str(1), uint64(rows*m.rowStride()), 64)
		if err != nil {
			return nil, err
		}
		m.block = b
		return m, nil
	case "NewMatrix3D":
		ar := arena(0)
		ni, ok1 := concrete(2)
		nj, ok2 := concrete(3)
		nk, ok3 := concrete(4)
		elem, ok4 := concrete(5)
		rowPad, ok5 := concrete(6)
		planePad, ok6 := concrete(7)
		if ar == nil || !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 {
			in.note("NewMatrix3D(%s) with non-concrete shape", str(1))
			return unknown("matrix with non-concrete shape"), nil
		}
		if ni <= 0 || nj <= 0 || nk <= 0 || elem == 0 {
			return nil, fmt.Errorf("specgen: invalid 3d matrix %s: %dx%dx%d elem=%d", str(1), ni, nj, nk, elem)
		}
		m := &vMatrix3D{ni: ni, nj: nj, nk: nk, elem: elem, rowPad: rowPad, planePad: planePad}
		b, err := ar.alloc(str(1), uint64(ni*m.planeStride()), 64)
		if err != nil {
			return nil, err
		}
		m.block = b
		return m, nil
	case "NewVector":
		ar := arena(0)
		n, ok1 := concrete(2)
		elem, ok2 := concrete(3)
		if ar == nil || !ok1 || !ok2 {
			in.note("NewVector(%s) with non-concrete shape", str(1))
			return unknown("vector with non-concrete shape"), nil
		}
		if n <= 0 || elem == 0 {
			return nil, fmt.Errorf("specgen: invalid vector %s: n=%d elem=%d", str(1), n, elem)
		}
		v := &vVector{n: n, elem: elem}
		b, err := ar.alloc(str(1), uint64(n*elem), 64)
		if err != nil {
			return nil, err
		}
		v.block = b
		return v, nil
	}
	return unknown("alloc." + name), nil
}

func (in *interp) modelMethod(recv value, name string, args []value) (value, error) {
	affineArg := func(i int) (*affine, string) {
		if i >= len(args) {
			return nil, "missing argument"
		}
		if a, ok := asAffine(args[i]); ok {
			return a, ""
		}
		why, _ := whyUnknown(args[i])
		if why == "" {
			why = fmt.Sprintf("non-affine index %T", args[i])
		}
		return nil, why
	}
	switch r := recv.(type) {
	case *vArena:
		switch name {
		case "Gap":
			if n, ok := asConcrete(args[0]); ok && len(args) == 1 {
				r.next += uint64(n)
				return vOpaque{kind: "void"}, nil
			}
			return nil, fmt.Errorf("specgen: arena Gap with non-concrete size")
		case "Alloc":
			nameStr := "?"
			if s, ok := args[0].(vStr); ok {
				nameStr = string(s)
			}
			size, ok1 := asConcrete(args[1])
			align, ok2 := asConcrete(args[2])
			if !ok1 || !ok2 {
				return unknown("alloc with non-concrete size"), nil
			}
			b, err := r.alloc(nameStr, uint64(size), uint64(align))
			if err != nil {
				return nil, err
			}
			st := newStruct("alloc.Block")
			st.fields["Name"] = vStr(b.name)
			st.fields["Start"] = vInt(int64(b.start))
			st.fields["Size"] = vInt(int64(b.size))
			return st, nil
		}
	case *vMatrix2D:
		switch name {
		case "At", "AtChecked":
			i, whyI := affineArg(0)
			j, whyJ := affineArg(1)
			if i == nil || j == nil {
				why := whyI
				if why == "" {
					why = whyJ
				}
				return unknown(why), nil
			}
			return r.at(i, j), nil
		case "RowStride":
			return vInt(r.rowStride()), nil
		}
	case *vMatrix3D:
		switch name {
		case "At":
			i, whyI := affineArg(0)
			j, whyJ := affineArg(1)
			k, whyK := affineArg(2)
			if i == nil || j == nil || k == nil {
				why := whyI
				if why == "" {
					why = whyJ
				}
				if why == "" {
					why = whyK
				}
				return unknown(why), nil
			}
			return r.at(i, j, k), nil
		case "RowStride":
			return vInt(r.rowStride()), nil
		case "PlaneStride":
			return vInt(r.planeStride()), nil
		}
	case *vVector:
		if name == "At" {
			i, why := affineArg(0)
			if i == nil {
				return unknown(why), nil
			}
			return r.at(i), nil
		}
	case *vBuilder:
		loc := func() (string, int64, bool) {
			if len(args) < 2 {
				return "", 0, false
			}
			f, ok1 := args[0].(vStr)
			l, ok2 := asConcrete(args[1])
			return string(f), l, ok1 && ok2
		}
		switch name {
		case "Func":
			return vOpaque{kind: "void"}, nil
		case "Loop":
			if f, l, ok := loc(); ok {
				r.loop(f, l)
				return vOpaque{kind: "loop-ip"}, nil
			}
			return nil, fmt.Errorf("specgen: builder Loop with non-concrete location")
		case "EndLoop":
			r.endLoop()
			return vOpaque{kind: "void"}, nil
		case "Load", "Op", "Call":
			if f, l, ok := loc(); ok {
				return r.emit(f, l, false), nil
			}
			return nil, fmt.Errorf("specgen: builder %s with non-concrete location", name)
		case "Store":
			if f, l, ok := loc(); ok {
				return r.emit(f, l, true), nil
			}
			return nil, fmt.Errorf("specgen: builder Store with non-concrete location")
		case "Finish":
			return vOpaque{kind: "binary"}, nil
		}
	case vRand:
		return unknown("random draw from stats.Rand." + name), nil
	case vSink:
		if name == "Ref" && len(args) == 1 {
			if ref, ok := args[0].(*vStruct); ok {
				in.sinkRef(ref)
				return vOpaque{kind: "void"}, nil
			}
			in.note("sink.Ref with non-literal argument")
			return vOpaque{kind: "void"}, nil
		}
		return vOpaque{kind: "void"}, nil
	}
	return unknown(fmt.Sprintf("method %s on %T", name, recv)), nil
}

func (in *interp) sinkRef(ref *vStruct) {
	ipv, ok := ref.fields["IP"]
	if !ok {
		in.note("sink.Ref without IP field")
		return
	}
	ip, ok := ipv.(*vIP)
	if !ok {
		in.note("sink.Ref with unanalyzable IP")
		return
	}
	write := ip.write
	if w, ok := ref.fields["Write"].(vBool); ok {
		write = bool(w)
	}
	addr, ok := ref.fields["Addr"]
	if !ok {
		addr = unknown("Ref without address")
	}
	in.emit(ip, addr, write)
}
