package specgen

import (
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/staticconf"
)

// extractStride runs one constructor of the testdata/strides package and
// returns its extraction, failing the test on any unanalyzable site: these
// fixtures are purely affine, so a taint here is an extractor regression.
func extractStride(t *testing.T, ctor string) *Extraction {
	t.Helper()
	p, err := Load(filepath.Join("testdata", "strides"))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := p.ExtractProgram(mem.L1Default(), ctor)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Unanalyzable) != 0 {
		t.Fatalf("%s: unexpected unanalyzable sites: %+v", ctor, ex.Unanalyzable)
	}
	if ex.Spec == nil || len(ex.Spec.Accesses) != 1 {
		t.Fatalf("%s: want exactly one extracted access, got %+v", ctor, ex.Spec)
	}
	if err := ex.Spec.Validate(); err != nil {
		t.Fatalf("%s: extracted spec invalid: %v", ctor, err)
	}
	return ex
}

// TestExtractReverseWalk pins reflection of a negative-stride loop
// (i counts down): the synthesized dim must start at the vector's minimum
// address with a positive stride and the full trip count.
func TestExtractReverseWalk(t *testing.T) {
	ex := extractStride(t, "ReverseWalk")
	a := ex.Spec.Accesses[0]
	if a.Base != 0x100000 {
		t.Errorf("base %#x, want the vector start %#x (reflection must move the base to the minimum address)", a.Base, 0x100000)
	}
	want := []staticconf.Dim{{Stride: 8, Trip: 256}}
	if !sameDims(a.Dims, want) {
		t.Errorf("dims %s, want %s", fmtDims(a.Dims), fmtDims(want))
	}
	if a.Elem != 8 {
		t.Errorf("elem %d, want 8", a.Elem)
	}
	if a.Window != 1 {
		t.Errorf("window %d, want 1", a.Window)
	}
}

// TestExtractStridedWalk pins a non-unit-step loop (i += 4): the byte
// stride must fold the step into the induction coefficient and the trip
// must be the divided count, exactly — not a unit-stride overapproximation.
func TestExtractStridedWalk(t *testing.T) {
	ex := extractStride(t, "StridedWalk")
	a := ex.Spec.Accesses[0]
	if a.Base != 0x100000 {
		t.Errorf("base %#x, want %#x", a.Base, 0x100000)
	}
	want := []staticconf.Dim{{Stride: 32, Trip: 64}}
	if !sameDims(a.Dims, want) {
		t.Errorf("dims %s, want %s", fmtDims(a.Dims), fmtDims(want))
	}
	// The smallest non-zero stride is the access granularity.
	if a.Elem != 32 {
		t.Errorf("elem %d, want 32", a.Elem)
	}
}

// TestExtractReverseStrided2D combines both shapes: the reflected outer
// dim and the folded inner stride must coexist, and window inference must
// cover the whole 8KiB footprint (it fits the half-cache budget).
func TestExtractReverseStrided2D(t *testing.T) {
	ex := extractStride(t, "ReverseStrided2D")
	a := ex.Spec.Accesses[0]
	if a.Base != 0x100000 {
		t.Errorf("base %#x, want the matrix start %#x", a.Base, 0x100000)
	}
	want := []staticconf.Dim{{Stride: 512, Trip: 16}, {Stride: 32, Trip: 16}}
	if !sameDims(a.Dims, want) {
		t.Errorf("dims %s, want %s", fmtDims(a.Dims), fmtDims(want))
	}
	if a.Window != 2 {
		t.Errorf("window %d, want the full-width window 2", a.Window)
	}
}
