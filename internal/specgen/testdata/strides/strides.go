// Package strides seeds the loop shapes the extractor's window inference
// must normalize: a backwards walk (negative stride, reflected to its
// minimum address), a non-unit-step walk (stride folded into the
// induction coefficient), and a 2-D nest combining both. The extraction
// tests parse and interpret this package; the go tool never compiles it
// (testdata is ignored).
package strides

import (
	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/trace"
)

// Program mirrors the workload surface the extractor interprets.
type Program struct {
	Name      string
	Binary    *objfile.Binary
	Arena     *alloc.Arena
	runThread func(tid, threads int, sink trace.Sink)
}

// ReverseWalk reads a vector back to front: i counts down, so the address
// coefficient of the induction variable is negative and synthesis must
// reflect the dimension — base moved to the minimum address, stride
// positive — without changing trip or footprint.
func ReverseWalk() *Program {
	b := objfile.NewBuilder("reversewalk")
	b.Func("kernel")
	b.Loop("reversewalk.c", 2)
	ld := b.Load("reversewalk.c", 3)
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	v := alloc.NewVector(ar, "v", 256, 8)
	return &Program{
		Name:   "reversewalk",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for i := 255; i >= 0; i-- {
				sink.Ref(trace.Ref{IP: ld, Addr: v.At(i)})
			}
		},
	}
}

// StridedWalk reads every fourth element of a vector: the loop steps by 4,
// so the extracted dimension must carry the combined byte stride (step
// times element size) and the divided trip count, exactly.
func StridedWalk() *Program {
	b := objfile.NewBuilder("stridedwalk")
	b.Func("kernel")
	b.Loop("stridedwalk.c", 2)
	ld := b.Load("stridedwalk.c", 3)
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	v := alloc.NewVector(ar, "v", 256, 8)
	return &Program{
		Name:   "stridedwalk",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for i := 0; i < 256; i += 4 {
				sink.Ref(trace.Ref{IP: ld, Addr: v.At(i)})
			}
		},
	}
}

// ReverseStrided2D combines both shapes in one nest: rows walked
// backwards, columns in steps of 4. The reflected outer dim and the
// folded inner stride must both survive, and the whole (small) footprint
// must be covered by a full-width reuse window.
func ReverseStrided2D() *Program {
	b := objfile.NewBuilder("reversestrided2d")
	b.Func("kernel")
	b.Loop("reversestrided2d.c", 2)
	b.Loop("reversestrided2d.c", 3)
	ld := b.Load("reversestrided2d.c", 4)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	m := alloc.NewMatrix2D(ar, "m", 16, 64, 8, 0)
	return &Program{
		Name:   "reversestrided2d",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for i := 15; i >= 0; i-- {
				for j := 0; j < 64; j += 4 {
					sink.Ref(trace.Ref{IP: ld, Addr: m.At(i, j)})
				}
			}
		},
	}
}
