// Package clean holds conflict-free counterparts of the pathological
// fixtures: the same walks over padded rows. cmd/conflint must report
// zero findings here. The lint's tests parse and interpret this package;
// the go tool never compiles it (testdata is ignored).
package clean

import (
	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/trace"
)

// Program mirrors the workload surface the lint interprets.
type Program struct {
	Name      string
	Binary    *objfile.Binary
	Arena     *alloc.Arena
	runThread func(tid, threads int, sink trace.Sink)
}

// PaddedColumnWalk walks every column of a matrix whose rows are padded
// by one cache line (4160-byte rows): consecutive rows precess across
// sets, so the column walk spreads over the whole cache.
func PaddedColumnWalk() *Program {
	b := objfile.NewBuilder("paddedcolumnwalk")
	b.Func("kernel")
	b.Loop("paddedcolumnwalk.c", 2)
	b.Loop("paddedcolumnwalk.c", 3)
	ld := b.Load("paddedcolumnwalk.c", 4)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	m := alloc.NewMatrix2D(ar, "m", 512, 512, 8, 64)
	return &Program{
		Name:   "paddedcolumnwalk",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for j := 0; j < 512; j++ {
				for i := 0; i < 512; i++ {
					sink.Ref(trace.Ref{IP: ld, Addr: m.At(i, j)})
				}
			}
		},
	}
}

// PaddedStreams streams two row-padded matrices in lockstep: row-major
// order is already conflict-free, and the padded rows keep the walks
// precessing.
func PaddedStreams() *Program {
	b := objfile.NewBuilder("paddedstreams")
	b.Func("kernel")
	b.Loop("paddedstreams.c", 2)
	b.Loop("paddedstreams.c", 3)
	ldx := b.Load("paddedstreams.c", 4)
	ldy := b.Load("paddedstreams.c", 4)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	x := alloc.NewMatrix2D(ar, "x", 512, 512, 8, 64)
	y := alloc.NewMatrix2D(ar, "y", 512, 512, 8, 64)
	return &Program{
		Name:   "paddedstreams",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for i := 0; i < 512; i++ {
				for j := 0; j < 512; j++ {
					sink.Ref(trace.Ref{IP: ldx, Addr: x.At(i, j)})
					sink.Ref(trace.Ref{IP: ldy, Addr: y.At(i, j)})
				}
			}
		},
	}
}
