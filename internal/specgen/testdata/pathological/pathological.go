// Package pathological seeds the conflict-prone layouts cmd/conflint must
// flag: a power-of-two column walk camping on one set, a row size whose
// gcd with the set span camps on two, and co-aligned arrays marching in
// lockstep. The lint's tests parse and interpret this package; the go
// tool never compiles it (testdata is ignored).
package pathological

import (
	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/trace"
)

// Program mirrors the workload surface the lint interprets.
type Program struct {
	Name      string
	Binary    *objfile.Binary
	Arena     *alloc.Arena
	runThread func(tid, threads int, sink trace.Sink)
}

// RepeatedColumn re-walks one column of a power-of-two matrix: rows are
// 4096 bytes, so every reference of the hot loop lands in a single cache
// set — the paper's §2 pathology, RCD = 1.
func RepeatedColumn() *Program {
	b := objfile.NewBuilder("repeatedcolumn")
	b.Func("kernel")
	b.Loop("repeatedcolumn.c", 2)
	b.Loop("repeatedcolumn.c", 3)
	ld := b.Load("repeatedcolumn.c", 4)
	st := b.Store("repeatedcolumn.c", 4)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	m := alloc.NewMatrix2D(ar, "m", 512, 512, 8, 0)
	return &Program{
		Name:   "repeatedcolumn",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for t := 0; t < 8; t++ {
				for i := 0; i < 512; i++ {
					sink.Ref(trace.Ref{IP: ld, Addr: m.At(i, 0)})
					sink.Ref(trace.Ref{IP: st, Addr: m.At(i, 0), Write: true})
				}
			}
		},
	}
}

// CampingRows walks the columns of a matrix whose 6144-byte rows share a
// large gcd with the 4096-byte set span: the column walk bounces between
// two sets only.
func CampingRows() *Program {
	b := objfile.NewBuilder("campingrows")
	b.Func("kernel")
	b.Loop("campingrows.c", 2)
	b.Loop("campingrows.c", 3)
	ld := b.Load("campingrows.c", 4)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	m := alloc.NewMatrix2D(ar, "m", 256, 768, 8, 0)
	return &Program{
		Name:   "campingrows",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for j := 0; j < 768; j++ {
				for i := 0; i < 256; i++ {
					sink.Ref(trace.Ref{IP: ld, Addr: m.At(i, j)})
				}
			}
		},
	}
}

// AliasedStreams streams two matrices row-by-row in lockstep. Both have
// 4096-byte rows and span-multiple sizes, so the bases share a set and
// every row boundary stacks the pair's lines on the same sets.
func AliasedStreams() *Program {
	b := objfile.NewBuilder("aliasedstreams")
	b.Func("kernel")
	b.Loop("aliasedstreams.c", 2)
	b.Loop("aliasedstreams.c", 3)
	ldx := b.Load("aliasedstreams.c", 4)
	ldy := b.Load("aliasedstreams.c", 4)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	x := alloc.NewMatrix2D(ar, "x", 512, 512, 8, 0)
	y := alloc.NewMatrix2D(ar, "y", 512, 512, 8, 0)
	return &Program{
		Name:   "aliasedstreams",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			if tid != 0 {
				return
			}
			for i := 0; i < 512; i++ {
				for j := 0; j < 512; j++ {
					sink.Ref(trace.Ref{IP: ldx, Addr: x.At(i, j)})
					sink.Ref(trace.Ref{IP: ldy, Addr: y.At(i, j)})
				}
			}
		},
	}
}
