// Package falseshare seeds the cross-thread layouts the false-sharing
// analyzer must separate: per-thread counters packed eight bytes apart
// on one cache line (flagged), and the same counters padded out to a
// line each (clean). The lint's tests parse and interpret this package;
// the go tool never compiles it (testdata is ignored).
package falseshare

import (
	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/trace"
)

// Program mirrors the workload surface the lint interprets.
type Program struct {
	Name      string
	Binary    *objfile.Binary
	Arena     *alloc.Arena
	runThread func(tid, threads int, sink trace.Sink)
}

// SharedCounters packs one 8-byte counter per thread into a single
// cache line; every thread's increment invalidates the line for all the
// others even though no set conflict exists.
func SharedCounters() *Program {
	b := objfile.NewBuilder("sharedcounters")
	b.Func("kernel")
	b.Loop("sharedcounters.c", 2)
	ld := b.Load("sharedcounters.c", 3)
	st := b.Store("sharedcounters.c", 3)
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	c := alloc.NewVector(ar, "counters", 16, 8)
	return &Program{
		Name:   "sharedcounters",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			for t := 0; t < 1024; t++ {
				sink.Ref(trace.Ref{IP: ld, Addr: c.At(tid)})
				sink.Ref(trace.Ref{IP: st, Addr: c.At(tid), Write: true})
			}
		},
	}
}

// PaddedCounters gives each thread's counter its own cache line; the
// layout costs 64 bytes per thread and eliminates the ping-pong.
func PaddedCounters() *Program {
	b := objfile.NewBuilder("paddedcounters")
	b.Func("kernel")
	b.Loop("paddedcounters.c", 2)
	ld := b.Load("paddedcounters.c", 3)
	st := b.Store("paddedcounters.c", 3)
	b.EndLoop()
	bin := b.Finish()

	ar := alloc.NewArena()
	c := alloc.NewVector(ar, "counters", 16, 64)
	return &Program{
		Name:   "paddedcounters",
		Binary: bin,
		Arena:  ar,
		runThread: func(tid, threads int, sink trace.Sink) {
			for t := 0; t < 1024; t++ {
				sink.Ref(trace.Ref{IP: ld, Addr: c.At(tid)})
				sink.Ref(trace.Ref{IP: st, Addr: c.At(tid), Write: true})
			}
		},
	}
}
