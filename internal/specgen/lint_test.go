package specgen

import (
	"path/filepath"
	"testing"

	"repro/internal/mem"
)

func lintTestdata(t *testing.T, pkg string) *LintReport {
	t.Helper()
	rep, err := LintDir(filepath.Join("testdata", pkg), mem.L1Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Logf("finding: %s", f)
	}
	for fn, why := range rep.Skipped {
		t.Logf("skipped %s: %s", fn, why)
	}
	return rep
}

// TestLintFlagsPathological pins the lint on the seeded pathologies: the
// power-of-two column walk must raise both the camping-stride pattern and
// the analyzer's conflict verdict, the 6144-byte rows must raise the
// non-power-of-two camping pattern, and the co-aligned streams must raise
// the aliasing-bases pattern.
func TestLintFlagsPathological(t *testing.T) {
	rep := lintTestdata(t, "pathological")
	if len(rep.Kernels) != 3 {
		t.Fatalf("linted %d kernels, want 3 (%+v)", len(rep.Kernels), rep.Kernels)
	}
	want := map[string]string{ // kernel → finding kind that must be present
		"repeatedcolumn": FindingPow2Stride,
		"campingrows":    FindingSetCamping,
		"aliasedstreams": FindingAliasingBases,
	}
	for kernel, kind := range want {
		if !hasFinding(rep, kernel, kind) {
			t.Errorf("no %s finding for %s", kind, kernel)
		}
	}
	if !hasFinding(rep, "repeatedcolumn", FindingStaticConflict) {
		t.Errorf("the repeated column walk must carry the analyzer's conflict verdict")
	}
}

// TestLintCleanKernels pins the zero-findings contract on the padded
// counterparts of the same walks.
func TestLintCleanKernels(t *testing.T) {
	rep := lintTestdata(t, "clean")
	if len(rep.Kernels) != 2 {
		t.Fatalf("linted %d kernels, want 2 (%+v)", len(rep.Kernels), rep.Kernels)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("clean kernels produced %d findings: %v", len(rep.Findings), rep.Findings)
	}
}

// TestLintWorkloadsRuns smoke-tests the lint over the real workload
// package: the niladic Rodinia constructors must be linted, and the
// seeded Hotspot pathology (power-of-two rows, §6.1-style) must surface.
func TestLintWorkloadsRuns(t *testing.T) {
	dir, err := WorkloadsDir()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LintDir(dir, mem.L1Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Kernels) < 10 {
		t.Fatalf("linted only %d kernels of the workload package", len(rep.Kernels))
	}
	if len(rep.Findings) == 0 {
		t.Error("the workload package seeds known pathologies; lint found none")
	}
}

func hasFinding(rep *LintReport, kernel, kind string) bool {
	for _, f := range rep.Findings {
		if f.Kernel == kernel && f.Kind == kind {
			return true
		}
	}
	return false
}
