package specgen

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
)

// Import paths of the modeled runtime packages.
const (
	pathAlloc      = "repro/internal/alloc"
	pathObjfile    = "repro/internal/objfile"
	pathTrace      = "repro/internal/trace"
	pathStats      = "repro/internal/stats"
	pathStaticconf = "repro/internal/staticconf"
)

type (
	// vPkg is a reference to an imported package.
	vPkg struct{ path string }
	// vBuiltin is a reference to a Go builtin function.
	vBuiltin struct{ name string }
	// vModelFunc is pkg.Func of a modeled package, pre-dispatch.
	vModelFunc struct{ path, name string }
	// vBoundMethod is recv.Method of a model value, pre-dispatch.
	vBoundMethod struct {
		recv value
		name string
	}
	// vMap models string-keyed maps (the workload registry).
	vMap struct {
		entries map[string]value
		dirty   bool
	}
)

var intConvs = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "byte": true, "rune": true,
}

var floatConvs = map[string]bool{
	"float32": true, "float64": true, "complex64": true, "complex128": true,
}

var builtins = map[string]bool{
	"len": true, "cap": true, "make": true, "new": true, "append": true,
	"copy": true, "delete": true, "panic": true, "print": true,
	"println": true, "min": true, "max": true,
	"complex": true, "real": true, "imag": true,
}

func (in *interp) eval(e ast.Expr, env *scope) (value, error) {
	if err := in.burn(); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *ast.BasicLit:
		return in.evalLit(x)
	case *ast.Ident:
		return in.evalIdent(x, env), nil
	case *ast.ParenExpr:
		return in.eval(x.X, env)
	case *ast.UnaryExpr:
		return in.evalUnary(x, env)
	case *ast.BinaryExpr:
		return in.evalBinary(x, env)
	case *ast.CallExpr:
		return in.evalCall(x, env)
	case *ast.SelectorExpr:
		return in.evalSelector(x, env)
	case *ast.IndexExpr:
		return in.evalIndex(x, env)
	case *ast.CompositeLit:
		return in.evalComposite(x, env)
	case *ast.FuncLit:
		return &vClosure{fn: x.Type, body: x.Body, env: env, name: "func literal"}, nil
	case *ast.StarExpr:
		return in.eval(x.X, env)
	case *ast.SliceExpr:
		return in.evalSlice(x, env)
	case *ast.KeyValueExpr:
		return nil, fmt.Errorf("specgen: key-value expression outside composite literal")
	default:
		in.note("unsupported expression %T treated as unknown", e)
		return unknown(fmt.Sprintf("unsupported expression %T", e)), nil
	}
}

func (in *interp) evalLit(l *ast.BasicLit) (value, error) {
	switch l.Kind {
	case token.INT:
		n, err := strconv.ParseInt(l.Value, 0, 64)
		if err != nil {
			u, uerr := strconv.ParseUint(l.Value, 0, 64)
			if uerr != nil {
				return nil, fmt.Errorf("specgen: bad int literal %q: %v", l.Value, err)
			}
			n = int64(u)
		}
		return vInt(n), nil
	case token.STRING:
		s, err := strconv.Unquote(l.Value)
		if err != nil {
			return nil, fmt.Errorf("specgen: bad string literal %q: %v", l.Value, err)
		}
		return vStr(s), nil
	case token.CHAR:
		s, err := strconv.Unquote(l.Value)
		if err != nil || len(s) == 0 {
			return unknown("char literal"), nil
		}
		return vInt(int64([]rune(s)[0])), nil
	case token.FLOAT, token.IMAG:
		return unknown("floating-point literal"), nil
	}
	return unknown("literal kind " + l.Kind.String()), nil
}

func (in *interp) evalIdent(id *ast.Ident, env *scope) value {
	switch id.Name {
	case "_":
		return unknown("blank identifier")
	case "nil":
		return vOpaque{kind: "nil"}
	}
	if c, ok := env.lookup(id.Name); ok {
		return c.v
	}
	if id.Name == "true" {
		return vBool(true)
	}
	if id.Name == "false" {
		return vBool(false)
	}
	if path, ok := in.pkg.imports[id.Name]; ok {
		return vPkg{path: path}
	}
	if builtins[id.Name] {
		return vBuiltin{name: id.Name}
	}
	in.note("unresolved identifier %s", id.Name)
	return unknown("unresolved identifier " + id.Name)
}

func (in *interp) evalUnary(x *ast.UnaryExpr, env *scope) (value, error) {
	v, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case token.SUB:
		if a, ok := asAffine(v); ok {
			return aNeg(a), nil
		}
		return v, nil
	case token.ADD:
		return v, nil
	case token.NOT:
		if b, ok := v.(vBool); ok {
			return vBool(!b), nil
		}
		return v, nil
	case token.AND:
		// Reference semantics throughout: &x is x.
		return v, nil
	case token.XOR:
		if c, ok := asConcrete(v); ok {
			return vInt(^c), nil
		}
		return unknown("bitwise complement of symbolic value"), nil
	}
	return unknown("unary " + x.Op.String()), nil
}

func (in *interp) evalBinary(x *ast.BinaryExpr, env *scope) (value, error) {
	if x.Op == token.LAND || x.Op == token.LOR {
		l, err := in.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		if b, ok := l.(vBool); ok {
			if (x.Op == token.LAND && !bool(b)) || (x.Op == token.LOR && bool(b)) {
				return b, nil
			}
			return in.eval(x.Y, env)
		}
		// Symbolic left side: still evaluate the right for its reasons.
		r, err := in.eval(x.Y, env)
		if err != nil {
			return nil, err
		}
		if b, ok := r.(vBool); ok {
			if (x.Op == token.LAND && !bool(b)) || (x.Op == token.LOR && bool(b)) {
				return b, nil
			}
		}
		why, _ := whyUnknown(l, r)
		return unknown("data-dependent condition: " + why), nil
	}
	l, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(x.Y, env)
	if err != nil {
		return nil, err
	}
	return in.binop(x.Op, l, r), nil
}

func (in *interp) binop(op token.Token, l, r value) value {
	la, lok := asAffine(l)
	ra, rok := asAffine(r)
	if lok && rok {
		switch op {
		case token.ADD:
			return aAdd(la, ra)
		case token.SUB:
			return aSub(la, ra)
		case token.MUL:
			if p, ok := aMul(la, ra); ok {
				return p
			}
			return unknown("non-affine product " + la.String() + " * " + ra.String())
		case token.QUO:
			if q, ok := aDiv(la, ra); ok {
				return q
			}
			return unknown("non-affine quotient")
		case token.REM:
			if m, ok := aMod(la, ra); ok {
				return m
			}
			return unknown("non-affine remainder")
		case token.SHL:
			if k, ok := asConcrete(r); ok && k >= 0 && k < 63 {
				return aScale(la, 1<<uint(k))
			}
			return unknown("shift by symbolic amount")
		case token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
			lc, lcok := asConcrete(l)
			rc, rcok := asConcrete(r)
			if lcok && rcok {
				switch op {
				case token.SHR:
					if rc >= 0 && rc < 64 {
						return vInt(lc >> uint(rc))
					}
				case token.AND:
					return vInt(lc & rc)
				case token.OR:
					return vInt(lc | rc)
				case token.XOR:
					return vInt(lc ^ rc)
				case token.AND_NOT:
					return vInt(lc &^ rc)
				}
			}
			return unknown("bitwise operation on symbolic value")
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			d := aSub(la, ra)
			if !d.isConst() {
				// A comparison decidable over the whole iteration domain
				// is still concrete (e.g. i+1 > i).
				lo, hi := rangeOf(d)
				switch {
				case lo > 0:
					d = aConst(1)
				case hi < 0:
					d = aConst(-1)
				case lo == 0 && hi == 0:
					d = aConst(0)
				default:
					return unknown("comparison depends on loop iteration: " + d.String())
				}
			}
			c := d.c0
			switch op {
			case token.LSS:
				return vBool(c < 0)
			case token.LEQ:
				return vBool(c <= 0)
			case token.GTR:
				return vBool(c > 0)
			case token.GEQ:
				return vBool(c >= 0)
			case token.EQL:
				return vBool(c == 0)
			case token.NEQ:
				return vBool(c != 0)
			}
		}
	}
	if ls, ok := l.(vStr); ok {
		if rs, ok := r.(vStr); ok {
			switch op {
			case token.ADD:
				return ls + rs
			case token.EQL:
				return vBool(ls == rs)
			case token.NEQ:
				return vBool(ls != rs)
			}
		}
	}
	if lb, ok := l.(vBool); ok {
		if rb, ok := r.(vBool); ok {
			switch op {
			case token.EQL:
				return vBool(lb == rb)
			case token.NEQ:
				return vBool(lb != rb)
			}
		}
	}
	why, _ := whyUnknown(l, r)
	if why == "" {
		why = fmt.Sprintf("operator %s on %T and %T", op, l, r)
	}
	return unknown(why)
}

func (in *interp) evalSelector(x *ast.SelectorExpr, env *scope) (value, error) {
	recv, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	name := x.Sel.Name
	switch r := recv.(type) {
	case vPkg:
		return vModelFunc{path: r.path, name: name}, nil
	case *vStruct:
		if f, ok := r.fields[name]; ok {
			return f, nil
		}
		return unknown(fmt.Sprintf("unset field %s.%s", r.typeName, name)), nil
	case *vMatrix2D:
		switch name {
		case "Start":
			return vInt(int64(r.block.start)), nil
		case "Size":
			return vInt(int64(r.block.size)), nil
		case "Name":
			return vStr(r.block.name), nil
		case "Rows":
			return vInt(r.rows), nil
		case "Cols":
			return vInt(r.cols), nil
		case "Elem":
			return vInt(r.elem), nil
		case "RowPad":
			return vInt(r.rowPad), nil
		}
		return vBoundMethod{recv: recv, name: name}, nil
	case *vMatrix3D:
		switch name {
		case "Start":
			return vInt(int64(r.block.start)), nil
		case "Size":
			return vInt(int64(r.block.size)), nil
		case "Name":
			return vStr(r.block.name), nil
		case "Ni":
			return vInt(r.ni), nil
		case "Nj":
			return vInt(r.nj), nil
		case "Nk":
			return vInt(r.nk), nil
		case "Elem":
			return vInt(r.elem), nil
		case "RowPad":
			return vInt(r.rowPad), nil
		case "PlanePad":
			return vInt(r.planePad), nil
		}
		return vBoundMethod{recv: recv, name: name}, nil
	case *vVector:
		switch name {
		case "Start":
			return vInt(int64(r.block.start)), nil
		case "Size":
			return vInt(int64(r.block.size)), nil
		case "Name":
			return vStr(r.block.name), nil
		case "N":
			return vInt(r.n), nil
		case "Elem":
			return vInt(r.elem), nil
		}
		return vBoundMethod{recv: recv, name: name}, nil
	case *vArena, *vBuilder, vRand, vSink:
		return vBoundMethod{recv: recv, name: name}, nil
	case vUnknown:
		return r, nil
	}
	return unknown(fmt.Sprintf("selector .%s on %T", name, recv)), nil
}

func (in *interp) evalIndex(x *ast.IndexExpr, env *scope) (value, error) {
	recv, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	idx, err := in.eval(x.Index, env)
	if err != nil {
		return nil, err
	}
	switch r := recv.(type) {
	case *vSlice:
		if r.dirty {
			return unknown(r.why), nil
		}
		if c, ok := asConcrete(idx); ok {
			if r.elems != nil {
				if c < 0 || c >= int64(len(r.elems)) {
					return unknown("index out of tracked range"), nil
				}
				return r.elems[c], nil
			}
			return unknown("untracked slice element"), nil
		}
		if why, bad := whyUnknown(idx); bad {
			return unknown(why), nil
		}
		return unknown("slice element read at symbolic index"), nil
	case *vMap:
		if k, ok := idx.(vStr); ok {
			if v, ok := r.entries[string(k)]; ok {
				return v, nil
			}
			return unknown("missing map key " + string(k)), nil
		}
		return unknown("map lookup with non-string key"), nil
	case vStr:
		if c, ok := asConcrete(idx); ok && c >= 0 && c < int64(len(r)) {
			return vInt(int64(r[c])), nil
		}
		return unknown("string index"), nil
	case vUnknown:
		return r, nil
	}
	return unknown(fmt.Sprintf("index into %T", recv)), nil
}

func (in *interp) evalSlice(x *ast.SliceExpr, env *scope) (value, error) {
	recv, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	sl, ok := recv.(*vSlice)
	if !ok {
		return unknown("slice expression on non-slice"), nil
	}
	lo := aConst(0)
	hi := sl.length
	if x.Low != nil {
		v, err := in.eval(x.Low, env)
		if err != nil {
			return nil, err
		}
		if a, ok := asAffine(v); ok {
			lo = a
		} else {
			return unknown("slice with symbolic bound"), nil
		}
	}
	if x.High != nil {
		v, err := in.eval(x.High, env)
		if err != nil {
			return nil, err
		}
		if a, ok := asAffine(v); ok {
			hi = a
		} else {
			return unknown("slice with symbolic bound"), nil
		}
	}
	if hi == nil {
		return unknown("slice of unsized value"), nil
	}
	return &vSlice{length: aSub(hi, lo), dirty: sl.dirty, why: sl.why}, nil
}

func (in *interp) evalComposite(x *ast.CompositeLit, env *scope) (value, error) {
	switch t := x.Type.(type) {
	case *ast.ArrayType:
		var elems []value
		for _, el := range x.Elts {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
		}
		return &vSlice{length: aConst(int64(len(elems))), elems: elems}, nil
	case *ast.MapType:
		m := &vMap{entries: map[string]value{}}
		for _, el := range x.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			k, err := in.eval(kv.Key, env)
			if err != nil {
				return nil, err
			}
			v, err := in.eval(kv.Value, env)
			if err != nil {
				return nil, err
			}
			if ks, ok := k.(vStr); ok {
				m.entries[string(ks)] = v
			} else {
				m.dirty = true
			}
		}
		return m, nil
	case *ast.Ident, *ast.SelectorExpr:
		typeName := typeExprName(t)
		st := newStruct(typeName)
		positional := false
		for _, el := range x.Elts {
			if _, ok := el.(*ast.KeyValueExpr); !ok {
				positional = true
			}
		}
		if positional {
			// Resolve field order for local struct types.
			var fieldNames []string
			if id, ok := t.(*ast.Ident); ok {
				if decl := in.pkg.structType(id.Name); decl != nil {
					for _, f := range decl.Fields.List {
						for _, fn := range f.Names {
							fieldNames = append(fieldNames, fn.Name)
						}
					}
				}
			}
			for i, el := range x.Elts {
				v, err := in.eval(el, env)
				if err != nil {
					return nil, err
				}
				if i < len(fieldNames) {
					st.fields[fieldNames[i]] = v
				} else {
					st.fields[fmt.Sprintf("arg%d", i)] = v
				}
			}
			return st, nil
		}
		for _, el := range x.Elts {
			kv := el.(*ast.KeyValueExpr)
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			v, err := in.eval(kv.Value, env)
			if err != nil {
				return nil, err
			}
			st.fields[key.Name] = v
		}
		return st, nil
	}
	return unknown("composite literal of unsupported type"), nil
}

func typeExprName(t ast.Expr) string {
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.SelectorExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name + "." + tt.Sel.Name
		}
		return tt.Sel.Name
	}
	return "?"
}
