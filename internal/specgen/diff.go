package specgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/staticconf"
)

// Drift lint: compare an extracted spec against the hand-declared one and
// report per-array agreement. The comparison is deliberately tolerant of
// the documented normalizations the extractor applies (per-site accesses
// instead of hand-merged ones, trip-1 dims dropped, rectangular hulls of
// wavefront/triangular domains, element-size inference limits): instead of
// demanding identical Access values it checks, per arena block,
//
//   - the distinct-line footprints agree (Jaccard similarity of the
//     line sets, both clipped to the block's real extent, ≥ JaccardMin);
//   - the reference volumes agree within [1/VolumeRatioMax, VolumeRatioMax];
//
// and layers exact per-access matching on top for field-level detail when
// an access does line up one-to-one. Hand accesses marked Approx are
// deliberate rectangularizations of data-dependent or non-rectangular
// traffic; their arrays are compared by volume only, and may be missing
// from the extraction entirely as long as the extractor reported
// unanalyzable sites (the honest outcome for data-dependent kernels).

const (
	// JaccardMin is the minimum clipped line-set similarity per array.
	JaccardMin = 0.90
	// VolumeRatioMax bounds extracted/hand reference-volume disagreement
	// in either direction. Per-site extraction multiply-counts traffic a
	// hand spec models once (NW touches its block-local buffers at nine
	// sites per pass, ~9× the hand volume), hence the generous bound; it
	// still catches order-of-magnitude synthesis bugs.
	VolumeRatioMax = 16.0
	// diffIterCap bounds the per-access footprint enumeration; accesses
	// past the cap fall back to volume-only comparison.
	diffIterCap = 1 << 22
)

// ArrayDrift is the comparison verdict for one arena block.
type ArrayDrift struct {
	Array       string
	OK          bool
	Why         string  // non-empty when !OK
	Jaccard     float64 // clipped line-set similarity (-1 when volume-only)
	VolumeRatio float64 // extracted volume / hand volume (0 when no hand refs)
	VolumeOnly  bool    // Approx hand accesses or enumeration cap hit
	// Mismatches holds per-field detail from exact per-access matching;
	// informational, does not by itself fail the array.
	Mismatches []string
}

// DriftReport is the full lint result for one kernel.
type DriftReport struct {
	Kernel string
	Arrays []ArrayDrift
	// Extra lists arrays only the extraction references (usually setup
	// traffic below the hand spec's "dominant references" bar). Noted,
	// never failed.
	Extra []string
}

// Clean reports whether every compared array agreed.
func (r *DriftReport) Clean() bool {
	for _, a := range r.Arrays {
		if !a.OK {
			return false
		}
	}
	return true
}

func (r *DriftReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec drift %s:\n", r.Kernel)
	for _, a := range r.Arrays {
		verdict := "ok"
		if !a.OK {
			verdict = "DRIFT: " + a.Why
		}
		fmt.Fprintf(&b, "  %-22s %s", a.Array, verdict)
		if a.VolumeRatio > 0 {
			fmt.Fprintf(&b, " (volume ×%.2f", a.VolumeRatio)
			if !a.VolumeOnly {
				fmt.Fprintf(&b, ", jaccard %.3f", a.Jaccard)
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
		for _, m := range a.Mismatches {
			fmt.Fprintf(&b, "    field: %s\n", m)
		}
	}
	for _, e := range r.Extra {
		fmt.Fprintf(&b, "  %-22s extraction-only (setup traffic)\n", e)
	}
	return b.String()
}

// Diff compares the extraction against the hand-declared spec.
func (ex *Extraction) Diff(hand *staticconf.Spec) *DriftReport {
	rep := &DriftReport{Kernel: ex.Kernel}
	if hand == nil {
		return rep
	}

	blockOf := func(base uint64) (Block, bool) {
		for _, b := range ex.Blocks {
			if base >= b.Start && base < b.Start+b.Size {
				return b, true
			}
		}
		return Block{}, false
	}

	// Group both sides by containing arena block (names in hand specs are
	// human labels; bases are ground truth).
	type side struct{ accs []staticconf.Access }
	handBy := map[uint64]*side{}
	extBy := map[uint64]*side{}
	label := map[uint64]string{}
	var order []uint64
	group := func(m map[uint64]*side, accs []staticconf.Access, name func(staticconf.Access) string) {
		for _, a := range accs {
			b, ok := blockOf(a.Base)
			if !ok {
				// Shouldn't happen: both specs address the same arena.
				b = Block{Name: name(a), Start: a.Base, Size: 1}
			}
			s := m[b.Start]
			if s == nil {
				s = &side{}
				m[b.Start] = s
				if _, seen := label[b.Start]; !seen {
					order = append(order, b.Start)
				}
			}
			if label[b.Start] == "" {
				label[b.Start] = name(a)
			}
			s.accs = append(s.accs, a)
		}
	}
	group(handBy, hand.Accesses, func(a staticconf.Access) string { return a.Array })
	var extAccs []staticconf.Access
	if ex.Spec != nil {
		extAccs = ex.Spec.Accesses
	}
	group(extBy, extAccs, func(a staticconf.Access) string { return a.Array })
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	for _, start := range order {
		h, e := handBy[start], extBy[start]
		if h == nil {
			rep.Extra = append(rep.Extra, label[start])
			continue
		}
		blk, _ := blockOf(start)
		var eaccs []staticconf.Access
		if e != nil {
			eaccs = e.accs
		}
		rep.Arrays = append(rep.Arrays, diffArray(label[start], blk, h.accs, eaccs, ex))
	}
	return rep
}

func diffArray(name string, blk Block, hand, ext []staticconf.Access, ex *Extraction) ArrayDrift {
	d := ArrayDrift{Array: name, Jaccard: -1}
	var exact, approx []staticconf.Access
	for _, a := range hand {
		if a.Approx {
			approx = append(approx, a)
		} else {
			exact = append(exact, a)
		}
	}
	// When the array mixes exact and approximate hand accesses, the
	// approximate ones describe traffic the extractor reports as
	// unanalyzable — compare the exact subset only. An all-approximate
	// array is compared by volume alone.
	cmp := hand
	if len(exact) > 0 && len(approx) > 0 {
		cmp = exact
		d.Mismatches = append(d.Mismatches,
			fmt.Sprintf("%d approximate hand access(es) excluded from the aggregate", len(approx)))
	}
	d.VolumeOnly = len(exact) == 0 && len(hand) > 0

	if len(ext) == 0 {
		if len(exact) == 0 && len(ex.Unanalyzable) > 0 {
			d.OK = true
			d.Mismatches = append(d.Mismatches,
				"approximate hand accesses; extractor reported the sites unanalyzable")
			return d
		}
		d.Why = "array missing from extraction"
		return d
	}

	hv, ev := volume(cmp), volume(ext)
	if hv == 0 {
		d.OK = true
		return d
	}
	d.VolumeRatio = float64(ev) / float64(hv)
	if d.VolumeRatio > VolumeRatioMax || d.VolumeRatio < 1/VolumeRatioMax {
		d.Why = fmt.Sprintf("reference volume drift ×%.2f (hand %d, extracted %d)", d.VolumeRatio, hv, ev)
		return d
	}

	if !d.VolumeOnly {
		hl, hok := lineSet(cmp, blk)
		el, eok := lineSet(ext, blk)
		if !hok || !eok {
			d.VolumeOnly = true
		} else {
			d.Jaccard = jaccard(hl, el)
			if d.Jaccard < JaccardMin {
				d.Why = fmt.Sprintf("footprint drift: clipped line-set jaccard %.3f (hand %d lines, extracted %d lines)",
					d.Jaccard, len(hl), len(el))
				return d
			}
		}
	}

	d.OK = true
	d.Mismatches = append(d.Mismatches, exactMismatches(cmp, ext)...)
	return d
}

// volume counts total references described by the accesses (product of
// trips, including zero-stride multiplicity dims).
func volume(accs []staticconf.Access) int64 {
	var total int64
	for _, a := range accs {
		v := int64(1)
		for _, dm := range a.Dims {
			if dm.Trip > 1 {
				v *= int64(dm.Trip)
			}
		}
		total += v
	}
	return total
}

// lineSet enumerates the distinct cache lines the accesses touch, clipped
// to the block extent. Zero-stride dims add no footprint and are skipped.
// Returns ok=false when an access exceeds the enumeration cap.
func lineSet(accs []staticconf.Access, blk Block) (map[int64]struct{}, bool) {
	lines := map[int64]struct{}{}
	for _, a := range accs {
		var walk []staticconf.Dim
		iters := int64(1)
		for _, dm := range a.Dims {
			if dm.Stride != 0 && dm.Trip > 1 {
				walk = append(walk, dm)
				iters *= int64(dm.Trip)
			}
		}
		if iters > diffIterCap {
			return nil, false
		}
		elem := int64(a.Elem)
		if elem < 1 {
			elem = 1
		}
		idx := make([]int, len(walk))
		for {
			addr := int64(a.Base)
			for i, dm := range walk {
				addr += int64(idx[i]) * dm.Stride
			}
			for b := addr; b < addr+elem; b += 64 {
				if u := uint64(b); u >= blk.Start && u < blk.Start+blk.Size {
					lines[b>>6] = struct{}{}
				}
			}
			if u := uint64(addr + elem - 1); u >= blk.Start && u < blk.Start+blk.Size {
				lines[(addr+elem-1)>>6] = struct{}{}
			}
			i := len(walk) - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < walk[i].Trip {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	return lines, true
}

func jaccard(a, b map[int64]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for l := range a {
		if _, ok := b[l]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// exactMismatches matches hand accesses to extracted ones by base address
// and reports field-level differences for the pairs that line up. Hand
// accesses without a base-matching extracted partner are reported too;
// both kinds are informational (the aggregate check above is the verdict).
func exactMismatches(hand, ext []staticconf.Access) []string {
	var out []string
	used := make([]bool, len(ext))
	for _, h := range hand {
		found := -1
		for i, e := range ext {
			if !used[i] && e.Base == h.Base {
				found = i
				break
			}
		}
		if found < 0 {
			out = append(out, fmt.Sprintf("%s @%#x: no extracted access at this base (per-site split or merged hull)", h.Array, h.Base))
			continue
		}
		used[found] = true
		e := ext[found]
		if !sameDims(h.Dims, e.Dims) {
			out = append(out, fmt.Sprintf("%s @%#x: Dims hand %v vs extracted %v", h.Array, h.Base, fmtDims(h.Dims), fmtDims(e.Dims)))
		}
		if h.Elem != e.Elem {
			out = append(out, fmt.Sprintf("%s @%#x: Elem hand %d vs extracted %d", h.Array, h.Base, h.Elem, e.Elem))
		}
		if h.Window != e.Window {
			out = append(out, fmt.Sprintf("%s @%#x: Window hand %d vs extracted %d", h.Array, h.Base, h.Window, e.Window))
		}
	}
	return out
}

// sameDims compares dim multisets after undoing the extractor's two exact
// rewrites: stream chunking ({s·c, T/c}{s, c} merges back to {s, T}) and
// trip-1 dim drops.
func sameDims(a, b []staticconf.Dim) bool {
	na, nb := normDims(mergeChunks(a)), normDims(mergeChunks(b))
	if len(na) != len(nb) {
		return false
	}
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// mergeChunks folds adjacent dim pairs where the outer stride equals the
// inner dim's full extent ({s·c, T/c} directly above {s, c}) back into one
// dim {s, T·c/c·c}. The rewrite is exact in both directions, so applying
// it before comparison makes chunked and unchunked walks equal.
func mergeChunks(dims []staticconf.Dim) []staticconf.Dim {
	out := append([]staticconf.Dim{}, dims...)
	for {
		merged := false
		for i := 0; i+1 < len(out); i++ {
			o, in := out[i], out[i+1]
			if in.Stride != 0 && o.Stride == in.Stride*int64(in.Trip) {
				out[i] = staticconf.Dim{Stride: in.Stride, Trip: o.Trip * in.Trip}
				out = append(out[:i+1], out[i+2:]...)
				merged = true
				break
			}
		}
		if !merged {
			return out
		}
	}
}

func normDims(dims []staticconf.Dim) []staticconf.Dim {
	out := make([]staticconf.Dim, 0, len(dims))
	for _, d := range dims {
		if d.Trip > 1 {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stride != out[j].Stride {
			return out[i].Stride < out[j].Stride
		}
		return out[i].Trip < out[j].Trip
	})
	return out
}

func fmtDims(dims []staticconf.Dim) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprintf("{%d×%d}", d.Stride, d.Trip)
	}
	return strings.Join(parts, "")
}
