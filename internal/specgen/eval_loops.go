package specgen

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// postTarget is one variable advanced by a loop's post statement, with its
// concrete per-iteration delta.
type postTarget struct {
	name  string
	cell  *cell
	init  *affine
	delta int64
}

// classifyPost recognizes the affine post-statement forms: v++ / v--,
// v += c / v -= c with concrete c, and the parallel form i, j = i-1, j-1.
// All loop variables must already be bound to affine values.
func (in *interp) classifyPost(post ast.Stmt, env *scope) ([]postTarget, bool) {
	grab := func(name string, delta int64) (postTarget, bool) {
		c, ok := env.lookup(name)
		if !ok {
			return postTarget{}, false
		}
		init, ok := asAffine(c.v)
		if !ok {
			return postTarget{}, false
		}
		return postTarget{name: name, cell: c, init: init, delta: delta}, true
	}
	switch p := post.(type) {
	case *ast.IncDecStmt:
		id, ok := p.X.(*ast.Ident)
		if !ok {
			return nil, false
		}
		d := int64(1)
		if p.Tok == token.DEC {
			d = -1
		}
		t, ok := grab(id.Name, d)
		if !ok {
			return nil, false
		}
		return []postTarget{t}, true
	case *ast.AssignStmt:
		switch p.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			if len(p.Lhs) != 1 || len(p.Rhs) != 1 {
				return nil, false
			}
			id, ok := p.Lhs[0].(*ast.Ident)
			if !ok {
				return nil, false
			}
			v, err := in.eval(p.Rhs[0], env)
			if err != nil {
				return nil, false
			}
			d, ok := asConcrete(v)
			if !ok {
				return nil, false
			}
			if p.Tok == token.SUB_ASSIGN {
				d = -d
			}
			t, ok := grab(id.Name, d)
			if !ok || d == 0 {
				return nil, false
			}
			return []postTarget{t}, true
		case token.ASSIGN:
			// Parallel form: every RHS must be (current LHS value) + const.
			if len(p.Lhs) != len(p.Rhs) {
				return nil, false
			}
			var out []postTarget
			for i, l := range p.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					return nil, false
				}
				cur, okc := env.lookup(id.Name)
				if !okc {
					return nil, false
				}
				curA, okc := asAffine(cur.v)
				if !okc {
					return nil, false
				}
				rv, err := in.eval(p.Rhs[i], env)
				if err != nil {
					return nil, false
				}
				ra, okr := asAffine(rv)
				if !okr {
					return nil, false
				}
				diff := aSub(ra, curA)
				if !diff.isConst() || diff.c0 == 0 {
					return nil, false
				}
				out = append(out, postTarget{name: id.Name, cell: cur, init: curA, delta: diff.c0})
			}
			return out, len(out) > 0
		}
	}
	return nil, false
}

func condConjuncts(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return append(condConjuncts(b.X), condConjuncts(b.Y)...)
	}
	if p, ok := e.(*ast.ParenExpr); ok {
		return condConjuncts(p.X)
	}
	return []ast.Expr{e}
}

// conjunctCount turns one comparison conjunct into the affine iteration
// count of the loop: the number of times the body runs before the conjunct
// fails, as a function of outer induction variables. The second result is
// false when the count is a rectangular upper bound rather than the exact
// per-iteration count (non-unit step against a symbolic bound).
func (in *interp) conjunctCount(c ast.Expr, targets []postTarget, env *scope) (*affine, bool, bool) {
	b, ok := c.(*ast.BinaryExpr)
	if !ok {
		return nil, false, false
	}
	op := b.Op
	lhs, rhs := b.X, b.Y
	var tgt *postTarget
	if id, ok := lhs.(*ast.Ident); ok {
		for i := range targets {
			if targets[i].name == id.Name {
				tgt = &targets[i]
			}
		}
	}
	if tgt == nil {
		// Flipped form E op v.
		if id, ok := rhs.(*ast.Ident); ok {
			for i := range targets {
				if targets[i].name == id.Name {
					tgt = &targets[i]
				}
			}
			if tgt != nil {
				lhs, rhs = rhs, lhs
				switch op {
				case token.LSS:
					op = token.GTR
				case token.LEQ:
					op = token.GEQ
				case token.GTR:
					op = token.LSS
				case token.GEQ:
					op = token.LEQ
				}
			}
		}
	}
	if tgt == nil {
		return nil, false, false
	}
	bv, err := in.eval(rhs, env)
	if err != nil {
		return nil, false, false
	}
	bound, ok := asAffine(bv)
	if !ok {
		return nil, false, false
	}
	d := tgt.delta
	switch {
	case d > 0 && op == token.LSS: // v < E: ceil((E-init)/d)
		return ceilDivCount(aSub(bound, tgt.init), d)
	case d > 0 && op == token.LEQ: // v <= E: floor((E-init)/d)+1
		return floorDivPlusOne(aSub(bound, tgt.init), d)
	case d < 0 && op == token.GTR: // v > E: ceil((init-E)/|d|)
		return ceilDivCount(aSub(tgt.init, bound), -d)
	case d < 0 && op == token.GEQ: // v >= E: floor((init-E)/|d|)+1
		return floorDivPlusOne(aSub(tgt.init, bound), -d)
	}
	return nil, false, false
}

func ceilDivCount(num *affine, d int64) (*affine, bool, bool) {
	if d == 1 {
		return num, true, true
	}
	if num.isConst() {
		n := num.c0
		if n <= 0 {
			return aConst(0), true, true
		}
		return aConst((n + d - 1) / d), true, true
	}
	// Symbolic distance with a non-unit step: ceil() is not affine, so fall
	// back to the rectangular maximum of the distance over the enclosing
	// domain. Inexact — the caller must not derive last-iteration values.
	_, hi := rangeOf(num)
	if hi <= 0 {
		return aConst(0), true, true
	}
	return aConst((hi + d - 1) / d), false, true
}

func floorDivPlusOne(num *affine, d int64) (*affine, bool, bool) {
	if d == 1 {
		return aAdd(num, aConst(1)), true, true
	}
	if num.isConst() {
		n := num.c0
		if n < 0 {
			return aConst(0), true, true
		}
		return aConst(n/d + 1), true, true
	}
	_, hi := rangeOf(num)
	if hi < 0 {
		return aConst(0), true, true
	}
	return aConst(hi/d + 1), false, true
}

func (in *interp) execFor(s *ast.ForStmt, env *scope) error {
	env = newScope(env)
	if s.Init != nil {
		if err := in.execStmt(s.Init, env); err != nil {
			return err
		}
	}
	targets, affinePost := []postTarget(nil), false
	if s.Post != nil {
		targets, affinePost = in.classifyPost(s.Post, env)
	}
	if affinePost && s.Cond != nil {
		var counts []*affine
		ok, exact := true, true
		for _, c := range condConjuncts(s.Cond) {
			cnt, okx, okc := in.conjunctCount(c, targets, env)
			if !okc {
				ok = false
				break
			}
			exact = exact && okx
			counts = append(counts, cnt)
		}
		if ok {
			return in.execForAffine(s, env, targets, counts, exact)
		}
	}
	return in.execForConcrete(s, env)
}

func (in *interp) execForAffine(s *ast.ForStmt, env *scope, targets []postTarget, counts []*affine, exact bool) error {
	// Rectangularized trip: min over conjuncts of the count's maximum
	// over the enclosing iteration domain.
	trip := int64(1<<62 - 1)
	for _, cnt := range counts {
		_, hi := rangeOf(cnt)
		if hi < trip {
			trip = hi
		}
	}
	if trip <= 0 {
		// The body never runs anywhere in the domain.
		in.setExitValues(targets, counts, 0, exact)
		return nil
	}

	// A concrete short loop whose body allocates or emits builder ops must
	// run for real: its effects (arena layout, IP numbering) are what the
	// rest of the extraction depends on.
	if c := counts[0]; len(counts) == 1 && exact && c.isConst() && c.c0 <= maxEffectTrip &&
		in.bodyHasEffects(s.Body, env, 0) {
		return in.execForConcrete(s, env)
	}

	// Exact last-iteration expression when all conjunct counts agree.
	var tmax *affine
	agree := exact
	for _, cnt := range counts[1:] {
		if d := aSub(cnt, counts[0]); !d.isConst() || d.c0 != 0 {
			agree = false
		}
	}
	if agree {
		tmax = aSub(counts[0], aConst(1))
	}
	if !exact {
		in.note("loop over %s: non-unit step against a symbolic bound; trip %d is a rectangular upper bound",
			targets[0].name, trip)
	}

	iv := &ivar{
		id:       in.nextIV,
		name:     targets[0].name,
		depth:    len(in.ivStack),
		trip:     int(trip),
		tmaxExpr: tmax,
	}
	in.nextIV++
	in.ivStack = append(in.ivStack, iv)
	defer func() { in.ivStack = in.ivStack[:len(in.ivStack)-1] }()

	// Bind loop variables affinely: v = init + delta·τ.
	skip := map[string]bool{}
	for _, t := range targets {
		t.cell.v = aAdd(t.init, aScale(aIvar(iv), t.delta))
		skip[t.name] = true
	}

	// Loop-carried state: promote concrete accumulators, widen the rest,
	// dirty indexed containers — all before the body runs, so no read can
	// see a stale first-iteration value.
	promos := in.prescanLoopBody(s.Body, env, skip)

	err := in.execStmt(s.Body, newScope(env))
	if cs, ok := err.(*ctrlSignal); ok {
		switch cs.kind {
		case "break":
			in.note("loop over %s: break taken; trip %d is an upper bound", iv.name, trip)
			err = nil
		case "continue":
			err = nil
		}
	}
	if err != nil {
		return err
	}

	// Exit values.
	in.setExitValues(targets, counts, trip, exact)
	for _, p := range promos {
		p.cell.v = aAdd(p.init, aConst(p.delta*trip))
	}
	return nil
}

func (in *interp) setExitValues(targets []postTarget, counts []*affine, trip int64, exactCounts bool) {
	if !exactCounts {
		// The rectangular count overshoots for some outer iterations;
		// a concrete exit value would be wrong wherever it does.
		for _, t := range targets {
			t.cell.v = unknown(fmt.Sprintf("exit value of %s after an inexactly-counted loop", t.name))
		}
		return
	}
	exact := len(counts) == 1
	for _, t := range targets {
		if exact {
			if prod, ok := aMul(counts[0], aConst(t.delta)); ok {
				t.cell.v = aAdd(t.init, prod)
				continue
			}
		}
		t.cell.v = aAdd(t.init, aConst(t.delta*trip))
	}
}

// execForConcrete iterates a loop for real: condition and mutated state
// must stay concrete. This is how geometric loops (half <<= 1), pointer
// setup loops (nodes += per; per *= fanout) and short allocation loops run.
func (in *interp) execForConcrete(s *ast.ForStmt, env *scope) error {
	for iter := 0; ; iter++ {
		if iter >= maxConcIters {
			in.note("concrete loop exceeded %d iterations; widening", maxConcIters)
			in.widenAssigned(s.Body, env, "runaway concrete loop")
			return nil
		}
		if s.Cond != nil {
			cv, err := in.eval(s.Cond, env)
			if err != nil {
				return err
			}
			b, ok := cv.(vBool)
			if !ok {
				why, _ := whyUnknown(cv)
				in.note("loop condition not statically evaluable (%s); body skipped", why)
				in.widenAssigned(s.Body, env, "loop with unevaluable condition: "+why)
				if hasRefCalls(s.Body) {
					in.note("loop with memory references skipped on unevaluable condition")
				}
				return nil
			}
			if !bool(b) {
				return nil
			}
		}
		err := in.execStmt(s.Body, newScope(env))
		if cs, ok := err.(*ctrlSignal); ok {
			switch cs.kind {
			case "break":
				return nil
			case "continue":
				err = nil
			}
		}
		if err != nil {
			return err
		}
		if s.Post != nil {
			if err := in.execStmt(s.Post, env); err != nil {
				return err
			}
		}
	}
}

func (in *interp) execRange(s *ast.RangeStmt, env *scope) error {
	env = newScope(env)
	xv, err := in.eval(s.X, env)
	if err != nil {
		return err
	}
	keyName, valName := "", ""
	if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	if s.Value != nil {
		if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
			valName = id.Name
		}
	}

	switch x := xv.(type) {
	case *vSlice:
		n, concLen := asConcrete(x.length)
		// Concrete unrolling: required when the body has allocation or
		// builder effects, and preferred when element values are tracked
		// and the body needs them (stencil offset tables).
		unroll := false
		if concLen && n <= int64(maxEffectTrip) && in.bodyHasEffects(s.Body, env, 0) {
			unroll = true
		}
		if concLen && valName != "" && x.elems != nil && !x.dirty && n <= maxUnrollIter {
			unroll = true
		}
		if unroll && concLen {
			for i := int64(0); i < n; i++ {
				iterEnv := newScope(env)
				if keyName != "" {
					iterEnv.define(keyName, vInt(i))
				}
				if valName != "" {
					var ev value = unknown("untracked slice element")
					if x.elems != nil && i < int64(len(x.elems)) {
						ev = x.elems[i]
					}
					iterEnv.define(valName, ev)
				}
				err := in.execStmt(s.Body, newScope(iterEnv))
				if cs, ok := err.(*ctrlSignal); ok {
					if cs.kind == "break" {
						return nil
					}
					if cs.kind == "continue" {
						err = nil
					}
				}
				if err != nil {
					return err
				}
			}
			return nil
		}
		// Symbolic index loop.
		_, hi := rangeOf(x.length)
		if hi <= 0 {
			return nil
		}
		var tmax *affine
		if x.length != nil {
			tmax = aSub(x.length, aConst(1))
		}
		iv := &ivar{id: in.nextIV, name: "range", depth: len(in.ivStack), trip: int(hi), tmaxExpr: tmax}
		if keyName != "" {
			iv.name = keyName
		}
		in.nextIV++
		in.ivStack = append(in.ivStack, iv)
		defer func() { in.ivStack = in.ivStack[:len(in.ivStack)-1] }()
		iterEnv := newScope(env)
		if keyName != "" {
			iterEnv.define(keyName, aIvar(iv))
		}
		if valName != "" {
			why := "slice element read at symbolic index"
			if x.dirty {
				why = x.why
			}
			iterEnv.define(valName, unknown(why))
		}
		in.prescanLoopBody(s.Body, iterEnv, map[string]bool{keyName: true, valName: true})
		err := in.execStmt(s.Body, newScope(iterEnv))
		if cs, ok := err.(*ctrlSignal); ok && (cs.kind == "break" || cs.kind == "continue") {
			err = nil
		}
		return err
	case *vMap:
		keys := make([]string, 0, len(x.entries))
		for k := range x.entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			iterEnv := newScope(env)
			if keyName != "" {
				iterEnv.define(keyName, vStr(k))
			}
			if valName != "" {
				iterEnv.define(valName, x.entries[k])
			}
			err := in.execStmt(s.Body, newScope(iterEnv))
			if cs, ok := err.(*ctrlSignal); ok {
				if cs.kind == "break" {
					return nil
				}
				if cs.kind == "continue" {
					err = nil
				}
			}
			if err != nil {
				return err
			}
		}
		return nil
	default:
		why, _ := whyUnknown(xv)
		in.note("range over unanalyzable value (%s); body skipped", why)
		in.widenAssigned(s.Body, env, "range over unanalyzable value")
		return nil
	}
}

type promo struct {
	cell  *cell
	init  *affine
	delta int64
}

// prescanLoopBody prepares outer state for a single symbolic body pass:
//   - accumulators advanced by exactly one `v += c` (concrete c) are
//     promoted to affine functions of the new induction variable;
//   - every other outer variable the body assigns is widened to unknown;
//   - containers stored through at any index are dirtied.
//
// skip names the loop's own induction variables, which are already bound.
func (in *interp) prescanLoopBody(body ast.Stmt, env *scope, skip map[string]bool) []promo {
	// The evaluations below are speculative (inner loop variables are not
	// bound yet), so their failure notes would be noise.
	in.quiet++
	defer func() { in.quiet-- }()
	iv := in.ivStack[len(in.ivStack)-1]
	type accum struct {
		deltas []int64
		plain  bool
	}
	outer := map[string]*accum{}
	local := map[string]bool{}
	record := func(name string, delta int64, plain bool) {
		if name == "" || skip[name] || local[name] {
			return
		}
		if _, ok := env.lookup(name); !ok {
			return
		}
		a := outer[name]
		if a == nil {
			a = &accum{}
			outer[name] = a
		}
		if plain {
			a.plain = true
		} else {
			a.deltas = append(a.deltas, delta)
		}
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
				return true
			}
			for i, l := range s.Lhs {
				switch t := l.(type) {
				case *ast.Ident:
					if s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN {
						if v, err := in.eval(s.Rhs[0], env); err == nil {
							if c, ok := asConcrete(v); ok {
								if s.Tok == token.SUB_ASSIGN {
									c = -c
								}
								record(t.Name, c, false)
								continue
							}
						}
					}
					record(t.Name, 0, true)
					_ = i
				case *ast.IndexExpr:
					if v, err := in.eval(t.X, env); err == nil {
						if sl, ok := v.(*vSlice); ok && !sl.dirty {
							sl.dirty, sl.why = true, "stored inside loop over "+iv.name
						}
					}
				case *ast.SelectorExpr:
					// Field writes on outer structs: widen the field.
					if v, err := in.eval(t.X, env); err == nil {
						if st, ok := v.(*vStruct); ok {
							st.fields[t.Sel.Name] = unknown("field assigned inside loop over " + iv.name)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				d := int64(1)
				if s.Tok == token.DEC {
					d = -1
				}
				record(id.Name, d, false)
			}
		}
		return true
	})
	var promos []promo
	for name, a := range outer {
		c, _ := env.lookup(name)
		if a.plain || len(a.deltas) != 1 {
			if _, already := c.v.(vUnknown); !already {
				c.v = unknown(fmt.Sprintf("loop-carried value of %s across loop over %s", name, iv.name))
			}
			continue
		}
		init, ok := asAffine(c.v)
		if !ok {
			continue // already unknown; stays unknown
		}
		d := a.deltas[0]
		c.v = aAdd(init, aScale(aIvar(iv), d))
		promos = append(promos, promo{cell: c, init: init, delta: d})
	}
	return promos
}

// bodyHasEffects reports whether executing n would allocate arena blocks or
// emit builder instructions — the effects that force concrete execution.
// Closure calls are chased through the environment to a small depth.
func (in *interp) bodyHasEffects(n ast.Node, env *scope, depth int) bool {
	if depth > 6 {
		return false
	}
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if found {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fn.X.(*ast.Ident); ok {
				if c, okc := env.lookup(id.Name); okc {
					switch c.v.(type) {
					case *vArena, *vBuilder:
						found = true
						return false
					}
				}
				if path, okp := in.pkg.imports[id.Name]; okp {
					if path == pathAlloc || path == pathObjfile {
						found = true
						return false
					}
				}
			}
		case *ast.Ident:
			if c, okc := env.lookup(fn.Name); okc {
				if cl, okcl := c.v.(*vClosure); okcl {
					if in.bodyHasEffects(cl.body, cl.env, depth+1) {
						found = true
						return false
					}
				}
			} else if fd, okf := in.pkg.funcs[fn.Name]; okf && in.root != nil {
				if in.bodyHasEffects(fd.Body, in.root, depth+1) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// hasRefCalls is a syntactic check for sink.Ref(...) calls, used only to
// flag skipped regions that would have emitted references.
func hasRefCalls(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Ref" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
