package specgen

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/staticconf"
	"repro/internal/workloads"
)

func loadPkg(t *testing.T) *Package {
	t.Helper()
	dir, err := WorkloadsDir()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// caseStudyCtors lists every case-study constructor with quick-scale
// arguments, paired with the hand-declared builder.
var caseStudyCtors = []struct {
	ctor string
	args []int
	hand func() *workloads.CaseStudy
}{
	{"NewNW", []int{512, 16}, func() *workloads.CaseStudy { return workloads.NewNW(512, 16) }},
	{"NewFFT", []int{128}, func() *workloads.CaseStudy { return workloads.NewFFT(128) }},
	{"NewADI", []int{256, 1}, func() *workloads.CaseStudy { return workloads.NewADI(256, 1) }},
	{"NewTinyDNN", []int{128, 1024, 1}, func() *workloads.CaseStudy { return workloads.NewTinyDNN(128, 1024, 1) }},
	{"NewKripke", []int{64, 32, 32}, func() *workloads.CaseStudy { return workloads.NewKripke(64, 32, 32) }},
	{"NewHimeno", []int{16, 16, 64, 1}, func() *workloads.CaseStudy { return workloads.NewHimeno(16, 16, 64, 1) }},
	{"NewSymmetrizationReps", []int{128, 2}, func() *workloads.CaseStudy { return workloads.NewSymmetrizationReps(128, 2) }},
}

// rodiniaCtors lists the niladic Rodinia constructors.
var rodiniaCtors = []string{
	"Backprop", "BFS", "BTree", "CFD", "Heartwall", "Hotspot",
	"Hotspot3D", "Kmeans", "LavaMD", "Leukocyte", "LUD", "Myocyte",
	"NN", "ParticleFilter", "Pathfinder", "SRAD", "Streamcluster",
}

// dataDependentKernels must come out unanalyzable (at least one site) —
// the honest verdict for gather/random traffic. Extraction must never
// invent an affine description for those sites.
var dataDependentKernels = map[string]bool{
	"bfs": true, "b+tree": true, "cfd": true, "heartwall": true,
	"lavaMD": true, "leukocyte": true, "particlefilter": true,
}

// TestSpecDrift is the spec-drift gate: every hand-declared spec must
// agree with the extracted one under the drift lint's tolerances. Run by
// CI as a dedicated step.
func TestSpecDrift(t *testing.T) {
	p := loadPkg(t)
	g := mem.L1Default()

	check := func(t *testing.T, ex *Extraction, hand *staticconf.Spec) {
		t.Helper()
		if hand == nil {
			return
		}
		rep := ex.Diff(hand)
		if !rep.Clean() {
			t.Errorf("drift detected:\n%s", rep)
		} else {
			t.Logf("\n%s", rep)
		}
	}

	for _, c := range caseStudyCtors {
		t.Run(c.ctor, func(t *testing.T) {
			cse, err := p.ExtractCaseStudy(g, c.ctor, c.args...)
			if err != nil {
				t.Fatal(err)
			}
			hand := c.hand()
			check(t, cse.Original, hand.Original.Spec)
			check(t, cse.Optimized, hand.Optimized.Spec)
		})
	}

	handRodinia := map[string]*staticconf.Spec{}
	for _, prog := range workloads.RodiniaSuite() {
		handRodinia[prog.Name] = prog.Spec
	}
	for _, ctor := range rodiniaCtors {
		t.Run(ctor, func(t *testing.T) {
			ex, err := p.ExtractProgram(g, ctor)
			if err != nil {
				t.Fatal(err)
			}
			check(t, ex, handRodinia[ex.Kernel])
		})
	}
}

// TestDataDependentKernelsUnanalyzable pins that gather/random kernels are
// reported unanalyzable rather than silently mis-extracted, and that
// purely affine kernels stay fully analyzable.
func TestDataDependentKernelsUnanalyzable(t *testing.T) {
	p := loadPkg(t)
	g := mem.L1Default()
	for _, ctor := range rodiniaCtors {
		t.Run(ctor, func(t *testing.T) {
			ex, err := p.ExtractProgram(g, ctor)
			if err != nil {
				t.Fatal(err)
			}
			if dataDependentKernels[ex.Kernel] {
				if len(ex.Unanalyzable) == 0 {
					t.Fatalf("%s is data-dependent but extraction reported no unanalyzable site", ex.Kernel)
				}
				for _, s := range ex.Unanalyzable {
					if s.Why == "" {
						t.Errorf("unanalyzable site %s has no reason", s.IP)
					}
				}
			} else {
				if len(ex.Unanalyzable) != 0 {
					t.Fatalf("%s should be fully affine; unanalyzable: %+v", ex.Kernel, ex.Unanalyzable)
				}
				if ex.Spec == nil || len(ex.Spec.Accesses) == 0 {
					t.Fatalf("%s extracted no accesses", ex.Kernel)
				}
			}
		})
	}
}

// TestExtractedSpecsValidate runs the typed staticconf validation over
// every extracted spec: synthesis must never emit an invalid access.
func TestExtractedSpecsValidate(t *testing.T) {
	p := loadPkg(t)
	g := mem.L1Default()
	for _, c := range caseStudyCtors {
		cse, err := p.ExtractCaseStudy(g, c.ctor, c.args...)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range []*Extraction{cse.Original, cse.Optimized} {
			if ex.Spec == nil {
				continue
			}
			if err := ex.Spec.Validate(); err != nil {
				t.Errorf("%s: %v", ex.Kernel, err)
			}
		}
	}
	for _, ctor := range rodiniaCtors {
		ex, err := p.ExtractProgram(g, ctor)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Spec == nil {
			continue
		}
		if err := ex.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", ex.Kernel, err)
		}
	}
}

// TestGoldenADI pins the ADI original-variant extraction field for field.
// ADI is fully rectangular, so extraction must be exact — any change here
// is a real behavior change in the extractor, not a tolerance issue. The
// extraction is per reference site (hand specs merge the load and store of
// u and drop trip-1 outer dims), so the golden lists all ten sites.
func TestGoldenADI(t *testing.T) {
	p := loadPkg(t)
	cse, err := p.ExtractCaseStudy(mem.L1Default(), "NewADI", 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := cse.Original
	if ex.Spec == nil {
		t.Fatal("nil extracted spec")
	}
	if len(ex.Unanalyzable) != 0 {
		t.Fatalf("unexpected unanalyzable sites: %+v", ex.Unanalyzable)
	}
	// u is at 0x100000, a at 0x180000, b at 0x200000 (256×256 float64
	// rows, 2048-byte row stride). Column sweep (adi.c:4) walks rows
	// outer/columns inner; row sweep (adi.c:8) is the transpose.
	want := []staticconf.Access{
		{Array: "u", Loop: "adi.c:4", Base: 0x100008, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 2048, Trip: 256}, {Stride: 8, Trip: 255}}},
		{Array: "u", Loop: "adi.c:4", Base: 0x100000, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 2048, Trip: 256}, {Stride: 8, Trip: 255}}},
		{Array: "a", Loop: "adi.c:4", Base: 0x180008, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 2048, Trip: 256}, {Stride: 8, Trip: 255}}},
		{Array: "b", Loop: "adi.c:4", Base: 0x200000, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 2048, Trip: 256}, {Stride: 8, Trip: 255}}},
		{Array: "u", Loop: "adi.c:4", Base: 0x100008, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 2048, Trip: 256}, {Stride: 8, Trip: 255}}},
		{Array: "u", Loop: "adi.c:8", Base: 0x100800, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 8, Trip: 256}, {Stride: 2048, Trip: 255}}},
		{Array: "u", Loop: "adi.c:8", Base: 0x100000, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 8, Trip: 256}, {Stride: 2048, Trip: 255}}},
		{Array: "a", Loop: "adi.c:8", Base: 0x180800, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 8, Trip: 256}, {Stride: 2048, Trip: 255}}},
		{Array: "b", Loop: "adi.c:8", Base: 0x200000, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 8, Trip: 256}, {Stride: 2048, Trip: 255}}},
		{Array: "u", Loop: "adi.c:8", Base: 0x100800, Elem: 8, Window: 1, Dims: []staticconf.Dim{{Stride: 8, Trip: 256}, {Stride: 2048, Trip: 255}}},
	}
	got := ex.Spec.Accesses
	if len(got) != len(want) {
		t.Fatalf("%d extracted accesses, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Array != w.Array || g.Loop != w.Loop || g.Base != w.Base ||
			g.Elem != w.Elem || g.Window != w.Window || !sameDims(g.Dims, w.Dims) {
			t.Errorf("access %d:\n got  %+v\n want %+v", i, g, w)
		}
	}

	// Every hand-declared access must have an exact extracted partner
	// (same base, dims modulo trip-1 drops, elem): the extraction is a
	// superset of the hand spec at per-site granularity.
	hand := workloads.NewADI(256, 1)
	for _, h := range hand.Original.Spec.Accesses {
		matched := false
		for _, g := range got {
			if g.Base == h.Base && g.Elem == h.Elem && sameDims(g.Dims, h.Dims) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("hand access %s @%#x %s has no exact extracted partner", h.Array, h.Base, fmtDims(h.Dims))
		}
	}
}

// TestExtractionBlocks pins that extraction exposes the arena allocations
// (the drift lint and trace verifier clip footprints against them).
func TestExtractionBlocks(t *testing.T) {
	p := loadPkg(t)
	ex, err := p.ExtractProgram(mem.L1Default(), "Hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Blocks) < 3 {
		t.Fatalf("hotspot should allocate ≥3 arrays, got %+v", ex.Blocks)
	}
	names := make([]string, len(ex.Blocks))
	for i, b := range ex.Blocks {
		if b.Size == 0 {
			t.Errorf("block %s has zero size", b.Name)
		}
		names[i] = b.Name
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"temp", "power", "result"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing block %q in %v", want, names)
		}
	}
}

// TestTraceVerifiesHandSpecs replays every spec-carrying workload at quick
// scale and checks the hand-declared spec against the observed stream —
// the regression net under the declared specs themselves.
func TestTraceVerifiesHandSpecs(t *testing.T) {
	var progs []*workloads.Program
	for _, c := range caseStudyCtors {
		cs := c.hand()
		progs = append(progs, cs.Original, cs.Optimized)
	}
	progs = append(progs, workloads.RodiniaSuite()...)
	for _, prog := range progs {
		if prog.Spec == nil {
			continue
		}
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			rep := VerifyTrace(prog, prog.Spec, false)
			if !rep.Clean() {
				t.Errorf("hand spec disagrees with trace:\n%s", rep)
			} else {
				t.Logf("\n%s", rep)
			}
		})
	}
}

// TestTraceVerifiesExtractedSpecs replays the same workloads and checks
// the EXTRACTED specs against the observed stream: the extractor's output
// must describe the addresses the program really emits, independently of
// the hand specs. Extractions with unanalyzable sites are verified as
// partial (coverage direction skipped, volume and phantom-footprint kept).
func TestTraceVerifiesExtractedSpecs(t *testing.T) {
	p := loadPkg(t)
	g := mem.L1Default()

	verify := func(t *testing.T, prog *workloads.Program, ex *Extraction) {
		t.Helper()
		if ex.Spec == nil {
			if len(ex.Unanalyzable) == 0 {
				t.Fatalf("%s: no spec and no unanalyzable sites", prog.Name)
			}
			return
		}
		rep := VerifyTrace(prog, ex.Spec, len(ex.Unanalyzable) > 0)
		if !rep.Clean() {
			t.Errorf("extracted spec disagrees with trace:\n%s", rep)
		} else {
			t.Logf("\n%s", rep)
		}
	}

	for _, c := range caseStudyCtors {
		c := c
		t.Run(c.ctor, func(t *testing.T) {
			cse, err := p.ExtractCaseStudy(g, c.ctor, c.args...)
			if err != nil {
				t.Fatal(err)
			}
			hand := c.hand()
			verify(t, hand.Original, cse.Original)
			verify(t, hand.Optimized, cse.Optimized)
		})
	}

	byName := map[string]*workloads.Program{}
	for _, prog := range workloads.RodiniaSuite() {
		byName[prog.Name] = prog
	}
	for _, ctor := range rodiniaCtors {
		ctor := ctor
		t.Run(ctor, func(t *testing.T) {
			ex, err := p.ExtractProgram(g, ctor)
			if err != nil {
				t.Fatal(err)
			}
			prog := byName[ex.Kernel]
			if prog == nil {
				t.Fatalf("no Rodinia program named %q", ex.Kernel)
			}
			verify(t, prog, ex)
		})
	}
}
