package specgen

import (
	"testing"

	"repro/internal/advisor"
	"repro/internal/mem"
	"repro/internal/staticconf"
)

// extractedSpecFunc adapts ExtractPadVariant to the advisor's Spec option:
// the pad-variant spec is re-derived from source for every candidate pad,
// abstaining (nil) whenever extraction fails.
func extractedSpecFunc(t *testing.T, p *Package, g mem.Geometry, ctor string, args []int) func(pad uint64) *staticconf.Spec {
	return func(pad uint64) *staticconf.Spec {
		ex, err := p.ExtractPadVariant(g, ctor, pad, args...)
		if err != nil {
			t.Logf("%s pad %d: extraction failed, pruning abstains: %v", ctor, pad, err)
			return nil
		}
		return ex.Spec
	}
}

// advisorFixFamilies mirrors the fix families of the advisor's own case
// study test: the pads that break the conflicting alignment the way the
// paper's hand fix does. nil means any non-zero pad is acceptable.
var advisorFixFamilies = map[string][]uint64{
	"NewNW":      {16, 32, 64, 96, 128},
	"NewFFT":     {8, 16, 32, 64, 128},
	"NewADI":     {8, 16, 32, 64},
	"NewTinyDNN": {8, 16, 32, 64},
	"NewKripke":  nil,
	"NewHimeno":  {8, 16, 32, 64},
}

// TestAdvisorStaticFirstFromExtractedSpecs closes the loop on the advisor:
// static-first pruning driven entirely by extracted specs must still land
// on a pad from the paper's fix family, improve on the baseline, and do so
// from strictly fewer simulations than the full sweep — with no
// hand-written spec anywhere.
//
// Unlike TestStaticFirstMatchesFullSweep (which pins hand specs to the
// exact full-sweep recommendation), the contract here is deliberately the
// pruning guarantee rather than recommendation identity: extracted specs
// chunk long streams against one set span, so a near-aliasing stride (ADI
// rows at pad 8, stride 2056) reads as locally set-camping and gets
// pruned, and the advisor settles on the next fix in the family. The
// guarantee that matters is that pruning never discards every good fix.
func TestAdvisorStaticFirstFromExtractedSpecs(t *testing.T) {
	p := loadPkg(t)
	g := mem.L1Default()

	for _, c := range caseStudyCtors {
		family, known := advisorFixFamilies[c.ctor]
		if !known {
			continue // not part of the advisor's case-study surface
		}
		cs := c.hand()
		t.Run(c.ctor, func(t *testing.T) {
			full, err := advisor.RecommendPad(cs.PadBuilder, advisor.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sf, err := advisor.RecommendPad(cs.PadBuilder, advisor.Options{
				StaticFirst: true,
				Spec:        extractedSpecFunc(t, p, g, c.ctor, c.args),
			})
			if err != nil {
				t.Fatal(err)
			}
			if sf.Best.Pad == 0 {
				t.Errorf("extracted-spec pruning kept the conflicting pad-0 layout")
			}
			if sf.Improvement() <= 0 {
				t.Errorf("improvement %.3f, want > 0", sf.Improvement())
			}
			if sf.Best.CF >= sf.Baseline.CF {
				t.Errorf("cf did not drop: %.3f -> %.3f", sf.Baseline.CF, sf.Best.CF)
			}
			if family != nil && !containsPad(family, sf.Best.Pad) {
				t.Errorf("recommended pad %d outside the paper's fix family %v",
					sf.Best.Pad, family)
			}
			if len(sf.Candidates) >= len(full.Candidates) {
				t.Errorf("pruning simulated %d candidates, full sweep %d — extracted specs bought nothing",
					len(sf.Candidates), len(full.Candidates))
			}
			if len(sf.Pruned)+len(sf.Candidates) != len(full.Candidates) {
				t.Errorf("pruned %d + simulated %d != %d candidates",
					len(sf.Pruned), len(sf.Candidates), len(full.Candidates))
			}
			if sf.Best.Pad != full.Best.Pad {
				t.Logf("note: pruning settled on pad %d where the full sweep prefers %d (both in family)",
					sf.Best.Pad, full.Best.Pad)
			}
		})
	}
}

func containsPad(pads []uint64, pad uint64) bool {
	for _, p := range pads {
		if p == pad {
			return true
		}
	}
	return false
}
