package specgen

import (
	"fmt"
	"go/ast"
)

// value is the abstract domain of the interpreter. Concrete scalars are
// *affine with no terms (so loop arithmetic needs no case split); strings
// and bools stay concrete; everything data-dependent is vUnknown with the
// first cause attached.
type value interface{}

type (
	vBool bool
	vStr  string

	// vUnknown taints anything the extractor cannot track affinely.
	vUnknown struct{ reason string }

	// vTuple carries multi-value returns and assignments.
	vTuple []value
)

func unknown(reason string) vUnknown { return vUnknown{reason: reason} }

func vInt(c int64) *affine { return aConst(c) }

// asAffine views v as an affine expression when possible.
func asAffine(v value) (*affine, bool) {
	a, ok := v.(*affine)
	return a, ok
}

// asConcrete views v as a concrete int64.
func asConcrete(v value) (int64, bool) {
	if a, ok := v.(*affine); ok && a.isConst() {
		return a.c0, true
	}
	return 0, false
}

func whyUnknown(vs ...value) (string, bool) {
	for _, v := range vs {
		if u, ok := v.(vUnknown); ok {
			return u.reason, true
		}
	}
	return "", false
}

// vSlice models slices and arrays. elems non-nil means element values are
// tracked individually (composite literals, small setup arrays); a dirty
// slice has had a store at a symbolic index, so reads return vUnknown.
type vSlice struct {
	length *affine
	elems  []value
	dirty  bool
	why    string // first reason the slice went dirty
}

// vStruct models struct values (and pointers to them: the interpreter is
// reference-semantics throughout, which is safe because the workloads
// never copy the structs they mutate).
type vStruct struct {
	typeName string
	fields   map[string]value
}

func newStruct(typeName string) *vStruct {
	return &vStruct{typeName: typeName, fields: map[string]value{}}
}

// vClosure is a function literal (or declared function) plus its
// environment. recv carries the method receiver for declared methods.
type vClosure struct {
	fn   *ast.FuncType
	body *ast.BlockStmt
	env  *scope
	name string
}

// scope is one lexical environment frame. Variables live in cells so that
// closures share rebinding with their defining scope, matching Go.
type scope struct {
	parent *scope
	vars   map[string]*cell
}

type cell struct{ v value }

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[string]*cell{}}
}

func (s *scope) lookup(name string) (*cell, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if c, ok := sc.vars[name]; ok {
			return c, true
		}
	}
	return nil, false
}

func (s *scope) define(name string, v value) *cell {
	c := &cell{v: v}
	if name != "_" {
		s.vars[name] = c
	}
	return c
}

// ---- models of the runtime packages -----------------------------------
//
// The models below replicate the address arithmetic of internal/alloc and
// the IP bookkeeping of internal/objfile exactly, so the extracted bases
// and strides are the numbers the real program computes. They are small
// on purpose: the arena hands out the same 64-byte-aligned addresses, the
// builder hands out unique IPs that remember their innermost loop.

// vArena mirrors alloc.Arena.
type vArena struct {
	next   uint64
	blocks []vBlock
}

type vBlock struct {
	name  string
	start uint64
	size  uint64
}

const arenaDefaultBase = 0x10_0000 // alloc.DefaultBase

func newArena() *vArena { return &vArena{next: arenaDefaultBase} }

func (a *vArena) alloc(name string, size uint64, align uint64) (vBlock, error) {
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		return vBlock{}, fmt.Errorf("specgen: arena alignment %d not a power of two", align)
	}
	start := (a.next + align - 1) &^ (align - 1)
	a.next = start + size
	b := vBlock{name: name, start: start, size: size}
	a.blocks = append(a.blocks, b)
	return b, nil
}

func (a *vArena) find(addr uint64) (vBlock, bool) {
	for _, b := range a.blocks {
		if addr >= b.start && addr < b.start+b.size {
			return b, true
		}
	}
	return vBlock{}, false
}

// vMatrix2D mirrors alloc.Matrix2D: At(i,j) = start + i·rowStride + j·elem.
type vMatrix2D struct {
	block      vBlock
	rows, cols int64
	elem       int64
	rowPad     int64
}

func (m *vMatrix2D) rowStride() int64 { return m.cols*m.elem + m.rowPad }

func (m *vMatrix2D) at(i, j *affine) *affine {
	return aAdd(aConst(int64(m.block.start)),
		aAdd(aScale(i, m.rowStride()), aScale(j, m.elem)))
}

// vMatrix3D mirrors alloc.Matrix3D.
type vMatrix3D struct {
	block      vBlock
	ni, nj, nk int64
	elem       int64
	rowPad     int64
	planePad   int64
}

func (m *vMatrix3D) rowStride() int64   { return m.nk*m.elem + m.rowPad }
func (m *vMatrix3D) planeStride() int64 { return m.nj*m.rowStride() + m.planePad }

func (m *vMatrix3D) at(i, j, k *affine) *affine {
	return aAdd(aConst(int64(m.block.start)),
		aAdd(aScale(i, m.planeStride()),
			aAdd(aScale(j, m.rowStride()), aScale(k, m.elem))))
}

// vVector mirrors alloc.Vector.
type vVector struct {
	block vBlock
	n     int64
	elem  int64
}

func (v *vVector) at(i *affine) *affine {
	return aAdd(aConst(int64(v.block.start)), aScale(i, v.elem))
}

// vBuilder mirrors objfile.Builder closely enough for extraction: every
// Load/Store returns a fresh vIP remembering its site and the loop stack
// that was open at emission, which is exactly the loop attribution the
// offline analyzer later recovers from the binary.
type vBuilder struct {
	nextIP    uint64
	loopStack []string // "file:line"
	ips       []*vIP
}

type vIP struct {
	id    uint64
	file  string
	line  int64
	write bool
	loop  string // innermost enclosing builder loop, "" at top level
}

func newBuilder() *vBuilder { return &vBuilder{nextIP: 0x400_000} }

func (b *vBuilder) emit(file string, line int64, write bool) *vIP {
	ip := &vIP{id: b.nextIP, file: file, line: line, write: write}
	b.nextIP += 4
	if n := len(b.loopStack); n > 0 {
		ip.loop = b.loopStack[n-1]
	}
	b.ips = append(b.ips, ip)
	return ip
}

func (b *vBuilder) loop(file string, line int64) {
	b.loopStack = append(b.loopStack, fmt.Sprintf("%s:%d", file, line))
	b.nextIP += 4
}

func (b *vBuilder) endLoop() {
	if len(b.loopStack) > 0 {
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
	}
	b.nextIP += 4
}

// vRand models stats.Rand: every draw is data-dependent by definition.
type vRand struct{}

// vSink is the trace.Sink the extracted runThread writes into; Ref calls
// land in the interpreter's event stream.
type vSink struct{}

// vBinary and vProgramPart stand in for objfile.Binary and other opaque
// results that flow through the constructors but are never inspected.
type vOpaque struct{ kind string }
