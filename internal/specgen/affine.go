// Package specgen derives staticconf access specifications directly from
// the Go source of the workload kernels — the "analyze the program text"
// half of the static conflict story (Gysi et al.; Razzak et al.), closing
// the loop that internal/workloads/specs.go warns about: hand-written
// specs can silently drift from the generators they describe.
//
// The extractor is a small abstract interpreter over go/ast. It evaluates
// a workload constructor with concrete scalar arguments, mirrors the
// effects of the alloc arena and the objfile builder exactly (so bases and
// strides are numerically identical to the real program), and runs the
// kernel's runThread body with every loop induction variable kept
// symbolic. Each sink.Ref call yields one event whose address is an affine
// expression over the live induction variables; synthesis (synth.go) turns
// the event stream into staticconf.Access values. Addresses the
// interpreter cannot express affinely — random gathers, pointer-chasing
// descents, loop-carried non-affine values — become explicitly reported
// unanalyzable sites, never mis-extracted numbers.
package specgen

import (
	"fmt"
	"sort"
	"strings"
)

// ivar is one symbolic loop induction variable τ, counting iterations
// 0 … Trip-1. The surface loop variable relates to it affinely
// (v = lo + step·τ); affine expressions carry τ terms directly.
type ivar struct {
	id    int    // creation order, unique per extraction
	name  string // surface variable name, for diagnostics
	depth int    // loop-nest depth at creation (outermost = 0)
	// trip is the rectangularized iteration count: the maximum of the
	// exact count over the enclosing iteration domain. Always ≥ 1 for a
	// loop whose body runs.
	trip int
	// tmaxExpr, when non-nil, is the exact affine expression (over outer
	// ivs) of the last iteration index τ_max = count-1. Unit-step loops
	// have it exactly; it is what keeps triangular bounds (k ≤ d) exact
	// in rangeOf instead of decaying to the rectangular hull.
	tmaxExpr *affine
	// fresh marks ivs introduced at closure boundaries to rebind a
	// skewed (mixed-sign) argument as one rectangular dimension; sources
	// lists the ivs the argument coupled, which the fresh variable
	// absorbs (their zero-stride dims are dropped at synthesis).
	fresh   bool
	sources []*ivar
}

// affine is c0 + Σ coeff_i · τ_i with concrete int64 coefficients.
// The zero value is the constant 0. Terms are kept sorted by iv id and
// never carry a zero coefficient.
type affine struct {
	c0    int64
	terms []term
}

type term struct {
	iv *ivar
	c  int64
}

func aConst(c int64) *affine { return &affine{c0: c} }

func aIvar(iv *ivar) *affine { return &affine{terms: []term{{iv: iv, c: 1}}} }

func (a *affine) isConst() bool { return len(a.terms) == 0 }

// constVal returns the constant value; only meaningful when isConst.
func (a *affine) constVal() int64 { return a.c0 }

func (a *affine) coeff(iv *ivar) int64 {
	for _, t := range a.terms {
		if t.iv == iv {
			return t.c
		}
	}
	return 0
}

func (a *affine) clone() *affine {
	return &affine{c0: a.c0, terms: append([]term(nil), a.terms...)}
}

func aAdd(a, b *affine) *affine {
	out := &affine{c0: a.c0 + b.c0}
	i, j := 0, 0
	for i < len(a.terms) && j < len(b.terms) {
		ta, tb := a.terms[i], b.terms[j]
		switch {
		case ta.iv.id < tb.iv.id:
			out.terms = append(out.terms, ta)
			i++
		case ta.iv.id > tb.iv.id:
			out.terms = append(out.terms, tb)
			j++
		default:
			if c := ta.c + tb.c; c != 0 {
				out.terms = append(out.terms, term{iv: ta.iv, c: c})
			}
			i, j = i+1, j+1
		}
	}
	out.terms = append(out.terms, a.terms[i:]...)
	out.terms = append(out.terms, b.terms[j:]...)
	return out
}

func aNeg(a *affine) *affine { return aScale(a, -1) }

func aSub(a, b *affine) *affine { return aAdd(a, aNeg(b)) }

func aScale(a *affine, k int64) *affine {
	if k == 0 {
		return aConst(0)
	}
	out := &affine{c0: a.c0 * k, terms: make([]term, 0, len(a.terms))}
	for _, t := range a.terms {
		out.terms = append(out.terms, term{iv: t.iv, c: t.c * k})
	}
	return out
}

// aMul multiplies two affine expressions; it succeeds only when at least
// one side is constant (the product would otherwise be quadratic).
func aMul(a, b *affine) (*affine, bool) {
	if a.isConst() {
		return aScale(b, a.c0), true
	}
	if b.isConst() {
		return aScale(a, b.c0), true
	}
	return nil, false
}

// aDiv divides by a constant; exact only when every coefficient divides.
// Division by 1 is always exact (the span(n, tid=0, threads=1) path).
func aDiv(a, b *affine) (*affine, bool) {
	if !b.isConst() || b.c0 == 0 {
		return nil, false
	}
	d := b.c0
	if d == 1 {
		return a, true
	}
	if a.isConst() {
		return aConst(a.c0 / d), true
	}
	if a.c0%d != 0 {
		return nil, false
	}
	out := &affine{c0: a.c0 / d}
	for _, t := range a.terms {
		if t.c%d != 0 {
			return nil, false
		}
		out.terms = append(out.terms, term{iv: t.iv, c: t.c / d})
	}
	return out, true
}

// aMod reduces modulo a constant. Only the always-exact cases are handled:
// mod 1 is 0, and a constant reduces directly.
func aMod(a, b *affine) (*affine, bool) {
	if !b.isConst() || b.c0 == 0 {
		return nil, false
	}
	if b.c0 == 1 {
		return aConst(0), true
	}
	if a.isConst() {
		return aConst(a.c0 % b.c0), true
	}
	return nil, false
}

// substitute replaces iv with the expression e (over strictly outer ivs).
func (a *affine) substitute(iv *ivar, e *affine) *affine {
	c := a.coeff(iv)
	if c == 0 {
		return a
	}
	out := &affine{c0: a.c0}
	for _, t := range a.terms {
		if t.iv != iv {
			out.terms = append(out.terms, t)
		}
	}
	return aAdd(out, aScale(e, c))
}

// deepest returns the term whose iv was created last (innermost); ivs are
// created outside-in, so the largest id is the innermost dependency.
func (a *affine) deepest() (term, bool) {
	if len(a.terms) == 0 {
		return term{}, false
	}
	best := a.terms[0]
	for _, t := range a.terms[1:] {
		if t.iv.id > best.iv.id {
			best = t
		}
	}
	return best, true
}

// rangeOf computes the inclusive value range of a over the iteration
// domain. When an iv has an exact symbolic last-iteration expression
// (unit-step loops), substituting it preserves cross-variable coupling —
// the triangular k ≤ d bound of a wavefront stays exact instead of
// widening to the rectangular hull. Ivs without one fall back to the
// rectangularized [0, trip-1] interval.
func rangeOf(a *affine) (lo, hi int64) {
	const maxSubst = 64
	return rangeOfDepth(a, maxSubst)
}

func rangeOfDepth(a *affine, budget int) (lo, hi int64) {
	t, ok := a.deepest()
	if !ok {
		return a.c0, a.c0
	}
	if budget <= 0 || t.iv.tmaxExpr == nil {
		// Rectangular interval for this iv.
		rest := a.substitute(t.iv, aConst(0))
		rlo, rhi := rangeOfDepth(rest, budget-1)
		ext := t.c * int64(t.iv.trip-1)
		if ext >= 0 {
			return rlo, rhi + ext
		}
		return rlo + ext, rhi
	}
	// Exact: evaluate at τ = 0 and τ = τ_max symbolically, recurse.
	atZero := a.substitute(t.iv, aConst(0))
	atMax := a.substitute(t.iv, t.iv.tmaxExpr)
	zlo, zhi := rangeOfDepth(atZero, budget-1)
	mlo, mhi := rangeOfDepth(atMax, budget-1)
	if mlo < zlo {
		zlo = mlo
	}
	if mhi > zhi {
		zhi = mhi
	}
	return zlo, zhi
}

// mixedSign reports whether a couples ivs with both positive and negative
// coefficients — the signature of a skewed (wavefront) iteration domain
// that a rectangular dim vector cannot represent directly.
func (a *affine) mixedSign() bool {
	pos, neg := false, false
	for _, t := range a.terms {
		if t.c > 0 {
			pos = true
		}
		if t.c < 0 {
			neg = true
		}
	}
	return pos && neg
}

func (a *affine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", a.c0)
	ts := append([]term(nil), a.terms...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].iv.id < ts[j].iv.id })
	for _, t := range ts {
		fmt.Fprintf(&b, " + %d·%s", t.c, t.iv.name)
	}
	return b.String()
}
