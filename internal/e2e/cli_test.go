// Package e2e_test builds the real CLI binaries and drives them as a user
// would: black-box process-level tests asserting exit codes and key output
// lines for both a clean and a pathological scenario.
package e2e_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// binDir holds the binaries built once in TestMain.
var binDir string

// moduleRoot returns the repository root (the directory of go.mod), derived
// from this source file's location so the tests work from any working
// directory.
func moduleRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("e2e: cannot locate caller")
	}
	root := filepath.Join(filepath.Dir(file), "..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("e2e: %s does not look like the module root: %w", root, err)
	}
	return filepath.Abs(root)
}

func TestMain(m *testing.M) {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dir, err := os.MkdirTemp("", "ccprof-e2e-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	for _, cmd := range []string{"ccprof", "ccprofd", "conflint", "experiments"} {
		build := exec.Command("go", "build", "-o", filepath.Join(dir, cmd), "./cmd/"+cmd)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "e2e: go build ./cmd/%s: %v\n%s", cmd, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes a built binary and returns its combined stdout, stderr, and
// exit code.
func run(t *testing.T, bin string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, bin), args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", bin, args, err)
	}
	return out.String(), errb.String(), exit
}

func TestCCProfList(t *testing.T) {
	stdout, stderr, exit := run(t, "ccprof", "-list")
	if exit != 0 {
		t.Fatalf("ccprof -list: exit %d, stderr %q", exit, stderr)
	}
	for _, w := range []string{"nw", "adi", "himeno"} {
		if !strings.Contains(stdout, w) {
			t.Errorf("ccprof -list output is missing workload %q:\n%s", w, stdout)
		}
	}
}

// TestCCProfPathological profiles the NW original build, the paper's
// flagship conflict case: the report must flag conflict misses.
func TestCCProfPathological(t *testing.T) {
	stdout, stderr, exit := run(t, "ccprof", "nw")
	if exit != 0 {
		t.Fatalf("ccprof nw: exit %d, stderr %q", exit, stderr)
	}
	for _, w := range []string{"profiled nw", "CCProf report for nw", "CONFLICT MISSES DETECTED"} {
		if !strings.Contains(stdout, w) {
			t.Errorf("ccprof nw output is missing %q:\n%s", w, stdout)
		}
	}
}

// TestCCProfClean profiles the optimized (padded) NW build: same kernel,
// conflicts gone, clean verdict.
func TestCCProfClean(t *testing.T) {
	stdout, stderr, exit := run(t, "ccprof", "-variant", "optimized", "nw")
	if exit != 0 {
		t.Fatalf("ccprof -variant optimized nw: exit %d, stderr %q", exit, stderr)
	}
	if !strings.Contains(stdout, "no significant conflict misses") {
		t.Errorf("optimized NW should be clean:\n%s", stdout)
	}
	if strings.Contains(stdout, "CONFLICT MISSES DETECTED") {
		t.Errorf("optimized NW reported conflicts:\n%s", stdout)
	}
}

func TestCCProfUnknownWorkload(t *testing.T) {
	_, stderr, exit := run(t, "ccprof", "no-such-workload")
	if exit != 1 {
		t.Fatalf("ccprof no-such-workload: exit %d, want 1 (stderr %q)", exit, stderr)
	}
	if !strings.Contains(stderr, "no-such-workload") {
		t.Errorf("stderr does not name the unknown workload: %q", stderr)
	}
}

func TestCCProfUsage(t *testing.T) {
	_, stderr, exit := run(t, "ccprof")
	if exit != 2 {
		t.Fatalf("ccprof (no args): exit %d, want 2", exit)
	}
	if !strings.Contains(stderr, "usage: ccprof") {
		t.Errorf("stderr is not the usage message: %q", stderr)
	}
}

// TestCCProfObsSnapshot checks the observability flag end to end: -obs
// must dump a snapshot whose counters cover the PMU and the report phase.
func TestCCProfObsSnapshot(t *testing.T) {
	stdout, stderr, exit := run(t, "ccprof", "-obs", "nw")
	if exit != 0 {
		t.Fatalf("ccprof -obs nw: exit %d, stderr %q", exit, stderr)
	}
	if !strings.Contains(stdout, "CCProf report for nw") {
		t.Errorf("-obs must not change the report:\n%s", stdout)
	}
	for _, w := range []string{"--- obs snapshot ---", `"pmu.refs"`, `"trace.refs_streamed"`, `"phases"`, `"profile"`} {
		if !strings.Contains(stderr, w) {
			t.Errorf("obs snapshot is missing %q:\n%s", w, stderr)
		}
	}
}

// TestCCProfAnalytic checks the closed-form tier-0 report end to end:
// -analytic must print the arithmetic verdict before the profiled one,
// flagging the NW original and clearing the optimized build.
func TestCCProfAnalytic(t *testing.T) {
	stdout, stderr, exit := run(t, "ccprof", "-analytic", "nw")
	if exit != 0 {
		t.Fatalf("ccprof -analytic nw: exit %d, stderr %q", exit, stderr)
	}
	for _, w := range []string{"analytic model of nw", "analytic conflict model", "verdict: conflict", "CCProf report for nw"} {
		if !strings.Contains(stdout, w) {
			t.Errorf("ccprof -analytic nw output is missing %q:\n%s", w, stdout)
		}
	}
	stdout, stderr, exit = run(t, "ccprof", "-analytic", "-variant", "optimized", "nw")
	if exit != 0 {
		t.Fatalf("ccprof -analytic -variant optimized nw: exit %d, stderr %q", exit, stderr)
	}
	if !strings.Contains(stdout, "verdict: clean") {
		t.Errorf("optimized NW should be analytically clean:\n%s", stdout)
	}
}

func TestConflintPathological(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "specgen", "testdata", "pathological")
	stdout, stderr, exit := run(t, "conflint", "-fail", dir)
	if exit != 1 {
		t.Fatalf("conflint -fail on pathological fixture: exit %d, want 1 (stderr %q)", exit, stderr)
	}
	if !strings.Contains(stdout, "kernels linted") || strings.Contains(stdout, " 0 findings") {
		t.Errorf("pathological fixture should produce findings:\n%s", stdout)
	}
}

func TestConflintClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "specgen", "testdata", "clean")
	stdout, stderr, exit := run(t, "conflint", "-fail", dir)
	if exit != 0 {
		t.Fatalf("conflint -fail on clean fixture: exit %d, want 0 (stderr %q, stdout %q)", exit, stderr, stdout)
	}
	if !strings.Contains(stdout, "0 findings") {
		t.Errorf("clean fixture should report 0 findings:\n%s", stdout)
	}
}

// TestConflintJSON drives the machine-readable mode: the document must
// parse, split file/line out of the loop location, and carry the
// analytic severity pricing on every finding.
func TestConflintJSON(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "specgen", "testdata", "pathological")
	stdout, stderr, exit := run(t, "conflint", "-json", dir)
	if exit != 0 {
		t.Fatalf("conflint -json: exit %d, stderr %q", exit, stderr)
	}
	var doc struct {
		Kernels  int `json:"kernels"`
		Findings []struct {
			Kernel      string  `json:"kernel"`
			File        string  `json:"file"`
			Line        int     `json:"line"`
			Kind        string  `json:"kind"`
			Severity    string  `json:"severity"`
			PredictedCF float64 `json:"predicted_cf"`
			Fingerprint string  `json:"fingerprint"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("conflint -json output is not valid JSON: %v\n%s", err, stdout)
	}
	if doc.Kernels != 3 || len(doc.Findings) == 0 {
		t.Fatalf("expected 3 kernels with findings, got %d kernels, %d findings", doc.Kernels, len(doc.Findings))
	}
	sawHigh := false
	for _, f := range doc.Findings {
		if f.Severity == "" {
			t.Errorf("finding %s/%s has no severity", f.Kernel, f.Kind)
		}
		if f.Severity == "high" {
			sawHigh = true
			if f.PredictedCF < 0.7 {
				t.Errorf("high-severity finding %s/%s has predicted cf %.2f < 0.7", f.Kernel, f.Kind, f.PredictedCF)
			}
		}
		// Whole-kernel rules carry no kernel-space loop coordinate; every
		// per-access finding must.
		if f.Kind != "static-conflict" && f.Kind != "padfix" && (f.File == "" || f.Line == 0) {
			t.Errorf("per-access finding %s/%s is missing file/line", f.Kernel, f.Kind)
		}
		if f.Fingerprint == "" {
			t.Errorf("finding %s/%s has no fingerprint", f.Kernel, f.Kind)
		}
	}
	if !sawHigh {
		t.Error("pathological fixture produced no high-severity finding")
	}
}

// TestConflintBaseline checks the ratchet: against a baseline of its own
// findings the pathological fixture passes; against an empty baseline it
// fails with the findings named on stderr.
func TestConflintBaseline(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "specgen", "testdata", "pathological")
	stdout, stderr, exit := run(t, "conflint", "-json", dir)
	if exit != 0 {
		t.Fatalf("conflint -json: exit %d, stderr %q", exit, stderr)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, exit := run(t, "conflint", "-json", "-baseline", base, dir); exit != 0 {
		t.Errorf("conflint against its own baseline: exit %d, stderr %q", exit, stderr)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"kernels":0,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, exit = run(t, "conflint", "-json", "-baseline", empty, dir)
	if exit != 1 {
		t.Errorf("conflint against an empty baseline: exit %d, want 1", exit)
	}
	if !strings.Contains(stderr, "new finding not in baseline") {
		t.Errorf("stderr does not name the new findings: %q", stderr)
	}
}

// copyDir clones a fixture directory into a fresh temp dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), filepath.Base(src))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestConflintSARIF drives the SARIF mode end to end: a valid 2.1.0
// document with the rule catalog, results, and a padfix fix, and
// byte-identical output across runs and -j settings.
func TestConflintSARIF(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "specgen", "testdata", "pathological")
	stdout, stderr, exit := run(t, "conflint", "-sarif", dir)
	if exit != 0 {
		t.Fatalf("conflint -sarif: exit %d, stderr %q", exit, stderr)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("conflint -sarif output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "conflint" {
		t.Fatalf("not a conflint SARIF 2.1.0 document: version %q", doc.Version)
	}
	if len(doc.Runs[0].Tool.Driver.Rules) == 0 || len(doc.Runs[0].Results) == 0 {
		t.Fatal("SARIF document has no rules or no results")
	}
	sawPadfix := false
	for _, r := range doc.Runs[0].Results {
		if r.RuleID == "padfix" {
			sawPadfix = true
		}
	}
	if !sawPadfix {
		t.Error("SARIF results are missing the padfix finding")
	}

	again, _, _ := run(t, "conflint", "-sarif", dir)
	if again != stdout {
		t.Error("-sarif output differs between runs")
	}
	j4, _, _ := run(t, "conflint", "-sarif", "-j", "4", dir)
	if j4 != stdout {
		t.Error("-sarif output differs under -j 4")
	}
}

// TestConflintFixDryRun runs -fix -diff against a copy and checks the
// dry-run contract: a unified diff on stdout, exit 0, tree untouched.
func TestConflintFixDryRun(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := copyDir(t, filepath.Join(root, "internal", "specgen", "testdata", "pathological"))
	path := filepath.Join(dir, "pathological.go")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, exit := run(t, "conflint", "-fix", "-diff", dir)
	if exit != 0 {
		t.Fatalf("conflint -fix -diff: exit %d, stderr %q", exit, stderr)
	}
	for _, w := range []string{"--- ", "+++ ", "@@ ", "dry run, tree untouched"} {
		if !strings.Contains(stdout, w) {
			t.Errorf("-fix -diff output is missing %q:\n%s", w, stdout)
		}
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("-fix -diff modified the tree")
	}
}

// TestConflintFixClean: on the clean fixture there is nothing to fix;
// -fix -diff prints no hunks and leaves the tree alone.
func TestConflintFixClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := copyDir(t, filepath.Join(root, "internal", "specgen", "testdata", "clean"))
	stdout, stderr, exit := run(t, "conflint", "-fix", "-diff", dir)
	if exit != 0 {
		t.Fatalf("conflint -fix -diff on clean fixture: exit %d, stderr %q", exit, stderr)
	}
	if strings.Contains(stdout, "@@ ") {
		t.Errorf("clean fixture produced a diff:\n%s", stdout)
	}
}

// TestConflintFixApplies is the acceptance path at the process level:
// -fix on a pathological copy, then a re-run whose -json document has
// zero static-conflict and padfix findings and no finding at or above
// the conflict threshold.
func TestConflintFixApplies(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := copyDir(t, filepath.Join(root, "internal", "specgen", "testdata", "pathological"))
	stdout, stderr, exit := run(t, "conflint", "-fix", dir)
	if exit != 0 {
		t.Fatalf("conflint -fix: exit %d, stderr %q", exit, stderr)
	}
	if !strings.Contains(stdout, "applied") {
		t.Errorf("-fix did not report applied fixes:\n%s", stdout)
	}

	stdout, stderr, exit = run(t, "conflint", "-json", dir)
	if exit != 0 {
		t.Fatalf("re-lint after fix: exit %d, stderr %q", exit, stderr)
	}
	var doc struct {
		Kernels  int `json:"kernels"`
		Findings []struct {
			Kind        string  `json:"kind"`
			PredictedCF float64 `json:"predicted_cf"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Kernels != 3 {
		t.Fatalf("fixed fixture lints %d kernels, want 3", doc.Kernels)
	}
	for _, f := range doc.Findings {
		if f.Kind == "static-conflict" || f.Kind == "padfix" {
			t.Errorf("%s finding survived -fix", f.Kind)
		}
		if f.PredictedCF >= 0.25 {
			t.Errorf("finding %s still predicts CF %.2f >= 0.25 after -fix", f.Kind, f.PredictedCF)
		}
	}
}

// TestConflintUsageErrors pins the exit-code convention: conflicting
// flag combinations are usage errors (exit 2) before any linting runs.
func TestConflintUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-json", "-sarif", "."},
		{"-fix", "-json", "."},
		{"-fix", "-sarif", "."},
		{"-fix", "-baseline", "x.json", "."},
		{"-diff", "."},
		{"-j", "0", "."},
	} {
		_, stderr, exit := run(t, "conflint", args...)
		if exit != 2 {
			t.Errorf("conflint %v: exit %d, want 2 (stderr %q)", args, exit, stderr)
		}
		if stderr == "" {
			t.Errorf("conflint %v: no usage message on stderr", args)
		}
	}
}

// TestConflintCache: a second run against a warm cache must produce
// byte-identical output.
func TestConflintCache(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "specgen", "testdata", "pathological")
	cache := t.TempDir()
	cold, stderr, exit := run(t, "conflint", "-cache", cache, "-json", dir)
	if exit != 0 {
		t.Fatalf("cold cached run: exit %d, stderr %q", exit, stderr)
	}
	entries, err := os.ReadDir(cache)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir not populated (err %v)", err)
	}
	warm, stderr, exit := run(t, "conflint", "-cache", cache, "-json", dir)
	if exit != 0 {
		t.Fatalf("warm cached run: exit %d, stderr %q", exit, stderr)
	}
	if cold != warm {
		t.Error("cached output differs from cold run")
	}
}

// TestExperimentsObsArtifacts runs one quick experiment with -out and
// checks that the obs snapshot lands next to the report artifact.
func TestExperimentsObsArtifacts(t *testing.T) {
	out := t.TempDir()
	stdout, stderr, exit := run(t, "experiments", "-quick", "-run", "fig9", "-out", out)
	if exit != 0 {
		t.Fatalf("experiments -quick -run fig9: exit %d, stderr %q", exit, stderr)
	}
	if !strings.Contains(stdout, "running fig9") {
		t.Errorf("unexpected stdout:\n%s", stdout)
	}
	report, err := os.ReadFile(filepath.Join(out, "fig9.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report) == 0 {
		t.Error("fig9.txt is empty")
	}
	snap, err := os.ReadFile(filepath.Join(out, "fig9.obs.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{`"counters"`, `"pmu.refs"`, `"phases"`} {
		if !strings.Contains(string(snap), w) {
			t.Errorf("fig9.obs.json is missing %s:\n%s", w, snap)
		}
	}
}
