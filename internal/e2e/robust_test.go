package e2e_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestExperimentsUnknownName: the registry rejects unknown experiment
// names with a one-line error and exit 2.
func TestExperimentsUnknownName(t *testing.T) {
	_, stderr, exit := run(t, "experiments", "-quick", "-run", "no-such-experiment")
	if exit != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", exit, stderr)
	}
	if !strings.Contains(stderr, "no-such-experiment") || strings.Count(strings.TrimSpace(stderr), "\n") != 0 {
		t.Errorf("want a one-line error naming the experiment, got: %q", stderr)
	}
}

// TestInvalidJobs: both CLIs reject a negative -j before doing any work.
func TestInvalidJobs(t *testing.T) {
	for _, tc := range []struct {
		bin  string
		args []string
	}{
		{"experiments", []string{"-j", "-3", "-quick", "-run", "fig9"}},
		{"ccprof", []string{"-j", "-3", "nw"}},
	} {
		_, stderr, exit := run(t, tc.bin, tc.args...)
		if exit != 2 {
			t.Errorf("%s %v: exit %d, want 2 (stderr %q)", tc.bin, tc.args, exit, stderr)
		}
		if !strings.Contains(stderr, "invalid -j") {
			t.Errorf("%s: want one-line invalid -j error, got %q", tc.bin, stderr)
		}
	}
}

// TestExperimentsUnwritableOut: an unwritable -out fails up front with a
// non-zero exit, before any experiment burns time.
func TestExperimentsUnwritableOut(t *testing.T) {
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if f, err := os.CreateTemp(dir, "w"); err == nil {
		f.Close()
		t.Skip("running with privileges that ignore directory permissions")
	}
	out := filepath.Join(dir, "artifacts")
	_, stderr, exit := run(t, "experiments", "-quick", "-run", "fig9", "-out", out)
	if exit == 0 {
		t.Fatalf("unwritable -out exited 0 (stderr %q)", stderr)
	}
	if !strings.Contains(stderr, "output directory") {
		t.Errorf("want an output-directory error, got %q", stderr)
	}
}

// TestExperimentsResumeWithoutCheckpoint: -resume alone is a usage error.
func TestExperimentsResumeWithoutCheckpoint(t *testing.T) {
	_, stderr, exit := run(t, "experiments", "-resume")
	if exit != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", exit, stderr)
	}
	if !strings.Contains(stderr, "-resume requires -checkpoint") {
		t.Errorf("want the -resume usage error, got %q", stderr)
	}
}

// TestCCProfFaultInjection: the -fault-drop flag degrades the profile and
// the report says so; an out-of-range rate is a usage error.
func TestCCProfFaultInjection(t *testing.T) {
	stdout, stderr, exit := run(t, "ccprof", "-fault-drop", "0.3", "nw")
	if exit != 0 {
		t.Fatalf("ccprof -fault-drop 0.3 nw: exit %d, stderr %q", exit, stderr)
	}
	if !strings.Contains(stdout, "degraded: ") || !strings.Contains(stdout, "samples dropped") {
		t.Errorf("degraded run must be annotated:\n%s", stdout)
	}
	if !strings.Contains(stdout, "CONFLICT MISSES DETECTED") {
		t.Errorf("30%% sample loss should not hide NW's conflicts:\n%s", stdout)
	}

	_, stderr, exit = run(t, "ccprof", "-fault-drop", "1.5", "nw")
	if exit != 2 {
		t.Fatalf("ccprof -fault-drop 1.5: exit %d, want 2 (stderr %q)", exit, stderr)
	}
	if !strings.Contains(stderr, "rate outside [0, 1]") {
		t.Errorf("want the typed rate error, got %q", stderr)
	}
}

// TestCCProfFaultDeterminism: the same fault seed reproduces the degraded
// report byte-for-byte; a different seed changes the damage.
func TestCCProfFaultDeterminism(t *testing.T) {
	args := []string{"-fault-drop", "0.2", "-fault-seed", "5", "adi"}
	a, _, exitA := run(t, "ccprof", args...)
	b, _, exitB := run(t, "ccprof", args...)
	if exitA != 0 || exitB != 0 {
		t.Fatalf("exits %d/%d", exitA, exitB)
	}
	// The overhead line carries wall-clock; compare from the degraded
	// annotation down.
	cut := func(s string) string {
		i := strings.Index(s, "degraded:")
		if i < 0 {
			t.Fatalf("no degraded line:\n%s", s)
		}
		return s[i:]
	}
	if cut(a) != cut(b) {
		t.Errorf("same fault seed produced different reports:\n--- a ---\n%s\n--- b ---\n%s", cut(a), cut(b))
	}
	c, _, _ := run(t, "ccprof", "-fault-drop", "0.2", "-fault-seed", "6", "adi")
	if cut(a) == cut(c) {
		t.Errorf("different fault seeds produced identical degraded reports")
	}
}

// TestExperimentsFaultsCheckpointResume drives the crash-resume workflow
// as a user would: run the faults experiment with -checkpoint, delete one
// rate's checkpoint to fake a partial run, then -resume and compare the
// classification table byte-for-byte.
func TestExperimentsFaultsCheckpointResume(t *testing.T) {
	ckdir := t.TempDir()
	full, stderr, exit := run(t, "experiments", "-quick", "-run", "faults", "-checkpoint", ckdir)
	if exit != 0 {
		t.Fatalf("faults with -checkpoint: exit %d, stderr %q", exit, stderr)
	}
	entries, err := filepath.Glob(filepath.Join(ckdir, "faults-rate*.ckpt"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint files written (%v)", err)
	}
	// Fake the crash: the last rate never completed.
	if err := os.Remove(entries[len(entries)-1]); err != nil {
		t.Fatal(err)
	}
	resumed, stderr, exit := run(t, "experiments", "-quick", "-run", "faults", "-checkpoint", ckdir, "-resume")
	if exit != 0 {
		t.Fatalf("faults with -resume: exit %d, stderr %q", exit, stderr)
	}
	if full != resumed {
		t.Errorf("resumed report diverged from the uninterrupted one:\n--- full ---\n%s\n--- resumed ---\n%s",
			full, resumed)
	}
	if !strings.Contains(resumed, "degraded: ") {
		t.Errorf("faults report lacks the degraded annotation:\n%s", resumed)
	}
}

// ---- ccprofd: the profiling-as-a-service daemon ----

// daemon wraps one running ccprofd process.
type daemon struct {
	cmd    *exec.Cmd
	url    string
	stderr *bytes.Buffer
}

// startDaemon launches ccprofd on an ephemeral port over dataDir and
// waits for its serving line.
func startDaemon(t *testing.T, dataDir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dataDir}, extra...)
	cmd := exec.Command(filepath.Join(binDir, "ccprofd"), args...)
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(d.stderr, line)
			if _, url, ok := strings.Cut(line, "serving on http://"); ok {
				url, _, _ = strings.Cut(url, " ")
				select {
				case ready <- url:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-ready:
		d.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("ccprofd never announced its address; stderr:\n%s", d.stderr)
	}
	return d
}

// drain SIGTERMs the daemon and asserts a clean (exit 0) drain.
func (d *daemon) drain(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("ccprofd did not drain cleanly: %v; stderr:\n%s", err, d.stderr)
	}
}

// daemonJob mirrors the job JSON the API returns.
type daemonJob struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error"`
	FailKind string `json:"fail_kind"`
	Artifact string `json:"artifact"`
	Attempts int    `json:"attempts"`
	Resumed  bool   `json:"resumed"`
}

// submit POSTs one job spec (a JSON literal) and requires the given
// status; returns the job on 202.
func (d *daemon) submit(t *testing.T, spec string, wantStatus int) daemonJob {
	t.Helper()
	resp, err := http.Post(d.url+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /jobs %s: status %d, want %d (body %s)", spec, resp.StatusCode, wantStatus, buf.String())
	}
	var job daemonJob
	if wantStatus == http.StatusAccepted {
		if err := json.Unmarshal(buf.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
	}
	return job
}

// await polls a job to a terminal state.
func (d *daemon) await(t *testing.T, id string) daemonJob {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job daemonJob
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if job.State == "done" || job.State == "failed" {
			return job
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished; stderr:\n%s", id, d.stderr)
	return daemonJob{}
}

// result fetches a job's artifact body and status.
func (d *daemon) result(t *testing.T, id string) (string, int) {
	t.Helper()
	resp, err := http.Get(d.url + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String(), resp.StatusCode
}

// lifecycleSpecs is the chaos job mix both halves of the lifecycle test
// submit: a conflict profile, a clean profile, a profile with injected
// sample drops plus a first-attempt worker panic (recovered by the
// retry), and a quick experiment.
var lifecycleSpecs = []string{
	`{"kind":"profile","workload":"nw"}`,
	`{"kind":"profile","workload":"nw","variant":"optimized","fault_slow_ms":300}`,
	`{"kind":"profile","workload":"adi","fault_drop":0.25,"fault_panic":1,"fault_seed":23}`,
	`{"kind":"experiment","experiment":"fig9","quick":true}`,
}

// storeHashes lists the artifact store's content hashes.
func storeHashes(t *testing.T, dataDir string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dataDir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for _, e := range entries {
		hashes = append(hashes, e.Name())
	}
	sort.Strings(hashes)
	return hashes
}

// TestCCProfdLifecycleResume is the acceptance chaos test: a daemon is
// SIGTERMed mid-run with jobs in flight and queued, must drain with exit
// 0 without dropping any accepted job, and after a restart every resumed
// result — and the artifact store itself — must be byte-identical to an
// uninterrupted run of the same submissions. Finally, a deliberately
// corrupted artifact must be refused by hash verification, not served.
func TestCCProfdLifecycleResume(t *testing.T) {
	// Uninterrupted reference run.
	dataA := t.TempDir()
	ref := startDaemon(t, dataA, "-workers", "2")
	want := make([]string, len(lifecycleSpecs))
	for i, spec := range lifecycleSpecs {
		job := ref.submit(t, spec, http.StatusAccepted)
		done := ref.await(t, job.ID)
		if done.State != "done" {
			t.Fatalf("reference job %d finished as %+v", i, done)
		}
		body, status := ref.result(t, job.ID)
		if status != http.StatusOK {
			t.Fatalf("reference result %d: status %d", i, status)
		}
		want[i] = body
	}
	// The fault_panic job must actually have exercised the containment.
	if jobs := ref.jobs(t); jobs[2].Attempts < 2 {
		t.Fatalf("injected panic was not retried: %+v", jobs[2])
	}
	ref.drain(t)

	// Interrupted run: one worker, SIGTERM as soon as the first job is
	// done — the slow job is in flight and the rest are queued.
	dataB := t.TempDir()
	d := startDaemon(t, dataB, "-workers", "1")
	ids := make([]string, len(lifecycleSpecs))
	for i, spec := range lifecycleSpecs {
		ids[i] = d.submit(t, spec, http.StatusAccepted).ID
	}
	first := d.await(t, ids[0])
	if first.State != "done" {
		t.Fatalf("first job = %+v", first)
	}
	d.drain(t)
	if !strings.Contains(d.stderr.String(), "journaled for resume") {
		t.Fatalf("drain did not journal pending jobs; stderr:\n%s", d.stderr)
	}

	// Restart on the same data dir: every accepted job must finish and
	// match the reference bytes.
	d2 := startDaemon(t, dataB, "-workers", "2")
	sawResumed := false
	for _, j := range d2.jobs(t) {
		sawResumed = sawResumed || j.Resumed
	}
	if !sawResumed {
		t.Fatal("restart marked no job as resumed")
	}
	for i, id := range ids {
		done := d2.await(t, id)
		if done.State != "done" {
			t.Fatalf("resumed job %s = %+v; stderr:\n%s", id, done, d2.stderr)
		}
		body, status := d2.result(t, id)
		if status != http.StatusOK {
			t.Fatalf("resumed result %s: status %d", id, status)
		}
		if body != want[i] {
			t.Errorf("artifact %d differs between clean and resumed runs:\n--- clean ---\n%s\n--- resumed ---\n%s", i, want[i], body)
		}
	}
	// The stores converged to identical content-addressed sets.
	if a, b := storeHashes(t, dataA), storeHashes(t, dataB); !equalStrings(a, b) {
		t.Errorf("artifact stores diverged:\nclean:   %v\nresumed: %v", a, b)
	}

	// Corruption: flip one byte of a stored artifact; the daemon must
	// detect the hash mismatch and refuse to serve it.
	lastJob := d2.jobs(t)[len(ids)-1]
	path := filepath.Join(dataB, "store", lastJob.Artifact)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	body, status := d2.result(t, lastJob.ID)
	if status == http.StatusOK {
		t.Fatalf("corrupted artifact served with 200:\n%s", body)
	}
	if !strings.Contains(body, "verification") {
		t.Errorf("corruption refusal does not mention verification: %q", body)
	}
	d2.drain(t)
}

// jobs lists all jobs via GET /jobs.
func (d *daemon) jobs(t *testing.T) []daemonJob {
	t.Helper()
	resp, err := http.Get(d.url + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []daemonJob
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	return jobs
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCCProfdBackpressure saturates a queue of one behind one worker:
// the overflow submission must bounce with 429 + Retry-After, and the
// rejection must be visible on /metrics of the same listener.
func TestCCProfdBackpressure(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "-workers", "1", "-queue", "1")
	slow := `{"kind":"profile","workload":"nw","fault_slow_ms":800}`
	d.submit(t, slow, http.StatusAccepted)
	// Wait for the worker to pick the first job up, freeing the slot.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(d.jobs(t)) > 0 && d.jobs(t)[0].State != "queued" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	d.submit(t, slow, http.StatusAccepted)
	resp, err := http.Post(d.url+"/jobs", "application/json", strings.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 reply carries no Retry-After")
	}
	mresp, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics is not snapshot JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["ccprofd.jobs_rejected"] == 0 {
		t.Errorf("ccprofd.jobs_rejected = 0 after a 429; counters: %v", snap.Counters)
	}
	if _, ok := snap.Gauges["ccprofd.queue_depth"]; !ok {
		t.Error("ccprofd.queue_depth gauge missing from /metrics")
	}
	d.drain(t)
}

// TestCCProfdHealth: liveness stays 200 across the lifecycle; readiness
// is tied to admission.
func TestCCProfdHealth(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(d.url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	d.drain(t)
}

// TestCCProfdExitCodes pins the shared CLI convention on the daemon:
// usage errors exit 2 before any listener or file is touched; runtime
// failures (an unbindable address) exit 1.
func TestCCProfdExitCodes(t *testing.T) {
	for _, tc := range [][]string{
		{},                            // missing -data
		{"-data", "x", "-queue", "0"}, // unbounded/absurd queue
		{"-data", "x", "-workers", "0"},
		{"-data", "x", "-retries", "-1"},
		{"-data", "x", "-j", "-3"},
		{"-data", "x", "stray-arg"},
	} {
		_, stderr, exit := run(t, "ccprofd", tc...)
		if exit != 2 {
			t.Errorf("ccprofd %v: exit %d, want 2 (stderr %q)", tc, exit, stderr)
		}
		if stderr == "" {
			t.Errorf("ccprofd %v: no usage message on stderr", tc)
		}
	}
	_, stderr, exit := run(t, "ccprofd", "-data", t.TempDir(), "-addr", "256.256.256.256:1")
	if exit != 1 {
		t.Errorf("unbindable -addr: exit %d, want 1 (stderr %q)", exit, stderr)
	}
}
