package e2e_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExperimentsUnknownName: the registry rejects unknown experiment
// names with a one-line error and exit 2.
func TestExperimentsUnknownName(t *testing.T) {
	_, stderr, exit := run(t, "experiments", "-quick", "-run", "no-such-experiment")
	if exit != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", exit, stderr)
	}
	if !strings.Contains(stderr, "no-such-experiment") || strings.Count(strings.TrimSpace(stderr), "\n") != 0 {
		t.Errorf("want a one-line error naming the experiment, got: %q", stderr)
	}
}

// TestInvalidJobs: both CLIs reject a negative -j before doing any work.
func TestInvalidJobs(t *testing.T) {
	for _, tc := range []struct {
		bin  string
		args []string
	}{
		{"experiments", []string{"-j", "-3", "-quick", "-run", "fig9"}},
		{"ccprof", []string{"-j", "-3", "nw"}},
	} {
		_, stderr, exit := run(t, tc.bin, tc.args...)
		if exit != 2 {
			t.Errorf("%s %v: exit %d, want 2 (stderr %q)", tc.bin, tc.args, exit, stderr)
		}
		if !strings.Contains(stderr, "invalid -j") {
			t.Errorf("%s: want one-line invalid -j error, got %q", tc.bin, stderr)
		}
	}
}

// TestExperimentsUnwritableOut: an unwritable -out fails up front with a
// non-zero exit, before any experiment burns time.
func TestExperimentsUnwritableOut(t *testing.T) {
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if f, err := os.CreateTemp(dir, "w"); err == nil {
		f.Close()
		t.Skip("running with privileges that ignore directory permissions")
	}
	out := filepath.Join(dir, "artifacts")
	_, stderr, exit := run(t, "experiments", "-quick", "-run", "fig9", "-out", out)
	if exit == 0 {
		t.Fatalf("unwritable -out exited 0 (stderr %q)", stderr)
	}
	if !strings.Contains(stderr, "output directory") {
		t.Errorf("want an output-directory error, got %q", stderr)
	}
}

// TestExperimentsResumeWithoutCheckpoint: -resume alone is a usage error.
func TestExperimentsResumeWithoutCheckpoint(t *testing.T) {
	_, stderr, exit := run(t, "experiments", "-resume")
	if exit != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", exit, stderr)
	}
	if !strings.Contains(stderr, "-resume requires -checkpoint") {
		t.Errorf("want the -resume usage error, got %q", stderr)
	}
}

// TestCCProfFaultInjection: the -fault-drop flag degrades the profile and
// the report says so; an out-of-range rate is a usage error.
func TestCCProfFaultInjection(t *testing.T) {
	stdout, stderr, exit := run(t, "ccprof", "-fault-drop", "0.3", "nw")
	if exit != 0 {
		t.Fatalf("ccprof -fault-drop 0.3 nw: exit %d, stderr %q", exit, stderr)
	}
	if !strings.Contains(stdout, "degraded: ") || !strings.Contains(stdout, "samples dropped") {
		t.Errorf("degraded run must be annotated:\n%s", stdout)
	}
	if !strings.Contains(stdout, "CONFLICT MISSES DETECTED") {
		t.Errorf("30%% sample loss should not hide NW's conflicts:\n%s", stdout)
	}

	_, stderr, exit = run(t, "ccprof", "-fault-drop", "1.5", "nw")
	if exit != 2 {
		t.Fatalf("ccprof -fault-drop 1.5: exit %d, want 2 (stderr %q)", exit, stderr)
	}
	if !strings.Contains(stderr, "rate outside [0, 1]") {
		t.Errorf("want the typed rate error, got %q", stderr)
	}
}

// TestCCProfFaultDeterminism: the same fault seed reproduces the degraded
// report byte-for-byte; a different seed changes the damage.
func TestCCProfFaultDeterminism(t *testing.T) {
	args := []string{"-fault-drop", "0.2", "-fault-seed", "5", "adi"}
	a, _, exitA := run(t, "ccprof", args...)
	b, _, exitB := run(t, "ccprof", args...)
	if exitA != 0 || exitB != 0 {
		t.Fatalf("exits %d/%d", exitA, exitB)
	}
	// The overhead line carries wall-clock; compare from the degraded
	// annotation down.
	cut := func(s string) string {
		i := strings.Index(s, "degraded:")
		if i < 0 {
			t.Fatalf("no degraded line:\n%s", s)
		}
		return s[i:]
	}
	if cut(a) != cut(b) {
		t.Errorf("same fault seed produced different reports:\n--- a ---\n%s\n--- b ---\n%s", cut(a), cut(b))
	}
	c, _, _ := run(t, "ccprof", "-fault-drop", "0.2", "-fault-seed", "6", "adi")
	if cut(a) == cut(c) {
		t.Errorf("different fault seeds produced identical degraded reports")
	}
}

// TestExperimentsFaultsCheckpointResume drives the crash-resume workflow
// as a user would: run the faults experiment with -checkpoint, delete one
// rate's checkpoint to fake a partial run, then -resume and compare the
// classification table byte-for-byte.
func TestExperimentsFaultsCheckpointResume(t *testing.T) {
	ckdir := t.TempDir()
	full, stderr, exit := run(t, "experiments", "-quick", "-run", "faults", "-checkpoint", ckdir)
	if exit != 0 {
		t.Fatalf("faults with -checkpoint: exit %d, stderr %q", exit, stderr)
	}
	entries, err := filepath.Glob(filepath.Join(ckdir, "faults-rate*.ckpt"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint files written (%v)", err)
	}
	// Fake the crash: the last rate never completed.
	if err := os.Remove(entries[len(entries)-1]); err != nil {
		t.Fatal(err)
	}
	resumed, stderr, exit := run(t, "experiments", "-quick", "-run", "faults", "-checkpoint", ckdir, "-resume")
	if exit != 0 {
		t.Fatalf("faults with -resume: exit %d, stderr %q", exit, stderr)
	}
	if full != resumed {
		t.Errorf("resumed report diverged from the uninterrupted one:\n--- full ---\n%s\n--- resumed ---\n%s",
			full, resumed)
	}
	if !strings.Contains(resumed, "degraded: ") {
		t.Errorf("faults report lacks the degraded annotation:\n%s", resumed)
	}
}
