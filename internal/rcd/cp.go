package rcd

import "repro/internal/stats"

// CPTracker measures conflict periods (§3.3, Figure 6): the lengths of runs
// of consecutive identical RCD values on a set. Long conflict periods mean
// the miss pattern is stable long enough for a sampling period to catch it
// (the CP > SP condition); workloads like HimenoBMT whose conflicts hop
// between sets have short CPs and need high-frequency sampling.
type CPTracker struct {
	inner *Tracker

	curRCD []int // current run's RCD per set; 0 = no run yet
	curLen []int // current run length per set

	periods stats.IntHist // completed run lengths, pooled over sets
}

// NewCP returns a conflict-period tracker over a fresh RCD tracker with the
// given number of sets.
func NewCP(sets int) *CPTracker {
	return &CPTracker{
		inner:  New(sets),
		curRCD: make([]int, sets),
		curLen: make([]int, sets),
	}
}

// Reset rewinds the tracker to the state NewCP(sets) would construct,
// reusing storage when the set count is unchanged (see Tracker.Reset).
func (c *CPTracker) Reset(sets int) {
	if c.inner == nil || sets != c.inner.sets {
		*c = *NewCP(sets)
		return
	}
	c.inner.Reset(sets)
	for i := range c.curRCD {
		c.curRCD[i] = 0
		c.curLen[i] = 0
	}
	c.periods.Reset()
}

// Observe records a miss on set, forwarding to the underlying RCD tracker.
// It returns the RCD of the miss (or NoPrior).
func (c *CPTracker) Observe(set int) int {
	d := c.inner.Observe(set)
	if d == NoPrior {
		return d
	}
	switch {
	case c.curLen[set] == 0:
		c.curRCD[set], c.curLen[set] = d, 1
	case c.curRCD[set] == d:
		c.curLen[set]++
	default:
		c.periods.Add(c.curLen[set])
		c.curRCD[set], c.curLen[set] = d, 1
	}
	return d
}

// BreakSequence forwards a sampling-burst boundary to the underlying RCD
// tracker; open conflict-period runs stay open (a run may legitimately
// span bursts when the same RCD value reappears).
func (c *CPTracker) BreakSequence() { c.inner.BreakSequence() }

// Flush closes all open runs. Call once at the end of a context before
// reading Periods.
func (c *CPTracker) Flush() {
	for s := range c.curLen {
		if c.curLen[s] > 0 {
			c.periods.Add(c.curLen[s])
			c.curLen[s] = 0
			c.curRCD[s] = 0
		}
	}
}

// Periods returns the histogram of completed conflict-period lengths.
func (c *CPTracker) Periods() *stats.IntHist { return &c.periods }

// RCD returns the underlying RCD tracker.
func (c *CPTracker) RCD() *Tracker { return c.inner }

// MeanPeriod returns the mean conflict-period length of completed runs, or
// 0 when none completed.
func (c *CPTracker) MeanPeriod() float64 {
	return c.periods.Mean()
}
