// Package rcd implements Re-Conflict Distance, the metric at the core of
// CCProf (Definition 1 of the paper).
//
// The Re-Conflict Distance of a cache set S within a program context is the
// distance, counted in cache-miss events, between two consecutive misses on
// S. With perfectly balanced set usage — misses visiting the N sets round-
// robin — every set's RCD equals N (Observation 2); an RCD below N marks S
// as the victim of imbalanced cache utilization, and a large fraction of
// misses at short RCD is the signature of conflict misses (Observation 3).
//
// The same Tracker serves both measurement paths the paper compares: fed
// with the exact miss sequence from the cache simulator it produces exact
// RCDs; fed with the lossy subsequence from PMU address sampling it produces
// the approximate RCDs CCProf uses in production. RCD needs no knowledge of
// miss *types*: frequent capacity misses concentrated on a few sets are
// reported as conflicts on those sets by design (§3.3).
package rcd

import (
	"fmt"

	"repro/internal/stats"
)

// NoPrior is returned by Observe for the first miss on a set, when no
// re-conflict distance is defined yet.
const NoPrior = -1

// DefaultThreshold is the short-RCD threshold T used throughout the paper's
// evaluation: misses with RCD <= 8 on an L1 with 64 sets count as "short".
const DefaultThreshold = 8

// Tracker accumulates the RCD distribution of one program context (a loop,
// function, or whole program).
type Tracker struct {
	sets    int
	lastPos []uint64 // 1-based position of the previous miss on each set; 0 = none
	pos     uint64   // misses observed so far

	perSet []stats.IntHist // per-set RCD histograms (Figure 5-b)
	pooled stats.IntHist   // all sets pooled, what the CDF plots show
	misses []uint64        // per-set miss counts (Figure 3-b)
}

// New returns a Tracker for a cache with the given number of sets.
func New(sets int) *Tracker {
	if sets <= 0 {
		panic(fmt.Sprintf("rcd: tracker with %d sets", sets))
	}
	return &Tracker{
		sets:    sets,
		lastPos: make([]uint64, sets),
		perSet:  stats.NewDense(sets),
		misses:  make([]uint64, sets),
	}
}

// Reset rewinds the tracker to the state New(sets) would construct. When
// the set count is unchanged the per-set storage (including the dense
// histogram bank) is cleared in place, so a pooled tracker is reused with
// zero allocations.
func (t *Tracker) Reset(sets int) {
	if sets <= 0 {
		panic(fmt.Sprintf("rcd: tracker with %d sets", sets))
	}
	if sets != t.sets || t.lastPos == nil {
		*t = *New(sets)
		return
	}
	for i := range t.lastPos {
		t.lastPos[i] = 0
		t.misses[i] = 0
		t.perSet[i].Reset()
	}
	t.pooled.Reset()
	t.pos = 0
}

// Sets returns the number of cache sets tracked.
func (t *Tracker) Sets() int { return t.sets }

// Observe records a miss on the given set and returns its RCD — the
// distance in miss events since the previous miss on the same set — or
// NoPrior for the set's first miss.
func (t *Tracker) Observe(set int) int {
	if set < 0 || set >= t.sets {
		panic(fmt.Sprintf("rcd: set %d out of range [0,%d)", set, t.sets))
	}
	t.pos++
	t.misses[set]++
	d := NoPrior
	if p := t.lastPos[set]; p != 0 {
		d = int(t.pos - p)
		t.perSet[set].Add(d)
		t.pooled.Add(d)
	}
	t.lastPos[set] = t.pos
	return d
}

// BreakSequence forgets all per-set positions without clearing the
// accumulated histograms or totals: distances spanning the break are not
// counted. Bursty sampling calls this between bursts, because only
// within-burst sample distances are exact miss distances.
func (t *Tracker) BreakSequence() {
	for s := range t.lastPos {
		t.lastPos[s] = 0
	}
}

// Total returns the number of misses observed (including first misses that
// produced no RCD) — the N_total of Equation 1.
func (t *Tracker) Total() uint64 { return t.pos }

// SetMisses returns the miss count of one set.
func (t *Tracker) SetMisses(set int) uint64 { return t.misses[set] }

// SetsUsed returns how many sets received at least one miss.
func (t *Tracker) SetsUsed() int {
	n := 0
	for _, m := range t.misses {
		if m > 0 {
			n++
		}
	}
	return n
}

// Hist returns the pooled RCD histogram across all sets.
func (t *Tracker) Hist() *stats.IntHist { return &t.pooled }

// SetHist returns the RCD histogram of one set.
func (t *Tracker) SetHist(set int) *stats.IntHist { return &t.perSet[set] }

// ShortCount returns the number of observed misses whose RCD is defined and
// at most threshold (the N_RCD of Equation 1).
func (t *Tracker) ShortCount(threshold int) uint64 {
	return t.pooled.CountLE(threshold)
}

// ContributionFactor returns the pooled contribution factor of Equation 1:
// the fraction of all observed misses whose RCD is defined and at most
// threshold. It returns 0 when nothing was observed.
func (t *Tracker) ContributionFactor(threshold int) float64 {
	if t.pos == 0 {
		return 0
	}
	return float64(t.ShortCount(threshold)) / float64(t.pos)
}

// SetContributionFactor returns cf for a single set x: the fraction of the
// context's misses with RCD <= threshold that landed on x.
func (t *Tracker) SetContributionFactor(set, threshold int) float64 {
	if t.pos == 0 {
		return 0
	}
	return float64(t.perSet[set].CountLE(threshold)) / float64(t.pos)
}

// CDF returns the cumulative distribution of pooled RCDs — the curves of
// Figures 7 and 9.
func (t *Tracker) CDF() []stats.CDFPoint { return t.pooled.CDF() }

// Imbalance returns the ratio between the busiest set's miss count and the
// mean per-set miss count: 1 means perfectly balanced traffic, large values
// mean a few victim sets absorb the misses (Observation 1).
func (t *Tracker) Imbalance() float64 {
	if t.pos == 0 {
		return 0
	}
	var max uint64
	for _, m := range t.misses {
		if m > max {
			max = m
		}
	}
	mean := float64(t.pos) / float64(t.sets)
	return float64(max) / mean
}

// VictimSets returns the sets whose miss share exceeds share times the
// uniform share 1/Sets, ordered by set index — the "victim sets" of §3.
func (t *Tracker) VictimSets(share float64) []int {
	if t.pos == 0 {
		return nil
	}
	uniform := float64(t.pos) / float64(t.sets)
	var out []int
	for s, m := range t.misses {
		if float64(m) > share*uniform {
			out = append(out, s)
		}
	}
	return out
}
