package rcd_test

import (
	"fmt"

	"repro/internal/rcd"
)

// ExampleTracker illustrates Observations 2 and 3 of the paper: balanced
// round-robin misses make every RCD equal the set count, while a hammered
// victim set produces short RCDs and a high contribution factor.
func ExampleTracker() {
	balanced := rcd.New(64)
	for round := 0; round < 10; round++ {
		for s := 0; s < 64; s++ {
			balanced.Observe(s) // round-robin: every RCD equals 64
		}
	}
	conflict := rcd.New(64)
	for i := 0; i < 640; i++ {
		conflict.Observe(3) // one victim set: every RCD equals 1
	}
	fmt.Printf("balanced cf: %.2f\n", balanced.ContributionFactor(rcd.DefaultThreshold))
	fmt.Printf("conflict cf: %.2f\n", conflict.ContributionFactor(rcd.DefaultThreshold))
	fmt.Printf("conflict victim sets: %v\n", conflict.VictimSets(2))
	// Output:
	// balanced cf: 0.00
	// conflict cf: 1.00
	// conflict victim sets: [3]
}
