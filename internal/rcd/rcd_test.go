package rcd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFirstMissHasNoPrior(t *testing.T) {
	tr := New(4)
	if d := tr.Observe(2); d != NoPrior {
		t.Errorf("first miss RCD = %d, want NoPrior", d)
	}
	if tr.Total() != 1 {
		t.Errorf("Total = %d, want 1", tr.Total())
	}
}

func TestRCDDefinition(t *testing.T) {
	// Figure 5-a style sequence over 4 sets: S1 S2 S3 S1 S1 ...
	tr := New(4)
	tr.Observe(1)
	tr.Observe(2)
	tr.Observe(3)
	if d := tr.Observe(1); d != 3 {
		t.Errorf("RCD after 2 intervening misses = %d, want 3", d)
	}
	if d := tr.Observe(1); d != 1 {
		t.Errorf("back-to-back RCD = %d, want 1", d)
	}
}

// Observation 2: with round-robin misses over all N sets, every defined RCD
// equals N.
func TestObservation2UniformTrafficRCDEqualsSets(t *testing.T) {
	const n = 64
	tr := New(n)
	for round := 0; round < 10; round++ {
		for s := 0; s < n; s++ {
			d := tr.Observe(s)
			if round == 0 {
				if d != NoPrior {
					t.Fatalf("round 0 set %d: RCD = %d, want NoPrior", s, d)
				}
			} else if d != n {
				t.Fatalf("uniform traffic set %d: RCD = %d, want %d", s, d, n)
			}
		}
	}
	if got := tr.Imbalance(); math.Abs(got-1) > 1e-9 {
		t.Errorf("uniform Imbalance = %g, want 1", got)
	}
	if tr.SetsUsed() != n {
		t.Errorf("SetsUsed = %d, want %d", tr.SetsUsed(), n)
	}
}

// Observation 3: conflict traffic concentrated on one set yields a large
// short-RCD contribution factor; uniform traffic yields none.
func TestObservation3ContributionFactor(t *testing.T) {
	conflict := New(64)
	for i := 0; i < 1000; i++ {
		conflict.Observe(5) // hammer one victim set
	}
	if cf := conflict.ContributionFactor(DefaultThreshold); cf < 0.99 {
		t.Errorf("conflict cf = %g, want ~1", cf)
	}

	uniform := New(64)
	for round := 0; round < 20; round++ {
		for s := 0; s < 64; s++ {
			uniform.Observe(s)
		}
	}
	if cf := uniform.ContributionFactor(DefaultThreshold); cf != 0 {
		t.Errorf("uniform cf = %g, want 0 (all RCDs are 64 > 8)", cf)
	}
}

func TestContributionFactorCountsFirstMissesInDenominator(t *testing.T) {
	tr := New(8)
	tr.Observe(0) // no RCD
	tr.Observe(0) // RCD 1
	// One short RCD out of two total misses.
	if cf := tr.ContributionFactor(8); cf != 0.5 {
		t.Errorf("cf = %g, want 0.5", cf)
	}
}

func TestSetContributionFactor(t *testing.T) {
	tr := New(8)
	tr.Observe(0)
	tr.Observe(0) // set 0: RCD 1
	tr.Observe(1)
	tr.Observe(1) // set 1: RCD 1
	if cf := tr.SetContributionFactor(0, 8); cf != 0.25 {
		t.Errorf("set 0 cf = %g, want 0.25", cf)
	}
	if cf := tr.SetContributionFactor(2, 8); cf != 0 {
		t.Errorf("unused set cf = %g, want 0", cf)
	}
}

func TestEmptyTracker(t *testing.T) {
	tr := New(4)
	if tr.ContributionFactor(8) != 0 || tr.Imbalance() != 0 || tr.VictimSets(2) != nil {
		t.Error("empty tracker should report zeros")
	}
	if tr.CDF() != nil {
		t.Error("empty tracker CDF should be nil")
	}
}

func TestObserveOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range set should panic")
		}
	}()
	New(4).Observe(4)
}

func TestNewPanicsOnZeroSets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New(0)
}

func TestVictimSets(t *testing.T) {
	tr := New(4)
	for i := 0; i < 97; i++ {
		tr.Observe(2)
	}
	tr.Observe(0)
	tr.Observe(1)
	tr.Observe(3)
	// Uniform share is 25 misses; set 2 has 97.
	vs := tr.VictimSets(2)
	if len(vs) != 1 || vs[0] != 2 {
		t.Errorf("VictimSets = %v, want [2]", vs)
	}
	if tr.Imbalance() < 3 {
		t.Errorf("Imbalance = %g, want ~3.88", tr.Imbalance())
	}
}

func TestPerSetHistogramsAndMisses(t *testing.T) {
	tr := New(4)
	tr.Observe(1)
	tr.Observe(1)
	tr.Observe(1)
	tr.Observe(2)
	if tr.SetMisses(1) != 3 || tr.SetMisses(2) != 1 {
		t.Errorf("SetMisses = %d/%d", tr.SetMisses(1), tr.SetMisses(2))
	}
	if tr.SetHist(1).Total() != 2 || tr.SetHist(1).Count(1) != 2 {
		t.Errorf("set 1 hist = %v", tr.SetHist(1))
	}
	if tr.Hist().Total() != 2 {
		t.Errorf("pooled hist total = %d, want 2", tr.Hist().Total())
	}
}

// Property: for any miss sequence, 1 <= RCD <= Total, and the pooled
// histogram total equals misses minus first-touches.
func TestRCDBoundsProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		tr := New(16)
		firsts := map[int]bool{}
		for _, raw := range seq {
			s := int(raw) % 16
			d := tr.Observe(s)
			if !firsts[s] {
				firsts[s] = true
				if d != NoPrior {
					return false
				}
				continue
			}
			if d < 1 || uint64(d) > tr.Total() {
				return false
			}
		}
		return tr.Hist().Total() == tr.Total()-uint64(len(firsts))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RCD is scale-free — the metric depends only on the order of
// set IDs, not the address magnitudes (program/architecture independence).
func TestRCDDependsOnlyOnSequence(t *testing.T) {
	seq := []int{1, 5, 1, 2, 2, 5, 1}
	a, b := New(8), New(8)
	perm := map[int]int{1: 7, 5: 0, 2: 3} // relabel the sets
	for _, s := range seq {
		a.Observe(s)
		b.Observe(perm[s])
	}
	ah, bh := a.Hist(), b.Hist()
	if ah.Total() != bh.Total() {
		t.Fatal("relabelled sequence changed histogram size")
	}
	for _, v := range ah.Values() {
		if ah.Count(v) != bh.Count(v) {
			t.Errorf("RCD %d: %d vs %d under relabelling", v, ah.Count(v), bh.Count(v))
		}
	}
}

func TestCPTrackerRuns(t *testing.T) {
	// Set 0 misses back-to-back 5 times: RCDs 1,1,1,1 -> one run of 4.
	cp := NewCP(4)
	for i := 0; i < 5; i++ {
		cp.Observe(0)
	}
	// Switch pattern: alternate 0,1 so set 0 sees RCD 2: run of 1 (the old
	// RCD-1 run closes).
	cp.Observe(1)
	cp.Observe(0)
	cp.Observe(1)
	cp.Observe(0)
	cp.Flush()
	h := cp.Periods()
	if h.Count(4) != 1 {
		t.Errorf("expected one run of length 4, hist = %v", h)
	}
	if h.Total() < 2 {
		t.Errorf("expected at least two completed runs, hist = %v", h)
	}
}

func TestCPMeanPeriod(t *testing.T) {
	cp := NewCP(2)
	if cp.MeanPeriod() != 0 {
		t.Error("empty CP tracker mean should be 0")
	}
	for i := 0; i < 7; i++ {
		cp.Observe(0) // RCDs 1 x6 -> single run of 6
	}
	cp.Flush()
	if got := cp.MeanPeriod(); got != 6 {
		t.Errorf("MeanPeriod = %g, want 6", got)
	}
}

func TestCPFlushIdempotent(t *testing.T) {
	cp := NewCP(2)
	cp.Observe(0)
	cp.Observe(0)
	cp.Flush()
	before := cp.Periods().Total()
	cp.Flush()
	if cp.Periods().Total() != before {
		t.Error("double Flush added runs")
	}
}

func TestCPStablePatternHasLongPeriods(t *testing.T) {
	// A stable conflict (same set, constant RCD) has one long period; a
	// hopping conflict (victim set changes constantly) has short periods.
	stable := NewCP(8)
	for i := 0; i < 100; i++ {
		stable.Observe(3)
	}
	stable.Flush()

	hopping := NewCP(8)
	for i := 0; i < 100; i++ {
		hopping.Observe(i % 3) // RCD alternates per set
	}
	hopping.Flush()

	if stable.MeanPeriod() <= hopping.MeanPeriod() {
		t.Errorf("stable CP %g should exceed hopping CP %g",
			stable.MeanPeriod(), hopping.MeanPeriod())
	}
}

func BenchmarkObserve(b *testing.B) {
	tr := New(64)
	for i := 0; i < b.N; i++ {
		tr.Observe(i & 63)
	}
}
