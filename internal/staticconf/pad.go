package staticconf

import (
	"fmt"

	"repro/internal/mem"
)

// PadOptions configures the closed-form pad search. The zero value scans
// pads 0, 8, 16, …, 512.
type PadOptions struct {
	// MaxPad is the largest pad considered, in bytes; default 512.
	MaxPad uint64
	// Quantum is the pad step, in bytes; default 8. Use the element size
	// of the padded array to keep pads element-aligned.
	Quantum uint64
	// Analyze tunes the per-candidate analysis.
	Analyze Options
}

func (o PadOptions) withDefaults() PadOptions {
	if o.MaxPad == 0 {
		o.MaxPad = 512
	}
	if o.Quantum == 0 {
		o.Quantum = 8
	}
	return o
}

// PadResult is the outcome of a MinimalPad search.
type PadResult struct {
	// Pad is the smallest pad whose spec analyzes clean.
	Pad uint64
	// Report is the analysis at the recommended pad; Baseline the
	// analysis at pad 0.
	Report   *Report
	Baseline *Report
	// Tried lists the pads examined, in order.
	Tried []uint64
}

// MinimalPad solves for the smallest pad that clears the predicted
// conflict: it analyzes build(pad) for pad = 0, Quantum, 2·Quantum, …
// and returns at the first clean verdict. build maps a candidate pad to
// the kernel's access spec at that pad (re-deriving bases and strides
// exactly as the padded allocation would).
//
// This is the static half of the advisor's contract: the caller verifies
// the recommendation with a handful of simulations instead of sweeping
// every candidate. An error is returned when no pad ≤ MaxPad analyzes
// clean — the caller should then fall back to a full dynamic sweep.
func MinimalPad(build func(pad uint64) *Spec, g mem.Geometry, opts PadOptions) (*PadResult, error) {
	if build == nil {
		return nil, fmt.Errorf("staticconf: nil spec builder")
	}
	o := opts.withDefaults()
	res := &PadResult{}
	for pad := uint64(0); pad <= o.MaxPad; pad += o.Quantum {
		rep, err := Analyze(build(pad), g, o.Analyze)
		if err != nil {
			return nil, fmt.Errorf("staticconf: pad %d: %w", pad, err)
		}
		res.Tried = append(res.Tried, pad)
		if pad == 0 {
			res.Baseline = rep
		}
		if !rep.Conflict {
			res.Pad = pad
			res.Report = rep
			return res, nil
		}
	}
	return res, fmt.Errorf("staticconf: no pad ≤ %d bytes clears the predicted conflict for %q",
		o.MaxPad, build(0).Kernel)
}
