package staticconf

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mem"
)

func validAccess() Access {
	return Access{
		Array: "a", Loop: "k.c:1", Base: 0x100000, Elem: 8,
		Dims: []Dim{{Stride: 1024, Trip: 16}, {Stride: 8, Trip: 128}}, Window: 1,
	}
}

func TestValidateOK(t *testing.T) {
	sp := &Spec{Kernel: "k", Accesses: []Access{validAccess()}}
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// Window == len(Dims) is the widest legal window.
	sp.Accesses[0].Window = 2
	if err := sp.Validate(); err != nil {
		t.Fatalf("full-width window rejected: %v", err)
	}
	// A dimensionless access (single address) with the default window.
	sp.Accesses[0].Dims, sp.Accesses[0].Window = nil, 1
	if err := sp.Validate(); err != nil {
		t.Fatalf("dimensionless access rejected: %v", err)
	}
}

func TestValidateZeroElem(t *testing.T) {
	a := validAccess()
	a.Elem = 0
	sp := &Spec{Kernel: "k", Accesses: []Access{a}}
	err := sp.Validate()
	if !errors.Is(err, ErrZeroElem) {
		t.Fatalf("want ErrZeroElem, got %v", err)
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *ValidationError, got %T", err)
	}
	if ve.Kernel != "k" || ve.Access != 0 || ve.Array != "a" || ve.Field != "Elem" {
		t.Fatalf("wrong location: %+v", ve)
	}
}

func TestValidateNonPositiveTrip(t *testing.T) {
	for _, trip := range []int{0, -3} {
		a := validAccess()
		a.Dims[1].Trip = trip
		sp := &Spec{Kernel: "k", Accesses: []Access{validAccess(), a}}
		err := sp.Validate()
		if !errors.Is(err, ErrNonPositiveTrip) {
			t.Fatalf("trip %d: want ErrNonPositiveTrip, got %v", trip, err)
		}
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("want *ValidationError, got %T", err)
		}
		if ve.Access != 1 || ve.Field != "Dims[1].Trip" {
			t.Fatalf("wrong location: %+v", ve)
		}
	}
}

func TestValidateWindowTooWide(t *testing.T) {
	a := validAccess()
	a.Window = 3
	sp := &Spec{Kernel: "k", Accesses: []Access{a}}
	err := sp.Validate()
	if !errors.Is(err, ErrWindowTooWide) {
		t.Fatalf("want ErrWindowTooWide, got %v", err)
	}
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.Field != "Window" {
		t.Fatalf("want Window field, got %v", err)
	}
}

func TestAnalyzeRejectsInvalidSpec(t *testing.T) {
	a := validAccess()
	a.Elem = 0
	sp := &Spec{Kernel: "k", Accesses: []Access{a}}
	_, err := Analyze(sp, mem.L1Default(), Options{})
	if !errors.Is(err, ErrZeroElem) {
		t.Fatalf("Analyze: want ErrZeroElem, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "access 0") {
		t.Fatalf("error should name the access: %v", err)
	}
}

// TestValidateDegenerateSpecs is the table of edge-of-domain specs:
// degenerate shapes that are legal (zero strides are revisit dims,
// negative strides are backwards walks, window 0 normalizes to the
// innermost dim) must validate and analyze, while structurally broken
// ones must come back as the right sentinel.
func TestValidateDegenerateSpecs(t *testing.T) {
	g := mem.L1Default()
	cases := []struct {
		name string
		mut  func(*Access) // applied to validAccess()
		want error         // nil = must validate AND analyze
	}{
		{"zero stride", func(a *Access) { a.Dims[0].Stride = 0 }, nil},
		{"all strides zero", func(a *Access) { a.Dims[0].Stride, a.Dims[1].Stride = 0, 0 }, nil},
		{"negative stride", func(a *Access) { a.Dims[1].Stride = -8 }, nil},
		{"negative outer stride", func(a *Access) { a.Dims[0].Stride = -1024 }, nil},
		{"single-trip dims", func(a *Access) { a.Dims[0].Trip, a.Dims[1].Trip = 1, 1 }, nil},
		{"empty window", func(a *Access) { a.Window = 0 }, nil},
		{"negative window", func(a *Access) { a.Window = -1 }, nil},
		{"zero trip", func(a *Access) { a.Dims[0].Trip = 0 }, ErrNonPositiveTrip},
		{"negative trip", func(a *Access) { a.Dims[1].Trip = -4 }, ErrNonPositiveTrip},
		{"negative extent", func(a *Access) { a.Dims[0] = Dim{Stride: -64, Trip: -16} }, ErrNonPositiveTrip},
		{"zero elem", func(a *Access) { a.Elem = 0 }, ErrZeroElem},
		{"window beyond dims", func(a *Access) { a.Window = 3 }, ErrWindowTooWide},
		{"window on dimensionless", func(a *Access) { a.Dims, a.Window = nil, 2 }, ErrWindowTooWide},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := validAccess()
			tc.mut(&a)
			sp := &Spec{Kernel: "k", Accesses: []Access{a}}
			err := sp.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("degenerate-but-legal spec rejected: %v", err)
				}
				if _, err := Analyze(sp, g, Options{}); err != nil {
					t.Fatalf("validated spec failed analysis: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("want *ValidationError, got %T", err)
			}
		})
	}
}

// TestAllDeclaredSpecsValidate is covered from the workloads side (every
// spec-carrying Program validates); here we pin that Approx is pure
// metadata and does not change the verdict.
func TestApproxIsMetadataOnly(t *testing.T) {
	g := mem.L1Default()
	sp := &Spec{Kernel: "k", Accesses: []Access{validAccess()}}
	r1, err := Analyze(sp, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp.Accesses[0].Approx = true
	r2, err := Analyze(sp, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Conflict != r2.Conflict || r1.PredictedCF != r2.PredictedCF {
		t.Fatalf("Approx changed the analysis: %+v vs %+v", r1, r2)
	}
}
