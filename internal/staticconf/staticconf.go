// Package staticconf predicts cache-set conflicts from affine access
// specifications alone — no trace, no simulation.
//
// CCProf's dynamic pipeline observes a run: it samples misses, measures
// re-conflict distances (RCD), and classifies loops from the measured
// short-RCD contribution factor. For affine loop nests, however, the set
// mapping is computable in closed form from strides and extents (Gysi et
// al., "A Fast Analytical Model of Fully Associative Caches"; Razzak et
// al., "Static Reuse Profile Estimation for Array Applications"). This
// package is that static path: given per-loop access specifications
// (array base, element size, per-dimension strides and trip counts) and a
// mem.Geometry, it computes
//
//   - the cache-set footprint histogram of every access — which sets are
//     touched and with what multiplicity — via an O(dims × setspan)
//     residue convolution over Z_S, independent of trip counts;
//   - the per-set distinct-line demand within one reuse window, whose
//     comparison against the associativity is the paper's §2
//     power-of-two-stride pathology stated as a checkable theorem
//     (including the camping-set case, where outer iterations move the
//     footprint by less than a line so the same sets stay overloaded);
//   - a predicted short-RCD contribution factor and predicted RCD, so the
//     static verdict is directly comparable to the dynamic classifier's;
//   - a closed-form minimal-pad recommendation (see MinimalPad), which the
//     advisor verifies with a handful of simulations instead of a sweep.
//
// What stays dynamic: replacement-policy details, sampling noise, and
// non-affine access patterns (pointer chasing, data-dependent indices).
// Specs describe the dominant affine references of a kernel; the
// static-vs-dynamic confusion-matrix experiment quantifies the gap.
package staticconf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mem"
)

// Dim is one loop dimension of an affine access, outermost first in
// Access.Dims. Stride is the byte distance between consecutive iterations
// of this dimension; a zero stride models a dimension that revisits the
// same addresses (temporal multiplicity, e.g. a time-step loop).
type Dim struct {
	Stride int64
	Trip   int
}

// Access is one static array reference inside a loop nest. The reference
// at iteration vector (i_0 … i_{n-1}) touches byte address
//
//	Base + Σ_d i_d · Dims[d].Stride
//
// reading Elem bytes.
type Access struct {
	// Array names the allocation the reference touches, matching the
	// arena block name used by data-centric attribution.
	Array string
	// Loop is the source location of the enclosing loop, matching the
	// loop names in dynamic reports (e.g. "adi.c:59").
	Loop string
	// Base is the address of the reference at the all-zero iteration.
	Base uint64
	// Elem is the bytes accessed per reference.
	Elem uint64
	// Dims lists the loop dimensions, outermost first.
	Dims []Dim
	// Window is the number of innermost dims forming one reuse window:
	// the iteration span within which a line, once loaded, is expected
	// to be live again. Zero means 1 (the innermost loop).
	Window int
	// Approx marks an access whose dims are a deliberate rectangular
	// approximation of data-dependent or non-rectangular traffic (random
	// gathers, pointer chases, triangular nests). The analyzer treats it
	// like any other access; spec-extraction cross-checks compare such
	// accesses by volume only, since no affine extractor can reproduce
	// them from source.
	Approx bool
	// Write marks a store. The conflict analysis is read/write agnostic
	// (a line occupies its set either way); the false-sharing check is
	// not — only written lines invalidate across cores.
	Write bool
}

// Spec is the full affine access specification of one kernel variant.
type Spec struct {
	Kernel   string
	Accesses []Access
}

// Options tunes the analyzer. The zero value selects the defaults below.
type Options struct {
	// WindowRefCap bounds the per-access reuse-window enumeration;
	// default 1<<20. Larger windows are truncated (and reported).
	WindowRefCap int
	// CapacityFrac distinguishes conflict pressure from capacity
	// pressure: when more than this fraction of all sets is overloaded,
	// the cache is uniformly over-subscribed — misses are capacity
	// misses with long RCDs, not conflicts. Default 0.5.
	CapacityFrac float64
	// MinConflictShare is the minimum predicted short-RCD contribution
	// factor for a conflict verdict; default 0.25.
	MinConflictShare float64
}

func (o Options) withDefaults() Options {
	if o.WindowRefCap == 0 {
		o.WindowRefCap = 1 << 20
	}
	if o.CapacityFrac == 0 {
		o.CapacityFrac = 0.5
	}
	if o.MinConflictShare == 0 {
		o.MinConflictShare = 0.25
	}
	return o
}

// AccessReport is the per-access analysis output.
type AccessReport struct {
	Access Access
	// TotalRefs is the number of references the access issues over the
	// whole nest (the product of all trip counts).
	TotalRefs uint64
	// SetsTouched counts sets receiving at least one reference;
	// MaxSetRefs is the hottest set's reference count. Together they are
	// the footprint histogram summary (the full histogram is in
	// Report.Touches).
	SetsTouched int
	MaxSetRefs  uint64
	// WindowLines is the number of distinct cache lines touched within
	// one reuse window; WindowSets the number of sets they map to.
	WindowLines int
	WindowSets  int
	// StrideSets is the closed-form distinct-set count of a pure walk of
	// the innermost non-zero window stride: the §2 arithmetic. A small
	// value relative to the walk length is the power-of-two pathology.
	StrideSets int
	// PowerOfTwo reports the pure pathology: the innermost non-zero
	// window stride is ≡ 0 (mod set span), so consecutive iterations
	// land on the same set.
	PowerOfTwo bool
	// Pathological reports that this access alone overwhelms the
	// associativity of the sets its window touches:
	// WindowLines > WindowSets × Ways.
	Pathological bool
	// Camping reports the camping-set case: the access is pathological
	// and the first dimension outside the window moves the footprint by
	// less than one line (or not at all) per iteration, so the same sets
	// stay overloaded across consecutive windows.
	Camping bool
	// WindowTruncated reports that the reuse-window enumeration hit
	// Options.WindowRefCap; demand figures are then lower bounds.
	WindowTruncated bool
}

// Report is the static verdict for one kernel.
type Report struct {
	Kernel   string
	Geom     mem.Geometry
	Accesses []AccessReport
	// Touches is the per-set reference count over the whole run summed
	// across accesses: the footprint histogram.
	Touches []uint64
	// Demand is the per-set distinct-line demand within one reuse
	// window, deduplicated across accesses by absolute line address.
	// Demand[s] > Ways means set s cannot hold its working set.
	Demand []int
	// Overloaded lists the sets whose Demand exceeds the associativity,
	// ascending. MaxDemand is the largest per-set demand.
	Overloaded []int
	MaxDemand  int
	// PredictedCF is the predicted short-RCD contribution factor: the
	// modeled share of misses that are conflict-window thrash rather
	// than compulsory or streaming misses.
	PredictedCF float64
	// PredictedRCD is the predicted re-conflict distance on the
	// overloaded sets: misses cycle round |Overloaded| sets, so the
	// distance between consecutive misses on one set is about that
	// count. With no overloaded sets it is the set count (long).
	PredictedRCD float64
	// Conflict is the static verdict.
	Conflict bool
	// Reason is a one-line human explanation of the verdict.
	Reason string
}

// Analyze runs the static analysis of spec under geometry g.
func Analyze(spec *Spec, g mem.Geometry, opts Options) (*Report, error) {
	if spec == nil {
		return nil, fmt.Errorf("staticconf: nil spec")
	}
	if len(spec.Accesses) == 0 {
		return nil, fmt.Errorf("staticconf: spec %q has no accesses", spec.Kernel)
	}
	o := opts.withDefaults()

	rep := &Report{
		Kernel:  spec.Kernel,
		Geom:    g,
		Touches: make([]uint64, g.Sets),
		Demand:  make([]int, g.Sets),
	}

	// Per-access footprints and reuse windows. Lines are deduplicated
	// globally by absolute line number so two accesses walking the same
	// array (a read and a writeback, say) do not double their demand.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	globalLines := make(map[uint64]struct{})
	perAccess := make([]windowInfo, len(spec.Accesses))
	for i, a := range spec.Accesses {
		hist := touchHist(a, g)
		ar := AccessReport{Access: a, TotalRefs: totalRefs(a)}
		for s, c := range hist {
			rep.Touches[s] += c
			if c > 0 {
				ar.SetsTouched++
			}
			if c > ar.MaxSetRefs {
				ar.MaxSetRefs = c
			}
		}

		w := enumerateWindow(a, g, o.WindowRefCap)
		perAccess[i] = w
		ar.WindowTruncated = w.truncated
		ar.WindowLines = len(w.lines)
		wsets := make(map[int]struct{})
		for ln := range w.lines {
			wsets[int(ln)%g.Sets] = struct{}{}
			globalLines[ln] = struct{}{}
		}
		ar.WindowSets = len(wsets)

		if s, trip, ok := innerWindowStride(a); ok {
			ar.StrideSets = StrideSets(a.Base, s, trip, g)
			span := int64(g.Sets * g.LineSize)
			ar.PowerOfTwo = trip > 1 && s%span == 0
		}
		ar.Pathological = ar.WindowSets > 0 && ar.WindowLines > ar.WindowSets*g.Ways
		ar.Camping = ar.Pathological && campingOuter(a, g)
		rep.Accesses = append(rep.Accesses, ar)
	}

	// Union line demand per set, and the overloaded set list.
	for ln := range globalLines {
		rep.Demand[int(ln)%g.Sets]++
	}
	for s, d := range rep.Demand {
		if d > rep.MaxDemand {
			rep.MaxDemand = d
		}
		if d > g.Ways {
			rep.Overloaded = append(rep.Overloaded, s)
		}
	}
	sort.Ints(rep.Overloaded)

	rep.PredictedCF = predictCF(spec.Accesses, perAccess, rep.Overloaded, g)
	if n := len(rep.Overloaded); n > 0 {
		rep.PredictedRCD = float64(n)
	} else {
		rep.PredictedRCD = float64(g.Sets)
	}

	capacityBound := int(o.CapacityFrac * float64(g.Sets))
	switch {
	case len(rep.Overloaded) == 0:
		rep.Conflict = false
		rep.Reason = fmt.Sprintf("clean: max window demand %d ≤ %d ways on every set", rep.MaxDemand, g.Ways)
	case len(rep.Overloaded) > capacityBound:
		rep.Conflict = false
		rep.Reason = fmt.Sprintf("capacity-bound: %d/%d sets over-subscribed (demand up to %d lines); pressure is uniform, RCDs are long",
			len(rep.Overloaded), g.Sets, rep.MaxDemand)
	case rep.PredictedCF < o.MinConflictShare:
		rep.Conflict = false
		rep.Reason = fmt.Sprintf("clean: %d sets overloaded but predicted conflict share %.2f < %.2f",
			len(rep.Overloaded), rep.PredictedCF, o.MinConflictShare)
	default:
		rep.Conflict = true
		rep.Reason = fmt.Sprintf("conflict: %d/%d sets overloaded (demand up to %d > %d ways), predicted CF %.2f, predicted RCD %.0f",
			len(rep.Overloaded), g.Sets, rep.MaxDemand, g.Ways, rep.PredictedCF, rep.PredictedRCD)
	}
	return rep, nil
}

// Validation sentinels, matched with errors.Is through the wrapping
// *ValidationError.
var (
	ErrZeroElem        = errors.New("zero element size")
	ErrNonPositiveTrip = errors.New("non-positive trip count")
	ErrWindowTooWide   = errors.New("window wider than the dim list")
)

// ValidationError pinpoints one structurally invalid field of an access
// spec: which kernel, which access, which field, and the sentinel cause.
type ValidationError struct {
	Kernel string
	Access int    // index into Spec.Accesses
	Array  string // Access.Array, for readable messages
	Field  string // e.g. "Elem", "Dims[2].Trip", "Window"
	Detail string
	Err    error // one of the sentinels above
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("staticconf: %s: access %d (%s): %s: %s (%s)",
		e.Kernel, e.Access, e.Array, e.Field, e.Err, e.Detail)
}

func (e *ValidationError) Unwrap() error { return e.Err }

// Validate checks every access of the spec for structural validity and
// returns the first violation as a *ValidationError.
func (s *Spec) Validate() error {
	for i, a := range s.Accesses {
		if err := validate(a); err != nil {
			ve := err.(*ValidationError)
			ve.Kernel, ve.Access, ve.Array = s.Kernel, i, a.Array
			return ve
		}
	}
	return nil
}

func validate(a Access) error {
	if a.Elem == 0 {
		return &ValidationError{Field: "Elem", Detail: "Elem is 0", Err: ErrZeroElem}
	}
	for d, dim := range a.Dims {
		if dim.Trip < 1 {
			return &ValidationError{
				Field:  fmt.Sprintf("Dims[%d].Trip", d),
				Detail: fmt.Sprintf("trip %d < 1", dim.Trip),
				Err:    ErrNonPositiveTrip,
			}
		}
	}
	if a.Window > len(a.Dims) && !(a.Window == 1 && len(a.Dims) == 0) {
		return &ValidationError{
			Field:  "Window",
			Detail: fmt.Sprintf("window %d exceeds %d dims", a.Window, len(a.Dims)),
			Err:    ErrWindowTooWide,
		}
	}
	return nil
}

// windowCount returns how many dims at the tail of a.Dims form the reuse
// window, after normalization.
func windowCount(a Access) int {
	w := a.Window
	if w <= 0 {
		w = 1
	}
	if w > len(a.Dims) {
		w = len(a.Dims)
	}
	return w
}

func totalRefs(a Access) uint64 {
	n := uint64(1)
	for _, d := range a.Dims {
		n *= uint64(d.Trip)
	}
	return n
}

// innerWindowStride returns the innermost window dim with a non-zero
// stride, for the §2 stride-arithmetic check.
func innerWindowStride(a Access) (stride int64, trip int, ok bool) {
	w := windowCount(a)
	for i := len(a.Dims) - 1; i >= len(a.Dims)-w; i-- {
		if a.Dims[i].Stride != 0 {
			return a.Dims[i].Stride, a.Dims[i].Trip, true
		}
	}
	return 0, 0, false
}

// campingOuter reports whether the first dimension outside the reuse
// window (if any) moves the footprint by less than one line per
// iteration modulo the set span — the condition under which the same
// sets stay overloaded window after window. With no outer dims the
// window is the whole nest and camping trivially holds.
func campingOuter(a Access, g mem.Geometry) bool {
	w := windowCount(a)
	outer := len(a.Dims) - w
	if outer <= 0 {
		return true
	}
	span := g.Sets * g.LineSize
	s := normStride(a.Dims[outer-1].Stride, span)
	if s > span/2 { // moving backwards round the ring
		s = span - s
	}
	return s < g.LineSize
}

// predictCF models the short-RCD contribution factor. Lines living on
// overloaded sets are evicted between windows, so they miss once per
// window with a short RCD (the thrash term). Everything else misses at
// most once per full revisit of a footprint larger than the cache (the
// compulsory/streaming term, long RCDs). The ratio mirrors Equation 1.
func predictCF(accesses []Access, wins []windowInfo, overloaded []int, g mem.Geometry) float64 {
	over := make(map[int]struct{}, len(overloaded))
	for _, s := range overloaded {
		over[s] = struct{}{}
	}
	var thrash, clean float64
	for i, a := range accesses {
		w := windowCount(a)
		windows := uint64(1)
		for _, d := range a.Dims[:len(a.Dims)-w] {
			windows *= uint64(d.Trip)
		}
		linesOnOver := 0
		for ln := range wins[i].lines {
			if _, ok := over[int(ln)%g.Sets]; ok {
				linesOnOver++
			}
		}
		thrash += float64(windows) * float64(linesOnOver)

		// Compulsory / streaming misses on the clean sets.
		distinct := distinctLinesEstimate(a, g)
		revisits := uint64(1)
		for _, d := range a.Dims {
			if d.Stride == 0 {
				revisits *= uint64(d.Trip)
			}
		}
		misses := float64(distinct)
		if revisits > 1 && distinct*uint64(g.LineSize) > uint64(g.Size()) {
			misses *= float64(revisits)
		}
		frac := 1.0
		if nl := len(wins[i].lines); nl > 0 {
			frac = 1 - float64(linesOnOver)/float64(nl)
		}
		clean += misses * frac
	}
	if thrash+clean == 0 {
		return 0
	}
	return thrash / (thrash + clean)
}

// distinctLinesEstimate bounds the number of distinct lines an access
// touches over the whole nest: the span of its address range, capped by
// its reference count.
func distinctLinesEstimate(a Access, g mem.Geometry) uint64 {
	lo, hi := int64(a.Base), int64(a.Base)+int64(a.Elem)-1
	for _, d := range a.Dims {
		ext := int64(d.Trip-1) * d.Stride
		if ext > 0 {
			hi += ext
		} else {
			lo += ext
		}
	}
	spanLines := uint64(hi/int64(g.LineSize)-lo/int64(g.LineSize)) + 1
	if n := totalRefs(a); n < spanLines {
		return n
	}
	return spanLines
}

// PredictProb maps the predicted CF through the same logistic shape the
// dynamic classifier uses, for display purposes. It is a convenience for
// report rendering, not part of the verdict.
func (r *Report) PredictProb() float64 {
	// Centered near the dynamic decision region; purely cosmetic.
	return 1 / (1 + math.Exp(-8*(r.PredictedCF-0.4)))
}
