package staticconf

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// WriteText renders the report for terminals, mirroring the layout of the
// dynamic analysis report so the two verdicts read side by side.
func (r *Report) WriteText(w io.Writer) error {
	verdict := "NO CONFLICT predicted"
	if r.Conflict {
		verdict = "CONFLICT predicted"
	}
	fmt.Fprintf(w, "=== static analysis: %s (%s) ===\n", r.Kernel, r.Geom)
	fmt.Fprintf(w, "verdict: %s — %s\n", verdict, r.Reason)
	fmt.Fprintf(w, "predicted CF %.3f, predicted RCD %.0f, max window demand %d lines (assoc %d)\n",
		r.PredictedCF, r.PredictedRCD, r.MaxDemand, r.Geom.Ways)
	if n := len(r.Overloaded); n > 0 {
		fmt.Fprintf(w, "overloaded sets (%d): %s\n", n, formatSets(r.Overloaded))
	}

	t := report.NewTable("per-access footprint",
		"array", "loop", "refs", "sets", "win lines", "win sets", "stride sets", "flags")
	for _, a := range r.Accesses {
		t.Row(a.Access.Array, a.Access.Loop, a.TotalRefs, a.SetsTouched,
			a.WindowLines, a.WindowSets, a.StrideSets, flagString(a))
	}
	return t.Write(w)
}

// flagString compresses the pathology flags into a short label.
func flagString(a AccessReport) string {
	s := ""
	if a.PowerOfTwo {
		s += "pow2 "
	}
	if a.Camping {
		s += "camping "
	} else if a.Pathological {
		s += "pathological "
	}
	if a.WindowTruncated {
		s += "truncated "
	}
	if s == "" {
		return "-"
	}
	return s[:len(s)-1]
}

// formatSets prints a set list compactly, collapsing runs: "0-3,32-35".
func formatSets(sets []int) string {
	if len(sets) == 0 {
		return "-"
	}
	out := ""
	for i := 0; i < len(sets); {
		j := i
		for j+1 < len(sets) && sets[j+1] == sets[j]+1 {
			j++
		}
		if out != "" {
			out += ","
		}
		if j > i {
			out += fmt.Sprintf("%d-%d", sets[i], sets[j])
		} else {
			out += fmt.Sprintf("%d", sets[i])
		}
		i = j + 1
	}
	return out
}
