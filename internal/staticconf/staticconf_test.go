package staticconf

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

// bruteHist enumerates the full iteration space of an access and counts
// references per set — the O(Π trips) definition the convolution must match.
func bruteHist(a Access, g mem.Geometry) []uint64 {
	out := make([]uint64, g.Sets)
	var walk func(d int, addr int64)
	walk = func(d int, addr int64) {
		if d == len(a.Dims) {
			out[g.Set(uint64(addr))]++
			return
		}
		for t := 0; t < a.Dims[d].Trip; t++ {
			walk(d+1, addr+int64(t)*a.Dims[d].Stride)
		}
	}
	walk(0, int64(a.Base))
	return out
}

func TestTouchHistMatchesBruteForce(t *testing.T) {
	g := mem.MustGeometry(64, 64, 8)
	cases := []Access{
		{Array: "pow2", Base: 0x10_0000, Elem: 8,
			Dims: []Dim{{Stride: 4096, Trip: 100}}},
		{Array: "padded", Base: 0x10_0040, Elem: 8,
			Dims: []Dim{{Stride: 4128, Trip: 97}, {Stride: 8, Trip: 13}}},
		{Array: "negative", Base: 0x20_0000, Elem: 4,
			Dims: []Dim{{Stride: -520, Trip: 33}, {Stride: 12, Trip: 41}}},
		{Array: "temporal", Base: 0x10_0000, Elem: 8,
			Dims: []Dim{{Stride: 0, Trip: 5}, {Stride: 2052, Trip: 17}, {Stride: 4, Trip: 9}}},
		{Array: "wraps", Base: 0x10_0100, Elem: 8,
			Dims: []Dim{{Stride: 4100, Trip: 300}}},
		{Array: "coprime", Base: 0x10_0000, Elem: 8,
			Dims: []Dim{{Stride: 4097, Trip: 5000}}},
	}
	for _, a := range cases {
		got := touchHist(a, g)
		want := bruteHist(a, g)
		for s := range want {
			if got[s] != want[s] {
				t.Fatalf("%s: set %d: touchHist=%d brute=%d", a.Array, s, got[s], want[s])
			}
		}
	}
}

func TestStrideSetsTheorem(t *testing.T) {
	g := mem.MustGeometry(64, 64, 8) // set span 4096
	cases := []struct {
		stride int64
		trip   int
		want   int
	}{
		{4096, 100, 1},       // §2 pathology: power-of-two row size camps one set
		{8192, 100, 1},       // any multiple of the span camps too
		{4096 + 64, 100, 64}, // one line of pad: every set, once per wrap
		{2048, 100, 2},       // half the span: two sets
		{64, 100, 64},        // unit-line stride: all sets, then wraps
		{64, 10, 10},         // short walk: bounded by the trip count
		{0, 100, 1},          // degenerate stationary access
	}
	for _, c := range cases {
		if got := StrideSets(0x10_0000, c.stride, c.trip, g); got != c.want {
			t.Errorf("StrideSets(stride=%d, trip=%d) = %d, want %d", c.stride, c.trip, got, c.want)
		}
	}
}

// column returns the spec of a column walk over a rows×cols matrix of
// 8-byte elements with the given row pad: the canonical §2 pathology when
// the row size is a multiple of the set span.
func column(pad uint64, rows, cols int) *Spec {
	rowStride := int64(cols)*8 + int64(pad)
	return &Spec{
		Kernel: "column-walk",
		Accesses: []Access{{
			Array: "m", Loop: "col.c:1", Base: 0x10_0000, Elem: 8,
			Dims: []Dim{
				{Stride: 8, Trip: cols},         // outer: next column
				{Stride: rowStride, Trip: rows}, // inner: down the column
			},
			Window: 1,
		}},
	}
}

func TestAnalyzePowerOfTwoColumnWalk(t *testing.T) {
	g := mem.L1Default()
	rep, err := Analyze(column(0, 512, 512), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Conflict {
		t.Fatalf("unpadded column walk not flagged: %s", rep.Reason)
	}
	a := rep.Accesses[0]
	if !a.PowerOfTwo {
		t.Error("PowerOfTwo flag not set for stride 4096")
	}
	if !a.Camping {
		t.Error("Camping flag not set: outer stride 8 < line size keeps the set camped")
	}
	if a.StrideSets != 1 {
		t.Errorf("StrideSets = %d, want 1", a.StrideSets)
	}
	if len(rep.Overloaded) == 0 || rep.PredictedRCD > 8 {
		t.Errorf("expected few overloaded sets with short predicted RCD, got %d sets, RCD %.0f",
			len(rep.Overloaded), rep.PredictedRCD)
	}
	if rep.PredictedCF < 0.5 {
		t.Errorf("PredictedCF = %.2f, want ≥ 0.5 for a camped column walk", rep.PredictedCF)
	}

	padded, err := Analyze(column(64, 512, 512), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if padded.Conflict {
		t.Fatalf("padded column walk still flagged: %s", padded.Reason)
	}
}

func TestAnalyzeCapacityRegimeIsNotConflict(t *testing.T) {
	g := mem.L1Default()
	// Three interleaved streams whose window holds 16 lines on every set:
	// uniform over-subscription, i.e. capacity pressure, not conflicts.
	spec := &Spec{Kernel: "streams"}
	for i := 0; i < 2; i++ {
		spec.Accesses = append(spec.Accesses, Access{
			Array: "s", Loop: "s.c:1", Base: 0x10_0000 + uint64(i)*1<<20, Elem: 8,
			Dims:   []Dim{{Stride: 8, Trip: 64 * 1024}},
			Window: 1,
		})
	}
	rep, err := Analyze(spec, g, Options{WindowRefCap: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conflict {
		t.Fatalf("uniform streaming flagged as conflict: %s", rep.Reason)
	}
	if len(rep.Overloaded) <= g.Sets/2 {
		t.Fatalf("test premise broken: expected most sets overloaded, got %d", len(rep.Overloaded))
	}
}

func TestMinimalPadFindsSmallestCleanPad(t *testing.T) {
	g := mem.L1Default()
	res, err := MinimalPad(func(pad uint64) *Spec { return column(pad, 512, 512) }, g,
		PadOptions{Quantum: 8, MaxPad: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pad == 0 {
		t.Fatal("baseline should not analyze clean")
	}
	if res.Baseline == nil || !res.Baseline.Conflict {
		t.Fatal("baseline report missing or not conflicted")
	}
	if res.Report.Conflict {
		t.Fatal("recommended pad still conflicted")
	}
	// Minimality: every smaller tried pad must have been conflicted, so
	// the recommendation is the first clean one.
	if res.Tried[len(res.Tried)-1] != res.Pad {
		t.Errorf("search did not stop at the recommendation: tried %v, pad %d", res.Tried, res.Pad)
	}
	// And the pad must actually be small: a single line of pad spreads a
	// power-of-two column walk, so the solver should not need more than 64.
	if res.Pad > 64 {
		t.Errorf("minimal pad %d, want ≤ 64 for the pure pathology", res.Pad)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	g := mem.L1Default()
	if _, err := Analyze(nil, g, Options{}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := Analyze(&Spec{Kernel: "empty"}, g, Options{}); err == nil {
		t.Error("empty spec accepted")
	}
	bad := &Spec{Kernel: "bad", Accesses: []Access{{Array: "a", Elem: 8, Dims: []Dim{{Stride: 8, Trip: 0}}}}}
	if _, err := Analyze(bad, g, Options{}); err == nil {
		t.Error("zero trip accepted")
	}
}

func TestWriteText(t *testing.T) {
	g := mem.L1Default()
	rep, err := Analyze(column(0, 512, 512), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CONFLICT predicted", "column-walk", "pow2", "per-access footprint"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}
