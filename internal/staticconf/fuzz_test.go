package staticconf

import (
	"errors"
	"testing"

	"repro/internal/mem"
)

// FuzzSpecValidate feeds arbitrary two-dim access shapes through the
// validator: it must never panic, every rejection must be a typed
// *ValidationError wrapping one of the sentinels, and every accepted
// spec must survive analysis. The corpus is seeded with the degenerate
// shapes of TestValidateDegenerateSpecs — zero strides, negative
// extents, empty and oversized windows.
func FuzzSpecValidate(f *testing.F) {
	f.Add(uint64(8), int64(1024), int64(8), 16, 128, 1) // the canonical valid access
	f.Add(uint64(8), int64(0), int64(8), 4, 16, 1)      // zero stride (revisit dim)
	f.Add(uint64(8), int64(0), int64(0), 4, 4, 2)       // all strides zero
	f.Add(uint64(4), int64(-64), int64(-8), 8, 8, 1)    // negative strides (backwards walk)
	f.Add(uint64(8), int64(-64), int64(8), -16, 8, 1)   // negative extent
	f.Add(uint64(8), int64(64), int64(8), 0, 8, 1)      // zero trip
	f.Add(uint64(0), int64(64), int64(8), 4, 4, 1)      // zero elem
	f.Add(uint64(8), int64(64), int64(8), 4, 4, 0)      // empty window
	f.Add(uint64(8), int64(64), int64(8), 4, 4, -1)     // negative window
	f.Add(uint64(8), int64(64), int64(8), 4, 4, 5)      // window beyond dims
	f.Fuzz(func(t *testing.T, elem uint64, s1, s2 int64, t1, t2, window int) {
		sp := &Spec{Kernel: "fuzz", Accesses: []Access{{
			Array: "a", Loop: "f.c:1", Base: 0x100000, Elem: elem,
			Dims:   []Dim{{Stride: s1, Trip: t1}, {Stride: s2, Trip: t2}},
			Window: window,
		}}}
		err := sp.Validate()
		if err != nil {
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("rejection is not a *ValidationError: %T %v", err, err)
			}
			if ve.Err == nil {
				t.Fatalf("ValidationError without a sentinel: %+v", ve)
			}
			return
		}
		// The analyzer's cost scales with trips and element size; bound
		// the accepted shapes so the fuzzer probes the arithmetic, not
		// the clock.
		if elem > 64 || t1 > 64 || t2 > 64 || abs64(s1) > 1<<20 || abs64(s2) > 1<<20 {
			return
		}
		if _, err := Analyze(sp, mem.MustGeometry(16, 8, 2), Options{}); err != nil {
			t.Fatalf("validated spec failed analysis: %v", err)
		}
	})
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
