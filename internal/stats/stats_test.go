package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5) {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); !almostEqual(got, c.want) {
			t.Errorf("Median(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestGeoMean(t *testing.T) {
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) should error")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
	got, err := GeoMean([]float64{2, 8})
	if err != nil || !almostEqual(got, 4) {
		t.Errorf("GeoMean(2,8) = %g, %v; want 4", got, err)
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance single = %g, want 0", got)
	}
	if got := Variance([]float64{1, 3}); !almostEqual(got, 1) {
		t.Errorf("Variance(1,3) = %g, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {50, 30}, {100, 50}, {25, 20}, {12.5, 15},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || !almostEqual(got, c.want) {
			t.Errorf("Percentile(%g) = %g, %v; want %g", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile of empty should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should error")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r)
			w.Add(xs[i])
		}
		return w.N() == len(xs) &&
			math.Abs(w.Mean()-Mean(xs)) < 1e-6 &&
			math.Abs(w.Variance()-Variance(xs)) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntHistBasics(t *testing.T) {
	var h IntHist
	if h.Total() != 0 || h.CumulativeAt(10) != 0 || h.CDF() != nil {
		t.Error("empty histogram should report zeros")
	}
	h.Add(3)
	h.Add(3)
	h.Add(1)
	h.AddN(7, 4)
	if h.Total() != 7 || h.Count(3) != 2 || h.Count(1) != 1 || h.Count(7) != 4 {
		t.Errorf("unexpected counts: %v", h.String())
	}
	if h.Distinct() != 3 || h.Max() != 7 {
		t.Errorf("Distinct=%d Max=%d, want 3, 7", h.Distinct(), h.Max())
	}
	if got := h.Values(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 7 {
		t.Errorf("Values() = %v", got)
	}
	if got := h.CumulativeAt(3); !almostEqual(got, 3.0/7) {
		t.Errorf("CumulativeAt(3) = %g, want %g", got, 3.0/7)
	}
}

func TestIntHistCDF(t *testing.T) {
	var h IntHist
	h.AddN(1, 1)
	h.AddN(2, 1)
	h.AddN(4, 2)
	cdf := h.CDF()
	if len(cdf) != 3 {
		t.Fatalf("CDF length = %d, want 3", len(cdf))
	}
	if cdf[0].Value != 1 || !almostEqual(cdf[0].Cum, 0.25) {
		t.Errorf("cdf[0] = %+v", cdf[0])
	}
	if cdf[2].Value != 4 || !almostEqual(cdf[2].Cum, 1) {
		t.Errorf("cdf[2] = %+v", cdf[2])
	}
	// CDF must be non-decreasing and end at 1.
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Cum < cdf[i-1].Cum || cdf[i].Value <= cdf[i-1].Value {
			t.Errorf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
}

func TestIntHistMerge(t *testing.T) {
	var a, b IntHist
	a.Add(1)
	b.Add(1)
	b.Add(2)
	a.Merge(&b)
	if a.Total() != 3 || a.Count(1) != 2 || a.Count(2) != 1 {
		t.Errorf("after merge: %s", a.String())
	}
}

// Property: CumulativeAt(Max) == 1 for any non-empty histogram.
func TestIntHistCumulativeProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var h IntHist
		for _, v := range vals {
			h.Add(int(v))
		}
		return almostEqual(h.CumulativeAt(h.Max()), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfusionScores(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion should score 0")
	}
	// 3 TP, 1 FP, 4 TN, 1 FN
	for i := 0; i < 3; i++ {
		c.Observe(true, true)
	}
	c.Observe(true, false)
	for i := 0; i < 4; i++ {
		c.Observe(false, false)
	}
	c.Observe(false, true)
	if !almostEqual(c.Precision(), 0.75) {
		t.Errorf("Precision = %g, want 0.75", c.Precision())
	}
	if !almostEqual(c.Recall(), 0.75) {
		t.Errorf("Recall = %g, want 0.75", c.Recall())
	}
	if !almostEqual(c.F1(), 0.75) {
		t.Errorf("F1 = %g, want 0.75", c.F1())
	}
	if !almostEqual(c.Accuracy(), 7.0/9) {
		t.Errorf("Accuracy = %g, want %g", c.Accuracy(), 7.0/9)
	}
}

func TestPerfectClassifierF1IsOne(t *testing.T) {
	var c Confusion
	c.Observe(true, true)
	c.Observe(false, false)
	if c.F1() != 1 {
		t.Errorf("perfect classifier F1 = %g, want 1", c.F1())
	}
}

func TestKFold(t *testing.T) {
	folds, err := KFold(16, 8, NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 8 {
		t.Fatalf("got %d folds, want 8", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) != 2 {
			t.Errorf("fold size %d, want 2", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Errorf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 16 {
		t.Errorf("covered %d indices, want 16", len(seen))
	}
}

func TestKFoldUneven(t *testing.T) {
	folds, err := KFold(10, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range folds {
		if len(f) < 3 || len(f) > 4 {
			t.Errorf("fold size %d, want 3 or 4", len(f))
		}
		total += len(f)
	}
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(5, 0, nil); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KFold(5, 6, nil); err == nil {
		t.Error("k>n should error")
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("NewRand not deterministic for equal seeds")
		}
	}
}
