// Package stats provides the small statistical toolkit CCProf's analyses
// rely on: histograms and CDFs over integer-valued metrics (RCD values),
// binary-classification scoring (precision, recall, F1), k-fold splits for
// cross-validation, and a deterministic RNG so every experiment is
// reproducible run-to-run.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic pseudo-random source for experiments.
// Every randomized component in this repository (sampling-period jitter,
// k-fold shuffles, random replacement) draws from an explicitly seeded
// source so published experiment outputs are exactly reproducible.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (average of the two middle elements for
// even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of empty slice")
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive values, got %g", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of range [0,100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
