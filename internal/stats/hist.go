package stats

import (
	"fmt"
	"sort"
)

// denseSpan is the value range [0, denseSpan) an IntHist counts in a flat
// array. RCD values are overwhelmingly small — bounded by the set count (64
// for the default L1) for any balanced traffic, and the conflict signature
// the paper looks for is RCD <= 8 — so nearly every observation lands in
// the dense span and costs one array increment instead of a map probe. The
// span also covers the bulk of conflict-period lengths, keeping the
// overflow map (and its per-sweep churn) out of the replay hot path.
const denseSpan = 512

// IntHist is a histogram over integer values, used for per-set RCD
// distributions (Figure 5-b) and miss-per-set counts (Figure 3-b). Values
// in [0, denseSpan) are counted in a flat array; anything outside spills to
// a map. The zero value is ready to use.
type IntHist struct {
	small    []uint64       // counts for values in [0, denseSpan); nil until first use
	big      map[int]uint64 // overflow counts; nil until first out-of-span value
	distinct int            // number of nonzero entries in small
	total    uint64
}

// Add increments the count of value v by 1.
func (h *IntHist) Add(v int) { h.AddN(v, 1) }

// AddN increments the count of value v by n. Adding zero observations is a
// no-op.
func (h *IntHist) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if uint(v) < denseSpan {
		if h.small == nil {
			h.small = make([]uint64, denseSpan)
		}
		if h.small[v] == 0 {
			h.distinct++
		}
		h.small[v] += n
	} else {
		if h.big == nil {
			h.big = make(map[int]uint64)
		}
		h.big[v] += n
	}
	h.total += n
}

// Count returns the number of observations of value v.
func (h *IntHist) Count(v int) uint64 {
	if uint(v) < denseSpan {
		if h.small == nil {
			return 0
		}
		return h.small[v]
	}
	return h.big[v]
}

// Total returns the number of observations across all values.
func (h *IntHist) Total() uint64 { return h.total }

// Distinct returns the number of distinct values observed.
func (h *IntHist) Distinct() int { return h.distinct + len(h.big) }

// Values returns the observed values in increasing order.
func (h *IntHist) Values() []int {
	return h.AppendValues(make([]int, 0, h.Distinct()))
}

// AppendValues appends the observed values in increasing order to dst and
// returns the extended slice. Passing a reused scratch slice (dst[:0]) makes
// repeated CDF rendering allocation-free.
func (h *IntHist) AppendValues(dst []int) []int {
	start := len(dst)
	for v := range h.big {
		if v < 0 {
			dst = append(dst, v)
		}
	}
	sort.Ints(dst[start:])
	split := len(dst)
	for v, n := range h.small {
		if n > 0 {
			dst = append(dst, v)
		}
	}
	for v := range h.big {
		if v >= 0 {
			dst = append(dst, v)
		}
	}
	sort.Ints(dst[split:])
	return dst
}

// CountLE returns the number of observations with value <= v. Unlike
// Values-based summation it allocates nothing, and its integer accumulation
// is independent of map iteration order.
func (h *IntHist) CountLE(v int) uint64 {
	var c uint64
	hi := v
	if hi >= denseSpan {
		hi = denseSpan - 1
	}
	for i := 0; i <= hi && i < len(h.small); i++ {
		c += h.small[i]
	}
	for val, n := range h.big {
		if val <= v {
			c += n
		}
	}
	return c
}

// CumulativeAt returns the fraction of observations with value <= v.
// It returns 0 for an empty histogram.
func (h *IntHist) CumulativeAt(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.CountLE(v)) / float64(h.total)
}

// Mean returns the weighted mean of observed values, or 0 for an empty
// histogram. The sum accumulates in integers, so the result does not depend
// on map iteration order.
func (h *IntHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum int64
	for v, n := range h.small {
		if n > 0 {
			sum += int64(v) * int64(n)
		}
	}
	for v, n := range h.big {
		sum += int64(v) * int64(n)
	}
	return float64(sum) / float64(h.total)
}

// Max returns the largest observed value, or 0 for an empty histogram.
func (h *IntHist) Max() int {
	max := 0
	for v := range h.big {
		if v > max {
			max = v
		}
	}
	for v := len(h.small) - 1; v > max; v-- {
		if h.small[v] > 0 {
			return v
		}
	}
	return max
}

// Merge adds all observations of other into h.
func (h *IntHist) Merge(other *IntHist) {
	for v, n := range other.small {
		if n > 0 {
			h.AddN(v, n)
		}
	}
	for v, n := range other.big {
		h.AddN(v, n)
	}
}

// Reset discards all observations, keeping the dense storage so a pooled
// histogram can be refilled without reallocating.
func (h *IntHist) Reset() {
	for i := range h.small {
		h.small[i] = 0
	}
	// Keep the overflow map and clear it in place: its buckets survive, so a
	// pooled histogram refilled with a similar value distribution stops
	// allocating on the overflow path.
	clear(h.big)
	h.distinct = 0
	h.total = 0
}

// NewDense returns n ready IntHists whose dense arrays are carved from one
// shared backing allocation — two allocations total instead of one per
// histogram. It exists for per-set histogram banks (rcd.Tracker keeps one
// IntHist per cache set).
func NewDense(n int) []IntHist {
	hs := make([]IntHist, n)
	backing := make([]uint64, n*denseSpan)
	for i := range hs {
		hs[i].small = backing[i*denseSpan : (i+1)*denseSpan : (i+1)*denseSpan]
	}
	return hs
}

// CDFPoint is one point of a discrete cumulative distribution: the fraction
// Cum of observations with value <= Value.
type CDFPoint struct {
	Value int
	Cum   float64
}

// CDF returns the full cumulative distribution of the histogram as a series
// of points in increasing Value order. The final point has Cum == 1 for any
// non-empty histogram.
func (h *IntHist) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	vs := h.Values()
	out := make([]CDFPoint, 0, len(vs))
	var run uint64
	for _, v := range vs {
		run += h.Count(v)
		out = append(out, CDFPoint{Value: v, Cum: float64(run) / float64(h.total)})
	}
	return out
}

// String renders a compact "value:count" summary for debugging.
func (h *IntHist) String() string {
	vs := h.Values()
	s := "{"
	for i, v := range vs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", v, h.Count(v))
	}
	return s + "}"
}
