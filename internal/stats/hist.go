package stats

import (
	"fmt"
	"sort"
)

// IntHist is a sparse histogram over non-negative integer values, used for
// per-set RCD distributions (Figure 5-b) and miss-per-set counts
// (Figure 3-b). The zero value is ready to use.
type IntHist struct {
	counts map[int]uint64
	total  uint64
}

// Add increments the count of value v by 1.
func (h *IntHist) Add(v int) { h.AddN(v, 1) }

// AddN increments the count of value v by n.
func (h *IntHist) AddN(v int, n uint64) {
	if h.counts == nil {
		h.counts = make(map[int]uint64)
	}
	h.counts[v] += n
	h.total += n
}

// Count returns the number of observations of value v.
func (h *IntHist) Count(v int) uint64 { return h.counts[v] }

// Total returns the number of observations across all values.
func (h *IntHist) Total() uint64 { return h.total }

// Distinct returns the number of distinct values observed.
func (h *IntHist) Distinct() int { return len(h.counts) }

// Values returns the observed values in increasing order.
func (h *IntHist) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// CumulativeAt returns the fraction of observations with value <= v.
// It returns 0 for an empty histogram.
func (h *IntHist) CumulativeAt(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var c uint64
	for val, n := range h.counts {
		if val <= v {
			c += n
		}
	}
	return float64(c) / float64(h.total)
}

// Max returns the largest observed value, or 0 for an empty histogram.
func (h *IntHist) Max() int {
	max := 0
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Merge adds all observations of other into h.
func (h *IntHist) Merge(other *IntHist) {
	for v, n := range other.counts {
		h.AddN(v, n)
	}
}

// CDFPoint is one point of a discrete cumulative distribution: the fraction
// Cum of observations with value <= Value.
type CDFPoint struct {
	Value int
	Cum   float64
}

// CDF returns the full cumulative distribution of the histogram as a series
// of points in increasing Value order. The final point has Cum == 1 for any
// non-empty histogram.
func (h *IntHist) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	vs := h.Values()
	out := make([]CDFPoint, 0, len(vs))
	var run uint64
	for _, v := range vs {
		run += h.counts[v]
		out = append(out, CDFPoint{Value: v, Cum: float64(run) / float64(h.total)})
	}
	return out
}

// String renders a compact "value:count" summary for debugging.
func (h *IntHist) String() string {
	vs := h.Values()
	s := "{"
	for i, v := range vs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", v, h.counts[v])
	}
	return s + "}"
}
