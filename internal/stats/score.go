package stats

import (
	"fmt"
	"math/rand"
)

// Confusion tallies binary-classification outcomes. Positive means "the loop
// suffers from conflict misses" in CCProf's classifier.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one (predicted, actual) pair.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there were no actual positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall — the accuracy score
// the paper reports in Figure 8. A perfect classifier scores 1, the worst 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d P=%.3f R=%.3f F1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}

// KFold partitions the index range [0, n) into k folds for cross-validation
// (the paper uses 8-fold CV over its 16 training loops). The indices are
// shuffled with rng when it is non-nil; folds differ in size by at most one.
// It returns an error when k is out of range.
func KFold(n, k int, rng *rand.Rand) ([][]int, error) {
	if k <= 0 || k > n {
		return nil, fmt.Errorf("stats: k-fold with k=%d, n=%d out of range", k, n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds, nil
}
