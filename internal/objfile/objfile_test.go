package objfile

import (
	"strings"
	"testing"
)

// buildDoubleLoop builds:
//
//	func main:
//	  loop L1 (f.c:10)
//	    load (f.c:11)
//	    loop L2 (f.c:12)
//	      load (f.c:13)
//	      store (f.c:14)
//	    end L2
//	  end L1
func buildDoubleLoop(t *testing.T) (*Binary, map[string]uint64) {
	t.Helper()
	b := NewBuilder("test")
	ips := map[string]uint64{}
	b.Func("main")
	ips["l1"] = b.Loop("f.c", 10)
	ips["ld1"] = b.Load("f.c", 11)
	ips["l2"] = b.Loop("f.c", 12)
	ips["ld2"] = b.Load("f.c", 13)
	ips["st"] = b.Store("f.c", 14)
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()
	if err := bin.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return bin, ips
}

func TestBuilderProducesContiguousInstrs(t *testing.T) {
	bin, _ := buildDoubleLoop(t)
	if len(bin.Instrs) != 8 { // 2 headers + 3 mem + 2 backedges + ret
		t.Fatalf("instr count = %d, want 8", len(bin.Instrs))
	}
	if bin.Instrs[0].Addr != BaseText {
		t.Errorf("first addr = %#x, want %#x", bin.Instrs[0].Addr, uint64(BaseText))
	}
	for i := 1; i < len(bin.Instrs); i++ {
		if bin.Instrs[i].Addr != bin.Instrs[i-1].Addr+InstrSize {
			t.Fatalf("instr %d not contiguous", i)
		}
	}
}

func TestBackEdgesTargetHeaders(t *testing.T) {
	bin, ips := buildDoubleLoop(t)
	var backs []Instruction
	for _, in := range bin.Instrs {
		if in.Kind == CondBranch {
			backs = append(backs, in)
		}
	}
	if len(backs) != 2 {
		t.Fatalf("back edge count = %d, want 2", len(backs))
	}
	// Inner loop closes first.
	if backs[0].Target != ips["l2"] {
		t.Errorf("inner back edge targets %#x, want %#x", backs[0].Target, ips["l2"])
	}
	if backs[1].Target != ips["l1"] {
		t.Errorf("outer back edge targets %#x, want %#x", backs[1].Target, ips["l1"])
	}
}

func TestLineTable(t *testing.T) {
	bin, ips := buildDoubleLoop(t)
	cases := map[string]SourceLoc{
		"l1":  {File: "f.c", Line: 10},
		"ld1": {File: "f.c", Line: 11},
		"l2":  {File: "f.c", Line: 12},
		"ld2": {File: "f.c", Line: 13},
		"st":  {File: "f.c", Line: 14},
	}
	for name, want := range cases {
		if got := bin.LineFor(ips[name]); got != want {
			t.Errorf("LineFor(%s) = %v, want %v", name, got, want)
		}
	}
	if got := bin.LineFor(0xdead); !got.IsZero() {
		t.Errorf("LineFor(unknown) = %v, want zero", got)
	}
}

func TestInstrAt(t *testing.T) {
	bin, ips := buildDoubleLoop(t)
	in, ok := bin.InstrAt(ips["ld2"])
	if !ok || in.Kind != Load {
		t.Errorf("InstrAt(ld2) = %v, %v", in, ok)
	}
	if _, ok := bin.InstrAt(ips["ld2"] + 1); ok {
		t.Error("InstrAt(misaligned) should miss")
	}
}

func TestFuncFor(t *testing.T) {
	bin, ips := buildDoubleLoop(t)
	f, ok := bin.FuncFor(ips["st"])
	if !ok || f.Name != "main" {
		t.Errorf("FuncFor(st) = %v, %v", f, ok)
	}
	if _, ok := bin.FuncFor(BaseText - 4); ok {
		t.Error("FuncFor(before text) should miss")
	}
}

func TestMultipleFuncs(t *testing.T) {
	b := NewBuilder("two")
	b.Func("a")
	b.Load("a.c", 1)
	b.Func("b")
	b.Store("b.c", 2)
	bin := b.Finish()
	if err := bin.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(bin.Funcs) != 2 {
		t.Fatalf("func count = %d, want 2", len(bin.Funcs))
	}
	if bin.Funcs[0].End != bin.Funcs[1].Start {
		t.Errorf("functions not adjacent: %+v", bin.Funcs)
	}
}

func TestEndLoopWithoutLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EndLoop without Loop should panic")
		}
	}()
	NewBuilder("x").EndLoop()
}

func TestFinishWithOpenLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Finish with open loop should panic")
		}
	}()
	b := NewBuilder("x")
	b.Loop("f.c", 1)
	b.Finish()
}

func TestValidateCatchesBadBranch(t *testing.T) {
	bin := &Binary{
		Name: "bad",
		Instrs: []Instruction{
			{Addr: BaseText, Kind: Branch, Target: 0x999999},
		},
		lines: map[uint64]SourceLoc{},
	}
	if err := bin.Validate(); err == nil {
		t.Error("Validate should reject out-of-range branch target")
	}
}

func TestValidateCatchesGap(t *testing.T) {
	bin := &Binary{
		Name: "gap",
		Instrs: []Instruction{
			{Addr: BaseText, Kind: Op},
			{Addr: BaseText + 12, Kind: Op},
		},
	}
	if err := bin.Validate(); err == nil {
		t.Error("Validate should reject non-contiguous instructions")
	}
}

func TestStringers(t *testing.T) {
	if got := Load.String(); got != "load" {
		t.Errorf("Load.String() = %q", got)
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
	in := Instruction{Addr: 0x10, Kind: Branch, Target: 0x20}
	if got := in.String(); !strings.Contains(got, "jmp") || !strings.Contains(got, "0x20") {
		t.Errorf("branch string = %q", got)
	}
	loc := SourceLoc{File: "a.c", Line: 3}
	if loc.String() != "a.c:3" {
		t.Errorf("loc string = %q", loc.String())
	}
	if (SourceLoc{}).String() != "??:0" {
		t.Errorf("zero loc string = %q", SourceLoc{}.String())
	}
}
