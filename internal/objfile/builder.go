package objfile

import "fmt"

// BaseText is the address of the first instruction in every built binary,
// mimicking a conventional text-segment base.
const BaseText = 0x40_0000

// Builder assembles a Binary the way a compiler lowers structured code:
// instructions are appended at consecutive addresses, and Loop/EndLoop pairs
// emit the conditional back edges that the CFG analysis later re-discovers
// as natural loops.
//
// Builder methods panic on structural misuse (unclosed loops, EndLoop
// without Loop); workload construction is programmer-controlled, so misuse
// is a bug, not an input error.
type Builder struct {
	bin   Binary
	next  uint64
	loops []loopFrame
	fn    int // index into bin.Funcs of open function, -1 if none
}

type loopFrame struct {
	headerAddr uint64
	loc        SourceLoc
}

// NewBuilder returns a Builder for a binary with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		// Start with room for a typical kernel (a few dozen instructions)
		// so emit rarely regrows mid-build.
		bin:  Binary{Name: name, Instrs: make([]Instruction, 0, 64), lines: make(map[uint64]SourceLoc, 64)},
		next: BaseText,
		fn:   -1,
	}
}

func (b *Builder) emit(kind Kind, target uint64, loc SourceLoc) uint64 {
	addr := b.next
	b.bin.Instrs = append(b.bin.Instrs, Instruction{Addr: addr, Kind: kind, Target: target})
	if !loc.IsZero() {
		b.bin.lines[addr] = loc
	}
	b.next += InstrSize
	return addr
}

// Func opens a new function. Any previously open function is closed first.
func (b *Builder) Func(name string) {
	b.endFunc()
	b.bin.Funcs = append(b.bin.Funcs, Func{Name: name, Start: b.next})
	b.fn = len(b.bin.Funcs) - 1
}

// endFunc terminates the open function with a Ret (if it does not already
// end in one) and records its extent.
func (b *Builder) endFunc() {
	if b.fn < 0 {
		return
	}
	f := &b.bin.Funcs[b.fn]
	if n := len(b.bin.Instrs); n == 0 || b.bin.Instrs[n-1].Kind != Ret || b.bin.Instrs[n-1].Addr < f.Start {
		b.emit(Ret, 0, SourceLoc{})
	}
	f.End = b.next
	b.fn = -1
}

// Loop opens a loop whose header is attributed to file:line. The returned
// address is the loop-header instruction (the paper names loops by such
// source coordinates, e.g. "needle.cpp:189").
func (b *Builder) Loop(file string, line int) uint64 {
	loc := SourceLoc{File: file, Line: line}
	// The header is a plain op (e.g. the induction-variable compare).
	h := b.emit(Op, 0, loc)
	b.loops = append(b.loops, loopFrame{headerAddr: h, loc: loc})
	return h
}

// EndLoop closes the innermost open loop by emitting the conditional branch
// back to its header.
func (b *Builder) EndLoop() {
	if len(b.loops) == 0 {
		panic("objfile: EndLoop without matching Loop")
	}
	fr := b.loops[len(b.loops)-1]
	b.loops = b.loops[:len(b.loops)-1]
	b.emit(CondBranch, fr.headerAddr, fr.loc)
}

// Load emits a load instruction attributed to file:line and returns its
// address, which the workload uses as the Ref.IP of the corresponding
// memory accesses.
func (b *Builder) Load(file string, line int) uint64 {
	return b.emit(Load, 0, SourceLoc{File: file, Line: line})
}

// Store emits a store instruction attributed to file:line.
func (b *Builder) Store(file string, line int) uint64 {
	return b.emit(Store, 0, SourceLoc{File: file, Line: line})
}

// Op emits a non-memory instruction attributed to file:line.
func (b *Builder) Op(file string, line int) uint64 {
	return b.emit(Op, 0, SourceLoc{File: file, Line: line})
}

// Call emits a call instruction (modelled as falling through).
func (b *Builder) Call(file string, line int) uint64 {
	return b.emit(Call, 0, SourceLoc{File: file, Line: line})
}

// Finish closes any open function (terminating it with a Ret) and returns
// the completed binary. It panics if a loop is still open.
func (b *Builder) Finish() *Binary {
	if len(b.loops) != 0 {
		panic(fmt.Sprintf("objfile: %d unclosed loops at Finish", len(b.loops)))
	}
	if b.fn >= 0 {
		b.endFunc()
	} else {
		b.emit(Ret, 0, SourceLoc{})
	}
	bin := b.bin
	return &bin
}
