// Package objfile defines the synthetic "machine code" the workloads compile
// their kernels into.
//
// CCProf's offline analyzer recovers loops from the profiled binary: it
// builds a control-flow graph from the machine code and applies interval
// analysis to identify loop nests, then attributes each PMU sample's
// instruction pointer to its innermost loop. To exercise that code path
// without a real disassembler, workloads in this repository describe their
// kernels as a stream of synthetic instructions — loads, stores, plain ops,
// and (conditional) branches — with a DWARF-like line table mapping each
// instruction address to a source location such as "needle.cpp:189".
//
// The Builder mirrors how a compiler lowers a loop nest: opening a loop
// emits a header block, closing it emits the conditional back edge. Nothing
// in the analyzer looks at Builder metadata; loops are re-discovered from
// the instruction stream by package cfg, exactly as the paper recovers them
// from optimized executables.
package objfile

import (
	"fmt"
	"sort"
	"strconv"
)

// Kind classifies a synthetic instruction.
type Kind uint8

// Instruction kinds. Fallthrough applies to every kind except Branch and
// Ret, which never fall through; CondBranch both falls through and jumps.
const (
	Op         Kind = iota // non-memory ALU work
	Load                   // memory read; may appear as a sample IP
	Store                  // memory write; may appear as a sample IP
	Branch                 // unconditional jump to Target
	CondBranch             // conditional jump to Target, else fallthrough
	Call                   // call; treated as falling through (returns)
	Ret                    // function return; no successors
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Op:
		return "op"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "jmp"
	case CondBranch:
		return "jcc"
	case Call:
		return "call"
	case Ret:
		return "ret"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// InstrSize is the fixed encoded size of every synthetic instruction.
const InstrSize = 4

// Instruction is one synthetic machine instruction.
type Instruction struct {
	Addr   uint64
	Kind   Kind
	Target uint64 // jump target for Branch/CondBranch
}

func (in Instruction) String() string {
	switch in.Kind {
	case Branch, CondBranch:
		return fmt.Sprintf("%#x: %s -> %#x", in.Addr, in.Kind, in.Target)
	default:
		return fmt.Sprintf("%#x: %s", in.Addr, in.Kind)
	}
}

// SourceLoc is a file:line pair from the line table.
type SourceLoc struct {
	File string
	Line int
}

// IsZero reports whether the location is unset.
func (s SourceLoc) IsZero() bool { return s.File == "" && s.Line == 0 }

func (s SourceLoc) String() string {
	if s.IsZero() {
		return "??:0"
	}
	return s.File + ":" + strconv.Itoa(s.Line)
}

// Func is a named contiguous range of instructions.
type Func struct {
	Name  string
	Start uint64 // address of first instruction
	End   uint64 // one past the last instruction
}

// Binary is a complete synthetic executable: a sorted instruction stream,
// its functions, and the line table.
type Binary struct {
	Name   string
	Instrs []Instruction // sorted by Addr, contiguous at InstrSize spacing
	Funcs  []Func

	lines map[uint64]SourceLoc
}

// InstrAt returns the instruction at addr.
func (b *Binary) InstrAt(addr uint64) (Instruction, bool) {
	i := sort.Search(len(b.Instrs), func(i int) bool { return b.Instrs[i].Addr >= addr })
	if i < len(b.Instrs) && b.Instrs[i].Addr == addr {
		return b.Instrs[i], true
	}
	return Instruction{}, false
}

// LineFor returns the source location of the instruction at addr, or a zero
// SourceLoc if addr is unknown.
func (b *Binary) LineFor(addr uint64) SourceLoc { return b.lines[addr] }

// FuncFor returns the function containing addr, if any.
func (b *Binary) FuncFor(addr uint64) (Func, bool) {
	for _, f := range b.Funcs {
		if addr >= f.Start && addr < f.End {
			return f, true
		}
	}
	return Func{}, false
}

// Validate checks structural invariants: instructions sorted and contiguous,
// branch targets in range, functions non-overlapping. Workload constructors
// call this in tests.
func (b *Binary) Validate() error {
	for i, in := range b.Instrs {
		if i > 0 && in.Addr != b.Instrs[i-1].Addr+InstrSize {
			return fmt.Errorf("objfile %s: instruction %d at %#x not contiguous after %#x",
				b.Name, i, in.Addr, b.Instrs[i-1].Addr)
		}
		if in.Kind == Branch || in.Kind == CondBranch {
			if _, ok := b.InstrAt(in.Target); !ok {
				return fmt.Errorf("objfile %s: branch at %#x targets unknown address %#x",
					b.Name, in.Addr, in.Target)
			}
		}
	}
	for i, f := range b.Funcs {
		if f.End <= f.Start {
			return fmt.Errorf("objfile %s: function %s has empty range", b.Name, f.Name)
		}
		if i > 0 && f.Start < b.Funcs[i-1].End {
			return fmt.Errorf("objfile %s: function %s overlaps %s", b.Name, f.Name, b.Funcs[i-1].Name)
		}
	}
	return nil
}
