// Package classify implements the simple logistic regression CCProf uses to
// turn a loop's short-RCD contribution factor into a binary conflict-miss
// verdict (§3.4 of the paper).
//
// "Simple" is the statistical term of art: one independent variable (the
// contribution factor under the RCD threshold) and one binary outcome
// (conflict misses / no conflict misses). The paper trains the model on 16
// representative loops — eight with conflicts, eight without — and
// validates with 8-fold cross-validation scored by F1 (Figure 8).
package classify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Logistic is a trained one-feature logistic regression model:
// P(conflict | x) = sigmoid(Bias + Weight*x).
type Logistic struct {
	Bias   float64
	Weight float64
}

// Prob returns the model's conflict probability for feature value x.
func (m Logistic) Prob(x float64) float64 {
	return sigmoid(m.Bias + m.Weight*x)
}

// Predict returns the binary verdict: conflict when Prob(x) >= 0.5.
func (m Logistic) Predict(x float64) bool { return m.Prob(x) >= 0.5 }

// Threshold returns the feature value at the decision boundary
// (Prob == 0.5), or NaN for a degenerate zero-weight model.
func (m Logistic) Threshold() float64 {
	if m.Weight == 0 {
		return math.NaN()
	}
	return -m.Bias / m.Weight
}

func (m Logistic) String() string {
	return fmt.Sprintf("logistic(bias=%.3f weight=%.3f boundary=%.3f)", m.Bias, m.Weight, m.Threshold())
}

func sigmoid(z float64) float64 {
	// Numerically stable in both tails.
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// TrainOptions tunes gradient-descent training. The zero value selects the
// defaults below.
type TrainOptions struct {
	LearningRate float64 // default 1.0
	Iterations   int     // default 5000
	L2           float64 // ridge penalty; default 1e-3 keeps separable data finite
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.LearningRate == 0 {
		o.LearningRate = 1.0
	}
	if o.Iterations == 0 {
		o.Iterations = 5000
	}
	if o.L2 == 0 {
		o.L2 = 1e-3
	}
	return o
}

// Train fits a logistic model to (features[i], labels[i]) pairs by batch
// gradient descent on the regularized log-loss. It returns an error when
// the inputs are empty or mismatched.
func Train(features []float64, labels []bool, opts TrainOptions) (Logistic, error) {
	if len(features) == 0 {
		return Logistic{}, fmt.Errorf("classify: no training data")
	}
	if len(features) != len(labels) {
		return Logistic{}, fmt.Errorf("classify: %d features but %d labels", len(features), len(labels))
	}
	o := opts.withDefaults()
	var m Logistic
	n := float64(len(features))
	for it := 0; it < o.Iterations; it++ {
		var g0, g1 float64
		for i, x := range features {
			y := 0.0
			if labels[i] {
				y = 1.0
			}
			err := m.Prob(x) - y
			g0 += err
			g1 += err * x
		}
		g0 = g0/n + o.L2*m.Bias
		g1 = g1/n + o.L2*m.Weight
		m.Bias -= o.LearningRate * g0
		m.Weight -= o.LearningRate * g1
	}
	return m, nil
}

// Evaluate scores the model against labelled data.
func (m Logistic) Evaluate(features []float64, labels []bool) stats.Confusion {
	var c stats.Confusion
	for i, x := range features {
		c.Observe(m.Predict(x), labels[i])
	}
	return c
}

// CrossValidate performs k-fold cross-validation: for each fold it trains
// on the remaining folds and scores predictions on the held-out fold,
// pooling all held-out predictions into one confusion matrix (whose F1 is
// what Figure 8 plots). rng shuffles the fold assignment; pass a seeded
// source for reproducibility.
func CrossValidate(features []float64, labels []bool, k int, opts TrainOptions, rng *rand.Rand) (stats.Confusion, error) {
	var pooled stats.Confusion
	if len(features) != len(labels) {
		return pooled, fmt.Errorf("classify: %d features but %d labels", len(features), len(labels))
	}
	folds, err := stats.KFold(len(features), k, rng)
	if err != nil {
		return pooled, err
	}
	for fi, hold := range folds {
		inHold := make(map[int]bool, len(hold))
		for _, i := range hold {
			inHold[i] = true
		}
		var trainX []float64
		var trainY []bool
		for i := range features {
			if !inHold[i] {
				trainX = append(trainX, features[i])
				trainY = append(trainY, labels[i])
			}
		}
		m, err := Train(trainX, trainY, opts)
		if err != nil {
			return pooled, fmt.Errorf("classify: fold %d: %w", fi, err)
		}
		for _, i := range hold {
			pooled.Observe(m.Predict(features[i]), labels[i])
		}
	}
	return pooled, nil
}
