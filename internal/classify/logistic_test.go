package classify

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// paperLikeData mimics the 16 training loops: 8 conflict-heavy (high cf)
// and 8 clean (low cf).
func paperLikeData() ([]float64, []bool) {
	features := []float64{
		0.88, 0.71, 0.92, 0.80, 0.65, 0.75, 0.95, 0.60, // conflict loops
		0.10, 0.15, 0.20, 0.05, 0.12, 0.18, 0.08, 0.22, // clean loops
	}
	labels := make([]bool, 16)
	for i := 0; i < 8; i++ {
		labels[i] = true
	}
	return features, labels
}

func TestSigmoidStability(t *testing.T) {
	if got := sigmoid(0); got != 0.5 {
		t.Errorf("sigmoid(0) = %g, want 0.5", got)
	}
	if got := sigmoid(1000); got != 1 {
		t.Errorf("sigmoid(1000) = %g, want 1", got)
	}
	if got := sigmoid(-1000); got != 0 {
		t.Errorf("sigmoid(-1000) = %g, want 0", got)
	}
	if math.IsNaN(sigmoid(-745)) || math.IsNaN(sigmoid(745)) {
		t.Error("sigmoid produced NaN in the tails")
	}
}

func TestTrainSeparatesPaperData(t *testing.T) {
	x, y := paperLikeData()
	m, err := Train(x, y, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Evaluate(x, y)
	if c.F1() != 1 {
		t.Errorf("training-set F1 = %g, want 1 (%v)", c.F1(), c)
	}
	// The boundary must sit between the two clusters.
	b := m.Threshold()
	if b <= 0.22 || b >= 0.60 {
		t.Errorf("decision boundary = %g, want in (0.22, 0.60)", b)
	}
	if m.Weight <= 0 {
		t.Errorf("weight = %g, want positive (higher cf => more conflict)", m.Weight)
	}
}

func TestProbMonotoneInFeature(t *testing.T) {
	x, y := paperLikeData()
	m, err := Train(x, y, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return m.Prob(a) <= m.Prob(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, TrainOptions{}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := Train([]float64{1}, []bool{true, false}, TrainOptions{}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestThresholdDegenerate(t *testing.T) {
	if !math.IsNaN((Logistic{}).Threshold()) {
		t.Error("zero-weight model threshold should be NaN")
	}
}

func TestStringContainsBoundary(t *testing.T) {
	m := Logistic{Bias: -2, Weight: 4}
	if s := m.String(); !strings.Contains(s, "0.5") {
		t.Errorf("String() = %q, expected boundary 0.5", s)
	}
}

func TestCrossValidatePerfectlySeparable(t *testing.T) {
	x, y := paperLikeData()
	c, err := CrossValidate(x, y, 8, TrainOptions{}, stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.F1() != 1 {
		t.Errorf("8-fold CV F1 = %g, want 1 (%v)", c.F1(), c)
	}
}

func TestCrossValidateNoisyData(t *testing.T) {
	// Overlapping clusters: CV F1 should be high but below perfect.
	x := []float64{0.9, 0.8, 0.7, 0.3, 0.6, 0.75, 0.85, 0.5, // positives, one at 0.3
		0.1, 0.2, 0.3, 0.7, 0.15, 0.25, 0.05, 0.4} // negatives, one at 0.7
	y := make([]bool, 16)
	for i := 0; i < 8; i++ {
		y[i] = true
	}
	c, err := CrossValidate(x, y, 4, TrainOptions{}, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.F1() < 0.6 || c.F1() >= 1 {
		t.Errorf("noisy CV F1 = %g, want in [0.6, 1)", c.F1())
	}
}

func TestCrossValidateErrors(t *testing.T) {
	if _, err := CrossValidate([]float64{1}, []bool{true, false}, 2, TrainOptions{}, nil); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := CrossValidate([]float64{1, 2}, []bool{true, false}, 5, TrainOptions{}, nil); err == nil {
		t.Error("k > n should error")
	}
}

func TestCrossValidateCoversAllSamples(t *testing.T) {
	x, y := paperLikeData()
	c, err := CrossValidate(x, y, 8, TrainOptions{}, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if total := c.TP + c.FP + c.TN + c.FN; total != len(x) {
		t.Errorf("CV scored %d samples, want %d", total, len(x))
	}
}

func TestTrainDeterministic(t *testing.T) {
	x, y := paperLikeData()
	a, _ := Train(x, y, TrainOptions{})
	b, _ := Train(x, y, TrainOptions{})
	if a != b {
		t.Errorf("training not deterministic: %v vs %v", a, b)
	}
}

// Property: flipping all labels flips the sign of the learned weight.
func TestLabelFlipFlipsWeight(t *testing.T) {
	x, y := paperLikeData()
	flipped := make([]bool, len(y))
	for i, v := range y {
		flipped[i] = !v
	}
	m1, _ := Train(x, y, TrainOptions{})
	m2, _ := Train(x, flipped, TrainOptions{})
	if m1.Weight*m2.Weight >= 0 {
		t.Errorf("weights should have opposite signs: %g vs %g", m1.Weight, m2.Weight)
	}
}

func BenchmarkTrain(b *testing.B) {
	x, y := paperLikeData()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, TrainOptions{Iterations: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}
