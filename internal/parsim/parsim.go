// Package parsim is the deterministic parallel simulation engine: it fans
// independent (workload, geometry, pad) simulation tasks across a worker
// pool and reassembles their results in canonical task order, so a sweep
// run at -j 8 produces byte-identical reports to the same sweep at -j 1.
//
// Determinism rests on two rules the package enforces or supports:
//
//  1. Tasks share nothing. Each task builds its own workload, cache and
//     sampler instances; parsim only schedules and collects. Results land
//     at their task's index regardless of completion order, and errors are
//     reported for the lowest failing index, which is the error a serial
//     loop would have hit first.
//
//  2. Randomness is derived, not shared. A task that needs an RNG seeds it
//     with DeriveSeed(root, key) where key is a stable task name — never
//     with a shared RNG, a worker id, or anything scheduling-dependent.
package parsim

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// defaultWorkers is the pool size used when Options.Workers is 0.
// 0 means "use GOMAXPROCS"; it is set process-wide by the -j flag of
// cmd/ccprof and cmd/experiments.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default pool size used when
// Options.Workers is 0. n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the resolved default pool size.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Options configures one Run.
type Options struct {
	// Workers is the pool size; 0 selects DefaultWorkers().
	Workers int
}

// A TaskError wraps the error of one failed task with its index, so a
// sweep's failure report names the same task no matter how many workers
// raced past it.
type TaskError struct {
	Index int
	Err   error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("parsim: task %d: %v", e.Index, e.Err)
}

// Unwrap returns the underlying task error.
func (e *TaskError) Unwrap() error { return e.Err }

// Run executes fn(0) … fn(n-1) on a worker pool and returns the results in
// index order. Every task runs to completion even when another task fails
// (tasks are independent simulations; partial sweeps would make the
// surviving results depend on scheduling). On failure Run still returns the
// full result slice — failed indexes hold the zero value — together with a
// TaskError for the lowest failing index.
//
// fn must not share mutable state across indexes; it may be called from
// multiple goroutines concurrently, but never twice for the same index.
func Run[T any](n int, opts Options, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}

	// Sweep-level observability: deterministic run/task counters plus the
	// worker-count gauge (configuration), and wall-clock spans for the
	// sweep and each worker's busy time ("parsim.worker_busy" count vs
	// "parsim.run" total is the pool utilization). Spans live only in the
	// timing section of snapshots, never in experiment output.
	reg := obs.Default
	reg.Counter("parsim.runs").Inc()
	reg.Counter("parsim.tasks").Add(uint64(n))
	reg.Gauge("parsim.workers").Set(int64(workers))
	defer reg.StartPhase("parsim.run")()

	results := make([]T, n)
	errs := make([]error, n)

	if workers == 1 {
		// Serial fallback: same semantics, no goroutines. This is the
		// path -j 1 and GOMAXPROCS=1 CI exercise against the pool.
		done := reg.StartPhase("parsim.worker_busy")
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
		done()
		return results, countErrors(reg, errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			start := time.Now()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					reg.ObservePhase("parsim.worker_busy", time.Since(start))
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return results, countErrors(reg, errs)
}

// countErrors tallies failed tasks into reg and returns a TaskError for
// the lowest failing index, or nil.
func countErrors(reg *obs.Registry, errs []error) error {
	failed := uint64(0)
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed > 0 {
		reg.Counter("parsim.task_errors").Add(failed)
	}
	return firstError(errs)
}

// firstError returns a TaskError for the lowest failing index, or nil.
func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return &TaskError{Index: i, Err: err}
		}
	}
	return nil
}

// DeriveSeed derives a task RNG seed from a root seed and a stable task
// key: seed = root ⊕ FNV-1a(key). Distinct keys decorrelate the tasks'
// sampling phases; the same (root, key) pair always yields the same seed,
// so results do not depend on worker count or scheduling order.
func DeriveSeed(root int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return root ^ int64(h.Sum64())
}
