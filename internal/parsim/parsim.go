// Package parsim is the deterministic parallel simulation engine: it fans
// independent (workload, geometry, pad) simulation tasks across a worker
// pool and reassembles their results in canonical task order, so a sweep
// run at -j 8 produces byte-identical reports to the same sweep at -j 1.
//
// Determinism rests on two rules the package enforces or supports:
//
//  1. Tasks share nothing. Each task builds its own workload, cache and
//     sampler instances; parsim only schedules and collects. Results land
//     at their task's index regardless of completion order, and errors are
//     reported for the lowest failing index, which is the error a serial
//     loop would have hit first.
//
//  2. Randomness is derived, not shared. A task that needs an RNG seeds it
//     with DeriveSeed(root, key) where key is a stable task name — never
//     with a shared RNG, a worker id, or anything scheduling-dependent.
//
// The engine also owns the pipeline's failure story (see run.go): worker
// panics are recovered into typed ShardErrors, failed tasks retry with
// capped exponential backoff, a per-attempt deadline watchdog cancels hung
// work via context, completed tasks can checkpoint to disk for -resume, and
// sweeps can tolerate lost shards instead of failing (degraded mode). None
// of that machinery feeds wall-clock into results, so the determinism
// guarantee survives every recovery path.
package parsim

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync/atomic"
	"time"
)

// defaultWorkers is the pool size used when Options.Workers is 0.
// 0 means "use GOMAXPROCS"; it is set process-wide by the -j flag of
// cmd/ccprof and cmd/experiments.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default pool size used when
// Options.Workers is 0. n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the resolved default pool size.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Options configures one Run.
type Options struct {
	// Workers is the pool size; 0 selects DefaultWorkers().
	Workers int

	// Retries re-runs a failed task (error, recovered panic, or timeout)
	// up to this many additional attempts before declaring the shard
	// lost. 0 fails on the first error, as a serial loop would.
	Retries int

	// Backoff is the delay before a task's first retry, doubling on each
	// subsequent retry and capped at BackoffCap. The schedule is
	// deterministic (no jitter) and pure wall-clock pacing: it never
	// reaches results, reports, or obs counters. 0 retries immediately.
	Backoff time.Duration

	// BackoffCap bounds the exponential backoff; 0 selects 500ms.
	BackoffCap time.Duration

	// Deadline is the per-attempt watchdog: each attempt runs under a
	// context cancelled after this duration, and the worker stops waiting
	// for it at the deadline (the attempt counts as a timeout and is
	// retried like any failure). A hung attempt's goroutine is abandoned;
	// cooperative tasks observe their context and exit. 0 disables the
	// watchdog and runs attempts on the worker itself.
	Deadline time.Duration

	// Tolerate switches a sweep to graceful degradation: shards that
	// exhaust their attempts keep the zero value at their index, the run
	// returns a nil error, and the lost shards are listed (with typed
	// causes) in Report.Failed. Without Tolerate every task still runs,
	// but the sweep fails with the lowest failing index, as before.
	Tolerate bool

	// Checkpoint, when non-nil, persists each completed task's result to
	// disk so a sweep killed mid-run can be re-run with Resume and skip
	// the shards that already finished. See Checkpoint for the contract.
	Checkpoint *Checkpoint
}

// backoffCap resolves the BackoffCap default.
func (o Options) backoffCap() time.Duration {
	if o.BackoffCap > 0 {
		return o.BackoffCap
	}
	return 500 * time.Millisecond
}

// A TaskError wraps the error of one failed task with its index, so a
// sweep's failure report names the same task no matter how many workers
// raced past it.
type TaskError struct {
	Index int
	Err   error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("parsim: task %d: %v", e.Index, e.Err)
}

// Unwrap returns the underlying task error.
func (e *TaskError) Unwrap() error { return e.Err }

// Run executes fn(0) … fn(n-1) on a worker pool and returns the results in
// index order. Every task runs to completion even when another task fails
// (tasks are independent simulations; partial sweeps would make the
// surviving results depend on scheduling). On failure Run still returns the
// full result slice — failed indexes hold the zero value — together with a
// TaskError for the lowest failing index.
//
// fn must not share mutable state across indexes; it may be called from
// multiple goroutines concurrently, but never twice for the same index.
// Tasks that want retry/deadline awareness or cancellation take RunCtx.
func Run[T any](n int, opts Options, fn func(i int) (T, error)) ([]T, error) {
	results, _, err := RunCtx(n, opts, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
	return results, err
}

// DeriveSeed derives a task RNG seed from a root seed and a stable task
// key: seed = root ⊕ FNV-1a(key). Distinct keys decorrelate the tasks'
// sampling phases; the same (root, key) pair always yields the same seed,
// so results do not depend on worker count or scheduling order.
func DeriveSeed(root int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return root ^ int64(h.Sum64())
}
