// Per-shard simulation state pooling. Sweep tasks (the advisor's pad
// search, the Figure 7 suite) each build the same heavy shard state — a
// cache simulator, a PMU sampler, RCD trackers — use it for one task, and
// drop it. Pool recycles that state across tasks.
//
// Determinism contract: pooling must be invisible to results. Anything a
// task takes from a Pool must be rewound to a state indistinguishable from
// freshly constructed (cache.Reset, pmu.Reconfigure, rcd.Reset) before use,
// and nothing about a pooled object's identity or history may influence
// what the task computes. Which worker reuses which object is scheduling-
// dependent; the rewind is what keeps output byte-identical at any -j.

package parsim

import "sync"

// Pool is a typed free list of per-shard state, safe for concurrent use by
// the workers of a Run. The zero value is ready if T's zero value is (or if
// callers handle it); set New to control how an empty pool materializes
// values.
type Pool[T any] struct {
	// New, when non-nil, constructs a value for Get when the pool is empty.
	New func() T

	p sync.Pool
	o sync.Once
}

func (p *Pool[T]) init() {
	p.o.Do(func() {
		if p.New != nil {
			ctor := p.New
			p.p.New = func() any { return ctor() }
		}
	})
}

// Get returns a pooled value, a value from New, or T's zero value, in that
// order of preference. The caller owns the value until Put.
func (p *Pool[T]) Get() T {
	p.init()
	if v := p.p.Get(); v != nil {
		return v.(T)
	}
	var zero T
	return zero
}

// Put returns a value to the pool for reuse. The caller must not touch it
// afterwards; the next Get may hand it to another worker.
func (p *Pool[T]) Put(v T) {
	p.init()
	p.p.Put(v)
}
