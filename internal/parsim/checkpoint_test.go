package parsim

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCheckpointLines composes a checkpoint file from raw lines.
func writeCheckpointLines(t *testing.T, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// readEntries parses every well-formed entry of a checkpoint file.
func readEntries(t *testing.T, path string) map[int]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := map[int]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e ckEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		var v int
		if err := json.Unmarshal(e.V, &v); err != nil {
			continue
		}
		got[e.I] = v
	}
	return got
}

// TestCheckpointCompactionCrashWindow probes the widest kill window of the
// compact rewrite: after the replacement temp file is written but before it
// is renamed over the checkpoint. A kill there (simulated by a panic from
// the test hook) must leave every previously durable shard restorable from
// the original file, and the next resume must both recover them all and
// sweep up the orphaned temp.
func TestCheckpointCompactionCrashWindow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	// Three durable shards plus a torn trailing line — the on-disk state of
	// a sweep killed mid-append.
	writeCheckpointLines(t, path,
		`{"i":0,"v":100}`+"\n",
		`{"i":2,"v":102}`+"\n",
		`{"i":3,"v":103}`+"\n",
		`{"i":1,"v":1`) // torn

	// Kill during compaction.
	ckCompactTestHook = func() { panic("simulated kill during compaction") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hook did not fire")
			}
		}()
		restored := make([]bool, 4)
		results := make([]int, 4)
		_, _ = openCheckpoint(&Checkpoint{Path: path, Resume: true}, restored, results)
	}()
	ckCompactTestHook = nil

	// The original checkpoint must be byte-intact: all three durable shards
	// still parse.
	if got := readEntries(t, path); len(got) != 3 || got[0] != 100 || got[2] != 102 || got[3] != 103 {
		t.Fatalf("durable shards lost in the crash window: %v", got)
	}
	temps, _ := filepath.Glob(path + ckTempPattern)
	if len(temps) == 0 {
		t.Fatal("simulated kill left no orphan temp (hook fired too early?)")
	}

	// Restart: resume must restore all three shards, run only shard 1, and
	// clean up the orphan.
	ran := map[int]bool{}
	res, rep, err := RunCtx(4, Options{Workers: 1, Checkpoint: &Checkpoint{Path: path, Resume: true}},
		func(_ context.Context, i int) (int, error) {
			ran[i] = true
			return 100 + i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 3 {
		t.Fatalf("Restored = %d, want 3", rep.Restored)
	}
	if len(ran) != 1 || !ran[1] {
		t.Fatalf("resume re-ran shards %v, want only shard 1", ran)
	}
	for i, v := range res {
		if v != 100+i {
			t.Fatalf("res[%d] = %d, want %d", i, v, 100+i)
		}
	}
	if temps, _ := filepath.Glob(path + ckTempPattern); len(temps) != 0 {
		t.Fatalf("stale compaction temps survived resume: %v", temps)
	}
	// And the compacted file now carries all four shards.
	if got := readEntries(t, path); len(got) != 4 {
		t.Fatalf("post-resume checkpoint = %v, want 4 entries", got)
	}
}

// TestCheckpointCompactionAtomic: a completed compaction leaves exactly the
// restored entries, no temp files, and appends keep working afterwards.
func TestCheckpointCompactionAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	writeCheckpointLines(t, path,
		`{"i":1,"v":11}`+"\n",
		`not json at all`+"\n",
		`{"i":0,"v":10}`+"\n")

	restored := make([]bool, 3)
	results := make([]int, 3)
	w, err := openCheckpoint(&Checkpoint{Path: path, Resume: true}, restored, results)
	if err != nil {
		t.Fatal(err)
	}
	w.store(2, 12)
	if err := w.err(); err != nil {
		t.Fatal(err)
	}
	w.close()

	if temps, _ := filepath.Glob(path + ckTempPattern); len(temps) != 0 {
		t.Fatalf("temp files left after compaction: %v", temps)
	}
	if got := readEntries(t, path); len(got) != 3 || got[0] != 10 || got[1] != 11 || got[2] != 12 {
		t.Fatalf("compacted+appended checkpoint = %v", got)
	}
}
