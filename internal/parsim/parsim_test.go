package parsim

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRunOrdersResults checks that results land at their task index no
// matter how workers interleave: many more tasks than workers, each task
// yielding goroutines mid-flight to shuffle completion order.
func TestRunOrdersResults(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, 3, 8, n + 7} {
		res, err := Run(n, Options{Workers: workers}, func(i int) (int, error) {
			runtime.Gosched()
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(res), n)
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunErrorPropagation: a failing task must not stop the sweep, must not
// corrupt other tasks' results, and the reported error must be the lowest
// failing index regardless of worker count or completion order.
func TestRunErrorPropagation(t *testing.T) {
	const n = 100
	boom := errors.New("boom")
	fails := map[int]bool{12: true, 37: true, 99: true}
	for _, workers := range []int{1, 4, 16} {
		var ran atomic.Int64
		res, err := Run(n, Options{Workers: workers}, func(i int) (int, error) {
			ran.Add(1)
			runtime.Gosched()
			if fails[i] {
				return 0, fmt.Errorf("task %d: %w", i, boom)
			}
			return i + 1, nil
		})
		if got := ran.Load(); got != n {
			t.Errorf("workers=%d: only %d/%d tasks ran", workers, got, n)
		}
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: error %v is not a TaskError", workers, err)
		}
		if te.Index != 12 {
			t.Errorf("workers=%d: reported index %d, want lowest failing index 12", workers, te.Index)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error chain lost the cause: %v", workers, err)
		}
		for i, v := range res {
			want := i + 1
			if fails[i] {
				want = 0 // failed tasks hold the zero value
			}
			if v != want {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

// TestRunWorkerIndependence pins the core determinism property: the result
// slice is identical for every worker count, including the serial path.
func TestRunWorkerIndependence(t *testing.T) {
	const n = 64
	task := func(i int) (int64, error) {
		return DeriveSeed(42, fmt.Sprintf("task/%d", i)), nil
	}
	want, err := Run(n, Options{Workers: 1}, task)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 8} {
		got, err := Run(n, Options{Workers: workers}, task)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run(0, Options{}, func(int) (int, error) { return 0, nil })
	if err != nil || res != nil {
		t.Fatalf("Run(0) = %v, %v; want nil, nil", res, err)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(7, "nw")
	b := DeriveSeed(7, "nw")
	if a != b {
		t.Error("DeriveSeed is not stable")
	}
	if DeriveSeed(7, "nw") == DeriveSeed(7, "srad") {
		t.Error("distinct keys should decorrelate seeds")
	}
	if DeriveSeed(7, "nw") == DeriveSeed(8, "nw") {
		t.Error("distinct roots should change the seed")
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers = %d, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers = %d, want GOMAXPROCS", got)
	}
}
