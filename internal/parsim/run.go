package parsim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// attemptKey is the context key carrying the zero-based attempt number of
// the running task execution.
type attemptKey struct{}

// Attempt returns the zero-based attempt number of the task execution ctx
// belongs to: 0 on the first try, k after k retries. It returns 0 for
// contexts that do not descend from a parsim attempt. Deterministic fault
// injectors key on it to fail a shard's first attempt(s) and succeed once
// the engine has retried (see internal/faultinj).
func Attempt(ctx context.Context) int {
	if v, ok := ctx.Value(attemptKey{}).(int); ok {
		return v
	}
	return 0
}

// ErrKind classifies how a shard failed.
type ErrKind uint8

const (
	// KindError is an ordinary error returned by the task function.
	KindError ErrKind = iota
	// KindPanic is a worker panic the engine recovered.
	KindPanic
	// KindTimeout is an attempt the deadline watchdog cancelled.
	KindTimeout
)

func (k ErrKind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindTimeout:
		return "timeout"
	default:
		return "error"
	}
}

// PanicError wraps a panic recovered from a task attempt, preserving the
// panic value and the goroutine stack at recovery time.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("recovered panic: %v", e.Value) }

// Unwrap exposes a wrapped error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ShardError is the typed failure of one shard after the engine exhausted
// its attempts: which index, how many attempts, what kind of failure, and
// the last attempt's underlying error.
type ShardError struct {
	Index    int
	Attempts int // attempts performed (1 = no retries granted or needed)
	Kind     ErrKind
	Err      error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d: %s after %d attempt(s): %v", e.Index, e.Kind, e.Attempts, e.Err)
}

// Unwrap returns the last attempt's error.
func (e *ShardError) Unwrap() error { return e.Err }

// Report is a sweep's degraded-mode annotation: everything the recovery
// machinery did, in counts that are functions of the tasks' deterministic
// behavior alone (never of wall clock or scheduling), so reports that
// include them stay byte-identical at any worker count.
type Report struct {
	// Tasks is the sweep size; Completed the tasks that produced a result
	// (including restored ones); Restored the tasks skipped because the
	// checkpoint already held their result.
	Tasks     int
	Completed int
	Restored  int
	// Retries counts re-run attempts beyond each task's first; Panics the
	// worker panics recovered; Timeouts the attempts the deadline
	// watchdog cancelled.
	Retries  int
	Panics   int
	Timeouts int
	// Failed lists the shards lost after all attempts, in ascending index
	// order. Non-empty only under Options.Tolerate (without it the sweep
	// returns an error for the lowest entry instead).
	Failed []*ShardError
}

// Degraded reports whether the sweep lost shards.
func (r *Report) Degraded() bool { return len(r.Failed) > 0 }

// ShardsLost returns the number of shards that produced no result.
func (r *Report) ShardsLost() int { return len(r.Failed) }

// observeInto merges the recovery tallies into reg. Counts are
// deterministic for deterministic tasks, so the merged counters keep the
// obs layer's worker-count-independence guarantee (timeouts are the
// exception — they depend on real elapsed time — and occur only when a
// Deadline is configured).
func (r *Report) observeInto(reg *obs.Registry) {
	add := func(name string, n int) {
		if n > 0 {
			reg.Counter(name).Add(uint64(n))
		}
	}
	add("parsim.retries", r.Retries)
	add("parsim.panics_recovered", r.Panics)
	add("parsim.timeouts", r.Timeouts)
	add("parsim.shards_lost", len(r.Failed))
	add("parsim.checkpoint_restored", r.Restored)
	add("parsim.task_errors", len(r.Failed))
}

// taskStats tallies one task's recovery activity.
type taskStats struct {
	retries, panics, timeouts int
}

// RunCtx is Run with the full failure story: fn receives a context that
// carries the attempt number (Attempt) and is cancelled at the per-attempt
// Deadline. Panics are recovered into typed errors, failed attempts retry
// per Options, completed tasks checkpoint when configured, and the returned
// Report annotates everything the recovery machinery did. Results are in
// index order exactly as for Run; under Options.Tolerate lost shards hold
// the zero value and err is nil.
func RunCtx[T any](n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, *Report, error) {
	rep := &Report{Tasks: n}
	if n <= 0 {
		return nil, rep, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}

	// Sweep-level observability: deterministic run/task counters plus the
	// worker-count gauge (configuration), and wall-clock spans for the
	// sweep and each worker's busy time ("parsim.worker_busy" count vs
	// "parsim.run" total is the pool utilization). Spans live only in the
	// timing section of snapshots, never in experiment output.
	reg := obs.Default
	reg.Counter("parsim.runs").Inc()
	reg.Counter("parsim.tasks").Add(uint64(n))
	reg.Gauge("parsim.workers").Set(int64(workers))
	defer reg.StartPhase("parsim.run")()

	results := make([]T, n)
	errs := make([]*ShardError, n)

	var ck *ckWriter
	restored := make([]bool, n)
	if opts.Checkpoint != nil {
		var err error
		ck, err = openCheckpoint(opts.Checkpoint, restored, results)
		if err != nil {
			return results, rep, fmt.Errorf("parsim: checkpoint %s: %w", opts.Checkpoint.Path, err)
		}
		defer ck.close()
		for _, r := range restored {
			if r {
				rep.Restored++
			}
		}
	}

	// Workers tally their tasks' recovery stats under mu; the totals are
	// sums over tasks, hence scheduling-independent.
	var mu sync.Mutex
	runTask := func(i int) {
		if restored[i] {
			return
		}
		v, stats, serr := attemptLoop(i, opts, fn)
		results[i], errs[i] = v, serr
		if serr == nil && ck != nil {
			ck.store(i, v)
		}
		mu.Lock()
		rep.Retries += stats.retries
		rep.Panics += stats.panics
		rep.Timeouts += stats.timeouts
		mu.Unlock()
	}

	if workers == 1 {
		// Serial fallback: same semantics, no pool goroutines. This is
		// the path -j 1 and GOMAXPROCS=1 CI exercise against the pool.
		done := reg.StartPhase("parsim.worker_busy")
		for i := 0; i < n; i++ {
			runTask(i)
		}
		done()
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				start := time.Now()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						reg.ObservePhase("parsim.worker_busy", time.Since(start))
						return
					}
					runTask(i)
				}
			}()
		}
		wg.Wait()
	}

	for _, serr := range errs {
		if serr != nil {
			rep.Failed = append(rep.Failed, serr)
		}
	}
	rep.Completed = n - len(rep.Failed)
	rep.observeInto(reg)

	if ck != nil {
		if err := ck.err(); err != nil {
			// A checkpoint that stopped persisting is an environment
			// failure: resuming from it would silently re-run shards, so
			// surface it even under Tolerate.
			return results, rep, fmt.Errorf("parsim: checkpoint %s: %w", opts.Checkpoint.Path, err)
		}
	}
	if len(rep.Failed) > 0 && !opts.Tolerate {
		first := rep.Failed[0]
		return results, rep, &TaskError{Index: first.Index, Err: first}
	}
	return results, rep, nil
}

// attemptLoop drives one task through its attempts, classifying failures
// and pacing retries with capped exponential backoff.
func attemptLoop[T any](i int, opts Options, fn func(ctx context.Context, i int) (T, error)) (T, taskStats, *ShardError) {
	var stats taskStats
	backoff := opts.Backoff
	attempts := opts.Retries + 1
	if attempts < 1 {
		// Negative Retries must not skip the task entirely (a zero-attempt
		// loop would fail the shard with a nil cause).
		attempts = 1
	}
	var last error
	var kind ErrKind
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			stats.retries++
			if backoff > 0 {
				time.Sleep(backoff)
				if backoff *= 2; backoff > opts.backoffCap() {
					backoff = opts.backoffCap()
				}
			}
		}
		v, err := runAttempt(i, attempt, opts.Deadline, fn)
		if err == nil {
			return v, stats, nil
		}
		last, kind = err, KindError
		var pe *PanicError
		switch {
		case errors.As(err, &pe):
			kind = KindPanic
			stats.panics++
		case errors.Is(err, context.DeadlineExceeded):
			kind = KindTimeout
			stats.timeouts++
		}
	}
	var zero T
	return zero, stats, &ShardError{Index: i, Attempts: attempts, Kind: kind, Err: last}
}

// runAttempt executes one attempt under the attempt-stamped context,
// recovering panics. With a deadline, the attempt runs on its own goroutine
// and the watchdog stops waiting at the deadline; the abandoned goroutine's
// eventual result lands in a buffered channel and is discarded.
func runAttempt[T any](i, attempt int, deadline time.Duration, fn func(ctx context.Context, i int) (T, error)) (T, error) {
	// Attempt 0 is the overwhelmingly common case (retries only happen
	// under fault injection); Attempt() reads 0 from a bare context, so
	// the first attempt skips the context allocation.
	ctx := context.Background()
	if attempt != 0 {
		ctx = context.WithValue(ctx, attemptKey{}, attempt)
	}
	if deadline <= 0 {
		return protect(ctx, i, fn)
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := protect(ctx, i, fn)
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		var zero T
		return zero, fmt.Errorf("parsim: attempt %d exceeded the %s deadline: %w",
			attempt, deadline, context.DeadlineExceeded)
	}
}

// protect calls fn, converting a panic into a *PanicError.
func protect[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	return fn(ctx, i)
}
