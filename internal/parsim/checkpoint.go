package parsim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint configures on-disk sweep checkpointing. The file is JSONL —
// one {"i": index, "v": result} line per completed task, appended as tasks
// finish — so a sweep killed mid-run loses at most the lines the OS had not
// flushed. Results must round-trip through encoding/json (Go's float64
// encoding is shortest-round-trip, so numeric results restore bit-exact and
// a resumed sweep renders byte-identical reports).
//
// Restored shards skip execution entirely, so a resumed run performs less
// simulated work: its obs counters (refs streamed, samples taken) shrink
// accordingly while the result slice — and anything rendered from it —
// stays identical.
type Checkpoint struct {
	// Path is the checkpoint file.
	Path string
	// Resume loads existing entries and skips their tasks. Without Resume
	// an existing file is truncated and the sweep starts clean.
	Resume bool
}

// ckEntry is one persisted task result.
type ckEntry struct {
	I int             `json:"i"`
	V json.RawMessage `json:"v"`
}

// ckWriter appends completed results to the checkpoint file. Store failures
// are sticky: the first one is kept and surfaced when the sweep ends.
type ckWriter struct {
	mu       sync.Mutex
	f        *os.File
	firstErr error
}

// openCheckpoint prepares the checkpoint for one sweep: on Resume it
// restores persisted results into results (marking restored), tolerating a
// truncated or corrupt trailing line (the signature of a crash mid-append),
// then rewrites the file compactly from the restored entries — a torn
// trailing line must not swallow the first entry appended after it. Without
// Resume the file is truncated. The returned writer appends new completions.
func openCheckpoint[T any](ck *Checkpoint, restored []bool, results []T) (*ckWriter, error) {
	if ck.Resume {
		if err := restoreCheckpoint(ck.Path, restored, results); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(ck.Path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &ckWriter{f: f}
	for i, ok := range restored {
		if ok {
			w.store(i, results[i])
		}
	}
	if err := w.err(); err != nil {
		w.close()
		return nil, err
	}
	return w, nil
}

// restoreCheckpoint loads every parsable entry of a checkpoint file.
// A missing file is an empty checkpoint. Unparsable lines (a partial append
// from a crash) and out-of-range indexes are skipped, not errors: the
// corresponding shards simply re-run.
func restoreCheckpoint[T any](path string, restored []bool, results []T) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		var e ckEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		if e.I < 0 || e.I >= len(results) || e.V == nil {
			continue
		}
		var v T
		if err := json.Unmarshal(e.V, &v); err != nil {
			continue
		}
		results[e.I] = v
		restored[e.I] = true
	}
	return sc.Err()
}

// store appends one completed result. Safe for concurrent workers.
func (w *ckWriter) store(i int, v any) {
	raw, err := json.Marshal(v)
	if err == nil {
		var line []byte
		line, err = json.Marshal(ckEntry{I: i, V: raw})
		if err == nil {
			line = append(line, '\n')
			w.mu.Lock()
			if w.firstErr == nil {
				_, werr := w.f.Write(line)
				w.firstErr = werr
			}
			w.mu.Unlock()
			return
		}
	}
	w.mu.Lock()
	if w.firstErr == nil {
		w.firstErr = fmt.Errorf("encoding shard %d: %w", i, err)
	}
	w.mu.Unlock()
}

// err returns the first store failure, if any.
func (w *ckWriter) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.firstErr
}

// close releases the file handle.
func (w *ckWriter) close() {
	w.f.Close()
}
