package parsim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Checkpoint configures on-disk sweep checkpointing. The file is JSONL —
// one {"i": index, "v": result} line per completed task, appended as tasks
// finish — so a sweep killed mid-run loses at most the lines the OS had not
// flushed. Results must round-trip through encoding/json (Go's float64
// encoding is shortest-round-trip, so numeric results restore bit-exact and
// a resumed sweep renders byte-identical reports).
//
// Restored shards skip execution entirely, so a resumed run performs less
// simulated work: its obs counters (refs streamed, samples taken) shrink
// accordingly while the result slice — and anything rendered from it —
// stays identical.
type Checkpoint struct {
	// Path is the checkpoint file.
	Path string
	// Resume loads existing entries and skips their tasks. Without Resume
	// an existing file is truncated and the sweep starts clean.
	Resume bool
}

// ckEntry is one persisted task result.
type ckEntry struct {
	I int             `json:"i"`
	V json.RawMessage `json:"v"`
}

// ckWriter appends completed results to the checkpoint file. Store failures
// are sticky: the first one is kept and surfaced when the sweep ends.
type ckWriter struct {
	mu       sync.Mutex
	f        *os.File
	firstErr error
}

// ckCompactTestHook, when non-nil, runs after the compacted temp file is
// durable but before it is renamed over the checkpoint — the widest window
// a crash-safety test can probe. Tests that simulate a kill there panic out
// of it.
var ckCompactTestHook func()

// openCheckpoint prepares the checkpoint for one sweep: on Resume it
// restores persisted results into results (marking restored), tolerating a
// truncated or corrupt trailing line (the signature of a crash mid-append),
// then rewrites the file compactly from the restored entries — a torn
// trailing line must not swallow the first entry appended after it. Without
// Resume an existing checkpoint is discarded and the sweep starts clean.
// The returned writer appends new completions.
//
// The compact rewrite is crash-safe: the replacement is written to a temp
// file in the same directory, fsynced, and renamed over the checkpoint
// atomically, so a kill at any instant leaves either the old file (every
// previously durable shard intact and restorable) or the fully compacted
// new one — never a truncated in-between. Orphaned temp files from an
// earlier kill are swept up first.
func openCheckpoint[T any](ck *Checkpoint, restored []bool, results []T) (*ckWriter, error) {
	if ck.Resume {
		if err := restoreCheckpoint(ck.Path, restored, results); err != nil {
			return nil, err
		}
	}
	removeStaleTemps(ck.Path)
	tmp, err := os.CreateTemp(filepath.Dir(ck.Path), filepath.Base(ck.Path)+ckTempPattern)
	if err != nil {
		return nil, err
	}
	discard := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	for i, ok := range restored {
		if !ok {
			continue
		}
		line, err := encodeEntry(i, results[i])
		if err != nil {
			discard()
			return nil, err
		}
		if _, err := tmp.Write(line); err != nil {
			discard()
			return nil, err
		}
	}
	if err := tmp.Sync(); err != nil {
		discard()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	if ckCompactTestHook != nil {
		ckCompactTestHook()
	}
	if err := os.Rename(tmp.Name(), ck.Path); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	syncDir(filepath.Dir(ck.Path))
	f, err := os.OpenFile(ck.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &ckWriter{f: f}, nil
}

// ckTempPattern suffixes the in-progress compaction file next to its
// checkpoint.
const ckTempPattern = ".compact-*"

// removeStaleTemps deletes compaction temp files a killed predecessor left
// behind; they were never renamed, so they hold nothing durable.
func removeStaleTemps(path string) {
	stale, err := filepath.Glob(path + ckTempPattern)
	if err != nil {
		return
	}
	for _, p := range stale {
		os.Remove(p)
	}
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best-effort: not every filesystem supports it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// encodeEntry renders one checkpoint line (JSONL entry plus newline).
func encodeEntry(i int, v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encoding shard %d: %w", i, err)
	}
	line, err := json.Marshal(ckEntry{I: i, V: raw})
	if err != nil {
		return nil, fmt.Errorf("encoding shard %d: %w", i, err)
	}
	return append(line, '\n'), nil
}

// restoreCheckpoint loads every parsable entry of a checkpoint file.
// A missing file is an empty checkpoint. Unparsable lines (a partial append
// from a crash) and out-of-range indexes are skipped, not errors: the
// corresponding shards simply re-run.
func restoreCheckpoint[T any](path string, restored []bool, results []T) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		var e ckEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		if e.I < 0 || e.I >= len(results) || e.V == nil {
			continue
		}
		var v T
		if err := json.Unmarshal(e.V, &v); err != nil {
			continue
		}
		results[e.I] = v
		restored[e.I] = true
	}
	return sc.Err()
}

// store appends one completed result. Safe for concurrent workers.
func (w *ckWriter) store(i int, v any) {
	line, err := encodeEntry(i, v)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.firstErr != nil {
		return
	}
	if err != nil {
		w.firstErr = err
		return
	}
	_, w.firstErr = w.f.Write(line)
}

// err returns the first store failure, if any.
func (w *ckWriter) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.firstErr
}

// close makes the appended entries durable and releases the file handle.
// The fsync is best-effort — append durability against power loss is
// per-OS-flush by design (see Checkpoint) — but it costs one syscall per
// sweep and upgrades the common clean-exit case to fully durable.
func (w *ckWriter) close() {
	w.f.Sync()
	w.f.Close()
}
