package parsim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestAttemptOutsideParsim(t *testing.T) {
	if got := Attempt(context.Background()); got != 0 {
		t.Errorf("Attempt(Background) = %d, want 0", got)
	}
}

// TestRunCtxPanicRecovery: a panicking task must not kill the sweep; it
// surfaces as a typed ShardError with KindPanic, preserving the panic value
// in the error chain.
func TestRunCtxPanicRecovery(t *testing.T) {
	boom := errors.New("injected panic cause")
	for _, workers := range []int{1, 4} {
		res, rep, err := RunCtx(8, Options{Workers: workers}, func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic(boom)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: sweep with a panicking shard returned nil error", workers)
		}
		var te *TaskError
		if !errors.As(err, &te) || te.Index != 3 {
			t.Fatalf("workers=%d: error %v is not a TaskError for index 3", workers, err)
		}
		var se *ShardError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: error %v has no ShardError", workers, err)
		}
		if se.Kind != KindPanic || se.Index != 3 || se.Attempts != 1 {
			t.Errorf("workers=%d: ShardError = %+v, want panic at index 3 after 1 attempt", workers, se)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: panic value lost from the chain: %v", workers, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) || !strings.Contains(pe.Stack, "run_test.go") {
			t.Errorf("workers=%d: PanicError lacks the recovery stack", workers)
		}
		if rep.Panics != 1 {
			t.Errorf("workers=%d: Report.Panics = %d, want 1", workers, rep.Panics)
		}
		for i, v := range res {
			want := i
			if i == 3 {
				want = 0
			}
			if v != want {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

// TestRunCtxRetry: a shard failing its first attempts succeeds after
// deterministic retries; the report counts exactly the retries performed,
// independent of worker count.
func TestRunCtxRetry(t *testing.T) {
	const n = 20
	for _, workers := range []int{1, 4, 8} {
		res, rep, err := RunCtx(n, Options{Workers: workers, Retries: 2, Backoff: time.Microsecond},
			func(ctx context.Context, i int) (int, error) {
				// Shards divisible by 5 panic on attempt 0 and error on
				// attempt 1, then succeed; shard 7 errors once.
				attempt := Attempt(ctx)
				if i%5 == 0 && attempt == 0 {
					panic(fmt.Sprintf("shard %d first attempt", i))
				}
				if i%5 == 0 && attempt == 1 {
					return 0, errors.New("second attempt")
				}
				if i == 7 && attempt == 0 {
					return 0, errors.New("transient")
				}
				return i * 10, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range res {
			if v != i*10 {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*10)
			}
		}
		// Shards 0,5,10,15: two retries each; shard 7: one. Panics: one each
		// for 0,5,10,15.
		if rep.Retries != 9 || rep.Panics != 4 {
			t.Errorf("workers=%d: Report{Retries: %d, Panics: %d}, want {9, 4}", workers, rep.Retries, rep.Panics)
		}
		if rep.Completed != n || rep.Degraded() {
			t.Errorf("workers=%d: Report = %+v, want all %d completed", workers, rep, n)
		}
	}
}

// TestRunCtxRetriesExhausted: a shard that always fails exhausts its
// attempts and reports the attempt count.
func TestRunCtxRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	_, rep, err := RunCtx(1, Options{Workers: 1, Retries: 3}, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return 0, errors.New("always")
	})
	if err == nil {
		t.Fatal("exhausted shard returned nil error")
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Attempts != 4 || se.Kind != KindError {
		t.Fatalf("ShardError = %+v, want 4 attempts of kind error", se)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("task ran %d times, want 4", got)
	}
	if rep.Retries != 3 {
		t.Errorf("Report.Retries = %d, want 3", rep.Retries)
	}
}

// TestRunCtxWatchdog: an attempt that hangs is cancelled at the deadline,
// counted as a timeout, and retried; the retry observes the attempt number
// and returns promptly.
func TestRunCtxWatchdog(t *testing.T) {
	res, rep, err := RunCtx(3, Options{Workers: 2, Retries: 1, Deadline: 50 * time.Millisecond},
		func(ctx context.Context, i int) (string, error) {
			if i == 1 && Attempt(ctx) == 0 {
				// Hang far beyond the deadline, cooperatively.
				select {
				case <-ctx.Done():
					return "", ctx.Err()
				case <-time.After(30 * time.Second):
					return "unreachable", nil
				}
			}
			return fmt.Sprintf("ok-%d", i), nil
		})
	if err != nil {
		t.Fatalf("watchdog sweep failed: %v", err)
	}
	if res[1] != "ok-1" {
		t.Errorf("result[1] = %q, want the retry's result", res[1])
	}
	if rep.Timeouts != 1 || rep.Retries != 1 {
		t.Errorf("Report{Timeouts: %d, Retries: %d}, want {1, 1}", rep.Timeouts, rep.Retries)
	}
}

// TestRunCtxWatchdogExhausted: a shard that hangs every attempt is reported
// as a typed timeout failure.
func TestRunCtxWatchdogExhausted(t *testing.T) {
	_, rep, err := RunCtx(1, Options{Workers: 1, Deadline: 20 * time.Millisecond},
		func(ctx context.Context, i int) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		})
	var se *ShardError
	if !errors.As(err, &se) || se.Kind != KindTimeout {
		t.Fatalf("error %v is not a timeout ShardError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout must wrap context.DeadlineExceeded: %v", err)
	}
	if rep.Timeouts != 1 {
		t.Errorf("Report.Timeouts = %d, want 1", rep.Timeouts)
	}
}

// TestRunCtxTolerate: degraded mode returns nil error, zero values at lost
// indexes, and a typed failure list.
func TestRunCtxTolerate(t *testing.T) {
	res, rep, err := RunCtx(10, Options{Workers: 4, Tolerate: true}, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, errors.New("lost")
		}
		if i == 6 {
			panic("lost too")
		}
		return i + 1, nil
	})
	if err != nil {
		t.Fatalf("tolerated sweep returned error: %v", err)
	}
	if !rep.Degraded() || rep.ShardsLost() != 2 || rep.Completed != 8 {
		t.Fatalf("Report = %+v, want 2 lost, 8 completed", rep)
	}
	if rep.Failed[0].Index != 2 || rep.Failed[0].Kind != KindError ||
		rep.Failed[1].Index != 6 || rep.Failed[1].Kind != KindPanic {
		t.Errorf("Failed = [%v, %v], want error@2 then panic@6", rep.Failed[0], rep.Failed[1])
	}
	for i, v := range res {
		want := i + 1
		if i == 2 || i == 6 {
			want = 0
		}
		if v != want {
			t.Errorf("result[%d] = %d, want %d", i, v, want)
		}
	}
}

// checkpointLines reads the checkpoint file's raw lines.
func checkpointLines(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
}

type ckResult struct {
	Index int     `json:"index"`
	Score float64 `json:"score"`
}

// TestRunCtxCheckpointResume is the crash-recovery contract: a sweep whose
// checkpoint holds a prefix of the work (as after a kill) re-runs only the
// missing shards and produces results identical to an uninterrupted run —
// including a corrupt trailing half-line from the crash itself.
func TestRunCtxCheckpointResume(t *testing.T) {
	const n = 12
	task := func(_ context.Context, i int) (ckResult, error) {
		return ckResult{Index: i, Score: float64(i) / 3}, nil
	}
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	want, rep, err := RunCtx(n, Options{Workers: 3, Checkpoint: &Checkpoint{Path: full}}, task)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 0 || rep.Completed != n {
		t.Fatalf("clean run Report = %+v", rep)
	}
	lines := checkpointLines(t, full)
	if len(lines) != n {
		t.Fatalf("checkpoint holds %d lines, want %d", len(lines), n)
	}

	// Simulate the kill: keep 5 completed lines plus a torn partial line.
	partial := filepath.Join(dir, "partial.ckpt")
	torn := strings.Join(lines[:5], "\n") + "\n" + lines[5][:len(lines[5])/2]
	if err := os.WriteFile(partial, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	var reran atomic.Int64
	got, rep2, err := RunCtx(n, Options{Workers: 3, Checkpoint: &Checkpoint{Path: partial, Resume: true}},
		func(ctx context.Context, i int) (ckResult, error) {
			reran.Add(1)
			return task(ctx, i)
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed results differ:\n got %+v\nwant %+v", got, want)
	}
	if rep2.Restored != 5 {
		t.Errorf("Report.Restored = %d, want 5 (torn line re-runs)", rep2.Restored)
	}
	if reran.Load() != n-5 {
		t.Errorf("resume re-ran %d shards, want %d", reran.Load(), n-5)
	}
	// The resumed checkpoint must now be complete: resuming again runs
	// nothing.
	_, rep3, err := RunCtx(n, Options{Workers: 3, Checkpoint: &Checkpoint{Path: partial, Resume: true}},
		func(_ context.Context, i int) (ckResult, error) {
			t.Errorf("shard %d ran despite a complete checkpoint", i)
			return ckResult{}, nil
		})
	if err != nil || rep3.Restored != n {
		t.Errorf("second resume: err %v, Restored %d, want nil, %d", err, rep3.Restored, n)
	}
}

// TestRunCtxCheckpointInterruptedByFailure: the motivating scenario — a
// sweep dies on a shard error, completed shards persist, and the re-run
// with Resume skips them while fixing the failure.
func TestRunCtxCheckpointInterruptedByFailure(t *testing.T) {
	const n = 8
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	_, _, err := RunCtx(n, Options{Workers: 1, Checkpoint: &Checkpoint{Path: path}},
		func(_ context.Context, i int) (int, error) {
			if i == 5 {
				return 0, errors.New("fatal shard")
			}
			return i * i, nil
		})
	if err == nil {
		t.Fatal("first run should fail")
	}
	res, rep, err := RunCtx(n, Options{Workers: 1, Checkpoint: &Checkpoint{Path: path, Resume: true}},
		func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != n-1 {
		t.Errorf("Restored = %d, want %d", rep.Restored, n-1)
	}
	for i, v := range res {
		if v != i*i {
			t.Errorf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestRunCtxCheckpointTruncatesWithoutResume: without Resume a stale file
// must not leak results into a fresh sweep.
func TestRunCtxCheckpointTruncatesWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.ckpt")
	if err := os.WriteFile(path, []byte(`{"i":0,"v":999}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, rep, err := RunCtx(2, Options{Workers: 1, Checkpoint: &Checkpoint{Path: path}},
		func(_ context.Context, i int) (int, error) { return i + 40, nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 0 || res[0] != 40 {
		t.Errorf("stale checkpoint leaked: Restored %d, res %v", rep.Restored, res)
	}
	if lines := checkpointLines(t, path); len(lines) != 2 {
		t.Errorf("truncated checkpoint holds %d lines, want 2", len(lines))
	}
}

// TestRunCtxCheckpointUnwritable: an unopenable checkpoint path is a typed,
// immediate error — not a silent non-persisted sweep.
func TestRunCtxCheckpointUnwritable(t *testing.T) {
	_, _, err := RunCtx(2, Options{Workers: 1, Checkpoint: &Checkpoint{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt")}},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("unwritable checkpoint: err = %v, want checkpoint error", err)
	}
}

// TestRunCtxFailedShardsNotCheckpointed: lost shards must re-run on resume.
func TestRunCtxFailedShardsNotCheckpointed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deg.ckpt")
	_, rep, err := RunCtx(4, Options{Workers: 1, Tolerate: true, Checkpoint: &Checkpoint{Path: path}},
		func(_ context.Context, i int) (int, error) {
			if i == 1 {
				return 0, errors.New("lost")
			}
			return i, nil
		})
	if err != nil || rep.ShardsLost() != 1 {
		t.Fatalf("setup run: err %v, lost %d", err, rep.ShardsLost())
	}
	res, rep2, err := RunCtx(4, Options{Workers: 1, Checkpoint: &Checkpoint{Path: path, Resume: true}},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Restored != 3 || res[1] != 1 {
		t.Errorf("lost shard not re-run: Restored %d, res %v", rep2.Restored, res)
	}
}
