// Package faultinj is the deterministic fault-injection layer of the
// profiling pipeline. A Plan describes a fault regime — PEBS-style sample
// drops, bursty buffer truncation, corrupted sample addresses, skewed
// sampling periods, and shard-level panics/errors/slowdowns — and hands out
// per-component injectors whose every decision is a pure function of
// (plan seed, component key, event index).
//
// Determinism rules (see DESIGN.md):
//
//   - Injector seeds derive from the plan seed with parsim.DeriveSeed and a
//     stable component key ("faults/<workload>/thread/<tid>"), never from a
//     shared RNG or anything scheduling-dependent. The same plan therefore
//     perturbs a sweep identically at -j 1 and -j 8.
//   - Fault decisions hash the event index instead of consuming a stateful
//     RNG stream, so the decision for sample n does not depend on how many
//     earlier samples were inspected.
//   - Shard faults are gated on parsim.Attempt: a shard selected for
//     failure fails its first FailAttempts attempts and then succeeds, so
//     retry machinery can be exercised without losing determinism.
//   - Slowdowns pace wall clock only; nothing time-derived reaches results.
package faultinj

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/parsim"
	"repro/internal/pmu"
)

// DefaultCorruptMask is the address corruption applied when a Plan selects
// a sample for corruption but sets no mask: it flips one set-index bit
// (bit 7) and one tag bit (bit 16), moving the sample to a different cache
// set — the worst case for a set-conflict classifier.
const DefaultCorruptMask uint64 = 1<<7 | 1<<16

// ErrInjected is the root cause of plan-injected shard errors.
var ErrInjected = errors.New("faultinj: injected shard error")

// Typed Plan validation failures.
var (
	ErrBadRate     = errors.New("faultinj: rate outside [0, 1]")
	ErrBadBurst    = errors.New("faultinj: negative truncation burst")
	ErrBadSkew     = errors.New("faultinj: period skew outside [0, 1)")
	ErrBadAttempts = errors.New("faultinj: negative fail-attempts")
	ErrBadDelay    = errors.New("faultinj: negative slow delay")
)

// Plan is a deterministic fault regime. The zero value injects nothing;
// a nil *Plan is valid everywhere and also injects nothing.
type Plan struct {
	// Seed is the root of every injector seed derivation.
	Seed int64

	// DropRate is the per-sample probability that a raised sample is
	// silently discarded (a lost PEBS interrupt).
	DropRate float64

	// TruncateRate is the per-sample probability that a buffer-overflow
	// burst starts at that sample; the sample and the following
	// TruncateBurst-1 samples are discarded as a block, modelling a full
	// PEBS buffer beyond pmu.Config.MaxSamples.
	TruncateRate float64
	// TruncateBurst is the burst length; 0 selects 8.
	TruncateBurst int

	// CorruptRate is the per-sample probability that the sample address
	// is rewritten by XOR with CorruptMask (aliasing the sample into a
	// different cache set).
	CorruptRate float64
	// CorruptMask is the XOR mask; 0 selects DefaultCorruptMask.
	CorruptMask uint64

	// PeriodSkew perturbs every drawn sampling period by a deterministic
	// per-draw factor in [1-PeriodSkew, 1+PeriodSkew]. Must be in [0, 1).
	PeriodSkew float64

	// PanicRate, ErrorRate and SlowRate select shards (by stable key) for
	// worker panics, injected errors and artificial slowdowns.
	PanicRate float64
	ErrorRate float64
	SlowRate  float64

	// SlowDelay is how long a slow shard sleeps per attempt; 0 selects
	// 10ms. The sleep paces wall clock only and never reaches results.
	SlowDelay time.Duration

	// FailAttempts is how many leading attempts of a selected shard fail
	// before it succeeds; 0 selects 1, so a single retry recovers every
	// injected shard fault. Gated on parsim.Attempt.
	FailAttempts int
}

// Validate checks the plan's parameters, wrapping typed errors.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	rates := []struct {
		name string
		v    float64
	}{
		{"DropRate", p.DropRate},
		{"TruncateRate", p.TruncateRate},
		{"CorruptRate", p.CorruptRate},
		{"PanicRate", p.PanicRate},
		{"ErrorRate", p.ErrorRate},
		{"SlowRate", p.SlowRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("%w: %s = %v", ErrBadRate, r.name, r.v)
		}
	}
	if p.TruncateBurst < 0 {
		return fmt.Errorf("%w: %d", ErrBadBurst, p.TruncateBurst)
	}
	if p.PeriodSkew < 0 || p.PeriodSkew >= 1 || p.PeriodSkew != p.PeriodSkew {
		return fmt.Errorf("%w: %v", ErrBadSkew, p.PeriodSkew)
	}
	if p.FailAttempts < 0 {
		return fmt.Errorf("%w: %d", ErrBadAttempts, p.FailAttempts)
	}
	if p.SlowDelay < 0 {
		return fmt.Errorf("%w: %v", ErrBadDelay, p.SlowDelay)
	}
	return nil
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.DropRate > 0 || p.TruncateRate > 0 || p.CorruptRate > 0 ||
		p.PeriodSkew > 0 || p.PanicRate > 0 || p.ErrorRate > 0 || p.SlowRate > 0
}

// truncateBurst resolves the burst-length default.
func (p *Plan) truncateBurst() int {
	if p.TruncateBurst > 0 {
		return p.TruncateBurst
	}
	return 8
}

// corruptMask resolves the mask default.
func (p *Plan) corruptMask() uint64 {
	if p.CorruptMask != 0 {
		return p.CorruptMask
	}
	return DefaultCorruptMask
}

// failAttempts resolves the fail-attempts default.
func (p *Plan) failAttempts() int {
	if p.FailAttempts > 0 {
		return p.FailAttempts
	}
	return 1
}

// slowDelay resolves the slow-delay default.
func (p *Plan) slowDelay() time.Duration {
	if p.SlowDelay > 0 {
		return p.SlowDelay
	}
	return 10 * time.Millisecond
}

// splitmix64 is the finalizer of the SplitMix64 generator — a strong
// 64-bit mixer used here as a stateless hash from event index to uniform
// bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform maps (seed, stream, n) to a uniform float64 in [0, 1). stream
// decorrelates the plan's independent fault channels so e.g. the drop and
// corrupt decisions for the same sample index are independent.
func uniform(seed int64, stream, n uint64) float64 {
	x := splitmix64(uint64(seed) ^ splitmix64(stream) ^ n)
	return float64(x>>11) / (1 << 53)
}

// Fault-channel stream ids.
const (
	streamDrop uint64 = iota + 1
	streamTruncate
	streamCorrupt
	streamPeriod
	streamPanic
	streamError
	streamSlow
)

// Injector perturbs one sampler's stream per the plan. It implements
// pmu.FaultInjector. An Injector is stateful (truncation bursts, period
// draw count) and must not be shared between samplers; derive one per
// sampled thread with Plan.Injector.
type Injector struct {
	plan *Plan
	seed int64

	truncLeft   int    // samples left in the running truncation burst
	periodDraws uint64 // period draws seen, the SkewPeriod event index
}

// Injector derives the sampler-level injector for one component. key must
// be stable across runs and unique per sampler
// ("faults/<workload>/thread/<tid>"); the derived seed is
// parsim.DeriveSeed(plan.Seed, key). A nil plan returns nil, which
// pmu.Config treats as "inject nothing".
func (p *Plan) Injector(key string) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{plan: p, seed: parsim.DeriveSeed(p.Seed, key)}
}

// SkewPeriod perturbs one drawn sampling period. Safe on a nil receiver
// (a nil *Injector stored in pmu.Config.Faults is a non-nil interface).
func (in *Injector) SkewPeriod(period uint64) uint64 {
	if in == nil {
		return period
	}
	n := in.periodDraws
	in.periodDraws++
	if in.plan.PeriodSkew <= 0 {
		return period
	}
	// factor in [1-skew, 1+skew], applied in float and clamped ≥ 1.
	f := 1 + in.plan.PeriodSkew*(2*uniform(in.seed, streamPeriod, n)-1)
	skewed := uint64(float64(period) * f)
	if skewed < 1 {
		skewed = 1
	}
	return skewed
}

// OnSample decides the fate of raised sample n. Safe on a nil receiver.
func (in *Injector) OnSample(n uint64, s pmu.Sample) (pmu.Sample, pmu.FaultAction) {
	if in == nil {
		return s, pmu.FaultKeep
	}
	if in.truncLeft > 0 {
		in.truncLeft--
		return s, pmu.FaultTruncate
	}
	p := in.plan
	if p.TruncateRate > 0 && uniform(in.seed, streamTruncate, n) < p.TruncateRate {
		in.truncLeft = p.truncateBurst() - 1
		return s, pmu.FaultTruncate
	}
	if p.DropRate > 0 && uniform(in.seed, streamDrop, n) < p.DropRate {
		return s, pmu.FaultDrop
	}
	if p.CorruptRate > 0 && uniform(in.seed, streamCorrupt, n) < p.CorruptRate {
		s.Addr ^= p.corruptMask()
		return s, pmu.FaultCorrupt
	}
	return s, pmu.FaultKeep
}

// ShardFault is the plan's decision for one shard attempt.
type ShardFault struct {
	// Panic, when true, asks the shard to panic with Err as the value.
	Panic bool
	// Err, when non-nil and Panic is false, is the error the shard should
	// return. It wraps ErrInjected.
	Err error
	// Slow is an artificial delay the shard should sleep before working.
	Slow time.Duration
}

// Shard decides what happens to the attempt-th execution of the shard
// named by key. Panics and errors apply only to attempts below the plan's
// FailAttempts, so a sweep with Retries ≥ FailAttempts recovers every
// injected shard fault; slowdowns apply to every attempt of a selected
// shard. A nil plan decides nothing.
func (p *Plan) Shard(key string, attempt int) ShardFault {
	var f ShardFault
	if p == nil {
		return f
	}
	seed := parsim.DeriveSeed(p.Seed, key)
	if p.SlowRate > 0 && uniform(seed, streamSlow, 0) < p.SlowRate {
		f.Slow = p.slowDelay()
	}
	if attempt >= p.failAttempts() {
		return f
	}
	if p.PanicRate > 0 && uniform(seed, streamPanic, 0) < p.PanicRate {
		f.Panic = true
		f.Err = fmt.Errorf("%w: injected panic in %s (attempt %d)", ErrInjected, key, attempt)
		return f
	}
	if p.ErrorRate > 0 && uniform(seed, streamError, 0) < p.ErrorRate {
		f.Err = fmt.Errorf("%w: %s (attempt %d)", ErrInjected, key, attempt)
	}
	return f
}

// Apply executes the decision inside a shard: it sleeps the slowdown,
// panics, or returns the injected error. Call it at the top of a
// parsim.RunCtx task with the task's stable key and parsim.Attempt(ctx);
// a nil error means the shard should do its real work.
func (f ShardFault) Apply() error {
	if f.Slow > 0 {
		time.Sleep(f.Slow)
	}
	if f.Panic {
		panic(f.Err)
	}
	return f.Err
}
