package faultinj

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/parsim"
	"repro/internal/pmu"
	"repro/internal/trace"
)

// FuzzFaultPlan is the pipeline-never-panics contract: for any plan the
// fuzzer can express — valid or not — the sampler+sweep pipeline either
// completes with a degraded-mode report or returns a typed error; it never
// panics past parsim's recovery, and valid plans always yield a report.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), 0.1, 0.05, int16(4), 0.1, uint64(0), 0.2, 0.5, 0.5, int16(1), false)
	f.Add(int64(-7), 0.0, 0.0, int16(0), 0.0, uint64(1<<7), 0.0, 1.0, 1.0, int16(3), true)
	f.Add(int64(99), 1.0, 1.0, int16(-2), 1.5, ^uint64(0), -0.5, 0.0, 0.3, int16(-1), true)
	f.Fuzz(func(t *testing.T, seed int64,
		drop, trunc float64, burst int16,
		corrupt float64, mask uint64, skew float64,
		panicRate, errRate float64, failAttempts int16, tolerate bool) {

		plan := &Plan{
			Seed:     seed,
			DropRate: drop, TruncateRate: trunc, TruncateBurst: int(burst),
			CorruptRate: corrupt, CorruptMask: mask,
			PeriodSkew: skew,
			PanicRate:  panicRate, ErrorRate: errRate,
			FailAttempts: int(failAttempts),
		}
		if err := plan.Validate(); err != nil {
			// Invalid plans must be rejected with a typed cause, and
			// injectors for them must still not panic the sampler below —
			// callers validate, but the pipeline must survive a miss.
			var typed bool
			for _, want := range []error{ErrBadRate, ErrBadBurst, ErrBadSkew, ErrBadAttempts, ErrBadDelay} {
				typed = typed || errors.Is(err, want)
			}
			if !typed {
				t.Fatalf("Validate returned untyped error %v", err)
			}
			if plan.DropRate < 0 || plan.DropRate > 1 || plan.PeriodSkew < 0 || plan.PeriodSkew >= 1 {
				return // rates the injector math cannot make sense of
			}
		}

		const shards = 4
		_, rep, err := parsim.RunCtx(shards, parsim.Options{Workers: 2, Retries: int(failAttempts) + 1, Tolerate: tolerate},
			func(ctx context.Context, i int) (int, error) {
				key := fmt.Sprintf("fuzz/shard/%d", i)
				if ferr := plan.Shard(key, parsim.Attempt(ctx)).Apply(); ferr != nil {
					return 0, ferr
				}
				s := pmu.NewSampler(pmu.Config{
					Geom: mem.L1Default(), Period: pmu.Fixed(7), Seed: seed,
					Faults: plan.Injector(key),
				})
				for r := 0; r < 500; r++ {
					s.Ref(trace.Ref{IP: 0x1000, Addr: uint64(r) * 4096})
				}
				return len(s.Samples), nil
			})
		if rep == nil {
			t.Fatal("RunCtx returned no report")
		}
		if err != nil {
			var te *parsim.TaskError
			if !errors.As(err, &te) {
				t.Fatalf("sweep failed with untyped error %v", err)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected failure lost its root cause: %v", err)
			}
			return
		}
		if !tolerate && rep.Completed != shards {
			t.Fatalf("nil error but only %d/%d shards completed", rep.Completed, shards)
		}
	})
}
