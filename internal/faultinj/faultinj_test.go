package faultinj

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/parsim"
	"repro/internal/pmu"
	"repro/internal/trace"
)

func TestPlanValidate(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	if err := (&Plan{}).Validate(); err != nil {
		t.Errorf("zero plan: %v", err)
	}
	ok := &Plan{Seed: 3, DropRate: 0.1, TruncateRate: 0.05, TruncateBurst: 4,
		CorruptRate: 1, PeriodSkew: 0.5, PanicRate: 0.2, ErrorRate: 0.1,
		SlowRate: 0.1, SlowDelay: time.Millisecond, FailAttempts: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("full plan: %v", err)
	}
	cases := []struct {
		name string
		plan Plan
		want error
	}{
		{"negative rate", Plan{DropRate: -0.1}, ErrBadRate},
		{"rate above one", Plan{PanicRate: 1.5}, ErrBadRate},
		{"NaN rate", Plan{ErrorRate: math.NaN()}, ErrBadRate},
		{"negative burst", Plan{TruncateBurst: -1}, ErrBadBurst},
		{"skew of one", Plan{PeriodSkew: 1}, ErrBadSkew},
		{"negative skew", Plan{PeriodSkew: -0.1}, ErrBadSkew},
		{"negative attempts", Plan{FailAttempts: -1}, ErrBadAttempts},
		{"negative delay", Plan{SlowDelay: -time.Second}, ErrBadDelay},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if p.Active() {
		t.Error("nil plan is Active")
	}
	if inj := p.Injector("k"); inj != nil {
		t.Errorf("nil plan returned injector %v", inj)
	}
	// A typed-nil *Injector stored in the interface must stay inert.
	var inj *Injector
	if got := inj.SkewPeriod(17); got != 17 {
		t.Errorf("nil injector skewed period to %d", got)
	}
	s := pmu.Sample{IP: 1, Addr: 2}
	if got, act := inj.OnSample(0, s); got != s || act != pmu.FaultKeep {
		t.Errorf("nil injector acted: %v, %v", got, act)
	}
	if f := p.Shard("k", 0); f.Panic || f.Err != nil || f.Slow != 0 {
		t.Errorf("nil plan injected shard fault %+v", f)
	}
}

// TestInjectorDeterminism: the same (plan, key) reproduces the exact fault
// sequence; a different key decorrelates it.
func TestInjectorDeterminism(t *testing.T) {
	plan := &Plan{Seed: 42, DropRate: 0.2, CorruptRate: 0.1, PeriodSkew: 0.3}
	run := func(key string) ([]pmu.FaultAction, []uint64) {
		inj := plan.Injector(key)
		acts := make([]pmu.FaultAction, 200)
		periods := make([]uint64, 50)
		for i := range acts {
			_, acts[i] = inj.OnSample(uint64(i), pmu.Sample{Addr: uint64(i) * 64})
		}
		for i := range periods {
			periods[i] = inj.SkewPeriod(1000)
		}
		return acts, periods
	}
	a1, p1 := run("faults/nw/thread/0")
	a2, p2 := run("faults/nw/thread/0")
	b, _ := run("faults/nw/thread/1")
	differs := false
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same key diverged at sample %d", i)
		}
		if a1[i] != b[i] {
			differs = true
		}
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same key diverged at period draw %d", i)
		}
	}
	if !differs {
		t.Error("distinct keys produced identical fault sequences")
	}
}

// TestInjectorRates: empirical fault fractions track the configured rates.
func TestInjectorRates(t *testing.T) {
	plan := &Plan{Seed: 7, DropRate: 0.15, CorruptRate: 0.1}
	inj := plan.Injector("rates")
	const n = 20000
	var drops, corrupts int
	for i := 0; i < n; i++ {
		_, act := inj.OnSample(uint64(i), pmu.Sample{})
		switch act {
		case pmu.FaultDrop:
			drops++
		case pmu.FaultCorrupt:
			corrupts++
		}
	}
	if got := float64(drops) / n; math.Abs(got-0.15) > 0.01 {
		t.Errorf("drop fraction %.3f, want ~0.15", got)
	}
	// Corruption is decided after the drop channel passes, so its observed
	// fraction is 0.1 of the survivors.
	if got := float64(corrupts) / n; math.Abs(got-0.1*(1-0.15)) > 0.01 {
		t.Errorf("corrupt fraction %.3f, want ~%.3f", got, 0.1*(1-0.15))
	}
}

// TestInjectorTruncationBursts: truncations come in whole bursts.
func TestInjectorTruncationBursts(t *testing.T) {
	plan := &Plan{Seed: 11, TruncateRate: 0.02, TruncateBurst: 5}
	inj := plan.Injector("bursts")
	run := 0
	var runs []int
	for i := 0; i < 5000; i++ {
		_, act := inj.OnSample(uint64(i), pmu.Sample{})
		if act == pmu.FaultTruncate {
			run++
			continue
		}
		if run > 0 {
			runs = append(runs, run)
			run = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no truncation bursts at 2% over 5000 samples")
	}
	for _, r := range runs {
		// A burst can only be ≥ the configured length (two bursts may
		// abut); shorter runs would mean truncation leaked sample-by-sample.
		if r < 5 {
			t.Errorf("truncation run of %d samples, want multiples of 5", r)
		}
	}
}

// TestInjectorCorruptMask: corruption rewrites the address with the mask.
func TestInjectorCorruptMask(t *testing.T) {
	plan := &Plan{Seed: 1, CorruptRate: 1}
	inj := plan.Injector("mask")
	s, act := inj.OnSample(0, pmu.Sample{Addr: 0xABCD00})
	if act != pmu.FaultCorrupt || s.Addr != 0xABCD00^DefaultCorruptMask {
		t.Errorf("got %v addr %#x, want corrupt with default mask", act, s.Addr)
	}
	plan2 := &Plan{Seed: 1, CorruptRate: 1, CorruptMask: 0xFF}
	s2, _ := plan2.Injector("mask").OnSample(0, pmu.Sample{Addr: 0xABCD00})
	if s2.Addr != 0xABCD00^0xFF {
		t.Errorf("custom mask: addr %#x", s2.Addr)
	}
}

// TestInjectorPeriodSkew: skewed periods stay within the configured band
// and at least one draw actually moves.
func TestInjectorPeriodSkew(t *testing.T) {
	plan := &Plan{Seed: 5, PeriodSkew: 0.25}
	inj := plan.Injector("skew")
	moved := false
	for i := 0; i < 1000; i++ {
		p := inj.SkewPeriod(1000)
		if p < 750 || p > 1250 {
			t.Fatalf("draw %d: period %d outside ±25%% of 1000", i, p)
		}
		if p != 1000 {
			moved = true
		}
	}
	if !moved {
		t.Error("skew never perturbed the period")
	}
	if p := (&Plan{Seed: 5, PeriodSkew: 0.9}).Injector("clamp").SkewPeriod(1); p < 1 {
		t.Errorf("skew produced period %d < 1", p)
	}
}

// TestShardFaultAttemptGate: a shard selected for failure fails exactly its
// first FailAttempts attempts, then succeeds; slowdowns persist.
func TestShardFaultAttemptGate(t *testing.T) {
	plan := &Plan{Seed: 9, PanicRate: 1, SlowRate: 1, SlowDelay: time.Microsecond, FailAttempts: 2}
	for attempt := 0; attempt < 4; attempt++ {
		f := plan.Shard("shard/0", attempt)
		if f.Slow != time.Microsecond {
			t.Errorf("attempt %d: Slow = %v", attempt, f.Slow)
		}
		wantFail := attempt < 2
		if f.Panic != wantFail {
			t.Errorf("attempt %d: Panic = %v, want %v", attempt, f.Panic, wantFail)
		}
	}
	errPlan := &Plan{Seed: 9, ErrorRate: 1}
	f := errPlan.Shard("shard/0", 0)
	if f.Err == nil || !errors.Is(f.Err, ErrInjected) {
		t.Errorf("injected error %v does not wrap ErrInjected", f.Err)
	}
	if f := errPlan.Shard("shard/0", 1); f.Err != nil {
		t.Errorf("default FailAttempts=1: attempt 1 still fails: %v", f.Err)
	}
}

// TestShardFaultApply: Apply panics or returns per the decision.
func TestShardFaultApply(t *testing.T) {
	if err := (ShardFault{}).Apply(); err != nil {
		t.Errorf("empty fault: %v", err)
	}
	werr := errors.New("x")
	if err := (ShardFault{Err: werr}).Apply(); err != werr {
		t.Errorf("error fault returned %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic fault did not panic")
			}
		}()
		_ = ShardFault{Panic: true, Err: werr}.Apply()
	}()
}

// TestPlanThroughSampler wires a Plan injector into a real pmu sampler and
// checks faults land in the typed counters, identically across runs.
func TestPlanThroughSampler(t *testing.T) {
	plan := &Plan{Seed: 21, DropRate: 0.2, CorruptRate: 0.05, PeriodSkew: 0.1}
	mk := func() *pmu.Sampler {
		return pmu.NewSampler(pmu.Config{
			Geom: mem.L1Default(), Period: pmu.Fixed(13), Seed: 4,
			Faults: plan.Injector("faults/test/thread/0"),
		})
	}
	a, b := mk(), mk()
	for i := 0; i < 20000; i++ {
		r := trace.Ref{IP: 0x1000, Addr: uint64(i) * 4096}
		a.Ref(r)
		b.Ref(r)
	}
	if a.FaultDropped == 0 || a.FaultCorrupted == 0 {
		t.Errorf("no faults recorded: dropped %d, corrupted %d", a.FaultDropped, a.FaultCorrupted)
	}
	if a.FaultDropped != b.FaultDropped || a.FaultCorrupted != b.FaultCorrupted ||
		len(a.Samples) != len(b.Samples) {
		t.Errorf("identical runs diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.FaultDropped, a.FaultCorrupted, len(a.Samples),
			b.FaultDropped, b.FaultCorrupted, len(b.Samples))
	}
}

// TestPlanThroughParsim runs a faulty sweep end-to-end: every injected
// panic/error recovers within one retry, results are complete, and the
// degraded-mode report is identical at any worker count.
func TestPlanThroughParsim(t *testing.T) {
	plan := &Plan{Seed: 33, PanicRate: 0.3, ErrorRate: 0.3}
	const n = 32
	type outcome struct {
		res []int
		rep *parsim.Report
	}
	run := func(workers int) outcome {
		res, rep, err := parsim.RunCtx(n, parsim.Options{Workers: workers, Retries: 1},
			func(ctx context.Context, i int) (int, error) {
				key := shardKey(i)
				if err := plan.Shard(key, parsim.Attempt(ctx)).Apply(); err != nil {
					return 0, err
				}
				return i * 3, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return outcome{res, rep}
	}
	one, eight := run(1), run(8)
	for i := range one.res {
		if one.res[i] != i*3 || eight.res[i] != i*3 {
			t.Errorf("result[%d] = %d / %d, want %d", i, one.res[i], eight.res[i], i*3)
		}
	}
	if one.rep.Retries == 0 {
		t.Error("plan with 30% panic + 30% error rates injected nothing over 32 shards")
	}
	if one.rep.Retries != eight.rep.Retries || one.rep.Panics != eight.rep.Panics {
		t.Errorf("degraded report depends on workers: -j1 %+v, -j8 %+v", one.rep, eight.rep)
	}
}

func shardKey(i int) string {
	return "faults/sweep/shard/" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}
