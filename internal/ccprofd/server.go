package ccprofd

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler mounts the job API and the obs surface on one mux:
//
//	POST /jobs             submit a Spec; 202 + job JSON, 400 invalid,
//	                       429 + Retry-After when the queue is full,
//	                       503 while draining
//	GET  /jobs             list all jobs
//	GET  /jobs/{id}        one job's status
//	GET  /jobs/{id}/result the artifact (verified against its sha256)
//	GET  /healthz          process liveness
//	GET  /readyz           admission readiness (503 while draining)
//	GET  /metrics          obs snapshot JSON (plus /debug/vars, /debug/pprof)
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", d.handleList)
	mux.HandleFunc("GET /jobs/{id}", d.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", d.handleResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if d.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	obsHandler := d.reg.Handler()
	mux.Handle("GET /metrics", obsHandler)
	mux.Handle("GET /debug/", obsHandler)
	return mux
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorJSON is the uniform error body.
func errorJSON(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		errorJSON(w, http.StatusBadRequest, "decoding job spec: "+err.Error())
		return
	}
	job, err := d.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		errorJSON(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		errorJSON(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrBadSpec):
		errorJSON(w, http.StatusBadRequest, err.Error())
	default:
		errorJSON(w, http.StatusInternalServerError, err.Error())
	}
}

func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, d.Jobs())
}

func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := d.Get(r.PathValue("id"))
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := d.Get(r.PathValue("id"))
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown job")
		return
	}
	switch job.State {
	case StateDone:
	case StateFailed:
		errorJSON(w, http.StatusConflict, "job failed ("+job.FailKind+"): "+job.Error)
		return
	default:
		errorJSON(w, http.StatusConflict, "job is "+string(job.State)+"; no result yet")
		return
	}
	data, err := d.Artifact(job)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrCorruptArtifact) {
			// Never serve bytes that fail verification; the hash in the
			// error tells the operator which file to inspect.
			errorJSON(w, status, err.Error())
			return
		}
		errorJSON(w, status, "reading artifact: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Artifact-Sha256", job.Artifact)
	w.Write(data)
}
