package ccprofd

import (
	"context"
	"strings"
	"testing"
)

func TestExecuteProfileIsDeterministic(t *testing.T) {
	spec := Spec{Kind: KindProfile, Workload: "nw"}
	a, err := executeSpec(context.Background(), spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := executeSpec(context.Background(), spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same spec and seed rendered different artifacts")
	}
	if !strings.Contains(string(a), "CCProf report for nw") {
		t.Fatalf("artifact missing report header:\n%s", a)
	}
	c, err := executeSpec(context.Background(), spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Fatal("different seeds rendered identical sample counts — seed not plumbed?")
	}
}

func TestExecuteProfileDegradedNote(t *testing.T) {
	spec := Spec{Kind: KindProfile, Workload: "nw", FaultDrop: 0.5, FaultSeed: 23}
	out, err := executeSpec(context.Background(), spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "degraded") {
		t.Fatalf("heavily dropped profile rendered no degraded note:\n%.300s", out)
	}
}

func TestExecuteAdvise(t *testing.T) {
	out, err := executeSpec(context.Background(), Spec{Kind: KindAdvise, Workload: "nw"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, "pad sweep for NW") || !strings.Contains(s, "recommended pad:") {
		t.Fatalf("advise artifact malformed:\n%s", s)
	}
	if strings.Contains(s, "workers") {
		t.Fatal("advise artifact leaks the worker count (config-dependent bytes)")
	}
}

func TestExecuteExperiment(t *testing.T) {
	out, err := executeSpec(context.Background(), Spec{Kind: KindExperiment, Experiment: "fig9", Quick: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "experiment fig9 (quick scale)") {
		t.Fatalf("experiment artifact malformed:\n%.300s", out)
	}
}

func TestExecuteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := executeSpec(ctx, Spec{Kind: KindProfile, Workload: "nw"}, 1); err == nil {
		t.Fatal("cancelled context still produced an artifact")
	}
}
