package ccprofd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is the daemon's durable job log: JSONL, one event per line,
// fsynced per event so an accepted job survives any crash after its 202
// reply. Replay is torn-line tolerant — a partial trailing line (the
// signature of a crash mid-append) is skipped, exactly like parsim
// checkpoints — and opening compacts the log to one entry per job via the
// same temp-file + fsync + atomic-rename dance, so the journal never
// grows without bound and a kill during compaction loses nothing.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool
}

// journalEntry is one persisted event. "submit" carries the full job (a
// compacted journal is nothing but submits in their terminal states);
// "done"/"failed" update an earlier submit by ID.
type journalEntry struct {
	Ev       string `json:"ev"`
	Job      *Job   `json:"job,omitempty"`
	ID       string `json:"id,omitempty"`
	Artifact string `json:"artifact,omitempty"`
	Error    string `json:"error,omitempty"`
	FailKind string `json:"fail_kind,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// journalTempPattern suffixes the in-progress compaction file.
const journalTempPattern = ".compact-*"

// ErrJournalClosed is returned by appends after Close; the caller keeps
// its in-memory state and the job simply re-runs on the next start.
var ErrJournalClosed = errors.New("ccprofd: journal closed")

// OpenJournal replays path, compacts it, reopens it for append, and
// returns the replayed jobs in submission order. Jobs that were queued or
// running when the previous process died come back as queued with Resumed
// set — the daemon re-enqueues them on Start.
func OpenJournal(path string) (*Journal, []*Job, error) {
	jobs, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	for _, j := range jobs {
		if j.State == StateRunning || j.State == StateQueued {
			j.State = StateQueued
			j.Resumed = true
		}
	}
	if err := compactJournal(path, jobs); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: f, path: path}, jobs, nil
}

// replayJournal loads every parsable event of a journal file. A missing
// file is an empty journal; malformed lines and updates for unknown IDs
// are skipped, not errors.
func replayJournal(path string) ([]*Job, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	byID := map[string]*Job{}
	var order []*Job
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		switch e.Ev {
		case "submit":
			if e.Job == nil || e.Job.ID == "" {
				continue
			}
			j := *e.Job
			if prev, ok := byID[j.ID]; ok {
				*prev = j
				continue
			}
			cp := j
			byID[cp.ID] = &cp
			order = append(order, &cp)
		case "done":
			if j, ok := byID[e.ID]; ok {
				j.State = StateDone
				j.Artifact = e.Artifact
				j.Attempts = e.Attempts
				j.Error, j.FailKind = "", ""
			}
		case "failed":
			if j, ok := byID[e.ID]; ok {
				j.State = StateFailed
				j.Error = e.Error
				j.FailKind = e.FailKind
				j.Attempts = e.Attempts
			}
		}
	}
	return order, sc.Err()
}

// compactJournal atomically rewrites the journal as one submit entry per
// job in its current state. A kill mid-compaction leaves the old file
// intact; orphaned temps from an earlier kill are swept first.
func compactJournal(path string, jobs []*Job) error {
	if stale, err := filepath.Glob(path + journalTempPattern); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+journalTempPattern)
	if err != nil {
		return err
	}
	discard := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	for _, j := range jobs {
		line, err := encodeJournalEntry(journalEntry{Ev: "submit", Job: j})
		if err != nil {
			discard()
			return err
		}
		if _, err := tmp.Write(line); err != nil {
			discard()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		discard()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncStoreDir(dir)
	return nil
}

// encodeJournalEntry renders one JSONL event plus newline.
func encodeJournalEntry(e journalEntry) ([]byte, error) {
	line, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("ccprofd: encoding journal event: %w", err)
	}
	return append(line, '\n'), nil
}

// append writes one event and fsyncs it. Events are per job-transition
// (not per sample), so a syscall each is cheap for what it buys.
func (j *Journal) append(e journalEntry) error {
	line, err := encodeJournalEntry(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// Submit records an accepted job. It must succeed before the job is
// acknowledged: the 202 reply is the durability promise.
func (j *Journal) Submit(job *Job) error {
	return j.append(journalEntry{Ev: "submit", Job: job})
}

// Done records a completed job and its artifact hash.
func (j *Journal) Done(id, artifact string, attempts int) error {
	return j.append(journalEntry{Ev: "done", ID: id, Artifact: artifact, Attempts: attempts})
}

// Failed records a job that exhausted its attempts.
func (j *Journal) Failed(id, errMsg, kind string, attempts int) error {
	return j.append(journalEntry{Ev: "failed", ID: id, Error: errMsg, FailKind: kind, Attempts: attempts})
}

// Close releases the file; later appends return ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	j.f.Sync()
	return j.f.Close()
}
