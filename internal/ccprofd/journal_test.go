package ccprofd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestJournal(t *testing.T, path string) (*Journal, []*Job) {
	t.Helper()
	j, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, jobs
}

func TestJournalReplayLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, jobs := openTestJournal(t, path)
	if len(jobs) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(jobs))
	}
	a := &Job{ID: "j000000", Seq: 0, Spec: Spec{Kind: KindProfile, Workload: "nw"}, State: StateQueued}
	b := &Job{ID: "j000001", Seq: 1, Spec: Spec{Kind: KindExperiment, Experiment: "fig9"}, State: StateQueued}
	for _, job := range []*Job{a, b} {
		if err := j.Submit(job); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Done(a.ID, "abc123", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Failed(b.ID, "boom", "panic", 3); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, replayed := openTestJournal(t, path)
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replayed))
	}
	ra, rb := replayed[0], replayed[1]
	if ra.State != StateDone || ra.Artifact != "abc123" || ra.Attempts != 2 {
		t.Fatalf("job a replayed as %+v", ra)
	}
	if rb.State != StateFailed || rb.Error != "boom" || rb.FailKind != "panic" || rb.Attempts != 3 {
		t.Fatalf("job b replayed as %+v", rb)
	}
}

func TestJournalTornLineAndUnfinishedResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _ := openTestJournal(t, path)
	queued := &Job{ID: "j000000", Spec: Spec{Kind: KindProfile, Workload: "nw"}, State: StateQueued}
	running := &Job{ID: "j000001", Spec: Spec{Kind: KindProfile, Workload: "adi"}, State: StateRunning}
	for _, job := range []*Job{queued, running} {
		if err := j.Submit(job); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate a crash mid-append: torn trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"ev":"done","id":"j0000`)
	f.Close()

	_, replayed := openTestJournal(t, path)
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2 (torn line must not eat entries)", len(replayed))
	}
	for _, job := range replayed {
		if job.State != StateQueued || !job.Resumed {
			t.Fatalf("unfinished job replayed as %+v, want queued+resumed", job)
		}
	}
}

func TestJournalCompactsOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _ := openTestJournal(t, path)
	job := &Job{ID: "j000000", Spec: Spec{Kind: KindProfile, Workload: "nw"}, State: StateQueued}
	if err := j.Submit(job); err != nil {
		t.Fatal(err)
	}
	if err := j.Done(job.ID, "feed", 1); err != nil {
		t.Fatal(err)
	}
	j.Close()
	before, _ := os.ReadFile(path)
	if n := strings.Count(string(before), "\n"); n != 2 {
		t.Fatalf("pre-compaction journal has %d lines, want 2", n)
	}

	_, replayed := openTestJournal(t, path)
	after, _ := os.ReadFile(path)
	if n := strings.Count(string(after), "\n"); n != 1 {
		t.Fatalf("compacted journal has %d lines, want 1:\n%s", n, after)
	}
	if len(replayed) != 1 || replayed[0].State != StateDone || replayed[0].Artifact != "feed" {
		t.Fatalf("post-compaction replay = %+v", replayed)
	}
	if temps, _ := filepath.Glob(path + journalTempPattern); len(temps) != 0 {
		t.Fatalf("compaction temps left behind: %v", temps)
	}
}

func TestJournalAppendAfterCloseFailsSoftly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Done("j000000", "x", 1); err != ErrJournalClosed {
		t.Fatalf("append after close = %v, want ErrJournalClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}
