package ccprofd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// newTestDaemon builds and starts a daemon over dir, wired to an
// httptest server, and drains both on cleanup.
func newTestDaemon(t *testing.T, dir string, opts Options) (*Daemon, *httptest.Server) {
	t.Helper()
	opts.DataDir = dir
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Drain()
	})
	return d, srv
}

// postJob submits a spec and returns the decoded response and status.
func postJob(t *testing.T, url string, spec Spec) (Job, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	}
	return job, resp.StatusCode
}

// waitTerminal polls a job until done/failed.
func waitTerminal(t *testing.T, url, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if job.State == StateDone || job.State == StateFailed {
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Job{}
}

// getResult fetches a job's artifact; returns body and status.
func getResult(t *testing.T, url, id string) (string, int) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return b.String(), resp.StatusCode
}

func TestDaemonJobLifecycle(t *testing.T) {
	d, srv := newTestDaemon(t, t.TempDir(), Options{Workers: 2})
	job, status := postJob(t, srv.URL, Spec{Kind: KindProfile, Workload: "nw"})
	if status != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", status)
	}
	if job.ID == "" || job.State != StateQueued {
		t.Fatalf("accepted job = %+v", job)
	}
	done := waitTerminal(t, srv.URL, job.ID)
	if done.State != StateDone || done.Artifact == "" {
		t.Fatalf("job finished as %+v", done)
	}
	body, status := getResult(t, srv.URL, job.ID)
	if status != http.StatusOK {
		t.Fatalf("GET result: status %d, body %s", status, body)
	}
	if !strings.Contains(body, "CCProf report for nw") || !strings.Contains(body, "CONFLICT MISSES DETECTED") {
		t.Fatalf("artifact missing the conflict report:\n%s", body)
	}
	// The artifact hash must be visible and verifiable via the store.
	if got, err := d.store.Get(done.Artifact); err != nil || string(got) != body {
		t.Fatalf("store.Get(%s) = %v; artifact mismatch", done.Artifact, err)
	}

	// Liveness, readiness and the obs surface live on the same mux.
	for path, want := range map[string]string{
		"/healthz": "ok",
		"/readyz":  "ready",
		"/metrics": "ccprofd.jobs_submitted",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(b.String(), want) {
			t.Errorf("GET %s: status %d, body %.200s", path, resp.StatusCode, b.String())
		}
	}
}

func TestDaemonValidationAndLookups(t *testing.T) {
	_, srv := newTestDaemon(t, t.TempDir(), Options{})
	for name, spec := range map[string]Spec{
		"unknown kind":       {Kind: "bake"},
		"missing workload":   {Kind: KindProfile},
		"unknown workload":   {Kind: KindProfile, Workload: "doom"},
		"bad variant":        {Kind: KindProfile, Workload: "nw", Variant: "debug"},
		"unknown experiment": {Kind: KindExperiment, Experiment: "fig99"},
		"negative threads":   {Kind: KindProfile, Workload: "nw", Threads: -1},
		"bad fault rate":     {Kind: KindProfile, Workload: "nw", FaultDrop: 1.5},
	} {
		if _, status := postJob(t, srv.URL, spec); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
	// Unknown field in the body is a 400, not silently ignored.
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"profile","workload":"nw","wrokload":"typo"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown JSON field: status %d, want 400", resp.StatusCode)
	}
	// Unknown job and premature result.
	if _, status := getResult(t, srv.URL, "j999999"); status != http.StatusNotFound {
		t.Errorf("result of unknown job: status %d, want 404", status)
	}
}

func TestDaemonBackpressure(t *testing.T) {
	d, srv := newTestDaemon(t, t.TempDir(), Options{Workers: 1, QueueCap: 1})
	// One slow job occupies the worker, one fills the queue, the third
	// must bounce with 429 + Retry-After.
	slow := Spec{Kind: KindProfile, Workload: "nw", FaultSlowMS: 400}
	if _, status := postJob(t, srv.URL, slow); status != http.StatusAccepted {
		t.Fatalf("first job: status %d", status)
	}
	// Wait until the worker picked up the first job, so the queue slot
	// is genuinely free for the second.
	deadline := time.Now().Add(5 * time.Second)
	for d.inflight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, status := postJob(t, srv.URL, slow); status != http.StatusAccepted {
		t.Fatalf("second job: status %d", status)
	}
	body, _ := json.Marshal(slow)
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The rejection is visible on /metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	b.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(b.String(), "ccprofd.jobs_rejected") {
		t.Fatalf("metrics missing rejection counter: %.300s", b.String())
	}
}

func TestDaemonPanicContainment(t *testing.T) {
	_, srv := newTestDaemon(t, t.TempDir(), Options{Retries: 0})
	// FaultPanic 1 selects every shard; with no retries the job must
	// fail typed as a panic — and the daemon must survive it.
	job, status := postJob(t, srv.URL, Spec{Kind: KindProfile, Workload: "nw", FaultPanic: 1})
	if status != http.StatusAccepted {
		t.Fatalf("POST: status %d", status)
	}
	failed := waitTerminal(t, srv.URL, job.ID)
	if failed.State != StateFailed || failed.FailKind != "panic" {
		t.Fatalf("panicking job finished as %+v, want failed/panic", failed)
	}
	if !strings.Contains(failed.Error, "injected") {
		t.Fatalf("failure error = %q, want the injected panic", failed.Error)
	}
	if _, status := getResult(t, srv.URL, job.ID); status != http.StatusConflict {
		t.Fatalf("result of failed job: status %d, want 409", status)
	}
	// The daemon still accepts and completes work afterwards.
	next, status := postJob(t, srv.URL, Spec{Kind: KindProfile, Workload: "nw"})
	if status != http.StatusAccepted {
		t.Fatalf("post-panic POST: status %d", status)
	}
	if done := waitTerminal(t, srv.URL, next.ID); done.State != StateDone {
		t.Fatalf("post-panic job = %+v", done)
	}
}

func TestDaemonRetryRecoversInjectedPanic(t *testing.T) {
	_, srv := newTestDaemon(t, t.TempDir(), Options{Retries: 1})
	// FailAttempts defaults to 1: the first attempt panics, the retry
	// succeeds, and the report carries the recovery.
	job, status := postJob(t, srv.URL, Spec{Kind: KindProfile, Workload: "nw", FaultPanic: 1})
	if status != http.StatusAccepted {
		t.Fatalf("POST: status %d", status)
	}
	done := waitTerminal(t, srv.URL, job.ID)
	if done.State != StateDone {
		t.Fatalf("job = %+v, want done after retry", done)
	}
	if done.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (panic + successful retry)", done.Attempts)
	}
}

func TestDaemonDrainRefusesAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	// Reference artifacts from an uninterrupted daemon.
	specs := []Spec{
		{Kind: KindProfile, Workload: "nw"},
		{Kind: KindProfile, Workload: "adi", Variant: "optimized"},
		{Kind: KindExperiment, Experiment: "fig9", Quick: true},
	}
	want := map[int]string{}
	{
		_, srv := newTestDaemon(t, t.TempDir(), Options{Workers: 1})
		for i, spec := range specs {
			job, status := postJob(t, srv.URL, spec)
			if status != http.StatusAccepted {
				t.Fatalf("reference job %d: status %d", i, status)
			}
			done := waitTerminal(t, srv.URL, job.ID)
			if done.State != StateDone {
				t.Fatalf("reference job %d = %+v", i, done)
			}
			body, _ := getResult(t, srv.URL, job.ID)
			want[i] = body
		}
	}

	// Interrupted daemon: submit all three, drain while the backlog is
	// still queued, restart, and expect byte-identical artifacts.
	d, err := New(Options{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	ids := make([]string, len(specs))
	for i, spec := range specs {
		job, status := postJob(t, srv.URL, spec)
		if status != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, status)
		}
		ids[i] = job.ID
	}
	d.Drain()
	// Draining refuses new submissions and readiness.
	if _, status := postJob(t, srv.URL, specs[0]); status != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: status %d, want 503", status)
	}
	if resp, err := http.Get(srv.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz while draining: status %d, want 503", resp.StatusCode)
		}
	}
	srv.Close()
	if d.Unfinished() == 0 {
		t.Fatal("drain left no unfinished jobs; the interruption tested nothing")
	}

	d2, srv2 := newTestDaemon(t, dir, Options{Workers: 2})
	resumed := d2.Jobs()
	if len(resumed) != len(specs) {
		t.Fatalf("restart replayed %d jobs, want %d", len(resumed), len(specs))
	}
	for i, id := range ids {
		done := waitTerminal(t, srv2.URL, id)
		if done.State != StateDone {
			t.Fatalf("resumed job %s = %+v", id, done)
		}
		body, status := getResult(t, srv2.URL, id)
		if status != http.StatusOK {
			t.Fatalf("resumed result %s: status %d", id, status)
		}
		if body != want[i] {
			t.Errorf("resumed artifact %d differs from the clean run:\n--- clean ---\n%s\n--- resumed ---\n%s", i, want[i], body)
		}
	}
}

func TestDaemonServesNothingCorrupt(t *testing.T) {
	d, srv := newTestDaemon(t, t.TempDir(), Options{})
	job, _ := postJob(t, srv.URL, Spec{Kind: KindProfile, Workload: "nw"})
	done := waitTerminal(t, srv.URL, job.ID)
	// Corrupt the stored artifact out of band.
	path := d.store.Path(done.Artifact)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	body, status := getResult(t, srv.URL, job.ID)
	if status == http.StatusOK {
		t.Fatalf("corrupted artifact served with 200:\n%s", body)
	}
	if !strings.Contains(body, "verification") {
		t.Fatalf("corruption error body = %q, want a verification failure", body)
	}
}

func TestDaemonDerivedSeedsDifferPerJob(t *testing.T) {
	_, srv := newTestDaemon(t, t.TempDir(), Options{Workers: 2})
	// Two identical specs get different derived seeds (different IDs),
	// but both must produce valid reports; pinned seeds collapse to the
	// same artifact.
	pinned := Spec{Kind: KindProfile, Workload: "nw", Seed: 7}
	var hashes []string
	for i := 0; i < 2; i++ {
		job, status := postJob(t, srv.URL, pinned)
		if status != http.StatusAccepted {
			t.Fatalf("pinned job %d: status %d", i, status)
		}
		done := waitTerminal(t, srv.URL, job.ID)
		if done.State != StateDone {
			t.Fatalf("pinned job %d = %+v", i, done)
		}
		hashes = append(hashes, done.Artifact)
	}
	if hashes[0] != hashes[1] {
		t.Fatalf("same pinned seed produced different artifacts: %v", hashes)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted an empty DataDir")
	}
	if _, err := New(Options{DataDir: t.TempDir(), QueueCap: -1}); err == nil {
		t.Fatal("New accepted a negative queue capacity")
	}
	if _, err := New(Options{DataDir: t.TempDir(), Retries: -1}); err == nil {
		t.Fatal("New accepted negative retries")
	}
}

func TestJobSeedDerivation(t *testing.T) {
	a := &Job{ID: "j000000"}
	b := &Job{ID: "j000001"}
	if a.seed(1) == b.seed(1) {
		t.Fatal("different job IDs derived the same seed")
	}
	if a.seed(1) == a.seed(2) {
		t.Fatal("different root seeds derived the same job seed")
	}
	pinned := &Job{ID: "j000002", Spec: Spec{Seed: 42}}
	if pinned.seed(1) != 42 {
		t.Fatalf("pinned seed ignored: %d", pinned.seed(1))
	}
	if fmt.Sprintf("j%06d", 3) != "j000003" {
		t.Fatal("job ID format drifted")
	}
}
