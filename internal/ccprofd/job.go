// Package ccprofd turns the ccprof pipeline into a crash-safe
// profiling-as-a-service daemon: an HTTP job server that accepts
// profiling, advisor and experiment jobs, schedules them onto the parsim
// executor with per-job derived seeds, and persists every accepted job to
// a durable journal plus a content-addressed artifact store.
//
// The durability contract mirrors the parsim checkpoint rules:
//
//   - Every accepted job is journaled (JSONL, fsync per event) before the
//     202 reply, so a crash never forgets an accepted job.
//   - Job execution runs under a per-job parsim checkpoint, so a crash
//     mid-job resumes the finished work byte-identically on restart.
//   - Artifacts are stored under their sha256 (temp file + fsync + atomic
//     rename) and re-hashed on every read, so a torn write can never be
//     served and silent corruption is detected, not returned.
//
// Determinism: a job's effective seed is derived from the daemon root seed
// and the job ID, job IDs are sequential, and all profiling runs with
// NoTime set — so the same submission order yields byte-identical
// artifacts whether the daemon ran clean or was killed and resumed.
package ccprofd

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultinj"
	"repro/internal/parsim"
	"repro/internal/workloads"
)

// Kind selects what a job runs.
type Kind string

const (
	// KindProfile profiles one workload variant and renders the ccprof
	// conflict report.
	KindProfile Kind = "profile"
	// KindAdvise runs the tiered pad-advisor sweep for a workload.
	KindAdvise Kind = "advise"
	// KindExperiment runs one named paper experiment.
	KindExperiment Kind = "experiment"
)

// Spec is a job submission — the JSON body of POST /jobs.
type Spec struct {
	Kind Kind `json:"kind"`

	// Workload names the case study for profile and advise jobs.
	Workload string `json:"workload,omitempty"`
	// Variant selects the build for profile jobs: "original" (default)
	// or "optimized".
	Variant string `json:"variant,omitempty"`
	// Period overrides the workload's recommended mean sampling period.
	Period uint64 `json:"period,omitempty"`
	// Threshold overrides the short-RCD threshold T (0 = default).
	Threshold int `json:"threshold,omitempty"`
	// Threads is the simulated thread count for profile jobs (0 = 1).
	Threads int `json:"threads,omitempty"`
	// Seed pins the sampling seed; 0 derives one from the daemon root
	// seed and the job ID.
	Seed int64 `json:"seed,omitempty"`

	// Experiment names the figure/table runner for experiment jobs.
	Experiment string `json:"experiment,omitempty"`
	// Quick runs the experiment at reduced scale.
	Quick bool `json:"quick,omitempty"`

	// DeadlineMS overrides the daemon's per-job deadline (0 = daemon
	// default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Fault fields attach a deterministic faultinj plan to the job, for
	// chaos testing the daemon itself: drops degrade the profile,
	// panics/slowness exercise the containment and retry machinery.
	FaultDrop   float64 `json:"fault_drop,omitempty"`
	FaultPanic  float64 `json:"fault_panic,omitempty"`
	FaultSlowMS int64   `json:"fault_slow_ms,omitempty"`
	FaultSeed   int64   `json:"fault_seed,omitempty"`
}

// ErrBadSpec tags every validation failure of a submitted spec.
var ErrBadSpec = errors.New("ccprofd: invalid job spec")

// Validate rejects malformed specs up front, so the queue and journal
// only ever hold runnable jobs.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindProfile, KindAdvise:
		if s.Workload == "" {
			return fmt.Errorf("%w: %q jobs need a workload", ErrBadSpec, s.Kind)
		}
		cs, err := workloads.Get(s.Workload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		switch s.Variant {
		case "", "original", "optimized":
		default:
			return fmt.Errorf("%w: unknown variant %q", ErrBadSpec, s.Variant)
		}
		if s.Kind == KindAdvise && cs.PadBuilder == nil {
			return fmt.Errorf("%w: %s has no pad builder (its fix is not a row pad)", ErrBadSpec, cs.Name)
		}
	case KindExperiment:
		if s.Experiment == "" {
			return fmt.Errorf("%w: experiment jobs need an experiment name", ErrBadSpec)
		}
		if _, ok := experiments.Registry()[s.Experiment]; !ok {
			return fmt.Errorf("%w: unknown experiment %q (known: %v)", ErrBadSpec, s.Experiment, experiments.Names())
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadSpec, s.Kind)
	}
	if s.Threshold < 0 || s.Threads < 0 || s.DeadlineMS < 0 || s.FaultSlowMS < 0 {
		return fmt.Errorf("%w: negative threshold/threads/deadline/slow", ErrBadSpec)
	}
	if p := s.plan(1); p != nil {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	return nil
}

// plan builds the job's deterministic fault plan; nil when the spec
// injects no faults. seed roots the plan when the spec does not pin
// FaultSeed, so derived-seed jobs get derived fault streams too.
func (s *Spec) plan(seed int64) *faultinj.Plan {
	if s.FaultDrop == 0 && s.FaultPanic == 0 && s.FaultSlowMS == 0 {
		return nil
	}
	p := &faultinj.Plan{
		Seed:      s.FaultSeed,
		DropRate:  s.FaultDrop,
		PanicRate: s.FaultPanic,
	}
	if p.Seed == 0 {
		p.Seed = seed
	}
	if s.FaultSlowMS > 0 {
		p.SlowRate = 1
		p.SlowDelay = time.Duration(s.FaultSlowMS) * time.Millisecond
	}
	return p
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Job is one accepted submission and its progress. The whole struct
// round-trips through the journal.
type Job struct {
	// ID is the sequential job name ("j000001", ...). Sequential IDs make
	// derived seeds a function of submission order alone, which is what
	// lets a resumed daemon reproduce a clean run byte-identically.
	ID   string `json:"id"`
	Seq  uint64 `json:"seq"`
	Spec Spec   `json:"spec"`

	State State `json:"state"`
	// Error and FailKind describe a failed job: the final attempt's error
	// and its parsim kind (error, panic, timeout).
	Error    string `json:"error,omitempty"`
	FailKind string `json:"fail_kind,omitempty"`
	// Artifact is the sha256 of the result in the artifact store, set
	// when State is done.
	Artifact string `json:"artifact,omitempty"`
	// Attempts counts execution attempts (1 = no retries needed).
	Attempts int `json:"attempts,omitempty"`
	// Resumed marks a job re-enqueued from the journal after a restart.
	Resumed bool `json:"resumed,omitempty"`
}

// shardKey is the job's stable faultinj/seed-derivation key.
func (j *Job) shardKey() string { return "ccprofd/job/" + j.ID }

// seed resolves the job's effective sampling seed: the spec's when
// pinned, else derived from the daemon root seed and the job ID.
func (j *Job) seed(root int64) int64 {
	if j.Spec.Seed != 0 {
		return j.Spec.Seed
	}
	return parsim.DeriveSeed(root, j.shardKey())
}
