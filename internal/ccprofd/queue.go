package ccprofd

import "repro/internal/obs"

// queue is the bounded admission queue. Admission control is the
// daemon's backpressure valve: when the channel is full, submissions are
// rejected with 429 instead of buffering without bound.
//
// Admissions serialize under the daemon mutex and workers only ever
// shrink the channel, so "len < cap, then send" cannot block.
type queue struct {
	ch       chan *Job
	depth    *obs.Gauge
	rejected *obs.Counter
}

func newQueue(capacity int, reg *obs.Registry) *queue {
	return &queue{
		ch:       make(chan *Job, capacity),
		depth:    reg.Gauge("ccprofd.queue_depth"),
		rejected: reg.Counter("ccprofd.jobs_rejected"),
	}
}

// full reports whether admission would exceed the bound; the caller
// counts the rejection.
func (q *queue) full() bool { return len(q.ch) == cap(q.ch) }

// put enqueues a job; the caller must hold the admission lock and have
// checked full (or, on the restart path, be feeding an empty queue whose
// workers are already draining it).
func (q *queue) put(j *Job) {
	q.ch <- j
	q.depth.Set(int64(len(q.ch)))
}

// reject counts one refused admission.
func (q *queue) reject() { q.rejected.Inc() }

// take is the worker side: receive one job and republish the depth.
func (q *queue) note() { q.depth.Set(int64(len(q.ch))) }
