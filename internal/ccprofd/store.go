package ccprofd

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is a crash-safe content-addressed artifact store: each artifact
// lives at <dir>/<sha256 hex of its bytes>.
//
// Durability rules:
//
//   - Put writes to a temp file in the same directory, fsyncs it, and
//     renames it into place, so a kill at any instant leaves either no
//     entry or a complete one — never a torn artifact.
//   - Get re-hashes what it reads and refuses to return bytes whose hash
//     does not match the name, so even out-of-band corruption (a flipped
//     bit on disk) is detected, not served.
//   - Content addressing makes Put idempotent: re-running a job after a
//     crash re-produces the same bytes and lands on the same name.
type Store struct {
	dir string
}

// ErrCorruptArtifact marks a stored artifact whose bytes no longer hash
// to its name.
var ErrCorruptArtifact = errors.New("ccprofd: artifact failed sha256 verification")

// storeTempPattern names in-progress writes; they hold nothing durable.
const storeTempPattern = ".put-*"

// OpenStore opens (creating if needed) the artifact directory and sweeps
// up temp files a killed predecessor left behind.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if stale, err := filepath.Glob(filepath.Join(dir, storeTempPattern)); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	return &Store{dir: dir}, nil
}

// Put stores data under its sha256 and returns the hex hash. Writing the
// same content twice is harmless: the second rename atomically replaces
// an identical file.
func (s *Store) Put(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	tmp, err := os.CreateTemp(s.dir, storeTempPattern)
	if err != nil {
		return "", err
	}
	discard := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	if _, err := tmp.Write(data); err != nil {
		discard()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		discard()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), s.Path(hash)); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	syncStoreDir(s.dir)
	return hash, nil
}

// Get returns the artifact stored under hash after verifying that its
// bytes still hash to that name. A mismatch returns ErrCorruptArtifact.
func (s *Store) Get(hash string) ([]byte, error) {
	if !validHash(hash) {
		return nil, fmt.Errorf("ccprofd: malformed artifact hash %q", hash)
	}
	data, err := os.ReadFile(s.Path(hash))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != hash {
		return nil, fmt.Errorf("%w: %s", ErrCorruptArtifact, hash)
	}
	return data, nil
}

// Path returns the on-disk location of an artifact; tests use it to
// corrupt stored bytes deliberately.
func (s *Store) Path(hash string) string { return filepath.Join(s.dir, hash) }

// validHash accepts exactly a lowercase sha256 hex string, which also
// keeps request-supplied hashes from traversing out of the store dir.
func validHash(h string) bool {
	if len(h) != sha256.Size*2 {
		return false
	}
	return strings.IndexFunc(h, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}

// syncStoreDir fsyncs the store directory so a just-renamed artifact's
// entry is durable. Best-effort, like parsim's checkpoint rename.
func syncStoreDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
