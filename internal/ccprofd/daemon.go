package ccprofd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/parsim"
)

// Options configures a Daemon.
type Options struct {
	// DataDir holds the daemon's durable state: jobs.journal, store/ and
	// ck/. Required. A restart pointed at the same dir resumes every
	// accepted-but-unfinished job.
	DataDir string
	// QueueCap bounds the admission queue (default 64). A full queue
	// rejects submissions with 429 — backpressure, not buffering.
	QueueCap int
	// Workers is the number of jobs executed concurrently (default 1;
	// per-job determinism never depends on it).
	Workers int
	// Retries re-runs a failed job attempt, containing worker panics and
	// injected faults (default 1).
	Retries int
	// Deadline is the default per-job attempt watchdog (0 = none); a
	// spec's deadline_ms overrides it per job.
	Deadline time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight jobs before
	// hard-cancelling them (default 10s). Queued and cancelled jobs stay
	// journaled and resume on the next start.
	DrainTimeout time.Duration
	// Seed is the root from which per-job seeds are derived (default 1).
	Seed int64
	// Logf receives operational messages (default: discarded).
	Logf func(format string, args ...any)
}

func (o *Options) defaults() error {
	if o.DataDir == "" {
		return errors.New("ccprofd: Options.DataDir is required")
	}
	if o.QueueCap == 0 {
		o.QueueCap = 64
	}
	if o.QueueCap < 0 {
		return fmt.Errorf("ccprofd: invalid queue capacity %d", o.QueueCap)
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Retries < 0 {
		return fmt.Errorf("ccprofd: invalid retries %d", o.Retries)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// jobResult is what round-trips through a job's parsim checkpoint: the
// rendered artifact. Restoring it after a crash skips re-execution and
// reproduces the artifact byte-identically by construction.
type jobResult struct {
	Report string `json:"report"`
}

// Daemon schedules accepted jobs onto a bounded worker pool and owns the
// journal, artifact store and per-job checkpoints. Create with New, wire
// its Handler into an http.Server, call Start, and Drain on shutdown.
type Daemon struct {
	opts    Options
	reg     *obs.Registry
	store   *Store
	journal *Journal
	ckDir   string
	queue   *queue

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []*Job
	nextSeq uint64

	draining   atomic.Bool
	drainCh    chan struct{}
	hardCtx    context.Context
	hardCancel context.CancelFunc
	wg         sync.WaitGroup

	inflight  *obs.Gauge
	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
}

// New opens the data directory, replays the journal, and prepares (but
// does not start) the daemon. Jobs left unfinished by a previous process
// are re-enqueued when Start runs.
func New(opts Options) (*Daemon, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	ckDir := filepath.Join(opts.DataDir, "ck")
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		return nil, err
	}
	store, err := OpenStore(filepath.Join(opts.DataDir, "store"))
	if err != nil {
		return nil, err
	}
	journal, replayed, err := OpenJournal(filepath.Join(opts.DataDir, "jobs.journal"))
	if err != nil {
		return nil, err
	}
	reg := obs.Default
	hardCtx, hardCancel := context.WithCancel(context.Background())
	d := &Daemon{
		opts:       opts,
		reg:        reg,
		store:      store,
		journal:    journal,
		ckDir:      ckDir,
		queue:      newQueue(opts.QueueCap, reg),
		jobs:       map[string]*Job{},
		drainCh:    make(chan struct{}),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
		inflight:   reg.Gauge("ccprofd.jobs_inflight"),
		submitted:  reg.Counter("ccprofd.jobs_submitted"),
		completed:  reg.Counter("ccprofd.jobs_completed"),
		failed:     reg.Counter("ccprofd.jobs_failed"),
	}
	for _, j := range replayed {
		d.jobs[j.ID] = j
		d.order = append(d.order, j)
		if j.Seq >= d.nextSeq {
			d.nextSeq = j.Seq + 1
		}
	}
	return d, nil
}

// Start launches the worker pool and re-enqueues every journaled job that
// never reached a terminal state. Restart feeding happens after the
// workers are running, so a backlog larger than the queue drains through
// it rather than deadlocking.
func (d *Daemon) Start() {
	for i := 0; i < d.opts.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	d.mu.Lock()
	var resume []*Job
	for _, j := range d.order {
		if j.State == StateQueued {
			resume = append(resume, j)
		}
	}
	d.mu.Unlock()
	for _, j := range resume {
		d.queue.put(j)
		d.opts.Logf("ccprofd: resuming job %s (%s)", j.ID, j.Spec.Kind)
	}
}

// worker pulls jobs until drain. The pre-check keeps a draining worker
// from grabbing one more queued job when both channels are ready.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		select {
		case <-d.drainCh:
			return
		default:
		}
		select {
		case <-d.drainCh:
			return
		case j := <-d.queue.ch:
			d.queue.note()
			d.runJob(j)
		}
	}
}

// runJob executes one job under parsim with a per-job checkpoint: panics
// are contained, retries re-attempt injected and transient failures, and
// a crash mid-job leaves a checkpoint the restarted daemon restores
// instead of re-executing.
func (d *Daemon) runJob(job *Job) {
	d.setState(job, StateRunning)
	d.inflight.Add(1)
	defer d.inflight.Add(-1)

	seed := job.seed(d.opts.Seed)
	deadline := d.opts.Deadline
	if ms := job.Spec.DeadlineMS; ms > 0 {
		deadline = time.Duration(ms) * time.Millisecond
	}
	ckPath := filepath.Join(d.ckDir, job.ID+".ckpt")
	res, rep, err := parsim.RunCtx(1, parsim.Options{
		Workers:    1,
		Retries:    d.opts.Retries,
		Deadline:   deadline,
		Checkpoint: &parsim.Checkpoint{Path: ckPath, Resume: true},
	}, func(ctx context.Context, _ int) (jobResult, error) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		stop := context.AfterFunc(d.hardCtx, cancel)
		defer stop()
		if err := job.Spec.plan(seed).Shard(job.shardKey(), parsim.Attempt(ctx)).Apply(); err != nil {
			return jobResult{}, err
		}
		out, err := executeSpec(ctx, job.Spec, seed)
		if err != nil {
			return jobResult{}, err
		}
		return jobResult{Report: string(out)}, nil
	})

	attempts := 1 + rep.Retries
	if err != nil {
		d.finishFailed(job, err, attempts)
		os.Remove(ckPath)
		return
	}
	hash, err := d.store.Put([]byte(res[0].Report))
	if err != nil {
		d.finishFailed(job, fmt.Errorf("storing artifact: %w", err), attempts)
		return
	}
	if err := d.journal.Done(job.ID, hash, attempts); err != nil {
		// The artifact is durable and Put is idempotent: losing the
		// journal event only means the job re-runs to the same bytes on
		// the next start.
		d.opts.Logf("ccprofd: journaling completion of %s: %v", job.ID, err)
	}
	os.Remove(ckPath)
	d.mu.Lock()
	job.State = StateDone
	job.Artifact = hash
	job.Attempts = attempts
	d.mu.Unlock()
	d.completed.Inc()
	d.opts.Logf("ccprofd: job %s done (%d attempt(s), artifact %.12s…)", job.ID, attempts, hash)
}

// finishFailed records a terminal failure with its parsim error kind.
func (d *Daemon) finishFailed(job *Job, err error, attempts int) {
	kind := parsim.KindError.String()
	var se *parsim.ShardError
	if errors.As(err, &se) {
		kind = se.Kind.String()
		attempts = se.Attempts
	}
	if jerr := d.journal.Failed(job.ID, err.Error(), kind, attempts); jerr != nil {
		d.opts.Logf("ccprofd: journaling failure of %s: %v", job.ID, jerr)
	}
	d.mu.Lock()
	job.State = StateFailed
	job.Error = err.Error()
	job.FailKind = kind
	job.Attempts = attempts
	d.mu.Unlock()
	d.failed.Inc()
	d.opts.Logf("ccprofd: job %s failed (%s): %v", job.ID, kind, err)
}

func (d *Daemon) setState(job *Job, s State) {
	d.mu.Lock()
	job.State = s
	d.mu.Unlock()
}

// Submit validates, journals and enqueues one spec, returning the
// accepted job snapshot. ErrDraining refuses new work during shutdown;
// ErrQueueFull is the backpressure signal (429 upstream).
func (d *Daemon) Submit(spec Spec) (Job, error) {
	if d.draining.Load() {
		return Job{}, ErrDraining
	}
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	d.mu.Lock()
	if d.queue.full() {
		d.mu.Unlock()
		d.queue.reject()
		return Job{}, ErrQueueFull
	}
	seq := d.nextSeq
	d.nextSeq++
	job := &Job{ID: fmt.Sprintf("j%06d", seq), Seq: seq, Spec: spec, State: StateQueued}
	// Journal before enqueue: the reply's promise is "this job survives
	// a crash". A crash after this line but before the enqueue is healed
	// on restart, when the journal re-enqueues the job.
	if err := d.journal.Submit(job); err != nil {
		d.nextSeq = seq
		d.mu.Unlock()
		return Job{}, fmt.Errorf("ccprofd: journaling submission: %w", err)
	}
	d.jobs[job.ID] = job
	d.order = append(d.order, job)
	d.queue.put(job)
	snap := *job
	d.mu.Unlock()
	d.submitted.Inc()
	return snap, nil
}

// Submission refusal errors, mapped to 503 and 429 by the HTTP layer.
var (
	ErrDraining  = errors.New("ccprofd: draining, not accepting jobs")
	ErrQueueFull = errors.New("ccprofd: admission queue full")
)

// Get returns a snapshot of one job.
func (d *Daemon) Get(id string) (Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every known job in submission order.
func (d *Daemon) Jobs() []Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Job, len(d.order))
	for i, j := range d.order {
		out[i] = *j
	}
	return out
}

// Artifact fetches a done job's verified artifact bytes.
func (d *Daemon) Artifact(job Job) ([]byte, error) {
	return d.store.Get(job.Artifact)
}

// Unfinished counts jobs not yet in a terminal state — what a restart
// will resume.
func (d *Daemon) Unfinished() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, j := range d.order {
		if j.State == StateQueued || j.State == StateRunning {
			n++
		}
	}
	return n
}

// Draining reports whether shutdown has begun (readyz turns 503).
func (d *Daemon) Draining() bool { return d.draining.Load() }

// Drain stops admitting work, lets in-flight jobs finish for up to
// DrainTimeout, then hard-cancels their contexts and closes the journal.
// Queued and cancelled jobs stay journaled in a non-terminal state, so
// the next Start resumes them; nothing accepted is ever dropped.
// Idempotent; concurrent callers all wait for the first drain.
func (d *Daemon) Drain() {
	if !d.draining.CompareAndSwap(false, true) {
		d.wg.Wait()
		return
	}
	close(d.drainCh)
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d.opts.DrainTimeout):
		d.opts.Logf("ccprofd: drain timeout, cancelling in-flight jobs")
		d.hardCancel()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			// A non-cooperative job attempt is abandoned; the journal
			// still holds it as non-terminal, so restart re-runs it.
			d.opts.Logf("ccprofd: abandoning unresponsive job attempt")
		}
	}
	d.journal.Close()
}

// DumpJobs writes a human-readable job table, for logs.
func (d *Daemon) DumpJobs(w io.Writer) {
	for _, j := range d.Jobs() {
		fmt.Fprintf(w, "%s  %-10s  %-10s  %s\n", j.ID, j.Spec.Kind, j.State, j.Error)
	}
}
