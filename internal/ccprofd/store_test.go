package ccprofd

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStorePutGetRoundTrip(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("conflict report\n")
	hash, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(data)
	if hash != hex.EncodeToString(want[:]) {
		t.Fatalf("Put returned %q, want the content sha256", hash)
	}
	got, err := s.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	// Idempotent re-put of the same bytes.
	again, err := s.Put(data)
	if err != nil || again != hash {
		t.Fatalf("re-Put = %q, %v; want %q, nil", again, err, hash)
	}
}

func TestStoreDetectsCorruption(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put([]byte("pristine artifact"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte on disk, out of band.
	raw, err := os.ReadFile(s.Path(hash))
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x40
	if err := os.WriteFile(s.Path(hash), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(hash); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("Get of corrupted artifact = %v, want ErrCorruptArtifact", err)
	}
}

func TestStoreRejectsMalformedHash(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{
		"",
		"short",
		"../../../../etc/passwd",
		strings.Repeat("Z", 64), // right length, not hex
	} {
		if _, err := s.Get(h); err == nil {
			t.Errorf("Get(%q) accepted a malformed hash", h)
		}
	}
}

func TestStoreSweepsStaleTemps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A killed predecessor's half-written temp.
	stale := filepath.Join(dir, ".put-123456")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived OpenStore: %v", err)
	}
}
