package ccprofd

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pmu"
	"repro/internal/report"
	"repro/internal/workloads"
)

// executeSpec runs one validated job spec and renders its artifact bytes.
// Artifacts must be pure functions of (spec, seed): no wall clock, no
// worker counts, no job IDs — that is what makes the artifact store's
// content addressing line up across clean and resumed runs.
func executeSpec(ctx context.Context, spec Spec, seed int64) ([]byte, error) {
	switch spec.Kind {
	case KindProfile:
		return executeProfile(ctx, spec, seed)
	case KindAdvise:
		return executeAdvise(ctx, spec)
	case KindExperiment:
		return executeExperiment(ctx, spec)
	}
	return nil, fmt.Errorf("%w: unknown kind %q", ErrBadSpec, spec.Kind)
}

// executeProfile profiles one workload variant and renders the same
// report ccprof prints, minus its wall-clock overhead figure.
func executeProfile(ctx context.Context, spec Spec, seed int64) ([]byte, error) {
	cs, err := workloads.Get(spec.Workload)
	if err != nil {
		return nil, err
	}
	prog := cs.Original
	if spec.Variant == "optimized" {
		prog = cs.Optimized
	}
	period := spec.Period
	if period == 0 {
		period = cs.ProfilePeriod
	}
	prof, err := core.ProfileProgram(prog, core.ProfileOptions{
		Period:  pmu.Uniform(period),
		Seed:    seed,
		Threads: spec.Threads,
		NoTime:  true, // wall clock would break byte-identical resume
		Faults:  spec.plan(seed),
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	an, err := core.Analyze(prof, prog.Binary, prog.Arena, core.AnalyzeOptions{Threshold: spec.Threshold})
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "profiled %s: %d refs, %d L1-miss events, %d samples (mean period %.0f)\n",
		prog.Name, prof.Refs, prof.Events, prof.SampleCount(), prof.PeriodMean)
	if prof.Degraded() {
		note := report.DegradedNote{
			SamplesDropped: prof.FaultDropped + prof.FaultTruncated,
			SamplesAltered: prof.FaultCorrupted,
		}
		if err := note.Write(&b); err != nil {
			return nil, err
		}
	}
	b.WriteString("\n")
	if err := core.WriteReport(&b, an); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// executeAdvise runs the tiered pad sweep and renders the ccprof advisor
// table, minus its worker-count line (a config detail, not a result).
func executeAdvise(ctx context.Context, spec Spec) ([]byte, error) {
	cs, err := workloads.Get(spec.Workload)
	if err != nil {
		return nil, err
	}
	if cs.PadBuilder == nil {
		return nil, fmt.Errorf("%s has no pad builder (its fix is not a row pad)", cs.Name)
	}
	res, err := advisor.RecommendPad(cs.PadBuilder, advisor.Options{
		Tiers: advisor.Cascade(),
		Spec:  cs.SpecBuilder(),
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "pad sweep for %s\n\n", cs.Name)
	fmt.Fprintf(&b, "%-8s  %-10s  %-10s  %-12s  %-6s\n", "pad", "L1 misses", "L2 misses", "cycles", "cf")
	for _, c := range res.Candidates {
		marker := ""
		if c.Pad == res.Best.Pad {
			marker = "  <- recommended"
		}
		fmt.Fprintf(&b, "%-8d  %-10d  %-10d  %-12d  %-6.1f%s\n",
			c.Pad, c.Misses, c.L2Misses, c.Cycles, 100*c.CF, marker)
	}
	if len(res.Pruned) > 0 {
		fmt.Fprintf(&b, "\nstatically pruned (no simulation): %v\n", res.Pruned)
		if len(res.PrunedAnalytic) > 0 {
			fmt.Fprintf(&b, "  by the analytic tier: %v\n", res.PrunedAnalytic)
		}
		if len(res.PrunedStatic) > 0 {
			fmt.Fprintf(&b, "  by the static tier:   %v\n", res.PrunedStatic)
		}
	}
	fmt.Fprintf(&b, "\nrecommended pad: %d bytes (%.1f%% cycle reduction over pad 0)\n",
		res.Best.Pad, 100*res.Improvement())
	return b.Bytes(), nil
}

// executeExperiment runs one named figure/table runner into the artifact
// buffer. Runners are deterministic by contract (the golden tests depend
// on it), so their output is content-addressable as-is.
func executeExperiment(ctx context.Context, spec Spec) ([]byte, error) {
	runner, ok := experiments.Registry()[spec.Experiment]
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", spec.Experiment)
	}
	scale := experiments.Full
	label := "full"
	if spec.Quick {
		scale = experiments.Quick
		label = "quick"
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "experiment %s (%s scale)\n\n", spec.Experiment, label)
	if err := runner(&b, scale); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
