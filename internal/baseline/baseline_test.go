package baseline

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func g() mem.Geometry { return mem.MustGeometry(64, 4, 2) }

// thrash drives n rounds over k same-set lines through the sink.
func thrash(sink trace.Sink, geom mem.Geometry, set, k, rounds int) {
	for r := 0; r < rounds; r++ {
		for t := 0; t < k; t++ {
			sink.Ref(trace.Ref{Addr: geom.Compose(uint64(t+1), set, 0)})
		}
	}
}

func TestMSTDetectsThrashing(t *testing.T) {
	m := NewMST(g())
	// 3 lines in a 2-way set: every miss after warmup re-fetches a line
	// that was just evicted.
	thrash(m, m.geom, 1, 3, 50)
	if m.Misses == 0 {
		t.Fatal("no misses")
	}
	if m.ConflictRatio() < 0.8 {
		t.Errorf("MST conflict ratio = %.2f, want ~1 for a thrashing set", m.ConflictRatio())
	}
	if !m.Verdict(0.5) {
		t.Error("MST verdict should be positive")
	}
}

func TestMSTIgnoresStreaming(t *testing.T) {
	m := NewMST(g())
	// Pure streaming: every line touched once, never re-referenced.
	for i := 0; i < 1000; i++ {
		m.Ref(trace.Ref{Addr: uint64(i) * 64})
	}
	if m.Conflicts != 0 {
		t.Errorf("MST classified %d streaming misses as conflicts", m.Conflicts)
	}
	if m.Verdict(0.1) {
		t.Error("MST verdict should be negative on streaming")
	}
}

func TestMSTHitsDontCount(t *testing.T) {
	m := NewMST(g())
	m.Ref(trace.Ref{Addr: 0})
	for i := 0; i < 10; i++ {
		m.Ref(trace.Ref{Addr: 0})
	}
	if m.Misses != 1 || m.Conflicts != 0 {
		t.Errorf("misses=%d conflicts=%d", m.Misses, m.Conflicts)
	}
}

func TestMSTVictimBufferDepthOne(t *testing.T) {
	m := NewMST(g())
	geom := m.geom
	// Evict line A, then evict B, then re-touch A: the table only
	// remembers the most recent victim (B), so A's return is NOT
	// classified — the known depth-1 limitation of the MST approach
	// ("can be used to classify a subset of conflict misses").
	a := geom.Compose(1, 0, 0)
	b := geom.Compose(2, 0, 0)
	c := geom.Compose(3, 0, 0)
	d := geom.Compose(4, 0, 0)
	m.Ref(trace.Ref{Addr: a}) // miss (cold)
	m.Ref(trace.Ref{Addr: b}) // miss
	m.Ref(trace.Ref{Addr: c}) // miss, evicts a -> last = a
	m.Ref(trace.Ref{Addr: d}) // miss, evicts b -> last = b
	before := m.Conflicts
	m.Ref(trace.Ref{Addr: a}) // miss, but last victim is b, not a
	if m.Conflicts != before {
		t.Error("depth-1 MST should have missed this conflict")
	}
	m.Ref(trace.Ref{Addr: c}) // c was evicted by a just now -> classified
	if m.Conflicts != before+1 {
		t.Error("MST should classify the immediate victim's return")
	}
}

func TestDProfDetectsStaticVictim(t *testing.T) {
	d := NewDProf(64)
	for i := 0; i < 1000; i++ {
		d.Observe(5)
	}
	if d.Imbalance() < 32 {
		t.Errorf("imbalance = %.1f, want huge for a single victim set", d.Imbalance())
	}
	if !d.Verdict(4) {
		t.Error("DProf should flag a static victim set")
	}
}

func TestDProfMissesRotatingVictim(t *testing.T) {
	// The paper's criticism: a victim set that rotates (each phase
	// hammers a different set) looks globally balanced.
	d := NewDProf(64)
	for phase := 0; phase < 64; phase++ {
		for i := 0; i < 100; i++ {
			d.Observe(phase)
		}
	}
	if d.Imbalance() > 1.5 {
		t.Errorf("rotating victim imbalance = %.2f, expected near 1", d.Imbalance())
	}
	if d.Verdict(4) {
		t.Error("DProf (global histogram) cannot see the rotating conflict — expected a miss")
	}
	if d.Samples() != 6400 {
		t.Errorf("samples = %d", d.Samples())
	}
}

func TestDProfEmpty(t *testing.T) {
	d := NewDProf(8)
	if d.Imbalance() != 0 || d.Verdict(1) {
		t.Error("empty detector should report no conflict")
	}
}
