// Package baseline implements the conflict-miss detectors CCProf is
// compared against in the paper's related-work discussion (§7.1), so the
// comparison itself is runnable:
//
//   - MST, the hardware miss-classification table of Collins & Tullsen
//     ("Hardware identification of cache conflict misses", MICRO 1999): a
//     per-set table remembers the tag most recently evicted from the set;
//     a subsequent miss on the same (set, tag) is classified a conflict
//     miss. MST needs full-trace visibility (it is proposed as hardware),
//     so it plays in the simulator lane, not the sampling lane.
//
//   - A DProf-style detector (Pesterev et al., EuroSys 2010): statistical
//     reasoning over sampled misses, but — as the paper criticizes —
//     assuming the workload is uniform over time: it inspects the *global*
//     per-set miss histogram and flags a conflict when some sets absorb
//     far more than the uniform share. Workloads whose victim set rotates
//     (ADI's column sweep, NW's tile wavefronts) look balanced globally
//     and escape it; CCProf's RCD keeps the temporal signature and does
//     not.
package baseline

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// MST is the miss-classification-table detector. It wraps an L1 model and
// observes every reference (trace.Sink).
type MST struct {
	l1   *cache.Cache
	geom mem.Geometry
	last []uint64 // per set: tag of the most recently evicted line, +1
	// Misses counts all misses, Conflicts the misses MST classifies as
	// conflict (victim re-referenced).
	Misses    uint64
	Conflicts uint64
}

// NewMST returns a detector over a fresh LRU cache with geometry g.
func NewMST(g mem.Geometry) *MST {
	return &MST{
		l1:   cache.New(g, cache.LRU, nil),
		geom: g,
		last: make([]uint64, g.Sets),
	}
}

// Ref implements trace.Sink.
func (m *MST) Ref(r trace.Ref) {
	set := m.geom.Set(r.Addr)
	tag := m.geom.Tag(r.Addr)
	res := m.l1.Access(r.Addr)
	if res.Hit {
		return
	}
	m.Misses++
	if m.last[set] == tag+1 {
		m.Conflicts++
	}
	if res.Evicted {
		m.last[set] = m.geom.Tag(res.Victim) + 1
	}
}

// ConflictRatio returns the fraction of misses classified as conflicts.
func (m *MST) ConflictRatio() float64 {
	if m.Misses == 0 {
		return 0
	}
	return float64(m.Conflicts) / float64(m.Misses)
}

// Verdict applies the detection threshold: a workload suffers from
// conflict misses when at least frac of its misses are MST-conflicts.
func (m *MST) Verdict(frac float64) bool { return m.ConflictRatio() >= frac }

// DProf is the uniformity-assuming sampled detector. Feed it the cache set
// of every sampled miss.
type DProf struct {
	hist  stats.IntHist
	sets  int
	total uint64
}

// NewDProf returns a detector for a cache with the given set count.
func NewDProf(sets int) *DProf {
	return &DProf{sets: sets}
}

// Observe records one sampled miss on the given set.
func (d *DProf) Observe(set int) {
	d.hist.Add(set)
	d.total++
}

// Imbalance returns the busiest set's share over the uniform share,
// computed on the whole-run histogram (no temporal information).
func (d *DProf) Imbalance() float64 {
	if d.total == 0 {
		return 0
	}
	var max uint64
	for _, s := range d.hist.Values() {
		if c := d.hist.Count(s); c > max {
			max = c
		}
	}
	return float64(max) * float64(d.sets) / float64(d.total)
}

// Verdict flags a conflict when the global imbalance exceeds factor (a
// typical setting is 4: some set receives over 4x the uniform share).
func (d *DProf) Verdict(factor float64) bool { return d.Imbalance() >= factor }

// Samples returns the number of observed samples.
func (d *DProf) Samples() uint64 { return d.total }
