package cfg

import (
	"fmt"
	"sort"

	"repro/internal/objfile"
)

// Loop is one loop in the nesting forest discovered by interval analysis.
type Loop struct {
	ID        int
	Header    *Block
	Parent    *Loop
	Children  []*Loop
	Depth     int  // 1 for top-level loops
	Reducible bool // false for irreducible regions

	// Blocks lists every block in the loop, including blocks of nested
	// loops and the header itself.
	Blocks []*Block

	// Loc is the source location of the loop header from the line table,
	// e.g. "needle.cpp:189" — the name CCProf reports loops by.
	Loc objfile.SourceLoc
}

// Name returns a human-readable loop identifier: its header source location
// when known, otherwise the header address.
func (l *Loop) Name() string {
	if !l.Loc.IsZero() {
		return l.Loc.String()
	}
	return fmt.Sprintf("loop@%#x", l.Header.Start)
}

func (l *Loop) String() string {
	return fmt.Sprintf("%s depth=%d blocks=%d", l.Name(), l.Depth, len(l.Blocks))
}

// Forest is the loop-nesting forest of a graph plus per-block innermost-loop
// attribution.
type Forest struct {
	Loops     []*Loop // all loops, inner loops after their parents
	Top       []*Loop // loops with no parent
	innermost []*Loop // block ID -> innermost containing loop (nil if none)
	graph     *Graph
}

// InnermostAt returns the innermost loop containing the instruction at addr,
// or nil when addr is not inside any loop (or unknown).
func (f *Forest) InnermostAt(addr uint64) *Loop {
	b, ok := f.graph.BlockAt(addr)
	if !ok {
		return nil
	}
	return f.innermost[b.ID]
}

// InnerLoops returns the loops with no children (the innermost loops),
// which is what the paper counts as "active inner loops" in Table 2.
func (f *Forest) InnerLoops() []*Loop {
	var out []*Loop
	for _, l := range f.Loops {
		if len(l.Children) == 0 {
			out = append(out, l)
		}
	}
	return out
}

// FindLoops runs Havlak's interval analysis (Havlak 1997, as cited by the
// paper) on the reachable portion of the graph and returns the loop-nesting
// forest. The implementation follows the classical union-find formulation:
// process headers in decreasing DFS preorder, collapse each discovered loop
// body into its header, and classify regions whose entries are not
// dominated by the header as irreducible.
func (g *Graph) FindLoops() *Forest {
	n := len(g.Blocks)

	// DFS preorder numbering of the reachable subgraph.
	const unvisited = -1
	num := make([]int, n) // block ID -> preorder number
	for i := range num {
		num[i] = unvisited
	}
	var blockOf []int // preorder number -> block ID
	var last []int    // preorder number -> max preorder in DFS subtree
	var dfs func(id int) int
	dfs = func(id int) int {
		me := len(blockOf)
		num[id] = me
		blockOf = append(blockOf, id)
		last = append(last, me)
		lastNum := me
		for _, s := range g.Blocks[id].Succs {
			if num[s] == unvisited {
				lastNum = dfs(s)
			}
		}
		last[me] = lastNum
		return lastNum
	}
	dfs(0)
	r := len(blockOf) // reachable count

	isAncestor := func(w, v int) bool { return w <= v && v <= last[w] }

	// Edge classification in preorder-number space.
	backPreds := make([][]int, r)
	nonBackPreds := make([][]int, r)
	for w := 0; w < r; w++ {
		for _, predID := range g.Blocks[blockOf[w]].Preds {
			v := num[predID]
			if v == unvisited {
				continue // unreachable predecessor
			}
			if isAncestor(w, v) {
				backPreds[w] = append(backPreds[w], v)
			} else {
				nonBackPreds[w] = append(nonBackPreds[w], v)
			}
		}
	}

	// Union-find over preorder numbers.
	uf := make([]int, r)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if uf[x] != x {
			uf[x] = find(uf[x])
		}
		return uf[x]
	}

	f := &Forest{graph: g, innermost: make([]*Loop, n)}
	loopAtHeader := make([]*Loop, r)
	directMembers := make(map[*Loop][]int) // loop -> direct member preorder numbers

	for w := r - 1; w >= 0; w-- {
		var pool []int
		inPool := make(map[int]bool)
		selfLoop := false
		for _, v := range backPreds[w] {
			if v == w {
				selfLoop = true
				continue
			}
			rep := find(v)
			if !inPool[rep] {
				inPool[rep] = true
				pool = append(pool, rep)
			}
		}

		reducible := true
		work := append([]int(nil), pool...)
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range nonBackPreds[x] {
				yd := find(y)
				if !isAncestor(w, yd) {
					// A loop entry not dominated by w: irreducible region.
					reducible = false
					nonBackPreds[w] = append(nonBackPreds[w], yd)
				} else if yd != w && !inPool[yd] {
					inPool[yd] = true
					pool = append(pool, yd)
					work = append(work, yd)
				}
			}
		}

		if len(pool) == 0 && !selfLoop {
			continue
		}
		headerBlock := g.Blocks[blockOf[w]]
		l := &Loop{
			ID:        len(f.Loops),
			Header:    headerBlock,
			Reducible: reducible,
			Loc:       g.Bin.LineFor(headerBlock.Start),
		}
		f.Loops = append(f.Loops, l)
		loopAtHeader[w] = l
		for _, p := range pool {
			if inner := loopAtHeader[p]; inner != nil && inner.Parent == nil {
				inner.Parent = l
				l.Children = append(l.Children, inner)
			} else {
				directMembers[l] = append(directMembers[l], p)
			}
			uf[p] = w
		}
	}

	// Loops were created innermost-first; reverse so parents precede
	// children, then fill depths, member lists, and attribution.
	for i, j := 0, len(f.Loops)-1; i < j; i, j = i+1, j-1 {
		f.Loops[i], f.Loops[j] = f.Loops[j], f.Loops[i]
	}
	for i, l := range f.Loops {
		l.ID = i
		if l.Parent == nil {
			f.Top = append(f.Top, l)
		}
	}
	var fill func(l *Loop, depth int) []*Block
	fill = func(l *Loop, depth int) []*Block {
		l.Depth = depth
		blocks := []*Block{l.Header}
		f.innermost[l.Header.ID] = l
		for _, p := range directMembers[l] {
			b := g.Blocks[blockOf[p]]
			blocks = append(blocks, b)
			f.innermost[b.ID] = l
		}
		for _, c := range l.Children {
			blocks = append(blocks, fill(c, depth+1)...)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].Start < blocks[j].Start })
		l.Blocks = blocks
		return blocks
	}
	for _, l := range f.Top {
		fill(l, 1)
	}
	return f
}
