package cfg

import (
	"fmt"
	"slices"

	"repro/internal/objfile"
)

// Loop is one loop in the nesting forest discovered by interval analysis.
type Loop struct {
	ID        int
	Header    *Block
	Parent    *Loop
	Children  []*Loop
	Depth     int  // 1 for top-level loops
	Reducible bool // false for irreducible regions

	// Blocks lists every block in the loop, including blocks of nested
	// loops and the header itself.
	Blocks []*Block

	// Loc is the source location of the loop header from the line table,
	// e.g. "needle.cpp:189" — the name CCProf reports loops by.
	Loc objfile.SourceLoc

	// direct lists the loop's direct member blocks (preorder numbers) that
	// are not headers of nested loops. It is scratch for fill, kept on the
	// Loop so its capacity survives Graph reuse.
	direct []int
}

// Name returns a human-readable loop identifier: its header source location
// when known, otherwise the header address.
func (l *Loop) Name() string {
	if !l.Loc.IsZero() {
		return l.Loc.String()
	}
	return fmt.Sprintf("loop@%#x", l.Header.Start)
}

func (l *Loop) String() string {
	return fmt.Sprintf("%s depth=%d blocks=%d", l.Name(), l.Depth, len(l.Blocks))
}

// Forest is the loop-nesting forest of a graph plus per-block innermost-loop
// attribution. A Forest points into its Graph's reusable loop-analysis
// storage: it is valid only until the next FindLoops or Rebuild on that
// Graph.
type Forest struct {
	Loops     []*Loop // all loops, inner loops after their parents
	Top       []*Loop // loops with no parent
	innermost []*Loop // block ID -> innermost containing loop (nil if none)
	graph     *Graph
}

// InnermostAt returns the innermost loop containing the instruction at addr,
// or nil when addr is not inside any loop (or unknown).
func (f *Forest) InnermostAt(addr uint64) *Loop {
	b, ok := f.graph.BlockAt(addr)
	if !ok {
		return nil
	}
	return f.innermost[b.ID]
}

// InnerLoops returns the loops with no children (the innermost loops),
// which is what the paper counts as "active inner loops" in Table 2.
func (f *Forest) InnerLoops() []*Loop {
	var out []*Loop
	for _, l := range f.Loops {
		if len(l.Children) == 0 {
			out = append(out, l)
		}
	}
	return out
}

// havlakScratch is FindLoops' reusable working state. Every slice is resized
// (never shrunk) per call, so a Graph analyzing a stream of similarly-sized
// binaries stops allocating after the first few.
type havlakScratch struct {
	num          []int // block ID -> preorder number
	blockOf      []int // preorder number -> block ID
	last         []int // preorder number -> max preorder in DFS subtree
	backPreds    [][]int
	nonBackPreds [][]int
	uf           []int
	loopAtHeader []*Loop
	inPool       []bool
	pool         []int
	work         []int
	loopSlab     []Loop
	loops        []*Loop
	top          []*Loop
	innermost    []*Loop
	dfsStack     []dfsFrame
}

// dfsFrame is one explicit-stack frame of FindLoops' preorder DFS.
type dfsFrame struct {
	me   int // preorder number of the node
	next int // index of the next successor to consider
}

// FindLoops runs Havlak's interval analysis (Havlak 1997, as cited by the
// paper) on the reachable portion of the graph and returns the loop-nesting
// forest. The implementation follows the classical union-find formulation:
// process headers in decreasing DFS preorder, collapse each discovered loop
// body into its header, and classify regions whose entries are not
// dominated by the header as irreducible.
//
// The returned Forest shares the Graph's reusable analysis storage and is
// valid only until the next FindLoops or Rebuild on this Graph.
func (g *Graph) FindLoops() *Forest {
	n := len(g.Blocks)
	sc := &g.havlak

	// DFS preorder numbering of the reachable subgraph, with an explicit
	// stack: numbering is sequential, so when a node's subtree finishes,
	// its last-descendant number is simply the latest number assigned. No
	// recursive closure means no per-call closure environment on the heap.
	const unvisited = -1
	num := resizeInts(&sc.num, n)
	for i := range num {
		num[i] = unvisited
	}
	blockOf := sc.blockOf[:0]
	last := sc.last[:0]
	stack := append(sc.dfsStack[:0], dfsFrame{me: 0})
	num[0] = 0
	blockOf = append(blockOf, 0)
	last = append(last, 0)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succs := g.Blocks[blockOf[fr.me]].Succs
		if fr.next < len(succs) {
			s := succs[fr.next]
			fr.next++
			if num[s] == unvisited {
				me := len(blockOf)
				num[s] = me
				blockOf = append(blockOf, s)
				last = append(last, me)
				stack = append(stack, dfsFrame{me: me})
			}
			continue
		}
		last[fr.me] = len(blockOf) - 1
		stack = stack[:len(stack)-1]
	}
	sc.dfsStack = stack[:0]
	sc.blockOf, sc.last = blockOf, last
	r := len(blockOf) // reachable count

	isAncestor := func(w, v int) bool { return w <= v && v <= last[w] }

	// Edge classification in preorder-number space. The per-node lists keep
	// their capacity across calls.
	backPreds := resizeIntSlices(&sc.backPreds, r)
	nonBackPreds := resizeIntSlices(&sc.nonBackPreds, r)
	for w := 0; w < r; w++ {
		for _, predID := range g.Blocks[blockOf[w]].Preds {
			v := num[predID]
			if v == unvisited {
				continue // unreachable predecessor
			}
			if isAncestor(w, v) {
				backPreds[w] = append(backPreds[w], v)
			} else {
				nonBackPreds[w] = append(nonBackPreds[w], v)
			}
		}
	}

	// Union-find over preorder numbers.
	uf := resizeInts(&sc.uf, r)
	for i := range uf {
		uf[i] = i
	}

	// Loop structs come from a slab sized to the worst case (one loop per
	// reachable block) so taking a loop never moves earlier ones; their
	// member/child slices keep capacity across reuse.
	if cap(sc.loopSlab) < r {
		sc.loopSlab = make([]Loop, r)
	}
	sc.loopSlab = sc.loopSlab[:cap(sc.loopSlab)]
	nloops := 0
	takeLoop := func() *Loop {
		l := &sc.loopSlab[nloops]
		nloops++
		*l = Loop{
			Children: l.Children[:0],
			Blocks:   l.Blocks[:0],
			direct:   l.direct[:0],
		}
		return l
	}

	innermost := resizeLoopPtrs(&sc.innermost, n)
	for i := range innermost {
		innermost[i] = nil
	}
	f := &Forest{graph: g, innermost: innermost}
	loops := sc.loops[:0]
	loopAtHeader := resizeLoopPtrs(&sc.loopAtHeader, r)
	for i := range loopAtHeader {
		loopAtHeader[i] = nil
	}
	inPool := resizeBools(&sc.inPool, r)

	for w := r - 1; w >= 0; w-- {
		pool := sc.pool[:0]
		selfLoop := false
		for _, v := range backPreds[w] {
			if v == w {
				selfLoop = true
				continue
			}
			rep := ufFind(uf, v)
			if !inPool[rep] {
				inPool[rep] = true
				pool = append(pool, rep)
			}
		}

		reducible := true
		work := append(sc.work[:0], pool...)
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range nonBackPreds[x] {
				yd := ufFind(uf, y)
				if !isAncestor(w, yd) {
					// A loop entry not dominated by w: irreducible region.
					reducible = false
					nonBackPreds[w] = append(nonBackPreds[w], yd)
				} else if yd != w && !inPool[yd] {
					inPool[yd] = true
					pool = append(pool, yd)
					work = append(work, yd)
				}
			}
		}
		sc.work = work[:0]

		if len(pool) == 0 && !selfLoop {
			sc.pool = pool
			continue
		}
		headerBlock := g.Blocks[blockOf[w]]
		l := takeLoop()
		l.ID = len(loops)
		l.Header = headerBlock
		l.Reducible = reducible
		l.Loc = g.Bin.LineFor(headerBlock.Start)
		loops = append(loops, l)
		loopAtHeader[w] = l
		for _, p := range pool {
			if inner := loopAtHeader[p]; inner != nil && inner.Parent == nil {
				inner.Parent = l
				l.Children = append(l.Children, inner)
			} else {
				l.direct = append(l.direct, p)
			}
			uf[p] = w
		}
		// Clear the membership marks: pool lists exactly the marked entries.
		for _, p := range pool {
			inPool[p] = false
		}
		sc.pool = pool
	}

	// Loops were created innermost-first; reverse so parents precede
	// children, then fill depths, member lists, and attribution.
	for i, j := 0, len(loops)-1; i < j; i, j = i+1, j-1 {
		loops[i], loops[j] = loops[j], loops[i]
	}
	top := sc.top[:0]
	for i, l := range loops {
		l.ID = i
		if l.Parent == nil {
			top = append(top, l)
		}
	}
	for _, l := range top {
		fillLoop(g, blockOf, innermost, l, 1)
	}
	sc.loops, sc.top = loops, top
	f.Loops, f.Top = loops, top
	return f
}

// ufFind is iterative union-find lookup with full path compression.
func ufFind(uf []int, x int) int {
	root := x
	for uf[root] != root {
		root = uf[root]
	}
	for uf[x] != root {
		uf[x], x = root, uf[x]
	}
	return root
}

// fillLoop computes depths, member block lists, and innermost-loop
// attribution for l's subtree, returning l's complete member list.
func fillLoop(g *Graph, blockOf []int, innermost []*Loop, l *Loop, depth int) []*Block {
	l.Depth = depth
	blocks := append(l.Blocks[:0], l.Header)
	innermost[l.Header.ID] = l
	for _, p := range l.direct {
		b := g.Blocks[blockOf[p]]
		blocks = append(blocks, b)
		innermost[b.ID] = l
	}
	for _, c := range l.Children {
		blocks = append(blocks, fillLoop(g, blockOf, innermost, c, depth+1)...)
	}
	slices.SortFunc(blocks, func(a, b *Block) int {
		switch {
		case a.Start < b.Start:
			return -1
		case a.Start > b.Start:
			return 1
		default:
			return 0
		}
	})
	l.Blocks = blocks
	return blocks
}

func resizeIntSlices(s *[][]int, n int) [][]int {
	if cap(*s) < n {
		grown := make([][]int, n)
		copy(grown, (*s)[:cap(*s)])
		*s = grown
	} else {
		*s = (*s)[:n]
	}
	out := *s
	for i := range out {
		out[i] = out[i][:0]
	}
	return out
}

func resizeLoopPtrs(s *[]*Loop, n int) []*Loop {
	if cap(*s) < n {
		*s = make([]*Loop, n)
	} else {
		*s = (*s)[:n]
	}
	return *s
}
