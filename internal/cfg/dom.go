package cfg

// Dominators computes the immediate-dominator tree of the reachable part of
// the graph using the Cooper–Harvey–Kennedy iterative algorithm over reverse
// postorder. idom[entry] == entry; idom[b] == -1 for unreachable blocks.
func (g *Graph) Dominators() []int {
	rpo := g.ReversePostorder()
	pos := make([]int, len(g.Blocks)) // block ID -> RPO position
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range rpo {
		pos[id] = i
	}

	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0

	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			if id == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[id].Preds {
				if pos[p] < 0 || idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[id] != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b given an idom tree
// from Dominators. Every block dominates itself.
func Dominates(idom []int, a, b int) bool {
	if idom[b] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = idom[b]
	}
}
