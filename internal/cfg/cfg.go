// Package cfg recovers control-flow structure from a synthetic binary.
//
// CCProf's offline analyzer "retrieves the control flow graph (CFG) of the
// target application from the machine code and uses interval analysis to
// identify loops" (§4 of the paper, citing Havlak 1997). This package does
// the same for objfile binaries: it partitions the instruction stream into
// basic blocks, wires up successor edges, computes dominators, and builds a
// Havlak-style loop-nesting forest, which the analyzer then uses to
// attribute each sampled instruction pointer to its innermost loop.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/objfile"
)

// Block is a basic block: a maximal straight-line instruction sequence.
type Block struct {
	ID    int
	Start uint64 // address of first instruction
	End   uint64 // one past last instruction
	Succs []int
	Preds []int
}

// Contains reports whether addr lies within the block.
func (b *Block) Contains(addr uint64) bool { return addr >= b.Start && addr < b.End }

func (b *Block) String() string {
	return fmt.Sprintf("B%d[%#x,%#x) -> %v", b.ID, b.Start, b.End, b.Succs)
}

// Graph is the control-flow graph of one binary. Block 0 is the entry.
//
// A Graph owns reusable storage: Rebuild reconstructs it for a new binary
// without reallocating block, edge, or loop-analysis state whose capacity
// already suffices. Blocks, edge lists, and any Forest returned by FindLoops
// point into that storage and are valid only until the next Rebuild (or
// FindLoops) on the same Graph — callers that pool Graphs must copy out
// anything they keep.
type Graph struct {
	Bin    *objfile.Binary
	Blocks []*Block

	starts []uint64 // sorted block start addresses, parallel to Blocks order by Start
	order  []int    // block IDs sorted by Start

	// Reusable slabs. blockSlab backs Blocks; leaders and instrBlk are dense
	// per-instruction-index maps (instructions are contiguous at InstrSize
	// spacing, so addr <-> index is pure arithmetic); edges is the single
	// backing array every Succs and Preds slice is carved from.
	blockSlab []Block
	leaders   []bool
	instrBlk  []int32
	edges     []int
	succCnt   []int32
	predCnt   []int32

	havlak havlakScratch
}

// Build partitions bin's instructions into basic blocks and connects them.
// It returns an error for an empty binary or a branch to a nonexistent
// instruction. Build allocates a fresh Graph; sweeps that analyze many
// binaries should pool Graphs and call Rebuild instead.
func Build(bin *objfile.Binary) (*Graph, error) {
	g := &Graph{}
	if err := g.Rebuild(bin); err != nil {
		return nil, err
	}
	return g, nil
}

// Rebuild reconstructs the graph for bin in place, reusing the Graph's
// storage. The result is indistinguishable from a freshly Built graph; only
// the allocation behavior differs.
func (g *Graph) Rebuild(bin *objfile.Binary) error {
	if len(bin.Instrs) == 0 {
		return fmt.Errorf("cfg: binary %q has no instructions", bin.Name)
	}
	if err := bin.Validate(); err != nil {
		return fmt.Errorf("cfg: %w", err)
	}
	g.Bin = bin

	// Instructions are contiguous at InstrSize spacing (Validate enforces
	// it), so instruction indices replace the address-keyed maps of the
	// classical construction.
	n := len(bin.Instrs)
	base := bin.Instrs[0].Addr
	idx := func(addr uint64) int { return int((addr - base) / objfile.InstrSize) }

	// Identify leaders: the first instruction, every branch target, and the
	// instruction after any control transfer.
	leaders := resizeBools(&g.leaders, n)
	leaders[0] = true
	for i, in := range bin.Instrs {
		switch in.Kind {
		case objfile.Branch, objfile.CondBranch:
			t := idx(in.Target)
			if t < 0 || t >= n {
				return fmt.Errorf("cfg: control transfer from %#x to non-leader %#x", in.Addr, in.Target)
			}
			leaders[t] = true
			if i+1 < n {
				leaders[i+1] = true
			}
		case objfile.Ret:
			if i+1 < n {
				leaders[i+1] = true
			}
		}
	}

	// Carve the blocks. They are created in address order, so the by-start
	// lookup order is the identity permutation.
	nblocks := 0
	for i := 0; i < n; i++ {
		if leaders[i] {
			nblocks++
		}
	}
	if cap(g.blockSlab) < nblocks {
		g.blockSlab = make([]Block, nblocks)
	}
	blocks := g.blockSlab[:nblocks]
	g.Blocks = resizeBlockPtrs(&g.Blocks, nblocks)
	instrBlk := resizeInt32s(&g.instrBlk, n)
	bi := -1
	for i, in := range bin.Instrs {
		if leaders[i] {
			bi++
			blocks[bi] = Block{ID: bi, Start: in.Addr}
			g.Blocks[bi] = &blocks[bi]
		}
		blocks[bi].End = in.Addr + objfile.InstrSize
		instrBlk[i] = int32(bi)
	}

	// Wire successors with counted carving: enumerate each block's outgoing
	// edges twice — once to size the per-block Succs/Preds lists, once to
	// fill them — so a single backing array replaces per-block appends. The
	// enumeration order matches the classical construction (branch target
	// first, then fallthrough), preserving edge order exactly. edgeTargets
	// is a plain function (no closures on this path: Rebuild runs once per
	// analyzed binary, and sweeps analyze thousands).
	succCnt := resizeInt32s(&g.succCnt, nblocks)
	predCnt := resizeInt32s(&g.predCnt, nblocks)
	for bi := range blocks {
		d1, d2 := edgeTargets(bin, instrBlk, base, &blocks[bi])
		if d1 >= 0 {
			succCnt[bi]++
			predCnt[d1]++
		}
		if d2 >= 0 {
			succCnt[bi]++
			predCnt[d2]++
		}
	}
	total := 0
	for i := range succCnt {
		total += int(succCnt[i]) + int(predCnt[i])
	}
	if cap(g.edges) < total {
		g.edges = make([]int, total)
	}
	edges := g.edges[:0]
	for bi := range blocks {
		s, p := int(succCnt[bi]), int(predCnt[bi])
		off := len(edges)
		blocks[bi].Succs = edges[off : off : off+s]
		edges = edges[:off+s]
		off = len(edges)
		blocks[bi].Preds = edges[off : off : off+p]
		edges = edges[:off+p]
	}
	for bi := range blocks {
		d1, d2 := edgeTargets(bin, instrBlk, base, &blocks[bi])
		if d1 >= 0 {
			blocks[bi].Succs = append(blocks[bi].Succs, d1)
			blocks[d1].Preds = append(blocks[d1].Preds, bi)
		}
		if d2 >= 0 {
			blocks[bi].Succs = append(blocks[bi].Succs, d2)
			blocks[d2].Preds = append(blocks[d2].Preds, bi)
		}
	}

	g.order = resizeInts(&g.order, nblocks)
	g.starts = resizeUint64s(&g.starts, nblocks)
	for i := range blocks {
		g.order[i] = i
		g.starts[i] = blocks[i].Start
	}
	return nil
}

// edgeTargets returns the successor block indices of b in edge order
// (branch target first, then fallthrough), or -1 for absent slots.
func edgeTargets(bin *objfile.Binary, instrBlk []int32, base uint64, b *Block) (int, int) {
	n := len(bin.Instrs)
	endIdx := int((b.End - base) / objfile.InstrSize)
	last := bin.Instrs[endIdx-1]
	d1, d2 := -1, -1
	switch last.Kind {
	case objfile.Branch:
		d1 = int(instrBlk[(last.Target-base)/objfile.InstrSize])
	case objfile.CondBranch:
		d1 = int(instrBlk[(last.Target-base)/objfile.InstrSize])
		if endIdx < n {
			d2 = int(instrBlk[endIdx])
		}
	case objfile.Ret:
		// no successors
	default:
		if endIdx < n {
			d1 = int(instrBlk[endIdx])
		}
	}
	return d1, d2
}

func resizeBools(s *[]bool, n int) []bool {
	if cap(*s) < n {
		*s = make([]bool, n)
	} else {
		*s = (*s)[:n]
		for i := range *s {
			(*s)[i] = false
		}
	}
	return *s
}

func resizeInt32s(s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
	} else {
		*s = (*s)[:n]
		for i := range *s {
			(*s)[i] = 0
		}
	}
	return *s
}

func resizeInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	} else {
		*s = (*s)[:n]
	}
	return *s
}

func resizeUint64s(s *[]uint64, n int) []uint64 {
	if cap(*s) < n {
		*s = make([]uint64, n)
	} else {
		*s = (*s)[:n]
	}
	return *s
}

func resizeBlockPtrs(s *[]*Block, n int) []*Block {
	if cap(*s) < n {
		*s = make([]*Block, n)
	} else {
		*s = (*s)[:n]
	}
	return *s
}

// BlockAt returns the basic block containing addr.
func (g *Graph) BlockAt(addr uint64) (*Block, bool) {
	i := sort.Search(len(g.starts), func(i int) bool { return g.starts[i] > addr })
	if i == 0 {
		return nil, false
	}
	b := g.Blocks[g.order[i-1]]
	if b.Contains(addr) {
		return b, true
	}
	return nil, false
}

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// ReversePostorder returns reachable block IDs in reverse postorder from the
// entry. Unreachable blocks are omitted.
func (g *Graph) ReversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range g.Blocks[id].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
