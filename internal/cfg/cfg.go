// Package cfg recovers control-flow structure from a synthetic binary.
//
// CCProf's offline analyzer "retrieves the control flow graph (CFG) of the
// target application from the machine code and uses interval analysis to
// identify loops" (§4 of the paper, citing Havlak 1997). This package does
// the same for objfile binaries: it partitions the instruction stream into
// basic blocks, wires up successor edges, computes dominators, and builds a
// Havlak-style loop-nesting forest, which the analyzer then uses to
// attribute each sampled instruction pointer to its innermost loop.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/objfile"
)

// Block is a basic block: a maximal straight-line instruction sequence.
type Block struct {
	ID    int
	Start uint64 // address of first instruction
	End   uint64 // one past last instruction
	Succs []int
	Preds []int
}

// Contains reports whether addr lies within the block.
func (b *Block) Contains(addr uint64) bool { return addr >= b.Start && addr < b.End }

func (b *Block) String() string {
	return fmt.Sprintf("B%d[%#x,%#x) -> %v", b.ID, b.Start, b.End, b.Succs)
}

// Graph is the control-flow graph of one binary. Block 0 is the entry.
type Graph struct {
	Bin    *objfile.Binary
	Blocks []*Block

	starts []uint64 // sorted block start addresses, parallel to Blocks order by Start
	order  []int    // block IDs sorted by Start
}

// Build partitions bin's instructions into basic blocks and connects them.
// It returns an error for an empty binary or a branch to a nonexistent
// instruction.
func Build(bin *objfile.Binary) (*Graph, error) {
	if len(bin.Instrs) == 0 {
		return nil, fmt.Errorf("cfg: binary %q has no instructions", bin.Name)
	}
	if err := bin.Validate(); err != nil {
		return nil, fmt.Errorf("cfg: %w", err)
	}

	// Identify leaders: the first instruction, every branch target, and the
	// instruction after any control transfer.
	leaders := map[uint64]bool{bin.Instrs[0].Addr: true}
	for _, in := range bin.Instrs {
		switch in.Kind {
		case objfile.Branch, objfile.CondBranch:
			leaders[in.Target] = true
			leaders[in.Addr+objfile.InstrSize] = true
		case objfile.Ret:
			leaders[in.Addr+objfile.InstrSize] = true
		}
	}

	g := &Graph{Bin: bin}
	blockAt := map[uint64]*Block{} // start address -> block
	var cur *Block
	for _, in := range bin.Instrs {
		if leaders[in.Addr] || cur == nil {
			cur = &Block{ID: len(g.Blocks), Start: in.Addr}
			g.Blocks = append(g.Blocks, cur)
			blockAt[in.Addr] = cur
		}
		cur.End = in.Addr + objfile.InstrSize
	}

	// Wire successors by inspecting each block's terminator.
	for _, b := range g.Blocks {
		last, ok := bin.InstrAt(b.End - objfile.InstrSize)
		if !ok {
			return nil, fmt.Errorf("cfg: internal error: no instruction at %#x", b.End-objfile.InstrSize)
		}
		addSucc := func(addr uint64) error {
			t, ok := blockAt[addr]
			if !ok {
				return fmt.Errorf("cfg: control transfer from %#x to non-leader %#x", last.Addr, addr)
			}
			b.Succs = append(b.Succs, t.ID)
			t.Preds = append(t.Preds, b.ID)
			return nil
		}
		switch last.Kind {
		case objfile.Branch:
			if err := addSucc(last.Target); err != nil {
				return nil, err
			}
		case objfile.CondBranch:
			if err := addSucc(last.Target); err != nil {
				return nil, err
			}
			if _, ok := blockAt[b.End]; ok {
				if err := addSucc(b.End); err != nil {
					return nil, err
				}
			}
		case objfile.Ret:
			// no successors
		default:
			if _, ok := blockAt[b.End]; ok {
				if err := addSucc(b.End); err != nil {
					return nil, err
				}
			}
		}
	}

	g.order = make([]int, len(g.Blocks))
	for i := range g.order {
		g.order[i] = i
	}
	sort.Slice(g.order, func(i, j int) bool { return g.Blocks[g.order[i]].Start < g.Blocks[g.order[j]].Start })
	g.starts = make([]uint64, len(g.order))
	for i, id := range g.order {
		g.starts[i] = g.Blocks[id].Start
	}
	return g, nil
}

// BlockAt returns the basic block containing addr.
func (g *Graph) BlockAt(addr uint64) (*Block, bool) {
	i := sort.Search(len(g.starts), func(i int) bool { return g.starts[i] > addr })
	if i == 0 {
		return nil, false
	}
	b := g.Blocks[g.order[i-1]]
	if b.Contains(addr) {
		return b, true
	}
	return nil, false
}

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// ReversePostorder returns reachable block IDs in reverse postorder from the
// entry. Unreachable blocks are omitted.
func (g *Graph) ReversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range g.Blocks[id].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
