package cfg

import "sort"

// NaturalLoop is a loop discovered by the classical dominator/back-edge
// construction: an edge v -> h where h dominates v is a back edge, and the
// natural loop of h is h plus every block that reaches v without passing
// through h.
//
// This is an independent, simpler loop finder used to cross-validate the
// Havlak interval analysis: on reducible graphs the two must agree on the
// set of loop headers (Havlak additionally handles irreducible regions and
// produces the nesting forest).
type NaturalLoop struct {
	Header *Block
	Blocks []*Block // sorted by start address, header included
}

// NaturalLoops finds all natural loops of the reachable subgraph, one per
// header (back edges sharing a header are merged, as is conventional).
func (g *Graph) NaturalLoops() []NaturalLoop {
	idom := g.Dominators()
	bodies := make(map[int]map[int]bool) // header -> block set

	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !Dominates(idom, s, b.ID) {
				continue // not a back edge
			}
			// Back edge b -> s: flood predecessors from b until s.
			body := bodies[s]
			if body == nil {
				body = map[int]bool{s: true}
				bodies[s] = body
			}
			stack := []int{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, p := range g.Blocks[x].Preds {
					if idom[p] >= 0 || p == 0 { // reachable only
						stack = append(stack, p)
					}
				}
			}
		}
	}

	headers := make([]int, 0, len(bodies))
	for h := range bodies {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	out := make([]NaturalLoop, 0, len(headers))
	for _, h := range headers {
		nl := NaturalLoop{Header: g.Blocks[h]}
		for id := range bodies[h] {
			nl.Blocks = append(nl.Blocks, g.Blocks[id])
		}
		sort.Slice(nl.Blocks, func(i, j int) bool { return nl.Blocks[i].Start < nl.Blocks[j].Start })
		out = append(out, nl)
	}
	return out
}
