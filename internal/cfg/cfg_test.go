package cfg

import (
	"testing"

	"repro/internal/objfile"
)

// buildNest lowers the canonical tiled-copy shape: an outer loop at t.c:1
// containing a load at t.c:2 and an inner loop at t.c:3 with a load and a
// store.
func buildNest(t *testing.T) (*objfile.Binary, map[string]uint64) {
	t.Helper()
	b := objfile.NewBuilder("nest")
	ips := map[string]uint64{}
	b.Func("main")
	ips["outer"] = b.Loop("t.c", 1)
	ips["ld0"] = b.Load("t.c", 2)
	ips["inner"] = b.Loop("t.c", 3)
	ips["ld1"] = b.Load("t.c", 4)
	ips["st1"] = b.Store("t.c", 5)
	b.EndLoop()
	b.EndLoop()
	return b.Finish(), ips
}

func TestBuildBasicBlocks(t *testing.T) {
	bin, ips := buildNest(t)
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Expected blocks:
	//   B0: outer header + ld0        [outer, ld0]
	//   B1: inner header + ld1 + st1 + inner backedge
	//   B2: outer backedge
	//   B3: ret
	if len(g.Blocks) != 4 {
		for _, b := range g.Blocks {
			t.Logf("%v", b)
		}
		t.Fatalf("block count = %d, want 4", len(g.Blocks))
	}
	b, ok := g.BlockAt(ips["ld1"])
	if !ok {
		t.Fatal("BlockAt(ld1) missed")
	}
	if !b.Contains(ips["inner"]) {
		t.Error("ld1 and inner header should share a block")
	}
	if _, ok := g.BlockAt(objfile.BaseText - 8); ok {
		t.Error("BlockAt before text should miss")
	}
	if _, ok := g.BlockAt(g.Blocks[len(g.Blocks)-1].End + 64); ok {
		t.Error("BlockAt past text should miss")
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(&objfile.Binary{Name: "empty"}); err == nil {
		t.Error("empty binary should error")
	}
}

func TestSuccessorsOfCondBranch(t *testing.T) {
	bin, ips := buildNest(t)
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	inner, _ := g.BlockAt(ips["inner"])
	// Inner block ends with the inner back edge: succ = itself + outer backedge block.
	if len(inner.Succs) != 2 {
		t.Fatalf("inner block succs = %v, want 2 edges", inner.Succs)
	}
	foundSelf := false
	for _, s := range inner.Succs {
		if s == inner.ID {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Error("inner block should loop to itself via back edge")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	bin, _ := buildNest(t)
	g, _ := Build(bin)
	rpo := g.ReversePostorder()
	if len(rpo) != len(g.Blocks) {
		t.Fatalf("rpo covers %d blocks, want %d", len(rpo), len(g.Blocks))
	}
	if rpo[0] != 0 {
		t.Errorf("rpo[0] = %d, want entry 0", rpo[0])
	}
}

func TestDominators(t *testing.T) {
	bin, ips := buildNest(t)
	g, _ := Build(bin)
	idom := g.Dominators()
	if idom[0] != 0 {
		t.Errorf("idom(entry) = %d, want 0", idom[0])
	}
	entry := g.Entry()
	inner, _ := g.BlockAt(ips["inner"])
	if !Dominates(idom, entry.ID, inner.ID) {
		t.Error("entry should dominate inner block")
	}
	if Dominates(idom, inner.ID, entry.ID) {
		t.Error("inner must not dominate entry")
	}
	for _, b := range g.Blocks {
		if !Dominates(idom, b.ID, b.ID) {
			t.Errorf("block %d should dominate itself", b.ID)
		}
		if !Dominates(idom, entry.ID, b.ID) {
			t.Errorf("entry should dominate block %d", b.ID)
		}
	}
}

func TestFindLoopsNested(t *testing.T) {
	bin, ips := buildNest(t)
	g, _ := Build(bin)
	f := g.FindLoops()
	if len(f.Loops) != 2 {
		for _, l := range f.Loops {
			t.Logf("%v", l)
		}
		t.Fatalf("loop count = %d, want 2", len(f.Loops))
	}
	if len(f.Top) != 1 {
		t.Fatalf("top-level loops = %d, want 1", len(f.Top))
	}
	outer := f.Top[0]
	if outer.Depth != 1 || len(outer.Children) != 1 {
		t.Fatalf("outer loop shape wrong: %v", outer)
	}
	inner := outer.Children[0]
	if inner.Depth != 2 || inner.Parent != outer {
		t.Errorf("inner loop shape wrong: %v", inner)
	}
	if !outer.Reducible || !inner.Reducible {
		t.Error("structured loops should be reducible")
	}
	if outer.Loc.Line != 1 || inner.Loc.Line != 3 {
		t.Errorf("loop locations: outer=%v inner=%v, want t.c:1 / t.c:3", outer.Loc, inner.Loc)
	}

	// Attribution: memory IPs map to the right innermost loop.
	if got := f.InnermostAt(ips["ld0"]); got != outer {
		t.Errorf("InnermostAt(ld0) = %v, want outer", got)
	}
	if got := f.InnermostAt(ips["ld1"]); got != inner {
		t.Errorf("InnermostAt(ld1) = %v, want inner", got)
	}
	if got := f.InnermostAt(ips["st1"]); got != inner {
		t.Errorf("InnermostAt(st1) = %v, want inner", got)
	}
	if got := f.InnermostAt(0xdeadbeef); got != nil {
		t.Errorf("InnermostAt(unknown) = %v, want nil", got)
	}
}

func TestInnerLoops(t *testing.T) {
	bin, _ := buildNest(t)
	g, _ := Build(bin)
	f := g.FindLoops()
	inner := f.InnerLoops()
	if len(inner) != 1 || inner[0].Depth != 2 {
		t.Errorf("InnerLoops = %v, want single depth-2 loop", inner)
	}
}

func TestTripleNest(t *testing.T) {
	b := objfile.NewBuilder("triple")
	b.Func("main")
	b.Loop("k.c", 1)
	b.Loop("k.c", 2)
	b.Loop("k.c", 3)
	ld := b.Load("k.c", 4)
	b.EndLoop()
	b.EndLoop()
	b.EndLoop()
	bin := b.Finish()
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	f := g.FindLoops()
	if len(f.Loops) != 3 {
		t.Fatalf("loop count = %d, want 3", len(f.Loops))
	}
	l := f.InnermostAt(ld)
	if l == nil || l.Depth != 3 {
		t.Fatalf("innermost of load = %v, want depth 3", l)
	}
	if l.Parent == nil || l.Parent.Depth != 2 || l.Parent.Parent.Depth != 1 {
		t.Error("loop nesting depths wrong")
	}
}

func TestSequentialLoops(t *testing.T) {
	b := objfile.NewBuilder("seq")
	b.Func("main")
	b.Loop("s.c", 1)
	ld1 := b.Load("s.c", 2)
	b.EndLoop()
	b.Loop("s.c", 10)
	ld2 := b.Load("s.c", 11)
	b.EndLoop()
	bin := b.Finish()
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	f := g.FindLoops()
	if len(f.Loops) != 2 || len(f.Top) != 2 {
		t.Fatalf("got %d loops (%d top), want 2 disjoint", len(f.Loops), len(f.Top))
	}
	a, c := f.InnermostAt(ld1), f.InnermostAt(ld2)
	if a == nil || c == nil || a == c {
		t.Errorf("loads should map to distinct loops: %v / %v", a, c)
	}
	if a.Depth != 1 || c.Depth != 1 {
		t.Error("sequential loops should both be depth 1")
	}
}

func TestStraightLineHasNoLoops(t *testing.T) {
	b := objfile.NewBuilder("straight")
	b.Func("main")
	b.Load("x.c", 1)
	b.Store("x.c", 2)
	bin := b.Finish()
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	f := g.FindLoops()
	if len(f.Loops) != 0 {
		t.Errorf("straight-line code produced %d loops", len(f.Loops))
	}
}

// Hand-built irreducible graph: two entries into a cycle.
//
//	entry -> A, entry -> B, A -> B, B -> A, A -> exit
func TestIrreducibleRegion(t *testing.T) {
	base := uint64(objfile.BaseText)
	addr := func(i int) uint64 { return base + uint64(i*objfile.InstrSize) }
	// 0: condbranch -> 3 (B), fallthrough 1
	// 1: (A) condbranch -> 3 (B), fallthrough 2
	// 2: ret (exit)
	// 3: (B) branch -> 1 (A)
	bin := &objfile.Binary{
		Name: "irr",
		Instrs: []objfile.Instruction{
			{Addr: addr(0), Kind: objfile.CondBranch, Target: addr(3)},
			{Addr: addr(1), Kind: objfile.CondBranch, Target: addr(3)},
			{Addr: addr(2), Kind: objfile.Ret},
			{Addr: addr(3), Kind: objfile.Branch, Target: addr(1)},
		},
	}
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	f := g.FindLoops()
	if len(f.Loops) == 0 {
		t.Fatal("irreducible cycle not detected as a loop region")
	}
	foundIrr := false
	for _, l := range f.Loops {
		if !l.Reducible {
			foundIrr = true
		}
	}
	if !foundIrr {
		t.Error("cycle with two entries should be flagged irreducible")
	}
}

func TestSelfLoop(t *testing.T) {
	base := uint64(objfile.BaseText)
	bin := &objfile.Binary{
		Name: "self",
		Instrs: []objfile.Instruction{
			{Addr: base, Kind: objfile.CondBranch, Target: base},
			{Addr: base + 4, Kind: objfile.Ret},
		},
	}
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	f := g.FindLoops()
	if len(f.Loops) != 1 {
		t.Fatalf("self-loop count = %d, want 1", len(f.Loops))
	}
	if got := f.InnermostAt(base); got != f.Loops[0] {
		t.Error("self-loop header should attribute to its own loop")
	}
}

func TestLoopName(t *testing.T) {
	bin, _ := buildNest(t)
	g, _ := Build(bin)
	f := g.FindLoops()
	if got := f.Top[0].Name(); got != "t.c:1" {
		t.Errorf("outer loop name = %q, want t.c:1", got)
	}
	anon := &Loop{Header: &Block{Start: 0x100}}
	if got := anon.Name(); got != "loop@0x100" {
		t.Errorf("anonymous loop name = %q", got)
	}
}

// Unreachable code (a second function never called) must not break loop
// discovery for the reachable part.
func TestUnreachableFunctionIgnored(t *testing.T) {
	b := objfile.NewBuilder("two")
	b.Func("main")
	b.Loop("m.c", 1)
	ld := b.Load("m.c", 2)
	b.EndLoop()
	b.Func("orphan")
	b.Loop("o.c", 1)
	b.Load("o.c", 2)
	b.EndLoop()
	bin := b.Finish()
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	f := g.FindLoops()
	// Only main's loop is reachable from the entry.
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d, want 1 (orphan unreachable)", len(f.Loops))
	}
	if f.InnermostAt(ld) == nil {
		t.Error("reachable loop lost")
	}
}

func BenchmarkFindLoops(b *testing.B) {
	bld := objfile.NewBuilder("bench")
	bld.Func("main")
	for i := 0; i < 20; i++ {
		bld.Loop("b.c", i*10)
		bld.Load("b.c", i*10+1)
		bld.Loop("b.c", i*10+2)
		bld.Load("b.c", i*10+3)
		bld.EndLoop()
		bld.EndLoop()
	}
	bin := bld.Finish()
	g, err := Build(bin)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindLoops()
	}
}
