package cfg

import (
	"testing"

	"repro/internal/objfile"
	"repro/internal/workloads"
)

func TestNaturalLoopsNest(t *testing.T) {
	bin, ips := buildNest(t)
	g, _ := Build(bin)
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("natural loop count = %d, want 2", len(loops))
	}
	// The inner loop's body must be a subset of the outer's.
	outer, inner := loops[0], loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		outer, inner = inner, outer
	}
	inOuter := map[int]bool{}
	for _, b := range outer.Blocks {
		inOuter[b.ID] = true
	}
	for _, b := range inner.Blocks {
		if !inOuter[b.ID] {
			t.Errorf("inner block B%d not inside outer natural loop", b.ID)
		}
	}
	_ = ips
}

func TestNaturalLoopsNoLoops(t *testing.T) {
	b := objfile.NewBuilder("straight")
	b.Func("main")
	b.Load("x.c", 1)
	bin := b.Finish()
	g, _ := Build(bin)
	if loops := g.NaturalLoops(); len(loops) != 0 {
		t.Errorf("straight-line code produced %d natural loops", len(loops))
	}
}

// Cross-validation: on every (reducible) workload binary in the repository,
// the Havlak forest and the classical natural-loop construction must agree
// on the exact set of loop headers and per-header body sizes.
func TestHavlakAgreesWithNaturalLoops(t *testing.T) {
	var programs []*workloads.Program
	for _, name := range workloads.Names() {
		cs, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		programs = append(programs, cs.Original, cs.Optimized)
	}
	programs = append(programs, workloads.RodiniaSuite()...)

	for _, p := range programs {
		g, err := Build(p.Binary)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		forest := g.FindLoops()
		natural := g.NaturalLoops()

		havlakHeaders := map[int]int{} // header block ID -> body size
		for _, l := range forest.Loops {
			if !l.Reducible {
				t.Fatalf("%s: workload binary unexpectedly irreducible", p.Name)
			}
			havlakHeaders[l.Header.ID] = len(l.Blocks)
		}
		naturalHeaders := map[int]int{}
		for _, l := range natural {
			naturalHeaders[l.Header.ID] = len(l.Blocks)
		}
		if len(havlakHeaders) != len(naturalHeaders) {
			t.Fatalf("%s: Havlak found %d loops, natural-loop construction %d",
				p.Name, len(havlakHeaders), len(naturalHeaders))
		}
		for h, n := range naturalHeaders {
			hn, ok := havlakHeaders[h]
			if !ok {
				t.Fatalf("%s: header B%d found by natural loops only", p.Name, h)
			}
			if hn != n {
				t.Errorf("%s: header B%d body size %d (Havlak) vs %d (natural)",
					p.Name, h, hn, n)
			}
		}
	}
}

func TestNaturalLoopsSelfLoop(t *testing.T) {
	base := uint64(objfile.BaseText)
	bin := &objfile.Binary{
		Name: "self",
		Instrs: []objfile.Instruction{
			{Addr: base, Kind: objfile.CondBranch, Target: base},
			{Addr: base + 4, Kind: objfile.Ret},
		},
	}
	g, err := Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	loops := g.NaturalLoops()
	if len(loops) != 1 || len(loops[0].Blocks) != 1 {
		t.Errorf("self-loop: %+v", loops)
	}
}
