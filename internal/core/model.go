package core

import (
	"sync"

	"repro/internal/classify"
)

// builtinTraining is the default training set for the conflict classifier:
// short-RCD contribution factors measured (with this repository's sampler
// at the recommended mean period region) on sixteen representative loops —
// eight suffering from conflict misses and eight conflict-free — mirroring
// the 16-loop training set of §5.2.
var builtinTraining = struct {
	cf     []float64
	labels []bool
}{
	cf: []float64{
		// Conflicted: adi, fft, tinydnn, kripke, symmetrization, nw,
		// plus two parameter variants.
		0.89, 0.95, 0.96, 0.87, 0.43, 0.61, 0.90, 0.72,
		// Clean: backprop, bfs, kmeans, lud, pathfinder, srad,
		// streamcluster, heartwall.
		0.13, 0.09, 0.08, 0.12, 0.13, 0.13, 0.04, 0.09,
	},
	labels: []bool{
		true, true, true, true, true, true, true, true,
		false, false, false, false, false, false, false, false,
	},
}

var (
	defaultModelOnce sync.Once
	defaultModel     classify.Logistic
)

// DefaultModel returns the built-in conflict classifier, trained once on
// the embedded 16-loop dataset. Training is deterministic, so the model is
// identical in every process.
func DefaultModel() classify.Logistic {
	defaultModelOnce.Do(func() {
		m, err := classify.Train(builtinTraining.cf, builtinTraining.labels, classify.TrainOptions{})
		if err != nil {
			panic("core: training builtin model: " + err.Error())
		}
		defaultModel = m
	})
	return defaultModel
}

// TrainingSet returns a copy of the embedded training data, for the
// accuracy experiments that retrain at different sampling periods.
func TrainingSet() ([]float64, []bool) {
	cf := append([]float64(nil), builtinTraining.cf...)
	labels := append([]bool(nil), builtinTraining.labels...)
	return cf, labels
}
