package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/mem"
	"repro/internal/pmu"
)

// Profile serialization: the online profiler "serializes the profiles from
// different threads and writes them into a log file for offline analysis"
// (§4). The format is a small versioned binary layout; everything is
// little-endian.

var profileMagic = [4]byte{'C', 'C', 'P', '2'}

var errBadProfile = errors.New("core: not a CCProf profile (bad magic)")

// WriteTo serializes the profile. It returns the number of bytes written.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if _, err := bw.Write(profileMagic[:]); err != nil {
		return n, err
	}
	n += 4
	name := []byte(p.Workload)
	if err := write(uint32(len(name))); err != nil {
		return n, err
	}
	if _, err := bw.Write(name); err != nil {
		return n, err
	}
	n += int64(len(name))
	hdr := []uint64{
		uint64(p.Geom.LineSize), uint64(p.Geom.Sets), uint64(p.Geom.Ways),
		math.Float64bits(p.PeriodMean),
		p.Events, p.Refs,
		uint64(p.BaselineNs), uint64(p.ProfiledNs),
		uint64(p.Burst),
		uint64(len(p.Samples)),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return n, err
		}
	}
	for _, thread := range p.Samples {
		if err := write(uint64(len(thread))); err != nil {
			return n, err
		}
		for _, sm := range thread {
			if err := write(sm.IP); err != nil {
				return n, err
			}
			if err := write(sm.Addr); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadProfile deserializes a profile written by WriteTo.
func ReadProfile(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading profile header: %w", err)
	}
	if magic != profileMagic {
		return nil, errBadProfile
	}
	read := func(data any) error { return binary.Read(br, binary.LittleEndian, data) }

	var nameLen uint32
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("core: implausible workload name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var hdr [10]uint64
	for i := range hdr {
		if err := read(&hdr[i]); err != nil {
			return nil, err
		}
	}
	geom, err := mem.NewGeometry(int(hdr[0]), int(hdr[1]), int(hdr[2]))
	if err != nil {
		return nil, fmt.Errorf("core: profile geometry: %w", err)
	}
	threads := hdr[9]
	if threads > 1<<16 {
		return nil, fmt.Errorf("core: implausible thread count %d", threads)
	}
	p := &Profile{
		Workload:   string(name),
		Geom:       geom,
		PeriodMean: math.Float64frombits(hdr[3]),
		Events:     hdr[4],
		Refs:       hdr[5],
		BaselineNs: int64(hdr[6]),
		ProfiledNs: int64(hdr[7]),
		Burst:      int(hdr[8]),
		Samples:    make([][]pmu.Sample, threads),
	}
	for t := range p.Samples {
		var count uint64
		if err := read(&count); err != nil {
			return nil, err
		}
		if count > 1<<32 {
			return nil, fmt.Errorf("core: implausible sample count %d", count)
		}
		p.Samples[t] = make([]pmu.Sample, count)
		for i := range p.Samples[t] {
			if err := read(&p.Samples[t][i].IP); err != nil {
				return nil, err
			}
			if err := read(&p.Samples[t][i].Addr); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}
