package core

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/rcd"
	"repro/internal/vmem"
	"repro/internal/workloads"
)

// The L2 extension: footnote 1 of the paper notes that L2 and LLC are
// physically indexed, so conflict profiling there needs the
// virtual-to-physical mapping, and leaves it out of scope. With the vmem
// substrate the extension is straightforward: sample L2-miss events,
// translate each sampled address, and run the same RCD machinery over
// *physical* set indices.

// L2ProfileOptions configures the physically-indexed profiling run.
type L2ProfileOptions struct {
	L1     mem.Geometry // zero selects mem.L1Default()
	L2     mem.Geometry // zero selects the 256KiB 8-way private L2
	Period pmu.PeriodDist
	Seed   int64
	Policy vmem.Policy // frame-allocation policy of the address space
	// Threshold is the short-RCD cutoff; 0 scales the paper's choice to
	// the L2's set count (T = Sets/8, matching 8-of-64 at L1).
	Threshold int
}

// L2Analysis summarizes physically-indexed L2 conflict behaviour.
type L2Analysis struct {
	Workload string
	Policy   vmem.Policy
	Samples  int
	Events   uint64
	// Threshold is the short-RCD cutoff used (scaled to the L2's sets).
	Threshold int
	// CF is the short-RCD contribution factor over physical L2 sets.
	CF float64
	// SetsUsed counts distinct physical sets among sampled misses.
	SetsUsed int
	// Data maps allocation names (resolved through the *virtual*
	// sampled address) to sample counts.
	Data map[string]int
}

// Conflict applies the builtin classifier to the physical-set cf.
func (a *L2Analysis) Conflict() bool { return DefaultModel().Predict(a.CF) }

// TopData returns the allocation names sorted by sample count (descending).
func (a *L2Analysis) TopData() []string {
	names := make([]string, 0, len(a.Data))
	for n := range a.Data {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if a.Data[names[i]] != a.Data[names[j]] {
			return a.Data[names[i]] > a.Data[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// ProfileL2 runs the workload under L2-miss address sampling with the given
// page-mapping policy and computes RCD metrics over physical set indices.
func ProfileL2(p *workloads.Program, opts L2ProfileOptions) (*L2Analysis, error) {
	if p == nil {
		return nil, ErrNilProgram
	}
	if opts.L1.Sets == 0 {
		opts.L1 = mem.L1Default()
	}
	if opts.L2.Sets == 0 {
		opts.L2 = mem.MustGeometry(64, 512, 8)
	}
	if opts.Period == nil {
		opts.Period = pmu.Uniform(171)
	}
	if opts.Threshold == 0 {
		opts.Threshold = opts.L2.Sets / 8
		if opts.Threshold < rcd.DefaultThreshold {
			opts.Threshold = rcd.DefaultThreshold
		}
	}
	// Validate both cache levels' resolved sampler parameters up front.
	if err := (pmu.Config{Geom: opts.L1, Period: opts.Period}).Validate(); err != nil {
		return nil, fmt.Errorf("core: L2 profile config (L1 level): %w", err)
	}
	if err := (pmu.Config{Geom: opts.L2, Period: opts.Period}).Validate(); err != nil {
		return nil, fmt.Errorf("core: L2 profile config (L2 level): %w", err)
	}
	defer obs.Default.StartPhase("profile.l2")()
	space := vmem.NewSpace(opts.Policy, nil)
	s := pmu.NewL2Sampler(pmu.L2Config{
		L1:     opts.L1,
		L2:     opts.L2,
		Period: opts.Period,
		Seed:   opts.Seed,
		Space:  space,
	})
	p.Run(s)
	s.ObserveInto(obs.Default)

	tr := rcd.New(opts.L2.Sets)
	an := &L2Analysis{
		Workload: p.Name,
		Policy:   opts.Policy,
		Samples:  len(s.Samples),
		Events:   s.Events,
		Data:     make(map[string]int),
	}
	for _, sm := range s.Samples {
		tr.Observe(opts.L2.Set(sm.PAddr))
		if blk, ok := findIn(p.Arena, sm.VAddr); ok {
			an.Data[blk]++
		}
	}
	an.Threshold = opts.Threshold
	an.CF = tr.ContributionFactor(opts.Threshold)
	an.SetsUsed = tr.SetsUsed()
	return an, nil
}

func findIn(ar *alloc.Arena, addr uint64) (string, bool) {
	if ar == nil {
		return "", false
	}
	blk, ok := ar.Find(addr)
	return blk.Name, ok
}
