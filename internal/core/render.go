package core

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// WriteReport renders an analysis as text: the program verdict, the
// per-loop table (code-centric attribution) and the per-data-structure
// table (data-centric attribution). The root ccprof facade and the ccprofd
// job executor both delegate here, so a CLI run and a daemon job render
// byte-identical reports for the same analysis.
func WriteReport(w io.Writer, an *Analysis) error {
	verdict := "no significant conflict misses"
	if an.Conflict {
		verdict = "CONFLICT MISSES DETECTED"
	}
	if _, err := fmt.Fprintf(w,
		"CCProf report for %s\n  samples: %d   program cf(T=%d): %s   verdict: %s\n\n",
		an.Workload, an.TotalSamples, an.Threshold, report.Pct(an.CF), verdict); err != nil {
		return err
	}
	lt := report.NewTable("Loops (code-centric attribution)",
		"loop", "depth", "samples", "miss contrib", "sets", "cf", "conflict")
	for _, l := range an.Loops {
		lt.Row(l.Loop, l.Depth, l.Samples, report.Pct(l.Contribution), l.SetsUsed,
			report.Pct(l.CF), l.Conflict)
	}
	if err := lt.Write(w); err != nil {
		return err
	}
	if len(an.Data) == 0 {
		return nil
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	dt := report.NewTable("Data structures (data-centric attribution)",
		"allocation", "samples", "miss contrib", "short-RCD samples")
	for _, d := range an.Data {
		dt.Row(d.Name, d.Samples, report.Pct(d.Contribution), d.ShortRCD)
	}
	return dt.Write(w)
}
