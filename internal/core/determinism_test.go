package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/pmu"
	"repro/internal/workloads"
)

// TestDeterministicProfileAndAnalysis pins the property every experiment
// and the advisor's candidate ranking rely on: the same workload profiled
// twice with the same seed yields byte-identical serialized profiles and
// byte-identical analysis reports. A regression here (map iteration order,
// a timestamp, an unseeded RNG) silently destroys reproducibility.
func TestDeterministicProfileAndAnalysis(t *testing.T) {
	run := func() ([]byte, []byte) {
		cs := workloads.NewTinyDNN(64, 512, 1)
		p := cs.Original
		prof, err := ProfileProgram(p, ProfileOptions{
			Period: pmu.Uniform(171),
			Seed:   42,
			NoTime: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var rawProf bytes.Buffer
		if _, err := prof.WriteTo(&rawProf); err != nil {
			t.Fatal(err)
		}
		an, err := Analyze(prof, p.Binary, p.Arena, AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rawAn, err := json.Marshal(an)
		if err != nil {
			t.Fatal(err)
		}
		return rawProf.Bytes(), rawAn
	}

	prof1, an1 := run()
	prof2, an2 := run()
	if !bytes.Equal(prof1, prof2) {
		t.Errorf("serialized profiles differ between identical runs (%d vs %d bytes)",
			len(prof1), len(prof2))
	}
	if !bytes.Equal(an1, an2) {
		t.Errorf("serialized analyses differ between identical runs:\n%s\n---\n%s", an1, an2)
	}
}
