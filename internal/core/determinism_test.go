package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/pmu"
	"repro/internal/workloads"
)

// TestDeterministicProfileAndAnalysis pins the property every experiment
// and the advisor's candidate ranking rely on: the same workload profiled
// twice with the same seed yields byte-identical serialized profiles and
// byte-identical analysis reports. A regression here (map iteration order,
// a timestamp, an unseeded RNG) silently destroys reproducibility.
func TestDeterministicProfileAndAnalysis(t *testing.T) {
	run := func() ([]byte, []byte) {
		cs := workloads.NewTinyDNN(64, 512, 1)
		p := cs.Original
		prof, err := ProfileProgram(p, ProfileOptions{
			Period: pmu.Uniform(171),
			Seed:   42,
			NoTime: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var rawProf bytes.Buffer
		if _, err := prof.WriteTo(&rawProf); err != nil {
			t.Fatal(err)
		}
		an, err := Analyze(prof, p.Binary, p.Arena, AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rawAn, err := json.Marshal(an)
		if err != nil {
			t.Fatal(err)
		}
		return rawProf.Bytes(), rawAn
	}

	prof1, an1 := run()
	prof2, an2 := run()
	if !bytes.Equal(prof1, prof2) {
		t.Errorf("serialized profiles differ between identical runs (%d vs %d bytes)",
			len(prof1), len(prof2))
	}
	if !bytes.Equal(an1, an2) {
		t.Errorf("serialized analyses differ between identical runs:\n%s\n---\n%s", an1, an2)
	}
}

// TestDeterministicThreadedProfile extends the regression to concurrent
// execution: a multi-threaded profile must serialize identically across
// runs even though the per-thread samplers race on the scheduler, because
// every thread owns its sampler and derives its seed from the root seed
// and its stable thread key — never from scheduling order.
func TestDeterministicThreadedProfile(t *testing.T) {
	run := func() []byte {
		cs := workloads.NewNW(256, 16)
		prof, err := ProfileProgram(cs.Original, ProfileOptions{
			Period:  pmu.Uniform(171),
			Seed:    42,
			Threads: 4,
			NoTime:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var raw bytes.Buffer
		if _, err := prof.WriteTo(&raw); err != nil {
			t.Fatal(err)
		}
		return raw.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("threaded profiles differ between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}
