// Package core implements CCProf itself: the online profiler that runs a
// workload under simulated PEBS address sampling, and the offline analyzer
// that recovers loops from the binary, approximates per-loop RCD
// distributions from the samples, classifies conflict misses, and performs
// code- and data-centric attribution (§4 of the paper).
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/faultinj"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/pmu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Profile is the output of the online phase: everything the offline
// analyzer needs, and nothing the hardware would not have provided.
type Profile struct {
	Workload string
	Geom     mem.Geometry
	// PeriodMean is the configured mean sampling period.
	PeriodMean float64
	// Samples holds the address samples of each profiled thread; each
	// thread has a private L1, so per-thread sequences are analyzed
	// independently and their metrics pooled.
	Samples [][]pmu.Sample
	// Events is the total number of L1-miss events across threads (the
	// precise PMU counter value), Refs the total references executed.
	Events uint64
	Refs   uint64
	// Burst is the configured burst length (1 = single-event sampling);
	// the analyzer only trusts within-burst sample distances when > 1.
	Burst int
	// BaselineNs and ProfiledNs are measured wall-clock times of the
	// workload run without and with the sampler attached, for the
	// in-harness overhead measurement.
	BaselineNs int64
	ProfiledNs int64
	// FaultDropped, FaultTruncated and FaultCorrupted annotate degraded
	// profiles: samples an injected fault plan discarded, discarded in
	// truncation bursts, or delivered with rewritten addresses, summed
	// across threads. All zero when profiling ran without fault injection.
	// They are deterministic for a given plan seed and are not part of the
	// profile's binary serialization (a saved profile carries the damage
	// in its sample stream, not the ledger).
	FaultDropped   uint64
	FaultTruncated uint64
	FaultCorrupted uint64
	// StreamSamples counts samples consumed online in streaming mode
	// (ProfileStream), where Samples stays empty — the stream is analyzed,
	// never stored. Always 0 on buffered profiles.
	StreamSamples int
}

// Degraded reports whether fault injection perturbed this profile's sample
// stream.
func (p *Profile) Degraded() bool {
	return p.FaultDropped > 0 || p.FaultTruncated > 0 || p.FaultCorrupted > 0
}

// SampleCount returns the total samples across threads: buffered samples
// plus, in streaming mode, the online-consumed count.
func (p *Profile) SampleCount() int {
	n := p.StreamSamples
	for _, s := range p.Samples {
		n += len(s)
	}
	return n
}

// MeasuredOverhead returns the in-harness wall-clock overhead factor of
// profiling (profiled time / baseline time), or 0 when timings are missing.
func (p *Profile) MeasuredOverhead() float64 {
	if p.BaselineNs <= 0 {
		return 0
	}
	return float64(p.ProfiledNs) / float64(p.BaselineNs)
}

// ProfileOptions configures the online profiler. The zero value profiles a
// sequential run at the paper's recommended mean sampling period (1212)
// with the default L1 geometry.
type ProfileOptions struct {
	Geom    mem.Geometry   // zero value selects mem.L1Default()
	Period  pmu.PeriodDist // nil selects pmu.Uniform(pmu.DefaultPeriod)
	Seed    int64
	Threads int // 0 or 1 profiles the sequential run
	// NoTime skips wall-clock measurement entirely (baseline run and
	// profiled-run timing), making the profile bit-for-bit deterministic
	// for a given seed — required by tests and cached experiments.
	NoTime bool
	// Burst captures this many consecutive miss events per period expiry
	// (bursty sampling, §5.2); 0 or 1 samples single events.
	Burst int
	// Faults, when non-nil and active, deterministically perturbs each
	// thread's sample stream (see internal/faultinj). Injector seeds
	// derive from the plan seed and the key
	// "faults/<workload>/thread/<tid>", so the perturbation is identical
	// at any worker count or scheduling.
	Faults *faultinj.Plan
}

// samplerPool recycles per-thread PMU samplers across profiling runs. A
// sampler taken from the pool is always Reconfigured before use, which
// rewinds it to freshly-constructed state (see pmu.Reconfigure), so reuse
// cannot leak state between runs.
var samplerPool parsim.Pool[*pmu.Sampler]

func (o ProfileOptions) withDefaults() ProfileOptions {
	if o.Geom.Sets == 0 {
		o.Geom = mem.L1Default()
	}
	if o.Period == nil {
		o.Period = pmu.Uniform(pmu.DefaultPeriod)
	}
	if o.Threads < 1 {
		o.Threads = 1
	}
	return o
}

// ProfileProgram runs the workload under the simulated PMU — CCProf's
// online phase. Each thread runs against a private sampler (its own L1
// model and sampling phase), mirroring how libmonitor sets up per-thread
// PEBS contexts.
func ProfileProgram(p *workloads.Program, opts ProfileOptions) (*Profile, error) {
	if p == nil {
		return nil, ErrNilProgram
	}
	o := opts.withDefaults()
	if err := o.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("core: fault plan: %w", err)
	}
	// Validate the resolved sampler configuration once, up front: every
	// per-thread Config below differs only in seed and injector.
	if err := (pmu.Config{Geom: o.Geom, Period: o.Period, Burst: o.Burst}).Validate(); err != nil {
		return nil, fmt.Errorf("core: profile config: %w", err)
	}
	sp := obs.Default.Span("profile")
	defer sp.End()
	obs.Default.Counter("profile.runs").Inc()
	burst := o.Burst
	if burst < 1 {
		burst = 1
	}
	prof := &Profile{
		Workload:   p.Name,
		Geom:       o.Geom,
		PeriodMean: o.Period.Mean(),
		Burst:      burst,
		Samples:    make([][]pmu.Sample, o.Threads),
	}

	if !o.NoTime {
		start := time.Now()
		for tid := 0; tid < o.Threads; tid++ {
			p.RunThread(tid, o.Threads, trace.Discard)
		}
		prof.BaselineNs = time.Since(start).Nanoseconds()
	}

	// Threads run concurrently, as they would under libmonitor: each gets
	// a private sampler (its own L1 model, RNG phase and sample buffer),
	// so the result is deterministic regardless of scheduling. Per-thread
	// seeds follow the engine's derivation scheme (root ⊕ stable task
	// key), decorrelating thread sampling phases even for adjacent roots.
	//
	// Samplers come from a process-wide pool: Reconfigure rewinds a reused
	// sampler to the exact state NewSampler would construct, so sweeps that
	// profile hundreds of candidates stop reallocating the L1 model and
	// sample buffer per run. The per-thread Samples slice is copied out at
	// exact size before the sampler returns to the pool.
	start := time.Now()
	getSampler := func(tid int) *pmu.Sampler {
		seed := o.Seed
		if tid > 0 {
			seed = parsim.DeriveSeed(o.Seed, fmt.Sprintf("thread/%d", tid))
		}
		cfg := pmu.Config{Geom: o.Geom, Period: o.Period, Seed: seed, Burst: o.Burst}
		if o.Faults.Active() {
			// The interface field must stay truly nil for clean runs
			// (a typed-nil injector would still trip pmu's Faults != nil
			// bookkeeping).
			cfg.Faults = o.Faults.Injector(fmt.Sprintf("faults/%s/thread/%d", p.Name, tid))
		}
		s := samplerPool.Get()
		if s == nil {
			s = pmu.NewSampler(cfg)
		} else {
			s.Reconfigure(cfg)
		}
		return s
	}
	var samplers []*pmu.Sampler
	if o.Threads == 1 {
		// The single-thread profile — every sweep task — runs inline: no
		// goroutine, no WaitGroup, and the sampler slice stays on the stack.
		s := getSampler(0)
		one := [1]*pmu.Sampler{s}
		samplers = one[:]
		p.RunThread(0, 1, s)
	} else {
		samplers = make([]*pmu.Sampler, o.Threads)
		var wg sync.WaitGroup
		for tid := 0; tid < o.Threads; tid++ {
			s := getSampler(tid)
			samplers[tid] = s
			wg.Add(1)
			go func(tid int, s *pmu.Sampler) {
				defer wg.Done()
				p.RunThread(tid, o.Threads, s)
			}(tid, s)
		}
		wg.Wait()
	}
	// Merge-on-reassembly: each thread's sampler counted in shard-local
	// fields; fold the totals into the process registry here, once per
	// run, in thread order. Sums commute, so the merged counters are
	// identical at any scheduling.
	for tid, s := range samplers {
		if len(s.Samples) > 0 {
			prof.Samples[tid] = append([]pmu.Sample(nil), s.Samples...)
		}
		prof.Events += s.Events
		prof.Refs += s.Refs
		prof.FaultDropped += s.FaultDropped
		prof.FaultTruncated += s.FaultTruncated
		prof.FaultCorrupted += s.FaultCorrupted
		s.ObserveInto(obs.Default)
		samplerPool.Put(s)
	}
	if !o.NoTime {
		prof.ProfiledNs = time.Since(start).Nanoseconds()
	}
	return prof, nil
}
