package core

import (
	"errors"
	"testing"

	"repro/internal/faultinj"
	"repro/internal/pmu"
	"repro/internal/workloads"
)

func TestProfileTypedErrors(t *testing.T) {
	if _, err := ProfileProgram(nil, ProfileOptions{}); !errors.Is(err, ErrNilProgram) {
		t.Errorf("ProfileProgram(nil): %v, want ErrNilProgram", err)
	}
	if _, err := ProfileL2(nil, L2ProfileOptions{}); !errors.Is(err, ErrNilProgram) {
		t.Errorf("ProfileL2(nil): %v, want ErrNilProgram", err)
	}
	cs := workloads.NewADI(64, 1)
	if _, err := Analyze(nil, cs.Original.Binary, nil, AnalyzeOptions{}); !errors.Is(err, ErrNilProfile) {
		t.Errorf("Analyze(nil profile): %v, want ErrNilProfile", err)
	}
	prof, err := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Fixed(100), Seed: 1, NoTime: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prof, nil, nil, AnalyzeOptions{}); !errors.Is(err, ErrNilBinary) {
		t.Errorf("Analyze(nil binary): %v, want ErrNilBinary", err)
	}
}

func TestProfileValidatesConfig(t *testing.T) {
	cs := workloads.NewADI(64, 1)
	_, err := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Fixed(0), NoTime: true})
	if !errors.Is(err, pmu.ErrBadPeriod) {
		t.Errorf("zero period: %v, want pmu.ErrBadPeriod", err)
	}
	_, err = ProfileProgram(cs.Original, ProfileOptions{Burst: -1, NoTime: true})
	if !errors.Is(err, pmu.ErrBadBurst) {
		t.Errorf("negative burst: %v, want pmu.ErrBadBurst", err)
	}
	_, err = ProfileProgram(cs.Original, ProfileOptions{
		Faults: &faultinj.Plan{DropRate: 2}, NoTime: true,
	})
	if !errors.Is(err, faultinj.ErrBadRate) {
		t.Errorf("bad plan: %v, want faultinj.ErrBadRate", err)
	}
	_, err = ProfileL2(cs.Original, L2ProfileOptions{Period: pmu.Fixed(0)})
	if !errors.Is(err, pmu.ErrBadPeriod) {
		t.Errorf("ProfileL2 zero period: %v, want pmu.ErrBadPeriod", err)
	}
}

// TestProfileWithFaultPlan: an injected plan degrades the profile —
// counters move, samples shrink — deterministically for a given seed, and
// a clean profile reports no degradation.
func TestProfileWithFaultPlan(t *testing.T) {
	cs := workloads.NewADI(256, 1)
	opts := func(plan *faultinj.Plan) ProfileOptions {
		return ProfileOptions{Period: pmu.Fixed(50), Seed: 3, NoTime: true, Faults: plan}
	}
	clean, err := ProfileProgram(cs.Original, opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded() {
		t.Errorf("clean profile degraded: %+v", clean)
	}
	plan := &faultinj.Plan{Seed: 5, DropRate: 0.25, CorruptRate: 0.05}
	a, err := ProfileProgram(cs.Original, opts(plan))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Degraded() || a.FaultDropped == 0 || a.FaultCorrupted == 0 {
		t.Fatalf("plan injected nothing: %+v", a)
	}
	if a.SampleCount() >= clean.SampleCount() {
		t.Errorf("dropping 25%% kept %d samples vs clean %d", a.SampleCount(), clean.SampleCount())
	}
	// Events and Refs measure the workload, not the sampler; injection
	// must not perturb them.
	if a.Events != clean.Events || a.Refs != clean.Refs {
		t.Errorf("fault injection changed the workload: events %d/%d refs %d/%d",
			a.Events, clean.Events, a.Refs, clean.Refs)
	}
	b, err := ProfileProgram(cs.Original, opts(plan))
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultDropped != b.FaultDropped || a.FaultCorrupted != b.FaultCorrupted ||
		a.SampleCount() != b.SampleCount() {
		t.Errorf("same plan diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.FaultDropped, a.FaultCorrupted, a.SampleCount(),
			b.FaultDropped, b.FaultCorrupted, b.SampleCount())
	}
}

// TestProfileFaultsMultiThread: per-thread injector keys decorrelate the
// threads' fault streams while keeping the whole profile deterministic.
func TestProfileFaultsMultiThread(t *testing.T) {
	cs := workloads.NewADI(256, 4)
	plan := &faultinj.Plan{Seed: 11, DropRate: 0.3}
	run := func() *Profile {
		prof, err := ProfileProgram(cs.Original, ProfileOptions{
			Period: pmu.Fixed(50), Seed: 3, Threads: 4, NoTime: true, Faults: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	a, b := run(), run()
	if a.FaultDropped == 0 {
		t.Fatal("no drops across 4 threads")
	}
	for tid := range a.Samples {
		if len(a.Samples[tid]) != len(b.Samples[tid]) {
			t.Errorf("thread %d sample counts diverged: %d vs %d",
				tid, len(a.Samples[tid]), len(b.Samples[tid]))
		}
	}
	// An analysis over the degraded profile must still complete.
	if _, err := Analyze(a, cs.Original.Binary, cs.Original.Arena, AnalyzeOptions{}); err != nil {
		t.Errorf("analyzing degraded profile: %v", err)
	}
}
