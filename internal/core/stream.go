package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/cfg"
	"repro/internal/mem"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/pmu"
	"repro/internal/rcd"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Streaming analysis. The offline analyzer's per-sample work — RCD/CP
// observation, burst-boundary sequence breaks, code/data/function
// attribution — is a state machine over one sample at a time; nothing in it
// needs the sample vector materialized. streamState is that machine,
// extracted so the buffered path (Analyze iterating Profile.Samples) and
// the online path (StreamAnalyzer fed by pmu sampler Handlers while the
// workload runs) execute the exact same code on the exact same per-thread
// sample sequences. Equivalence between the two modes is structural, not
// coincidental.
//
// Memory is O(contexts x threads x sets): the whole-program and per-loop
// CP trackers (per-set last-miss state plus fixed-bucket histograms) and
// the attribution count maps. Nothing grows with the number of samples, so
// an arbitrarily long trace — or a live stream — analyzes at fixed memory.

// streamState is the analyzer's incremental state: everything Analyze used
// to keep across its per-sample loop, owned by one analysis (buffered or
// streaming) from newStreamState to finish.
type streamState struct {
	o       AnalyzeOptions
	geom    mem.Geometry
	burst   int
	threads int

	bin    *objfile.Binary
	arena  *alloc.Arena
	graph  *cfg.Graph
	forest *cfg.Forest

	at      *attrState
	globals []*rcd.CPTracker
	si      []int // per-thread sample index, the burst-boundary phase
}

// newStreamState recovers the loop forest from the binary and prepares
// pooled attribution state for threads sample streams. opts are resolved
// with withDefaults; burst < 2 disables burst-boundary breaks.
func newStreamState(bin *objfile.Binary, arena *alloc.Arena, geom mem.Geometry, threads, burst int, opts AnalyzeOptions) (*streamState, error) {
	o := opts.withDefaults()
	graph := graphPool.Get()
	if graph == nil {
		graph = new(cfg.Graph)
	}
	if err := graph.Rebuild(bin); err != nil {
		graphPool.Put(graph)
		return nil, fmt.Errorf("core: recovering CFG: %w", err)
	}
	at := attrPool.Get()
	if at == nil {
		at = newAttrState()
	}
	if cap(at.globals) < threads {
		at.globals = make([]*rcd.CPTracker, threads)
	}
	globals := at.globals[:threads]
	at.globals = globals
	for t := range globals {
		globals[t] = getCP(geom.Sets)
	}
	return &streamState{
		o:       o,
		geom:    geom,
		burst:   burst,
		threads: threads,
		bin:     bin,
		arena:   arena,
		graph:   graph,
		forest:  graph.FindLoops(),
		at:      at,
		globals: globals,
		si:      make([]int, threads),
	}, nil
}

// sample feeds one sample of thread t's stream through the analyzer: the
// former per-sample body of Analyze, verbatim. Samples of one thread must
// arrive in stream order; threads may interleave arbitrarily (see
// StreamAnalyzer for why that cannot change the result). Not safe for
// concurrent use — callers serialize.
func (ss *streamState) sample(t int, sm pmu.Sample) {
	// Bursty sampling: only within-burst sample distances are exact miss
	// distances, so break every tracker's sequence at each burst boundary.
	// The boundary is a function of the thread's own sample index, so it
	// falls on the same samples however threads interleave.
	if ss.burst > 1 && ss.si[t]%ss.burst == 0 {
		ss.globals[t].BreakSequence()
		for _, st := range ss.at.byLoop {
			st.trackers[t].BreakSequence()
		}
	}
	ss.si[t]++
	set := ss.geom.Set(sm.Addr)
	d := ss.globals[t].Observe(set)

	// Data-centric attribution.
	if ss.arena != nil {
		if blk, ok := ss.arena.Find(sm.Addr); ok {
			ss.at.dataSamples[blk.Name]++
			if d != rcd.NoPrior && d <= ss.o.Threshold {
				ss.at.dataShort[blk.Name]++
			}
		}
	}

	// Function-level rollup.
	if fn, ok := ss.bin.FuncFor(sm.IP); ok {
		ss.at.funcSamples[fn.Name]++
		if d != rcd.NoPrior && d <= ss.o.Threshold {
			ss.at.funcShort[fn.Name]++
		}
	}

	// Code-centric attribution.
	loop := ss.forest.InnermostAt(sm.IP)
	if loop == nil {
		ss.at.unattributed++
		return
	}
	st := ss.at.byLoop[loop]
	if st == nil {
		st = ss.at.takeLoopState(loop, ss.threads)
		for i := range st.trackers {
			st.trackers[i] = getCP(ss.geom.Sets)
		}
		ss.at.byLoop[loop] = st
	}
	st.samples++
	st.trackers[t].Observe(set)
}

// totalSamples returns the number of samples fed so far.
func (ss *streamState) totalSamples() int {
	n := 0
	for _, c := range ss.si {
		n += c
	}
	return n
}

// finish aggregates the accumulated state into an Analysis — the former
// report-building tail of Analyze — and releases every pooled resource. The
// streamState must not be used afterwards.
func (ss *streamState) finish(workload string) *Analysis {
	defer ss.release()
	o := ss.o
	at := ss.at
	an := &Analysis{
		Workload:     workload,
		Threshold:    o.Threshold,
		TotalSamples: ss.totalSamples(),
		Unattributed: at.unattributed,
	}

	// Whole-program metrics: pool per-thread trackers.
	pooledGlobal := poolTrackers(ss.globals, o.Threshold)
	an.CF = pooledGlobal.cf
	an.CDF = pooledGlobal.cdf
	an.Conflict = an.TotalSamples >= o.MinLoopSamples && o.Model.Predict(an.CF)

	// Per-loop reports.
	an.Loops = make([]LoopReport, 0, len(at.byLoop))
	for _, st := range at.byLoop {
		pooled := poolTrackers(st.trackers, o.Threshold)
		rep := LoopReport{
			Loop:         st.loop.Name(),
			Depth:        st.loop.Depth,
			Samples:      st.samples,
			Contribution: float64(st.samples) / float64(an.TotalSamples),
			SetsUsed:     pooled.setsUsed,
			CF:           pooled.cf,
			MeanCP:       pooled.meanCP,
			VictimSets:   pooled.victims,
			CDF:          pooled.cdf,
		}
		rep.Conflict = st.samples >= o.MinLoopSamples && o.Model.Predict(rep.CF)
		an.Loops = append(an.Loops, rep)
		if len(st.loop.Children) == 0 {
			an.ActiveInnerLoops++
		}
	}
	sortLoops(an.Loops)

	// The reports retain nothing the trackers own (loop names are strings,
	// CDFs and victim lists are freshly built), so every tracker goes back
	// to the pool for the next analysis.
	for _, cp := range ss.globals {
		cpPool.Put(cp)
	}
	for _, st := range at.byLoop {
		for _, cp := range st.trackers {
			cpPool.Put(cp)
		}
	}

	an.Funcs = buildFuncReports(at.funcSamples, at.funcShort, an.TotalSamples)
	an.Data = buildDataReports(at.dataSamples, at.dataShort, an.TotalSamples)
	return an
}

// release returns the pooled graph and attribution state.
func (ss *streamState) release() {
	graphPool.Put(ss.graph)
	ss.graph, ss.forest = nil, nil
	ss.at.clear()
	attrPool.Put(ss.at)
	ss.at = nil
	ss.globals = nil
}

// StreamAnalyzer is the online analyzer: per-thread pmu sampler Handlers
// feed it samples as the workload runs, and Finish produces the same
// Analysis the buffered ProfileProgram+Analyze pipeline would — without any
// sample vector ever existing.
//
// Concurrent threads interleave their Sample calls under one mutex, in a
// scheduling-dependent order; the result is still deterministic because
// every effect of a sample commutes across threads. Trackers are per
// (context, thread): slot [t] only ever receives thread t's observations
// and burst breaks, both ordered by thread t's own sample index, so its
// operation sequence is identical however arrivals interleave (a loop
// context created "late" by another thread's sample misses only breaks that
// precede slot [t]'s first observation, which are no-ops on fresh
// trackers). Everything else — sample counts, attribution maps — is
// commutative sums, and the report stage sorts.
type StreamAnalyzer struct {
	mu sync.Mutex
	ss *streamState
}

// NewStreamAnalyzer prepares an online analysis of threads concurrent
// sample streams against the given binary, arena and cache geometry. burst
// must match the profiler's burst length (<= 1 for single-event sampling).
func NewStreamAnalyzer(bin *objfile.Binary, arena *alloc.Arena, geom mem.Geometry, threads, burst int, opts AnalyzeOptions) (*StreamAnalyzer, error) {
	if bin == nil {
		return nil, ErrNilBinary
	}
	ss, err := newStreamState(bin, arena, geom, threads, burst, opts)
	if err != nil {
		return nil, err
	}
	return &StreamAnalyzer{ss: ss}, nil
}

// Sample feeds one sample of thread tid's stream. Safe for concurrent use
// by different threads; samples of one thread must arrive in stream order.
func (sa *StreamAnalyzer) Sample(tid int, sm pmu.Sample) {
	sa.mu.Lock()
	sa.ss.sample(tid, sm)
	sa.mu.Unlock()
}

// HandlerFor returns a pmu.Sampler Handler delivering thread tid's samples
// to the analyzer.
func (sa *StreamAnalyzer) HandlerFor(tid int) func(pmu.Sample) {
	return func(sm pmu.Sample) { sa.Sample(tid, sm) }
}

// TotalSamples returns the number of samples consumed so far.
func (sa *StreamAnalyzer) TotalSamples() int {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.ss.totalSamples()
}

// Finish completes the analysis and releases the analyzer's pooled state.
// The analyzer must not be used afterwards.
func (sa *StreamAnalyzer) Finish(workload string) *Analysis {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	an := sa.ss.finish(workload)
	sa.ss = nil
	return an
}

// ProfileStream runs the workload under the simulated PMU with every
// sampler delivering straight into an online StreamAnalyzer — the fused,
// bounded-memory equivalent of ProfileProgram followed by Analyze. The
// returned Profile carries the run's counters and fault ledger but no
// sample vectors (Samples entries stay nil; SampleCount reports the
// streamed count); the Analysis is byte-identical to what the buffered
// pipeline produces for the same options and seed, including at any thread
// count. Observability counters ("profile.runs", "analyze.runs", pmu.*,
// trace.*) advance exactly as in the two-phase pipeline.
func ProfileStream(p *workloads.Program, opts ProfileOptions, aopts AnalyzeOptions) (*Profile, *Analysis, error) {
	if p == nil {
		return nil, nil, ErrNilProgram
	}
	o := opts.withDefaults()
	if err := o.Faults.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: fault plan: %w", err)
	}
	if err := (pmu.Config{Geom: o.Geom, Period: o.Period, Burst: o.Burst}).Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: profile config: %w", err)
	}
	burst := o.Burst
	if burst < 1 {
		burst = 1
	}
	sa, err := NewStreamAnalyzer(p.Binary, p.Arena, o.Geom, o.Threads, burst, aopts)
	if err != nil {
		return nil, nil, err
	}

	sp := obs.Default.Span("profile")
	obs.Default.Counter("profile.runs").Inc()
	prof := &Profile{
		Workload:   p.Name,
		Geom:       o.Geom,
		PeriodMean: o.Period.Mean(),
		Burst:      burst,
		Samples:    make([][]pmu.Sample, o.Threads),
	}

	if !o.NoTime {
		start := time.Now()
		for tid := 0; tid < o.Threads; tid++ {
			p.RunThread(tid, o.Threads, trace.Discard)
		}
		prof.BaselineNs = time.Since(start).Nanoseconds()
	}

	// The run mirrors ProfileProgram exactly — pooled per-thread samplers,
	// derived seeds, per-thread fault injectors — except that each sampler
	// gets a Handler, so deliver() hands every sample to the analyzer
	// instead of appending to the sampler's buffer.
	start := time.Now()
	getSampler := func(tid int) *pmu.Sampler {
		seed := o.Seed
		if tid > 0 {
			seed = parsim.DeriveSeed(o.Seed, fmt.Sprintf("thread/%d", tid))
		}
		cfg := pmu.Config{Geom: o.Geom, Period: o.Period, Seed: seed, Burst: o.Burst}
		if o.Faults.Active() {
			cfg.Faults = o.Faults.Injector(fmt.Sprintf("faults/%s/thread/%d", p.Name, tid))
		}
		s := samplerPool.Get()
		if s == nil {
			s = pmu.NewSampler(cfg)
		} else {
			s.Reconfigure(cfg)
		}
		s.Handler = sa.HandlerFor(tid)
		return s
	}
	var samplers []*pmu.Sampler
	if o.Threads == 1 {
		s := getSampler(0)
		one := [1]*pmu.Sampler{s}
		samplers = one[:]
		p.RunThread(0, 1, s)
	} else {
		samplers = make([]*pmu.Sampler, o.Threads)
		var wg sync.WaitGroup
		for tid := 0; tid < o.Threads; tid++ {
			s := getSampler(tid)
			samplers[tid] = s
			wg.Add(1)
			go func(tid int, s *pmu.Sampler) {
				defer wg.Done()
				p.RunThread(tid, o.Threads, s)
			}(tid, s)
		}
		wg.Wait()
	}
	for _, s := range samplers {
		prof.StreamSamples += int(s.SampleCount())
		prof.Events += s.Events
		prof.Refs += s.Refs
		prof.FaultDropped += s.FaultDropped
		prof.FaultTruncated += s.FaultTruncated
		prof.FaultCorrupted += s.FaultCorrupted
		s.ObserveInto(obs.Default)
		s.Handler = nil // drop the analyzer reference before pooling
		samplerPool.Put(s)
	}
	if !o.NoTime {
		prof.ProfiledNs = time.Since(start).Nanoseconds()
	}
	sp.End()

	asp := obs.Default.Span("analyze")
	obs.Default.Counter("analyze.runs").Inc()
	an := sa.Finish(p.Name)
	asp.End()
	return prof, an, nil
}
