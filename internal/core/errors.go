package core

import "errors"

// Typed argument errors returned by the profiling and analysis entry
// points, so callers (CLIs, experiments) can branch on the cause instead of
// string-matching.
var (
	// ErrNilProgram is returned when a profiling entry point receives a
	// nil workload program.
	ErrNilProgram = errors.New("core: nil program")
	// ErrNilProfile is returned when Analyze receives a nil profile.
	ErrNilProfile = errors.New("core: nil profile")
	// ErrNilBinary is returned when Analyze receives a nil binary.
	ErrNilBinary = errors.New("core: nil binary")
)
