package core

import (
	"bytes"
	"testing"

	"repro/internal/pmu"
	"repro/internal/workloads"
)

// FuzzReadProfile hardens the profile parser: arbitrary input must never
// panic or allocate absurdly, and valid profiles must round-trip.
func FuzzReadProfile(f *testing.F) {
	// Seed with a real serialized profile and a few corruptions.
	cs := workloads.NewSymmetrization(32)
	prof, err := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Fixed(10), NoTime: true})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := prof.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("CCP2"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 20 {
		corrupt[15] ^= 0xff
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, not panic
		}
		// Parsed profiles must re-serialize.
		var out bytes.Buffer
		if _, err := p.WriteTo(&out); err != nil {
			t.Fatalf("re-serializing parsed profile: %v", err)
		}
	})
}
