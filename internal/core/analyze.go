package core

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/cfg"
	"repro/internal/classify"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/rcd"
)

// LoopReport is the per-loop output of code-centric attribution: the
// columns of Table 4 plus the RCD metrics and the classifier verdict.
type LoopReport struct {
	// Loop names the loop by its header source location (e.g.
	// "needle.cpp:189"); anonymous code blocks get "loop@<addr>".
	Loop  string
	Depth int
	// Samples is the number of L1-miss samples attributed to the loop;
	// Contribution is its share of all samples (the paper's "L1 cache
	// miss contribution").
	Samples      int
	Contribution float64
	// SetsUsed counts cache sets that received at least one sampled miss
	// in this loop (Table 4's rightmost column).
	SetsUsed int
	// CF is the short-RCD contribution factor of the loop (Equation 1)
	// at the analysis threshold.
	CF float64
	// MeanCP is the mean conflict-period length observed in the loop.
	MeanCP float64
	// Conflict is the classifier verdict: does this loop suffer from
	// conflict misses?
	Conflict bool
	// VictimSets lists sets receiving more than twice the uniform miss
	// share within this loop.
	VictimSets []int
	// CDF is the loop's RCD distribution (Figures 7 and 9).
	CDF []CDFPoint
}

// CDFPoint mirrors stats.CDFPoint for report consumers.
type CDFPoint struct {
	RCD int
	Cum float64
}

// DataReport is the per-allocation output of data-centric attribution.
type DataReport struct {
	// Name is the allocation label (data-structure name).
	Name string
	// Samples is the number of samples falling inside the allocation;
	// ShortRCD of those, the number whose sampled RCD was short —
	// the data structures responsible for conflicts.
	Samples      int
	ShortRCD     int
	Contribution float64
}

// FuncReport is the per-function view of code-centric attribution: the
// paper's program contexts are "loops, functions", and function-level
// rollups are what anonymous closed-source regions (MKL) degrade to.
type FuncReport struct {
	Func         string
	Samples      int
	Contribution float64
	CF           float64
}

// Analysis is the complete offline-analysis result for one profile.
type Analysis struct {
	Workload  string
	Threshold int
	// TotalSamples is the number of samples analyzed.
	TotalSamples int
	// Loops is sorted by decreasing sample count.
	Loops []LoopReport
	// Funcs is the function-level rollup, sorted by decreasing samples.
	Funcs []FuncReport
	// Data is sorted by decreasing sample count.
	Data []DataReport
	// ActiveInnerLoops counts innermost loops that received samples
	// (Table 2's "# of active inner loops").
	ActiveInnerLoops int
	// CF and CDF are the whole-program pooled metrics.
	CF  float64
	CDF []CDFPoint
	// Conflict is the whole-program classifier verdict.
	Conflict bool
	// Unattributed counts samples whose IP matched no recovered loop.
	Unattributed int
}

// TargetLoop returns the report for the loop with the given name, if any.
func (a *Analysis) TargetLoop(name string) (LoopReport, bool) {
	for _, l := range a.Loops {
		if l.Loop == name {
			return l, true
		}
	}
	return LoopReport{}, false
}

// AnalyzeOptions configures the offline analyzer. The zero value uses the
// paper's threshold T = 8 and the built-in classifier model.
type AnalyzeOptions struct {
	Threshold int                // 0 selects rcd.DefaultThreshold
	Model     *classify.Logistic // nil selects DefaultModel()
	// MinLoopSamples suppresses loops with fewer samples from conflict
	// classification (they get Conflict=false); default 8.
	MinLoopSamples int
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.Threshold == 0 {
		o.Threshold = rcd.DefaultThreshold
	}
	if o.Model == nil {
		m := DefaultModel()
		o.Model = &m
	}
	if o.MinLoopSamples == 0 {
		o.MinLoopSamples = 8
	}
	return o
}

// loopState accumulates per-loop sample statistics during attribution.
type loopState struct {
	loop     *cfg.Loop
	samples  int
	trackers []*rcd.CPTracker // one per thread
}

// Analyze is CCProf's offline phase: it recovers the loop forest from the
// binary, attributes every sample to its innermost loop (code-centric) and
// covering allocation (data-centric), approximates RCD distributions from
// the sampled miss sequences, and classifies each loop.
func Analyze(prof *Profile, bin *objfile.Binary, arena *alloc.Arena, opts AnalyzeOptions) (*Analysis, error) {
	if prof == nil {
		return nil, ErrNilProfile
	}
	if bin == nil {
		return nil, ErrNilBinary
	}
	defer obs.Default.StartPhase("analyze")()
	obs.Default.Counter("analyze.runs").Inc()
	o := opts.withDefaults()

	graph, err := cfg.Build(bin)
	if err != nil {
		return nil, fmt.Errorf("core: recovering CFG: %w", err)
	}
	forest := graph.FindLoops()

	threads := len(prof.Samples)
	byLoop := make(map[*cfg.Loop]*loopState)
	globals := make([]*rcd.CPTracker, threads)
	for t := range globals {
		globals[t] = rcd.NewCP(prof.Geom.Sets)
	}
	dataSamples := make(map[string]int)
	dataShort := make(map[string]int)
	funcSamples := make(map[string]int)
	funcShort := make(map[string]int)

	an := &Analysis{
		Workload:  prof.Workload,
		Threshold: o.Threshold,
	}

	burst := prof.Burst
	for t, samples := range prof.Samples {
		for si, sm := range samples {
			// Bursty sampling: only within-burst sample distances are
			// exact miss distances, so break every tracker's sequence
			// at each burst boundary.
			if burst > 1 && si%burst == 0 {
				globals[t].BreakSequence()
				for _, st := range byLoop {
					st.trackers[t].BreakSequence()
				}
			}
			an.TotalSamples++
			set := prof.Geom.Set(sm.Addr)
			d := globals[t].Observe(set)

			// Data-centric attribution.
			if arena != nil {
				if blk, ok := arena.Find(sm.Addr); ok {
					dataSamples[blk.Name]++
					if d != rcd.NoPrior && d <= o.Threshold {
						dataShort[blk.Name]++
					}
				}
			}

			// Function-level rollup.
			if fn, ok := bin.FuncFor(sm.IP); ok {
				funcSamples[fn.Name]++
				if d != rcd.NoPrior && d <= o.Threshold {
					funcShort[fn.Name]++
				}
			}

			// Code-centric attribution.
			loop := forest.InnermostAt(sm.IP)
			if loop == nil {
				an.Unattributed++
				continue
			}
			st := byLoop[loop]
			if st == nil {
				st = &loopState{loop: loop, trackers: make([]*rcd.CPTracker, threads)}
				for i := range st.trackers {
					st.trackers[i] = rcd.NewCP(prof.Geom.Sets)
				}
				byLoop[loop] = st
			}
			st.samples++
			st.trackers[t].Observe(set)
		}
	}

	// Whole-program metrics: pool per-thread trackers.
	pooledGlobal := poolTrackers(globals, o.Threshold)
	an.CF = pooledGlobal.cf
	an.CDF = pooledGlobal.cdf
	an.Conflict = an.TotalSamples >= o.MinLoopSamples && o.Model.Predict(an.CF)

	// Per-loop reports.
	for _, st := range byLoop {
		pooled := poolTrackers(st.trackers, o.Threshold)
		rep := LoopReport{
			Loop:         st.loop.Name(),
			Depth:        st.loop.Depth,
			Samples:      st.samples,
			Contribution: float64(st.samples) / float64(an.TotalSamples),
			SetsUsed:     pooled.setsUsed,
			CF:           pooled.cf,
			MeanCP:       pooled.meanCP,
			VictimSets:   pooled.victims,
			CDF:          pooled.cdf,
		}
		rep.Conflict = st.samples >= o.MinLoopSamples && o.Model.Predict(rep.CF)
		an.Loops = append(an.Loops, rep)
		if len(st.loop.Children) == 0 {
			an.ActiveInnerLoops++
		}
	}
	sort.Slice(an.Loops, func(i, j int) bool {
		if an.Loops[i].Samples != an.Loops[j].Samples {
			return an.Loops[i].Samples > an.Loops[j].Samples
		}
		return an.Loops[i].Loop < an.Loops[j].Loop
	})

	// Function reports. The per-function cf reuses the global short-RCD
	// attribution of each sample (the sampled sequence is one stream).
	for name, n := range funcSamples {
		an.Funcs = append(an.Funcs, FuncReport{
			Func:         name,
			Samples:      n,
			Contribution: float64(n) / float64(an.TotalSamples),
			CF:           float64(funcShort[name]) / float64(n),
		})
	}
	sort.Slice(an.Funcs, func(i, j int) bool {
		if an.Funcs[i].Samples != an.Funcs[j].Samples {
			return an.Funcs[i].Samples > an.Funcs[j].Samples
		}
		return an.Funcs[i].Func < an.Funcs[j].Func
	})

	// Data reports.
	for name, n := range dataSamples {
		an.Data = append(an.Data, DataReport{
			Name:         name,
			Samples:      n,
			ShortRCD:     dataShort[name],
			Contribution: float64(n) / float64(an.TotalSamples),
		})
	}
	sort.Slice(an.Data, func(i, j int) bool {
		if an.Data[i].Samples != an.Data[j].Samples {
			return an.Data[i].Samples > an.Data[j].Samples
		}
		return an.Data[i].Name < an.Data[j].Name
	})
	return an, nil
}

// pooledMetrics aggregates the per-thread trackers of one context.
type pooledMetrics struct {
	cf       float64
	setsUsed int
	meanCP   float64
	victims  []int
	cdf      []CDFPoint
}

func poolTrackers(cps []*rcd.CPTracker, threshold int) pooledMetrics {
	var pm pooledMetrics
	if len(cps) == 0 {
		return pm
	}
	sets := cps[0].RCD().Sets()
	var total, short uint64
	var cpSum float64
	var cpRuns uint64
	missBySet := make([]uint64, sets)
	var hist histAccum
	for _, cp := range cps {
		cp.Flush()
		tr := cp.RCD()
		total += tr.Total()
		short += tr.ShortCount(threshold)
		for s := 0; s < sets; s++ {
			missBySet[s] += tr.SetMisses(s)
		}
		hist.merge(tr)
		if p := cp.Periods(); p.Total() > 0 {
			cpSum += cp.MeanPeriod() * float64(p.Total())
			cpRuns += p.Total()
		}
	}
	if total == 0 {
		return pm
	}
	pm.cf = float64(short) / float64(total)
	for s, m := range missBySet {
		if m > 0 {
			pm.setsUsed++
		}
		if float64(m) > 2*float64(total)/float64(sets) {
			pm.victims = append(pm.victims, s)
		}
	}
	if cpRuns > 0 {
		pm.meanCP = cpSum / float64(cpRuns)
	}
	pm.cdf = hist.cdf()
	return pm
}

// histAccum merges per-thread pooled RCD histograms into one CDF.
type histAccum struct {
	counts map[int]uint64
	total  uint64
}

func (h *histAccum) merge(tr *rcd.Tracker) {
	if h.counts == nil {
		h.counts = make(map[int]uint64)
	}
	src := tr.Hist()
	for _, v := range src.Values() {
		h.counts[v] += src.Count(v)
		h.total += src.Count(v)
	}
}

func (h *histAccum) cdf() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	vals := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	out := make([]CDFPoint, 0, len(vals))
	var run uint64
	for _, v := range vals {
		run += h.counts[v]
		out = append(out, CDFPoint{RCD: v, Cum: float64(run) / float64(h.total)})
	}
	return out
}
