package core

import (
	"slices"

	"repro/internal/alloc"
	"repro/internal/cfg"
	"repro/internal/classify"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/rcd"
	"repro/internal/stats"
)

// LoopReport is the per-loop output of code-centric attribution: the
// columns of Table 4 plus the RCD metrics and the classifier verdict.
type LoopReport struct {
	// Loop names the loop by its header source location (e.g.
	// "needle.cpp:189"); anonymous code blocks get "loop@<addr>".
	Loop  string
	Depth int
	// Samples is the number of L1-miss samples attributed to the loop;
	// Contribution is its share of all samples (the paper's "L1 cache
	// miss contribution").
	Samples      int
	Contribution float64
	// SetsUsed counts cache sets that received at least one sampled miss
	// in this loop (Table 4's rightmost column).
	SetsUsed int
	// CF is the short-RCD contribution factor of the loop (Equation 1)
	// at the analysis threshold.
	CF float64
	// MeanCP is the mean conflict-period length observed in the loop.
	MeanCP float64
	// Conflict is the classifier verdict: does this loop suffer from
	// conflict misses?
	Conflict bool
	// VictimSets lists sets receiving more than twice the uniform miss
	// share within this loop.
	VictimSets []int
	// CDF is the loop's RCD distribution (Figures 7 and 9).
	CDF []CDFPoint
}

// CDFPoint mirrors stats.CDFPoint for report consumers.
type CDFPoint struct {
	RCD int
	Cum float64
}

// DataReport is the per-allocation output of data-centric attribution.
type DataReport struct {
	// Name is the allocation label (data-structure name).
	Name string
	// Samples is the number of samples falling inside the allocation;
	// ShortRCD of those, the number whose sampled RCD was short —
	// the data structures responsible for conflicts.
	Samples      int
	ShortRCD     int
	Contribution float64
}

// FuncReport is the per-function view of code-centric attribution: the
// paper's program contexts are "loops, functions", and function-level
// rollups are what anonymous closed-source regions (MKL) degrade to.
type FuncReport struct {
	Func         string
	Samples      int
	Contribution float64
	CF           float64
}

// Analysis is the complete offline-analysis result for one profile.
type Analysis struct {
	Workload  string
	Threshold int
	// TotalSamples is the number of samples analyzed.
	TotalSamples int
	// Loops is sorted by decreasing sample count.
	Loops []LoopReport
	// Funcs is the function-level rollup, sorted by decreasing samples.
	Funcs []FuncReport
	// Data is sorted by decreasing sample count.
	Data []DataReport
	// ActiveInnerLoops counts innermost loops that received samples
	// (Table 2's "# of active inner loops").
	ActiveInnerLoops int
	// CF and CDF are the whole-program pooled metrics.
	CF  float64
	CDF []CDFPoint
	// Conflict is the whole-program classifier verdict.
	Conflict bool
	// Unattributed counts samples whose IP matched no recovered loop.
	Unattributed int
}

// TargetLoop returns the report for the loop with the given name, if any.
func (a *Analysis) TargetLoop(name string) (LoopReport, bool) {
	for _, l := range a.Loops {
		if l.Loop == name {
			return l, true
		}
	}
	return LoopReport{}, false
}

// AnalyzeOptions configures the offline analyzer. The zero value uses the
// paper's threshold T = 8 and the built-in classifier model.
type AnalyzeOptions struct {
	Threshold int                // 0 selects rcd.DefaultThreshold
	Model     *classify.Logistic // nil selects DefaultModel()
	// MinLoopSamples suppresses loops with fewer samples from conflict
	// classification (they get Conflict=false); default 8.
	MinLoopSamples int
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.Threshold == 0 {
		o.Threshold = rcd.DefaultThreshold
	}
	if o.Model == nil {
		DefaultModel() // ensure the builtin model is trained
		o.Model = &defaultModel
	}
	if o.MinLoopSamples == 0 {
		o.MinLoopSamples = 8
	}
	return o
}

// loopState accumulates per-loop sample statistics during attribution.
type loopState struct {
	loop     *cfg.Loop
	samples  int
	trackers []*rcd.CPTracker // one per thread
}

// attrState is Analyze's reusable attribution state: the by-context maps
// that every call fills and drains. Pooling them keeps their buckets warm
// across a sweep, where consecutive analyses see the same loop and data
// structure names.
type attrState struct {
	byLoop      map[*cfg.Loop]*loopState
	dataSamples map[string]int
	dataShort   map[string]int
	funcSamples map[string]int
	funcShort   map[string]int

	// unattributed counts samples whose IP matched no recovered loop.
	unattributed int

	// states is a free list of loopState values: every state ever built by
	// this attrState, reused in order. Entries are individually allocated so
	// pointers held by byLoop stay stable as the list grows.
	states []*loopState
	used   int

	// globals is the reused per-thread whole-program tracker slice.
	globals []*rcd.CPTracker
}

func newAttrState() *attrState {
	return &attrState{
		byLoop:      make(map[*cfg.Loop]*loopState),
		dataSamples: make(map[string]int),
		dataShort:   make(map[string]int),
		funcSamples: make(map[string]int),
		funcShort:   make(map[string]int),
	}
}

func (at *attrState) clear() {
	clear(at.byLoop)
	clear(at.dataSamples)
	clear(at.dataShort)
	clear(at.funcSamples)
	clear(at.funcShort)
	at.unattributed = 0
	for _, st := range at.states[:at.used] {
		st.loop = nil
		for i := range st.trackers {
			st.trackers[i] = nil // trackers went back to cpPool
		}
	}
	at.used = 0
	for i := range at.globals {
		at.globals[i] = nil
	}
}

// takeLoopState hands out the next free loopState, ready for a new loop
// context: samples zeroed and the tracker slice sized to threads (entries
// nil; the caller fills them from the tracker pool).
func (at *attrState) takeLoopState(loop *cfg.Loop, threads int) *loopState {
	var st *loopState
	if at.used < len(at.states) {
		st = at.states[at.used]
	} else {
		st = &loopState{}
		at.states = append(at.states, st)
	}
	at.used++
	st.loop = loop
	st.samples = 0
	if cap(st.trackers) < threads {
		st.trackers = make([]*rcd.CPTracker, threads)
	} else {
		st.trackers = st.trackers[:threads]
	}
	return st
}

var attrPool parsim.Pool[*attrState]

// cmpString is a branch-light strings.Compare for the report sorts.
func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cpPool recycles conflict-period trackers across Analyze calls. Analyze
// builds one tracker per thread per sampled loop context; a sweep analyzing
// hundreds of profiles against the same cache geometry reuses the same
// trackers (and their dense histogram banks) instead of reallocating them.
// Every tracker taken from the pool is Reset before use.
var cpPool parsim.Pool[*rcd.CPTracker]

// graphPool recycles CFG graphs (and their loop-analysis scratch) across
// Analyze calls. Rebuild reconstructs a pooled graph for each new binary in
// place; the Forest and Blocks of a pooled graph are only used within one
// Analyze call, and the reports copy out everything they keep (names are
// strings), so returning the graph to the pool invalidates nothing.
var graphPool parsim.Pool[*cfg.Graph]

func getCP(sets int) *rcd.CPTracker {
	cp := cpPool.Get()
	if cp == nil {
		return rcd.NewCP(sets)
	}
	cp.Reset(sets)
	return cp
}

// Analyze is CCProf's offline phase: it recovers the loop forest from the
// binary, attributes every sample to its innermost loop (code-centric) and
// covering allocation (data-centric), approximates RCD distributions from
// the sampled miss sequences, and classifies each loop.
//
// The per-sample work runs through the same streamState machine that backs
// the online StreamAnalyzer (see stream.go): Analyze is the buffered replay
// of that machine over Profile.Samples, so streaming and in-memory analyses
// of the same sample sequences are identical by construction.
func Analyze(prof *Profile, bin *objfile.Binary, arena *alloc.Arena, opts AnalyzeOptions) (*Analysis, error) {
	if prof == nil {
		return nil, ErrNilProfile
	}
	if bin == nil {
		return nil, ErrNilBinary
	}
	sp := obs.Default.Span("analyze")
	defer sp.End()
	obs.Default.Counter("analyze.runs").Inc()

	ss, err := newStreamState(bin, arena, prof.Geom, len(prof.Samples), prof.Burst, opts)
	if err != nil {
		return nil, err
	}
	for t, samples := range prof.Samples {
		for _, sm := range samples {
			ss.sample(t, sm)
		}
	}
	return ss.finish(prof.Workload), nil
}

// sortLoops orders loop reports by decreasing sample count, ties broken
// by name.
func sortLoops(loops []LoopReport) {
	slices.SortFunc(loops, func(a, b LoopReport) int {
		if a.Samples != b.Samples {
			return b.Samples - a.Samples
		}
		return cmpString(a.Loop, b.Loop)
	})
}

// buildFuncReports renders the function-level rollup, sorted by decreasing
// samples. The per-function cf reuses the global short-RCD attribution of
// each sample (the sampled sequence is one stream).
func buildFuncReports(funcSamples, funcShort map[string]int, total int) []FuncReport {
	funcs := make([]FuncReport, 0, len(funcSamples))
	for name, n := range funcSamples {
		funcs = append(funcs, FuncReport{
			Func:         name,
			Samples:      n,
			Contribution: float64(n) / float64(total),
			CF:           float64(funcShort[name]) / float64(n),
		})
	}
	slices.SortFunc(funcs, func(a, b FuncReport) int {
		if a.Samples != b.Samples {
			return b.Samples - a.Samples
		}
		return cmpString(a.Func, b.Func)
	})
	return funcs
}

// buildDataReports renders data-centric attribution, sorted by decreasing
// samples.
func buildDataReports(dataSamples, dataShort map[string]int, total int) []DataReport {
	data := make([]DataReport, 0, len(dataSamples))
	for name, n := range dataSamples {
		data = append(data, DataReport{
			Name:         name,
			Samples:      n,
			ShortRCD:     dataShort[name],
			Contribution: float64(n) / float64(total),
		})
	}
	slices.SortFunc(data, func(a, b DataReport) int {
		if a.Samples != b.Samples {
			return b.Samples - a.Samples
		}
		return cmpString(a.Name, b.Name)
	})
	return data
}

// pooledMetrics aggregates the per-thread trackers of one context.
type pooledMetrics struct {
	cf       float64
	setsUsed int
	meanCP   float64
	victims  []int
	cdf      []CDFPoint
}

// analyzeScratch is poolTrackers' reusable aggregation state: a per-set
// miss accumulator and a dense RCD histogram. One scratch is borrowed per
// context and returned immediately, so an Analyze call cycles a single
// scratch through all its contexts.
type analyzeScratch struct {
	missBySet []uint64
	hist      stats.IntHist
	vals      []int // reused value buffer for CDF rendering
}

var scratchPool parsim.Pool[*analyzeScratch]

func poolTrackers(cps []*rcd.CPTracker, threshold int) pooledMetrics {
	var pm pooledMetrics
	if len(cps) == 0 {
		return pm
	}
	sets := cps[0].RCD().Sets()
	sc := scratchPool.Get()
	if sc == nil {
		sc = &analyzeScratch{}
	}
	defer scratchPool.Put(sc)
	if cap(sc.missBySet) < sets {
		sc.missBySet = make([]uint64, sets)
	}
	missBySet := sc.missBySet[:sets]
	for s := range missBySet {
		missBySet[s] = 0
	}
	sc.hist.Reset()

	var total, short uint64
	var cpSum float64
	var cpRuns uint64
	for _, cp := range cps {
		cp.Flush()
		tr := cp.RCD()
		total += tr.Total()
		short += tr.ShortCount(threshold)
		for s := 0; s < sets; s++ {
			missBySet[s] += tr.SetMisses(s)
		}
		sc.hist.Merge(tr.Hist())
		if p := cp.Periods(); p.Total() > 0 {
			cpSum += cp.MeanPeriod() * float64(p.Total())
			cpRuns += p.Total()
		}
	}
	if total == 0 {
		return pm
	}
	pm.cf = float64(short) / float64(total)
	// Count victims first, then fill an exactly-sized list: the list is
	// retained by the report, so sizing it up front replaces the growth
	// reallocations of repeated append.
	cut := 2 * float64(total) / float64(sets)
	nvict := 0
	for _, m := range missBySet {
		if m > 0 {
			pm.setsUsed++
		}
		if float64(m) > cut {
			nvict++
		}
	}
	if nvict > 0 {
		pm.victims = make([]int, 0, nvict)
		for s, m := range missBySet {
			if float64(m) > cut {
				pm.victims = append(pm.victims, s)
			}
		}
	}
	if cpRuns > 0 {
		pm.meanCP = cpSum / float64(cpRuns)
	}
	sc.vals = cdfValues(&sc.hist, sc.vals[:0])
	pm.cdf = cdfPoints(&sc.hist, sc.vals)
	return pm
}

// cdfValues fills a reused buffer with a histogram's sorted values.
func cdfValues(h *stats.IntHist, dst []int) []int {
	return h.AppendValues(dst)
}

// cdfPoints renders a histogram's CDF directly into report points. vs must
// be the histogram's sorted values (see cdfValues).
func cdfPoints(h *stats.IntHist, vs []int) []CDFPoint {
	total := h.Total()
	if total == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, len(vs))
	var run uint64
	for _, v := range vs {
		run += h.Count(v)
		out = append(out, CDFPoint{RCD: v, Cum: float64(run) / float64(total)})
	}
	return out
}
