package core

import (
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/parsim"
	"repro/internal/pmu"
	"repro/internal/trace"
)

// Sharded trace profiling: profile a recorded framed trace (trace.CCTB)
// instead of a live workload, split into frame-aligned segments that run as
// independent parsim tasks. Frames are self-contained (deltas reset per
// frame), so a shard enters the stream at any trace.StreamPos boundary
// without replaying the prefix; the segment index, the per-shard derived
// seeds, and the JSON-serializable shard results together make the sweep
// checkpointable — a run killed mid-trace resumes with parsim.Checkpoint
// and re-profiles only the segments that never completed.
//
// Each segment gets its own sampler (private L1 model, derived seed), so
// segments are the unit of both parallelism and restartability. The
// resulting Profile treats shards as threads: RCD sequences break at
// segment boundaries, exactly as they break at thread boundaries in a
// multi-threaded profile. That semantics is a deterministic function of
// (trace, seed, segment size) alone — never of worker count, scheduling, or
// how many shards were restored from a checkpoint.

// TraceProfileOptions configures ProfileTrace. The zero value profiles with
// the default L1 geometry, the paper's mean sampling period, and
// DefaultSegmentFrames frames per shard.
type TraceProfileOptions struct {
	Geom   mem.Geometry   // zero value selects mem.L1Default()
	Period pmu.PeriodDist // nil selects pmu.Uniform(pmu.DefaultPeriod)
	Seed   int64
	// Burst captures bursts of consecutive miss events per period expiry,
	// as in ProfileOptions.
	Burst int
	// SegmentFrames is the shard granularity in trace frames; 0 selects
	// DefaultSegmentFrames. Results depend on it (segment boundaries break
	// RCD sequences), so resumed runs must reuse the original value.
	SegmentFrames int
	// Parallel configures the parsim run: workers, retries, and — the
	// resume story — Checkpoint.
	Parallel parsim.Options
}

// DefaultSegmentFrames is the default shard granularity: 64 frames of
// DefaultBlock references ≈ 256k references per shard, large enough to
// amortize shard setup and small enough to checkpoint progress frequently.
const DefaultSegmentFrames = 64

func (o TraceProfileOptions) withDefaults() TraceProfileOptions {
	if o.Geom.Sets == 0 {
		o.Geom = mem.L1Default()
	}
	if o.Period == nil {
		o.Period = pmu.Uniform(pmu.DefaultPeriod)
	}
	if o.SegmentFrames < 1 {
		o.SegmentFrames = DefaultSegmentFrames
	}
	return o
}

// traceShard is one segment's result. It round-trips through encoding/json
// (pmu.Sample is two uint64 fields), which is what lets parsim checkpoints
// restore completed shards byte-exactly.
type traceShard struct {
	Samples []pmu.Sample `json:"samples,omitempty"`
	Events  uint64       `json:"events"`
	Refs    uint64       `json:"refs"`
}

// ProfileTrace profiles a recorded framed trace under the simulated PMU,
// sharded over frame-aligned segments. open must return a fresh reader of
// the same trace on every call (each shard — and the initial index scan —
// opens its own); readers that implement io.Closer are closed. name labels
// the resulting Profile.
//
// Unlike ProfileProgram, ProfileTrace does not fold sampler statistics into
// the obs registry: a resumed run skips restored shards and would
// under-count, breaking the byte-identical-resume guarantee the checkpoint
// exists for. The Profile's own counters are always complete (restored
// shards carry theirs in the checkpoint).
func ProfileTrace(name string, open func() (io.ReadSeeker, error), opts TraceProfileOptions) (*Profile, error) {
	o := opts.withDefaults()
	if err := (pmu.Config{Geom: o.Geom, Period: o.Period, Burst: o.Burst}).Validate(); err != nil {
		return nil, fmt.Errorf("core: trace profile config: %w", err)
	}

	// Index scan: walk frame headers only, collecting every
	// SegmentFrames-th boundary.
	index, err := scanTraceIndex(open, o.SegmentFrames)
	if err != nil {
		return nil, err
	}
	nseg := len(index) - 1

	burst := o.Burst
	if burst < 1 {
		burst = 1
	}
	prof := &Profile{
		Workload:   name,
		Geom:       o.Geom,
		PeriodMean: o.Period.Mean(),
		Burst:      burst,
		Samples:    make([][]pmu.Sample, nseg),
	}
	if nseg == 0 {
		return prof, nil
	}

	shards, err := parsim.Run(nseg, o.Parallel, func(i int) (traceShard, error) {
		return profileSegment(open, index[i], index[i+1], o, i)
	})
	if err != nil {
		return nil, err
	}
	for i, sh := range shards {
		prof.Samples[i] = sh.Samples
		prof.Events += sh.Events
		prof.Refs += sh.Refs
	}
	return prof, nil
}

// scanTraceIndex opens the trace once and indexes segment boundaries.
func scanTraceIndex(open func() (io.ReadSeeker, error), every int) ([]trace.StreamPos, error) {
	rs, err := open()
	if err != nil {
		return nil, fmt.Errorf("core: opening trace: %w", err)
	}
	defer closeIfCloser(rs)
	tr, err := trace.NewTraceReader(rs)
	if err != nil {
		return nil, err
	}
	return tr.ScanIndex(every)
}

// profileSegment replays one frame-aligned segment through a pooled,
// seed-derived sampler. It is a parsim task: shared-nothing, deterministic
// for (trace, root seed, segment index).
func profileSegment(open func() (io.ReadSeeker, error), start, end trace.StreamPos, o TraceProfileOptions, i int) (traceShard, error) {
	rs, err := open()
	if err != nil {
		return traceShard{}, fmt.Errorf("core: opening trace for shard %d: %w", i, err)
	}
	defer closeIfCloser(rs)
	rt, err := trace.ResumeTraceReader(rs, start)
	if err != nil {
		return traceShard{}, err
	}

	cfg := pmu.Config{
		Geom:   o.Geom,
		Period: o.Period,
		Seed:   parsim.DeriveSeed(o.Seed, fmt.Sprintf("shard/%d", i)),
		Burst:  o.Burst,
	}
	s := samplerPool.Get()
	if s == nil {
		s = pmu.NewSampler(cfg)
	} else {
		s.Reconfigure(cfg)
	}
	defer samplerPool.Put(s)

	for rt.Pos().Frame < end.Frame {
		blk, err := rt.Next()
		if err != nil {
			// io.EOF before the indexed end is a trace that shrank under
			// us; report it as corruption, not clean end-of-stream.
			return traceShard{}, fmt.Errorf("core: shard %d at frame %d: %w", i, rt.Pos().Frame, err)
		}
		s.RefBlock(blk)
	}

	sh := traceShard{Events: s.Events, Refs: s.Refs}
	if len(s.Samples) > 0 {
		sh.Samples = append([]pmu.Sample(nil), s.Samples...)
	}
	return sh, nil
}

func closeIfCloser(r io.ReadSeeker) {
	if c, ok := r.(io.Closer); ok {
		c.Close()
	}
}
