package core

import (
	"bytes"
	"testing"

	"repro/internal/alloc"
	"repro/internal/objfile"
	"repro/internal/pmu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// profileAndAnalyze is the end-to-end pipeline used throughout the tests:
// online profiling at a fast period (for dense samples on small kernels),
// then offline analysis.
func profileAndAnalyze(t *testing.T, p *workloads.Program, period uint64) (*Profile, *Analysis) {
	t.Helper()
	prof, err := ProfileProgram(p, ProfileOptions{
		Period: pmu.Uniform(period),
		Seed:   7,
		NoTime: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prof, p.Binary, p.Arena, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return prof, an
}

func TestProfileCollectsSamples(t *testing.T) {
	cs := workloads.NewADI(256, 1)
	prof, err := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Fixed(100), Seed: 1, NoTime: true})
	if err != nil {
		t.Fatal(err)
	}
	if prof.SampleCount() == 0 {
		t.Fatal("no samples collected")
	}
	if prof.Events == 0 || prof.Refs == 0 {
		t.Errorf("events=%d refs=%d, want nonzero", prof.Events, prof.Refs)
	}
	if prof.Events > prof.Refs {
		t.Error("more miss events than references")
	}
	if got := uint64(prof.SampleCount()); got > prof.Events {
		t.Error("more samples than events")
	}
	if prof.Workload != cs.Original.Name {
		t.Errorf("workload name = %q", prof.Workload)
	}
}

func TestProfileNilProgram(t *testing.T) {
	if _, err := ProfileProgram(nil, ProfileOptions{}); err == nil {
		t.Error("nil program should error")
	}
}

func TestProfileMeasuredOverhead(t *testing.T) {
	cs := workloads.NewSymmetrization(64)
	prof, err := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Fixed(50), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.BaselineNs <= 0 || prof.ProfiledNs <= 0 {
		t.Fatal("timings not recorded")
	}
	if prof.MeasuredOverhead() <= 0 {
		t.Error("MeasuredOverhead should be positive")
	}
}

func TestAnalyzeDetectsADIConflict(t *testing.T) {
	cs := workloads.NewADI(512, 1)
	_, anOrig := profileAndAnalyze(t, cs.Original, 171)
	_, anOpt := profileAndAnalyze(t, cs.Optimized, 171)

	if !anOrig.Conflict {
		t.Errorf("original ADI not flagged (program cf=%.3f)", anOrig.CF)
	}
	if anOpt.Conflict {
		t.Errorf("padded ADI flagged (program cf=%.3f)", anOpt.CF)
	}
	if anOrig.CF <= anOpt.CF {
		t.Errorf("cf did not drop after padding: %.3f -> %.3f", anOrig.CF, anOpt.CF)
	}

	// Code-centric attribution: the column-sweep loop must dominate and
	// be flagged.
	target, ok := anOrig.TargetLoop(cs.TargetLoop)
	if !ok {
		t.Fatalf("target loop %s not in report: %+v", cs.TargetLoop, anOrig.Loops)
	}
	if !target.Conflict {
		t.Errorf("target loop not flagged: %+v", target)
	}
	if target.Contribution < 0.5 {
		t.Errorf("target loop contribution = %.2f, want > 0.5 (paper: 80%%)", target.Contribution)
	}
}

func TestAnalyzeDataCentricADI(t *testing.T) {
	cs := workloads.NewADI(512, 1)
	_, an := profileAndAnalyze(t, cs.Original, 171)
	if len(an.Data) == 0 {
		t.Fatal("no data-centric attribution")
	}
	// Matrix u is the paper's victim. All three ADI matrices share the
	// conflicting layout here, so u must appear among the top victims
	// with a dominant share of short-RCD samples.
	found := false
	for _, d := range an.Data[:min(3, len(an.Data))] {
		if d.Name == "u" {
			found = true
			if d.ShortRCD*2 < d.Samples {
				t.Errorf("u has only %d/%d short-RCD samples", d.ShortRCD, d.Samples)
			}
		}
	}
	if !found {
		t.Errorf("u not among top data structures: %+v", an.Data)
	}
}

func TestAnalyzeCleanKernel(t *testing.T) {
	p := workloads.Kmeans()
	_, an := profileAndAnalyze(t, p, 171)
	if an.Conflict {
		t.Errorf("kmeans flagged as conflicted (cf=%.3f)", an.CF)
	}
	for _, l := range an.Loops {
		if l.Conflict {
			t.Errorf("kmeans loop %s flagged (cf=%.3f, samples=%d)", l.Loop, l.CF, l.Samples)
		}
	}
}

func TestAnalyzeLoopOrdering(t *testing.T) {
	cs := workloads.NewNW(256, 16)
	_, an := profileAndAnalyze(t, cs.Original, 63)
	if len(an.Loops) < 3 {
		t.Fatalf("expected several active loops, got %d", len(an.Loops))
	}
	for i := 1; i < len(an.Loops); i++ {
		if an.Loops[i].Samples > an.Loops[i-1].Samples {
			t.Error("loops not sorted by sample count")
		}
	}
	var totalContrib float64
	for _, l := range an.Loops {
		totalContrib += l.Contribution
	}
	if totalContrib > 1.0001 {
		t.Errorf("loop contributions sum to %.3f > 1", totalContrib)
	}
	if an.ActiveInnerLoops == 0 {
		t.Error("no active inner loops counted")
	}
}

func TestAnalyzeCDFMonotone(t *testing.T) {
	cs := workloads.NewADI(256, 1)
	_, an := profileAndAnalyze(t, cs.Original, 100)
	if len(an.CDF) == 0 {
		t.Fatal("no program CDF")
	}
	last := an.CDF[len(an.CDF)-1]
	if last.Cum < 0.999 {
		t.Errorf("CDF does not reach 1: %v", last)
	}
	for i := 1; i < len(an.CDF); i++ {
		if an.CDF[i].Cum < an.CDF[i-1].Cum || an.CDF[i].RCD <= an.CDF[i-1].RCD {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cs := workloads.NewSymmetrization(32)
	prof, _ := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Fixed(10), NoTime: true})
	if _, err := Analyze(nil, cs.Original.Binary, cs.Original.Arena, AnalyzeOptions{}); err == nil {
		t.Error("nil profile should error")
	}
	if _, err := Analyze(prof, nil, cs.Original.Arena, AnalyzeOptions{}); err == nil {
		t.Error("nil binary should error")
	}
	// nil arena is allowed: code-centric analysis only.
	an, err := Analyze(prof, cs.Original.Binary, nil, AnalyzeOptions{})
	if err != nil {
		t.Fatalf("nil arena should be permitted: %v", err)
	}
	if len(an.Data) != 0 {
		t.Error("nil arena should produce no data reports")
	}
}

func TestProfileThreads(t *testing.T) {
	cs := workloads.NewSymmetrization(64)
	prof, err := ProfileProgram(cs.Original, ProfileOptions{
		Period: pmu.Fixed(20), Seed: 3, Threads: 4, NoTime: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Samples) != 4 {
		t.Fatalf("thread sample groups = %d, want 4", len(prof.Samples))
	}
	nonEmpty := 0
	for _, s := range prof.Samples {
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("only %d threads produced samples", nonEmpty)
	}
	an, err := Analyze(prof, cs.Original.Binary, cs.Original.Arena, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.TotalSamples != prof.SampleCount() {
		t.Errorf("analysis consumed %d of %d samples", an.TotalSamples, prof.SampleCount())
	}
}

func TestDefaultModelSeparatesTrainingSet(t *testing.T) {
	m := DefaultModel()
	cf, labels := TrainingSet()
	for i, x := range cf {
		if m.Predict(x) != labels[i] {
			t.Errorf("builtin model misclassifies training point %d (cf=%.2f)", i, x)
		}
	}
	// Boundary sanity: between the clean cluster and the conflict cluster.
	b := m.Threshold()
	if b < 0.14 || b > 0.42 {
		t.Errorf("decision boundary = %.3f, want between clusters", b)
	}
}

func TestOverheadModel(t *testing.T) {
	m := DefaultOverheadModel()
	if got := m.Profiling(0, 0); got != 1 {
		t.Errorf("Profiling(0,0) = %g, want 1", got)
	}
	if got := m.Profiling(1000, 0); got != 1 {
		t.Errorf("no samples should cost nothing: %g", got)
	}
	low := m.Profiling(1_000_000, 100)
	high := m.Profiling(1_000_000, 10_000)
	if low >= high {
		t.Error("more samples must cost more")
	}
	if got := m.Simulation(0, 0); got != 1 {
		t.Errorf("Simulation(0,0) = %g", got)
	}
	whole := m.Simulation(1000, 1000)
	partial := m.Simulation(1000, 10)
	if whole <= partial || whole < 100 {
		t.Errorf("whole-app simulation overhead %g should dwarf partial %g", whole, partial)
	}
}

func TestOverheadRecommendedPeriodBand(t *testing.T) {
	// At the paper's recommended period the modeled overhead should land
	// in a low single-digit band (paper: 2.9x), and at period ~171 it
	// should be higher (paper: 9.3x at best F1).
	cs := workloads.NewADI(512, 1)
	m := DefaultOverheadModel()
	at := func(period uint64) float64 {
		prof, err := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Uniform(period), Seed: 1, NoTime: true})
		if err != nil {
			t.Fatal(err)
		}
		return m.ProfilingOf(prof)
	}
	oRec := at(pmu.DefaultPeriod)
	oFast := at(171)
	if oRec <= 1 || oRec > 6 {
		t.Errorf("overhead at SP=1212 is %.2fx, want low single digits", oRec)
	}
	if oFast <= oRec {
		t.Errorf("overhead at SP=171 (%.2fx) should exceed SP=1212 (%.2fx)", oFast, oRec)
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	cs := workloads.NewSymmetrization(64)
	prof, err := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Fixed(25), Seed: 5, Threads: 2, NoTime: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := prof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != prof.Workload || got.Geom != prof.Geom ||
		got.PeriodMean != prof.PeriodMean || got.Events != prof.Events ||
		got.Refs != prof.Refs {
		t.Errorf("header mismatch: %+v vs %+v", got, prof)
	}
	if len(got.Samples) != len(prof.Samples) {
		t.Fatalf("thread count mismatch")
	}
	for tid := range prof.Samples {
		if len(got.Samples[tid]) != len(prof.Samples[tid]) {
			t.Fatalf("thread %d sample count mismatch", tid)
		}
		for i := range prof.Samples[tid] {
			if got.Samples[tid][i] != prof.Samples[tid][i] {
				t.Fatalf("sample %d/%d differs", tid, i)
			}
		}
	}
}

func TestReadProfileBadInput(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte("XXXXGARBAGE"))); err == nil {
		t.Error("bad magic should error")
	}
	if _, err := ReadProfile(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	// Truncated valid prefix.
	cs := workloads.NewSymmetrization(32)
	prof, _ := ProfileProgram(cs.Original, ProfileOptions{Period: pmu.Fixed(10), NoTime: true})
	var buf bytes.Buffer
	if _, err := prof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadProfile(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated profile should error")
	}
}

func TestAnalysisEndToEndTinyDNN(t *testing.T) {
	cs := workloads.NewTinyDNN(128, 1024, 1)
	_, an := profileAndAnalyze(t, cs.Original, 171)
	if !an.Conflict {
		t.Errorf("tinydnn not flagged (cf=%.3f)", an.CF)
	}
	// W must be the dominant, conflicting data structure.
	if len(an.Data) == 0 || an.Data[0].Name != "W" {
		t.Fatalf("expected W as top data structure: %+v", an.Data)
	}
	_, anOpt := profileAndAnalyze(t, cs.Optimized, 171)
	if anOpt.Conflict {
		t.Errorf("padded tinydnn flagged (cf=%.3f)", anOpt.CF)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAnalyzeFunctionRollup(t *testing.T) {
	cs := workloads.NewADI(256, 1)
	_, an := profileAndAnalyze(t, cs.Original, 171)
	if len(an.Funcs) == 0 {
		t.Fatal("no function-level attribution")
	}
	if an.Funcs[0].Func != "kernel_adi" {
		t.Errorf("top function = %q, want kernel_adi", an.Funcs[0].Func)
	}
	var total float64
	for _, f := range an.Funcs {
		total += f.Contribution
		if f.CF < 0 || f.CF > 1 {
			t.Errorf("function %s cf out of range: %g", f.Func, f.CF)
		}
	}
	if total > 1.0001 {
		t.Errorf("function contributions sum to %g > 1", total)
	}
}

func TestAnalyzeFunctionRollupMultiFunc(t *testing.T) {
	// Two functions: the caller streams (clean), the callee thrashes one
	// set; per-function attribution must separate them.
	b := objfile.NewBuilder("twofuncs")
	b.Func("stream")
	b.Loop("s.c", 1)
	ldS := b.Load("s.c", 2)
	b.EndLoop()
	b.Func("thrash")
	b.Loop("t.c", 1)
	ldT := b.Load("t.c", 2)
	b.EndLoop()
	bin := b.Finish()
	ar := alloc.NewArena()
	big := ar.Alloc("stream_buf", 1<<22, 64)
	ring := ar.Alloc("ring", 16*4096, 4096)
	p := workloads.NewProgram("twofuncs", bin, ar, func(tid, threads int, sink trace.Sink) {
		if tid != 0 {
			return
		}
		for i := 0; i < 60_000; i++ {
			sink.Ref(trace.Ref{IP: ldS, Addr: big.Start + uint64(i*64)%big.Size})
			sink.Ref(trace.Ref{IP: ldT, Addr: ring.Start + uint64(i%16)*4096})
		}
	})
	_, an := profileAndAnalyze(t, p, 63)
	var stream, thrash FuncReport
	for _, f := range an.Funcs {
		switch f.Func {
		case "stream":
			stream = f
		case "thrash":
			thrash = f
		}
	}
	if stream.Samples == 0 || thrash.Samples == 0 {
		t.Fatalf("missing function rows: %+v", an.Funcs)
	}
	if thrash.CF <= stream.CF {
		t.Errorf("thrash cf %.2f should exceed stream cf %.2f", thrash.CF, stream.CF)
	}
}
