package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/pmu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// mustJSON marshals v for byte comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestProfileStreamMatchesBuffered is the heart of the streaming
// differential suite: for identical options and seeds, the fused
// ProfileStream must produce an Analysis byte-identical to the two-phase
// ProfileProgram+Analyze pipeline — across thread counts and in burst
// mode — plus identical profile counters.
func TestProfileStreamMatchesBuffered(t *testing.T) {
	cases := []struct {
		name    string
		prog    *workloads.Program
		threads int
		burst   int
	}{
		{"tinydnn-seq", workloads.NewTinyDNN(64, 512, 1).Original, 1, 0},
		{"nw-8thread", workloads.NewNW(256, 16).Original, 8, 0},
		{"fft-burst", workloads.NewFFT(128).Original, 2, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			popts := ProfileOptions{
				Period:  pmu.Uniform(171),
				Seed:    42,
				Threads: tc.threads,
				Burst:   tc.burst,
				NoTime:  true,
			}
			prof, err := ProfileProgram(tc.prog, popts)
			if err != nil {
				t.Fatal(err)
			}
			anBuf, err := Analyze(prof, tc.prog.Binary, tc.prog.Arena, AnalyzeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sprof, anStream, err := ProfileStream(tc.prog, popts, AnalyzeOptions{})
			if err != nil {
				t.Fatal(err)
			}

			if got, want := mustJSON(t, anStream), mustJSON(t, anBuf); !bytes.Equal(got, want) {
				t.Errorf("streaming analysis differs from buffered:\n%s\n---\n%s", got, want)
			}
			if sprof.Events != prof.Events || sprof.Refs != prof.Refs {
				t.Errorf("stream profile counters: events %d refs %d, want %d and %d",
					sprof.Events, sprof.Refs, prof.Events, prof.Refs)
			}
			if sprof.SampleCount() != prof.SampleCount() {
				t.Errorf("stream SampleCount = %d, buffered = %d", sprof.SampleCount(), prof.SampleCount())
			}
			for tid, s := range sprof.Samples {
				if len(s) > 0 {
					t.Errorf("streaming profile buffered %d samples for thread %d; must stay empty", len(s), tid)
				}
			}
		})
	}
}

// TestProfileStreamObsParity pins the observability side of equivalence:
// the deterministic obs snapshot (counters and histograms) after a
// streaming run must be byte-identical to the snapshot after the buffered
// two-phase pipeline.
func TestProfileStreamObsParity(t *testing.T) {
	snap := func(fn func()) []byte {
		obs.Default.Reset()
		fn()
		s := obs.Default.Snapshot().Deterministic()
		s.Gauges = nil
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	popts := ProfileOptions{Period: pmu.Uniform(171), Seed: 7, Threads: 4, NoTime: true}

	buffered := snap(func() {
		cs := workloads.NewNW(256, 16)
		prof, err := ProfileProgram(cs.Original, popts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Analyze(prof, cs.Original.Binary, cs.Original.Arena, AnalyzeOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	streamed := snap(func() {
		cs := workloads.NewNW(256, 16)
		if _, _, err := ProfileStream(cs.Original, popts, AnalyzeOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	obs.Default.Reset()
	if !bytes.Equal(buffered, streamed) {
		t.Errorf("obs snapshots differ between buffered and streaming paths:\n%s\n---\n%s", buffered, streamed)
	}
}

// recordFramedTrace records a program's reference stream into an in-memory
// framed trace with the given frame size.
func recordFramedTrace(t *testing.T, p *workloads.Program, frameSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewTraceWriter(&buf, frameSize)
	p.RunThread(0, 1, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProfileTraceShardedDeterministic pins trace profiling's determinism
// contract: byte-identical profiles at any worker count, because every
// segment derives its own sampler seed from the root seed and segment
// index.
func TestProfileTraceShardedDeterministic(t *testing.T) {
	data := recordFramedTrace(t, workloads.NewNW(128, 16).Original, 512)
	open := func() (io.ReadSeeker, error) { return bytes.NewReader(data), nil }

	run := func(workers int) []byte {
		prof, err := ProfileTrace("nw-trace", open, TraceProfileOptions{
			Period:        pmu.Uniform(171),
			Seed:          42,
			SegmentFrames: 4,
			Parallel:      parsim.Options{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(prof.Samples) < 2 {
			t.Fatalf("trace split into %d segments; want at least 2 for the test to mean anything", len(prof.Samples))
		}
		return mustJSON(t, prof)
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Error("sharded trace profile differs between -j1 and -j8")
	}
}

// TestProfileTraceResume exercises the checkpoint story end to end: a run
// that dies mid-trace leaves completed segments in the checkpoint; the
// resumed run re-profiles only the missing segments and produces a profile
// byte-identical to an uninterrupted run.
func TestProfileTraceResume(t *testing.T) {
	data := recordFramedTrace(t, workloads.NewNW(128, 16).Original, 512)
	ckPath := filepath.Join(t.TempDir(), "trace.ck")
	topts := func(ck *parsim.Checkpoint, workers int) TraceProfileOptions {
		o := TraceProfileOptions{
			Period:        pmu.Uniform(171),
			Seed:          42,
			SegmentFrames: 4,
			Parallel:      parsim.Options{Workers: workers},
		}
		o.Parallel.Checkpoint = ck
		return o
	}
	goodOpen := func() (io.ReadSeeker, error) { return bytes.NewReader(data), nil }

	clean, err := ProfileTrace("nw-trace", goodOpen, topts(nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	nseg := len(clean.Samples)
	if nseg < 3 {
		t.Fatalf("only %d segments; the interrupted-run scenario needs at least 3", nseg)
	}

	// First run: the trace source dies after the index scan and two
	// segments. The run fails, but the completed segments are in the
	// checkpoint.
	var opens atomic.Int64
	dyingOpen := func() (io.ReadSeeker, error) {
		if opens.Add(1) > 3 {
			return nil, errors.New("trace source gone")
		}
		return bytes.NewReader(data), nil
	}
	if _, err := ProfileTrace("nw-trace", dyingOpen, topts(&parsim.Checkpoint{Path: ckPath}, 1)); err == nil {
		t.Fatal("interrupted run unexpectedly succeeded")
	}

	// Resume: only the segments missing from the checkpoint re-run (the
	// open count proves it), and the result matches the clean run exactly.
	opens.Store(0)
	countingOpen := func() (io.ReadSeeker, error) {
		opens.Add(1)
		return bytes.NewReader(data), nil
	}
	resumed, err := ProfileTrace("nw-trace", countingOpen, topts(&parsim.Checkpoint{Path: ckPath, Resume: true}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, resumed), mustJSON(t, clean); !bytes.Equal(got, want) {
		t.Error("resumed trace profile differs from uninterrupted run")
	}
	// 1 open for the index scan + one per re-profiled segment; 2 segments
	// were restored.
	if got, want := opens.Load(), int64(1+nseg-2); got != want {
		t.Errorf("resumed run opened the trace %d times, want %d (2 segments should restore from checkpoint)", got, want)
	}
}

// TestProfileTraceEmpty covers the degenerate stream.
func TestProfileTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewTraceWriter(&buf, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	prof, err := ProfileTrace("empty", func() (io.ReadSeeker, error) { return bytes.NewReader(data), nil },
		TraceProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Refs != 0 || prof.SampleCount() != 0 || len(prof.Samples) != 0 {
		t.Errorf("empty trace produced refs=%d samples=%d segments=%d", prof.Refs, prof.SampleCount(), len(prof.Samples))
	}
}

// TestStreamingBoundedMemory is the bounded-memory ratchet (the streaming
// mode's reason to exist): consuming a 100x longer reference stream through
// the online analyzer must not grow heap allocations — every per-sample
// structure is either pooled, reused, or O(contexts x sets). A regression
// here means some buffer scales with trace length again.
func TestStreamingBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is not meaningful under -short")
	}
	p := workloads.NewNW(128, 16).Original
	rec := p.Record()
	refs := rec.Refs
	if len(refs) > 16384 {
		refs = refs[:16384]
	}
	var base trace.RefBlock
	base.AppendRefs(refs)

	s := pmu.NewSampler(pmu.Config{Geom: mem.L1Default(), Period: pmu.Uniform(171), Seed: 42})
	stream := func(times int) float64 {
		return testing.AllocsPerRun(3, func() {
			sa, err := NewStreamAnalyzer(p.Binary, p.Arena, mem.L1Default(), 1, 1, AnalyzeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			s.Reconfigure(pmu.Config{Geom: mem.L1Default(), Period: pmu.Uniform(171), Seed: 42})
			s.Handler = sa.HandlerFor(0)
			for i := 0; i < times; i++ {
				s.RefBlock(&base)
			}
			s.Handler = nil
			if an := sa.Finish(p.Name); an.TotalSamples == 0 {
				t.Fatal("no samples streamed; the measurement is vacuous")
			}
		})
	}
	stream(1) // warm every pool (graph, attrState, trackers, scratch)
	short := stream(1)
	long := stream(100)
	// Identical modulo pool noise: the long run streams 100x the
	// references and must not allocate for them. The slack absorbs
	// sync.Pool evictions between runs, nothing that scales.
	if long > short+64 {
		t.Errorf("streaming 100x the trace cost %.0f allocs vs %.0f for 1x; memory is no longer bounded", long, short)
	}
}
