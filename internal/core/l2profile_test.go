package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/objfile"
	"repro/internal/pmu"
	"repro/internal/trace"
	"repro/internal/vmem"
	"repro/internal/workloads"
)

// The Fig 2 symmetrization kernel at 512x512 conflicts in the L2 as well
// (rows span a multiple of the L2 way size); the physically-indexed
// extension must see it under identity mapping.
func TestProfileL2DetectsSymmetrizationConflict(t *testing.T) {
	cs := workloads.NewSymmetrizationReps(512, 2)
	an, err := ProfileL2(cs.Original, L2ProfileOptions{
		Period: pmu.Uniform(63),
		Seed:   1,
		Policy: vmem.Identity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if an.Samples == 0 {
		t.Fatal("no L2 samples")
	}
	if !an.Conflict() {
		t.Errorf("identity-mapped L2 conflict not detected (cf=%.2f)", an.CF)
	}
	// The padded variant must come back clean.
	anOpt, err := ProfileL2(cs.Optimized, L2ProfileOptions{
		Period: pmu.Uniform(63),
		Seed:   1,
		Policy: vmem.Identity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if anOpt.CF >= an.CF/2 {
		t.Errorf("padding did not collapse L2 cf: %.2f -> %.2f", an.CF, anOpt.CF)
	}
}

func TestProfileL2DataAttributionThroughVirtualAddr(t *testing.T) {
	cs := workloads.NewSymmetrizationReps(256, 2)
	an, err := ProfileL2(cs.Original, L2ProfileOptions{
		Period: pmu.Uniform(31),
		Seed:   2,
		Policy: vmem.Sequential, // physical != virtual
	})
	if err != nil {
		t.Fatal(err)
	}
	if an.Data["A"] == 0 {
		t.Errorf("matrix A not attributed: %v", an.Data)
	}
	top := an.TopData()
	if len(top) == 0 || top[0] != "A" {
		t.Errorf("TopData = %v, want A first", top)
	}
}

func TestProfileL2PolicyMatters(t *testing.T) {
	// A column walk with a 256KiB stride: under identity mapping every
	// access shares one physical set; random frame allocation recolours
	// the (64 available) page colours and disperses the conflict. With
	// 4KiB pages this dispersal only exists for strides spanning many
	// colours — symmetrization-style 4KiB rows barely react, which is
	// why the L2 extension experiment pads instead of recolouring.
	run := func(pol vmem.Policy) float64 {
		p := strideKernel(256*1024, 64, 40)
		an, err := ProfileL2(p, L2ProfileOptions{
			// An LLC-sized sampled cache: 4096 sets x 64B = 256KiB set
			// span = 64 page colours, enough for recolouring to act.
			L2:     mem.MustGeometry(64, 4096, 8),
			Period: pmu.Fixed(1),
			Seed:   3,
			Policy: pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		return an.CF
	}
	ident := run(vmem.Identity)
	random := run(vmem.Random)
	if ident < 0.5 {
		t.Fatalf("identity-mapped stride walk cf = %.2f, want high", ident)
	}
	if random >= ident/2 {
		t.Errorf("random paging should weaken physical conflicts: identity cf %.2f, random cf %.2f",
			ident, random)
	}
}

func TestProfileL2NilProgram(t *testing.T) {
	if _, err := ProfileL2(nil, L2ProfileOptions{}); err == nil {
		t.Error("nil program should error")
	}
}

func TestProfileL2Defaults(t *testing.T) {
	cs := workloads.NewSymmetrization(64)
	an, err := ProfileL2(cs.Original, L2ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Policy != vmem.Identity {
		t.Errorf("default policy = %v", an.Policy)
	}
}

// strideKernel walks `rows` addresses spaced `stride` bytes apart, `reps`
// times — a configurable conflict generator for translation tests.
func strideKernel(stride uint64, rows, reps int) *workloads.Program {
	b := objfile.NewBuilder("stride")
	b.Func("main")
	b.Loop("st.c", 1)
	ld := b.Load("st.c", 2)
	b.EndLoop()
	bin := b.Finish()
	ar := alloc.NewArena()
	blk := ar.Alloc("walk", uint64(rows)*stride, 4096)
	return workloads.NewProgram("stride", bin, ar, func(tid, threads int, sink trace.Sink) {
		if tid != 0 {
			return
		}
		for r := 0; r < reps; r++ {
			for i := 0; i < rows; i++ {
				sink.Ref(trace.Ref{IP: ld, Addr: blk.Start + uint64(i)*stride})
			}
		}
	})
}
