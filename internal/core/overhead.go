package core

// OverheadModel converts sample/reference counts into the runtime-overhead
// factors the paper reports (Figure 8, Table 2).
//
// The native application retires roughly one memory reference per
// AppNsPerRef nanoseconds. Each PEBS sample costs SampleNs (interrupt,
// register capture, handler, buffer write); tracing a reference through a
// Pin + Dinero-style simulator costs SimNsPerRef. Only the ratios matter:
// the defaults are calibrated so that the recommended sampling period
// reproduces the paper's ~2.9x overhead and whole-trace simulation lands in
// the paper's hundreds-to-thousands-x band.
type OverheadModel struct {
	AppNsPerRef float64 // native cost per memory reference
	SampleNs    float64 // cost per PMU sample (interrupt + handler)
	SimNsPerRef float64 // cost per reference under trace-driven simulation
}

// DefaultOverheadModel returns the calibrated model.
func DefaultOverheadModel() OverheadModel {
	return OverheadModel{AppNsPerRef: 1, SampleNs: 2000, SimNsPerRef: 400}
}

// Profiling returns the modeled runtime-overhead factor of sampling:
// 1 + (samples x SampleNs) / (refs x AppNsPerRef).
func (m OverheadModel) Profiling(refs, samples uint64) float64 {
	if refs == 0 {
		return 1
	}
	return 1 + float64(samples)*m.SampleNs/(float64(refs)*m.AppNsPerRef)
}

// ProfilingOf returns the modeled overhead of a collected profile.
func (m OverheadModel) ProfilingOf(p *Profile) float64 {
	return m.Profiling(p.Refs, uint64(p.SampleCount()))
}

// Simulation returns the modeled overhead factor of tracing loopRefs
// references (the target loops) out of a totalRefs-reference execution:
// 1 + (loopRefs x SimNsPerRef) / (totalRefs x AppNsPerRef). Tracing the
// whole application (loopRefs == totalRefs) costs the full simulation
// slowdown.
func (m OverheadModel) Simulation(totalRefs, loopRefs uint64) float64 {
	if totalRefs == 0 {
		return 1
	}
	return 1 + float64(loopRefs)*m.SimNsPerRef/(float64(totalRefs)*m.AppNsPerRef)
}
