package mem

import "fmt"

// Latency holds the fixed access latencies (in CPU cycles) used by the cycle
// cost model when estimating speedups (Table 3). The values are conventional
// figures for the evaluated Intel parts; only ratios matter for the
// reproduced "who wins, by roughly what factor" comparisons.
type Latency struct {
	L1Hit  int // cycles for an L1 hit
	L2Hit  int // cycles for a hit in L2 (after an L1 miss)
	LLCHit int // cycles for a hit in the last-level cache
	Memory int // cycles for a main-memory access
}

// Cost returns the cycle cost of an access serviced at the given level:
// 0 = L1 hit, 1 = L2 hit, 2 = LLC hit, 3 = memory.
func (l Latency) Cost(level int) int {
	switch level {
	case 0:
		return l.L1Hit
	case 1:
		return l.L2Hit
	case 2:
		return l.LLCHit
	default:
		return l.Memory
	}
}

// Machine describes one evaluation platform: the cache hierarchy geometry of
// a single core (private L1 and L2), the shared last-level cache, the number
// of hardware threads used when running the parallel experiments, and the
// latency model.
//
// The paper evaluates on an Intel Broadwell Xeon E7-4830v4 and an Intel
// Skylake Xeon E3-1240v5; Broadwell and Skylake reproduce those two
// configurations.
type Machine struct {
	Name    string
	L1      Geometry // private, per core
	L2      Geometry // private, per core
	LLC     Geometry // shared
	Threads int      // hardware threads used in the parallel runs
	Lat     Latency
}

func (m Machine) String() string {
	return fmt.Sprintf("%s: L1[%s] L2[%s] LLC[%s] %d threads", m.Name, m.L1, m.L2, m.LLC, m.Threads)
}

// Broadwell models the paper's 2.00GHz Xeon E7-4830v4 node: 32KB 8-way L1,
// 256KB 8-way L2 per core, 35MB shared LLC, 14 cores x 2 SMT = 28 threads.
func Broadwell() Machine {
	return Machine{
		Name:    "Intel Broadwell (E7-4830v4)",
		L1:      MustGeometry(64, 64, 8),     // 32 KiB
		L2:      MustGeometry(64, 512, 8),    // 256 KiB
		LLC:     MustGeometry(64, 32768, 16), // 32 MiB (paper: 35MB; nearest pow-2 geometry)
		Threads: 28,
		Lat:     Latency{L1Hit: 4, L2Hit: 12, LLCHit: 40, Memory: 200},
	}
}

// Skylake models the paper's 3.50GHz Xeon E3-1240v5 node: 32KB 8-way L1,
// 256KB 8-way L2 per core, 8MB shared LLC, 4 cores x 2 SMT = 8 threads.
func Skylake() Machine {
	return Machine{
		Name:    "Intel Skylake (E3-1240v5)",
		L1:      MustGeometry(64, 64, 8),    // 32 KiB
		L2:      MustGeometry(64, 512, 8),   // 256 KiB
		LLC:     MustGeometry(64, 8192, 16), // 8 MiB
		Threads: 8,
		Lat:     Latency{L1Hit: 4, L2Hit: 12, LLCHit: 34, Memory: 170},
	}
}

// L1Default returns the L1 geometry used throughout the paper's evaluation:
// 8-way set-associative with 64 sets and 64-byte lines (32 KiB).
func L1Default() Geometry { return MustGeometry(64, 64, 8) }
