// Package mem defines cache geometry and address arithmetic shared by the
// cache simulator, the simulated PMU, and the RCD analyzer.
//
// A Geometry describes one level of a set-associative cache: line size,
// number of sets, and associativity. It decomposes a byte address into the
// classical (tag, set index, line offset) triple shown in Figure 1 of the
// CCProf paper; the set index is what CCProf attributes sampled misses to.
package mem

import "fmt"

// Geometry describes a set-associative cache level.
//
// All three parameters must be powers of two. The zero value is not usable;
// construct with NewGeometry or use one of the predefined machine configs.
type Geometry struct {
	LineSize int // bytes per cache line
	Sets     int // number of sets
	Ways     int // lines per set (associativity)

	offsetBits uint
	setBits    uint
	setMask    uint64
	offsetMask uint64
}

// NewGeometry validates the parameters and precomputes the bit masks used by
// address decomposition. It returns an error unless every parameter is a
// positive power of two.
func NewGeometry(lineSize, sets, ways int) (Geometry, error) {
	switch {
	case !isPow2(lineSize):
		return Geometry{}, fmt.Errorf("mem: line size %d is not a positive power of two", lineSize)
	case !isPow2(sets):
		return Geometry{}, fmt.Errorf("mem: set count %d is not a positive power of two", sets)
	case ways <= 0:
		return Geometry{}, fmt.Errorf("mem: associativity %d is not positive", ways)
	}
	g := Geometry{LineSize: lineSize, Sets: sets, Ways: ways}
	g.offsetBits = log2(lineSize)
	g.setBits = log2(sets)
	g.offsetMask = uint64(lineSize) - 1
	g.setMask = uint64(sets) - 1
	return g, nil
}

// MustGeometry is like NewGeometry but panics on invalid parameters. It is
// intended for package-level configuration literals.
func MustGeometry(lineSize, sets, ways int) Geometry {
	g, err := NewGeometry(lineSize, sets, ways)
	if err != nil {
		panic(err)
	}
	return g
}

// Size returns the total capacity of the cache in bytes.
func (g Geometry) Size() int { return g.LineSize * g.Sets * g.Ways }

// Line returns the line address (the address with the offset bits cleared).
func (g Geometry) Line(addr uint64) uint64 { return addr &^ g.offsetMask }

// LineNumber returns the line address shifted down by the offset bits, i.e. a
// dense line index suitable for map keys.
func (g Geometry) LineNumber(addr uint64) uint64 { return addr >> g.offsetBits }

// Set returns the set index of addr: the setBits bits directly above the
// line-offset bits (Figure 1 of the paper).
func (g Geometry) Set(addr uint64) int {
	return int((addr >> g.offsetBits) & g.setMask)
}

// Tag returns the tag bits of addr: everything above offset and index bits.
func (g Geometry) Tag(addr uint64) uint64 {
	return addr >> (g.offsetBits + g.setBits)
}

// Offset returns the byte offset of addr within its cache line.
func (g Geometry) Offset(addr uint64) int { return int(addr & g.offsetMask) }

// OffsetBits returns log2(LineSize): the shift that turns a byte address
// into a line number. Fused simulation loops hoist it (and SetBits/SetMask)
// into locals so the per-reference address math is two shifts and a mask
// with no method calls.
func (g Geometry) OffsetBits() uint { return g.offsetBits }

// SetBits returns log2(Sets): the shift between the line number and the tag.
func (g Geometry) SetBits() uint { return g.setBits }

// SetMask returns Sets-1, the mask selecting the set index of a line number.
func (g Geometry) SetMask() uint64 { return g.setMask }

// Compose rebuilds an address from a (tag, set, offset) triple. It is the
// inverse of the Tag/Set/Offset decomposition and exists chiefly so tests can
// assert the round-trip property.
func (g Geometry) Compose(tag uint64, set, offset int) uint64 {
	return tag<<(g.offsetBits+g.setBits) | uint64(set)<<g.offsetBits | uint64(offset)
}

// String implements fmt.Stringer, e.g. "32KiB 8-way, 64 sets x 64B lines".
func (g Geometry) String() string {
	return fmt.Sprintf("%s %d-way, %d sets x %dB lines", formatSize(g.Size()), g.Ways, g.Sets, g.LineSize)
}

func formatSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
