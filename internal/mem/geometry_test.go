package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewGeometryValidation(t *testing.T) {
	cases := []struct {
		line, sets, ways int
		ok               bool
	}{
		{64, 64, 8, true},
		{64, 1, 1, true},
		{1, 1, 1, true},
		{32, 512, 16, true},
		{0, 64, 8, false},
		{-64, 64, 8, false},
		{63, 64, 8, false},
		{64, 0, 8, false},
		{64, 63, 8, false},
		{64, 64, 0, false},
		{64, 64, -1, false},
	}
	for _, c := range cases {
		_, err := NewGeometry(c.line, c.sets, c.ways)
		if (err == nil) != c.ok {
			t.Errorf("NewGeometry(%d,%d,%d): err=%v, want ok=%v", c.line, c.sets, c.ways, err, c.ok)
		}
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry(63,64,8) did not panic")
		}
	}()
	MustGeometry(63, 64, 8)
}

func TestGeometrySize(t *testing.T) {
	g := MustGeometry(64, 64, 8)
	if got := g.Size(); got != 32<<10 {
		t.Errorf("Size() = %d, want %d", got, 32<<10)
	}
}

func TestDecompositionKnownValues(t *testing.T) {
	// 64B lines -> 6 offset bits; 64 sets -> 6 index bits.
	g := MustGeometry(64, 64, 8)
	cases := []struct {
		addr   uint64
		tag    uint64
		set    int
		offset int
	}{
		{0, 0, 0, 0},
		{63, 0, 0, 63},
		{64, 0, 1, 0},
		{64*64 - 1, 0, 63, 63},
		{64 * 64, 1, 0, 0},
		{0xdeadbeef, 0xdead_beef >> 12, int((0xdeadbeef >> 6) & 63), 0xef & 63},
	}
	for _, c := range cases {
		if got := g.Tag(c.addr); got != c.tag {
			t.Errorf("Tag(%#x) = %#x, want %#x", c.addr, got, c.tag)
		}
		if got := g.Set(c.addr); got != c.set {
			t.Errorf("Set(%#x) = %d, want %d", c.addr, got, c.set)
		}
		if got := g.Offset(c.addr); got != c.offset {
			t.Errorf("Offset(%#x) = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestLineAndLineNumber(t *testing.T) {
	g := MustGeometry(64, 64, 8)
	if got := g.Line(0x1234); got != 0x1200 {
		t.Errorf("Line(0x1234) = %#x, want 0x1200", got)
	}
	if got := g.LineNumber(0x1234); got != 0x48 {
		t.Errorf("LineNumber(0x1234) = %#x, want 0x48", got)
	}
}

// Property: Compose is the exact inverse of (Tag, Set, Offset) for any
// address, for several geometries.
func TestDecomposeComposeRoundTrip(t *testing.T) {
	geoms := []Geometry{
		MustGeometry(64, 64, 8),
		MustGeometry(32, 128, 4),
		MustGeometry(64, 512, 8),
		MustGeometry(128, 1024, 16),
	}
	for _, g := range geoms {
		f := func(addr uint64) bool {
			return g.Compose(g.Tag(addr), g.Set(addr), g.Offset(addr)) == addr
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("geometry %v: round trip failed: %v", g, err)
		}
	}
}

// Property: consecutive lines map to consecutive sets (mod Sets), the fact
// Figure 2's row-to-set mapping relies on.
func TestConsecutiveLinesWalkSets(t *testing.T) {
	g := MustGeometry(64, 64, 8)
	f := func(base uint64) bool {
		base = g.Line(base)
		s0 := g.Set(base)
		s1 := g.Set(base + uint64(g.LineSize))
		return s1 == (s0+1)%g.Sets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: addresses within one line share tag and set.
func TestSameLineSameSet(t *testing.T) {
	g := MustGeometry(64, 64, 8)
	f := func(addr uint64, off uint8) bool {
		a := g.Line(addr) + uint64(off)%uint64(g.LineSize)
		return g.Set(a) == g.Set(g.Line(addr)) && g.Tag(a) == g.Tag(g.Line(addr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometryString(t *testing.T) {
	g := MustGeometry(64, 64, 8)
	s := g.String()
	for _, want := range []string{"32KiB", "8-way", "64 sets", "64B lines"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestMachineConfigs(t *testing.T) {
	b, s := Broadwell(), Skylake()
	if b.L1.Size() != 32<<10 || s.L1.Size() != 32<<10 {
		t.Errorf("L1 sizes: broadwell=%d skylake=%d, want 32768", b.L1.Size(), s.L1.Size())
	}
	if b.L2.Size() != 256<<10 || s.L2.Size() != 256<<10 {
		t.Errorf("L2 sizes: broadwell=%d skylake=%d, want 262144", b.L2.Size(), s.L2.Size())
	}
	if b.Threads != 28 || s.Threads != 8 {
		t.Errorf("threads: broadwell=%d skylake=%d, want 28/8", b.Threads, s.Threads)
	}
	if b.LLC.Size() <= s.LLC.Size() {
		t.Errorf("broadwell LLC (%d) should exceed skylake LLC (%d)", b.LLC.Size(), s.LLC.Size())
	}
	if got := L1Default(); got.Sets != 64 || got.Ways != 8 || got.LineSize != 64 {
		t.Errorf("L1Default() = %v, want 64 sets x 8 ways x 64B", got)
	}
}

func TestLatencyCost(t *testing.T) {
	l := Latency{L1Hit: 4, L2Hit: 12, LLCHit: 40, Memory: 200}
	want := []int{4, 12, 40, 200, 200}
	for level, w := range want {
		if got := l.Cost(level); got != w {
			t.Errorf("Cost(%d) = %d, want %d", level, got, w)
		}
	}
}

func BenchmarkSetExtraction(b *testing.B) {
	g := MustGeometry(64, 64, 8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += g.Set(uint64(i) * 64)
	}
	_ = sink
}
