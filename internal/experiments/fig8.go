package experiments

import (
	"io"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig8Point is one x-position of Figure 8: classification F1 (8-fold CV
// over the 16 training loops) and mean modeled runtime overhead, at one
// mean sampling period.
type Fig8Point struct {
	Period   uint64
	F1       float64
	Overhead float64
}

// Fig8Periods is the sampling-period sweep. The paper reports F1 = 1 at a
// mean period of 171 and F1 ≈ 0.83 at 1212 (2.9x overhead).
var Fig8Periods = []uint64{31, 63, 171, 577, 1212, 2048, 4096}

// trainingPrograms returns the 16 labelled training kernels (8 with
// conflict misses, 8 without), mirroring §5.2's 16 representative loops.
func trainingPrograms(scale Scale) ([]*workloads.Program, []bool) {
	var conflict []*workloads.Program
	if scale == Quick {
		conflict = []*workloads.Program{
			workloads.NewADI(256, 1).Original,
			workloads.NewFFT(128).Original,
			workloads.NewTinyDNN(128, 1024, 1).Original,
			workloads.NewKripke(64, 32, 32).Original,
			workloads.NewSymmetrization(128).Original,
			workloads.NewNW(256, 16).Original,
			workloads.NewADI(128, 1).Original,
			workloads.NewTinyDNN(64, 512, 1).Original,
		}
	} else {
		conflict = []*workloads.Program{
			workloads.NewADI(512, 1).Original,
			workloads.NewFFT(256).Original,
			workloads.NewTinyDNN(256, 1024, 1).Original,
			workloads.NewKripke(128, 64, 32).Original,
			workloads.NewSymmetrization(128).Original,
			workloads.NewNW(512, 16).Original,
			workloads.NewADI(256, 1).Original,
			workloads.NewTinyDNN(128, 512, 1).Original,
		}
	}
	clean := []*workloads.Program{
		workloads.Backprop(),
		workloads.BFS(),
		workloads.Kmeans(),
		workloads.LUD(),
		workloads.Pathfinder(),
		workloads.SRAD(),
		workloads.Streamcluster(),
		workloads.Heartwall(),
	}
	progs := append(conflict, clean...)
	labels := make([]bool, len(progs))
	for i := range conflict {
		labels[i] = true
	}
	return progs, labels
}

// Fig8 sweeps the sampling period, training and cross-validating the
// conflict classifier at each point and reporting the modeled overhead.
func Fig8(w io.Writer, scale Scale, periods []uint64) ([]Fig8Point, error) {
	if len(periods) == 0 {
		periods = Fig8Periods
	}
	progs, labels := trainingPrograms(scale)
	om := core.DefaultOverheadModel()

	var out []Fig8Point
	for _, period := range periods {
		features := make([]float64, len(progs))
		var ovSum float64
		for i, p := range progs {
			prof, an, err := analyzed(p, period, 11+int64(i))
			if err != nil {
				return nil, err
			}
			features[i] = an.CF
			ovSum += om.ProfilingOf(prof)
		}
		conf, err := classify.CrossValidate(features, labels, 8,
			classify.TrainOptions{}, stats.NewRand(int64(period)))
		if err != nil {
			return nil, err
		}
		out = append(out, Fig8Point{
			Period:   period,
			F1:       conf.F1(),
			Overhead: ovSum / float64(len(progs)),
		})
	}

	if w != nil {
		t := report.NewTable("Figure 8 — F1-score and mean runtime overhead vs. sampling period",
			"mean sampling period", "F1-score", "mean overhead")
		for _, p := range out {
			t.Row(p.Period, p.F1, report.Times(p.Overhead))
		}
		if err := t.Write(w); err != nil {
			return out, err
		}
	}
	return out, nil
}
