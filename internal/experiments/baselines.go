package experiments

import (
	"io"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/objfile"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// BaselineRow is one detector's scorecard over the labelled kernels.
type BaselineRow struct {
	Detector string
	stats.Confusion
	// FullTrace reports whether the detector needs every reference
	// (hardware/simulator lane) or only PMU samples.
	FullTrace bool
}

// staticVictimKernel hammers one cache set from a page-strided table with
// pseudo-random accesses: the conflict never moves, so even a global
// histogram sees it. It is the fair case for the DProf-style detector.
func staticVictimKernel() *workloads.Program {
	b := objfile.NewBuilder("static-victim")
	b.Func("main")
	b.Loop("sv.c", 1)
	ld := b.Load("sv.c", 2)
	b.EndLoop()
	bin := b.Finish()
	ar := alloc.NewArena()
	tbl := ar.Alloc("table", 256*4096, 4096)
	return workloads.NewProgram("static-victim", bin, ar, func(tid, threads int, sink trace.Sink) {
		if tid != 0 {
			return
		}
		rng := rand.New(rand.NewSource(61))
		for i := 0; i < 300_000; i++ {
			sink.Ref(trace.Ref{IP: ld, Addr: tbl.Start + uint64(rng.Intn(256))*4096})
		}
	})
}

// roundRobinKernel cycles over ways+1 lines of a single set — the textbook
// thrash pattern where each miss re-fetches the line evicted on the
// previous miss. It is the fair case for the depth-1 MST detector.
func roundRobinKernel(geom mem.Geometry) *workloads.Program {
	b := objfile.NewBuilder("round-robin")
	b.Func("main")
	b.Loop("rr.c", 1)
	ld := b.Load("rr.c", 2)
	b.EndLoop()
	bin := b.Finish()
	ar := alloc.NewArena()
	k := geom.Ways + 1
	span := uint64(geom.Sets) * uint64(geom.LineSize)
	blk := ar.Alloc("ring", uint64(k)*span, span)
	return workloads.NewProgram("round-robin", bin, ar, func(tid, threads int, sink trace.Sink) {
		if tid != 0 {
			return
		}
		for i := 0; i < 200_000; i++ {
			sink.Ref(trace.Ref{IP: ld, Addr: blk.Start + uint64(i%k)*span})
		}
	})
}

// Baselines compares CCProf's RCD classifier against the related-work
// detectors of §7.1 on the 16 labelled training kernels plus two
// static-conflict kernels (where the baselines are at their best):
//
//   - CCProf: sampled RCD contribution factor + the builtin logistic model.
//   - DProf-style (Pesterev et al.): the same samples, but only the global
//     per-set histogram — the uniform-workload assumption the paper
//     criticizes. Rotating victims (ADI's column sweep, NW's wavefronts)
//     look globally balanced and escape it; the static-victim kernel is
//     caught.
//   - MST (Collins & Tullsen): the hardware miss-classification table —
//     full-trace, but only classifies a miss whose tag matches the set's
//     most recent victim, so only tight thrash loops are caught.
//   - 3C simulation: exact cold/capacity/conflict classification on the
//     full trace. Note it calls ADI and Kripke "capacity" (their working
//     sets exceed even a fully-associative cache) although padding and
//     interchange fix them — the actionable notion CCProf targets treats
//     concentrated capacity misses as conflicts (§3.3).
func Baselines(w io.Writer, scale Scale) ([]BaselineRow, error) {
	progs, labels := trainingPrograms(scale)
	geom := mem.L1Default()
	progs = append(progs, staticVictimKernel(), roundRobinKernel(geom))
	labels = append(labels, true, true)

	ccprofRow := BaselineRow{Detector: "CCProf (RCD, sampled)"}
	dprofRow := BaselineRow{Detector: "DProf-style (histogram, sampled)"}
	mstRow := BaselineRow{Detector: "MST (hardware, full trace)", FullTrace: true}
	threeCRow := BaselineRow{Detector: "3C classification (full trace)", FullTrace: true}
	model := core.DefaultModel()

	for i, p := range progs {
		// Sampled lane: one profiling run feeds both CCProf and DProf.
		prof, err := profileAt(p, Fig7Period, 47+int64(i))
		if err != nil {
			return nil, err
		}
		an, err := core.Analyze(prof, p.Binary, p.Arena, core.AnalyzeOptions{})
		if err != nil {
			return nil, err
		}
		ccprofRow.Observe(model.Predict(an.CF), labels[i])

		dp := baseline.NewDProf(geom.Sets)
		for _, thread := range prof.Samples {
			for _, sm := range thread {
				dp.Observe(geom.Set(sm.Addr))
			}
		}
		dprofRow.Observe(dp.Verdict(4), labels[i])

		// Full-trace lane.
		mst := baseline.NewMST(geom)
		runOn(p, mst)
		mstRow.Observe(mst.Verdict(0.30), labels[i])

		cl := cache.NewClassifier(geom)
		runOn(p, trace.SinkFunc(func(r trace.Ref) { cl.Access(r.Addr) }))
		threeCRow.Observe(cl.ConflictRatio() >= 0.25, labels[i])
	}

	rows := []BaselineRow{ccprofRow, dprofRow, mstRow, threeCRow}
	if w != nil {
		t := report.NewTable("Detector comparison — 18 labelled kernels (10 conflicted / 8 clean)",
			"detector", "needs full trace", "TP", "FP", "TN", "FN", "F1")
		for _, r := range rows {
			t.Row(r.Detector, r.FullTrace, r.TP, r.FP, r.TN, r.FN, r.F1())
		}
		if err := t.Write(w); err != nil {
			return rows, err
		}
		fprintf(w, "DProf's global histogram only sees the static victim; depth-1 MST only\n")
		fprintf(w, "the tight thrash loop; exact 3C misclassifies the padding-fixable\n")
		fprintf(w, "capacity-concentration cases (ADI, Kripke) that RCD treats as conflicts.\n")
	}
	return rows, nil
}
