package experiments

import (
	"io"
	"testing"
)

// TestAnalyticGates pins the tier-0 model's accuracy contract at Quick
// scale: the closed-form verdict must agree with the exact-simulation
// ground truth on at least 11 of the 12 case-study variants, its
// predicted CF must track the enumerating analyzer within 0.10, and the
// tiered advisor must reproduce every simulation-only recommendation.
func TestAnalyticGates(t *testing.T) {
	res, err := Analytic(io.Discard, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Rows); got != 12 {
		t.Fatalf("expected 12 case-study variants, got %d", got)
	}
	if agreed := res.TP + res.TN; agreed < 11 {
		t.Errorf("analytic verdict agrees with simulation on %d/12 variants, want ≥ 11 (disagreements: %v)",
			agreed, res.Disagreements())
	}
	if res.MaxCFDelta > 0.10 {
		t.Errorf("max |analytic − static| predicted cf = %.3f, want ≤ 0.10", res.MaxCFDelta)
	}
	for _, s := range res.Cascade {
		if !s.Match() {
			t.Errorf("%s: cascade recommended pad %d, simulation-only %d", s.App, s.TieredPad, s.FullPad)
		}
		if s.Simulated >= s.Candidates {
			t.Errorf("%s: cascade simulated %d of %d candidates, pruned nothing", s.App, s.Simulated, s.Candidates)
		}
	}
}
