package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/rcd"
	"repro/internal/report"
	"repro/internal/specgen"
	"repro/internal/staticconf"
	"repro/internal/workloads"
)

// SpecgenRow is one kernel variant in the extracted-spec confusion matrix:
// the static verdict computed from a spec the source-level extractor
// derived on its own, against the exact-simulation ground truth.
type SpecgenRow struct {
	App           string
	Accesses      int  // accesses in the extracted spec
	Unanalyzable  int  // reference sites the extractor refused to model
	Abstained     bool // extraction produced no spec; static verdict defaults clean
	Static        bool
	Dynamic       bool
	StaticCF      float64
	ExactCF       float64
	ConflictRatio float64
	Reason        string
}

// Agree reports whether the static verdict matches the dynamic one.
func (r SpecgenRow) Agree() bool { return r.Static == r.Dynamic }

// SpecgenResult is the confusion matrix of the static analyzer running on
// extracted specs, plus the cost of extraction itself.
type SpecgenResult struct {
	Rows           []SpecgenRow
	TP, TN, FP, FN int
	// ExtractTime is the total wall time the source-level extractor spent
	// deriving every spec in the table (serial, single-threaded). Wall
	// clock is non-deterministic, so the field is excluded from the
	// serialized report and from the rendered text; it is recorded as the
	// "extract" phase of the obs snapshot and stays available to
	// in-process callers.
	ExtractTime time.Duration `json:"-"`
}

// Agreement returns the fraction of rows where static and dynamic agree.
func (r *SpecgenResult) Agreement() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return float64(r.TP+r.TN) / float64(len(r.Rows))
}

// Disagreements lists the apps where the static verdict is wrong.
func (r *SpecgenResult) Disagreements() []string {
	var out []string
	for _, row := range r.Rows {
		if !row.Agree() {
			out = append(out, row.App)
		}
	}
	return out
}

// specgenCaseCtors mirrors caseStudies(scale) constructor-for-constructor;
// the extractor runs the same constructors at the same arguments, so row i
// of both lists describes the same kernel build.
func specgenCaseCtors(s Scale) []struct {
	ctor string
	args []int
} {
	type c = struct {
		ctor string
		args []int
	}
	if s == Quick {
		return []c{
			{"NewNW", []int{512, 16}},
			{"NewFFT", []int{128}},
			{"NewADI", []int{256, 1}},
			{"NewTinyDNN", []int{128, 1024, 1}},
			{"NewKripke", []int{64, 32, 32}},
			{"NewHimeno", []int{16, 16, 64, 1}},
		}
	}
	return []c{
		{"NewNW", []int{1024, 16}},
		{"NewFFT", []int{256}},
		{"NewADI", []int{512, 2}},
		{"NewTinyDNN", []int{256, 1024, 4}},
		{"NewKripke", []int{128, 64, 32}},
		{"NewHimeno", []int{32, 32, 64, 2}},
	}
}

// rodiniaCtorNames lists the niladic Rodinia constructors joined at Full
// scale (RodiniaSuite[0] is NW, covered by its case study).
var rodiniaCtorNames = []string{
	"Backprop", "BFS", "BTree", "CFD", "Heartwall", "Hotspot",
	"Hotspot3D", "Kmeans", "LavaMD", "Leukocyte", "LUD", "Myocyte",
	"NN", "ParticleFilter", "Pathfinder", "SRAD", "Streamcluster",
}

// Specgen is the end-to-end validation of source-level spec extraction:
// every case-study variant's spec is derived from the workload source by
// internal/specgen — no hand-written spec is consulted — analyzed by the
// static conflict analyzer, and compared against exact simulation, exactly
// like the staticconf experiment. Matching that experiment's confusion
// matrix shows the extractor is a drop-in replacement for hand specs. At
// Full scale the Rodinia mimics join; data-dependent kernels whose
// extraction abstains default to a clean static verdict (the analyzer has
// nothing to analyze), which is correct for every kernel in the suite.
func Specgen(w io.Writer, scale Scale) (*SpecgenResult, error) {
	g := mem.L1Default()
	dir, err := specgen.WorkloadsDir()
	if err != nil {
		return nil, err
	}
	pkg, err := specgen.Load(dir)
	if err != nil {
		return nil, err
	}

	type variant struct {
		app  string
		prog *workloads.Program
		ex   *specgen.Extraction
	}
	var variants []variant

	// Phase 1: serial, timed extraction of every spec from source.
	start := time.Now()
	hand := caseStudies(scale)
	for i, c := range specgenCaseCtors(scale) {
		cse, err := pkg.ExtractCaseStudy(g, c.ctor, c.args...)
		if err != nil {
			return nil, fmt.Errorf("specgen: %s: %w", c.ctor, err)
		}
		variants = append(variants,
			variant{hand[i].Name + "/orig", hand[i].Original, cse.Original},
			variant{hand[i].Name + "/opt", hand[i].Optimized, cse.Optimized})
	}
	if scale == Full {
		byName := map[string]*workloads.Program{}
		for _, p := range workloads.RodiniaSuite() {
			byName[p.Name] = p
		}
		for _, ctor := range rodiniaCtorNames {
			ex, err := pkg.ExtractProgram(g, ctor)
			if err != nil {
				return nil, fmt.Errorf("specgen: %s: %w", ctor, err)
			}
			prog := byName[ex.Kernel]
			if prog == nil {
				return nil, fmt.Errorf("specgen: extraction of %s yielded unknown kernel %q", ctor, ex.Kernel)
			}
			variants = append(variants, variant{prog.Name, prog, ex})
		}
	}
	extractTime := time.Since(start)
	obs.Default.ObservePhase("extract", extractTime)

	// Phase 2: static verdicts from the extracted specs, dynamic ground
	// truth from exact simulation, fanned out across the sweep executor.
	rows, err := parsim.Run(len(variants), parsim.Options{}, func(i int) (SpecgenRow, error) {
		v := variants[i]
		row := SpecgenRow{App: v.app, Unanalyzable: len(v.ex.Unanalyzable)}
		if v.ex.Spec != nil {
			row.Accesses = len(v.ex.Spec.Accesses)
			sr, err := staticconf.Analyze(v.ex.Spec, g, staticconf.Options{})
			if err != nil {
				return SpecgenRow{}, fmt.Errorf("specgen: %s: %w", v.app, err)
			}
			row.Static = sr.Conflict
			row.StaticCF = sr.PredictedCF
			row.Reason = sr.Reason
		} else {
			row.Abstained = true
			row.Reason = "extraction abstained: no analyzable reference site"
		}

		sink := &classifySink{g: g, cl: cache.NewClassifier(g), tr: rcd.New(g.Sets)}
		done := obs.Default.StartPhase("classify")
		v.prog.Run(sink)
		done()
		row.ConflictRatio = sink.cl.ConflictRatio()
		row.ExactCF = sink.tr.ContributionFactor(rcd.DefaultThreshold)
		row.Dynamic = row.ConflictRatio >= dynConflictRatioMin || row.ExactCF >= dynExactCFMin
		return row, nil
	})
	if err != nil {
		return nil, err
	}

	res := &SpecgenResult{Rows: rows, ExtractTime: extractTime}
	for _, row := range rows {
		switch {
		case row.Static && row.Dynamic:
			res.TP++
		case !row.Static && !row.Dynamic:
			res.TN++
		case row.Static && !row.Dynamic:
			res.FP++
		default:
			res.FN++
		}
	}

	if w != nil {
		t := report.NewTable("extracted specs vs exact simulation",
			"variant", "accesses", "opaque sites", "static", "dynamic", "pred cf", "exact cf", "agree")
		for _, row := range res.Rows {
			static := verdictString(row.Static)
			if row.Abstained {
				static = "abstain"
			}
			t.Row(row.App, fmt.Sprint(row.Accesses), fmt.Sprint(row.Unanalyzable),
				static, verdictString(row.Dynamic),
				report.Pct(row.StaticCF), report.Pct(row.ExactCF), agreeString(row.Agree()))
		}
		if err := t.Write(w); err != nil {
			return res, err
		}
		fprintf(w, "\nconfusion matrix (positive = conflict): TP=%d TN=%d FP=%d FN=%d — agreement %.0f%% (%d/%d)\n",
			res.TP, res.TN, res.FP, res.FN, 100*res.Agreement(), res.TP+res.TN, len(res.Rows))
		if dis := res.Disagreements(); len(dis) > 0 {
			fprintf(w, "disagreements: %v\n", dis)
		} else {
			fprintf(w, "disagreements: none\n")
		}
		// No wall-clock in the report: extraction time lives in the obs
		// snapshot ("extract" phase), keeping this stream byte-stable.
		fprintf(w, "spec extraction: %d variants from source alone (no hand-written input)\n",
			len(res.Rows))
	}
	return res, nil
}
