package experiments

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faultinj"
	"repro/internal/parsim"
	"repro/internal/pmu"
	"repro/internal/report"
	"repro/internal/stats"
)

// FaultsRates is the injected-fault sweep: the per-sample drop rate, with
// the plan's other sample-fault channels scaled off it (see faultsPlan).
var FaultsRates = []float64{0, 0.05, 0.10, 0.25}

// faultsCheckpoint is the optional sweep-checkpoint configuration set by
// the CLI (-checkpoint/-resume); empty dir disables checkpointing.
var faultsCheckpoint atomic.Pointer[parsim.Checkpoint]

// SetCheckpoint routes experiments that support sweep checkpointing
// (currently faults) to JSONL files under dir; resume loads existing
// entries and skips their shards, so a run killed mid-sweep can be re-run
// to an identical report without redoing completed work. An empty dir
// disables checkpointing.
func SetCheckpoint(dir string, resume bool) {
	if dir == "" {
		faultsCheckpoint.Store(nil)
		return
	}
	faultsCheckpoint.Store(&parsim.Checkpoint{Path: dir, Resume: resume})
}

// faultsPlan is the fault regime at one sweep position: sample faults scale
// with rate, while the infrastructure faults (shard panics, injected
// errors, slowdowns) stay constant so every run exercises the recovery
// machinery. FailAttempts=1 with Retries≥1 means every injected shard
// fault recovers on its first retry — lost shards would make the
// confusion matrix depend on the fault regime's infrastructure half.
// The plan carries the root seed; Shard and Injector derive per-component
// seeds from it by key (deriving here with the same key would cancel the
// XOR and collapse every shard onto one seed).
func faultsPlan(rate float64) *faultinj.Plan {
	return &faultinj.Plan{
		Seed:          23,
		DropRate:      rate,
		TruncateRate:  rate / 16, // bursts of 8: ≈ rate/2 extra loss
		TruncateBurst: 8,
		CorruptRate:   rate / 10,
		PeriodSkew:    rate / 2,
		PanicRate:     0.15,
		ErrorRate:     0.10,
		SlowRate:      0.05,
		SlowDelay:     1e6, // 1ms: pacing only, never in results
		FailAttempts:  1,
	}
}

// FaultsRow is one x-position of the faults experiment: the classifier's
// confusion matrix over the 12 case-study variants (each original variant
// labelled conflict, each optimized variant clean) under one injected
// fault rate, plus the degradation ledger of the runs that produced it.
type FaultsRow struct {
	Rate float64
	stats.Confusion
	// LostFrac is the fraction of raised samples the plan discarded
	// (drops plus truncation bursts) across the 12 profiles.
	LostFrac float64
	// Corrupted counts samples delivered with rewritten addresses.
	Corrupted uint64
	// Retries and Panics are the recovery work the fault plan demands:
	// derived from the plan's deterministic shard decisions, NOT from the
	// engine's execution, so a resumed run (whose restored shards never
	// re-fail) renders the identical report. ShardsLost comes from the
	// engine and must be 0 — retries recover every injected fault.
	Retries    int
	Panics     int
	ShardsLost int
	// ExecRetries, ExecPanics and ExecRestored are the engine's observed
	// counts for this run. Excluded from serialization: they shrink on a
	// checkpoint-resumed run while the report stays byte-identical (the
	// same information reaches obs as parsim.* counters).
	ExecRetries  int `json:"-"`
	ExecPanics   int `json:"-"`
	ExecRestored int `json:"-"`
}

// faultsOutcome is one variant's profiling result under a plan.
type faultsOutcome struct {
	Variant   string
	Predicted bool
	Actual    bool
	Kept      uint64
	Dropped   uint64 // discarded samples: drops + truncations
	Corrupted uint64
}

// Faults sweeps the injected fault rate against classifier accuracy: each
// rate profiles all 12 case-study variants under a deterministic fault
// plan (sample drops, truncation bursts, address corruption, period skew,
// and constant-rate shard panics/errors/slowdowns recovered by the sweep
// engine) and scores the conflict classifier against the variants' labels.
// The paper-level claim being defended: CCProf's classification is a
// statistical property of the sample stream, so losing 10% of samples must
// not move the confusion matrix.
func Faults(w io.Writer, scale Scale) ([]FaultsRow, error) {
	cases := caseStudies(scale)
	note := report.DegradedNote{}
	rows := make([]FaultsRow, 0, len(FaultsRates))
	for ri, rate := range FaultsRates {
		opts := parsim.Options{Retries: 2, Tolerate: true}
		if ck := faultsCheckpoint.Load(); ck != nil {
			opts.Checkpoint = &parsim.Checkpoint{
				Path:   filepath.Join(ck.Path, fmt.Sprintf("faults-rate%d.ckpt", ri)),
				Resume: ck.Resume,
			}
		}
		// One task per variant: 2*len(cases) independent profiles.
		outs, rep, err := parsim.RunCtx(2*len(cases), opts, func(ctx context.Context, i int) (faultsOutcome, error) {
			cs := cases[i/2]
			prog, actual := cs.Original, true
			if i%2 == 1 {
				prog, actual = cs.Optimized, false
			}
			key := fmt.Sprintf("faults/rate%d/%s", ri, prog.Name)
			plan := faultsPlan(rate)
			// Infrastructure faults first: this shard may panic, error or
			// stall here, and the engine's retry recovers it.
			if ferr := plan.Shard(key, parsim.Attempt(ctx)).Apply(); ferr != nil {
				return faultsOutcome{}, ferr
			}
			prof, err := core.ProfileProgram(prog, core.ProfileOptions{
				Period: pmu.Uniform(cs.ProfilePeriod),
				Seed:   parsim.DeriveSeed(23, key),
				NoTime: true,
				Faults: plan,
			})
			if err != nil {
				return faultsOutcome{}, err
			}
			an, err := core.Analyze(prof, prog.Binary, prog.Arena, core.AnalyzeOptions{})
			if err != nil {
				return faultsOutcome{}, err
			}
			return faultsOutcome{
				Variant:   prog.Name,
				Predicted: an.Conflict,
				Actual:    actual,
				Kept:      uint64(prof.SampleCount()),
				Dropped:   prof.FaultDropped + prof.FaultTruncated,
				Corrupted: prof.FaultCorrupted,
			}, nil
		})
		if err != nil {
			return rows, fmt.Errorf("faults: rate %.2f: %w", rate, err)
		}
		row := FaultsRow{
			Rate:         rate,
			ShardsLost:   rep.ShardsLost(),
			ExecRetries:  rep.Retries,
			ExecPanics:   rep.Panics,
			ExecRestored: rep.Restored,
		}
		// The regime's demanded recovery work, replayed from the plan's
		// deterministic decisions (attempt 0 of every shard): each selected
		// shard fails once and recovers on its single retry.
		for i := 0; i < 2*len(cases); i++ {
			prog := cases[i/2].Original
			if i%2 == 1 {
				prog = cases[i/2].Optimized
			}
			key := fmt.Sprintf("faults/rate%d/%s", ri, prog.Name)
			switch f := faultsPlan(rate).Shard(key, 0); {
			case f.Panic:
				row.Panics++
				row.Retries++
			case f.Err != nil:
				row.Retries++
			}
		}
		var kept, dropped uint64
		for _, o := range outs {
			row.Confusion.Observe(o.Predicted, o.Actual)
			kept += o.Kept
			dropped += o.Dropped
			row.Corrupted += o.Corrupted
		}
		if kept+dropped > 0 {
			row.LostFrac = float64(dropped) / float64(kept+dropped)
		}
		note.ShardsLost += row.ShardsLost
		note.SamplesDropped += dropped
		note.SamplesAltered += row.Corrupted
		note.Retries += row.Retries
		note.PanicsRecovered += row.Panics
		rows = append(rows, row)
	}
	if w != nil {
		t := report.NewTable("Faults — classifier accuracy vs injected fault rate (12 case-study variants)",
			"fault rate", "samples lost", "accuracy", "precision", "recall", "f1",
			"retries", "panics", "shards lost")
		for _, r := range rows {
			t.Row(report.Pct(r.Rate), report.Pct(r.LostFrac), report.Pct(r.Accuracy()),
				report.Pct(r.Precision()), report.Pct(r.Recall()), report.Pct(r.F1()),
				r.Retries, r.Panics, r.ShardsLost)
		}
		if err := t.Write(w); err != nil {
			return rows, err
		}
		if err := note.Write(w); err != nil {
			return rows, err
		}
	}
	return rows, nil
}
