package experiments

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/rcd"
	"repro/internal/report"
	"repro/internal/staticconf"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// classifySink feeds the exact 3C classifier and the RCD tracker from a
// reference stream, consuming batches to keep the ground-truth replay off
// the per-ref dispatch path.
type classifySink struct {
	g  mem.Geometry
	cl *cache.Classifier
	tr *rcd.Tracker
}

// Ref implements trace.Sink.
func (s *classifySink) Ref(r trace.Ref) {
	if s.cl.Access(r.Addr) != cache.Hit {
		s.tr.Observe(s.g.Set(r.Addr))
	}
}

// RefBatch implements trace.BatchSink.
func (s *classifySink) RefBatch(refs []trace.Ref) {
	for i := range refs {
		s.Ref(refs[i])
	}
}

// StaticConfRow is one kernel variant in the static-vs-dynamic comparison:
// the analyzer's compile-time verdict against the exact-simulation ground
// truth.
type StaticConfRow struct {
	App           string
	Static        bool    // static analyzer: conflict predicted
	Dynamic       bool    // exact simulation: conflict observed
	StaticCF      float64 // predicted short-RCD contribution factor
	ExactCF       float64 // exact cf from the full reference stream
	ConflictRatio float64 // 3C conflict-miss share of all misses
	Reason        string  // analyzer's one-line justification
}

// Agree reports whether the static verdict matches the dynamic one.
func (r StaticConfRow) Agree() bool { return r.Static == r.Dynamic }

// StaticConfResult is the confusion matrix of the static analyzer over the
// case-study variants (and, at Full scale, the Rodinia suite).
type StaticConfResult struct {
	Rows []StaticConfRow
	// Confusion counts, with "conflict" as the positive class.
	TP, TN, FP, FN int
}

// Agreement returns the fraction of rows where static and dynamic agree.
func (r *StaticConfResult) Agreement() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return float64(r.TP+r.TN) / float64(len(r.Rows))
}

// Disagreements lists the apps where the static verdict is wrong.
func (r *StaticConfResult) Disagreements() []string {
	var out []string
	for _, row := range r.Rows {
		if !row.Agree() {
			out = append(out, row.App)
		}
	}
	return out
}

// Dynamic ground-truth rule: a run counts as conflicted when the 3C
// classifier attributes a substantial share of misses to conflicts, or
// when the exact short-RCD contribution factor is overwhelming (ADI-style
// cases convert conflict misses into capacity misses under the 3C rule
// while the RCD signature stays hot). The cf cut sits between the largest
// clean value observed across the suite (ADI optimized, ~0.67) and the
// smallest conflicted one (NW original, ~0.78).
const (
	dynConflictRatioMin = 0.2
	dynExactCFMin       = 0.7
)

// StaticConf cross-validates the static affine analyzer against exact
// simulation: every case-study variant (both builds) is analyzed from its
// access spec alone and replayed through the classifying L1 simulator, and
// the two verdicts are tabulated as a confusion matrix. At Full scale the
// 17 conflict-free Rodinia mimics join the table.
func StaticConf(w io.Writer, scale Scale) (*StaticConfResult, error) {
	g := mem.L1Default()
	type variant struct {
		app  string
		prog *workloads.Program
	}
	var variants []variant
	for _, cs := range caseStudies(scale) {
		variants = append(variants,
			variant{cs.Name + "/orig", cs.Original},
			variant{cs.Name + "/opt", cs.Optimized})
	}
	if scale == Full {
		// RodiniaSuite[0] is NW, already covered by its case study.
		for _, p := range workloads.RodiniaSuite()[1:] {
			variants = append(variants, variant{p.Name, p})
		}
	}

	// Every confusion-matrix entry is an independent (analyze, simulate)
	// pair, so the variants fan out across the sweep executor; rows come
	// back in variant order and the confusion counts are tallied serially
	// afterwards, keeping the matrix identical at any worker count.
	rows, err := parsim.Run(len(variants), parsim.Options{}, func(i int) (StaticConfRow, error) {
		v := variants[i]
		if v.prog.Spec == nil {
			return StaticConfRow{}, fmt.Errorf("staticconf: %s declares no access spec", v.app)
		}
		sr, err := staticconf.Analyze(v.prog.Spec, g, staticconf.Options{})
		if err != nil {
			return StaticConfRow{}, fmt.Errorf("staticconf: %s: %w", v.app, err)
		}

		sink := &classifySink{g: g, cl: cache.NewClassifier(g), tr: rcd.New(g.Sets)}
		done := obs.Default.StartPhase("classify")
		v.prog.Run(sink)
		done()
		ratio := sink.cl.ConflictRatio()
		exactCF := sink.tr.ContributionFactor(rcd.DefaultThreshold)

		return StaticConfRow{
			App:           v.app,
			Static:        sr.Conflict,
			Dynamic:       ratio >= dynConflictRatioMin || exactCF >= dynExactCFMin,
			StaticCF:      sr.PredictedCF,
			ExactCF:       exactCF,
			ConflictRatio: ratio,
			Reason:        sr.Reason,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &StaticConfResult{Rows: rows}
	for _, row := range rows {
		switch {
		case row.Static && row.Dynamic:
			res.TP++
		case !row.Static && !row.Dynamic:
			res.TN++
		case row.Static && !row.Dynamic:
			res.FP++
		default:
			res.FN++
		}
	}

	if w != nil {
		t := report.NewTable("static affine analysis vs exact simulation",
			"variant", "static", "dynamic", "pred cf", "exact cf", "conflict ratio", "agree")
		for _, row := range res.Rows {
			t.Row(row.App, verdictString(row.Static), verdictString(row.Dynamic),
				report.Pct(row.StaticCF), report.Pct(row.ExactCF),
				report.Pct(row.ConflictRatio), agreeString(row.Agree()))
		}
		if err := t.Write(w); err != nil {
			return res, err
		}
		fprintf(w, "\nconfusion matrix (positive = conflict): TP=%d TN=%d FP=%d FN=%d — agreement %.0f%% (%d/%d)\n",
			res.TP, res.TN, res.FP, res.FN, 100*res.Agreement(), res.TP+res.TN, len(res.Rows))
		if dis := res.Disagreements(); len(dis) > 0 {
			fprintf(w, "disagreements: %v\n", dis)
		} else {
			fprintf(w, "disagreements: none\n")
		}
	}
	return res, nil
}

func verdictString(conflict bool) string {
	if conflict {
		return "CONFLICT"
	}
	return "clean"
}

func agreeString(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
