package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/parsim"
	"repro/internal/report"
)

// Fig9Row reproduces one application's pair of curves in Figure 9: the RCD
// CDF (and short-RCD contribution factor) before and after the paper's
// optimization.
type Fig9Row struct {
	App     string
	CFOrig  float64
	CFOpt   float64
	CDFOrig []core.CDFPoint
	CDFOpt  []core.CDFPoint
}

// Fig9 profiles every case study's original and optimized variants and
// compares their sampled RCD distributions. The paper's claim: after
// padding (or interchange), short RCDs account for only a small share of
// L1 misses.
func Fig9(w io.Writer, scale Scale) ([]Fig9Row, error) {
	// One sweep task per case study (both variants inside the task, so no
	// two workers ever touch the same Program). Each case is profiled at
	// the period its conflicts need (HimenoBMT requires high-frequency
	// sampling), with a seed derived from the case name.
	cases := caseStudies(scale)
	rows, err := parsim.Run(len(cases), parsim.Options{}, func(i int) (Fig9Row, error) {
		cs := cases[i]
		seed := parsim.DeriveSeed(17, cs.Name)
		_, anO, err := analyzed(cs.Original, cs.ProfilePeriod, seed)
		if err != nil {
			return Fig9Row{}, err
		}
		_, anP, err := analyzed(cs.Optimized, cs.ProfilePeriod, seed)
		if err != nil {
			return Fig9Row{}, err
		}
		return Fig9Row{
			App:     cs.Name,
			CFOrig:  anO.CF,
			CFOpt:   anP.CF,
			CDFOrig: anO.CDF,
			CDFOpt:  anP.CDF,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if w != nil {
		t := report.NewTable("Figure 9 — short-RCD (<=8) L1 miss contribution before/after optimization",
			"application", "cf original", "cf optimized", "reduction")
		for _, r := range rows {
			red := 0.0
			if r.CFOrig > 0 {
				red = 1 - r.CFOpt/r.CFOrig
			}
			t.Row(r.App, report.Pct(r.CFOrig), report.Pct(r.CFOpt), report.Pct(red))
		}
		if err := t.Write(w); err != nil {
			return rows, err
		}
		// Chart the most dramatic pair.
		if len(rows) > 0 {
			ch := report.CDFChart{
				Title:  "Figure 9 — " + rows[0].App + " RCD CDF, original vs optimized",
				XLabel: "RCD",
				XMax:   128,
				Series: []report.Series{
					toSeries(rows[0].App+" original", rows[0].CDFOrig),
					toSeries(rows[0].App+" optimized", rows[0].CDFOpt),
				},
			}
			fprintf(w, "\n")
			if err := ch.Write(w); err != nil {
				return rows, err
			}
		}
	}
	return rows, nil
}
