package experiments

import (
	"io"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/parsim"
	"repro/internal/report"
)

// Table3Row reproduces one (application, machine) cell group of Table 3:
// the cycle-model speedup of the optimized variant and the cache-miss
// reductions at each level.
type Table3Row struct {
	App     string
	Machine string
	Threads int
	Speedup float64
	L1Red   float64 // percent; negative means more misses (as in the paper)
	L2Red   float64
	LLCRed  float64
}

// ScaledMachine shrinks a machine's shared LLC by the given factor. The
// workloads run at laptop scale (4-16x smaller footprints than the paper's
// inputs), so the LLC must shrink proportionally or every working set fits
// and no LLC-level effect can be observed; the Broadwell:Skylake LLC ratio
// is preserved.
func ScaledMachine(m mem.Machine, factor int) mem.Machine {
	g := m.LLC
	sets := g.Sets / factor
	if sets < 64 {
		sets = 64
	}
	m.LLC = mem.MustGeometry(g.LineSize, sets, g.Ways)
	m.Name += " (LLC/16)"
	return m
}

// Table3 simulates every case study, original vs. optimized, on the
// Broadwell (28-thread) and Skylake (8-thread) configurations with
// LLC-scaled hierarchies. Sequential case studies (ADI) run
// single-threaded, as in the paper.
func Table3(w io.Writer, scale Scale) ([]Table3Row, error) {
	machines := []mem.Machine{
		ScaledMachine(mem.Broadwell(), 16),
		ScaledMachine(mem.Skylake(), 16),
	}
	// One sweep task per case study; both machines simulate inside the
	// task because they replay the same Program instances. The per-task
	// row pairs are flattened in case order, preserving the serial layout.
	cases := caseStudies(scale)
	perCase, err := parsim.Run(len(cases), parsim.Options{}, func(i int) ([]Table3Row, error) {
		cs := cases[i]
		rows := make([]Table3Row, 0, len(machines))
		for _, m := range machines {
			threads := m.Threads
			if !cs.Parallel {
				threads = 1
			}
			if scale == Quick && threads > 8 {
				threads = 8
			}
			orig := simulateThreaded(cs.Original, m, threads)
			opt := simulateThreaded(cs.Optimized, m, threads)
			rows = append(rows, Table3Row{
				App:     cs.Name,
				Machine: m.Name,
				Threads: threads,
				Speedup: cache.Speedup(orig, opt),
				L1Red:   cache.Reduction(orig, opt, cache.LevelL1),
				L2Red:   cache.Reduction(orig, opt, cache.LevelL2),
				LLCRed:  cache.Reduction(orig, opt, cache.LevelLLC),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, pair := range perCase {
		rows = append(rows, pair...)
	}
	if w != nil {
		t := report.NewTable("Table 3 — speedup and cache miss reduction after optimization",
			"application", "machine", "threads", "speedup", "L1 red", "L2 red", "LLC red")
		for _, r := range rows {
			t.Row(r.App, r.Machine, r.Threads, report.Times(r.Speedup),
				pct1(r.L1Red), pct1(r.L2Red), pct1(r.LLCRed))
		}
		if err := t.Write(w); err != nil {
			return rows, err
		}
	}
	return rows, nil
}

func pct1(v float64) string { return report.Pct(v / 100) }
