package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/advisor"
	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/rcd"
	"repro/internal/report"
	"repro/internal/staticconf"
	"repro/internal/workloads"
)

// AnalyticRow is one kernel variant in the three-way comparison: the
// closed-form tier-0 verdict, the enumerating tier-1 verdict, and the
// exact-simulation ground truth.
type AnalyticRow struct {
	App           string
	Analytic      bool    // tier 0: closed-form model, conflict predicted
	Static        bool    // tier 1: enumerating analyzer, conflict predicted
	Dynamic       bool    // exact simulation: conflict observed
	AnalyticCF    float64 // tier-0 predicted contribution factor
	StaticCF      float64 // tier-1 predicted contribution factor
	ExactCF       float64 // exact cf from the full reference stream
	ConflictRatio float64 // 3C conflict-miss share of all misses
	Exact         bool    // tier-0 model claims exact arithmetic
	Reason        string  // tier-0 one-line justification
}

// Agree reports whether the analytic verdict matches the dynamic one.
func (r AnalyticRow) Agree() bool { return r.Analytic == r.Dynamic }

// CascadeStat is one case study in the tiered-advisor accounting: how
// many candidates each static tier removed, how many were simulated,
// and whether the cascade reached the same recommendation as the
// simulation-only sweep over the same pad grid.
type CascadeStat struct {
	App            string
	Candidates     int    // size of the pad grid
	Simulated      int    // candidates the cascade actually simulated
	PrunedAnalytic int    // removed by tier 0
	PrunedStatic   int    // removed by tier 1
	TieredPad      uint64 // cascade recommendation
	FullPad        uint64 // simulation-only recommendation
}

// Match reports whether the cascade reproduced the full-sweep pick.
func (s CascadeStat) Match() bool { return s.TieredPad == s.FullPad }

// AnalyticResult is the confusion matrix of the closed-form model over
// the case-study variants (and, at Full scale, the Rodinia suite),
// plus the per-case-study cascade accounting.
type AnalyticResult struct {
	Rows []AnalyticRow
	// Confusion counts, with "conflict" as the positive class.
	TP, TN, FP, FN int
	// MaxCFDelta is the largest |analytic − staticconf| predicted-CF
	// gap observed across the rows: how far the closed-form arithmetic
	// strays from the enumerating analyzer it replaces.
	MaxCFDelta float64
	Cascade    []CascadeStat
}

// Agreement returns the fraction of rows where the analytic and
// dynamic verdicts agree.
func (r *AnalyticResult) Agreement() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return float64(r.TP+r.TN) / float64(len(r.Rows))
}

// Disagreements lists the apps where the analytic verdict is wrong.
func (r *AnalyticResult) Disagreements() []string {
	var out []string
	for _, row := range r.Rows {
		if !row.Agree() {
			out = append(out, row.App)
		}
	}
	return out
}

// CascadeMatches counts case studies where the tiered advisor
// reproduced the simulation-only recommendation.
func (r *AnalyticResult) CascadeMatches() int {
	n := 0
	for _, s := range r.Cascade {
		if s.Match() {
			n++
		}
	}
	return n
}

// Analytic cross-validates the closed-form tier-0 conflict model: every
// case-study variant (both builds) is classified arithmetically from its
// access spec — no reference replayed, no window enumerated — and the
// verdict is scored against the enumerating analyzer and the exact
// classifying simulation, as a confusion matrix. At Full scale the
// conflict-free Rodinia mimics join the table. A second table accounts
// for the three-tier advisor cascade on each case study: candidates
// pruned per tier versus the simulation-only sweep, and whether both
// reach the same pad.
func Analytic(w io.Writer, scale Scale) (*AnalyticResult, error) {
	g := mem.L1Default()
	type variant struct {
		app  string
		prog *workloads.Program
	}
	var variants []variant
	studies := caseStudies(scale)
	for _, cs := range studies {
		variants = append(variants,
			variant{cs.Name + "/orig", cs.Original},
			variant{cs.Name + "/opt", cs.Optimized})
	}
	if scale == Full {
		// RodiniaSuite[0] is NW, already covered by its case study.
		for _, p := range workloads.RodiniaSuite()[1:] {
			variants = append(variants, variant{p.Name, p})
		}
	}

	// Each row is an independent (model, analyze, simulate) triple, so
	// the variants fan out across the sweep executor; rows come back in
	// variant order and the confusion counts are tallied serially
	// afterwards, keeping the matrix identical at any worker count.
	rows, err := parsim.Run(len(variants), parsim.Options{}, func(i int) (AnalyticRow, error) {
		v := variants[i]
		if v.prog.Spec == nil {
			return AnalyticRow{}, fmt.Errorf("analytic: %s declares no access spec", v.app)
		}
		done := obs.Default.StartPhase("analytic/model")
		ar, err := analytic.Analyze(v.prog.Spec, g, analytic.Options{})
		done()
		if err != nil {
			return AnalyticRow{}, fmt.Errorf("analytic: %s: %w", v.app, err)
		}
		sr, err := staticconf.Analyze(v.prog.Spec, g, staticconf.Options{})
		if err != nil {
			return AnalyticRow{}, fmt.Errorf("analytic: %s: staticconf: %w", v.app, err)
		}

		sink := &classifySink{g: g, cl: cache.NewClassifier(g), tr: rcd.New(g.Sets)}
		done = obs.Default.StartPhase("classify")
		v.prog.Run(sink)
		done()
		ratio := sink.cl.ConflictRatio()
		exactCF := sink.tr.ContributionFactor(rcd.DefaultThreshold)

		return AnalyticRow{
			App:           v.app,
			Analytic:      ar.Conflict,
			Static:        sr.Conflict,
			Dynamic:       ratio >= dynConflictRatioMin || exactCF >= dynExactCFMin,
			AnalyticCF:    ar.PredictedCF,
			StaticCF:      sr.PredictedCF,
			ExactCF:       exactCF,
			ConflictRatio: ratio,
			Exact:         ar.Exact,
			Reason:        ar.Reason,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &AnalyticResult{Rows: rows}
	for _, row := range rows {
		switch {
		case row.Analytic && row.Dynamic:
			res.TP++
		case !row.Analytic && !row.Dynamic:
			res.TN++
		case row.Analytic && !row.Dynamic:
			res.FP++
		default:
			res.FN++
		}
		if d := math.Abs(row.AnalyticCF - row.StaticCF); d > res.MaxCFDelta {
			res.MaxCFDelta = d
		}
	}

	// Cascade accounting: tiered versus simulation-only advisor over the
	// same default pad grid, per case study.
	for _, cs := range studies {
		full, err := advisor.RecommendPad(cs.PadBuilder, advisor.Options{})
		if err != nil {
			return nil, fmt.Errorf("analytic: %s: full sweep: %w", cs.Name, err)
		}
		tiered, err := advisor.RecommendPad(cs.PadBuilder, advisor.Options{
			Tiers: advisor.Cascade(),
			Spec:  cs.SpecBuilder(),
		})
		if err != nil {
			return nil, fmt.Errorf("analytic: %s: cascade: %w", cs.Name, err)
		}
		res.Cascade = append(res.Cascade, CascadeStat{
			App:            cs.Name,
			Candidates:     len(full.Candidates),
			Simulated:      len(tiered.Candidates),
			PrunedAnalytic: len(tiered.PrunedAnalytic),
			PrunedStatic:   len(tiered.PrunedStatic),
			TieredPad:      tiered.Best.Pad,
			FullPad:        full.Best.Pad,
		})
	}

	if w != nil {
		t := report.NewTable("closed-form analytic model vs enumeration vs exact simulation",
			"variant", "analytic", "static", "dynamic", "t0 cf", "t1 cf", "exact cf", "exact", "agree")
		for _, row := range res.Rows {
			t.Row(row.App, verdictString(row.Analytic), verdictString(row.Static),
				verdictString(row.Dynamic), report.Pct(row.AnalyticCF),
				report.Pct(row.StaticCF), report.Pct(row.ExactCF),
				exactMark(row.Exact), agreeString(row.Agree()))
		}
		if err := t.Write(w); err != nil {
			return res, err
		}
		fprintf(w, "\nconfusion matrix (positive = conflict): TP=%d TN=%d FP=%d FN=%d — agreement %.0f%% (%d/%d)\n",
			res.TP, res.TN, res.FP, res.FN, 100*res.Agreement(), res.TP+res.TN, len(res.Rows))
		if dis := res.Disagreements(); len(dis) > 0 {
			fprintf(w, "disagreements: %v\n", dis)
		} else {
			fprintf(w, "disagreements: none\n")
		}
		fprintf(w, "max |analytic − static| predicted cf: %.2f\n", res.MaxCFDelta)

		ct := report.NewTable("three-tier advisor cascade vs simulation-only sweep",
			"app", "grid", "simulated", "t0 pruned", "t1 pruned", "tiered pad", "full pad", "match")
		for _, s := range res.Cascade {
			ct.Row(s.App, s.Candidates, s.Simulated, s.PrunedAnalytic, s.PrunedStatic,
				s.TieredPad, s.FullPad, agreeString(s.Match()))
		}
		fprintf(w, "\n")
		if err := ct.Write(w); err != nil {
			return res, err
		}
		fprintf(w, "\ncascade matched the full sweep on %d/%d case studies\n",
			res.CascadeMatches(), len(res.Cascade))
	}
	return res, nil
}

func exactMark(exact bool) string {
	if exact {
		return "exact"
	}
	return "bound"
}
