// Package experiments regenerates every table and figure of the paper's
// evaluation (§5-§6). Each experiment returns structured results and can
// render itself as text; cmd/experiments and the root benchmark harness are
// thin wrappers around these functions.
//
// Scale note: the workloads run at laptop scale (see DESIGN.md), so
// absolute numbers differ from the paper's testbed; the reproduced claims
// are the qualitative shapes — who conflicts, what padding does, how
// accuracy and overhead trade off against the sampling period.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales: Full reproduces the default workload sizes, Quick
// shrinks them so the whole suite runs in seconds (used by tests).
const (
	Full Scale = iota
	Quick
)

// caseStudies returns the six paper case studies at the given scale, in
// the paper's Table 2/3 order.
func caseStudies(s Scale) []*workloads.CaseStudy {
	if s == Quick {
		return []*workloads.CaseStudy{
			workloads.NewNW(512, 16),
			workloads.NewFFT(128),
			workloads.NewADI(256, 1),
			workloads.NewTinyDNN(128, 1024, 1),
			workloads.NewKripke(64, 32, 32),
			workloads.NewHimeno(16, 16, 64, 1),
		}
	}
	return []*workloads.CaseStudy{
		workloads.NewNW(1024, 16),
		workloads.NewFFT(256),
		workloads.NewADI(512, 2),
		workloads.NewTinyDNN(256, 1024, 4),
		workloads.NewKripke(128, 64, 32),
		workloads.NewHimeno(32, 32, 64, 2),
	}
}

// profileAt profiles a program sequentially at the given mean period.
func profileAt(p *workloads.Program, period uint64, seed int64) (*core.Profile, error) {
	return core.ProfileProgram(p, core.ProfileOptions{
		Period: pmu.Uniform(period),
		Seed:   seed,
		NoTime: true,
	})
}

// analyzed profiles and analyzes a program at the given period.
func analyzed(p *workloads.Program, period uint64, seed int64) (*core.Profile, *core.Analysis, error) {
	prof, err := profileAt(p, period, seed)
	if err != nil {
		return nil, nil, err
	}
	an, err := core.Analyze(prof, p.Binary, p.Arena, core.AnalyzeOptions{})
	if err != nil {
		return nil, nil, err
	}
	return prof, an, nil
}

// runOn plays a program's sequential stream into a sink.
func runOn(p *workloads.Program, sink trace.Sink) { p.Run(sink) }

// simulateThreaded replays a program on a machine's full hierarchy with the
// given thread count, interleaving per-thread streams chunk-wise. The
// populated system's statistics merge into the process registry before it
// is returned.
func simulateThreaded(p *workloads.Program, m mem.Machine, threads int) *cache.System {
	defer obs.Default.StartPhase("simulate")()
	if threads < 1 {
		threads = 1
	}
	if threads > m.Threads {
		threads = m.Threads
	}
	sys := cache.NewSystem(m, threads)
	rec := trace.NewThreadedRecorder(threads)
	for tid := 0; tid < threads; tid++ {
		p.RunThread(tid, threads, rec.Thread(tid))
	}
	const chunk = 64
	pos := make([]int, threads)
	for progressed := true; progressed; {
		progressed = false
		for t := 0; t < threads; t++ {
			s := rec.Streams[t]
			end := pos[t] + chunk
			if end > len(s) {
				end = len(s)
			}
			for ; pos[t] < end; pos[t]++ {
				sys.Access(t, s[pos[t]].Addr)
				progressed = true
			}
		}
	}
	sys.ObserveInto(obs.Default)
	return sys
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
