package experiments

import (
	"io"

	"repro/internal/report"
	"repro/internal/workloads"
)

// Table4Row reproduces one row of Table 4: per-loop L1-miss contribution
// and cache-set utilization for Needleman-Wunsch.
type Table4Row struct {
	Loop         string
	Contribution float64
	SetsUsed     int
	CF           float64
	Conflict     bool
}

// Table4 profiles the NW case study and reports its per-loop distribution
// of cache-set usage. The paper's shape: the tile-copy loops (:128, :189)
// dominate the L1 misses and utilize all 64 sets; the traceback loops
// contribute almost nothing and touch a handful of sets.
func Table4(w io.Writer, scale Scale) ([]Table4Row, error) {
	n := 512
	if scale == Quick {
		n = 256
	}
	cs := workloads.NewNW(n, 16)
	_, an, err := analyzed(cs.Original, 63, 13)
	if err != nil {
		return nil, err
	}
	var rows []Table4Row
	for _, l := range an.Loops {
		rows = append(rows, Table4Row{
			Loop:         l.Loop,
			Contribution: l.Contribution,
			SetsUsed:     l.SetsUsed,
			CF:           l.CF,
			Conflict:     l.Conflict,
		})
	}
	if w != nil {
		t := report.NewTable("Table 4 — distribution of cache set usage per loop in Needleman-Wunsch",
			"loop", "L1 miss contribution", "# cache sets utilized", "cf", "conflict")
		for _, r := range rows {
			t.Row(r.Loop, report.Pct(r.Contribution), r.SetsUsed, report.Pct(r.CF), r.Conflict)
		}
		if err := t.Write(w); err != nil {
			return rows, err
		}
	}
	return rows, nil
}
