//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in. Heavy
// value-determinism sweeps trim to representative subsets under -race,
// where each simulation run costs ~15x: the detector finds data races, not
// value divergence, and the concurrency-sensitive determinism tests
// (serial vs parallel) still run in full.
const raceEnabled = false
