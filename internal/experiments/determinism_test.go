package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"repro/internal/obs"
	"repro/internal/parsim"
)

// atWorkers runs fn with the process-default sweep worker count pinned to
// n, restoring the GOMAXPROCS default afterwards.
func atWorkers(n int, fn func()) {
	parsim.SetDefaultWorkers(n)
	defer parsim.SetDefaultWorkers(0)
	fn()
}

// render captures an experiment's full observable output — the rendered
// report text plus the JSON serialization of its structured rows — so a
// byte comparison covers both what users read and what downstream tooling
// consumes.
func render(t *testing.T, fn func(w *bytes.Buffer) (any, error)) []byte {
	t.Helper()
	var buf bytes.Buffer
	rows, err := fn(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return append(buf.Bytes(), raw...)
}

// sweepCases lists the experiments routed through the sweep executor,
// whose full observable output (text + structured rows) must be worker
// count independent. table2 and specgen carry wall-clock measurements
// in-process, but those fields are excluded from serialization (json:"-"),
// so their rendered output is as deterministic as the rest.
func sweepCases() []struct {
	name string
	fn   func(w *bytes.Buffer) (any, error)
} {
	return []struct {
		name string
		fn   func(w *bytes.Buffer) (any, error)
	}{
		{"fig7", func(w *bytes.Buffer) (any, error) { return Fig7(w, Quick) }},
		{"fig9", func(w *bytes.Buffer) (any, error) { return Fig9(w, Quick) }},
		{"table2", func(w *bytes.Buffer) (any, error) { return Table2(w, Quick) }},
		{"table3", func(w *bytes.Buffer) (any, error) { return Table3(w, Quick) }},
		{"staticconf", func(w *bytes.Buffer) (any, error) { return StaticConf(w, Quick) }},
		{"analytic", func(w *bytes.Buffer) (any, error) { return Analytic(w, Quick) }},
		{"specgen", func(w *bytes.Buffer) (any, error) { return Specgen(w, Quick) }},
		{"faults", func(w *bytes.Buffer) (any, error) { return Faults(w, Quick) }},
		{"streaming", func(w *bytes.Buffer) (any, error) { return Streaming(w, Quick) }},
	}
}

// TestExperimentsSerialParallelIdentical is the engine-level determinism
// regression: every experiment routed through the sweep executor must
// produce byte-identical reports at -j 1 and -j 8. A failure here means a
// task picked up shared state (an RNG, a map, an accumulator) whose value
// depends on scheduling.
func TestExperimentsSerialParallelIdentical(t *testing.T) {
	for _, tc := range sweepCases() {
		t.Run(tc.name, func(t *testing.T) {
			var serial, parallel []byte
			atWorkers(1, func() { serial = render(t, tc.fn) })
			atWorkers(8, func() { parallel = render(t, tc.fn) })
			if !bytes.Equal(serial, parallel) {
				t.Errorf("%s output differs between -j1 and -j8 (%d vs %d bytes)",
					tc.name, len(serial), len(parallel))
			}
		})
	}
}

// TestExperimentsRunTwiceIdentical is the wall-clock/iteration-order audit
// in executable form: every registered experiment, run twice in the same
// process at Quick scale, must render byte-identical text. A failure means
// a timing, an RNG shared across runs, or a map iteration order leaked
// into the report (the ProfiledNs class of bug).
func TestExperimentsRunTwiceIdentical(t *testing.T) {
	reg := Registry()
	names := Names()
	if raceEnabled {
		// Full matrix under -race would take minutes for no extra signal
		// (value determinism is scheduler-independent); keep one profiler
		// sweep, one simulation sweep, one static path, and the L2
		// extension as representatives.
		names = []string{"fig9", "table2", "staticconf", "l2ext"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			runOnce := func() []byte {
				var buf bytes.Buffer
				if err := reg[name](&buf, Quick); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			first, second := runOnce(), runOnce()
			if !bytes.Equal(first, second) {
				t.Errorf("%s output differs between two identical runs (%d vs %d bytes)",
					name, len(first), len(second))
			}
		})
	}
}

// deterministicObs runs fn against a freshly reset process registry and
// returns the JSON of the worker-count-independent slice of its snapshot:
// counters and histograms (gauges legitimately record configuration such
// as the worker count itself, and phases are wall-clock).
func deterministicObs(t *testing.T, fn func()) []byte {
	t.Helper()
	obs.Default.Reset()
	fn()
	s := obs.Default.Snapshot().Deterministic()
	s.Gauges = nil
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObsCountersSerialParallelIdentical extends the determinism guarantee
// to the observability layer itself: the merged counters and histograms of
// a run — refs streamed, hits/misses per set, samples, tasks — must be
// byte-identical at -j1 and -j8. This is what licenses shard-local
// counting with merge-on-reassembly.
func TestObsCountersSerialParallelIdentical(t *testing.T) {
	reg := Registry()
	for _, name := range []string{"fig9", "staticconf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() {
				if err := reg[name](io.Discard, Quick); err != nil {
					t.Fatal(err)
				}
			}
			var serial, parallel []byte
			atWorkers(1, func() { serial = deterministicObs(t, run) })
			atWorkers(8, func() { parallel = deterministicObs(t, run) })
			if !bytes.Equal(serial, parallel) {
				t.Errorf("%s obs counters differ between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
					name, serial, parallel)
			}
		})
	}
}
